package lbe_test

import (
	"math"
	"path/filepath"
	"testing"

	"lbe"
)

// TestEndToEndPipeline drives the whole system through the public facade:
// generate -> digest -> dedup -> distributed search -> metrics -> file I/O.
func TestEndToEndPipeline(t *testing.T) {
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 12
	pcfg.Homologs = 2
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}

	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		t.Fatal(err)
	}
	peps = lbe.Dedup(peps)
	peptides := lbe.PeptideSequences(peps)
	if len(peptides) < 200 {
		t.Fatalf("only %d peptides", len(peptides))
	}

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 50
	queries, truth, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		t.Fatal(err)
	}

	ecfg := lbe.DefaultEngineConfig()
	ecfg.Params.Mods.MaxPerPep = 1
	ecfg.TopK = 5
	res, err := lbe.RunInProcess(4, peptides, queries, ecfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != len(queries) {
		t.Fatalf("PSMs for %d queries", len(res.PSMs))
	}

	hits := 0
	for q := range queries {
		for _, p := range res.PSMs[q] {
			if int(p.Peptide) == truth[q].Peptide {
				hits++
				break
			}
		}
	}
	if hits < len(queries)/2 {
		t.Errorf("identified %d/%d", hits, len(queries))
	}

	li := lbe.LoadImbalance(lbe.WorkUnits(res.Stats))
	if li < 0 || math.IsNaN(li) {
		t.Errorf("LI = %v", li)
	}

	// File round trips through both formats.
	dir := t.TempDir()
	ms2Path := filepath.Join(dir, "run.ms2")
	if err := lbe.WriteMS2(ms2Path, queries); err != nil {
		t.Fatal(err)
	}
	back, err := lbe.ReadMS2(ms2Path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(queries) {
		t.Errorf("ms2 round trip: %d vs %d", len(back), len(queries))
	}
	mzPath := filepath.Join(dir, "run.mzML")
	if err := lbe.WriteMzML(mzPath, queries[:5], true); err != nil {
		t.Fatal(err)
	}
	back, err = lbe.ReadMzML(mzPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 5 {
		t.Errorf("mzml round trip: %d", len(back))
	}

	faPath := filepath.Join(dir, "db.fasta")
	if err := lbe.WriteFasta(faPath, recs); err != nil {
		t.Fatal(err)
	}
	recs2, err := lbe.ReadFasta(faPath)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs2) != len(recs) {
		t.Errorf("fasta round trip: %d vs %d", len(recs2), len(recs))
	}
}

// TestFacadeLBEPrimitives exercises the grouping/partitioning surface.
func TestFacadeLBEPrimitives(t *testing.T) {
	peptides := []string{
		"AAAAGGGGKKKK", "AAAAGGGGKKKC", "AAAAGGGGKKCC",
		"WWWWYYYYFFFF", "WWWWYYYYFFFC", "LLLLMMMMNNNN",
	}
	g, err := lbe.Group(peptides, lbe.DefaultGroupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() == 0 {
		t.Fatal("no groups")
	}
	part, err := lbe.PartitionClustered(g, 3, lbe.Cyclic, 0)
	if err != nil {
		t.Fatal(err)
	}
	table := lbe.BuildMappingTable(g, part)
	if table.Len() != len(peptides) {
		t.Errorf("table len %d", table.Len())
	}
	seen := map[uint32]bool{}
	for m := 0; m < table.Machines(); m++ {
		for v := 0; v < table.MachineLen(m); v++ {
			gidx, err := table.Lookup(m, uint32(v))
			if err != nil {
				t.Fatal(err)
			}
			if seen[gidx] {
				t.Fatalf("duplicate mapping for %d", gidx)
			}
			seen[gidx] = true
		}
	}
}

// TestFacadeIndexSearch exercises BuildIndex/Preprocess directly.
func TestFacadeIndexSearch(t *testing.T) {
	params := lbe.DefaultSearchParams()
	params.Mods.MaxPerPep = 0
	ix, err := lbe.BuildIndex([]string{"PEPTIDEK", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRows() != 2 {
		t.Errorf("rows = %d", ix.NumRows())
	}
}

// TestFacadeExtendedFeatures exercises the v2 surface: serialization,
// chunked index, weighted partitioning, tolerances, decoys and q-values.
func TestFacadeExtendedFeatures(t *testing.T) {
	peptides := []string{"PEPTIDEK", "AAAAGGGGK", "WWYYFFLLK", "NQKCMAAR"}

	params := lbe.DefaultSearchParams()
	params.Mods.MaxPerPep = 0
	ix, err := lbe.BuildIndex(peptides, params)
	if err != nil {
		t.Fatal(err)
	}

	// Save/Load round trip.
	path := filepath.Join(t.TempDir(), "ix.slm")
	if err := lbe.SaveIndex(ix, path); err != nil {
		t.Fatal(err)
	}
	loaded, err := lbe.LoadIndex(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.NumRows() != ix.NumRows() {
		t.Errorf("rows after reload: %d vs %d", loaded.NumRows(), ix.NumRows())
	}

	// Chunked index.
	ci, err := lbe.BuildChunkedIndex(peptides, params, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ci.NumChunks() != 2 || ci.NumRows() != len(peptides) {
		t.Errorf("chunked shape: %d chunks, %d rows", ci.NumChunks(), ci.NumRows())
	}

	// Tolerances.
	if !lbe.OpenTolerance().IsOpen() {
		t.Error("OpenTolerance not open")
	}
	if lbe.DaltonTolerance(0.5).Width(100) != 0.5 {
		t.Error("DaltonTolerance width wrong")
	}
	if lbe.PPMTolerance(10).Width(1e6) != 10 {
		t.Error("PPMTolerance width wrong")
	}

	// Weighted partitioning through the facade.
	g, err := lbe.Group(peptides, lbe.DefaultGroupConfig())
	if err != nil {
		t.Fatal(err)
	}
	part, err := lbe.PartitionWeighted(g, []float64{3, 1}, lbe.Cyclic, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(part.Assign[0]) < len(part.Assign[1]) {
		t.Errorf("weighted shares inverted: %d vs %d", len(part.Assign[0]), len(part.Assign[1]))
	}

	// Decoys and q-values.
	combined, first := lbe.DecoyDB(peptides)
	if first != len(peptides) || len(combined) <= first {
		t.Errorf("decoy db: %d entries, first decoy %d", len(combined), first)
	}
	if lbe.Decoy("PEPTIDEK") != "EDITPEPK" {
		t.Errorf("Decoy = %q", lbe.Decoy("PEPTIDEK"))
	}
	psms := []lbe.ScoredPSM{{Score: 10}, {Score: 5, IsDecoy: true}}
	qv := lbe.QValues(psms)
	n, err := lbe.AcceptedAt(psms, qv, 0.01)
	if err != nil || n != 1 {
		t.Errorf("accepted = %d (%v)", n, err)
	}

	// Filtration baselines through the facade.
	pf, err := lbe.NewPrecursorFilter(peptides, lbe.DaltonTolerance(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Name() != "precursor-mass" {
		t.Errorf("filter name %q", pf.Name())
	}
}

// TestFacadeHybridAndWeightedRun drives the engine extensions end to end.
func TestFacadeHybridAndWeightedRun(t *testing.T) {
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 6
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		t.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		t.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 20
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		t.Fatal(err)
	}

	cfg := lbe.DefaultEngineConfig()
	cfg.Params.Mods.MaxPerPep = 1
	cfg.ThreadsPerRank = 2
	cfg.Weights = []float64{2, 1, 1}
	res, err := lbe.RunInProcess(3, peptides, queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.PSMs) != len(queries) {
		t.Fatalf("PSMs = %d", len(res.PSMs))
	}
	if res.Stats[0].Peptides <= res.Stats[1].Peptides {
		t.Errorf("weighted shares not applied: %d vs %d",
			res.Stats[0].Peptides, res.Stats[1].Peptides)
	}
}
