package lbe_test

import (
	"bufio"
	"context"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"

	"lbe/internal/api"
)

// TestCLIPipeline builds the command-line tools and drives the full
// pipeline the README documents: generate -> digest -> cluster -> index
// -> search (with FDR) -> convert. It is the integration test of record
// for the binaries; run with -short to skip.
func TestCLIPipeline(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode: skipping CLI integration test")
	}
	goBin, err := exec.LookPath("go")
	if err != nil {
		t.Skip("go binary not in PATH")
	}

	dir := t.TempDir()
	bin := filepath.Join(dir, "bin")
	if err := os.MkdirAll(bin, 0o755); err != nil {
		t.Fatal(err)
	}

	run := func(name string, args ...string) string {
		t.Helper()
		cmd := exec.Command(name, args...)
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err != nil {
			t.Fatalf("%s %v failed: %v\n%s", name, args, err, out)
		}
		return string(out)
	}

	// Build all binaries.
	repo, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	cmd := exec.Command(goBin, "build", "-o", bin+string(os.PathSeparator), "./cmd/...")
	cmd.Dir = repo
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("go build: %v\n%s", err, out)
	}
	tool := func(name string) string { return filepath.Join(bin, name) }

	// 1. Generate a small dataset.
	out := run(tool("lbe-gen"), "-fasta", "db.fasta", "-ms2", "run.ms2",
		"-families", "12", "-spectra", "60", "-seed", "9")
	if !strings.Contains(out, "wrote db.fasta") {
		t.Fatalf("lbe-gen output: %s", out)
	}

	// 2. Digest.
	out = run(tool("lbe-digest"), "-in", "db.fasta", "-out", "peps.fasta")
	if !strings.Contains(out, "peptides") {
		t.Fatalf("lbe-digest output: %s", out)
	}

	// 3. Cluster.
	out = run(tool("lbe-cluster"), "-in", "peps.fasta", "-out", "clustered.fasta")
	if !strings.Contains(out, "groups") {
		t.Fatalf("lbe-cluster output: %s", out)
	}

	// 4. Index stats.
	out = run(tool("lbe-index"), "-in", "peps.fasta", "-max-mods", "1")
	if !strings.Contains(out, "index rows") {
		t.Fatalf("lbe-index output: %s", out)
	}

	// 5. Distributed search with FDR.
	out = run(tool("lbe-search"), "-db", "peps.fasta", "-ms2", "run.ms2",
		"-ranks", "3", "-policy", "cyclic", "-fdr", "-out", "psms.tsv")
	if !strings.Contains(out, "load imbalance") || !strings.Contains(out, "FDR") {
		t.Fatalf("lbe-search output: %s", out)
	}
	tsv, err := os.ReadFile(filepath.Join(dir, "psms.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(string(tsv)), "\n")
	if len(lines) < 2 {
		t.Fatalf("psms.tsv has no rows:\n%s", tsv)
	}
	if !strings.HasPrefix(lines[0], "scan\t") || !strings.Contains(lines[0], "qvalue") {
		t.Fatalf("psms.tsv header: %s", lines[0])
	}

	// 6. Serial baseline produces the same PSM count.
	run(tool("lbe-search"), "-db", "peps.fasta", "-ms2", "run.ms2",
		"-serial", "-out", "psms_serial.tsv")
	serialTSV, err := os.ReadFile(filepath.Join(dir, "psms_serial.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	serialLines := strings.Split(strings.TrimSpace(string(serialTSV)), "\n")
	// FDR run searched targets+decoys, so compare a fresh non-FDR run.
	run(tool("lbe-search"), "-db", "peps.fasta", "-ms2", "run.ms2",
		"-ranks", "3", "-out", "psms_plain.tsv")
	plainTSV, _ := os.ReadFile(filepath.Join(dir, "psms_plain.tsv"))
	plainLines := strings.Split(strings.TrimSpace(string(plainTSV)), "\n")
	if len(plainLines) != len(serialLines) {
		t.Fatalf("distributed (%d rows) and serial (%d rows) reports differ",
			len(plainLines), len(serialLines))
	}

	// 6b. Persistent store: lbe-index -out emits a session store, and a
	// warm-started lbe-search over it must reproduce the freshly built
	// run byte for byte.
	out = run(tool("lbe-index"), "-in", "peps.fasta", "-out", "store",
		"-ranks", "3", "-max-mods", "2")
	if !strings.Contains(out, "save time") {
		t.Fatalf("lbe-index -out output: %s", out)
	}
	run(tool("lbe-search"), "-index", "store", "-ms2", "run.ms2", "-out", "psms_store.tsv")
	storeTSV, err := os.ReadFile(filepath.Join(dir, "psms_store.tsv"))
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(storeTSV), "\t") || string(storeTSV) != string(plainTSV) {
		t.Fatalf("warm-started search differs from fresh build:\nstore: %d bytes\nfresh: %d bytes",
			len(storeTSV), len(plainTSV))
	}

	// 7. Convert MS2 -> mzML -> MS2.
	run(tool("lbe-convert"), "-in", "run.ms2", "-out", "run.mzML")
	out = run(tool("lbe-convert"), "-in", "run.mzML", "-out", "back.ms2")
	if !strings.Contains(out, "converted") {
		t.Fatalf("lbe-convert output: %s", out)
	}

	// 8. One quick benchmark figure.
	out = run(tool("lbe-bench"), "-fig", "transport", "-scale", "0.00005", "-queries", "30", "-ranks", "2")
	if !strings.Contains(out, "Transport ablation") {
		t.Fatalf("lbe-bench output: %s", out)
	}

	// 9. Serve the database over HTTP two ways — a fresh build from
	// FASTA and a warm start from a store emitted by lbe-index -out —
	// and assert both serve byte-identical /search responses before
	// driving the warm one with the load client.
	run(tool("lbe-index"), "-in", "peps.fasta", "-out", "store2",
		"-ranks", "2", "-max-mods", "1")

	fresh := startServe(t, dir, tool("lbe-serve"),
		"-db", "peps.fasta", "-addr", "127.0.0.1:0", "-ranks", "2", "-max-mods", "1")
	warm := startServe(t, dir, tool("lbe-serve"),
		"-index", "store2", "-addr", "127.0.0.1:0")

	const searchBody = `{"spectra":[{"scan":1,"precursor_mz":500.3,"charge":2,` +
		`"peaks":[[147.11,1.0],[262.14,0.8],[375.22,0.6]]}]}`
	freshResp := postJSON(t, fresh.base, searchBody)
	warmResp := postJSON(t, warm.base, searchBody)
	if freshResp != warmResp {
		t.Fatalf("fresh and warm-started servers answered differently:\nfresh: %s\nwarm:  %s",
			freshResp, warmResp)
	}

	out = run(tool("lbe-client"), "-addr", warm.base, "-ms2", "run.ms2",
		"-n", "15", "-c", "4", "-require-matches", "-q")
	if !strings.Contains(out, "0 failed") || !strings.Contains(out, "0 empty") {
		t.Fatalf("lbe-client output: %s", out)
	}

	// 10. Multi-node serving: a second warm replica from the same store
	// plus an lbe-router over both. The routed response must be
	// byte-identical to the single replica's, and the load client must
	// succeed through the router unchanged.
	warm2 := startServe(t, dir, tool("lbe-serve"),
		"-index", "store2", "-addr", "127.0.0.1:0")
	routerProc := startServe(t, dir, tool("lbe-router"),
		"-addr", "127.0.0.1:0", "-replicas", warm.base+","+warm2.base,
		"-probe", "250ms")
	routedResp := postJSON(t, routerProc.base, searchBody)
	if routedResp != warmResp {
		t.Fatalf("routed response differs from the replica's:\nrouter: %s\nreplica: %s",
			routedResp, warmResp)
	}
	out = run(tool("lbe-client"), "-addr", routerProc.base, "-ms2", "run.ms2",
		"-n", "15", "-c", "4", "-require-matches", "-q")
	if !strings.Contains(out, "0 failed") || !strings.Contains(out, "0 empty") {
		t.Fatalf("lbe-client via router output: %s", out)
	}

	// Graceful drain on interrupt: router first, then every replica.
	routerProc.drain(t)
	fresh.drain(t)
	warm.drain(t)
	warm2.drain(t)
}

// postJSON posts a /search body through the typed api client and returns
// the raw response body, so byte-level comparisons stay exact.
func postJSON(t *testing.T, base, body string) string {
	t.Helper()
	client := api.New(base)
	status, b, err := client.Do(context.Background(), http.MethodPost, "/search", []byte(body))
	if err != nil {
		t.Fatal(err)
	}
	if status != http.StatusOK {
		t.Fatalf("POST %s/search: status %d: %s", base, status, b)
	}
	return string(b)
}

// serveProc is one running lbe-serve under test.
type serveProc struct {
	cmd      *exec.Cmd
	base     string // http://host:port
	scanDone chan struct{}
	logText  func() string
}

// startServe boots an lbe-serve or lbe-router process and waits for its
// resolved listen address (both log the same load-bearing "listening on"
// line). The log builder is written by the scanner goroutine and read by
// the test, so it is mutex-guarded; scanDone orders the final read and
// cmd.Wait after the scanner's last pipe access.
func startServe(t *testing.T, dir, bin string, args ...string) *serveProc {
	t.Helper()
	serve := exec.Command(bin, args...)
	serve.Dir = dir
	stderr, err := serve.StderrPipe()
	if err != nil {
		t.Fatal(err)
	}
	if err := serve.Start(); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { serve.Process.Kill() })

	addr := make(chan string, 1)
	var logMu sync.Mutex
	var serveLog strings.Builder
	p := &serveProc{cmd: serve, scanDone: make(chan struct{})}
	p.logText = func() string {
		logMu.Lock()
		defer logMu.Unlock()
		return serveLog.String()
	}
	go func() {
		defer close(p.scanDone)
		sc := bufio.NewScanner(stderr)
		for sc.Scan() {
			line := sc.Text()
			logMu.Lock()
			serveLog.WriteString(line + "\n")
			logMu.Unlock()
			if _, rest, ok := strings.Cut(line, ": listening on "); ok {
				addr <- rest
			}
		}
	}()
	select {
	case a := <-addr:
		p.base = "http://" + a
	case <-time.After(2 * time.Minute):
		t.Fatalf("%s never reported its address:\n%s", filepath.Base(bin), p.logText())
	}
	return p
}

// drain interrupts the server and asserts a clean exit. The scanner
// drains stderr to EOF (process exit) before Wait closes the pipe.
func (p *serveProc) drain(t *testing.T) {
	t.Helper()
	if err := p.cmd.Process.Signal(os.Interrupt); err != nil {
		t.Fatal(err)
	}
	<-p.scanDone
	if err := p.cmd.Wait(); err != nil {
		t.Fatalf("%s did not exit cleanly: %v\n%s", filepath.Base(p.cmd.Path), err, p.logText())
	}
}
