// Package lbe is the public API of the LBE reproduction: a load-balanced
// distributed peptide-search library (Haseeb, Afzali, Saeed — "LBE: A
// Computational Load Balancing Algorithm for Speeding up Parallel Peptide
// Search in Mass-Spectrometry based Proteomics", IEEE IPDPSW 2019).
//
// The package re-exports the stable surface of the internal packages:
//
//   - data preparation: FASTA I/O, tryptic digestion, deduplication,
//     modification variants, synthetic data generation;
//   - the SLM fragment-ion index and its search parameters;
//   - the LBE layer: peptide grouping, partition policies, mapping table;
//   - the streaming Session API: build the partitioned engine once, then
//     serve repeated query batches through a channel-based pipeline;
//   - the distributed engine over in-process or TCP communicators;
//   - the load-balance metrics of the paper's evaluation.
//
// Quick start (see examples/quickstart for the runnable version):
//
//	peps, _ := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
//	sess, _ := lbe.NewSession(lbe.PeptideSequences(peps), lbe.DefaultSessionConfig())
//	defer sess.Close()
//	res, _ := sess.Search(ctx, queries)
//	for _, psm := range res.PSMs[0] { ... }
package lbe

import (
	"context"

	"lbe/internal/core"
	"lbe/internal/digest"
	"lbe/internal/engine"
	"lbe/internal/fasta"
	"lbe/internal/fdr"
	"lbe/internal/filter"
	"lbe/internal/gen"
	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/mpi"
	"lbe/internal/ms2"
	"lbe/internal/mzml"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
	"lbe/internal/stats"
)

// --- data model ---

// FastaRecord is one protein database entry.
type FastaRecord = fasta.Record

// Peptide is a digestion product with its mass and provenance.
type Peptide = digest.Peptide

// Spectrum is one experimental MS/MS spectrum.
type Spectrum = spectrum.Experimental

// Peak is one (m/z, intensity) pair.
type Peak = spectrum.Peak

// Mod is a variable post-translational modification.
type Mod = mods.Mod

// --- data preparation ---

// DigestConfig controls in-silico digestion.
type DigestConfig = digest.Config

// DefaultDigestConfig returns the paper's Digestor settings (fully
// tryptic, <=2 missed cleavages, length 6-40, mass 100-5000 Da).
func DefaultDigestConfig() DigestConfig { return digest.DefaultConfig() }

// Digest digests protein sequences into peptides.
func Digest(cfg DigestConfig, proteins []string) ([]Peptide, error) {
	return cfg.Proteome(proteins)
}

// Dedup removes duplicate peptide sequences, keeping first occurrences.
func Dedup(peps []Peptide) []Peptide { return digest.Dedup(peps) }

// PeptideSequences projects peptides to their sequences.
func PeptideSequences(peps []Peptide) []string { return digest.Sequences(peps) }

// ReadFasta parses a FASTA file.
func ReadFasta(path string) ([]FastaRecord, error) { return fasta.ReadFile(path) }

// WriteFasta writes a FASTA file.
func WriteFasta(path string, recs []FastaRecord) error { return fasta.WriteFile(path, recs) }

// ReadMS2 parses an MS2 spectra file.
func ReadMS2(path string) ([]Spectrum, error) { return ms2.ReadFile(path) }

// WriteMS2 writes an MS2 spectra file.
func WriteMS2(path string, scans []Spectrum) error { return ms2.WriteFile(path, scans) }

// ReadMzML parses an mzML spectra file.
func ReadMzML(path string) ([]Spectrum, error) { return mzml.ReadFile(path) }

// WriteMzML writes an mzML spectra file (zlib-compressed arrays when
// compress is true).
func WriteMzML(path string, scans []Spectrum, compress bool) error {
	return mzml.WriteFile(path, scans, compress)
}

// --- modifications ---

// ModConfig controls modification-variant enumeration.
type ModConfig = mods.Config

// PaperMods returns the paper's three variable modifications
// (deamidation N/Q, GlyGly K/C, oxidation M).
func PaperMods() []Mod { return mods.PaperSet() }

// DefaultModConfig returns the paper's mod settings (<=5 modified
// residues per peptide).
func DefaultModConfig() ModConfig { return mods.DefaultConfig() }

// --- SLM index ---

// SearchParams configures the SLM fragment-ion index.
type SearchParams = slm.Params

// Index is an immutable fragment-ion index over a peptide set.
type Index = slm.Index

// Match is a candidate peptide-to-spectrum match from an index query.
type Match = slm.Match

// DefaultSearchParams returns the paper's search settings (r=0.01,
// ∆F=0.05 Da, open precursor window, Shpeak>=4, 100 query peaks).
func DefaultSearchParams() SearchParams { return slm.DefaultParams() }

// BuildIndex constructs an SLM index over the peptides, parallelized over
// all available cores.
func BuildIndex(peptides []string, params SearchParams) (*Index, error) {
	return slm.Build(peptides, params)
}

// BuildIndexWorkers constructs the index with an explicit construction
// worker count (0 means one per core). The result is byte-identical for
// every worker count.
func BuildIndexWorkers(peptides []string, params SearchParams, workers int) (*Index, error) {
	return slm.BuildWorkers(peptides, params, workers)
}

// ChunkedIndex is a precursor-mass-partitioned index (the shared-memory
// internal partitioning of the paper's Fig. 1).
type ChunkedIndex = slm.ChunkedIndex

// BuildChunkedIndex constructs an internally partitioned index with the
// given chunk count; closed-search queries only touch compatible chunks
// and the transient construction footprint drops to one chunk's worth.
func BuildChunkedIndex(peptides []string, params SearchParams, chunks int) (*ChunkedIndex, error) {
	return slm.BuildChunked(peptides, params, chunks)
}

// SaveIndex writes an index to the named file in the checksummed SLMX
// binary format.
func SaveIndex(ix *Index, path string) error { return ix.SaveFile(path) }

// LoadIndex reads an index written by SaveIndex.
func LoadIndex(path string) (*Index, error) { return slm.LoadFile(path) }

// --- the LBE layer ---

// GroupConfig holds Algorithm 1 parameters.
type GroupConfig = core.GroupConfig

// Grouping is a clustering of the peptide database.
type Grouping = core.Grouping

// Policy is a data distribution policy (Chunk, Cyclic, Random).
type Policy = core.Policy

// Partition assigns clustered peptides to machines.
type Partition = core.Partition

// MappingTable maps (machine, virtual index) back to global entries.
type MappingTable = core.MappingTable

// Policy values.
const (
	Chunk  = core.Chunk
	Cyclic = core.Cyclic
	Random = core.Random
)

// ParsePolicy converts a policy name ("chunk", "cyclic", "random",
// "random-within-groups") back to a Policy.
func ParsePolicy(s string) (Policy, error) { return core.ParsePolicy(s) }

// DefaultGroupConfig returns the paper's grouping defaults (criterion 2,
// d'=0.86, group size 20).
func DefaultGroupConfig() GroupConfig { return core.DefaultGroupConfig() }

// Group runs Algorithm 1 over the peptide sequences.
func Group(peptides []string, cfg GroupConfig) (Grouping, error) {
	return core.Group(peptides, cfg)
}

// PartitionClustered distributes clustered peptides over p machines.
func PartitionClustered(g Grouping, p int, policy Policy, seed int64) (Partition, error) {
	return core.PartitionClustered(g, p, policy, seed)
}

// PartitionWeighted distributes clustered peptides proportionally to
// machine speeds (heterogeneous clusters, paper §VIII future work).
func PartitionWeighted(g Grouping, weights []float64, policy Policy, seed int64) (Partition, error) {
	return core.PartitionWeighted(g, weights, policy, seed)
}

// BuildMappingTable constructs the master's O(1) back-mapping table.
func BuildMappingTable(g Grouping, p Partition) MappingTable {
	return core.BuildMappingTable(g, p)
}

// --- streaming sessions ---

// Session owns a built search engine (grouping, partition, one SLM index
// per shard, mapping table) and serves repeated streaming query batches
// without rebuilding — the shape a traffic-serving deployment needs.
// Query batches execute on a work-stealing worker pool (internal/sched):
// results are invariant to the schedule, and Session.SchedulerStats
// reports the per-worker balance and steal telemetry.
type Session = engine.Session

// SchedulerStats is the session-lifetime telemetry of the work-stealing
// execution layer (per-worker work/wall-time, steals, chunk counters).
type SchedulerStats = engine.SchedulerStats

// ErrStreamClosed is returned by Stream.Push after Close and by a
// redundant Stream.Close.
var ErrStreamClosed = engine.ErrStreamClosed

// SessionConfig configures a Session: engine knobs plus the shard count.
type SessionConfig = engine.SessionConfig

// Stream is a continuous query pipeline over a Session: push batches in,
// receive merged results in push order while later batches are searched.
type Stream = engine.Stream

// BatchResult is one merged batch emitted by a Stream.
type BatchResult = engine.BatchResult

// DefaultSessionConfig returns a traffic-serving setup: the paper's
// cyclic policy, one shard, one search thread per core, 256-query batches.
func DefaultSessionConfig() SessionConfig { return engine.DefaultSessionConfig() }

// NewSession builds a reusable streaming search session over the peptide
// database. Results are identical to RunSerial for every policy, shard
// count, thread count and batch size.
func NewSession(peptides []string, cfg SessionConfig) (*Session, error) {
	return engine.NewSession(peptides, cfg)
}

// OpenOptions controls how OpenSession backs a loaded store (mapped vs
// heap shard indexes).
type OpenOptions = engine.OpenOptions

// OpenSession warm-starts a Session from a persistent store directory
// written by Session.Save (or lbe-index -out): the manifest, mapping
// table and per-shard SLMX indexes are reloaded — shards in parallel —
// with every checksum verified. The returned peptide list is the one
// saved alongside the session (nil when the store omitted it). The
// loaded session serves queries exactly as the session that saved it.
//
// Shard indexes are backed by read-only memory mappings where the
// platform allows (heap fallback otherwise); OpenSessionOptions makes
// the choice explicit.
func OpenSession(dir string) (*Session, []string, error) {
	return engine.OpenSession(dir)
}

// OpenSessionOptions is OpenSession with explicit control over the
// store backing.
func OpenSessionOptions(dir string, opts OpenOptions) (*Session, []string, error) {
	return engine.OpenSessionOptions(dir, opts)
}

// --- distributed engine ---

// EngineConfig assembles a distributed run's settings.
type EngineConfig = engine.Config

// Result is the master's view of a finished distributed search.
type Result = engine.Result

// PSM is a globally resolved peptide-to-spectrum match.
type PSM = engine.PSM

// RankStats carries one rank's load accounting.
type RankStats = engine.RankStats

// Comm is a message-passing endpoint (see NewWorld, NewTCPCluster).
type Comm = mpi.Comm

// DefaultEngineConfig returns the paper's setup with the cyclic policy.
func DefaultEngineConfig() EngineConfig { return engine.DefaultConfig() }

// RunSerial searches on a single shared-memory index (the baseline).
func RunSerial(peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunSerial(peptides, queries, cfg)
}

// RunInProcess runs the distributed search on p in-process ranks.
func RunInProcess(p int, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunInProcess(p, peptides, queries, cfg)
}

// RunInProcessCtx is RunInProcess with cancellation: when ctx is
// cancelled every rank unblocks promptly and ctx's error is returned.
func RunInProcessCtx(ctx context.Context, p int, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunInProcessCtx(ctx, p, peptides, queries, cfg)
}

// RunOverTCP runs the distributed search over loopback TCP links.
func RunOverTCP(p int, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunOverTCP(p, peptides, queries, cfg)
}

// RunOverTCPCtx is RunOverTCP with cancellation semantics matching
// RunInProcessCtx.
func RunOverTCPCtx(ctx context.Context, p int, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunOverTCPCtx(ctx, p, peptides, queries, cfg)
}

// RunRank executes one rank of the distributed search on an existing
// communicator (for multi-process deployments via HostTCP/JoinTCP).
func RunRank(c Comm, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunRank(c, peptides, queries, cfg)
}

// RunRankCtx is RunRank with cancellation: pipeline stages shut down
// between batches when ctx is cancelled.
func RunRankCtx(ctx context.Context, c Comm, peptides []string, queries []Spectrum, cfg EngineConfig) (*Result, error) {
	return engine.RunRankCtx(ctx, c, peptides, queries, cfg)
}

// NewWorld creates p in-process communicator endpoints.
func NewWorld(p int) []Comm { return mpi.NewWorld(p).Comms() }

// NewTCPCluster creates p endpoints meshed over loopback TCP.
func NewTCPCluster(p int) ([]Comm, error) { return mpi.NewTCPCluster(p) }

// HostTCP starts the rank-0 side of a multi-process TCP cluster.
func HostTCP(addr string, size int) (Comm, error) { return mpi.HostTCP(addr, size) }

// JoinTCP joins a multi-process TCP cluster as a worker rank.
func JoinTCP(addr string) (Comm, error) { return mpi.JoinTCP(addr) }

// --- metrics ---

// LoadImbalance computes the paper's Eq. 1: LI = ∆Tmax / Tavg.
func LoadImbalance(times []float64) float64 { return stats.LoadImbalance(times) }

// WastedCPUTime computes §VI's Twst = N * ∆Tmax.
func WastedCPUTime(times []float64) float64 { return stats.WastedCPUTime(times) }

// WorkUnits projects per-rank deterministic work from run stats.
func WorkUnits(sts []RankStats) []float64 { return engine.WorkUnits(sts) }

// QueryTimes projects per-rank query wall times (seconds) from run stats.
func QueryTimes(sts []RankStats) []float64 { return engine.QueryTimes(sts) }

// --- synthetic data ---

// ProteomeConfig controls synthetic proteome generation.
type ProteomeConfig = gen.ProteomeConfig

// SpectraConfig controls synthetic MS/MS run sampling.
type SpectraConfig = gen.SpectraConfig

// GroundTruth records the generating peptide of a synthetic spectrum.
type GroundTruth = gen.GroundTruth

// DefaultProteomeConfig returns a laptop-scale human-like proteome config.
func DefaultProteomeConfig() ProteomeConfig { return gen.DefaultProteomeConfig() }

// DefaultSpectraConfig returns a PXD009072-like synthetic run config.
func DefaultSpectraConfig() SpectraConfig { return gen.DefaultSpectraConfig() }

// GenerateProteome generates a synthetic protein database.
func GenerateProteome(cfg ProteomeConfig) ([]FastaRecord, error) { return gen.Proteome(cfg) }

// GenerateSpectra samples a synthetic MS/MS run from the peptides.
func GenerateSpectra(peptides []string, cfg SpectraConfig) ([]Spectrum, []GroundTruth, error) {
	return gen.Spectra(peptides, cfg)
}

// Preprocess applies the paper's query preprocessing (top-N peaks,
// base-peak normalization).
func Preprocess(s Spectrum, topN int) Spectrum { return spectrum.Preprocess(s, topN) }

// --- validation (target-decoy FDR) ---

// ScoredPSM is an identification entering FDR estimation.
type ScoredPSM = fdr.PSM

// Decoy returns the tryptic decoy of a peptide (reversed, C-terminal
// residue fixed).
func Decoy(seq string) string { return fdr.Decoy(seq) }

// DecoyDB appends one decoy per target and returns the combined database
// plus the index of the first decoy entry.
func DecoyDB(targets []string) ([]string, int) { return fdr.DecoyDB(targets) }

// QValues computes per-PSM q-values by target-decoy competition.
func QValues(psms []ScoredPSM) []float64 { return fdr.QValues(psms) }

// AcceptedAt counts target PSMs with q-value at or below the threshold.
func AcceptedAt(psms []ScoredPSM, qvals []float64, threshold float64) (int, error) {
	return fdr.AcceptedAt(psms, qvals, threshold)
}

// --- filtration baselines (§II-A) ---

// CandidateFilter narrows a peptide database to candidates for a query.
type CandidateFilter = filter.Filter

// NewPrecursorFilter builds the §II-A1 precursor-mass filter.
func NewPrecursorFilter(peptides []string, tol mass.Tolerance) (CandidateFilter, error) {
	return filter.NewPrecursor(peptides, tol)
}

// NewTagFilter builds the §II-A2 sequence-tag filter.
func NewTagFilter(peptides []string, cfg filter.TagConfig) (CandidateFilter, error) {
	return filter.NewTag(peptides, cfg)
}

// DaltonTolerance returns an absolute tolerance of v Daltons.
func DaltonTolerance(v float64) mass.Tolerance { return mass.Da(v) }

// PPMTolerance returns a relative tolerance of v parts per million.
func PPMTolerance(v float64) mass.Tolerance { return mass.Ppm(v) }

// OpenTolerance returns the open-search (infinite) tolerance.
func OpenTolerance() mass.Tolerance { return mass.Open() }
