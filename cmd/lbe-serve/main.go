// Command lbe-serve runs the LBE search engine as a long-running HTTP
// service: it builds a streaming Session over a peptide database once,
// then serves concurrent POST /search requests, coalescing small
// requests into merged engine batches (up to -coalesce queries or a
// -flush window) behind a bounded admission queue that answers 429 when
// full. GET /healthz and GET /stats expose liveness and the session's
// lifetime load figures.
//
// Usage:
//
//	lbe-serve -db peps.fasta -addr :8417 -ranks 4
//	lbe-serve -db proteins.fasta -digest -coalesce 128 -flush 5ms
//	lbe-serve -index store -addr :8417
//
// With -index the service warm-starts from a persistent session store
// written by lbe-index -out: instead of re-digesting and rebuilding
// every shard index (minutes of cold start on real databases), the
// saved indexes are loaded in parallel — O(index bytes) instead of
// O(database). The store fixes the database-shape knobs (shards,
// policy, mods, topk); only runtime knobs (-threads, -batch, and the
// serving flags) still apply.
//
// The first SIGINT/SIGTERM drains gracefully: admission stops (503),
// queued and in-flight requests complete, then the process exits. A
// second signal force-kills in-flight searches.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"lbe"
	"lbe/internal/cliutil"
	"lbe/internal/core"
	"lbe/internal/server"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-serve: ")

	var (
		addr     = flag.String("addr", ":8417", "listen address (host:port; port 0 picks a free port)")
		db       = flag.String("db", "", "peptide FASTA database (required unless -index is set)")
		index    = flag.String("index", "", "warm-start from a session store directory written by lbe-index -out")
		mmap     = flag.Bool("mmap", true, "memory-map the store's shard indexes (page-cache shared, heap fallback); only with -index")
		doDigest = flag.Bool("digest", false, "treat -db as proteins and digest in-process")
		maxMods  = flag.Int("max-mods", 2, "max modified residues per peptide")
		ranks    = flag.Int("ranks", 4, "shards (virtual cluster size)")
		policy   = flag.String("policy", "cyclic", "distribution policy: chunk|cyclic|random")
		seed     = flag.Int64("seed", 0, "seed for the random policy")
		topK     = flag.Int("topk", 5, "PSMs reported per query")
		threads  = flag.Int("threads", 0, "scheduler workers per query batch (0 = one per core)")
		batch    = flag.Int("batch", 256, "session pipeline batch size in queries")
		chunk    = flag.Int("chunk", 0, "scheduler chunk size in queries (0 = auto-tune from observed work)")
		steal    = flag.Bool("steal", true, "work-stealing scheduler (false = static per-shard chunks)")
		coalesce = flag.Int("coalesce", 64, "max queries merged into one coalesced batch")
		flush    = flag.Duration("flush", 2*time.Millisecond, "max wait before a partial batch is searched")
		queue    = flag.Int("queue", 256, "admission queue depth in requests (full = 429)")
		inflight = flag.Int("inflight", 4, "concurrently searching coalesced batches")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-request deadline (0 disables)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
		cacheB   = flag.Int64("cache-bytes", 64<<20, "answer cache byte budget (0 disables caching)")
		cacheTTL = flag.Duration("cache-ttl", 0, "answer cache entry TTL (0 = until evicted)")
	)
	flag.Parse()

	var sess *lbe.Session
	var peptides []string
	if *index != "" {
		// The store fixes everything that shapes the built database;
		// combining it with build-time flags would silently ignore them.
		if bad := cliutil.ExplicitlySet("db", "digest", "max-mods", "ranks", "policy", "seed", "topk"); len(bad) > 0 {
			log.Fatalf("-%s cannot be combined with -index: the store fixes it", bad[0])
		}
		loadStart := time.Now()
		var err error
		sess, peptides, err = lbe.OpenSessionOptions(*index, lbe.OpenOptions{MapStore: *mmap})
		if err != nil {
			log.Fatal(err)
		}
		sess.Tune(*threads, *batch)
		cliutil.TuneSchedulerFromFlags(sess, *chunk, *steal)
		log.Printf("session restored from %s: %d peptides, %d shards (%d mmap-backed), %d groups, index %.2f MB, loaded in %v",
			*index, len(peptides), sess.NumShards(), sess.MappedShards(), sess.Groups(), float64(sess.IndexBytes())/(1<<20),
			time.Since(loadStart).Round(time.Millisecond))
		if peptides == nil {
			log.Printf("store has no peptide list; responses will omit matched sequences")
		}
	} else {
		if *db == "" {
			log.Fatal("-db or -index is required")
		}
		if bad := cliutil.ExplicitlySet("mmap"); len(bad) > 0 {
			log.Fatalf("-%s requires -index: only a stored index can be memory-mapped", bad[0])
		}
		recs, err := lbe.ReadFasta(*db)
		if err != nil {
			log.Fatal(err)
		}
		seqs := make([]string, len(recs))
		for i, r := range recs {
			seqs[i] = r.Sequence
		}
		peptides = seqs
		if *doDigest {
			peptides, err = cliutil.DigestPeptides(seqs)
			if err != nil {
				log.Fatal(err)
			}
			log.Printf("digested %d proteins into %d unique peptides", len(seqs), len(peptides))
		}

		scfg := lbe.DefaultSessionConfig()
		scfg.Params.Mods.MaxPerPep = *maxMods
		scfg.Seed = *seed
		scfg.TopK = *topK
		pol, err := core.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		scfg.Policy = pol
		if *threads > 0 {
			scfg.ThreadsPerRank = *threads
		}
		scfg.BatchSize = *batch
		scfg.ChunkSize = *chunk
		scfg.Stealing = *steal
		scfg.Shards = *ranks

		buildStart := time.Now()
		sess, err = lbe.NewSession(peptides, scfg)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("session ready: %d peptides, %d shards, %d groups, index %.2f MB, built in %v",
			len(peptides), sess.NumShards(), sess.Groups(), float64(sess.IndexBytes())/(1<<20),
			time.Since(buildStart).Round(time.Millisecond))
	}
	defer sess.Close()

	srv := server.New(sess, peptides, server.Config{
		BatchSize:      *coalesce,
		FlushInterval:  *flush,
		QueueDepth:     *queue,
		MaxInFlight:    *inflight,
		RequestTimeout: *timeout,
		CacheBytes:     *cacheB,
		CacheTTL:       *cacheTTL,
	})

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	// The resolved address line is load-bearing: tests and scripts that
	// boot with port 0 scan for it to learn the port.
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-sigCtx.Done():
	}
	stop() // second signal now kills the process outright

	log.Printf("draining: admission stopped, finishing in-flight requests (grace %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	st := srv.Stats()
	fmt.Fprintf(os.Stderr,
		"lbe-serve: served %d queries in %d requests (%d coalesced batches); rejected %d full / %d draining\n",
		st.Searched, st.Accepted, st.Batches, st.RejectedQueue, st.RejectedDrain)
}
