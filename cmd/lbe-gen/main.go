// Command lbe-gen generates synthetic proteomics data: a protein database
// in FASTA format and/or an MS/MS query run in MS2 format. It stands in
// for downloading UniProt UP000005640 and PRIDE PXD009072 (paper §V-A).
//
// Usage:
//
//	lbe-gen -fasta db.fasta -ms2 run.ms2 -families 400 -spectra 2000
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"lbe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-gen: ")

	var (
		fastaOut = flag.String("fasta", "", "output FASTA path for the protein database")
		ms2Out   = flag.String("ms2", "", "output MS2 path for the query run")
		families = flag.Int("families", 400, "protein families")
		homologs = flag.Int("homologs", 4, "homologs per family")
		meanLen  = flag.Int("mean-len", 450, "mean protein length")
		mutation = flag.Float64("mutation", 0.03, "homolog mutation rate")
		spectra  = flag.Int("spectra", 2000, "query spectra to sample")
		seed     = flag.Uint64("seed", 1, "generator seed")
		zipf     = flag.Float64("zipf", 1.1, "abundance skew exponent")
		dropout  = flag.Float64("dropout", 0.2, "peak dropout probability")
		noise    = flag.Int("noise", 10, "noise peaks per spectrum")
		modProb  = flag.Float64("mod-prob", 0.3, "probability a spectrum is modified")
	)
	flag.Parse()

	if *fastaOut == "" && *ms2Out == "" {
		fmt.Fprintln(os.Stderr, "nothing to do: pass -fasta and/or -ms2")
		flag.Usage()
		os.Exit(2)
	}

	pcfg := lbe.ProteomeConfig{
		Seed:         *seed,
		NumFamilies:  *families,
		Homologs:     *homologs,
		MeanLen:      *meanLen,
		MutationRate: *mutation,
	}
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("generated %d proteins (%d families x %d copies)", len(recs), *families, *homologs+1)

	if *fastaOut != "" {
		if err := lbe.WriteFasta(*fastaOut, recs); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s", *fastaOut)
	}

	if *ms2Out != "" {
		proteins := make([]string, len(recs))
		for i, r := range recs {
			proteins[i] = r.Sequence
		}
		peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
		if err != nil {
			log.Fatal(err)
		}
		peps = lbe.Dedup(peps)
		peptides := lbe.PeptideSequences(peps)

		scfg := lbe.DefaultSpectraConfig()
		scfg.Seed = *seed + 1
		scfg.NumSpectra = *spectra
		scfg.ZipfExponent = *zipf
		scfg.Dropout = *dropout
		scfg.NoisePeaks = *noise
		scfg.ModProb = *modProb
		queries, _, err := lbe.GenerateSpectra(peptides, scfg)
		if err != nil {
			log.Fatal(err)
		}
		if err := lbe.WriteMS2(*ms2Out, queries); err != nil {
			log.Fatal(err)
		}
		log.Printf("wrote %s (%d spectra from %d peptides)", *ms2Out, len(queries), len(peptides))
	}
}
