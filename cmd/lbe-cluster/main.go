// Command lbe-cluster groups a peptide FASTA database with LBE's
// Algorithm 1 and writes the clustered database: the peptides in grouped
// order, ready for distribution-policy partitioning. It replaces the
// Python preprocessing script shipped with the original LBDSLIM (§IV).
//
// Usage:
//
//	lbe-cluster -in peptides.fasta -out clustered.fasta -criterion 2
package main

import (
	"flag"
	"fmt"
	"log"

	"lbe"
	"lbe/internal/core"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-cluster: ")

	var (
		in        = flag.String("in", "", "input peptide FASTA (required)")
		out       = flag.String("out", "", "output clustered FASTA (required)")
		criterion = flag.Int("criterion", 2, "grouping criterion: 1 (absolute) or 2 (normalized)")
		d         = flag.Int("d", 2, "criterion 1 distance floor")
		dprime    = flag.Float64("dprime", 0.86, "criterion 2 normalized cutoff")
		gsize     = flag.Int("gsize", 20, "maximum group size")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}

	recs, err := lbe.ReadFasta(*in)
	if err != nil {
		log.Fatal(err)
	}
	peptides := make([]string, len(recs))
	for i, r := range recs {
		peptides[i] = r.Sequence
	}

	cfg := lbe.GroupConfig{D: *d, DPrime: *dprime, GroupSize: *gsize}
	switch *criterion {
	case 1:
		cfg.Criterion = core.AbsoluteEdit
	case 2:
		cfg.Criterion = core.NormalizedEdit
	default:
		log.Fatalf("unknown criterion %d", *criterion)
	}

	g, err := lbe.Group(peptides, cfg)
	if err != nil {
		log.Fatal(err)
	}

	clustered := g.Clustered(peptides)
	groupOf := g.GroupOf()
	outRecs := make([]lbe.FastaRecord, len(clustered))
	for i, seq := range clustered {
		outRecs[i] = lbe.FastaRecord{
			Header:   fmt.Sprintf("pep|%06d| group=%d", i, groupOf[i]),
			Sequence: seq,
		}
	}
	if err := lbe.WriteFasta(*out, outRecs); err != nil {
		log.Fatal(err)
	}

	// Group-size histogram for a quick look at clustering quality.
	hist := map[int]int{}
	maxSize := 0
	for _, sz := range g.Sizes {
		hist[sz]++
		if sz > maxSize {
			maxSize = sz
		}
	}
	log.Printf("clustered %d peptides into %d groups (max size %d); wrote %s",
		len(peptides), g.NumGroups(), maxSize, *out)
	for sz := 1; sz <= maxSize; sz++ {
		if hist[sz] > 0 {
			log.Printf("  groups of size %3d: %d", sz, hist[sz])
		}
	}
}
