// Command lbe-index builds an SLM fragment-ion index over a peptide FASTA
// database. By default it reports the index dimensions and memory
// footprint — the numbers behind the paper's Fig. 5. With -out it instead
// builds a full partitioned session (grouping, policy partition, one
// parallel-built SLM index per shard, mapping table) and persists it as a
// store directory that lbe-serve -index and lbe-search -index warm-start
// from without rebuilding.
//
// Usage:
//
//	lbe-index -in peptides.fasta -max-mods 3                  # stats report
//	lbe-index -in proteins.fasta -digest -out store -ranks 4  # emit a session store
//	lbe-index -in proteins.fasta -digest -out cluster -ranks 4 -shard-sets 2
//	                                     # emit a partitioned cluster store
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lbe"
	"lbe/internal/cliutil"
	"lbe/internal/mass"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-index: ")

	var (
		in       = flag.String("in", "", "input peptide FASTA (required)")
		doDigest = flag.Bool("digest", false, "treat -in as proteins and digest in-process")
		maxMods  = flag.Int("max-mods", 5, "maximum modified residues per peptide")
		resol    = flag.Float64("resolution", 0.01, "bucket resolution r (Da)")
		fragTol  = flag.Float64("frag-tol", 0.05, "fragment mass tolerance ∆F (Da)")
		precTol  = flag.String("prec-tol", "open", "precursor mass tolerance ∆M: e.g. 0.5Da, 20ppm, or open (paper default)")
		maxFrag  = flag.Float64("max-frag-mz", 2000, "instrument scan range upper bound (Da)")
		outDir   = flag.String("out", "", "emit a persistent session store into this directory instead of the stats report")
		ranks    = flag.Int("ranks", 4, "shards in the emitted store (with -out)")
		policy   = flag.String("policy", "cyclic", "distribution policy for the store: chunk|cyclic|random")
		seed     = flag.Int64("seed", 0, "seed for the random policy (with -out)")
		topK     = flag.Int("topk", 5, "PSMs reported per query by the stored session (with -out)")
		sets     = flag.Int("shard-sets", 0, "partition the emitted store into this many shard-sets for scatter/gather serving (with -out; 0 emits a whole store)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}
	precursorTol, err := mass.ParseTolerance(*precTol)
	if err != nil {
		log.Fatal(err)
	}
	if *outDir == "" {
		// Mirror the -index flag discipline of lbe-serve/lbe-search:
		// refuse store-only flags loudly instead of silently ignoring
		// them in the stats report.
		if bad := cliutil.ExplicitlySet("ranks", "policy", "seed", "topk", "shard-sets"); len(bad) > 0 {
			log.Fatalf("-%s only applies with -out (it shapes the emitted store)", bad[0])
		}
	}

	recs, err := lbe.ReadFasta(*in)
	if err != nil {
		log.Fatal(err)
	}
	peptides := make([]string, len(recs))
	for i, r := range recs {
		peptides[i] = r.Sequence
	}
	if *doDigest {
		digested, err := cliutil.DigestPeptides(peptides)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("digested %d proteins into %d unique peptides", len(peptides), len(digested))
		peptides = digested
	}

	if *outDir != "" {
		emitStore(peptides, *outDir, *ranks, *policy, *seed, *topK, *maxMods, *resol, *fragTol, precursorTol, *maxFrag, *sets)
		return
	}

	params := lbe.DefaultSearchParams()
	params.Mods.MaxPerPep = *maxMods
	params.Resolution = *resol
	params.MaxFragmentMZ = *maxFrag
	params.FragmentTol.Value = *fragTol
	params.PrecursorTol = precursorTol

	start := time.Now()
	ix, err := lbe.BuildIndex(peptides, params)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("peptides:          %d\n", len(peptides))
	fmt.Printf("index rows:        %d (peptide variants / theoretical spectra)\n", ix.NumRows())
	fmt.Printf("fragment postings: %d\n", ix.NumIons())
	fmt.Printf("resident size:     %.2f MB\n", float64(ix.MemoryBytes())/(1<<20))
	fmt.Printf("build peak size:   %.2f MB\n", float64(ix.BuildPeakBytes())/(1<<20))
	fmt.Printf("build time:        %v\n", elapsed)
	if ix.NumRows() > 0 {
		perM := float64(ix.MemoryBytes()) / (1 << 30) / (float64(ix.NumRows()) / 1e6)
		fmt.Printf("GB per million spectra: %.4f (paper: 0.346 shared / 0.366 distributed)\n", perM)
	}
}

// emitStore builds a partitioned session with the same defaults lbe-serve
// uses and persists it, so a store built here and a session built there
// from the same inputs are interchangeable. With sets > 0 the store is
// emitted as a partitioned cluster (one self-contained shard-set store
// per set-NN directory plus cluster.json) for scatter/gather serving.
func emitStore(peptides []string, dir string, ranks int, policy string, seed int64, topK, maxMods int, resol, fragTol float64, precTol mass.Tolerance, maxFrag float64, sets int) {
	scfg := lbe.DefaultSessionConfig()
	scfg.Params.Mods.MaxPerPep = maxMods
	scfg.Params.Resolution = resol
	scfg.Params.MaxFragmentMZ = maxFrag
	scfg.Params.FragmentTol.Value = fragTol
	scfg.Params.PrecursorTol = precTol
	scfg.Seed = seed
	scfg.TopK = topK
	pol, err := lbe.ParsePolicy(policy)
	if err != nil {
		log.Fatal(err)
	}
	scfg.Policy = pol
	scfg.Shards = ranks

	buildStart := time.Now()
	sess, err := lbe.NewSession(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	buildTime := time.Since(buildStart)

	saveStart := time.Now()
	if sets > 0 {
		cm, err := sess.SavePartitioned(dir, peptides, sets)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("cluster:    %s\n", dir)
		fmt.Printf("peptides:   %d\n", len(peptides))
		fmt.Printf("shards:     %d (%s policy) over %d shard-sets\n", sess.NumShards(), pol, cm.Sets)
		for i, sd := range cm.SetDirs {
			fmt.Printf("  set %02d:   %s  digest %s\n", i, sd, cm.SetDigests[i])
		}
		fmt.Printf("cluster digest: %s\n", cm.ClusterDigest)
		fmt.Printf("build time: %v\n", buildTime)
		fmt.Printf("save time:  %v\n", time.Since(saveStart))
		return
	}
	if err := sess.Save(dir, peptides); err != nil {
		log.Fatal(err)
	}
	fmt.Printf("store:      %s\n", dir)
	fmt.Printf("peptides:   %d\n", len(peptides))
	fmt.Printf("shards:     %d (%s policy)\n", sess.NumShards(), pol)
	fmt.Printf("groups:     %d\n", sess.Groups())
	fmt.Printf("index size: %.2f MB (+ %.2f KB mapping)\n",
		float64(sess.IndexBytes())/(1<<20), float64(sess.MappingBytes())/(1<<10))
	fmt.Printf("build time: %v\n", buildTime)
	fmt.Printf("save time:  %v\n", time.Since(saveStart))
}
