// Command lbe-index builds an SLM fragment-ion index over a peptide FASTA
// database and reports its dimensions and memory footprint — the numbers
// behind the paper's Fig. 5.
//
// Usage:
//
//	lbe-index -in peptides.fasta -max-mods 3
package main

import (
	"flag"
	"fmt"
	"log"
	"time"

	"lbe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-index: ")

	var (
		in      = flag.String("in", "", "input peptide FASTA (required)")
		maxMods = flag.Int("max-mods", 5, "maximum modified residues per peptide")
		resol   = flag.Float64("resolution", 0.01, "bucket resolution r (Da)")
		fragTol = flag.Float64("frag-tol", 0.05, "fragment mass tolerance ∆F (Da)")
		maxFrag = flag.Float64("max-frag-mz", 2000, "instrument scan range upper bound (Da)")
	)
	flag.Parse()
	if *in == "" {
		log.Fatal("-in is required")
	}

	recs, err := lbe.ReadFasta(*in)
	if err != nil {
		log.Fatal(err)
	}
	peptides := make([]string, len(recs))
	for i, r := range recs {
		peptides[i] = r.Sequence
	}

	params := lbe.DefaultSearchParams()
	params.Mods.MaxPerPep = *maxMods
	params.Resolution = *resol
	params.MaxFragmentMZ = *maxFrag
	params.FragmentTol.Value = *fragTol

	start := time.Now()
	ix, err := lbe.BuildIndex(peptides, params)
	if err != nil {
		log.Fatal(err)
	}
	elapsed := time.Since(start)

	fmt.Printf("peptides:          %d\n", len(peptides))
	fmt.Printf("index rows:        %d (peptide variants / theoretical spectra)\n", ix.NumRows())
	fmt.Printf("fragment postings: %d\n", ix.NumIons())
	fmt.Printf("resident size:     %.2f MB\n", float64(ix.MemoryBytes())/(1<<20))
	fmt.Printf("build peak size:   %.2f MB\n", float64(ix.BuildPeakBytes())/(1<<20))
	fmt.Printf("build time:        %v\n", elapsed)
	if ix.NumRows() > 0 {
		perM := float64(ix.MemoryBytes()) / (1 << 30) / (float64(ix.NumRows()) / 1e6)
		fmt.Printf("GB per million spectra: %.4f (paper: 0.346 shared / 0.366 distributed)\n", perM)
	}
}
