// Command lbe-digest performs in-silico tryptic digestion of a protein
// FASTA database into a peptide FASTA database, with deduplication —
// the role of OpenMS Digestor + DBToolkit in the paper's pipeline (§V-A1).
//
// Usage:
//
//	lbe-digest -in db.fasta -out peptides.fasta
package main

import (
	"flag"
	"fmt"
	"log"

	"lbe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-digest: ")

	var (
		in      = flag.String("in", "", "input protein FASTA (required)")
		out     = flag.String("out", "", "output peptide FASTA (required)")
		missed  = flag.Int("missed", 2, "maximum missed cleavages")
		minLen  = flag.Int("min-len", 6, "minimum peptide length")
		maxLen  = flag.Int("max-len", 40, "maximum peptide length")
		minMass = flag.Float64("min-mass", 100, "minimum peptide mass (Da)")
		maxMass = flag.Float64("max-mass", 5000, "maximum peptide mass (Da)")
		noDedup = flag.Bool("no-dedup", false, "keep duplicate peptide sequences")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}

	recs, err := lbe.ReadFasta(*in)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}

	cfg := lbe.DefaultDigestConfig()
	cfg.MissedCleavages = *missed
	cfg.MinLen, cfg.MaxLen = *minLen, *maxLen
	cfg.MinMass, cfg.MaxMass = *minMass, *maxMass

	peps, err := lbe.Digest(cfg, proteins)
	if err != nil {
		log.Fatal(err)
	}
	total := len(peps)
	if !*noDedup {
		peps = lbe.Dedup(peps)
	}

	outRecs := make([]lbe.FastaRecord, len(peps))
	for i, p := range peps {
		outRecs[i] = lbe.FastaRecord{
			Header:   fmt.Sprintf("pep|%06d| protein=%s missed=%d mass=%.4f", i, recs[p.Protein].ID(), p.Missed, p.Mass),
			Sequence: p.Sequence,
		}
	}
	if err := lbe.WriteFasta(*out, outRecs); err != nil {
		log.Fatal(err)
	}
	log.Printf("digested %d proteins -> %d peptides (%d before dedup); wrote %s",
		len(recs), len(peps), total, *out)
}
