// Command lbe-router runs the multi-node serving front-end: it fans
// POST /search requests over a set of lbe-serve replicas with
// least-loaded dispatch driven by the replicas' /stats telemetry,
// periodic health probing, automatic failover onto another replica when
// an attempt fails, and a consistency gate that refuses to mix replicas
// whose store digests differ. It serves the same /search, /healthz,
// /stats and /metrics surface as a replica, so lbe-client works
// unchanged through it.
//
// With -scatter the replicas are holders of a partitioned store's
// shard-sets (lbe-index -shard-sets): every /search fans out to one
// healthy holder per set and the per-set top-K results are merged into
// the bytes a whole-store session would return. The topology is
// discovered from the holders' /healthz announcements; no static
// configuration beyond the replica list is needed.
//
// Usage:
//
//	lbe-router -addr :8420 -replicas http://10.0.0.1:8417,http://10.0.0.2:8417
//	lbe-router -addr :8420 -replicas-file replicas.txt -probe 1s -retries 2
//	lbe-router -addr :8420 -scatter -replicas-file holders.txt
//
// The replicas file lists one base URL per line; blank lines and lines
// starting with '#' are ignored.
//
// The first SIGINT/SIGTERM drains gracefully: admission stops (503) and
// in-flight proxied requests complete. A second signal kills the
// process.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"lbe/internal/router"
)

// replicaList merges the -replicas flag and -replicas-file contents.
func replicaList(csv, file string) ([]string, error) {
	var out []string
	for _, u := range strings.Split(csv, ",") {
		if u = strings.TrimSpace(u); u != "" {
			out = append(out, u)
		}
	}
	if file != "" {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for _, line := range strings.Split(string(data), "\n") {
			line = strings.TrimSpace(line)
			if line == "" || strings.HasPrefix(line, "#") {
				continue
			}
			out = append(out, line)
		}
	}
	return out, nil
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-router: ")

	var (
		addr     = flag.String("addr", ":8420", "listen address (host:port; port 0 picks a free port)")
		replicas = flag.String("replicas", "", "comma-separated lbe-serve base URLs")
		repFile  = flag.String("replicas-file", "", "file with one replica base URL per line (# comments)")
		probe    = flag.Duration("probe", 2*time.Second, "health/stats probe interval")
		probeTO  = flag.Duration("probe-timeout", time.Second, "per-probe deadline")
		timeout  = flag.Duration("timeout", 30*time.Second, "per-attempt deadline for proxied /search requests")
		retries  = flag.Int("retries", 1, "failover retries: extra replicas a failed request may try")
		stale    = flag.Duration("stale", 0, "load snapshot age beyond which dispatch falls back to round-robin (0 = 3x probe interval)")
		drain    = flag.Duration("drain", 30*time.Second, "graceful shutdown grace period")
		cacheB   = flag.Int64("cache-bytes", 64<<20, "merged-response cache byte budget (0 disables caching)")
		cacheTTL = flag.Duration("cache-ttl", 0, "cache entry TTL (0 = until evicted or digest change)")
		scatter  = flag.Bool("scatter", false, "scatter/gather mode: replicas hold shard-sets of one partitioned store")
	)
	flag.Parse()

	urls, err := replicaList(*replicas, *repFile)
	if err != nil {
		log.Fatal(err)
	}
	if len(urls) == 0 {
		log.Fatal("-replicas or -replicas-file is required")
	}

	rt, err := router.New(urls, router.Config{
		ProbeInterval:   *probe,
		ProbeTimeout:    *probeTO,
		RequestTimeout:  *timeout,
		FailoverRetries: *retries,
		StatsStaleAfter: *stale,
		CacheBytes:      *cacheB,
		CacheTTL:        *cacheTTL,
		Scatter:         *scatter,
	})
	if err != nil {
		log.Fatal(err)
	}
	st := rt.Stats()
	healthy := 0
	for _, r := range st.Replicas {
		state := "down"
		switch {
		case r.Healthy && r.DigestMismatch:
			state = "digest mismatch (excluded)"
		case r.Healthy:
			state = "healthy"
			healthy++
		}
		if r.ShardSet != nil {
			state = fmt.Sprintf("%s, shard-set %d/%d", state, r.ShardSet.Set, r.ShardSet.Sets)
		}
		log.Printf("replica %s: %s", r.URL, state)
	}
	if st.Scatter != nil {
		log.Printf("scatter/gather over %d shard-sets (%d covered, %d total shards), cluster digest %.12s",
			st.Scatter.Sets, st.Scatter.Covered, st.Scatter.TotalShards, st.Digest)
	} else {
		log.Printf("routing over %d replicas (%d healthy), digest %.12s", len(urls), healthy, st.Digest)
	}

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: rt.Handler()}
	// The resolved address line is load-bearing: tests and scripts that
	// boot with port 0 scan for it to learn the port.
	log.Printf("listening on %s", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()

	sigCtx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	select {
	case err := <-serveErr:
		log.Fatal(err)
	case <-sigCtx.Done():
	}
	stop() // second signal now kills the process outright

	log.Printf("draining: admission stopped, finishing in-flight requests (grace %v)", *drain)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drain)
	defer cancel()
	if err := rt.Shutdown(shutdownCtx); err != nil {
		log.Printf("drain incomplete: %v", err)
	}
	if err := httpSrv.Shutdown(shutdownCtx); err != nil && !errors.Is(err, context.DeadlineExceeded) {
		log.Printf("http shutdown: %v", err)
	}
	st = rt.Stats()
	fmt.Fprintf(os.Stderr,
		"lbe-router: routed %d requests (%d failovers); rejected %d no-replica / %d draining\n",
		st.Routed, st.Failovers, st.RejectedNoReplica, st.RejectedDrain)
}
