// Command lbe-client drives a running lbe-serve instance: it reads query
// spectra from an MS2 file, POSTs them to /search from concurrent
// closed-loop workers, and reports per-query match counts. It exits
// non-zero if any request fails or (with -require-matches) if any query
// comes back empty, which makes it the assertion step of the CI serving
// smoke test.
//
// Usage:
//
//	lbe-client -addr http://127.0.0.1:8417 -ms2 run.ms2 -n 20 -c 4 -require-matches
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lbe"
)

// Wire types mirror internal/server's JSON contract.
type spectrumJSON struct {
	Scan        int          `json:"scan,omitempty"`
	PrecursorMZ float64      `json:"precursor_mz"`
	Charge      int          `json:"charge,omitempty"`
	Peaks       [][2]float64 `json:"peaks"`
}

type searchRequest struct {
	Spectra []spectrumJSON `json:"spectra"`
}

type searchResponse struct {
	Results []struct {
		Scan int `json:"scan"`
		PSMs []struct {
			Peptide  uint32  `json:"peptide"`
			Sequence string  `json:"sequence"`
			Score    float64 `json:"score"`
		} `json:"psms"`
	} `json:"results"`
}

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-client: ")

	var (
		addr    = flag.String("addr", "http://127.0.0.1:8417", "lbe-serve base URL")
		ms2In   = flag.String("ms2", "", "MS2 query file (required)")
		n       = flag.Int("n", 0, "spectra to send (0 = all)")
		workers = flag.Int("c", 4, "concurrent closed-loop clients")
		require = flag.Bool("require-matches", false, "exit non-zero if any query returns zero PSMs")
		quiet   = flag.Bool("q", false, "suppress per-query output")
	)
	flag.Parse()
	if *ms2In == "" {
		log.Fatal("-ms2 is required")
	}

	queries, err := lbe.ReadMS2(*ms2In)
	if err != nil {
		log.Fatal(err)
	}
	if *n > 0 && *n < len(queries) {
		queries = queries[:*n]
	}
	if len(queries) == 0 {
		log.Fatal("no spectra to send")
	}
	base := strings.TrimRight(*addr, "/")

	var (
		next    atomic.Int64
		empty   atomic.Int64
		matched atomic.Int64
		failed  atomic.Int64
		wg      sync.WaitGroup
	)
	client := &http.Client{Timeout: 60 * time.Second}
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				sj := spectrumJSON{
					Scan:        q.Scan,
					PrecursorMZ: q.PrecursorMZ,
					Charge:      q.Charge,
					Peaks:       make([][2]float64, len(q.Peaks)),
				}
				for p, pk := range q.Peaks {
					sj.Peaks[p] = [2]float64{pk.MZ, pk.Intensity}
				}
				body, err := json.Marshal(searchRequest{Spectra: []spectrumJSON{sj}})
				if err != nil {
					log.Printf("scan %d: %v", q.Scan, err)
					failed.Add(1)
					continue
				}
				resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
				if err != nil {
					log.Printf("scan %d: %v", q.Scan, err)
					failed.Add(1)
					continue
				}
				raw, err := io.ReadAll(resp.Body)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					log.Printf("scan %d: status %d: %s", q.Scan, resp.StatusCode, raw)
					failed.Add(1)
					continue
				}
				var sr searchResponse
				if err := json.Unmarshal(raw, &sr); err != nil || len(sr.Results) != 1 {
					log.Printf("scan %d: bad response: %v (%s)", q.Scan, err, raw)
					failed.Add(1)
					continue
				}
				psms := sr.Results[0].PSMs
				if len(psms) == 0 {
					empty.Add(1)
					if !*quiet {
						fmt.Printf("scan %d: no match\n", q.Scan)
					}
					continue
				}
				matched.Add(1)
				if !*quiet {
					fmt.Printf("scan %d: %d PSMs, best %s score %.4f\n",
						q.Scan, len(psms), psms[0].Sequence, psms[0].Score)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	log.Printf("%d queries in %v (%.1f rps, %d workers): %d matched, %d empty, %d failed",
		len(queries), wall.Round(time.Millisecond),
		float64(len(queries))/wall.Seconds(), *workers,
		matched.Load(), empty.Load(), failed.Load())
	if failed.Load() > 0 {
		log.Fatalf("%d requests failed", failed.Load())
	}
	if *require && empty.Load() > 0 {
		log.Fatalf("%d queries returned zero PSMs with -require-matches set", empty.Load())
	}
	if *require && matched.Load() == 0 {
		log.Fatal("no query matched anything with -require-matches set")
	}
}
