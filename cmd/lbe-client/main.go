// Command lbe-client drives a running lbe-serve instance (or an
// lbe-router front-end — the surface is identical): it reads query
// spectra from an MS2 file, POSTs them to /search from concurrent
// closed-loop workers through the typed internal/api client, and reports
// per-query match counts. It exits non-zero if any request fails or
// (with -require-matches) if any query comes back empty, which makes it
// the assertion step of the CI serving smoke tests.
//
// Usage:
//
//	lbe-client -addr http://127.0.0.1:8417 -ms2 run.ms2 -n 20 -c 4 -require-matches
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"sync"
	"sync/atomic"
	"time"

	"lbe"
	"lbe/internal/api"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-client: ")

	var (
		addr    = flag.String("addr", "http://127.0.0.1:8417", "lbe-serve or lbe-router base URL")
		ms2In   = flag.String("ms2", "", "MS2 query file (required)")
		n       = flag.Int("n", 0, "spectra to send (0 = all)")
		workers = flag.Int("c", 4, "concurrent closed-loop clients")
		timeout = flag.Duration("timeout", 60*time.Second, "per-attempt request deadline")
		retries = flag.Int("retries", 2, "retries per request on transport errors and overload statuses")
		require = flag.Bool("require-matches", false, "exit non-zero if any query returns zero PSMs")
		quiet   = flag.Bool("q", false, "suppress per-query output")
	)
	flag.Parse()
	if *ms2In == "" {
		log.Fatal("-ms2 is required")
	}

	queries, err := lbe.ReadMS2(*ms2In)
	if err != nil {
		log.Fatal(err)
	}
	if *n > 0 && *n < len(queries) {
		queries = queries[:*n]
	}
	if len(queries) == 0 {
		log.Fatal("no spectra to send")
	}

	client := api.New(*addr)
	client.Timeout = *timeout
	client.Retries = *retries

	var (
		next    atomic.Int64
		empty   atomic.Int64
		matched atomic.Int64
		failed  atomic.Int64
		wg      sync.WaitGroup
	)
	ctx := context.Background()
	start := time.Now()
	for w := 0; w < *workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(queries) {
					return
				}
				q := queries[i]
				sr, err := client.SearchSpectra(ctx, api.FromExperimental(q))
				if err != nil {
					log.Printf("scan %d: %v", q.Scan, err)
					failed.Add(1)
					continue
				}
				if len(sr.Results) != 1 {
					log.Printf("scan %d: response carries %d results, want 1", q.Scan, len(sr.Results))
					failed.Add(1)
					continue
				}
				psms := sr.Results[0].PSMs
				if len(psms) == 0 {
					empty.Add(1)
					if !*quiet {
						fmt.Printf("scan %d: no match\n", q.Scan)
					}
					continue
				}
				matched.Add(1)
				if !*quiet {
					fmt.Printf("scan %d: %d PSMs, best %s score %.4f\n",
						q.Scan, len(psms), psms[0].Sequence, psms[0].Score)
				}
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)

	log.Printf("%d queries in %v (%.1f rps, %d workers): %d matched, %d empty, %d failed",
		len(queries), wall.Round(time.Millisecond),
		float64(len(queries))/wall.Seconds(), *workers,
		matched.Load(), empty.Load(), failed.Load())
	if failed.Load() > 0 {
		log.Fatalf("%d requests failed", failed.Load())
	}
	if *require && empty.Load() > 0 {
		log.Fatalf("%d queries returned zero PSMs with -require-matches set", empty.Load())
	}
	if *require && matched.Load() == 0 {
		log.Fatal("no query matched anything with -require-matches set")
	}
}
