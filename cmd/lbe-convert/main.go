// Command lbe-convert converts MS/MS spectra files between the mzML and
// MS2 formats — the role msconvert (ProteoWizard) plays in the paper's
// pipeline (§III-E). The direction is inferred from file extensions.
//
// Usage:
//
//	lbe-convert -in run.mzML -out run.ms2
//	lbe-convert -in run.ms2 -out run.mzML -compress
package main

import (
	"flag"
	"log"
	"strings"

	"lbe"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-convert: ")

	var (
		in       = flag.String("in", "", "input spectra file: .ms2 or .mzML (required)")
		out      = flag.String("out", "", "output spectra file: .ms2 or .mzML (required)")
		compress = flag.Bool("compress", true, "zlib-compress mzML binary arrays")
	)
	flag.Parse()
	if *in == "" || *out == "" {
		log.Fatal("-in and -out are required")
	}

	var scans []lbe.Spectrum
	var err error
	switch {
	case strings.HasSuffix(strings.ToLower(*in), ".ms2"):
		scans, err = lbe.ReadMS2(*in)
	case strings.HasSuffix(strings.ToLower(*in), ".mzml"):
		scans, err = lbe.ReadMzML(*in)
	default:
		log.Fatalf("unrecognized input extension: %s", *in)
	}
	if err != nil {
		log.Fatal(err)
	}

	switch {
	case strings.HasSuffix(strings.ToLower(*out), ".ms2"):
		err = lbe.WriteMS2(*out, scans)
	case strings.HasSuffix(strings.ToLower(*out), ".mzml"):
		err = lbe.WriteMzML(*out, scans, *compress)
	default:
		log.Fatalf("unrecognized output extension: %s", *out)
	}
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("converted %d spectra: %s -> %s", len(scans), *in, *out)
}
