// Command lbe-search runs the LBE peptide search: it reads a peptide
// FASTA database and an MS2 query file, builds a streaming Session that
// partitions the database into shards under the chosen policy, pipelines
// every query batch through it, and writes a TSV report of
// peptide-to-spectrum matches. Per-shard load statistics (the paper's
// Eq. 1 LI) are printed at the end. Ctrl-C cancels the pipelined query
// phase cleanly; a second Ctrl-C force-kills non-cancellable phases.
//
// Usage:
//
//	lbe-search -db peptides.fasta -ms2 run.ms2 -ranks 16 -policy cyclic -out psms.tsv
//	lbe-search -index store -ms2 run.ms2 -out psms.tsv
//
// The -tcp flag runs the same search as a virtual cluster over loopback
// TCP links instead of the in-process Session, and -serial runs the
// single-index shared-memory baseline. With -index the session is
// warm-started from a persistent store written by lbe-index -out
// instead of rebuilt from FASTA; the store fixes the database-shape
// knobs, so only -threads and -batch still apply.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"time"

	"lbe"
	"lbe/internal/cliutil"
	"lbe/internal/core"
	"lbe/internal/stats"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-search: ")

	var (
		db      = flag.String("db", "", "peptide FASTA database (required unless -index is set)")
		index   = flag.String("index", "", "warm-start from a session store directory written by lbe-index -out")
		mmap    = flag.Bool("mmap", true, "memory-map the store's shard indexes (page-cache shared, heap fallback); only with -index")
		ms2In   = flag.String("ms2", "", "MS2 query file (required)")
		out     = flag.String("out", "", "output TSV report ('-' or empty for stdout)")
		ranks   = flag.Int("ranks", 4, "shards (virtual cluster size)")
		policy  = flag.String("policy", "cyclic", "distribution policy: chunk|cyclic|random")
		seed    = flag.Int64("seed", 0, "seed for the random policy")
		topK    = flag.Int("topk", 5, "PSMs reported per query")
		maxMods = flag.Int("max-mods", 2, "max modified residues per peptide")
		serial  = flag.Bool("serial", false, "run the shared-memory baseline instead")
		tcp     = flag.Bool("tcp", false, "connect ranks over loopback TCP instead of a Session")
		threads = flag.Int("threads", 0, "scheduler workers per query batch (0 = one per core; with -tcp, per-rank hybrid threads where 0 = serial)")
		batch   = flag.Int("batch", 256, "pipeline batch size in queries (0 = one batch)")
		chunk   = flag.Int("chunk", 0, "scheduler chunk size in queries (0 = auto-tune from observed work)")
		steal   = flag.Bool("steal", true, "work-stealing scheduler (false = static per-shard chunks)")
		weights = flag.String("weights", "", "comma-separated machine speeds for heterogeneous clusters")
		withFDR = flag.Bool("fdr", false, "append reversed decoys and report q-values per PSM")
		fdrCut  = flag.Float64("fdr-threshold", 0.01, "FDR acceptance threshold reported with -fdr")
		noWin   = flag.Bool("full-scan", false, "disable the precursor-windowed postings scan (byte-identical results; for benchmarking and equivalence gates)")
	)
	flag.Parse()
	if *ms2In == "" {
		log.Fatal("-ms2 is required")
	}
	if *index != "" {
		// The store fixes everything that shapes the built database;
		// combining it with build-time flags (or the rebuild-only modes)
		// would silently ignore them.
		if bad := cliutil.ExplicitlySet("db", "serial", "tcp", "fdr", "fdr-threshold",
			"ranks", "policy", "seed", "max-mods", "topk", "weights"); len(bad) > 0 {
			log.Fatalf("-%s cannot be combined with -index: the store fixes it", bad[0])
		}
	} else {
		if *db == "" {
			log.Fatal("-db or -index is required")
		}
		if bad := cliutil.ExplicitlySet("mmap"); len(bad) > 0 {
			log.Fatalf("-%s requires -index: only a stored index can be memory-mapped", bad[0])
		}
	}

	var peptides []string
	var sess *lbe.Session
	cfg := lbe.DefaultEngineConfig()
	if *index == "" {
		recs, err := lbe.ReadFasta(*db)
		if err != nil {
			log.Fatal(err)
		}
		peptides = make([]string, len(recs))
		for i, r := range recs {
			peptides[i] = r.Sequence
		}

		cfg.Params.Mods.MaxPerPep = *maxMods
		cfg.Seed = *seed
		cfg.TopK = *topK
		pol, err := core.ParsePolicy(*policy)
		if err != nil {
			log.Fatal(err)
		}
		cfg.Policy = pol
		cfg.ThreadsPerRank = *threads
		cfg.BatchSize = *batch
		cfg.ChunkSize = *chunk
		cfg.Stealing = *steal
		if *weights != "" {
			for _, tok := range strings.Split(*weights, ",") {
				w, err := strconv.ParseFloat(strings.TrimSpace(tok), 64)
				if err != nil {
					log.Fatalf("bad weight %q: %v", tok, err)
				}
				cfg.Weights = append(cfg.Weights, w)
			}
		}
	} else {
		loadStart := time.Now()
		var err error
		sess, peptides, err = lbe.OpenSessionOptions(*index, lbe.OpenOptions{MapStore: *mmap})
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		if peptides == nil {
			log.Fatal("store was saved without its peptide list; rebuild it with lbe-index -out")
		}
		sess.Tune(*threads, *batch)
		cliutil.TuneSchedulerFromFlags(sess, *chunk, *steal)
		cfg = sess.Config()
		log.Printf("session restored from %s: %d shards (%d mmap-backed), %d groups, index %.2f MB, loaded in %v",
			*index, sess.NumShards(), sess.MappedShards(), sess.Groups(), float64(sess.IndexBytes())/(1<<20),
			time.Since(loadStart).Round(time.Millisecond))
	}

	firstDecoy := len(peptides)
	if *withFDR {
		peptides, firstDecoy = lbe.DecoyDB(peptides)
		log.Printf("appended %d decoys (target-decoy FDR)", len(peptides)-firstDecoy)
	}
	queries, err := lbe.ReadMS2(*ms2In)
	if err != nil {
		log.Fatal(err)
	}
	log.Printf("database: %d peptides; queries: %d spectra", firstDecoy, len(queries))
	if sess != nil && *batch <= 0 {
		// Honor the documented "-batch 0 = one batch" contract in
		// warm-start mode too; Tune alone would keep the stored size.
		sess.Tune(0, max(len(queries), 1))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	go func() {
		// After the first Ctrl-C cancels ctx, unregister so a second
		// Ctrl-C force-kills even phases that do not watch the context
		// (the index build, the -serial baseline).
		<-ctx.Done()
		stop()
	}()

	if *noWin && (*serial || *tcp) {
		log.Fatal("-full-scan applies to session modes only (it toggles the session's shard kernels)")
	}

	start := time.Now()
	var res *lbe.Result
	switch {
	case *serial:
		res, err = lbe.RunSerial(peptides, queries, cfg)
	case *tcp:
		res, err = lbe.RunOverTCPCtx(ctx, *ranks, peptides, queries, cfg)
	case sess != nil: // warm-started from -index
		sess.SetFullScan(*noWin)
		res, err = sess.Search(ctx, queries)
	default:
		sess, err = lbe.NewSession(peptides, lbe.SessionConfig{Config: cfg, Shards: *ranks})
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		sess.SetFullScan(*noWin)
		log.Printf("session ready: %d shards, %d groups, index %.2f MB, built in %v",
			sess.NumShards(), sess.Groups(), float64(sess.IndexBytes())/(1<<20),
			time.Since(start).Round(time.Millisecond))
		res, err = sess.Search(ctx, queries)
	}
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	// TSV report.
	var w *bufio.Writer
	if *out == "" || *out == "-" {
		w = bufio.NewWriter(os.Stdout)
	} else {
		f, err := os.Create(*out)
		if err != nil {
			log.Fatal(err)
		}
		defer f.Close()
		w = bufio.NewWriter(f)
	}
	// With -fdr, compute q-values over the best PSM per query.
	var qvals []float64
	var flat []lbe.ScoredPSM
	psmQval := map[[2]int]float64{} // (query, rank within query) -> q
	if *withFDR {
		for q, psms := range res.PSMs {
			for i, p := range psms {
				flat = append(flat, lbe.ScoredPSM{
					Query:   q,
					Peptide: p.Peptide,
					Score:   p.Score,
					IsDecoy: int(p.Peptide) >= firstDecoy,
				})
				psmQval[[2]int{q, i}] = 1
			}
		}
		qvals = lbe.QValues(flat)
		k := 0
		for q, psms := range res.PSMs {
			for i := range psms {
				psmQval[[2]int{q, i}] = qvals[k]
				k++
			}
		}
	}

	if *withFDR {
		fmt.Fprintln(w, "scan\trank\tpeptide\tsequence\tshared\tscore\tprecursor\tdecoy\tqvalue")
	} else {
		fmt.Fprintln(w, "scan\trank\tpeptide\tsequence\tshared\tscore\tprecursor")
	}
	reported := 0
	for q, psms := range res.PSMs {
		for rank, p := range psms {
			if *withFDR {
				decoy := 0
				if int(p.Peptide) >= firstDecoy {
					decoy = 1
				}
				fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%.4f\t%.4f\t%d\t%.4f\n",
					queries[q].Scan, rank+1, p.Peptide, peptides[p.Peptide],
					p.Shared, p.Score, p.Precursor, decoy, psmQval[[2]int{q, rank}])
			} else {
				fmt.Fprintf(w, "%d\t%d\t%d\t%s\t%d\t%.4f\t%.4f\n",
					queries[q].Scan, rank+1, p.Peptide, peptides[p.Peptide], p.Shared, p.Score, p.Precursor)
			}
			reported++
		}
	}
	if err := w.Flush(); err != nil {
		log.Fatal(err)
	}
	if *withFDR {
		accepted, err := lbe.AcceptedAt(flat, qvals, *fdrCut)
		if err != nil {
			log.Fatal(err)
		}
		log.Printf("target PSMs accepted at %.1f%% FDR: %d", 100**fdrCut, accepted)
	}

	// Load statistics (stderr, so the TSV stays clean on stdout).
	log.Printf("searched %d spectra in %v; %d PSMs reported; %d cPSMs scored",
		len(queries), wall.Round(time.Millisecond), reported, res.CandidatePSMs())
	if !*serial {
		wu := lbe.WorkUnits(res.Stats)
		log.Printf("policy %s on %d ranks: load imbalance %.1f%% (work units), wasted CPU work %.0f units",
			cfg.Policy, len(res.Stats), 100*stats.LoadImbalance(wu), stats.WastedCPUTime(wu))
		for _, s := range res.Stats {
			log.Printf("  rank %2d: %7d peptides %8d rows %12d work units  query %8.3fms",
				s.Rank, s.Peptides, s.Rows, s.Work.IonHits+s.Work.Scored,
				float64(s.QueryNanos)/1e6)
		}
	}
}
