// Command lbe-bench regenerates the paper's evaluation: every figure
// (Figs. 5-11), the in-text setup statistics, and the design-choice
// ablations, printing markdown tables suitable for EXPERIMENTS.md.
//
// Usage:
//
//	lbe-bench                    # everything, laptop scale (1/1000 of paper)
//	lbe-bench -fig 6             # just the load-imbalance figure
//	lbe-bench -scale 0.01 -out EXPERIMENTS.md
//	lbe-bench -fig coldstart -json artifacts/
//
// Besides the markdown tables, every figure is also written as a
// machine-readable BENCH_<id>.json artifact (series plus headline
// metrics) into the -json directory, "" to disable — the hook for
// tracking perf trajectories across commits without scraping tables.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"lbe/internal/bench"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("lbe-bench: ")

	var (
		fig     = flag.String("fig", "all", "which experiment: all|setup|5|6|7|8|9|10|11|grouping|transport|hetero|filtration|kernel|session|serve|coldstart|steal|route|cache|scatter")
		scale   = flag.Float64("scale", 1.0/1000, "fraction of the paper's index sizes")
		ranks   = flag.Int("ranks", 16, "partitions for the LI figures")
		queries = flag.Int("queries", 800, "query spectra per run")
		seed    = flag.Uint64("seed", 1, "dataset seed")
		out     = flag.String("out", "", "write markdown to this file instead of stdout")
		jsonDir = flag.String("json", ".", "directory for machine-readable BENCH_<id>.json artifacts ('' disables)")
	)
	flag.Parse()

	o := bench.DefaultOptions()
	o.Scale = *scale
	o.Ranks = *ranks
	o.Queries = *queries
	o.Seed = *seed

	// Interrupt cancels the run's root context, so a Ctrl-C mid-figure
	// tears down streaming sessions instead of abandoning them.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	o.Ctx = ctx

	runners := map[string]func(bench.Options) (bench.Figure, error){
		"setup":      bench.SetupStats,
		"5":          bench.Fig5,
		"6":          bench.Fig6,
		"7":          bench.Fig7,
		"8":          bench.Fig8,
		"9":          bench.Fig9,
		"10":         bench.Fig10,
		"11":         bench.Fig11,
		"grouping":   bench.AblationGrouping,
		"transport":  bench.AblationTransport,
		"hetero":     bench.AblationHeterogeneous,
		"filtration": bench.FiltrationComparison,
		"kernel":     bench.Kernel,
		"session":    bench.SessionThroughput,
		"serve":      bench.ServeThroughput,
		"coldstart":  bench.ColdStart,
		"steal":      bench.Steal,
		"route":      bench.Route,
		"cache":      bench.CacheHit,
		"scatter":    bench.Scatter,
	}

	var sb strings.Builder
	var figs []bench.Figure
	start := time.Now()
	if *fig == "all" {
		var err error
		figs, err = bench.All(o)
		if err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			sb.WriteString(f.Markdown())
			sb.WriteString("\n")
		}
	} else {
		run, ok := runners[*fig]
		if !ok {
			log.Fatalf("unknown -fig %q; options: all setup 5 6 7 8 9 10 11 grouping transport hetero filtration kernel session serve coldstart steal route cache scatter", *fig)
		}
		f, err := run(o)
		if err != nil {
			log.Fatal(err)
		}
		figs = append(figs, f)
		sb.WriteString(f.Markdown())
	}
	log.Printf("experiments completed in %v", time.Since(start).Round(time.Millisecond))

	if *jsonDir != "" {
		if err := os.MkdirAll(*jsonDir, 0o755); err != nil {
			log.Fatal(err)
		}
		for _, f := range figs {
			doc, err := json.MarshalIndent(f, "", "  ")
			if err != nil {
				log.Fatal(err)
			}
			path := filepath.Join(*jsonDir, "BENCH_"+f.ID+".json")
			if err := os.WriteFile(path, append(doc, '\n'), 0o644); err != nil {
				log.Fatal(err)
			}
			log.Printf("wrote %s", path)
		}
	}

	if *out == "" {
		fmt.Print(sb.String())
		return
	}
	if err := os.WriteFile(*out, []byte(sb.String()), 0o644); err != nil {
		log.Fatal(err)
	}
	log.Printf("wrote %s", *out)
}
