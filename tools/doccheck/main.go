// Command doccheck enforces the godoc contract on the packages named on
// its command line: every package must carry a package comment, and
// every exported top-level identifier — functions, methods on exported
// types, types, consts, vars — must carry a doc comment (the same
// surface golint's exported rule covered). It exits non-zero listing
// each violation, so CI fails when an exported name lands without
// documentation.
//
// Usage:
//
//	go run ./tools/doccheck ./internal/api ./internal/router
//
// Only the standard library is used; the check costs no dependency.
package main

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: doccheck <package-dir> [package-dir...]")
		os.Exit(2)
	}
	bad := 0
	for _, dir := range os.Args[1:] {
		dir = strings.TrimPrefix(dir, "./")
		for _, v := range checkDir(dir) {
			fmt.Fprintln(os.Stderr, v)
			bad++
		}
	}
	if bad > 0 {
		fmt.Fprintf(os.Stderr, "doccheck: %d undocumented exported identifier(s)\n", bad)
		os.Exit(1)
	}
}

// checkDir parses one package directory (tests excluded) and returns one
// violation line per undocumented exported identifier.
func checkDir(dir string) []string {
	fset := token.NewFileSet()
	pkgs, err := parser.ParseDir(fset, dir, func(fi os.FileInfo) bool {
		return !strings.HasSuffix(fi.Name(), "_test.go")
	}, parser.ParseComments)
	if err != nil {
		return []string{fmt.Sprintf("%s: %v", dir, err)}
	}
	var out []string
	for _, pkg := range pkgs {
		hasPkgDoc := false
		for _, f := range pkg.Files {
			if f.Doc != nil && len(strings.TrimSpace(f.Doc.Text())) > 0 {
				hasPkgDoc = true
			}
		}
		if !hasPkgDoc {
			out = append(out, fmt.Sprintf("%s: package %s has no package comment", dir, pkg.Name))
		}
		// Deterministic file order for stable CI output.
		var names []string
		for name := range pkg.Files {
			names = append(names, name)
		}
		sortStrings(names)
		for _, name := range names {
			out = append(out, checkFile(fset, pkg.Files[name])...)
		}
	}
	return out
}

// checkFile walks one file's top-level declarations.
func checkFile(fset *token.FileSet, f *ast.File) []string {
	var out []string
	report := func(pos token.Pos, what string) {
		p := fset.Position(pos)
		out = append(out, fmt.Sprintf("%s:%d: %s is exported but has no doc comment", filepath.ToSlash(p.Filename), p.Line, what))
	}
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if !d.Name.IsExported() || d.Doc != nil {
				continue
			}
			// Methods on unexported receivers are internal surface.
			if d.Recv != nil && !exportedRecv(d.Recv) {
				continue
			}
			kind := "func " + d.Name.Name
			if d.Recv != nil {
				kind = "method " + recvName(d.Recv) + "." + d.Name.Name
			}
			report(d.Pos(), kind)
		case *ast.GenDecl:
			checkGenDecl(d, report)
		}
	}
	return out
}

// checkGenDecl handles const/var/type blocks: a doc comment on the
// declaration block stands in for per-spec comments; each exported spec
// otherwise needs its own.
func checkGenDecl(d *ast.GenDecl, report func(token.Pos, string)) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if !s.Name.IsExported() {
				continue
			}
			if s.Doc == nil && d.Doc == nil {
				report(s.Pos(), "type "+s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
					report(n.Pos(), d.Tok.String()+" "+n.Name)
				}
			}
		}
	}
}

// exportedRecv reports whether a method's receiver type is exported.
func exportedRecv(recv *ast.FieldList) bool {
	return ast.IsExported(recvName(recv))
}

// recvName extracts the receiver's base type name.
func recvName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}

// sortStrings is a dependency-free insertion sort (the lists are tiny).
func sortStrings(s []string) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
