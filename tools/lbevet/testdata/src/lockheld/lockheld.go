// Package lockheld exercises the lockheld analyzer: blocking while a
// same-function mutex is held is flagged; unlock-then-block, the
// select-with-default admission pattern, and goroutine bodies are legal.
package lockheld

import (
	"net/http"
	"sync"
	"time"
)

// S is a guarded box with a channel.
type S struct {
	mu sync.Mutex
	rw sync.RWMutex
	ch chan int
	v  int
}

// SendHeld sends on a channel while holding mu.
func (s *S) SendHeld(v int) {
	s.mu.Lock()
	s.ch <- v // want "channel send while s\\.mu is held"
	s.mu.Unlock()
}

// SendAfterUnlock releases first and is legal.
func (s *S) SendAfterUnlock(v int) {
	s.mu.Lock()
	s.v = v
	s.mu.Unlock()
	s.ch <- v
}

// SleepDeferred holds through a deferred unlock to the end of the body.
func (s *S) SleepDeferred() {
	s.mu.Lock()
	defer s.mu.Unlock()
	time.Sleep(time.Millisecond) // want "time\\.Sleep while s\\.mu is held"
}

// ReadHeldRecv receives while a read lock is held.
func (s *S) ReadHeldRecv() int {
	s.rw.RLock()
	defer s.rw.RUnlock()
	return <-s.ch // want "channel receive while s\\.rw is held"
}

// TrySendHeld uses a select with default — the coalescer's admission
// pattern — and is legal.
func (s *S) TrySendHeld(v int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	select {
	case s.ch <- v:
		return true
	default:
		return false
	}
}

// FetchHeld performs network I/O under the lock.
func (s *S) FetchHeld(url string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	resp, err := http.Get(url) // want "network I/O \\(http\\.Get\\) while s\\.mu is held"
	if err == nil {
		resp.Body.Close()
	}
}

// GoroutineSend is legal: the literal runs on its own flow.
func (s *S) GoroutineSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	go func() {
		s.ch <- v
	}()
}

// IgnoredSend carries a sanctioned suppression.
func (s *S) IgnoredSend(v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	//lbe:ignore lockheld receiver is unbuffered-ready by construction
	s.ch <- v
}
