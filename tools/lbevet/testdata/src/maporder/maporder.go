// Package maporder exercises the maporder analyzer: ordered-output
// composition inside map iteration is flagged, the collect-and-sort
// pattern stays legal.
package maporder

import (
	"bytes"
	"fmt"
	"sort"
)

// EncodeBad streams keys to a buffer in map order.
func EncodeBad(m map[string]int, buf *bytes.Buffer) {
	for k := range m {
		buf.WriteString(k) // want "composes ordered output inside a range over a map"
	}
}

// PrintBad formats into a stream in map order.
func PrintBad(m map[string]int, buf *bytes.Buffer) {
	for k, v := range m {
		fmt.Fprintf(buf, "%s=%d\n", k, v) // want "fmt\\.Fprintf composes ordered output"
	}
}

// ConcatBad accumulates a string across iterations.
func ConcatBad(m map[string]int) string {
	out := ""
	for k := range m {
		out += k // want "string built by \\+= inside a range over a map"
	}
	return out
}

// CollectSortGood is the blessed pattern: collect, sort, then write.
func CollectSortGood(m map[string]int, buf *bytes.Buffer) {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	for _, k := range keys {
		buf.WriteString(k)
	}
}

// LocalConcatGood builds a per-iteration string, which is order-free.
func LocalConcatGood(m map[string]int) []string {
	var out []string
	for k := range m {
		line := k
		line += "!"
		out = append(out, line)
	}
	return out
}

// IgnoredWrite carries a sanctioned suppression.
func IgnoredWrite(m map[string]struct{}, buf *bytes.Buffer) {
	for k := range m {
		//lbe:ignore maporder digest is XOR-folded downstream, order cannot matter
		buf.WriteString(k)
	}
}
