// Package ctxflow exercises the ctxflow analyzer: severed roots and
// exported blockers without a context are flagged; threading, teardown
// names, non-blocking selects and unexported helpers stay legal.
package ctxflow

import (
	"context"
	"net/http"
)

// Root severs the cancellation chain.
func Root() context.Context {
	return context.Background() // want "context\\.Background\\(\\) in library code"
}

// Todo is the same sever through the other constructor.
func Todo() context.Context {
	return context.TODO() // want "context\\.TODO\\(\\) in library code"
}

// Fetch round-trips without a context. The diagnostic lands on the name.
func Fetch(c *http.Client, url string) error { // want "exported Fetch performs network I/O \\(http\\.Get\\)"
	_, err := c.Get(url)
	return err
}

// FetchCtx accepts and threads a context.
func FetchCtx(ctx context.Context, c *http.Client, req *http.Request) error {
	_, err := c.Do(req.WithContext(ctx))
	return err
}

// Recv blocks on a channel without a context.
func Recv(ch chan int) int { // want "exported Recv receives from a channel"
	return <-ch
}

// TryRecv is non-blocking (select with default) and legal.
func TryRecv(ch chan int) (int, bool) {
	select {
	case v := <-ch:
		return v, true
	default:
		return 0, false
	}
}

// Close is teardown and exempt by name.
func Close(ch chan int) {
	<-ch
}

// recvInternal is unexported and out of rule 2's scope.
func recvInternal(ch chan int) int {
	return <-ch
}

// DrainDetached is a sanctioned process-lifetime root.
func DrainDetached() context.Context {
	//lbe:ignore ctxflow drain deadline is detached from request lifetime by design
	return context.Background()
}
