// Package hotdep is the dependency side of the hotpathalloc golden
// tests: the may-alloc fact exported for Describe must flow into the
// importing hotpath package.
package hotdep

import "fmt"

// Describe formats and therefore may allocate.
func Describe(n int) string {
	return fmt.Sprintf("n=%d", n)
}

// Add is allocation-free.
func Add(a, b int) int { return a + b }
