// Package ignorebad exercises the mandatory-reason contract: a bare
// //lbe:ignore suppresses nothing and is itself reported (asserted via
// vettest.Diagnostics, since the report lands on the directive's line).
package ignorebad

import "sync"

// T is a guarded box.
type T struct {
	mu sync.Mutex
	ch chan int
}

// BareIgnore has a reasonless directive; both the directive and the
// unsuppressed send are reported.
func (t *T) BareIgnore(v int) {
	t.mu.Lock()
	defer t.mu.Unlock()
	//lbe:ignore lockheld
	t.ch <- v
}
