// Package docvals holds undocumented values for the doccheck unit test:
// a trailing `// want` comment would count as documentation on a
// ValueSpec, so these are asserted via vettest.Diagnostics instead.
package docvals

const Answer = 42

var Count int
