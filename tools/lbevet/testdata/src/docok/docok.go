// Package docok is fully documented and produces no diagnostics.
package docok

// Exported is documented.
type Exported struct{}

// Method is documented.
func (Exported) Method() {}

// Answer is documented.
const Answer = 42

// Count is documented.
var Count int
