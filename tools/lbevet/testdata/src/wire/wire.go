// Package wire exercises the wiretags analyzer: every exported field
// needs an explicit json tag, and structs the metrics renderer touches
// must be rendered completely.
package wire

// StatsResponse is rendered by metrics.go; Digest is forgotten there.
type StatsResponse struct {
	Queries   int64  `json:"queries"`
	Batches   int64  `json:"batches"`
	Digest    string `json:"digest"`     // want "wire field StatsResponse\\.Digest is on /stats but not rendered"
	ReplicaID string `json:"replica_id"` //lbe:ignore wiretags identity string, unbounded label cardinality
	secret    int
}

// BadResponse is missing a tag on Count.
type BadResponse struct {
	Count int // want "exported wire field BadResponse\\.Count has no json tag"
	Named int `json:"named"`
}

// Internal opts its handle out of encoding explicitly, which is legal.
type Internal struct {
	Conn any `json:"-"`
}
