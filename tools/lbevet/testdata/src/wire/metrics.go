package wire

import "strconv"

// FormatMetrics renders StatsResponse — incompletely: Digest is never
// selected here, which rule 2 reports at the field's declaration.
func FormatMetrics(s *StatsResponse) string {
	out := "queries " + strconv.FormatInt(s.Queries, 10) + "\n"
	out += "batches " + strconv.FormatInt(s.Batches, 10) + "\n"
	return out
}
