package docbad // want "package docbad has no package comment"

type Exported struct{} // want "type Exported is exported but has no doc comment"

func PublicFunc() {} // want "func PublicFunc is exported but has no doc comment"

func (Exported) Method() {} // want "method Exported\\.Method is exported but has no doc comment"

// Documented is fine.
func Documented() {}

// unexported surface is out of scope.
func internal() {}

type hidden struct{}

func (hidden) Method() {}
