// Package hotpath exercises the hotpathalloc analyzer: direct
// allocation constructs, transitive in-package and cross-package call
// chains, the constructs that stay legal, and suppression.
package hotpath

import (
	"fmt"
	"sort"

	"hotdep"
)

// HotDirect hits three direct construct classes on the hot path.
//
//lbe:hotpath
func HotDirect(xs []int) string {
	sort.Slice(xs, func(i, j int) bool { return xs[i] < xs[j] }) // want "calls sort\\.Slice" "closure captures variable xs"
	m := make(map[int]int)                                       // want "makes an unsized map"
	m[0] = len(xs)
	return fmt.Sprintf("%d", len(xs)) // want "calls fmt\\.Sprintf"
}

// HotClosure allocates a closure per call.
//
//lbe:hotpath
func HotClosure(n int) func() int {
	f := func() int { return n } // want "closure captures variable n"
	return f
}

// HotLiterals allocates maps and append-grown slices.
//
//lbe:hotpath
func HotLiterals(k string, ys []string) []string {
	m := map[string]int{k: 1} // want "composes a map literal"
	_ = m
	out := append(ys, k) // want "appends into a slice freshly declared by this statement"
	return out
}

// helper may allocate three frames down from a hot caller.
func helper() string {
	return fmt.Sprintf("x")
}

// HotCallsHelper reaches an allocation through an in-package callee.
//
//lbe:hotpath
func HotCallsHelper() string {
	return helper() // want "calls helper, which may allocate: calls fmt\\.Sprintf"
}

// HotCallsDep reaches an allocation through an imported module package;
// the verdict arrives as an analysis fact.
//
//lbe:hotpath
func HotCallsDep(n int) string {
	return hotdep.Describe(n) // want "calls Describe, which may allocate: calls fmt\\.Sprintf"
}

// HotClean is the legal shape: sized makes, copies, in-place reuse, and
// allocation-free callees.
//
//lbe:hotpath
func HotClean(xs []int) int {
	buf := make([]int, len(xs))
	copy(buf, xs)
	return hotdep.Add(len(buf), 1)
}

// HotIgnored carries a sanctioned suppression.
//
//lbe:hotpath
func HotIgnored() string {
	//lbe:ignore hotpathalloc cold-start formatting, bench guard covers the warm path
	return fmt.Sprintf("x")
}

// coldAlloc is not annotated, so its constructs are not reported.
func coldAlloc() map[int]int {
	return map[int]int{}
}
