// Command lbevet is the project's static-analysis gate: a go/analysis
// multichecker carrying the analyzers that make LBE's load-bearing
// invariants machine-checked — the //lbe:hotpath zero-alloc contract
// (hotpathalloc), deterministic output composition (maporder), context
// plumbing (ctxflow), lock discipline (lockheld), the JSON wire and
// /metrics contract (wiretags), and the godoc surface (doccheck).
//
// Usage:
//
//	go run ./tools/lbevet ./...
//
// exits 0 when the tree is clean and non-zero naming the analyzer and
// position of every violation. Single analyzers can be toggled with
// standard vet flags, e.g. `go run ./tools/lbevet -lockheld=false ./...`
// — see docs/STATIC_ANALYSIS.md.
//
// Mechanically the binary is both halves of the `go vet -vettool`
// protocol: invoked with package patterns it re-executes itself through
// `go vet -vettool=<self>`, which calls it back per package with a
// *.cfg unit file that the unitchecker runs. Driving through go vet
// (instead of go/packages) keeps the dependency surface to the
// toolchain-vendored part of x/tools and gives analysis-fact flow plus
// vet's per-package result caching for free.
package main

import (
	"fmt"
	"os"
	"os/exec"
	"strings"

	"golang.org/x/tools/go/analysis/unitchecker"

	"lbe/tools/lbevet/analyzers"
)

func main() {
	// go vet speaks to a vettool in three shapes: -V=full (version
	// stamp), -flags (flag inventory), and <unit>.cfg (analyze one
	// package). Everything else is a human invocation.
	if len(os.Args) >= 2 {
		arg := os.Args[1]
		if arg == "-V=full" || arg == "-flags" || strings.HasSuffix(arg, ".cfg") {
			unitchecker.Main(analyzers.All()...) // does not return
		}
	}
	os.Exit(drive(os.Args[1:]))
}

// drive re-executes the checker across package patterns via
// `go vet -vettool=<self>`, passing analyzer flags through and
// defaulting to ./... when no pattern is given.
func drive(args []string) int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintf(os.Stderr, "lbevet: cannot locate own executable: %v\n", err)
		return 2
	}
	hasPattern := false
	for _, a := range args {
		if !strings.HasPrefix(a, "-") {
			hasPattern = true
			break
		}
	}
	vetArgs := append([]string{"vet", "-vettool=" + exe}, args...)
	if !hasPattern {
		vetArgs = append(vetArgs, "./...")
	}
	cmd := exec.Command("go", vetArgs...)
	cmd.Stdout = os.Stdout
	cmd.Stderr = os.Stderr
	cmd.Stdin = os.Stdin
	if err := cmd.Run(); err != nil {
		if ee, ok := err.(*exec.ExitError); ok {
			return ee.ExitCode()
		}
		fmt.Fprintf(os.Stderr, "lbevet: go vet: %v\n", err)
		return 2
	}
	return 0
}
