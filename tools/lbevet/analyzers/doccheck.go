package analyzers

import (
	"go/ast"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Doccheck is the godoc gate that previously lived in tools/doccheck,
// folded into the multichecker so one `go run ./tools/lbevet ./...` is
// the whole project gate. For the packages named by -pkgs (the serving
// and scheduling surfaces, plus lbevet itself so the tool passes its own
// gates) it requires a package comment and a doc comment on every
// exported top-level identifier — functions, methods on exported types,
// types, consts and vars (golint's exported rule surface).
var Doccheck = &analysis.Analyzer{
	Name: "doccheck",
	Doc:  "require doc comments on the exported surface of the contract packages",
	Run:  runDoccheck,
}

// docPkgs is the comma-separated list of package paths the gate covers.
var docPkgs = strings.Join([]string{
	"lbe/internal/api",
	"lbe/internal/router",
	"lbe/internal/qcache",
	"lbe/internal/sched",
	"lbe/tools/lbevet/analyzers",
	"lbe/tools/lbevet/vettest",
}, ",")

func init() {
	Doccheck.Flags.StringVar(&docPkgs, "pkgs", docPkgs, "comma-separated package paths whose exported surface must be documented")
}

func runDoccheck(pass *analysis.Pass) (any, error) {
	covered := false
	for _, p := range strings.Split(docPkgs, ",") {
		if pass.Pkg.Path() == strings.TrimSpace(p) {
			covered = true
			break
		}
	}
	if !covered {
		return nil, nil
	}
	ig := ignoresFor(pass, "doccheck")

	hasPkgDoc := false
	for _, f := range pass.Files {
		if f.Doc != nil && strings.TrimSpace(f.Doc.Text()) != "" {
			hasPkgDoc = true
		}
	}
	if !hasPkgDoc && len(pass.Files) > 0 {
		// Deterministic anchor: the lexically first file's package clause.
		first := pass.Files[0]
		for _, f := range pass.Files[1:] {
			if pass.Fset.Position(f.Pos()).Filename < pass.Fset.Position(first.Pos()).Filename {
				first = f
			}
		}
		ig.report(pass, first.Name.Pos(), "package %s has no package comment", pass.Pkg.Name())
	}

	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				checkFuncDoc(pass, ig, d)
			case *ast.GenDecl:
				checkGenDeclDoc(pass, ig, d)
			}
		}
	}
	return nil, nil
}

// checkFuncDoc reports exported functions and methods (on exported
// receivers) lacking doc comments.
func checkFuncDoc(pass *analysis.Pass, ig *ignoreSet, d *ast.FuncDecl) {
	if !d.Name.IsExported() || d.Doc != nil {
		return
	}
	if d.Recv != nil {
		recv := recvBaseName(d.Recv)
		if !ast.IsExported(recv) {
			return // methods on unexported receivers are internal surface
		}
		ig.report(pass, d.Pos(), "method %s.%s is exported but has no doc comment", recv, d.Name.Name)
		return
	}
	ig.report(pass, d.Pos(), "func %s is exported but has no doc comment", d.Name.Name)
}

// checkGenDeclDoc handles const/var/type blocks: a doc comment on the
// declaration block stands in for per-spec comments; each exported spec
// otherwise needs its own.
func checkGenDeclDoc(pass *analysis.Pass, ig *ignoreSet, d *ast.GenDecl) {
	for _, spec := range d.Specs {
		switch s := spec.(type) {
		case *ast.TypeSpec:
			if s.Name.IsExported() && s.Doc == nil && d.Doc == nil {
				ig.report(pass, s.Pos(), "type %s is exported but has no doc comment", s.Name.Name)
			}
		case *ast.ValueSpec:
			for _, n := range s.Names {
				if n.IsExported() && s.Doc == nil && d.Doc == nil && s.Comment == nil {
					ig.report(pass, n.Pos(), "%s %s is exported but has no doc comment", d.Tok, n.Name)
				}
			}
		}
	}
}

// recvBaseName extracts the receiver's base type name.
func recvBaseName(recv *ast.FieldList) string {
	if len(recv.List) == 0 {
		return ""
	}
	t := recv.List[0].Type
	for {
		switch tt := t.(type) {
		case *ast.StarExpr:
			t = tt.X
		case *ast.IndexExpr: // generic receiver
			t = tt.X
		case *ast.IndexListExpr:
			t = tt.X
		case *ast.Ident:
			return tt.Name
		default:
			return ""
		}
	}
}
