package analyzers

import (
	"bytes"
	"go/ast"
	"go/printer"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Lockheld enforces the lock discipline the coalescer, replica registry
// and answer caches rely on: a sync.Mutex/RWMutex acquired in a function
// must not be held across a blocking operation. While a lock acquired in
// the same function is held it reports:
//
//   - channel sends and receives (select statements with a default
//     clause are non-blocking and stay legal — that is the coalescer's
//     admission pattern),
//   - select statements without a default clause,
//   - time.Sleep and sync.WaitGroup.Wait (sync.Cond.Wait is exempt: it
//     releases the lock by contract),
//   - network I/O (net, net/http) and file I/O (os open/read/write).
//
// The analysis is syntactic and per-function: a deferred Unlock holds to
// the end of the function; an Unlock on a conditional path is treated as
// releasing. Cross-function lock flows are out of scope. Intentional
// blocking under a lock carries //lbe:ignore lockheld <reason>.
var Lockheld = &analysis.Analyzer{
	Name: "lockheld",
	Doc:  "report blocking operations while a mutex acquired in the same function is held",
	Run:  runLockheld,
}

func runLockheld(pass *analysis.Pass) (any, error) {
	ig := ignoresFor(pass, "lockheld")
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				checkLockFlow(pass, ig, fd)
			}
		}
	}
	return nil, nil
}

// checkLockFlow walks one function body in source order, tracking which
// mutexes are held.
func checkLockFlow(pass *analysis.Pass, ig *ignoreSet, fd *ast.FuncDecl) {
	held := map[string]token.Pos{} // receiver expr -> Lock position
	var walk func(n ast.Node) bool

	reportIfHeld := func(pos token.Pos, what string) {
		mu := ""
		for m := range held {
			if mu == "" || m < mu {
				mu = m
			}
		}
		if mu != "" {
			ig.report(pass, pos, "%s while %s is held (locked in the same function)", what, mu)
		}
	}

	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncLit:
			// A literal's body runs on its own flow (often a goroutine);
			// scan it with a fresh held set.
			saved := held
			held = map[string]token.Pos{}
			ast.Inspect(n.Body, walk)
			held = saved
			return false
		case *ast.DeferStmt:
			if recv, op, ok := lockOp(pass, n.Call); ok && (op == "Lock" || op == "RLock") {
				held[recv] = n.Pos()
			}
			// A deferred Unlock releases at return; the lock stays held
			// for the rest of the body, which is exactly what we model by
			// not removing it.
			return false
		case *ast.CallExpr:
			if recv, op, ok := lockOp(pass, n); ok {
				switch op {
				case "Lock", "RLock":
					held[recv] = n.Pos()
				case "Unlock", "RUnlock":
					delete(held, recv)
				}
				return true
			}
			if len(held) > 0 {
				if what := blockingCall(pass, n); what != "" {
					reportIfHeld(n.Pos(), what)
				}
			}
		case *ast.SendStmt:
			reportIfHeld(n.Pos(), "channel send")
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				reportIfHeld(n.Pos(), "channel receive")
			}
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, walk)
						}
					}
				}
				return false
			}
			reportIfHeld(n.Pos(), "blocking select")
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					reportIfHeld(n.Pos(), "range over a channel")
				}
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
}

// lockOp matches a call to (*sync.Mutex/RWMutex).Lock/RLock/Unlock/
// RUnlock, returning the printed receiver expression and the operation.
func lockOp(pass *analysis.Pass, call *ast.CallExpr) (recv, op string, ok bool) {
	sel, isSel := call.Fun.(*ast.SelectorExpr)
	if !isSel {
		return "", "", false
	}
	fn, isFn := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !isFn || fn.Pkg() == nil || fn.Pkg().Path() != "sync" {
		return "", "", false
	}
	switch fn.Name() {
	case "Lock", "RLock", "Unlock", "RUnlock":
		return exprString(pass.Fset, sel.X), fn.Name(), true
	}
	return "", "", false
}

// blockingCall returns a description when the call blocks (sleep,
// WaitGroup.Wait, network or file I/O), else "".
func blockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	switch fn.Pkg().Path() {
	case "time":
		if fn.Name() == "Sleep" {
			return "time.Sleep"
		}
	case "sync":
		if fn.Name() == "Wait" && recvNamed(fn) == "WaitGroup" {
			return "sync.WaitGroup.Wait"
		}
	case "net", "net/http":
		if name := netBlockingCall(pass, call); name != "" {
			return "network I/O (" + name + ")"
		}
	case "os":
		switch fn.Name() {
		case "Open", "OpenFile", "Create", "ReadFile", "WriteFile", "ReadDir":
			return "file I/O (os." + fn.Name() + ")"
		}
	}
	return ""
}

// recvNamed returns the name of a method's receiver type, or "".
func recvNamed(fn *types.Func) string {
	recv := fn.Type().(*types.Signature).Recv()
	if recv == nil {
		return ""
	}
	t := recv.Type()
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if named, ok := t.(*types.Named); ok {
		return named.Obj().Name()
	}
	return ""
}

// exprString prints an expression compactly for diagnostics.
func exprString(fset *token.FileSet, e ast.Expr) string {
	var buf bytes.Buffer
	if err := printer.Fprint(&buf, fset, e); err != nil {
		return "?"
	}
	return buf.String()
}
