package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Ctxflow enforces the cancellation-plumbing contract on the library
// packages: work started on behalf of a caller must be cancellable by
// that caller. Two rules, both skipping package main (binaries own their
// root contexts) and _test.go files:
//
//  1. context.Background() / context.TODO() are reported in library
//     code: a fresh root context severs the cancellation chain. Roots
//     that are genuinely process-lifetime (a server's base context, a
//     detached drain deadline) carry //lbe:ignore ctxflow <reason>.
//
//  2. An exported function that directly performs blocking channel
//     operations or network I/O must either accept a context.Context
//     parameter or demonstrably thread a stored one (reference a
//     context value in its body). Close/Stop/Flush are exempt by name:
//     teardown runs after cancellation no longer applies.
var Ctxflow = &analysis.Analyzer{
	Name: "ctxflow",
	Doc:  "report severed or missing context plumbing in library packages",
	Run:  runCtxflow,
}

func runCtxflow(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Name() == "main" {
		return nil, nil
	}
	ig := ignoresFor(pass, "ctxflow")

	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		// Rule 1: fresh root contexts in library code.
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func); ok {
				if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "context" {
					if fn.Name() == "Background" || fn.Name() == "TODO" {
						ig.report(pass, call.Pos(), "context.%s() in library code severs the caller's cancellation chain; thread a context.Context through instead", fn.Name())
					}
				}
			}
			return true
		})
		// Rule 2: exported blockers without a context.
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !fd.Name.IsExported() {
				continue
			}
			switch fd.Name.Name {
			case "Close", "Stop", "Flush":
				continue
			}
			if funcHasCtxParam(pass, fd) || funcUsesCtx(pass, fd) {
				continue
			}
			if op := firstBlockingOp(pass, fd); op != "" {
				ig.report(pass, fd.Name.Pos(), "exported %s %s but neither accepts nor threads a context.Context", fd.Name.Name, op)
			}
		}
	}
	return nil, nil
}

// isContextType reports whether t is context.Context.
func isContextType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}

// funcHasCtxParam reports whether the function declares a
// context.Context parameter.
func funcHasCtxParam(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	for _, field := range fd.Type.Params.List {
		if isContextType(pass.TypesInfo.TypeOf(field.Type)) {
			return true
		}
	}
	return false
}

// funcUsesCtx reports whether the body references any context.Context
// value (a stored s.ctx field counts as threading).
func funcUsesCtx(pass *analysis.Pass, fd *ast.FuncDecl) bool {
	uses := false
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		if uses {
			return false
		}
		e, ok := n.(ast.Expr)
		if !ok {
			return true
		}
		if t := pass.TypesInfo.TypeOf(e); t != nil && isContextType(t) {
			uses = true
		}
		return true
	})
	return uses
}

// firstBlockingOp returns a description of the first blocking channel or
// network operation performed directly by the function body (function
// literals are skipped: goroutines they start have their own flow), or
// "" if there is none.
func firstBlockingOp(pass *analysis.Pass, fd *ast.FuncDecl) string {
	op := ""
	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		if op != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.FuncLit:
			return false
		case *ast.SendStmt:
			op = "sends on a channel"
		case *ast.UnaryExpr:
			if n.Op == token.ARROW {
				op = "receives from a channel"
			}
		case *ast.SelectStmt:
			if selectHasDefault(n) {
				// Non-blocking: skip the comm clauses, keep walking bodies.
				for _, c := range n.Body.List {
					if cc, ok := c.(*ast.CommClause); ok {
						for _, s := range cc.Body {
							ast.Inspect(s, walk)
						}
					}
				}
				return false
			}
			op = "blocks in a select"
		case *ast.RangeStmt:
			if t := pass.TypesInfo.TypeOf(n.X); t != nil {
				if _, ok := t.Underlying().(*types.Chan); ok {
					op = "ranges over a channel"
				}
			}
		case *ast.CallExpr:
			if name := netBlockingCall(pass, n); name != "" {
				op = "performs network I/O (" + name + ")"
			}
		}
		return true
	}
	ast.Inspect(fd.Body, walk)
	return op
}

// selectHasDefault reports whether the select has a default clause.
func selectHasDefault(sel *ast.SelectStmt) bool {
	for _, c := range sel.Body.List {
		if cc, ok := c.(*ast.CommClause); ok && cc.Comm == nil {
			return true
		}
	}
	return false
}
