// Package analyzers holds lbevet's project-specific go/analysis
// analyzers: machine-checked forms of the invariants the LBE codebase
// otherwise enforces only through runtime tests — the zero-alloc warm
// Scratch hot path, deterministic (byte-identical) output composition,
// context plumbing through the serving tiers, lock discipline in the
// coalescer/registry/cache, the JSON wire contract, and the godoc
// surface. See docs/STATIC_ANALYSIS.md for the full catalogue and the
// //lbe:hotpath and //lbe:ignore annotations the analyzers understand.
package analyzers

import "golang.org/x/tools/go/analysis"

// All returns every lbevet analyzer, in the order they are reported.
func All() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		Hotpathalloc,
		Maporder,
		Ctxflow,
		Lockheld,
		Wiretags,
		Doccheck,
	}
}
