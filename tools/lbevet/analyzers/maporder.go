package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Maporder enforces the determinism invariant behind every byte-identity
// test in the tree: output that ends up on the wire, in a digest, or in
// a store file must never be composed in Go's randomized map iteration
// order. Inside a `range` over a map it reports:
//
//   - method calls that append to ordered sinks: Write, WriteString,
//     WriteByte, WriteRune, Encode, Sum (hashes, buffers, builders,
//     encoders),
//   - fmt.Fprint* / fmt.Print* calls (formatting into a stream),
//   - += concatenation onto a string declared outside the loop.
//
// Collecting map entries into a slice and sorting it afterwards is the
// blessed pattern and is not flagged (plain appends are legal). A body
// that must write under map iteration for a proven-order-free reason can
// carry `//lbe:ignore maporder <reason>`.
var Maporder = &analysis.Analyzer{
	Name: "maporder",
	Doc:  "report ordered-output composition inside randomized map iteration",
	Run:  runMaporder,
}

func runMaporder(pass *analysis.Pass) (any, error) {
	ig := ignoresFor(pass, "maporder")
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapType(pass.TypesInfo.TypeOf(rs.X)) {
				return true
			}
			if inTestFile(pass.Fset, rs.Pos()) {
				return false
			}
			checkMapRangeBody(pass, ig, rs)
			return true // nested map ranges are checked on their own
		})
	}
	return nil, nil
}

// orderedSinkMethods are method names that append to an ordered sink.
var orderedSinkMethods = map[string]bool{
	"Write":       true,
	"WriteString": true,
	"WriteByte":   true,
	"WriteRune":   true,
	"Encode":      true,
	"Sum":         true,
}

// checkMapRangeBody flags ordered-output composition within one map
// range body.
func checkMapRangeBody(pass *analysis.Pass, ig *ignoreSet, rs *ast.RangeStmt) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := orderedSinkCall(pass, n); ok {
				ig.report(pass, n.Pos(), "map iteration order is randomized: %s composes ordered output inside a range over a map (collect and sort instead)", name)
			}
		case *ast.AssignStmt:
			if n.Tok == token.ADD_ASSIGN && len(n.Lhs) == 1 && isOutsideString(pass, n.Lhs[0], rs) {
				ig.report(pass, n.Pos(), "map iteration order is randomized: string built by += inside a range over a map (collect and sort instead)")
			}
		}
		return true
	})
}

// orderedSinkCall reports whether the call writes to an ordered sink,
// returning a display name for the diagnostic.
func orderedSinkCall(pass *analysis.Pass, call *ast.CallExpr) (string, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return "", false
	}
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok {
		return "", false
	}
	if pkg := fn.Pkg(); pkg != nil && pkg.Path() == "fmt" {
		switch fn.Name() {
		case "Fprint", "Fprintf", "Fprintln", "Print", "Printf", "Println":
			return "fmt." + fn.Name(), true
		}
		return "", false
	}
	// A method named like an ordered-sink appender (hash.Hash,
	// bytes.Buffer, strings.Builder, json.Encoder, io.Writer, ...).
	if fn.Type().(*types.Signature).Recv() != nil && orderedSinkMethods[fn.Name()] {
		return "(" + types.TypeString(pass.TypesInfo.TypeOf(sel.X), types.RelativeTo(pass.Pkg)) + ")." + fn.Name(), true
	}
	return "", false
}

// isOutsideString reports whether lhs is a string-typed variable
// declared outside the range statement (so += accumulates across
// iterations in map order).
func isOutsideString(pass *analysis.Pass, lhs ast.Expr, rs *ast.RangeStmt) bool {
	id, ok := lhs.(*ast.Ident)
	if !ok {
		return false
	}
	v, ok := pass.TypesInfo.Uses[id].(*types.Var)
	if !ok {
		return false
	}
	if b, ok := v.Type().Underlying().(*types.Basic); !ok || b.Info()&types.IsString == 0 {
		return false
	}
	return v.Pos() < rs.Pos() || v.Pos() >= rs.End()
}
