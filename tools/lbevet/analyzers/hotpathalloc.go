package analyzers

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// Hotpathalloc enforces the zero-alloc contract on functions annotated
// //lbe:hotpath: neither the function nor anything it statically calls
// within the module may contain an allocation-inducing construct. The
// construct list matches the ones PR 6's AllocsPerRun guards were added
// to keep out of the warm-Scratch search path:
//
//   - any call into package fmt (formatting allocates),
//   - sort.Slice / sort.SliceStable / sort.SliceIsSorted / sort.Sort /
//     sort.Stable (interface + closure allocation per call; the hot path
//     uses the allocation-free slices.SortFunc instead),
//   - unsized make(map[...]...) and map composite literals,
//   - append into a slice freshly declared by the same statement, or
//     onto a nil/composite-literal base (growing a non-reused slice),
//   - function literals capturing enclosing variables (each closure
//     allocates; non-capturing literals like slices.SortFunc comparators
//     are free and stay legal).
//
// Sized makes (buffer growth under a capacity check) and struct literals
// stay legal: the guarded property is "no per-query allocation on the
// warm path", not "no allocation ever". Calls are followed through the
// module's own packages via analysis facts, so a helper that allocates
// three levels down is reported at the hot function's call site.
var Hotpathalloc = &analysis.Analyzer{
	Name:      "hotpathalloc",
	Doc:       "report allocation-inducing constructs reachable from //lbe:hotpath functions",
	Run:       runHotpathalloc,
	FactTypes: []analysis.Fact{(*AllocFact)(nil)},
}

// AllocFact marks a function that may allocate (directly or through a
// callee); it flows to importing packages so cross-package hot-path call
// chains are checked.
type AllocFact struct {
	Reason string
}

// AFact marks AllocFact as an analysis fact.
func (*AllocFact) AFact() {}

// String renders the fact for -json and debug output.
func (f *AllocFact) String() string { return "mayalloc(" + f.Reason + ")" }

// allocSite is one allocation-inducing construct inside a function body.
type allocSite struct {
	pos  token.Pos
	what string
}

// callSite is one statically-resolved call inside a function body.
type callSite struct {
	pos    token.Pos
	callee *types.Func
}

// hotFuncInfo gathers one function's local construct sites and callees.
type hotFuncInfo struct {
	decl  *ast.FuncDecl
	fn    *types.Func
	hot   bool
	sites []allocSite
	calls []callSite
}

func runHotpathalloc(pass *analysis.Pass) (any, error) {
	ig := ignoresFor(pass, "hotpathalloc")

	modPath := ""
	if pass.Module != nil {
		modPath = pass.Module.Path
	}
	inModule := func(fn *types.Func) bool {
		pkg := fn.Pkg()
		if pkg == nil {
			return false
		}
		if pkg == pass.Pkg {
			return true
		}
		if modPath == "" {
			// No module info (test harness): treat every analyzed
			// package as in-module; packages without facts contribute
			// nothing either way.
			return true
		}
		p := pkg.Path()
		return p == modPath || strings.HasPrefix(p, modPath+"/")
	}

	// Pass 1: collect every function's local sites and callees.
	infos := map[*types.Func]*hotFuncInfo{}
	var order []*hotFuncInfo
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			info := &hotFuncInfo{
				decl: fd,
				fn:   fn,
				hot:  hasDirective(fd.Doc, "lbe:hotpath"),
			}
			collectAllocs(pass, fd, info)
			infos[fn] = info
			order = append(order, info)
		}
	}

	// Pass 2: transitive may-alloc status. A function's status is its
	// first local construct, or the first callee whose status is
	// non-empty (in-package via the map, cross-package via facts).
	status := map[*types.Func]string{}
	onStack := map[*types.Func]bool{}
	var eval func(fn *types.Func) string
	eval = func(fn *types.Func) string {
		if s, ok := status[fn]; ok {
			return s
		}
		if onStack[fn] {
			return "" // recursion: the cycle's own constructs are found elsewhere
		}
		info, ok := infos[fn]
		if !ok {
			// Defined in another package: facts carry the verdict.
			var f AllocFact
			if inModule(fn) && pass.ImportObjectFact(fn, &f) {
				status[fn] = f.Reason
				return f.Reason
			}
			status[fn] = ""
			return ""
		}
		onStack[fn] = true
		defer delete(onStack, fn)
		s := ""
		if len(info.sites) > 0 {
			site := info.sites[0]
			s = fmt.Sprintf("%s at %s", site.what, pass.Fset.Position(site.pos))
		} else {
			for _, c := range info.calls {
				if !inModule(c.callee) {
					continue
				}
				if r := eval(c.callee); r != "" {
					s = fmt.Sprintf("calls %s: %s", c.callee.Name(), r)
					break
				}
			}
		}
		status[fn] = s
		return s
	}

	for _, info := range order {
		if s := eval(info.fn); s != "" && !inTestFile(pass.Fset, info.decl.Pos()) {
			pass.ExportObjectFact(info.fn, &AllocFact{Reason: s})
		}
	}

	// Pass 3: report, hot functions only.
	for _, info := range order {
		if !info.hot {
			continue
		}
		name := info.fn.Name()
		for _, site := range info.sites {
			ig.report(pass, site.pos, "hot path %s: %s", name, site.what)
		}
		for _, c := range info.calls {
			if !inModule(c.callee) {
				continue
			}
			if r := eval(c.callee); r != "" {
				ig.report(pass, c.pos, "hot path %s calls %s, which may allocate: %s", name, c.callee.Name(), r)
			}
		}
	}
	return nil, nil
}

// collectAllocs walks one function body recording allocation-inducing
// constructs and statically-resolved callees.
func collectAllocs(pass *analysis.Pass, fd *ast.FuncDecl, info *hotFuncInfo) {
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			collectCall(pass, n, info)
		case *ast.CompositeLit:
			if isMapType(pass.TypesInfo.TypeOf(n)) {
				info.sites = append(info.sites, allocSite{n.Pos(), "composes a map literal"})
			}
		case *ast.AssignStmt:
			if n.Tok == token.DEFINE {
				for _, rhs := range n.Rhs {
					if call, ok := rhs.(*ast.CallExpr); ok && isBuiltin(pass, call, "append") {
						info.sites = append(info.sites, allocSite{call.Pos(), "appends into a slice freshly declared by this statement"})
					}
				}
			}
		case *ast.FuncLit:
			if v := capturedVar(pass, fd, n); v != "" {
				info.sites = append(info.sites, allocSite{n.Pos(), "closure captures variable " + v})
			}
		}
		return true
	})
}

// collectCall classifies one call: a directly-flagged construct, or a
// resolved callee to follow transitively.
func collectCall(pass *analysis.Pass, call *ast.CallExpr, info *hotFuncInfo) {
	if isBuiltin(pass, call, "make") {
		if len(call.Args) == 1 && isMapType(pass.TypesInfo.TypeOf(call.Args[0])) {
			info.sites = append(info.sites, allocSite{call.Pos(), "makes an unsized map"})
		}
		return
	}
	if isBuiltin(pass, call, "append") {
		switch base := call.Args[0].(type) {
		case *ast.Ident:
			if base.Name == "nil" {
				info.sites = append(info.sites, allocSite{call.Pos(), "appends onto a nil base"})
			}
		case *ast.CompositeLit:
			info.sites = append(info.sites, allocSite{call.Pos(), "appends onto a composite-literal base"})
		}
		return
	}
	callee := typeutil.Callee(pass.TypesInfo, call)
	fn, ok := callee.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return
	}
	switch fn.Pkg().Path() {
	case "fmt":
		info.sites = append(info.sites, allocSite{call.Pos(), "calls fmt." + fn.Name()})
	case "sort":
		switch fn.Name() {
		case "Slice", "SliceStable", "SliceIsSorted", "Sort", "Stable":
			info.sites = append(info.sites, allocSite{call.Pos(), "calls sort." + fn.Name() + " (interface+closure allocation; use slices.SortFunc)"})
		}
	default:
		info.calls = append(info.calls, callSite{call.Pos(), fn})
	}
}

// capturedVar returns the name of a variable the function literal
// captures from its enclosing function, or "" when it captures nothing.
func capturedVar(pass *analysis.Pass, fd *ast.FuncDecl, lit *ast.FuncLit) string {
	captured := ""
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Captured: declared inside the enclosing function (including its
		// receiver/parameters) but outside the literal itself.
		if v.Pos() >= fd.Pos() && v.Pos() < fd.End() && (v.Pos() < lit.Pos() || v.Pos() >= lit.End()) {
			captured = v.Name()
		}
		return true
	})
	return captured
}

// isBuiltin reports whether the call invokes the named builtin.
func isBuiltin(pass *analysis.Pass, call *ast.CallExpr, name string) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != name {
		return false
	}
	_, ok = pass.TypesInfo.Uses[id].(*types.Builtin)
	return ok
}

// isMapType reports whether t's underlying type is a map.
func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}
