package analyzers

import (
	"go/ast"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/types/typeutil"
)

// netBlockingCall returns a display name when the call can block on the
// network: dialing, listening, accepting, reading or writing a net
// connection, or an http client round-trip / server loop. Constructors
// and plain accessors in net/net/http (http.NewServeMux, Header.Set,
// NewRequest, ...) are not blocking and return "".
func netBlockingCall(pass *analysis.Pass, call *ast.CallExpr) string {
	fn, ok := typeutil.Callee(pass.TypesInfo, call).(*types.Func)
	if !ok || fn.Pkg() == nil {
		return ""
	}
	name := fn.Name()
	method := fn.Type().(*types.Signature).Recv() != nil
	switch fn.Pkg().Path() {
	case "net":
		if !method && (strings.HasPrefix(name, "Dial") || strings.HasPrefix(name, "Listen")) {
			return "net." + name
		}
		if method {
			switch name {
			case "Read", "Write", "Accept", "ReadFrom", "WriteTo", "AcceptTCP":
				return "net." + name
			}
		}
	case "net/http":
		if !method {
			switch name {
			case "Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS":
				return "http." + name
			}
		} else {
			switch name {
			case "Do", "Get", "Post", "PostForm", "Head", "ListenAndServe", "ListenAndServeTLS", "Serve", "ServeTLS", "Shutdown":
				return "http." + name
			}
		}
	}
	return ""
}
