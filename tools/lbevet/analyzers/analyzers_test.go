package analyzers_test

import (
	"path/filepath"
	"strings"
	"testing"

	"lbe/tools/lbevet/analyzers"
	"lbe/tools/lbevet/vettest"
)

// testdata returns the shared golden tree, tools/lbevet/testdata.
func testdata(t *testing.T) string {
	t.Helper()
	dir, err := filepath.Abs("../testdata")
	if err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestHotpathalloc(t *testing.T) {
	// hotdep first: hotpath imports it and consumes its facts.
	vettest.Run(t, testdata(t), analyzers.Hotpathalloc, "hotdep", "hotpath")
}

func TestMaporder(t *testing.T) {
	vettest.Run(t, testdata(t), analyzers.Maporder, "maporder")
}

func TestCtxflow(t *testing.T) {
	vettest.Run(t, testdata(t), analyzers.Ctxflow, "ctxflow")
}

func TestCtxflowExemptsMain(t *testing.T) {
	vettest.Run(t, testdata(t), analyzers.Ctxflow, "ctxmain")
}

func TestLockheld(t *testing.T) {
	vettest.Run(t, testdata(t), analyzers.Lockheld, "lockheld")
}

func TestWiretags(t *testing.T) {
	if err := analyzers.Wiretags.Flags.Set("wirepkg", "wire"); err != nil {
		t.Fatal(err)
	}
	defer analyzers.Wiretags.Flags.Set("wirepkg", "lbe/internal/api")
	vettest.Run(t, testdata(t), analyzers.Wiretags, "wire")
}

func TestDoccheck(t *testing.T) {
	defaultPkgs := analyzers.Doccheck.Flags.Lookup("pkgs").Value.String()
	if err := analyzers.Doccheck.Flags.Set("pkgs", "docbad,docok"); err != nil {
		t.Fatal(err)
	}
	defer analyzers.Doccheck.Flags.Set("pkgs", defaultPkgs)
	vettest.Run(t, testdata(t), analyzers.Doccheck, "docbad", "docok")
}

// TestDoccheckValueSpecs covers undocumented const/var: a trailing want
// comment would itself count as documentation on a ValueSpec, so the
// golden mechanism cannot express these and they are asserted directly.
func TestDoccheckValueSpecs(t *testing.T) {
	defaultPkgs := analyzers.Doccheck.Flags.Lookup("pkgs").Value.String()
	if err := analyzers.Doccheck.Flags.Set("pkgs", "docvals"); err != nil {
		t.Fatal(err)
	}
	defer analyzers.Doccheck.Flags.Set("pkgs", defaultPkgs)
	diags := vettest.Diagnostics(t, testdata(t), analyzers.Doccheck, "docvals")
	wants := []string{
		"const Answer is exported but has no doc comment",
		"var Count is exported but has no doc comment",
	}
	if len(diags) != len(wants) {
		t.Fatalf("got %d diagnostics %v, want %d", len(diags), diags, len(wants))
	}
	for i, w := range wants {
		if !strings.Contains(diags[i], w) {
			t.Errorf("diagnostic %d = %q, want it to contain %q", i, diags[i], w)
		}
	}
}

// TestIgnoreNeedsReason pins the mandatory-reason contract: a bare
// //lbe:ignore is reported on its own line and suppresses nothing.
func TestIgnoreNeedsReason(t *testing.T) {
	diags := vettest.Diagnostics(t, testdata(t), analyzers.Lockheld, "ignorebad")
	if len(diags) != 2 {
		t.Fatalf("got %d diagnostics %v, want 2", len(diags), diags)
	}
	if !strings.Contains(diags[0], "lbe:ignore lockheld needs a non-empty reason") {
		t.Errorf("diagnostic 0 = %q, want the empty-reason report", diags[0])
	}
	if !strings.Contains(diags[1], "channel send while t.mu is held") {
		t.Errorf("diagnostic 1 = %q, want the unsuppressed send report", diags[1])
	}
}
