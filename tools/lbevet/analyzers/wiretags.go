package analyzers

import (
	"go/ast"
	"go/token"
	"go/types"
	"reflect"
	"sort"
	"strconv"

	"golang.org/x/tools/go/analysis"
)

// Wiretags guards the serving tier's wire contract, which lives in one
// package (internal/api) and is consumed by serve, router, client and
// the hand-rolled /metrics renderers. Two rules, applied only to the
// wire package (-wirepkg):
//
//  1. Every exported struct field must carry an explicit json tag: the
//     wire names are load-bearing (CI smokes and operators grep them),
//     so no field may fall back to Go-name encoding silently.
//
//  2. Every wire struct the /metrics renderers touch must be rendered
//     completely: if any field of a struct is selected in metrics.go,
//     all its exported fields must be. This catches wire-contract
//     drift — a counter added to /stats but forgotten on /metrics.
//     Fields that are deliberately stats-only (identity strings whose
//     label cardinality is unbounded, say) carry
//     //lbe:ignore wiretags <reason>.
var Wiretags = &analysis.Analyzer{
	Name: "wiretags",
	Doc:  "enforce json tags and /metrics rendering coverage on the wire package",
	Run:  runWiretags,
}

// wirePkg is the package path the analyzer applies to.
var wirePkg = "lbe/internal/api"

func init() {
	Wiretags.Flags.StringVar(&wirePkg, "wirepkg", wirePkg, "package path holding the wire contract")
}

func runWiretags(pass *analysis.Pass) (any, error) {
	if pass.Pkg.Path() != wirePkg {
		return nil, nil
	}
	ig := ignoresFor(pass, "wiretags")

	// Rule 1: explicit json tags on every exported wire field, and
	// collection of each struct's exported fields for rule 2.
	fields := map[string]map[string]*ast.Field{} // struct name -> field name -> decl
	for _, f := range pass.Files {
		if inTestFile(pass.Fset, f.Pos()) {
			continue
		}
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				st, ok := ts.Type.(*ast.StructType)
				if !ok {
					continue
				}
				byName := map[string]*ast.Field{}
				fields[ts.Name.Name] = byName
				for _, field := range st.Fields.List {
					for _, name := range field.Names {
						if !name.IsExported() {
							continue
						}
						byName[name.Name] = field
						if !hasJSONTag(field) {
							ig.report(pass, name.Pos(), "exported wire field %s.%s has no json tag; wire names must be explicit", ts.Name.Name, name.Name)
						}
					}
				}
			}
		}
	}

	// Rule 2: /metrics rendering coverage. Selections inside metrics.go
	// mark a struct as "rendered"; every exported field of a rendered
	// struct must be selected there.
	rendered := map[string]map[string]bool{} // struct name -> selected fields
	for _, f := range pass.Files {
		pos := pass.Fset.Position(f.Pos())
		if filepathBase(pos.Filename) != "metrics.go" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			s, ok := pass.TypesInfo.Selections[sel]
			if !ok || s.Kind() != types.FieldVal {
				return true
			}
			named, ok := derefNamed(s.Recv())
			if !ok || named.Obj().Pkg() != pass.Pkg {
				return true
			}
			name := named.Obj().Name()
			if rendered[name] == nil {
				rendered[name] = map[string]bool{}
			}
			rendered[name][sel.Sel.Name] = true
			return true
		})
	}
	type miss struct {
		pos        token.Pos
		structName string
		fieldName  string
	}
	var misses []miss
	for structName, selected := range rendered {
		for fieldName, field := range fields[structName] {
			if !selected[fieldName] {
				misses = append(misses, miss{field.Pos(), structName, fieldName})
			}
		}
	}
	sort.Slice(misses, func(a, b int) bool { return misses[a].pos < misses[b].pos })
	for _, m := range misses {
		ig.report(pass, m.pos, "wire field %s.%s is on /stats but not rendered by the /metrics renderers (metrics.go)", m.structName, m.fieldName)
	}
	return nil, nil
}

// hasJSONTag reports whether the field's tag has a non-empty json key.
func hasJSONTag(field *ast.Field) bool {
	if field.Tag == nil {
		return false
	}
	raw, err := strconv.Unquote(field.Tag.Value)
	if err != nil {
		return false
	}
	tag, ok := reflect.StructTag(raw).Lookup("json")
	return ok && tag != ""
}

// derefNamed unwraps pointers down to a named type.
func derefNamed(t types.Type) (*types.Named, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return named, ok
}

// filepathBase returns the last path element without importing
// path/filepath (positions always use forward or native slashes; both
// are handled).
func filepathBase(p string) string {
	for i := len(p) - 1; i >= 0; i-- {
		if p[i] == '/' || p[i] == '\\' {
			return p[i+1:]
		}
	}
	return p
}
