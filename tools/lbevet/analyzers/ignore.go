package analyzers

import (
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// ignorePrefix is the suppression directive: `//lbe:ignore <analyzer>
// <reason>`. It silences diagnostics of the named analyzer on the
// directive's own line and on the line directly below it (so it can ride
// as a trailing comment or stand on its own line above the code). The
// reason is mandatory: a bare ignore is itself reported, so every
// suppression in the tree explains why the invariant does not apply.
const ignorePrefix = "//lbe:ignore"

// ignoreSet holds one pass's parsed //lbe:ignore directives for a single
// analyzer, keyed by file name and line.
type ignoreSet struct {
	name  string
	fset  *token.FileSet
	lines map[string]map[int]bool // filename -> suppressed lines
}

// ignoresFor scans the pass's files for //lbe:ignore directives naming
// the analyzer. Directives with an empty reason are reported immediately
// (they suppress nothing), enforcing the "suppressions carry a reason"
// contract.
func ignoresFor(pass *analysis.Pass, name string) *ignoreSet {
	ig := &ignoreSet{name: name, fset: pass.Fset, lines: map[string]map[int]bool{}}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(c.Text, ignorePrefix))
				target, reason, _ := strings.Cut(rest, " ")
				if target != name {
					continue
				}
				if strings.TrimSpace(reason) == "" {
					pass.Reportf(c.Pos(), "lbe:ignore %s needs a non-empty reason", name)
					continue
				}
				p := pass.Fset.Position(c.Pos())
				m := ig.lines[p.Filename]
				if m == nil {
					m = map[int]bool{}
					ig.lines[p.Filename] = m
				}
				m[p.Line] = true
				m[p.Line+1] = true
			}
		}
	}
	return ig
}

// suppressed reports whether a diagnostic at pos is covered by an ignore
// directive.
func (ig *ignoreSet) suppressed(pos token.Pos) bool {
	p := ig.fset.Position(pos)
	return ig.lines[p.Filename][p.Line]
}

// report emits a diagnostic unless an //lbe:ignore directive covers it.
func (ig *ignoreSet) report(pass *analysis.Pass, pos token.Pos, format string, args ...any) {
	if ig.suppressed(pos) {
		return
	}
	pass.Reportf(pos, format, args...)
}

// inTestFile reports whether pos lands in a _test.go file. The project
// analyzers guard production invariants; test code is exempt, matching
// the doccheck behavior the suite absorbed.
func inTestFile(fset *token.FileSet, pos token.Pos) bool {
	return strings.HasSuffix(fset.Position(pos).Filename, "_test.go")
}

// hasDirective reports whether a doc comment carries the given
// //lbe:... directive (exact word, e.g. "lbe:hotpath").
func hasDirective(doc *ast.CommentGroup, directive string) bool {
	if doc == nil {
		return false
	}
	for _, c := range doc.List {
		text := strings.TrimPrefix(c.Text, "//")
		if text == directive || strings.HasPrefix(text, directive+" ") {
			return true
		}
	}
	return false
}
