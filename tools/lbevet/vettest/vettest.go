// Package vettest is a minimal analysistest substitute for the lbevet
// analyzers. The toolchain-vendored subset of x/tools (the only copy
// available offline) ships neither go/analysis/analysistest nor
// go/packages, so this package reimplements the golden-file flow on the
// standard library: parse testdata/src/<pkg>, type-check it with the
// source importer, run one analyzer with an in-memory fact store, and
// compare its diagnostics against `// want "regexp"` comments.
//
// Semantics intentionally mirror analysistest where the analyzers need
// them: packages listed earlier in a Run call are importable by later
// ones (facts flow between them), a `// want` comment matches
// diagnostics reported on its own line, and both unexpected diagnostics
// and unmatched expectations fail the test.
package vettest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run analyzes each listed package under dir/src and reports any
// mismatch against the packages' `// want` expectations as test errors.
// Packages are loaded in the given order; earlier packages are
// importable by later ones and analyzer facts flow accordingly, so
// dependencies must be listed before their importers.
func Run(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) {
	t.Helper()
	ld := &loader{
		fset:   token.NewFileSet(),
		loaded: map[string]*loadedPkg{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	facts := newFactStore()
	for _, pkg := range pkgs {
		lp, err := ld.load(dir, pkg)
		if err != nil {
			t.Fatalf("vettest: loading %s: %v", pkg, err)
		}
		diags := runAnalyzer(t, a, lp, facts)
		checkExpectations(t, ld.fset, a, lp, diags)
	}
}

// Diagnostics analyzes the listed packages like Run but skips `// want`
// matching, returning every diagnostic as "file:line: message" with the
// file reduced to its base name. Tests use it to assert behavior a want
// comment cannot anchor, such as a report landing on an //lbe:ignore
// directive's own line.
func Diagnostics(t *testing.T, dir string, a *analysis.Analyzer, pkgs ...string) []string {
	t.Helper()
	ld := &loader{
		fset:   token.NewFileSet(),
		loaded: map[string]*loadedPkg{},
	}
	ld.fallback = importer.ForCompiler(ld.fset, "source", nil)
	facts := newFactStore()
	var out []string
	for _, pkg := range pkgs {
		lp, err := ld.load(dir, pkg)
		if err != nil {
			t.Fatalf("vettest: loading %s: %v", pkg, err)
		}
		for _, d := range runAnalyzer(t, a, lp, facts) {
			pos := ld.fset.Position(d.Pos)
			out = append(out, fmt.Sprintf("%s:%d: %s", filepath.Base(pos.Filename), pos.Line, d.Message))
		}
	}
	return out
}

// loadedPkg is one type-checked testdata package.
type loadedPkg struct {
	path  string
	fset  *token.FileSet
	files []*ast.File
	pkg   *types.Package
	info  *types.Info
}

// loader parses and type-checks testdata packages, serving earlier
// packages to later ones as imports.
type loader struct {
	fset     *token.FileSet
	loaded   map[string]*loadedPkg
	fallback types.Importer
}

// Import implements types.Importer: testdata packages win over the
// source-importer fallback (which resolves the standard library).
func (ld *loader) Import(path string) (*types.Package, error) {
	if lp, ok := ld.loaded[path]; ok {
		return lp.pkg, nil
	}
	return ld.fallback.Import(path)
}

// load parses and type-checks dir/src/<path>.
func (ld *loader) load(dir, path string) (*loadedPkg, error) {
	srcDir := filepath.Join(dir, "src", filepath.FromSlash(path))
	entries, err := os.ReadDir(srcDir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(ld.fset, filepath.Join(srcDir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", srcDir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: ld}
	pkg, err := conf.Check(path, ld.fset, files, info)
	if err != nil {
		return nil, err
	}
	lp := &loadedPkg{path: path, fset: ld.fset, files: files, pkg: pkg, info: info}
	ld.loaded[path] = lp
	return lp, nil
}

// factStore is an in-memory substitute for the unitchecker's serialized
// fact files, shared across the packages of one Run call.
type factStore struct {
	object  map[types.Object][]analysis.Fact
	pkgwide map[*types.Package][]analysis.Fact
}

func newFactStore() *factStore {
	return &factStore{
		object:  map[types.Object][]analysis.Fact{},
		pkgwide: map[*types.Package][]analysis.Fact{},
	}
}

// get copies the stored fact with ptr's concrete type into ptr,
// reporting whether one was found.
func get(stored []analysis.Fact, ptr analysis.Fact) bool {
	want := reflect.TypeOf(ptr)
	for _, f := range stored {
		if reflect.TypeOf(f) == want {
			reflect.ValueOf(ptr).Elem().Set(reflect.ValueOf(f).Elem())
			return true
		}
	}
	return false
}

// runAnalyzer runs a over one loaded package, returning its diagnostics.
func runAnalyzer(t *testing.T, a *analysis.Analyzer, lp *loadedPkg, facts *factStore) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	pass := &analysis.Pass{
		Analyzer:   a,
		Fset:       lp.fset,
		Files:      lp.files,
		Pkg:        lp.pkg,
		TypesInfo:  lp.info,
		TypesSizes: types.SizesFor("gc", "amd64"),
		ResultOf:   map[*analysis.Analyzer]any{},
		Report:     func(d analysis.Diagnostic) { diags = append(diags, d) },
		ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
			return get(facts.object[obj], fact)
		},
		ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
			facts.object[obj] = append(facts.object[obj], fact)
		},
		ImportPackageFact: func(pkg *types.Package, fact analysis.Fact) bool {
			return get(facts.pkgwide[pkg], fact)
		},
		ExportPackageFact: func(fact analysis.Fact) {
			facts.pkgwide[lp.pkg] = append(facts.pkgwide[lp.pkg], fact)
		},
		AllObjectFacts:  func() []analysis.ObjectFact { return nil },
		AllPackageFacts: func() []analysis.PackageFact { return nil },
		Module:          &analysis.Module{Path: ""},
	}
	if _, err := a.Run(pass); err != nil {
		t.Fatalf("vettest: analyzer %s on %s: %v", a.Name, lp.path, err)
	}
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags
}

// expectation is one `// want "regexp"` on a source line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	hit  bool
}

// wantRE pulls the Go-quoted regexp arguments out of a want comment.
var wantRE = regexp.MustCompile(`want\s+(.*)`)

// checkExpectations matches diagnostics against the package's want
// comments, failing the test on any unexpected diagnostic or unmatched
// expectation.
func checkExpectations(t *testing.T, fset *token.FileSet, a *analysis.Analyzer, lp *loadedPkg, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range lp.files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				m := wantRE.FindStringSubmatch(text)
				if m == nil || !strings.Contains(text, `"`) {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, lit := range splitQuoted(m[1]) {
					pat, err := strconv.Unquote(lit)
					if err != nil {
						t.Fatalf("vettest: %s: bad want literal %s: %v", pos, lit, err)
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("vettest: %s: bad want regexp %q: %v", pos, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		matched := false
		for _, w := range wants {
			if !w.hit && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.hit = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("%s: unexpected %s diagnostic: %s", pos, a.Name, d.Message)
		}
	}
	for _, w := range wants {
		if !w.hit {
			t.Errorf("%s:%d: expected %s diagnostic matching %q, got none", w.file, w.line, a.Name, w.re)
		}
	}
}

// splitQuoted returns the top-level Go string literals in s, in order.
func splitQuoted(s string) []string {
	var out []string
	for i := 0; i < len(s); i++ {
		if s[i] != '"' {
			continue
		}
		j := i + 1
		for j < len(s) {
			if s[j] == '\\' {
				j += 2
				continue
			}
			if s[j] == '"' {
				break
			}
			j++
		}
		if j >= len(s) {
			break
		}
		out = append(out, s[i:j+1])
		i = j
	}
	return out
}
