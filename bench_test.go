// Top-level benchmarks: one per figure/table of the paper's evaluation.
// Each benchmark drives the corresponding experiment runner from
// internal/bench at a reduced scale and reports the figure's headline
// quantity as a custom metric, so `go test -bench` regenerates the whole
// evaluation. cmd/lbe-bench runs the same experiments at configurable
// scale and prints the full series.
package lbe_test

import (
	"testing"

	"lbe/internal/bench"
	"lbe/internal/core"
	"lbe/internal/engine"
	"lbe/internal/mods"
	"lbe/internal/stats"
)

// benchOptions keeps each iteration in the hundreds of milliseconds.
func benchOptions() bench.Options {
	return bench.Options{
		Scale:     1.0 / 10000,
		Ranks:     8,
		RankSweep: []int{2, 4, 8},
		Queries:   150,
		Seed:      4,
	}
}

// BenchmarkFig5MemoryFootprint regenerates the shared vs distributed
// memory comparison; metrics: MB at the largest notch and overhead ratio.
func BenchmarkFig5MemoryFootprint(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig5(o)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[0].Y[last], "shared-MB")
		b.ReportMetric(fig.Series[1].Y[last], "dist-MB")
		b.ReportMetric(fig.Series[1].Y[last]/fig.Series[0].Y[last], "overhead-ratio")
	}
}

// BenchmarkFig6LoadImbalance regenerates the LI comparison; metrics: LI%
// per policy at the largest index notch.
func BenchmarkFig6LoadImbalance(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig6(o)
		if err != nil {
			b.Fatal(err)
		}
		last := len(fig.Series[0].Y) - 1
		b.ReportMetric(fig.Series[0].Y[last], "LI%-chunk")
		b.ReportMetric(fig.Series[1].Y[last], "LI%-cyclic")
		b.ReportMetric(fig.Series[2].Y[last], "LI%-random")
	}
}

// BenchmarkFig7QueryTime regenerates query time vs CPUs; metric: modeled
// query seconds at the largest size and rank count.
func BenchmarkFig7QueryTime(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig7(o)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[len(fig.Series)-1]
		b.ReportMetric(s.Y[0], "sec-at-minCPU")
		b.ReportMetric(s.Y[len(s.Y)-1], "sec-at-maxCPU")
	}
}

// BenchmarkFig8QuerySpeedup regenerates the near-linear query speedup;
// metric: speedup at max CPUs (ideal = CPU count).
func BenchmarkFig8QuerySpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig8(o)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[len(fig.Series)-1] // largest index size
		b.ReportMetric(s.Y[len(s.Y)-1], "speedup-at-maxCPU")
		b.ReportMetric(s.X[len(s.X)-1], "ideal")
	}
}

// BenchmarkFig9ExecutionTime regenerates total execution time vs CPUs.
func BenchmarkFig9ExecutionTime(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig9(o)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[len(fig.Series)-1]
		b.ReportMetric(s.Y[0], "sec-at-minCPU")
		b.ReportMetric(s.Y[len(s.Y)-1], "sec-at-maxCPU")
	}
}

// BenchmarkFig10ExecSpeedup regenerates the Amdahl-bounded execution
// speedup; metrics: exec speedup at max CPUs and the fitted serial
// fraction.
func BenchmarkFig10ExecSpeedup(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig10(o)
		if err != nil {
			b.Fatal(err)
		}
		s := fig.Series[len(fig.Series)-1]
		last := len(s.Y) - 1
		b.ReportMetric(s.Y[last], "speedup-at-maxCPU")
		b.ReportMetric(stats.FitSerialFraction(s.Y[last], int(s.X[last])), "serial-fraction")
	}
}

// BenchmarkFig11SpeedupByLB regenerates the CPU-time speedup of LBE
// policies over chunk; metrics: the average speedups the paper reports as
// ~8.6x (cyclic) and ~7.5x (random).
func BenchmarkFig11SpeedupByLB(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Fig11(o)
		if err != nil {
			b.Fatal(err)
		}
		avg := func(ys []float64) float64 {
			s := 0.0
			for _, y := range ys {
				s += y
			}
			return s / float64(len(ys))
		}
		b.ReportMetric(avg(fig.Series[1].Y), "cyclic-x")
		b.ReportMetric(avg(fig.Series[2].Y), "random-x")
	}
}

// BenchmarkTableSetupStats regenerates the §V-A in-text statistics;
// metric: candidate PSMs per query (paper: ~73,723 at full scale).
func BenchmarkTableSetupStats(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.SetupStats(o)
		if err != nil {
			b.Fatal(err)
		}
		ys := fig.Series[0].Y
		b.ReportMetric(ys[5], "cPSM-per-query")
		b.ReportMetric(ys[6], "id-rate-%")
	}
}

// BenchmarkAblationGrouping regenerates the grouping design-choice sweep;
// metric: chunk LI% under the paper's grouping vs no grouping.
func BenchmarkAblationGrouping(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationGrouping(o)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(fig.Series[0].Y[0], "chunk-LI%-raw")
		b.ReportMetric(fig.Series[0].Y[2], "chunk-LI%-paper")
		b.ReportMetric(fig.Series[1].Y[2], "cyclic-LI%-paper")
	}
}

// BenchmarkAblationTransport regenerates the transport comparison;
// metric: TCP slowdown over in-process channels at 4 ranks.
func BenchmarkAblationTransport(b *testing.B) {
	o := benchOptions()
	for i := 0; i < b.N; i++ {
		fig, err := bench.AblationTransport(o)
		if err != nil {
			b.Fatal(err)
		}
		inproc := fig.Series[0].Y[1]
		tcp := fig.Series[1].Y[1]
		b.ReportMetric(tcp/inproc, "tcp-slowdown-x")
	}
}

// --- microbenchmarks of the hot paths behind the figures ---

// BenchmarkIndexBuild measures SLM index construction throughput
// (rows/sec govern the build portion of Fig. 9).
func BenchmarkIndexBuild(b *testing.B) {
	c, err := bench.SizedCorpus(3000, 0, 11, mods.Config{Mods: mods.PaperSet(), MaxPerPep: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Params.Mods.MaxPerPep = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunSerial(c.Peptides, nil, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkQueryThroughput measures spectra searched per second against a
// fixed serial index (the per-rank inner loop of Fig. 7).
func BenchmarkQueryThroughput(b *testing.B) {
	c, err := bench.SizedCorpus(3000, 64, 12, mods.Config{Mods: mods.PaperSet(), MaxPerPep: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := engine.DefaultConfig()
	cfg.Params.Mods.MaxPerPep = 2
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := engine.RunSerial(c.Peptides, c.Queries, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGrouping measures Algorithm 1 over a realistic peptide set
// (the replicated serial phase that bounds Fig. 10).
func BenchmarkGrouping(b *testing.B) {
	c, err := bench.SizedCorpus(5000, 0, 13, mods.Config{Mods: mods.PaperSet(), MaxPerPep: 2})
	if err != nil {
		b.Fatal(err)
	}
	cfg := core.DefaultGroupConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.Group(c.Peptides, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
