// Serving walkthrough: build a Session over a synthetic peptide
// database, wrap it in the HTTP serving layer, and hit it with a burst
// of concurrent single-spectrum clients — the "many small requests"
// workload the micro-batch coalescer exists for. Prints each client's
// best match, then the server's coalescing statistics.
//
//	go run ./examples/serve
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"sync"
	"time"

	"lbe"
	"lbe/internal/api"
	"lbe/internal/server"
)

func main() {
	// Synthetic database + a handful of query spectra sampled from it.
	recs, err := lbe.GenerateProteome(lbe.DefaultProteomeConfig())
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 12
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	// Build the engine once; the server reuses it for every request.
	sesscfg := lbe.DefaultSessionConfig()
	sesscfg.Shards = 4
	sesscfg.TopK = 3
	sess, err := lbe.NewSession(peptides, sesscfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	fmt.Printf("session: %d peptides over %d shards (%.1f MB index)\n",
		len(peptides), sess.NumShards(), float64(sess.IndexBytes())/(1<<20))

	// Serve it. Requests arriving within the 20ms flush window coalesce
	// into one merged engine batch of up to 64 queries.
	srv := server.New(sess, peptides, server.Config{
		BatchSize:     64,
		FlushInterval: 20 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("serving on %s\n\n", base)
	client := api.New(base)

	// A burst of concurrent single-spectrum clients.
	var wg sync.WaitGroup
	for i, q := range queries {
		wg.Add(1)
		go func(i int, q lbe.Spectrum) {
			defer wg.Done()
			sr, err := client.SearchSpectra(context.Background(), api.FromExperimental(q))
			if err != nil {
				log.Printf("client %d: %v", i, err)
				return
			}
			if len(sr.Results) != 1 {
				log.Printf("client %d: response carries %d results", i, len(sr.Results))
				return
			}
			if psms := sr.Results[0].PSMs; len(psms) > 0 {
				fmt.Printf("client %2d scan %3d: best %s (score %.3f, shard %d)\n",
					i, q.Scan, psms[0].Sequence, psms[0].Score, psms[0].Shard)
			} else {
				fmt.Printf("client %2d scan %3d: no match\n", i, q.Scan)
			}
		}(i, q)
	}
	wg.Wait()

	st := srv.Stats()
	fmt.Printf("\n%d requests -> %d coalesced engine batches (%.1f queries per batch)\n",
		st.Accepted, st.Batches, float64(st.BatchedQueries)/float64(st.Batches))

	// Graceful drain, then the HTTP listener.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	if err := httpSrv.Shutdown(ctx); err != nil {
		log.Fatal(err)
	}
	fmt.Println("drained cleanly")
}
