// Tcpcluster runs the distributed search over real TCP links using the
// multi-process bootstrap protocol: a coordinator (rank 0) and workers
// that join it, exactly as separate machines would. Here all ranks live in
// one process for convenience; point workers at a remote address to span
// hosts. (For single-host serving, prefer the streaming Session API —
// see examples/quickstart; every rank below runs the same channel-based
// pipeline the Session uses.)
//
//	go run ./examples/tcpcluster
package main

import (
	"fmt"
	"log"
	"sync"
	"time"

	"lbe"
)

const (
	coordAddr = "127.0.0.1:40917"
	ranks     = 4
)

func main() {
	// Dataset: every rank must load identical inputs (paper §III-E: all
	// machines read the clustered database and the MS2 dataset).
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 30
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 150
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := lbe.DefaultEngineConfig()
	cfg.Params.Mods.MaxPerPep = 1
	cfg.TopK = 3

	// Bootstrap: one goroutine hosts, the rest join — each stands in for
	// a separate OS process / machine.
	var wg sync.WaitGroup
	var result *lbe.Result
	errs := make([]error, ranks)

	runRank := func(idx int, comm lbe.Comm, err error) {
		defer wg.Done()
		if err != nil {
			errs[idx] = err
			return
		}
		defer comm.Close()
		res, err := lbe.RunRank(comm, peptides, queries, cfg)
		if err != nil {
			errs[idx] = err
			return
		}
		if comm.Rank() == 0 {
			result = res
		}
	}

	start := time.Now()
	wg.Add(ranks)
	go func() {
		comm, err := lbe.HostTCP(coordAddr, ranks)
		runRank(0, comm, err)
	}()
	for i := 1; i < ranks; i++ {
		go func(i int) {
			comm, err := lbe.JoinTCP(coordAddr)
			runRank(i, comm, err)
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			log.Fatalf("rank %d: %v", i, err)
		}
	}

	fmt.Printf("TCP cluster of %d ranks searched %d spectra in %v\n",
		ranks, len(queries), time.Since(start).Round(time.Millisecond))
	wu := lbe.WorkUnits(result.Stats)
	fmt.Printf("load imbalance: %.2f%%; candidate PSMs: %d\n",
		100*lbe.LoadImbalance(wu), result.CandidatePSMs())
	n := 0
	for _, psms := range result.PSMs {
		n += len(psms)
	}
	fmt.Printf("reported PSMs: %d across %d queries\n", n, len(result.PSMs))
}
