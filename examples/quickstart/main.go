// Quickstart: digest a few proteins, build a distributed search across a
// 4-rank virtual cluster, and identify one noisy query spectrum.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"lbe"
)

func main() {
	// A toy protein database. In real use, load UniProt with lbe.ReadFasta.
	proteins := []string{
		"MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPFDEHVK",
		"MALWMRLLPLLALLALWGPDPAAAFVNQHLCGSHLVEALYLVCGERGFFYTPKTRREAEDLQVGQVELGG",
		"MTEYKLVVVGAGGVGKSALTIQLIQNHFVDEYDPTIEDSYRKQVVIDGETCLLDILDTAGQEEYSAMRDQ",
	}

	// In-silico tryptic digestion with the paper's settings.
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peps = lbe.Dedup(peps)
	peptides := lbe.PeptideSequences(peps)
	fmt.Printf("digested %d proteins into %d unique peptides\n", len(proteins), len(peptides))

	// Sample one synthetic query spectrum from the database (a stand-in
	// for reading an instrument run with lbe.ReadMS2).
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 1
	queries, truth, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query spectrum: %d peaks, precursor m/z %.4f (true peptide: %s)\n",
		len(queries[0].Peaks), queries[0].PrecursorMZ, peptides[truth[0].Peptide])

	// Distributed search on a 4-rank virtual cluster with LBE's cyclic
	// partitioning.
	cfg := lbe.DefaultEngineConfig()
	cfg.TopK = 3
	res, err := lbe.RunInProcess(4, peptides, queries, cfg)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top matches:")
	for i, p := range res.PSMs[0] {
		marker := ""
		if int(p.Peptide) == truth[0].Peptide {
			marker = "   <- correct"
		}
		fmt.Printf("  %d. %-24s shared=%2d score=%7.3f (from rank %d)%s\n",
			i+1, peptides[p.Peptide], p.Shared, p.Score, p.Origin, marker)
	}
}
