// Quickstart: digest a few proteins, build a streaming search Session
// over a 4-shard LBE partition, and identify one noisy query spectrum.
//
//	go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"lbe"
)

func main() {
	// A toy protein database. In real use, load UniProt with lbe.ReadFasta.
	proteins := []string{
		"MKWVTFISLLLLFSSAYSRGVFRRDTHKSEIAHRFKDLGEEHFKGLVLIAFSQYLQQCPFDEHVK",
		"MALWMRLLPLLALLALWGPDPAAAFVNQHLCGSHLVEALYLVCGERGFFYTPKTRREAEDLQVGQVELGG",
		"MTEYKLVVVGAGGVGKSALTIQLIQNHFVDEYDPTIEDSYRKQVVIDGETCLLDILDTAGQEEYSAMRDQ",
	}

	// In-silico tryptic digestion with the paper's settings.
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peps = lbe.Dedup(peps)
	peptides := lbe.PeptideSequences(peps)
	fmt.Printf("digested %d proteins into %d unique peptides\n", len(proteins), len(peptides))

	// Sample one synthetic query spectrum from the database (a stand-in
	// for reading an instrument run with lbe.ReadMS2).
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 1
	queries, truth, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("query spectrum: %d peaks, precursor m/z %.4f (true peptide: %s)\n",
		len(queries[0].Peaks), queries[0].PrecursorMZ, peptides[truth[0].Peptide])

	// Build the search engine once: LBE grouping, cyclic partitioning
	// into 4 shards, one partial index per shard. The Session then serves
	// any number of query batches without rebuilding.
	sesscfg := lbe.DefaultSessionConfig()
	sesscfg.TopK = 3
	sesscfg.Shards = 4
	sess, err := lbe.NewSession(peptides, sesscfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	res, err := sess.Search(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("top matches:")
	for i, p := range res.PSMs[0] {
		marker := ""
		if int(p.Peptide) == truth[0].Peptide {
			marker = "   <- correct"
		}
		fmt.Printf("  %d. %-24s shared=%2d score=%7.3f (from shard %d)%s\n",
			i+1, peptides[p.Peptide], p.Shared, p.Score, p.Origin, marker)
	}
	fmt.Printf("session served %d queries over %d shards (reusable for the next batch)\n",
		sess.Searched(), sess.NumShards())
}
