// Heterogeneous demonstrates the paper's §VIII future-work feature: a
// load-predicting partitioner for clusters whose machines differ in
// speed. One rank is simulated to be 4x faster; uniform partitioning
// leaves it idle most of the time, while speed-weighted partitioning
// gives it proportionally more peptides and levels the finish times.
//
//	go run ./examples/heterogeneous
package main

import (
	"context"
	"fmt"
	"log"

	"lbe"
)

func main() {
	const ranks = 8
	speeds := []float64{4, 2, 1, 1, 1, 1, 1, 1} // simulated machine speeds

	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 50
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 400
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, weights []float64) {
		cfg := lbe.DefaultEngineConfig()
		cfg.Params.Mods.MaxPerPep = 1
		cfg.Weights = weights
		sess, err := lbe.NewSession(peptides, lbe.SessionConfig{Config: cfg, Shards: ranks})
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Search(context.Background(), queries)
		if err != nil {
			log.Fatal(err)
		}
		// Modeled wall time on machine i = its work / its speed.
		wu := lbe.WorkUnits(res.Stats)
		times := make([]float64, ranks)
		for i := range wu {
			times[i] = wu[i] / speeds[i]
		}
		fmt.Printf("%-24s LI = %5.1f%%   per-rank peptides:", name, 100*lbe.LoadImbalance(times))
		for _, s := range res.Stats {
			fmt.Printf(" %d", s.Peptides)
		}
		fmt.Println()
	}

	fmt.Printf("cluster of %d ranks; simulated speeds %v\n\n", ranks, speeds)
	run("uniform partition", nil)
	run("speed-weighted partition", speeds)
	fmt.Println("\nweighted shares level the modeled finish times (paper §VIII)")
}
