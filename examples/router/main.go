// Multi-node serving walkthrough: build a session once, persist it as a
// store, warm-start two serving replicas from that store, and put an
// lbe-router front-end over them. Clients talk to the router exactly as
// they would to a single lbe-serve — same wire contract — while the
// router spreads load by the replicas' live telemetry and the store
// digest gates mixing. The finale kills one replica mid-traffic and
// shows the router failing over without a client-visible error.
//
//	go run ./examples/router
package main

import (
	"context"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"time"

	"lbe"
	"lbe/internal/api"
	"lbe/internal/router"
	"lbe/internal/server"
)

// replicaProc is one in-process "node": a warm-started session behind
// the HTTP serving layer.
type replicaProc struct {
	srv     *server.Server
	httpSrv *http.Server
	base    string
}

func startReplica(storeDir string) (*replicaProc, error) {
	sess, peptides, err := lbe.OpenSession(storeDir)
	if err != nil {
		return nil, err
	}
	srv := server.New(sess, peptides, server.Config{
		BatchSize:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	return &replicaProc{srv: srv, httpSrv: httpSrv, base: "http://" + ln.Addr().String()}, nil
}

func (r *replicaProc) stop(ctx context.Context) {
	_ = r.srv.Shutdown(ctx)
	_ = r.httpSrv.Shutdown(ctx)
}

func main() {
	// One database, built once and persisted: the store's manifest digest
	// is the shape contract every replica must share.
	recs, err := lbe.GenerateProteome(lbe.DefaultProteomeConfig())
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 16
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	sesscfg := lbe.DefaultSessionConfig()
	sesscfg.Shards = 2
	sesscfg.TopK = 3
	sess, err := lbe.NewSession(peptides, sesscfg)
	if err != nil {
		log.Fatal(err)
	}
	storeDir, err := os.MkdirTemp("", "lbe-router-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(storeDir)
	if err := sess.Save(storeDir, peptides); err != nil {
		log.Fatal(err)
	}
	sess.Close()
	fmt.Printf("store written: %d peptides, digest %.12s...\n\n", len(peptides), digestOf(storeDir))

	// Two replicas warm-start from the same store — a two-node cluster.
	r1, err := startReplica(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	r2, err := startReplica(storeDir)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("replica 1 on %s\nreplica 2 on %s\n", r1.base, r2.base)

	// The router probes both, adopts their shared digest, and serves the
	// same surface they do.
	rt, err := router.New([]string{r1.base, r2.base}, router.Config{
		ProbeInterval: 100 * time.Millisecond,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	fmt.Printf("router   on %s\n\n", base)

	// Clients speak to the router through the same typed client they
	// would point at a single replica.
	client := api.New(base)
	ctx := context.Background()
	search := func(from, to int) {
		for i := from; i < to; i++ {
			sr, err := client.SearchSpectra(ctx, api.FromExperimental(queries[i]))
			if err != nil {
				log.Fatalf("query %d: %v", i, err)
			}
			if psms := sr.Results[0].PSMs; len(psms) > 0 {
				fmt.Printf("query %2d: best %s (score %.3f, shard %d)\n",
					i, psms[0].Sequence, psms[0].Score, psms[0].Shard)
			} else {
				fmt.Printf("query %2d: no match\n", i)
			}
		}
	}
	search(0, len(queries)/2)

	st := rt.Stats()
	fmt.Printf("\nafter %d requests: replica1 served %d, replica2 served %d (least-loaded dispatch)\n\n",
		st.Routed, st.Replicas[0].Routed, st.Replicas[1].Routed)

	// Kill replica 1 abruptly; the router fails the next attempts over to
	// replica 2, and a probe marks the dead node down.
	fmt.Println("killing replica 1 mid-traffic...")
	killCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	r1.stop(killCtx)
	cancel()
	search(len(queries)/2, len(queries))

	st = rt.Stats()
	fmt.Printf("\nall %d requests answered; %d failovers, replica1 healthy=%v\n",
		st.Routed, st.Failovers, st.Replicas[0].Healthy)

	// Drain everything.
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	_ = front.Shutdown(shutCtx)
	r2.stop(shutCtx)
	fmt.Println("drained cleanly")
}

// digestOf reads the cluster digest back off a freshly opened session.
func digestOf(storeDir string) string {
	s, _, err := lbe.OpenSession(storeDir)
	if err != nil {
		return "?"
	}
	defer s.Close()
	return s.Digest()
}
