// Chunked demonstrates the shared-memory internal partitioning of the
// paper's Fig. 1: the index is split into precursor-ordered chunks, a
// closed-search query touches only the chunks its precursor window can
// reach, and the transient construction footprint drops to one chunk's
// worth. It also round-trips a partial index through the SLMX on-disk
// format (§II-B: chunks are stored on disk when not in use).
//
//	go run ./examples/chunked
package main

import (
	"fmt"
	"log"
	"os"
	"path/filepath"

	"lbe"
)

func main() {
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 40
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	// Closed search (narrow precursor window), unmodified index.
	params := lbe.DefaultSearchParams()
	params.Mods.MaxPerPep = 0
	params.PrecursorTol = lbe.DaltonTolerance(1.0)

	mono, err := lbe.BuildIndex(peptides, params)
	if err != nil {
		log.Fatal(err)
	}
	const chunks = 8
	chunked, err := lbe.BuildChunkedIndex(peptides, params, chunks)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("database: %d peptides -> %d indexed spectra in %d chunks\n",
		len(peptides), chunked.NumRows(), chunked.NumChunks())
	fmt.Printf("monolithic build transient: %.2f MB above resident\n",
		float64(mono.BuildPeakBytes()-mono.MemoryBytes())/(1<<20))
	fmt.Printf("chunked    build transient: %.2f MB above resident\n\n",
		float64(chunked.BuildPeakBytes()-chunked.MemoryBytes())/(1<<20))

	// Query a few spectra and count chunk visits.
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 200
	scfg.ModProb = 0
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}
	visits := 0
	matches := 0
	for _, q := range queries {
		ms, _, touched := chunked.Search(lbe.Preprocess(q, 100), 5, nil)
		visits += touched
		matches += len(ms)
	}
	fmt.Printf("closed search over %d queries: %.2f of %d chunks touched on average\n",
		len(queries), float64(visits)/float64(len(queries)), chunks)
	fmt.Printf("PSMs reported: %d\n\n", matches)

	// Spill a partial index to disk and reload it (the §II-B pattern).
	dir, err := os.MkdirTemp("", "lbe-chunked")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	path := filepath.Join(dir, "partition.slm")
	if err := lbe.SaveIndex(mono, path); err != nil {
		log.Fatal(err)
	}
	info, _ := os.Stat(path)
	loaded, err := lbe.LoadIndex(path)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("index spilled to disk: %.2f MB on disk, %d rows after reload (checksummed)\n",
		float64(info.Size())/(1<<20), loaded.NumRows())
}
