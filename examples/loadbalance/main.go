// Loadbalance reproduces the paper's central result (Fig. 6) in miniature:
// on an abundance-skewed query workload, conventional chunk partitioning
// leaves most machines idle while cyclic and random LBE policies balance
// the work within a few percent.
//
//	go run ./examples/loadbalance
package main

import (
	"context"
	"fmt"
	"log"

	"lbe"
)

func main() {
	// Synthetic proteome with homologous families -> clustered peptide
	// space, exactly the structure that breaks chunk partitioning.
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 60
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	// Abundance-skewed query run (a few peptides produce most spectra).
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 500
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("database: %d peptides; queries: %d skewed spectra; 16 partitions\n\n",
		len(peptides), len(queries))

	fmt.Printf("%-8s %12s %14s %16s\n", "policy", "LI (Eq. 1)", "max/avg work", "wasted work")
	for _, policy := range []lbe.Policy{lbe.Chunk, lbe.Cyclic, lbe.Random} {
		cfg := lbe.DefaultEngineConfig()
		cfg.Params.Mods.MaxPerPep = 1
		cfg.Policy = policy
		cfg.Seed = 7
		sess, err := lbe.NewSession(peptides, lbe.SessionConfig{Config: cfg, Shards: 16})
		if err != nil {
			log.Fatal(err)
		}
		res, err := sess.Search(context.Background(), queries)
		sess.Close()
		if err != nil {
			log.Fatal(err)
		}
		wu := lbe.WorkUnits(res.Stats)
		avg, max := mean(wu), maxOf(wu)
		fmt.Printf("%-8s %11.1f%% %14.2f %16.0f\n",
			policy, 100*lbe.LoadImbalance(wu), max/avg, lbe.WastedCPUTime(wu))
	}
	fmt.Println("\npaper: chunk ~120% LI, cyclic/random <= 20% at 16 partitions")
}

func mean(xs []float64) float64 {
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := xs[0]
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
