// Distributed runs a complete LBE search over an 8-shard Session:
// synthetic proteome, tryptic digestion, grouping, cyclic partitioning,
// per-shard partial indexes, pipelined concurrent querying, and merging
// through the O(1) mapping table (paper Figs. 3 and 4).
//
//	go run ./examples/distributed
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"lbe"
)

func main() {
	const ranks = 8

	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 80
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 400
	queries, truth, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	cfg := lbe.DefaultEngineConfig()
	cfg.Params.Mods.MaxPerPep = 1
	cfg.TopK = 5
	cfg.BatchSize = 64 // pipeline granularity: search overlaps merging

	start := time.Now()
	sess, err := lbe.NewSession(peptides, lbe.SessionConfig{Config: cfg, Shards: ranks})
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Search(context.Background(), queries)
	if err != nil {
		log.Fatal(err)
	}
	wall := time.Since(start)

	fmt.Printf("searched %d spectra against %d peptides on %d shards in %v\n",
		len(queries), len(peptides), ranks, wall.Round(time.Millisecond))
	fmt.Printf("LBE formed %d groups; mapping table %d KB; %d candidate PSMs scored\n\n",
		res.Groups, res.MappingBytes/1024, res.CandidatePSMs())

	fmt.Printf("%-5s %9s %9s %12s %13s\n", "shard", "peptides", "rows", "index MB", "work units")
	for _, s := range res.Stats {
		fmt.Printf("%-5d %9d %9d %12.2f %13d\n",
			s.Rank, s.Peptides, s.Rows, float64(s.IndexBytes)/(1<<20),
			s.Work.IonHits+s.Work.Scored)
	}
	wu := lbe.WorkUnits(res.Stats)
	fmt.Printf("\nload imbalance (Eq. 1): %.2f%%\n", 100*lbe.LoadImbalance(wu))

	hit := 0
	for q := range queries {
		for _, p := range res.PSMs[q] {
			if int(p.Peptide) == truth[q].Peptide {
				hit++
				break
			}
		}
	}
	fmt.Printf("top-%d identification rate: %.1f%% (%d/%d)\n",
		cfg.TopK, 100*float64(hit)/float64(len(queries)), hit, len(queries))
}
