// Partitioned serving walkthrough: build a session once, cut its store
// into three shard-sets with SavePartitioned, warm-start one holder per
// set (and a spare for set 0), and put an lbe-router in scatter/gather
// mode over them. Every /search fans out to one holder per shard-set
// and the per-set top-K lists are merged at the front-end into exactly
// the bytes a whole-store session would return — the example proves it
// by searching both paths and comparing. The finale kills the primary
// set-0 holder mid-traffic and shows the router failing over to the
// spare without a client-visible error and without losing coverage.
//
//	go run ./examples/scatter
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"lbe"
	"lbe/internal/api"
	"lbe/internal/router"
	"lbe/internal/server"
)

// holderProc is one in-process "node": a warm-started shard-set behind
// the HTTP serving layer.
type holderProc struct {
	srv     *server.Server
	httpSrv *http.Server
	base    string
}

func startHolder(dir string) (*holderProc, error) {
	sess, peptides, err := lbe.OpenSession(dir)
	if err != nil {
		return nil, err
	}
	srv := server.New(sess, peptides, server.Config{
		BatchSize:     64,
		FlushInterval: 5 * time.Millisecond,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	httpSrv := &http.Server{Handler: srv.Handler()}
	go func() { _ = httpSrv.Serve(ln) }()
	return &holderProc{srv: srv, httpSrv: httpSrv, base: "http://" + ln.Addr().String()}, nil
}

func (h *holderProc) stop(ctx context.Context) {
	_ = h.srv.Shutdown(ctx)
	_ = h.httpSrv.Shutdown(ctx)
}

func main() {
	// One database, one session — the whole-store reference every merged
	// answer must match byte for byte.
	recs, err := lbe.GenerateProteome(lbe.DefaultProteomeConfig())
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 12
	queries, _, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	sesscfg := lbe.DefaultSessionConfig()
	sesscfg.Shards = 6 // three shard-sets of two shards each
	sesscfg.TopK = 3
	sess, err := lbe.NewSession(peptides, sesscfg)
	if err != nil {
		log.Fatal(err)
	}
	defer sess.Close()

	// Cut the store into three self-contained shard-sets. Each set
	// directory is a complete store a plain lbe-serve can open; the
	// cluster manifest records the composition and its digest.
	dir, err := os.MkdirTemp("", "lbe-scatter-example-*")
	if err != nil {
		log.Fatal(err)
	}
	defer os.RemoveAll(dir)
	cm, err := sess.SavePartitioned(dir, peptides, 3)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("partitioned store: %d peptides, %d shard-sets x %d shards, cluster digest %.12s...\n\n",
		len(peptides), cm.Sets, cm.TotalShards/cm.Sets, cm.ClusterDigest)

	// One holder per set, plus a spare replica for set 0 — the failover
	// target when the finale kills the primary.
	var holders []*holderProc
	var urls []string
	for _, sub := range append([]string{cm.SetDirs[0]}, cm.SetDirs...) {
		h, err := startHolder(filepath.Join(dir, sub))
		if err != nil {
			log.Fatal(err)
		}
		holders = append(holders, h)
		urls = append(urls, h.base)
	}
	spare, primary := holders[0], holders[1]
	fmt.Printf("set 0 holders: %s (primary), %s (spare)\n", primary.base, spare.base)
	fmt.Printf("set 1 holder:  %s\nset 2 holder:  %s\n", holders[2].base, holders[3].base)

	// The scatter router discovers the topology from the holders'
	// announcements and composes the cluster digest from the per-set ones.
	rt, err := router.New(urls, router.Config{
		ProbeInterval: 100 * time.Millisecond,
		Scatter:       true,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	front := &http.Server{Handler: rt.Handler()}
	go func() { _ = front.Serve(ln) }()
	base := "http://" + ln.Addr().String()

	st := rt.Stats()
	fmt.Printf("router on %s: %d/%d sets covered, digest %.12s... (matches manifest: %v)\n\n",
		base, st.Scatter.Covered, st.Scatter.Sets, st.Digest, st.Digest == cm.ClusterDigest)

	// Byte-identity: the merged scatter answer equals the whole-store
	// session's answer for every query.
	client := api.New(base)
	ctx := context.Background()
	search := func(from, to int) {
		for i := from; i < to; i++ {
			sr, err := client.SearchSpectra(ctx, api.FromExperimental(queries[i]))
			if err != nil {
				log.Fatalf("query %d: %v", i, err)
			}
			ref, err := sess.Search(ctx, queries[i:i+1])
			if err != nil {
				log.Fatal(err)
			}
			got, _ := json.Marshal(sr)
			want, _ := json.Marshal(api.BuildSearchResponse(queries[i:i+1], ref.PSMs, peptides))
			status := "identical to whole-store answer"
			if string(got) != string(want) {
				status = "MISMATCH"
			}
			if psms := sr.Results[0].PSMs; len(psms) > 0 {
				fmt.Printf("query %2d: best %s (score %.3f, shard %d) — %s\n",
					i, psms[0].Sequence, psms[0].Score, psms[0].Shard, status)
			} else {
				fmt.Printf("query %2d: no match — %s\n", i, status)
			}
		}
	}
	search(0, len(queries)/2)

	// Kill the primary set-0 holder abruptly; the router fails over to
	// the spare, coverage holds at 3/3, and answers stay identical.
	fmt.Println("\nkilling the primary set-0 holder mid-traffic...")
	killCtx, cancel := context.WithTimeout(ctx, 2*time.Second)
	primary.stop(killCtx)
	cancel()
	search(len(queries)/2, len(queries))

	st = rt.Stats()
	fmt.Printf("\nall %d requests answered; %d failovers, %d/%d sets still covered\n",
		st.Routed, st.Failovers, st.Scatter.Covered, st.Scatter.Sets)

	// Drain everything that is still up.
	shutCtx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	if err := rt.Shutdown(shutCtx); err != nil {
		log.Fatal(err)
	}
	_ = front.Shutdown(shutCtx)
	for _, h := range holders {
		if h != primary {
			h.stop(shutCtx)
		}
	}
	fmt.Println("drained cleanly")
}
