// Openmods demonstrates the open-search motivation from the paper's
// related-work discussion (§II-A1, the "dark matter of shotgun
// proteomics"): spectra from post-translationally modified peptides are
// lost under a narrow precursor-mass window but recovered by shared-peak
// filtration with an open window (∆M = ∞) — at the cost of a much larger
// effective search space, which is what makes load balancing matter.
//
//	go run ./examples/openmods
package main

import (
	"context"
	"fmt"
	"log"

	"lbe"
)

func main() {
	pcfg := lbe.DefaultProteomeConfig()
	pcfg.NumFamilies = 30
	recs, err := lbe.GenerateProteome(pcfg)
	if err != nil {
		log.Fatal(err)
	}
	proteins := make([]string, len(recs))
	for i, r := range recs {
		proteins[i] = r.Sequence
	}
	peps, err := lbe.Digest(lbe.DefaultDigestConfig(), proteins)
	if err != nil {
		log.Fatal(err)
	}
	peptides := lbe.PeptideSequences(lbe.Dedup(peps))

	// Every query spectrum carries a modification (GlyGly, oxidation or
	// deamidation) — but the index is built WITHOUT modification variants,
	// as if the mods were unknown to the searcher.
	scfg := lbe.DefaultSpectraConfig()
	scfg.NumSpectra = 300
	scfg.ModProb = 1.0
	queries, truth, err := lbe.GenerateSpectra(peptides, scfg)
	if err != nil {
		log.Fatal(err)
	}

	run := func(name string, open bool) {
		cfg := lbe.DefaultEngineConfig()
		cfg.Params.Mods.MaxPerPep = 0 // unmodified index: mods are "unknown"
		cfg.TopK = 5
		if !open {
			cfg.Params.PrecursorTol = lbe.DefaultSearchParams().FragmentTol // narrow 0.05 Da window
		}
		sess, err := lbe.NewSession(peptides, lbe.SessionConfig{Config: cfg, Shards: 4})
		if err != nil {
			log.Fatal(err)
		}
		defer sess.Close()
		res, err := sess.Search(context.Background(), queries)
		if err != nil {
			log.Fatal(err)
		}
		hit := 0
		for q := range queries {
			for _, p := range res.PSMs[q] {
				if int(p.Peptide) == truth[q].Peptide {
					hit++
					break
				}
			}
		}
		fmt.Printf("%-28s identified %3d/%d modified spectra (%.0f%%), %9d cPSMs scored\n",
			name, hit, len(queries), 100*float64(hit)/float64(len(queries)), res.CandidatePSMs())
	}

	fmt.Println("searching spectra of modified peptides against an unmodified index:")
	run("closed search (∆M = 0.05 Da)", false)
	run("open search   (∆M = ∞)", true)
	fmt.Println("\nopen search recovers the 'dark matter' but multiplies the candidate load —")
	fmt.Println("the workload regime where LBE's balanced partitioning pays off.")
}
