module lbe

go 1.22

// x/tools backs tools/lbevet, the project's go/analysis multichecker.
// It is vendored so builds stay hermetic, and is imported only under
// tools/ — the library, engine and serving tiers remain dependency-free.
require golang.org/x/tools v0.28.1-0.20250131145412-98746475647e
