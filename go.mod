module lbe

go 1.22
