package mzml

import (
	"bytes"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/spectrum"
)

func randScans(rng *rand.Rand, n int) []spectrum.Experimental {
	scans := make([]spectrum.Experimental, n)
	for i := range scans {
		e := spectrum.Experimental{
			Scan:        i + 1,
			PrecursorMZ: 100 + rng.Float64()*1900,
			Charge:      rng.Intn(4),
		}
		for j := 0; j < rng.Intn(30)+1; j++ {
			e.Peaks = append(e.Peaks, spectrum.Peak{
				MZ:        rng.Float64() * 2000,
				Intensity: rng.Float64() * 1e6,
			})
		}
		e.SortPeaks()
		scans[i] = e
	}
	return scans
}

func roundTrip(t *testing.T, compress bool) {
	t.Helper()
	rng := rand.New(rand.NewSource(47))
	f := func(nRaw uint8) bool {
		scans := randScans(rng, int(nRaw%6)+1)
		var buf bytes.Buffer
		if err := Write(&buf, scans, compress); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		got, err := Read(&buf)
		if err != nil {
			t.Logf("read: %v", err)
			return false
		}
		if len(got) != len(scans) {
			return false
		}
		for i := range scans {
			a, b := scans[i], got[i]
			if a.Scan != b.Scan || a.Charge != b.Charge {
				return false
			}
			if math.Abs(a.PrecursorMZ-b.PrecursorMZ) > 1e-12 {
				return false
			}
			if len(a.Peaks) != len(b.Peaks) {
				return false
			}
			for j := range a.Peaks {
				// float64 binary encoding is exact
				if a.Peaks[j] != b.Peaks[j] {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestRoundTripUncompressed(t *testing.T) { roundTrip(t, false) }
func TestRoundTripZlib(t *testing.T)         { roundTrip(t, true) }

func TestScanFromID(t *testing.T) {
	if got := scanFromID("controllerType=0 controllerNumber=1 scan=42", 7); got != 42 {
		t.Errorf("scanFromID = %d, want 42", got)
	}
	if got := scanFromID("no scan here", 7); got != 8 {
		t.Errorf("fallback scanFromID = %d, want 8", got)
	}
}

func TestZeroPeakSpectrum(t *testing.T) {
	scans := []spectrum.Experimental{{Scan: 1, PrecursorMZ: 500, Charge: 2}}
	var buf bytes.Buffer
	if err := Write(&buf, scans, false); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 1 || len(got[0].Peaks) != 0 {
		t.Errorf("round trip = %+v", got)
	}
}

func TestNoPrecursor(t *testing.T) {
	scans := []spectrum.Experimental{{
		Scan:  3,
		Peaks: []spectrum.Peak{{MZ: 100, Intensity: 1}},
	}}
	var buf bytes.Buffer
	if err := Write(&buf, scans, true); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got[0].PrecursorMZ != 0 || got[0].Charge != 0 {
		t.Errorf("precursor should be absent: %+v", got[0])
	}
}

func TestReadMalformed(t *testing.T) {
	if _, err := Read(strings.NewReader("not xml at all")); err == nil {
		t.Error("non-XML input should fail")
	}
	// Valid XML but broken base64.
	doc := `<?xml version="1.0"?><mzML><run id="r"><spectrumList count="1">
	<spectrum index="0" id="scan=1" defaultArrayLength="1">
	<binaryDataArrayList count="2">
	<binaryDataArray encodedLength="4"><cvParam accession="MS:1000523" name="64"/><cvParam accession="MS:1000576" name="none"/><cvParam accession="MS:1000514" name="mz"/><binary>!!!!</binary></binaryDataArray>
	</binaryDataArrayList></spectrum></spectrumList></run></mzML>`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("broken base64 should fail")
	}
}

func TestRead32BitRejected(t *testing.T) {
	doc := `<?xml version="1.0"?><mzML><run id="r"><spectrumList count="1">
	<spectrum index="0" id="scan=1" defaultArrayLength="0">
	<binaryDataArrayList count="1">
	<binaryDataArray encodedLength="0"><cvParam accession="MS:1000521" name="32"/><cvParam accession="MS:1000514" name="mz"/><binary></binary></binaryDataArray>
	</binaryDataArrayList></spectrum></spectrumList></run></mzML>`
	if _, err := Read(strings.NewReader(doc)); err == nil {
		t.Error("32-bit arrays must be rejected with a clear error")
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	scans := randScans(rng, 4)
	path := filepath.Join(t.TempDir(), "run.mzML")
	if err := WriteFile(path, scans, true); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 4 {
		t.Errorf("got %d spectra", len(got))
	}
}

func TestEncodeDecodeFloats(t *testing.T) {
	vals := []float64{0, 1.5, -2.25, math.Pi, 1e308}
	for _, compress := range []bool{false, true} {
		b64, err := encodeFloats(vals, compress)
		if err != nil {
			t.Fatal(err)
		}
		got, err := decodeFloats(b64, compress, len(vals))
		if err != nil {
			t.Fatal(err)
		}
		for i := range vals {
			if got[i] != vals[i] {
				t.Errorf("compress=%v: vals[%d] = %v, want %v", compress, i, got[i], vals[i])
			}
		}
	}
}

func TestDecodeFloatsLengthMismatch(t *testing.T) {
	b64, _ := encodeFloats([]float64{1, 2, 3}, false)
	if _, err := decodeFloats(b64, false, 5); err == nil {
		t.Error("length mismatch must fail")
	}
}
