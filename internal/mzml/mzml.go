// Package mzml implements a minimal reader and writer for the PSI mzML
// interchange format, sufficient to round-trip MS/MS peak lists: spectrum
// elements with selected-ion precursor information and little-endian
// float64 binary data arrays, base64-encoded with optional zlib
// compression.
//
// The paper converts instrument RAW files to mzML/MS2 with msconvert; this
// package plus cmd/lbe-convert plays that role for our pipeline.
package mzml

import (
	"bytes"
	"compress/zlib"
	"encoding/base64"
	"encoding/binary"
	"encoding/xml"
	"fmt"
	"io"
	"math"
	"os"
	"strconv"
	"strings"

	"lbe/internal/spectrum"
)

// PSI-MS controlled-vocabulary accessions used by the subset we support.
const (
	cvMZArray        = "MS:1000514"
	cvIntensityArray = "MS:1000515"
	cv64Bit          = "MS:1000523"
	cv32Bit          = "MS:1000521"
	cvZlib           = "MS:1000574"
	cvNoCompression  = "MS:1000576"
	cvSelectedIonMZ  = "MS:1000744"
	cvChargeState    = "MS:1000041"
	cvMSLevel        = "MS:1000511"
)

// --- XML document model (subset) ---

type xmlMzML struct {
	XMLName xml.Name `xml:"mzML"`
	Run     xmlRun   `xml:"run"`
	Version string   `xml:"version,attr,omitempty"`
	_       struct{} `xml:"-"`
}

type xmlRun struct {
	ID           string          `xml:"id,attr"`
	SpectrumList xmlSpectrumList `xml:"spectrumList"`
}

type xmlSpectrumList struct {
	Count   int           `xml:"count,attr"`
	Spectra []xmlSpectrum `xml:"spectrum"`
}

type xmlSpectrum struct {
	Index           int                `xml:"index,attr"`
	ID              string             `xml:"id,attr"`
	DefaultArrayLen int                `xml:"defaultArrayLength,attr"`
	CVParams        []xmlCVParam       `xml:"cvParam"`
	Precursors      *xmlPrecursorList  `xml:"precursorList,omitempty"`
	BinaryArrays    xmlBinaryArrayList `xml:"binaryDataArrayList"`
}

type xmlPrecursorList struct {
	Count      int            `xml:"count,attr"`
	Precursors []xmlPrecursor `xml:"precursor"`
}

type xmlPrecursor struct {
	SelectedIons xmlSelectedIonList `xml:"selectedIonList"`
}

type xmlSelectedIonList struct {
	Count int              `xml:"count,attr"`
	Ions  []xmlSelectedIon `xml:"selectedIon"`
}

type xmlSelectedIon struct {
	CVParams []xmlCVParam `xml:"cvParam"`
}

type xmlBinaryArrayList struct {
	Count  int                  `xml:"count,attr"`
	Arrays []xmlBinaryDataArray `xml:"binaryDataArray"`
}

type xmlBinaryDataArray struct {
	EncodedLen int          `xml:"encodedLength,attr"`
	CVParams   []xmlCVParam `xml:"cvParam"`
	Binary     string       `xml:"binary"`
}

type xmlCVParam struct {
	Accession string `xml:"accession,attr"`
	Name      string `xml:"name,attr"`
	Value     string `xml:"value,attr,omitempty"`
}

func (s xmlSpectrum) hasCV(acc string) bool {
	for _, p := range s.CVParams {
		if p.Accession == acc {
			return true
		}
	}
	return false
}

func (a xmlBinaryDataArray) hasCV(acc string) bool {
	for _, p := range a.CVParams {
		if p.Accession == acc {
			return true
		}
	}
	return false
}

// --- Encoding helpers ---

// encodeFloats packs vals as little-endian float64, optionally zlib
// compresses, and base64 encodes.
func encodeFloats(vals []float64, compress bool) (string, error) {
	raw := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(raw[8*i:], math.Float64bits(v))
	}
	if compress {
		var buf bytes.Buffer
		zw := zlib.NewWriter(&buf)
		if _, err := zw.Write(raw); err != nil {
			return "", err
		}
		if err := zw.Close(); err != nil {
			return "", err
		}
		raw = buf.Bytes()
	}
	return base64.StdEncoding.EncodeToString(raw), nil
}

// decodeFloats reverses encodeFloats.
func decodeFloats(b64 string, compressed bool, n int) ([]float64, error) {
	raw, err := base64.StdEncoding.DecodeString(strings.TrimSpace(b64))
	if err != nil {
		return nil, fmt.Errorf("mzml: base64: %w", err)
	}
	if compressed {
		zr, err := zlib.NewReader(bytes.NewReader(raw))
		if err != nil {
			return nil, fmt.Errorf("mzml: zlib: %w", err)
		}
		raw, err = io.ReadAll(zr)
		zr.Close()
		if err != nil {
			return nil, fmt.Errorf("mzml: zlib: %w", err)
		}
	}
	if len(raw)%8 != 0 {
		return nil, fmt.Errorf("mzml: binary array length %d not a multiple of 8", len(raw))
	}
	vals := make([]float64, len(raw)/8)
	for i := range vals {
		vals[i] = math.Float64frombits(binary.LittleEndian.Uint64(raw[8*i:]))
	}
	if n >= 0 && len(vals) != n {
		return nil, fmt.Errorf("mzml: expected %d values, decoded %d", n, len(vals))
	}
	return vals, nil
}

// --- Public API ---

// Read parses an mzML document and returns its MS2-level spectra.
func Read(r io.Reader) ([]spectrum.Experimental, error) {
	var doc xmlMzML
	dec := xml.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return nil, fmt.Errorf("mzml: %w", err)
	}
	var out []spectrum.Experimental
	for _, xs := range doc.Run.SpectrumList.Spectra {
		e, err := decodeSpectrum(xs)
		if err != nil {
			return nil, err
		}
		out = append(out, e)
	}
	return out, nil
}

func decodeSpectrum(xs xmlSpectrum) (spectrum.Experimental, error) {
	var e spectrum.Experimental
	e.Scan = scanFromID(xs.ID, xs.Index)

	if xs.Precursors != nil && len(xs.Precursors.Precursors) > 0 {
		ions := xs.Precursors.Precursors[0].SelectedIons.Ions
		if len(ions) > 0 {
			for _, p := range ions[0].CVParams {
				switch p.Accession {
				case cvSelectedIonMZ:
					v, err := strconv.ParseFloat(p.Value, 64)
					if err != nil {
						return e, fmt.Errorf("mzml: spectrum %q: bad precursor m/z: %w", xs.ID, err)
					}
					e.PrecursorMZ = v
				case cvChargeState:
					if z, err := strconv.Atoi(p.Value); err == nil {
						e.Charge = z
					}
				}
			}
		}
	}

	var mzs, ins []float64
	for _, arr := range xs.BinaryArrays.Arrays {
		if arr.hasCV(cv32Bit) {
			return e, fmt.Errorf("mzml: spectrum %q: 32-bit arrays not supported", xs.ID)
		}
		vals, err := decodeFloats(arr.Binary, arr.hasCV(cvZlib), xs.DefaultArrayLen)
		if err != nil {
			return e, fmt.Errorf("mzml: spectrum %q: %w", xs.ID, err)
		}
		switch {
		case arr.hasCV(cvMZArray):
			mzs = vals
		case arr.hasCV(cvIntensityArray):
			ins = vals
		}
	}
	if len(mzs) != len(ins) {
		return e, fmt.Errorf("mzml: spectrum %q: m/z and intensity arrays differ (%d vs %d)", xs.ID, len(mzs), len(ins))
	}
	e.Peaks = make([]spectrum.Peak, len(mzs))
	for i := range mzs {
		e.Peaks[i] = spectrum.Peak{MZ: mzs[i], Intensity: ins[i]}
	}
	return e, nil
}

// scanFromID extracts a scan number from mzML native IDs such as
// "controllerType=0 controllerNumber=1 scan=42"; it falls back to index+1.
func scanFromID(id string, index int) int {
	for _, tok := range strings.Fields(id) {
		if v, ok := strings.CutPrefix(tok, "scan="); ok {
			if n, err := strconv.Atoi(v); err == nil {
				return n
			}
		}
	}
	return index + 1
}

// ReadFile parses the named mzML file.
func ReadFile(path string) ([]spectrum.Experimental, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Read(f)
}

// Write emits the spectra as an mzML document. When compress is true the
// binary arrays are zlib-compressed (MS:1000574).
func Write(w io.Writer, scans []spectrum.Experimental, compress bool) error {
	doc := xmlMzML{Version: "1.1.0"}
	doc.Run.ID = "lbe_run"
	doc.Run.SpectrumList.Count = len(scans)
	compCV := xmlCVParam{Accession: cvNoCompression, Name: "no compression"}
	if compress {
		compCV = xmlCVParam{Accession: cvZlib, Name: "zlib compression"}
	}
	for i, e := range scans {
		mzs := make([]float64, len(e.Peaks))
		ins := make([]float64, len(e.Peaks))
		for j, p := range e.Peaks {
			mzs[j] = p.MZ
			ins[j] = p.Intensity
		}
		mzB64, err := encodeFloats(mzs, compress)
		if err != nil {
			return err
		}
		inB64, err := encodeFloats(ins, compress)
		if err != nil {
			return err
		}
		xs := xmlSpectrum{
			Index:           i,
			ID:              fmt.Sprintf("scan=%d", e.Scan),
			DefaultArrayLen: len(e.Peaks),
			CVParams: []xmlCVParam{
				{Accession: cvMSLevel, Name: "ms level", Value: "2"},
			},
			BinaryArrays: xmlBinaryArrayList{
				Count: 2,
				Arrays: []xmlBinaryDataArray{
					{
						EncodedLen: len(mzB64),
						CVParams: []xmlCVParam{
							{Accession: cv64Bit, Name: "64-bit float"},
							compCV,
							{Accession: cvMZArray, Name: "m/z array"},
						},
						Binary: mzB64,
					},
					{
						EncodedLen: len(inB64),
						CVParams: []xmlCVParam{
							{Accession: cv64Bit, Name: "64-bit float"},
							compCV,
							{Accession: cvIntensityArray, Name: "intensity array"},
						},
						Binary: inB64,
					},
				},
			},
		}
		if e.PrecursorMZ > 0 {
			ion := xmlSelectedIon{CVParams: []xmlCVParam{
				{Accession: cvSelectedIonMZ, Name: "selected ion m/z", Value: strconv.FormatFloat(e.PrecursorMZ, 'f', -1, 64)},
			}}
			if e.Charge > 0 {
				ion.CVParams = append(ion.CVParams, xmlCVParam{
					Accession: cvChargeState, Name: "charge state", Value: strconv.Itoa(e.Charge),
				})
			}
			xs.Precursors = &xmlPrecursorList{
				Count: 1,
				Precursors: []xmlPrecursor{{
					SelectedIons: xmlSelectedIonList{Count: 1, Ions: []xmlSelectedIon{ion}},
				}},
			}
		}
		doc.Run.SpectrumList.Spectra = append(doc.Run.SpectrumList.Spectra, xs)
	}

	if _, err := io.WriteString(w, xml.Header); err != nil {
		return err
	}
	enc := xml.NewEncoder(w)
	enc.Indent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("mzml: %w", err)
	}
	_, err := io.WriteString(w, "\n")
	return err
}

// WriteFile writes the spectra to the named mzML file.
func WriteFile(path string, scans []spectrum.Experimental, compress bool) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := Write(f, scans, compress); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
