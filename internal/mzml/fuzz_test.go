package mzml

import (
	"strings"
	"testing"
)

// FuzzRead asserts the mzML parser never panics on arbitrary XML-ish
// input.
func FuzzRead(f *testing.F) {
	f.Add(`<?xml version="1.0"?><mzML><run id="r"><spectrumList count="0"></spectrumList></run></mzML>`)
	f.Add(`<mzML><run id="r"><spectrumList count="1"><spectrum index="0" id="scan=1" defaultArrayLength="0"><binaryDataArrayList count="0"></binaryDataArrayList></spectrum></spectrumList></run></mzML>`)
	f.Add("not xml")
	f.Add("")
	f.Add(`<mzML><run><spectrumList><spectrum defaultArrayLength="-1"></spectrum></spectrumList></run></mzML>`)
	f.Fuzz(func(t *testing.T, input string) {
		// Errors are acceptable; panics and hangs are not.
		_, _ = Read(strings.NewReader(input))
	})
}

// FuzzDecodeFloats exercises the binary-array decoder directly.
func FuzzDecodeFloats(f *testing.F) {
	f.Add("AAAAAAAA", false)
	f.Add("!!!not-base64!!!", true)
	f.Add("", false)
	f.Fuzz(func(t *testing.T, b64 string, compressed bool) {
		_, _ = decodeFloats(b64, compressed, -1)
	})
}
