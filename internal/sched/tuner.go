package sched

import (
	"sync"

	"lbe/internal/slm"
)

// Tuning targets. A chunk should be big enough that its scheduling
// overhead (one deque pop, one timestamp pair) vanishes against its
// search cost, and small enough that (a) every worker gets several chunks
// to interleave and (b) the last chunks in flight bound the finish-line
// imbalance. The work target is expressed in slm.Work units (ion hits +
// scored candidates), the same deterministic currency the engine's
// load-balance figures use.
const (
	// targetChunkWork caps the estimated work of one auto-tuned chunk.
	targetChunkWork = 1 << 16
	// minChunksPerWorker is the granularity floor: auto-tuning aims for at
	// least this many chunks per worker across the whole batch so the
	// stealing schedule has something to rebalance.
	minChunksPerWorker = 8
	// ewmaAlpha weights the newest batch's observed per-query work.
	ewmaAlpha = 0.25
)

// Tuner adapts the auto-tuned chunk size from the observed work per query
// cell (one query searched against one shard). It is internally
// synchronized; a zero Tuner is ready for use.
type Tuner struct {
	mu       sync.Mutex
	perCell  float64 // EWMA of work units per (query, shard) cell
	observed bool
}

// ChunkSize picks the granularity for a batch of nq queries against ns
// shards executed by the given worker count.
func (t *Tuner) ChunkSize(nq, ns, workers int) int {
	if workers < 1 {
		workers = 1
	}
	// Granularity floor: at least minChunksPerWorker chunks per worker
	// across all shards (but never below one query per chunk).
	c := nq * ns / (minChunksPerWorker * workers)
	if c < 1 {
		c = 1
	}
	t.mu.Lock()
	perCell := t.perCell
	observed := t.observed
	t.mu.Unlock()
	if observed && perCell > 0 {
		// Work ceiling: don't let one chunk grow past the target cost,
		// however cheap the granularity floor thinks queries are.
		if byWork := int(targetChunkWork / perCell); byWork < c {
			c = byWork
		}
		if c < 1 {
			c = 1
		}
	}
	if c > nq {
		c = nq
	}
	return c
}

// Observe feeds one finished batch back into the estimate: cells is the
// number of (query, shard) pairs searched and work their summed cost.
func (t *Tuner) Observe(cells int64, work slm.Work) {
	if cells <= 0 {
		return
	}
	per := float64(work.IonHits+work.Scored) / float64(cells)
	t.mu.Lock()
	defer t.mu.Unlock()
	if !t.observed {
		t.perCell = per
		t.observed = true
		return
	}
	t.perCell = ewmaAlpha*per + (1-ewmaAlpha)*t.perCell
}
