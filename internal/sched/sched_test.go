package sched

import (
	"context"
	"fmt"
	"reflect"
	"runtime"
	"testing"
	"time"

	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// testShards builds ns small indexes over disjoint peptide slices plus a
// query set sampled to hit them.
func testShards(t testing.TB, ns int) ([]*slm.Index, []spectrum.Experimental) {
	t.Helper()
	peptides := []string{
		"ACDEFGHIK", "LMNPQRSTVK", "ACDEFGHIR", "GGGGAVLIMK",
		"PEPTIDESK", "SEQWENCER", "MKWVTFISLLK", "FSLLLLFSSAYSR",
		"GVFRRDAHK", "SEVAHRFK", "DLGEENFK", "ALVLIAFAQYLQQCPFEDHVK",
	}
	params := slm.DefaultParams()
	params.Mods.MaxPerPep = 1

	shards := make([]*slm.Index, ns)
	per := (len(peptides) + ns - 1) / ns
	for s := 0; s < ns; s++ {
		lo := s * per
		hi := lo + per
		if lo > len(peptides) {
			lo = len(peptides)
		}
		if hi > len(peptides) {
			hi = len(peptides)
		}
		ix, err := slm.BuildSerial(peptides[lo:hi], params)
		if err != nil {
			t.Fatal(err)
		}
		shards[s] = ix
	}

	// Queries derived from the peptides' own theoretical ions would need
	// the spectrum package's predictors; synthetic peak ladders are enough
	// to produce real matches through the shared-peak counter.
	var queries []spectrum.Experimental
	for i, seq := range peptides {
		q := spectrum.Experimental{Scan: i + 1, PrecursorMZ: 400 + float64(i)*7, Charge: 2}
		for j := 0; j < 3+len(seq)%5; j++ {
			q.Peaks = append(q.Peaks, spectrum.Peak{MZ: 100 + float64(i*13+j*29), Intensity: 1})
		}
		q.SortPeaks()
		queries = append(queries, spectrum.Preprocess(q, 50))
	}
	return shards, queries
}

// serialReference computes the ground-truth match matrix and per-shard
// work with the plain serial scanner.
func serialReference(shards []*slm.Index, qs []spectrum.Experimental) ([][][]slm.Match, []slm.Work) {
	matches := make([][][]slm.Match, len(shards))
	works := make([]slm.Work, len(shards))
	for s, ix := range shards {
		matches[s], works[s] = ix.SearchAll(qs, 0)
	}
	return matches, works
}

// TestRunMatchesSerial: the scheduled match matrix and the deterministic
// work accounting must equal the serial reference for every worker count,
// chunk size, and scheduling mode.
func TestRunMatchesSerial(t *testing.T) {
	for _, ns := range []int{1, 3, 5} {
		shards, qs := testShards(t, ns)
		want, wantWork := serialReference(shards, qs)
		for _, workers := range []int{1, 2, 4, 9} {
			for _, chunkSize := range []int{0, 1, 3, 1000} {
				for _, stealing := range []bool{false, true} {
					label := fmt.Sprintf("shards=%d/workers=%d/chunk=%d/steal=%v", ns, workers, chunkSize, stealing)
					p := NewPool(Options{Workers: workers, ChunkSize: chunkSize, Stealing: stealing})
					res, err := p.Run(context.Background(), shards, qs)
					if err != nil {
						t.Fatalf("%s: %v", label, err)
					}
					if !reflect.DeepEqual(res.Matches, want) {
						t.Fatalf("%s: match matrix differs from serial reference", label)
					}
					for s := range wantWork {
						if res.Shards[s].Work != wantWork[s] {
							t.Fatalf("%s: shard %d work %+v, serial %+v", label, s, res.Shards[s].Work, wantWork[s])
						}
					}
				}
			}
		}
	}
}

// TestTelemetryAccounting: worker and shard telemetry must both sum to the
// whole batch, and every chunk must be accounted to exactly one worker.
func TestTelemetryAccounting(t *testing.T) {
	shards, qs := testShards(t, 3)
	p := NewPool(Options{Workers: 4, ChunkSize: 2, Stealing: true})
	res, err := p.Run(context.Background(), shards, qs)
	if err != nil {
		t.Fatal(err)
	}
	wantChunks := len(shards) * ((len(qs) + 1) / 2)
	var byWorker, byShard int
	var workerWork, shardWork slm.Work
	for _, w := range res.Workers {
		byWorker += w.Chunks
		workerWork.Add(w.Work)
	}
	for _, s := range res.Shards {
		byShard += s.Chunks
		shardWork.Add(s.Work)
	}
	if byWorker != wantChunks || byShard != wantChunks {
		t.Fatalf("chunk accounting: workers %d, shards %d, want %d", byWorker, byShard, wantChunks)
	}
	if workerWork != shardWork {
		t.Fatalf("work accounting: workers %+v, shards %+v", workerWork, shardWork)
	}
	if res.ChunkSize != 2 {
		t.Fatalf("chunk size %d, want the explicit 2", res.ChunkSize)
	}
}

// TestStealingReachesOrphanShards: with more shards than workers, the
// shards nobody is homed on can only be executed through steal-half, so
// the run must complete every chunk and report at least one steal. This
// holds on any machine, however the goroutines are actually interleaved.
func TestStealingReachesOrphanShards(t *testing.T) {
	shards, qs := testShards(t, 5)
	p := NewPool(Options{Workers: 2, ChunkSize: 1, Stealing: true})
	res, err := p.Run(context.Background(), shards, qs)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := serialReference(shards, qs)
	if !reflect.DeepEqual(res.Matches, want) {
		t.Fatal("match matrix differs from serial reference")
	}
	steals, stolen := 0, 0
	for _, w := range res.Workers {
		steals += w.Steals
		stolen += w.Stolen
	}
	if steals == 0 || stolen == 0 {
		t.Fatalf("orphan shards were reached without stealing (steals=%d stolen=%d)", steals, stolen)
	}
}

// TestStealHalf pins the deque steal semantics: thieves take the back
// half rounded up, owners keep popping the front.
func TestStealHalf(t *testing.T) {
	d := &deque{chunks: []chunk{{lo: 0}, {lo: 1}, {lo: 2}, {lo: 3}, {lo: 4}}}
	stolen := d.stealHalf()
	if len(stolen) != 3 || stolen[0].lo != 2 || stolen[2].lo != 4 {
		t.Fatalf("stealHalf took %+v", stolen)
	}
	if c, ok := d.pop(); !ok || c.lo != 0 {
		t.Fatalf("owner pop after steal: %+v %v", c, ok)
	}
	if d.size() != 1 {
		t.Fatalf("deque size %d after steal+pop", d.size())
	}
	d.pop()
	if got := d.stealHalf(); got != nil {
		t.Fatalf("stealHalf on empty deque returned %+v", got)
	}
}

// TestStaticNeverSteals: the baseline schedule must report zero steals.
func TestStaticNeverSteals(t *testing.T) {
	shards, qs := testShards(t, 3)
	p := NewPool(Options{Workers: 6, ChunkSize: 1, Stealing: false})
	res, err := p.Run(context.Background(), shards, qs)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range res.Workers {
		if w.Steals != 0 || w.Stolen != 0 {
			t.Fatalf("static worker %d stole: %+v", w.Worker, w)
		}
	}
}

// TestRunCancellation: a cancelled context must surface as ctx.Err() and
// leave no goroutines behind.
func TestRunCancellation(t *testing.T) {
	shards, qs := testShards(t, 2)
	base := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	p := NewPool(Options{Workers: 4, ChunkSize: 1, Stealing: true})
	if _, err := p.Run(ctx, shards, qs); err != context.Canceled {
		t.Fatalf("cancelled run returned %v", err)
	}

	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > base {
		if time.Now().After(deadline) {
			t.Fatalf("goroutine leak after cancellation: %d > %d", runtime.NumGoroutine(), base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestEmptyInputs: zero shards or zero queries complete without work.
func TestEmptyInputs(t *testing.T) {
	shards, qs := testShards(t, 2)
	p := NewPool(Options{Workers: 4, Stealing: true})
	res, err := p.Run(context.Background(), nil, qs)
	if err != nil || len(res.Matches) != 0 {
		t.Fatalf("no shards: %v %+v", err, res)
	}
	res, err = p.Run(context.Background(), shards, nil)
	if err != nil {
		t.Fatal(err)
	}
	for s := range res.Matches {
		if len(res.Matches[s]) != 0 {
			t.Fatalf("shard %d produced matches for zero queries", s)
		}
	}
}

// TestEstimateSchedules pins the virtual-time replay: static pinning
// inherits the shard skew, stealing flattens it, one worker degenerates
// to the serial sum.
func TestEstimateSchedules(t *testing.T) {
	costs := [][]int64{
		{10, 10, 10, 10, 10, 10, 10, 10}, // heavy shard: 80 units
		{1, 1, 1, 1, 1, 1, 1, 1},         // light shard: 8 units
	}
	static := Estimate(costs, 2, false)
	steal := Estimate(costs, 2, true)
	if static != 80 {
		t.Fatalf("static makespan %d, want the pinned heavy shard's 80", static)
	}
	if steal >= static {
		t.Fatalf("stealing makespan %d did not beat static %d", steal, static)
	}
	if got := Estimate(costs, 1, true); got != 88 {
		t.Fatalf("one worker must serialize: %d, want 88", got)
	}
	if got := Estimate(nil, 4, true); got != 0 {
		t.Fatalf("empty costs: %d", got)
	}
	// The replay must be deterministic.
	if a, b := Estimate(costs, 3, true), Estimate(costs, 3, true); a != b {
		t.Fatalf("estimate not deterministic: %d vs %d", a, b)
	}
}

// TestChunkCosts: folding must mirror Run's chunk enumeration.
func TestChunkCosts(t *testing.T) {
	perQuery := [][]int64{{1, 2, 3, 4, 5}}
	got := ChunkCosts(perQuery, 2)
	want := []int64{3, 7, 5}
	if len(got) != 1 || len(got[0]) != len(want) {
		t.Fatalf("chunk costs %+v", got)
	}
	for i := range want {
		if got[0][i] != want[i] {
			t.Fatalf("chunk %d cost %d, want %d", i, got[0][i], want[i])
		}
	}
}

// TestTunerConverges: the auto-tuner must shrink chunks when cells are
// expensive and respect the granularity floor when they are cheap.
func TestTunerConverges(t *testing.T) {
	var tu Tuner
	// Unobserved: pure granularity floor.
	if got := tu.ChunkSize(1024, 1, 8); got != 1024/(minChunksPerWorker*8) {
		t.Fatalf("cold chunk size %d", got)
	}
	// Expensive cells force the work ceiling below the floor.
	tu.Observe(10, slm.Work{IonHits: 10 * targetChunkWork})
	if got := tu.ChunkSize(1024, 1, 8); got != 1 {
		t.Fatalf("expensive cells: chunk %d, want 1", got)
	}
	// Cheap cells restore the floor (EWMA needs a few rounds).
	for i := 0; i < 50; i++ {
		tu.Observe(1000, slm.Work{IonHits: 10})
	}
	if got := tu.ChunkSize(1024, 1, 8); got != 1024/(minChunksPerWorker*8) {
		t.Fatalf("cheap cells: chunk %d", got)
	}
	if got := tu.ChunkSize(4, 1, 64); got != 1 {
		t.Fatalf("tiny batch: chunk %d, want 1", got)
	}
}
