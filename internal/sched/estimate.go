package sched

// Deterministic schedule estimation. Wall-clock comparisons of the static
// and stealing schedules need as many real cores as workers, which the
// containers this reproduction runs on rarely have; the bench figures
// therefore replay both schedules in virtual time over deterministic
// per-chunk work units (the repo's CostModel convention: work over a
// calibrated rate stands in for wall time, and load-balance effects are
// preserved exactly). The replay shares the real executor's dealing and
// stealing rules, so it is the algorithm itself being evaluated — only
// the nondeterministic OS interleaving is idealized away: each virtual
// worker acts the moment its clock frees, i.e. dedicated-core execution.

// ChunkCosts folds per-(shard, query) work units into per-chunk costs at
// the given granularity, mirroring Run's chunk enumeration.
func ChunkCosts(perQuery [][]int64, chunkSize int) [][]int64 {
	if chunkSize < 1 {
		chunkSize = 1
	}
	out := make([][]int64, len(perQuery))
	for s, qs := range perQuery {
		for lo := 0; lo < len(qs); lo += chunkSize {
			hi := lo + chunkSize
			if hi > len(qs) {
				hi = len(qs)
			}
			var sum int64
			for q := lo; q < hi; q++ {
				sum += qs[q]
			}
			out[s] = append(out[s], sum)
		}
	}
	return out
}

// Estimate returns the virtual-time makespan (in work units) of executing
// the per-shard chunk costs on the given worker count under one of the
// two schedules. Fully deterministic: ties between workers break by id,
// victim selection by lowest shard index, exactly as in the executor.
func Estimate(costs [][]int64, workers int, stealing bool) int64 {
	if workers < 1 {
		workers = 1
	}
	perShard := make([][]chunk, len(costs))
	total := 0
	for s, cs := range costs {
		perShard[s] = make([]chunk, len(cs))
		for i := range cs {
			perShard[s][i] = chunk{shard: s, lo: i}
		}
		total += len(cs)
	}
	if total == 0 || len(costs) == 0 {
		return 0
	}
	cost := func(c chunk) int64 { return costs[c.shard][c.lo] }

	if !stealing {
		var makespan int64
		for _, plan := range dealStatic(perShard, workers) {
			var t int64
			for _, c := range plan {
				t += cost(c)
			}
			if t > makespan {
				makespan = t
			}
		}
		return makespan
	}

	// Virtual work-stealing replay: the worker with the earliest clock
	// acts next (dedicated cores, zero scheduling noise).
	type vworker struct {
		clock int64
		home  int
		local []chunk
		done  bool
	}
	ws := make([]*vworker, workers)
	for t := range ws {
		ws[t] = &vworker{home: homeShard(t, len(perShard))}
	}
	remaining := total
	var makespan int64
	for remaining > 0 {
		// Earliest clock among live workers, ties by id.
		var w *vworker
		for _, cand := range ws {
			if cand.done {
				continue
			}
			if w == nil || cand.clock < w.clock {
				w = cand
			}
		}
		if w == nil {
			break
		}
		var c chunk
		switch {
		case len(w.local) > 0:
			c, w.local = w.local[0], w.local[1:]
		case len(perShard[w.home]) > 0:
			c, perShard[w.home] = perShard[w.home][0], perShard[w.home][1:]
		default:
			victim, best := -1, 0
			for s := range perShard {
				if n := len(perShard[s]); n > best {
					best, victim = n, s
				}
			}
			if victim < 0 {
				w.done = true
				continue
			}
			take := (best + 1) / 2
			stolen := append([]chunk(nil), perShard[victim][best-take:]...)
			perShard[victim] = perShard[victim][:best-take]
			w.home = victim
			c, w.local = stolen[0], stolen[1:]
		}
		w.clock += cost(c)
		if w.clock > makespan {
			makespan = w.clock
		}
		remaining--
	}
	return makespan
}
