// Package sched is the engine's query-time execution layer: a shared,
// load-aware worker pool that replaces the static per-shard / strided
// goroutine scheduling the run modes used to carry individually.
//
// LBE balances the *data* across shards ahead of time, but per-query cost
// still varies wildly at search time (open-search candidate counts are
// skewed), so a static assignment of queries to threads — or of whole
// shards to goroutine groups — re-introduces exactly the idle-core problem
// the paper set out to remove. Following the HiCOPS line of work
// (arXiv:2102.02286), the scheduler overlaps all (shard × query-range)
// tasks on one worker pool and lets idle workers steal queued work, while
// measuring balance in the deterministic slm.Work units the index already
// accounts (arXiv:2009.14123 motivates work units over wall clock).
//
// Execution model:
//
//   - A batch of queries against S shard indexes is split into chunks:
//     contiguous query sub-ranges of one shard, the unit of scheduling.
//   - Each shard owns a deque of its chunks. Workers are assigned home
//     shards round-robin and pop chunks from the front of their home
//     deque (good locality: a worker stays on one index, and its Scratch
//     buffers stay sized and hot for that index).
//   - When a worker's deque runs dry it finds the deque with the most
//     remaining chunks and steals the back half into a private run queue
//     (steal-half: one steal amortizes over many chunks).
//   - With Stealing disabled the same chunks are pre-dealt statically:
//     the workers homed on a shard stride over its chunk list and never
//     look elsewhere. This is the old per-shard/strided behavior, kept
//     as the measured baseline (see bench.Steal).
//
// Results are deterministic by construction: every (shard, query) cell of
// the output is written by exactly one chunk, and a query's matches depend
// only on (index, query) — never on which worker ran it or when. The PSMs
// are therefore byte-identical to the serial path for any worker count,
// chunk size, or steal schedule; only the telemetry (who did how much,
// wall times) varies.
package sched

import (
	"context"
	"sync"
	"time"

	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// Options configures a Pool.
type Options struct {
	// Workers is the pool size. Values <= 1 run the batch serially on the
	// caller's goroutine.
	Workers int
	// ChunkSize is the task granularity in queries per chunk. 0 auto-tunes
	// from the observed work per query (see Tuner).
	ChunkSize int
	// Stealing selects the work-stealing schedule. False pre-deals chunks
	// statically (the strided baseline) and never rebalances.
	Stealing bool
}

// ShardStats is one shard's share of a scheduled batch. Work is
// deterministic (identical for every schedule); Nanos is the summed wall
// time of the shard's chunks, which depends on the machine.
type ShardStats struct {
	Shard  int
	Chunks int
	Work   slm.Work
	Nanos  int64
}

// WorkerStats is one worker's share of a scheduled batch: how many chunks
// it ran (and how many of those it obtained by stealing), the number of
// steal operations it performed, and the work/wall-time it executed. The
// spread of Work across workers is the scheduler's balance figure.
type WorkerStats struct {
	Worker int
	Chunks int
	Stolen int // chunks acquired by stealing
	Steals int // successful steal-half operations
	Work   slm.Work
	Nanos  int64
}

// Add accumulates a batch's worker telemetry into a lifetime aggregate.
func (w *WorkerStats) Add(b WorkerStats) {
	w.Chunks += b.Chunks
	w.Stolen += b.Stolen
	w.Steals += b.Steals
	w.Work.Add(b.Work)
	w.Nanos += b.Nanos
}

// Result is one scheduled batch: the per-shard match matrix plus the
// telemetry of how the schedule played out.
type Result struct {
	// Matches[s][q] holds shard s's matches for query q, identical to
	// shards[s].SearchAll(qs, 0) for every schedule.
	Matches [][][]slm.Match
	Shards  []ShardStats
	Workers []WorkerStats
	// ChunkSize is the granularity this batch actually used (after
	// auto-tuning when Options.ChunkSize is 0).
	ChunkSize int
}

// Work sums the deterministic work across shards.
func (r *Result) Work() slm.Work {
	var w slm.Work
	for _, s := range r.Shards {
		w.Add(s.Work)
	}
	return w
}

// Pool runs query batches under one scheduling policy. A Pool is safe for
// concurrent Run calls; the embedded tuner is shared across them so chunk
// sizing keeps learning over a session's lifetime.
type Pool struct {
	opts  Options
	tuner Tuner
}

// NewPool creates a pool with the given options.
func NewPool(opts Options) *Pool {
	return &Pool{opts: opts}
}

// Options returns the pool's scheduling options.
func (p *Pool) Options() Options { return p.opts }

// chunk is one schedulable task: queries [lo, hi) against one shard.
type chunk struct {
	shard  int
	lo, hi int
}

// workerState is one worker's working set for a single Run: its public
// telemetry plus the per-shard accounting reduced after the barrier.
type workerState struct {
	stats       WorkerStats
	shardChunks []int
	shardWork   []slm.Work
	shardNanos  []int64
	scratch     slm.Scratch
}

func newWorkerState(id, shards int) *workerState {
	return &workerState{
		stats:       WorkerStats{Worker: id},
		shardChunks: make([]int, shards),
		shardWork:   make([]slm.Work, shards),
		shardNanos:  make([]int64, shards),
	}
}

// runChunk searches one chunk's queries against its shard, writing each
// query's matches into the (shard, query) cell owned by this chunk alone.
//
//lbe:hotpath
func (ws *workerState) runChunk(c chunk, ix *slm.Index, qs []spectrum.Experimental, out [][][]slm.Match) {
	start := time.Now()
	var work slm.Work
	for q := c.lo; q < c.hi; q++ {
		m, w := ix.Search(qs[q], 0, &ws.scratch)
		out[c.shard][q] = m
		work.Add(w)
	}
	nanos := time.Since(start).Nanoseconds()
	ws.stats.Chunks++
	ws.stats.Work.Add(work)
	ws.stats.Nanos += nanos
	ws.shardChunks[c.shard]++
	ws.shardWork[c.shard].Add(work)
	ws.shardNanos[c.shard] += nanos
}

// deque holds one shard's pending chunks. Owners pop from the front;
// thieves take the back half. The mutex is uncontended in the common case
// (a shard's home workers plus the occasional thief).
type deque struct {
	mu     sync.Mutex
	chunks []chunk
}

// pop removes and returns the front chunk.
//
//lbe:hotpath
func (d *deque) pop() (chunk, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(d.chunks) == 0 {
		return chunk{}, false
	}
	c := d.chunks[0]
	d.chunks = d.chunks[1:]
	return c, true
}

// stealHalf removes and returns the back half (rounded up) of the deque.
// The sized make for the stolen chunks is the transfer's one allocation.
//
//lbe:hotpath
func (d *deque) stealHalf() []chunk {
	d.mu.Lock()
	defer d.mu.Unlock()
	n := len(d.chunks)
	if n == 0 {
		return nil
	}
	take := (n + 1) / 2
	stolen := make([]chunk, take)
	copy(stolen, d.chunks[n-take:])
	d.chunks = d.chunks[:n-take]
	return stolen
}

// size reports the current queue length (used by the victim scan).
//
//lbe:hotpath
func (d *deque) size() int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.chunks)
}

// Run searches qs against every shard and returns the full match matrix
// plus telemetry. Matches are identical to the serial reference for every
// worker count and chunk size. On context cancellation Run stops between
// chunks and returns ctx.Err() with a nil result.
func (p *Pool) Run(ctx context.Context, shards []*slm.Index, qs []spectrum.Experimental) (*Result, error) {
	nq := len(qs)
	ns := len(shards)
	res := &Result{
		Matches: make([][][]slm.Match, ns),
		Shards:  make([]ShardStats, ns),
	}
	for s := range shards {
		res.Matches[s] = make([][]slm.Match, nq)
		res.Shards[s].Shard = s
	}
	if ns == 0 || nq == 0 {
		res.ChunkSize = 1
		return res, ctx.Err()
	}

	workers := p.opts.Workers
	if workers < 1 {
		workers = 1
	}
	csize := p.opts.ChunkSize
	if csize <= 0 {
		csize = p.tuner.ChunkSize(nq, ns, workers)
	}
	if csize > nq {
		csize = nq
	}
	res.ChunkSize = csize

	// Enumerate every shard's chunks up front; no task is ever spawned
	// later, so "all deques and private queues empty" is a complete
	// termination condition.
	perShard := make([][]chunk, ns)
	for s := range shards {
		perShard[s] = make([]chunk, 0, (nq+csize-1)/csize)
		for lo := 0; lo < nq; lo += csize {
			hi := lo + csize
			if hi > nq {
				hi = nq
			}
			perShard[s] = append(perShard[s], chunk{shard: s, lo: lo, hi: hi})
		}
	}

	states := make([]*workerState, workers)
	for t := range states {
		states[t] = newWorkerState(t, ns)
	}

	if workers == 1 {
		ws := states[0]
		for s := range perShard {
			for _, c := range perShard[s] {
				if err := ctx.Err(); err != nil {
					return nil, err
				}
				ws.runChunk(c, shards[c.shard], qs, res.Matches)
			}
		}
	} else if p.opts.Stealing {
		runStealing(ctx, shards, qs, perShard, states, res.Matches)
	} else {
		runStatic(ctx, shards, qs, perShard, states, res.Matches)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	reduce(states, res)
	p.tuner.Observe(int64(nq)*int64(ns), res.Work())
	return res, nil
}

// homeShard assigns workers to shards round-robin.
func homeShard(worker, shards int) int { return worker % shards }

// dealStatic assigns every chunk to a fixed worker: the workers homed on
// a shard stride over its chunk list; when there are more shards than
// workers, ownerless shards fold onto the worker their ring position
// points at. Shared by the static executor and Estimate.
func dealStatic(perShard [][]chunk, workers int) [][]chunk {
	plans := make([][]chunk, workers)
	owners := make([][]int, len(perShard)) // workers homed on each shard
	for t := 0; t < workers; t++ {
		owners[homeShard(t, len(perShard))] = append(owners[homeShard(t, len(perShard))], t)
	}
	for s := range perShard {
		own := owners[s]
		if len(own) == 0 {
			own = []int{homeShard(s, workers)}
		}
		for i, c := range perShard[s] {
			plans[own[i%len(own)]] = append(plans[own[i%len(own)]], c)
		}
	}
	return plans
}

// runStatic pre-deals every chunk to a fixed worker and never rebalances.
// With one shard and chunk size 1 this is exactly the legacy strided
// searchAll; with threads/shards workers per shard it is the legacy
// goroutine-per-shard split. It exists as the measured baseline for the
// stealing schedule.
func runStatic(ctx context.Context, shards []*slm.Index, qs []spectrum.Experimental, perShard [][]chunk, states []*workerState, out [][][]slm.Match) {
	workers := len(states)
	plans := dealStatic(perShard, workers)

	var wg sync.WaitGroup
	for t := 0; t < workers; t++ {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ws := states[t]
			for _, c := range plans[t] {
				if ctx.Err() != nil {
					return
				}
				ws.runChunk(c, shards[c.shard], qs, out)
			}
		}(t)
	}
	wg.Wait()
}

// runStealing is the load-aware schedule: per-shard deques, home-first
// popping, steal-half on empty.
func runStealing(ctx context.Context, shards []*slm.Index, qs []spectrum.Experimental, perShard [][]chunk, states []*workerState, out [][][]slm.Match) {
	deques := make([]*deque, len(perShard))
	for s := range perShard {
		deques[s] = &deque{chunks: perShard[s]}
	}

	var wg sync.WaitGroup
	for t := range states {
		wg.Add(1)
		go func(t int) {
			defer wg.Done()
			ws := states[t]
			home := deques[homeShard(t, len(deques))]
			var local []chunk // privately stolen chunks, run in order
			for {
				if ctx.Err() != nil {
					return
				}
				var c chunk
				if len(local) > 0 {
					c, local = local[0], local[1:]
				} else if popped, ok := home.pop(); ok {
					c = popped
				} else {
					// Home is dry: steal half of the fullest deque and
					// adopt that shard as the new home.
					victim, best := -1, 0
					for s, d := range deques {
						if n := d.size(); n > best {
							best, victim = n, s
						}
					}
					if victim < 0 {
						return // everything everywhere is done
					}
					stolen := deques[victim].stealHalf()
					if len(stolen) == 0 {
						continue // lost the race; rescan
					}
					ws.stats.Steals++
					ws.stats.Stolen += len(stolen)
					home = deques[victim]
					c, local = stolen[0], stolen[1:]
				}
				ws.runChunk(c, shards[c.shard], qs, out)
			}
		}(t)
	}
	wg.Wait()
}

// reduce folds the workers' accounting into the result. Work is summed in
// integer units, so per-shard and total figures are identical for every
// schedule.
func reduce(states []*workerState, res *Result) {
	res.Workers = make([]WorkerStats, len(states))
	for t, ws := range states {
		res.Workers[t] = ws.stats
		for s := range ws.shardWork {
			res.Shards[s].Chunks += ws.shardChunks[s]
			res.Shards[s].Work.Add(ws.shardWork[s])
			res.Shards[s].Nanos += ws.shardNanos[s]
		}
	}
}
