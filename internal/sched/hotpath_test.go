package sched

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"

	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// hotpathFuncs parses the package's non-test sources and returns the
// receiver-qualified names of every function annotated //lbe:hotpath.
func hotpathFuncs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, dir+"/"+name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text == "lbe:hotpath" || strings.HasPrefix(text, "lbe:hotpath ") {
					annotated = true
				}
			}
			if !annotated {
				continue
			}
			qualified := fd.Name.Name
			if fd.Recv != nil && len(fd.Recv.List) > 0 {
				typ := fd.Recv.List[0].Type
				if star, ok := typ.(*ast.StarExpr); ok {
					typ = star.X
				}
				if id, ok := typ.(*ast.Ident); ok {
					qualified = id.Name + "." + fd.Name.Name
				}
			}
			names = append(names, qualified)
		}
	}
	sort.Strings(names)
	return names
}

// TestHotpathAnnotationsMatchAllocGuards pins the //lbe:hotpath set in
// this package to the functions TestRunChunkZeroAllocWarm below (and the
// deque's uncontended operations it drives) actually guard at runtime.
func TestHotpathAnnotationsMatchAllocGuards(t *testing.T) {
	got := hotpathFuncs(t, ".")
	want := []string{
		"deque.pop",
		"deque.size",
		"deque.stealHalf",
		"workerState.runChunk",
	}
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("//lbe:hotpath annotations = %v, want %v (keep annotations and AllocsPerRun guards in lockstep)", got, want)
	}
}

// TestRunChunkZeroAllocWarm guards the per-chunk worker loop: with a
// warm Scratch, searching a chunk of queries that match nothing must not
// allocate at all (the result copy-out is the only allowed allocation,
// and it only happens for queries with matches).
func TestRunChunkZeroAllocWarm(t *testing.T) {
	shards, _ := testShards(t, 1)

	// Precursors far outside every peptide window: phase 1 admits no
	// candidate rows, so Search returns nil without copying.
	var misses []spectrum.Experimental
	for i := 0; i < 4; i++ {
		q := spectrum.Experimental{Scan: i + 1, PrecursorMZ: 90000 + float64(i), Charge: 2}
		q.Peaks = append(q.Peaks, spectrum.Peak{MZ: 100 + float64(i), Intensity: 1})
		q.SortPeaks()
		misses = append(misses, spectrum.Preprocess(q, 50))
	}

	ws := newWorkerState(0, 1)
	out := [][][]slm.Match{make([][]slm.Match, len(misses))}
	c := chunk{shard: 0, lo: 0, hi: len(misses)}
	ws.runChunk(c, shards[0], misses, out) // warm the scratch

	if n := testing.AllocsPerRun(50, func() {
		ws.runChunk(c, shards[0], misses, out)
	}); n != 0 {
		t.Errorf("runChunk on all-miss chunk allocates %.1f times per run, want 0", n)
	}
	for q, m := range out[0] {
		if len(m) != 0 {
			t.Fatalf("query %d unexpectedly matched; the guard needs all-miss queries", q)
		}
	}
}
