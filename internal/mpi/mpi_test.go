package mpi

import (
	"fmt"
	"sync"
	"testing"
)

// transports enumerates the two implementations under a common harness.
var transports = []struct {
	name string
	make func(t *testing.T, size int) []Comm
}{
	{"inproc", func(t *testing.T, size int) []Comm {
		w := NewWorld(size)
		t.Cleanup(w.Close)
		return w.Comms()
	}},
	{"tcp", func(t *testing.T, size int) []Comm {
		comms, err := NewTCPCluster(size)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			for _, c := range comms {
				c.Close()
			}
		})
		return comms
	}},
}

// runRanks executes fn concurrently on every rank and fails the test on
// any per-rank error.
func runRanks(t *testing.T, comms []Comm, fn func(c Comm) error) {
	t.Helper()
	var wg sync.WaitGroup
	errs := make([]error, len(comms))
	for r := range comms {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = fn(comms[r])
		}(r)
	}
	wg.Wait()
	for r, err := range errs {
		if err != nil {
			t.Fatalf("rank %d: %v", r, err)
		}
	}
}

func TestSendRecvBasic(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() == 0 {
					return c.Send(1, 7, []byte("hello"))
				}
				src, data, err := c.Recv(0, 7)
				if err != nil {
					return err
				}
				if src != 0 || string(data) != "hello" {
					return fmt.Errorf("got src=%d data=%q", src, data)
				}
				return nil
			})
		})
	}
}

func TestSendOrderPreservedPerTag(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			const n = 100
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() == 0 {
					for i := 0; i < n; i++ {
						if err := c.Send(1, 3, []byte{byte(i)}); err != nil {
							return err
						}
					}
					return nil
				}
				for i := 0; i < n; i++ {
					_, data, err := c.Recv(0, 3)
					if err != nil {
						return err
					}
					if data[0] != byte(i) {
						return fmt.Errorf("message %d out of order: got %d", i, data[0])
					}
				}
				return nil
			})
		})
	}
}

func TestTagMatching(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() == 0 {
					// Send tag 2 first, then tag 1: receiver asks for tag 1
					// first and must skip past the tag-2 message.
					if err := c.Send(1, 2, []byte("two")); err != nil {
						return err
					}
					return c.Send(1, 1, []byte("one"))
				}
				_, d1, err := c.Recv(0, 1)
				if err != nil {
					return err
				}
				_, d2, err := c.Recv(0, 2)
				if err != nil {
					return err
				}
				if string(d1) != "one" || string(d2) != "two" {
					return fmt.Errorf("tag matching failed: %q %q", d1, d2)
				}
				return nil
			})
		})
	}
}

func TestAnySource(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 4)
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() != 0 {
					return c.Send(0, 5, []byte{byte(c.Rank())})
				}
				seen := map[int]bool{}
				for i := 0; i < 3; i++ {
					src, data, err := c.Recv(AnySource, 5)
					if err != nil {
						return err
					}
					if int(data[0]) != src {
						return fmt.Errorf("payload %d does not match src %d", data[0], src)
					}
					seen[src] = true
				}
				if len(seen) != 3 {
					return fmt.Errorf("expected 3 distinct sources, got %v", seen)
				}
				return nil
			})
		})
	}
}

func TestSendErrors(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			if err := comms[0].Send(5, 1, nil); err == nil {
				t.Error("send to out-of-range rank must fail")
			}
			if err := comms[0].Send(-1, 1, nil); err == nil {
				t.Error("send to negative rank must fail")
			}
			if _, _, err := comms[0].Recv(9, 1); err == nil {
				t.Error("recv from out-of-range rank must fail")
			}
		})
	}
}

func TestSelfSend(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			c := comms[0]
			if err := c.Send(0, 9, []byte("self")); err != nil {
				t.Fatal(err)
			}
			src, data, err := c.Recv(0, 9)
			if err != nil {
				t.Fatal(err)
			}
			if src != 0 || string(data) != "self" {
				t.Errorf("self-send got src=%d data=%q", src, data)
			}
		})
	}
}

func TestSenderMayReuseBuffer(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() == 0 {
					buf := []byte("aaaa")
					if err := c.Send(1, 1, buf); err != nil {
						return err
					}
					copy(buf, "bbbb") // must not corrupt the in-flight message
					return c.Send(1, 1, buf)
				}
				_, d1, err := c.Recv(0, 1)
				if err != nil {
					return err
				}
				_, d2, err := c.Recv(0, 1)
				if err != nil {
					return err
				}
				if string(d1) != "aaaa" || string(d2) != "bbbb" {
					return fmt.Errorf("buffer aliasing: %q %q", d1, d2)
				}
				return nil
			})
		})
	}
}

func TestRecvAfterCloseReturns(t *testing.T) {
	w := NewWorld(2)
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(1).Recv(0, 1)
		done <- err
	}()
	w.Close()
	if err := <-done; err != ErrClosed {
		t.Errorf("recv after close = %v, want ErrClosed", err)
	}
	if err := w.Comm(0).Send(1, 1, nil); err != ErrClosed {
		t.Errorf("send to closed = %v, want ErrClosed", err)
	}
}

func TestBarrier(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 4)
			var mu sync.Mutex
			phase := make([]int, 4)
			// Run 5 consecutive barriers; after each, every rank must
			// observe all ranks at the same phase or later.
			runRanks(t, comms, func(c Comm) error {
				for p := 1; p <= 5; p++ {
					mu.Lock()
					phase[c.Rank()] = p
					mu.Unlock()
					if err := Barrier(c); err != nil {
						return err
					}
					mu.Lock()
					for r, ph := range phase {
						if ph < p {
							mu.Unlock()
							return fmt.Errorf("after barrier %d, rank %d still at %d", p, r, ph)
						}
					}
					mu.Unlock()
				}
				return nil
			})
		})
	}
}

func TestBarrierSingleRank(t *testing.T) {
	w := NewWorld(1)
	defer w.Close()
	if err := Barrier(w.Comm(0)); err != nil {
		t.Fatal(err)
	}
}

func TestBcast(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 4)
			runRanks(t, comms, func(c Comm) error {
				var in []byte
				if c.Rank() == 2 {
					in = []byte("payload")
				}
				got, err := Bcast(c, 2, in)
				if err != nil {
					return err
				}
				if string(got) != "payload" {
					return fmt.Errorf("bcast got %q", got)
				}
				return nil
			})
		})
	}
}

func TestGatherScatter(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 4)
			runRanks(t, comms, func(c Comm) error {
				// Gather rank ids at root 1.
				all, err := Gather(c, 1, []byte{byte(c.Rank())})
				if err != nil {
					return err
				}
				if c.Rank() == 1 {
					for r, d := range all {
						if len(d) != 1 || int(d[0]) != r {
							return fmt.Errorf("gather[%d] = %v", r, d)
						}
					}
				} else if all != nil {
					return fmt.Errorf("non-root gather returned %v", all)
				}
				// Scatter doubled ranks from root 1.
				var parts [][]byte
				if c.Rank() == 1 {
					parts = [][]byte{{0}, {2}, {4}, {6}}
				}
				part, err := Scatter(c, 1, parts)
				if err != nil {
					return err
				}
				if len(part) != 1 || int(part[0]) != 2*c.Rank() {
					return fmt.Errorf("scatter part = %v", part)
				}
				return nil
			})
		})
	}
}

func TestConsecutiveGathersDoNotInterfere(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 3)
			runRanks(t, comms, func(c Comm) error {
				for round := 0; round < 10; round++ {
					payload := []byte{byte(c.Rank()), byte(round)}
					all, err := Gather(c, 0, payload)
					if err != nil {
						return err
					}
					if c.Rank() == 0 {
						for r, d := range all {
							if int(d[0]) != r || int(d[1]) != round {
								return fmt.Errorf("round %d gather[%d] = %v", round, r, d)
							}
						}
					}
				}
				return nil
			})
		})
	}
}

func TestAllGather(t *testing.T) {
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 3)
			runRanks(t, comms, func(c Comm) error {
				all, err := AllGather(c, []byte{byte(c.Rank() * 10)})
				if err != nil {
					return err
				}
				if len(all) != 3 {
					return fmt.Errorf("allgather size %d", len(all))
				}
				for r, d := range all {
					if int(d[0]) != r*10 {
						return fmt.Errorf("allgather[%d] = %v", r, d)
					}
				}
				return nil
			})
		})
	}
}

func TestReduceAndAllReduce(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 4)
			runRanks(t, comms, func(c Comm) error {
				v := int64(c.Rank() + 1) // 1+2+3+4 = 10
				sum, err := ReduceInt64(c, 0, v, add)
				if err != nil {
					return err
				}
				if c.Rank() == 0 && sum != 10 {
					return fmt.Errorf("reduce = %d, want 10", sum)
				}
				if c.Rank() != 0 && sum != 0 {
					return fmt.Errorf("non-root reduce = %d, want 0", sum)
				}
				all, err := AllReduceInt64(c, v, add)
				if err != nil {
					return err
				}
				if all != 10 {
					return fmt.Errorf("allreduce = %d, want 10", all)
				}
				return nil
			})
		})
	}
}

func TestReduceNegativeValues(t *testing.T) {
	add := func(a, b int64) int64 { return a + b }
	w := NewWorld(2)
	defer w.Close()
	runRanks(t, w.Comms(), func(c Comm) error {
		v := int64(-100)
		if c.Rank() == 1 {
			v = 1
		}
		got, err := AllReduceInt64(c, v, add)
		if err != nil {
			return err
		}
		if got != -99 {
			return fmt.Errorf("allreduce = %d, want -99", got)
		}
		return nil
	})
}

func TestGobRoundTrip(t *testing.T) {
	type payload struct {
		Name   string
		Values []float64
	}
	for _, tr := range transports {
		t.Run(tr.name, func(t *testing.T) {
			comms := tr.make(t, 2)
			runRanks(t, comms, func(c Comm) error {
				if c.Rank() == 0 {
					return SendGob(c, 1, 11, payload{Name: "x", Values: []float64{1, 2.5}})
				}
				var p payload
				src, err := RecvGob(c, 0, 11, &p)
				if err != nil {
					return err
				}
				if src != 0 || p.Name != "x" || len(p.Values) != 2 || p.Values[1] != 2.5 {
					return fmt.Errorf("gob payload = %+v", p)
				}
				return nil
			})
		})
	}
}

func TestLargeMessageTCP(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer func() {
		for _, c := range comms {
			c.Close()
		}
	}()
	big := make([]byte, 4<<20)
	for i := range big {
		big[i] = byte(i * 31)
	}
	runRanks(t, comms, func(c Comm) error {
		if c.Rank() == 0 {
			return c.Send(1, 1, big)
		}
		_, data, err := c.Recv(0, 1)
		if err != nil {
			return err
		}
		if len(data) != len(big) {
			return fmt.Errorf("len = %d", len(data))
		}
		for i := 0; i < len(big); i += 97 {
			if data[i] != big[i] {
				return fmt.Errorf("corruption at %d", i)
			}
		}
		return nil
	})
}

func TestHostJoinTCPBootstrap(t *testing.T) {
	const size = 3
	addr := "127.0.0.1:39471"
	comms := make([]Comm, size)
	var wg sync.WaitGroup
	errs := make([]error, size)
	wg.Add(size)
	go func() {
		defer wg.Done()
		c, err := HostTCP(addr, size)
		comms[0], errs[0] = c, err
	}()
	for i := 1; i < size; i++ {
		go func(i int) {
			defer wg.Done()
			c, err := JoinTCP(addr)
			if err == nil {
				comms[c.Rank()] = c
			}
			errs[i] = err
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("bootstrap %d: %v", i, err)
		}
	}
	defer func() {
		for _, c := range comms {
			if c != nil {
				c.Close()
			}
		}
	}()
	// Verify the mesh with an AllReduce.
	runRanks(t, comms, func(c Comm) error {
		sum, err := AllReduceInt64(c, int64(c.Rank()), func(a, b int64) int64 { return a + b })
		if err != nil {
			return err
		}
		if sum != 3 { // 0+1+2
			return fmt.Errorf("allreduce over bootstrap mesh = %d", sum)
		}
		return nil
	})
}

func TestNewWorldPanicsOnZero(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewWorld(0) should panic")
		}
	}()
	NewWorld(0)
}

func TestNewTCPClusterInvalidSize(t *testing.T) {
	if _, err := NewTCPCluster(0); err == nil {
		t.Error("size 0 must fail")
	}
}
