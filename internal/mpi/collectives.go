package mpi

import (
	"bytes"
	"encoding/gob"
	"fmt"
)

// Internal tags for collectives; user tags must stay below ReservedTagBase.
const (
	tagBarrierIn  = ReservedTagBase + 0
	tagBarrierOut = ReservedTagBase + 1
	tagBcast      = ReservedTagBase + 2
	tagGather     = ReservedTagBase + 3
	tagScatter    = ReservedTagBase + 4
	tagReduce     = ReservedTagBase + 5
	tagAllReduce  = ReservedTagBase + 6
)

// Barrier blocks until every rank in the communicator has entered it.
// It is implemented as a gather-to-0 followed by a release broadcast.
func Barrier(c Comm) error {
	if c.Size() == 1 {
		return nil
	}
	if c.Rank() == 0 {
		for i := 1; i < c.Size(); i++ {
			if _, _, err := c.Recv(AnySource, tagBarrierIn); err != nil {
				return err
			}
		}
		for r := 1; r < c.Size(); r++ {
			if err := c.Send(r, tagBarrierOut, nil); err != nil {
				return err
			}
		}
		return nil
	}
	if err := c.Send(0, tagBarrierIn, nil); err != nil {
		return err
	}
	_, _, err := c.Recv(0, tagBarrierOut)
	return err
}

// Bcast distributes root's data to every rank and returns it; non-root
// ranks ignore their data argument.
func Bcast(c Comm, root int, data []byte) ([]byte, error) {
	if err := checkPeer(root, c.Size()); err != nil {
		return nil, err
	}
	if c.Rank() == root {
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tagBcast, data); err != nil {
				return nil, err
			}
		}
		return data, nil
	}
	_, got, err := c.Recv(root, tagBcast)
	return got, err
}

// Gather collects each rank's data at root. At root it returns a slice
// indexed by rank (including root's own contribution); at other ranks it
// returns nil.
func Gather(c Comm, root int, data []byte) ([][]byte, error) {
	if err := checkPeer(root, c.Size()); err != nil {
		return nil, err
	}
	if c.Rank() != root {
		return nil, c.Send(root, tagGather, data)
	}
	// Receive per rank rather than from AnySource: per-source FIFO order
	// keeps back-to-back Gathers from stealing each other's messages.
	out := make([][]byte, c.Size())
	out[root] = data
	for r := 0; r < c.Size(); r++ {
		if r == root {
			continue
		}
		_, got, err := c.Recv(r, tagGather)
		if err != nil {
			return nil, err
		}
		out[r] = got
	}
	return out, nil
}

// Scatter distributes parts[r] from root to each rank r and returns this
// rank's part. Only root's parts argument is consulted; it must have
// exactly Size() entries.
func Scatter(c Comm, root int, parts [][]byte) ([]byte, error) {
	if err := checkPeer(root, c.Size()); err != nil {
		return nil, err
	}
	if c.Rank() == root {
		if len(parts) != c.Size() {
			return nil, fmt.Errorf("mpi: scatter needs %d parts, got %d", c.Size(), len(parts))
		}
		for r := 0; r < c.Size(); r++ {
			if r == root {
				continue
			}
			if err := c.Send(r, tagScatter, parts[r]); err != nil {
				return nil, err
			}
		}
		return parts[root], nil
	}
	_, got, err := c.Recv(root, tagScatter)
	return got, err
}

// AllGather collects every rank's data everywhere: a Gather to rank 0
// followed by a broadcast of the gob-encoded table.
func AllGather(c Comm, data []byte) ([][]byte, error) {
	all, err := Gather(c, 0, data)
	if err != nil {
		return nil, err
	}
	var blob []byte
	if c.Rank() == 0 {
		var buf bytes.Buffer
		if err := gob.NewEncoder(&buf).Encode(all); err != nil {
			return nil, err
		}
		blob = buf.Bytes()
	}
	blob, err = Bcast(c, 0, blob)
	if err != nil {
		return nil, err
	}
	var out [][]byte
	if err := gob.NewDecoder(bytes.NewReader(blob)).Decode(&out); err != nil {
		return nil, err
	}
	return out, nil
}

// ReduceInt64 folds one int64 per rank at root with the given operation
// (e.g. addition); non-root ranks receive 0. Deterministic: the fold is
// applied in rank order.
func ReduceInt64(c Comm, root int, value int64, op func(a, b int64) int64) (int64, error) {
	enc := func(v int64) []byte {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(v >> (8 * i))
		}
		return buf[:]
	}
	dec := func(b []byte) int64 {
		var v int64
		for i := 0; i < 8; i++ {
			v |= int64(b[i]) << (8 * i)
		}
		return v
	}
	all, err := Gather(c, root, enc(value))
	if err != nil {
		return 0, err
	}
	if c.Rank() != root {
		return 0, nil
	}
	acc := dec(all[0])
	for r := 1; r < len(all); r++ {
		acc = op(acc, dec(all[r]))
	}
	return acc, nil
}

// AllReduceInt64 is ReduceInt64 followed by a broadcast of the result.
func AllReduceInt64(c Comm, value int64, op func(a, b int64) int64) (int64, error) {
	acc, err := ReduceInt64(c, 0, value, op)
	if err != nil {
		return 0, err
	}
	var blob []byte
	if c.Rank() == 0 {
		var buf [8]byte
		for i := 0; i < 8; i++ {
			buf[i] = byte(acc >> (8 * i))
		}
		blob = buf[:]
	}
	blob, err = Bcast(c, 0, blob)
	if err != nil {
		return 0, err
	}
	var v int64
	for i := 0; i < 8; i++ {
		v |= int64(blob[i]) << (8 * i)
	}
	return v, nil
}

// SendGob gob-encodes v and sends it.
func SendGob(c Comm, to int, tag Tag, v any) error {
	var buf bytes.Buffer
	if err := gob.NewEncoder(&buf).Encode(v); err != nil {
		return fmt.Errorf("mpi: gob encode: %w", err)
	}
	return c.Send(to, tag, buf.Bytes())
}

// RecvGob receives a message and gob-decodes it into v (a pointer).
// It returns the source rank.
func RecvGob(c Comm, from int, tag Tag, v any) (int, error) {
	src, data, err := c.Recv(from, tag)
	if err != nil {
		return src, err
	}
	if err := gob.NewDecoder(bytes.NewReader(data)).Decode(v); err != nil {
		return src, fmt.Errorf("mpi: gob decode: %w", err)
	}
	return src, nil
}
