package mpi

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"sync"
	"time"
)

// TCP transport
//
// Bootstrap protocol: a coordinator (rank 0) listens on a well-known
// address. Every worker starts its own peer listener, dials the
// coordinator, and reports its listener address. Once size-1 workers have
// registered, the coordinator assigns ranks in registration order and
// sends every worker the full address table. Each rank then dials every
// peer with a smaller rank (identifying itself with a hello frame) and
// accepts connections from every peer with a larger rank, forming a full
// mesh.
//
// Wire format, all little-endian:
//
//	frame = u32 payloadLen | u16 tag | payload
//	hello = u32 magic 0x4C424531 ("LBE1") | u32 senderRank

const helloMagic = 0x4C424531

// tcpComm implements Comm over a mesh of TCP connections.
type tcpComm struct {
	rank  int
	size  int
	inbox *inbox

	mu    sync.Mutex // guards conns writes
	conns []net.Conn // conns[r] is the link to rank r (nil for self)

	listener net.Listener
	wg       sync.WaitGroup
	closed   sync.Once
}

func (c *tcpComm) Rank() int { return c.rank }
func (c *tcpComm) Size() int { return c.size }

//lbe:ignore ctxflow Comm is the MPI-style wire contract; cancellation closes the communicator, which fails a blocked Write
func (c *tcpComm) Send(to int, tag Tag, data []byte) error {
	if err := checkPeer(to, c.size); err != nil {
		return err
	}
	if to == c.rank {
		buf := make([]byte, len(data))
		copy(buf, data)
		return c.inbox.put(message{from: c.rank, tag: tag, data: buf})
	}
	conn := c.conns[to]
	if conn == nil {
		return fmt.Errorf("mpi: no connection to rank %d", to)
	}
	frame := make([]byte, 6+len(data))
	binary.LittleEndian.PutUint32(frame[0:], uint32(len(data)))
	binary.LittleEndian.PutUint16(frame[4:], uint16(tag))
	copy(frame[6:], data)
	c.mu.Lock()
	//lbe:ignore lockheld the mutex exists to serialize whole-frame writes; Close unblocks a stuck Write by closing the conn
	_, err := conn.Write(frame)
	c.mu.Unlock()
	if err != nil {
		return fmt.Errorf("mpi: send to rank %d: %w", to, err)
	}
	return nil
}

func (c *tcpComm) Recv(from int, tag Tag) (int, []byte, error) {
	if from != AnySource {
		if err := checkPeer(from, c.size); err != nil {
			return -1, nil, err
		}
	}
	m, err := c.inbox.get(from, tag)
	if err != nil {
		return -1, nil, err
	}
	return m.from, m.data, nil
}

func (c *tcpComm) Close() error {
	c.closed.Do(func() {
		c.inbox.close()
		if c.listener != nil {
			c.listener.Close()
		}
		for _, conn := range c.conns {
			if conn != nil {
				conn.Close()
			}
		}
	})
	c.wg.Wait()
	return nil
}

// readLoop pumps frames from one peer connection into the inbox until the
// connection or inbox closes. On exit the peer is marked down so a Recv
// naming it — blocked or future — fails with ErrPeerClosed instead of
// hanging once the already-delivered messages are drained; this is the
// transport-level footing a failover layer stands on.
func (c *tcpComm) readLoop(from int, conn net.Conn) {
	defer c.wg.Done()
	defer c.inbox.markDown(from)
	hdr := make([]byte, 6)
	for {
		if _, err := io.ReadFull(conn, hdr); err != nil {
			return
		}
		n := binary.LittleEndian.Uint32(hdr[0:])
		tag := Tag(binary.LittleEndian.Uint16(hdr[4:]))
		data := make([]byte, n)
		if _, err := io.ReadFull(conn, data); err != nil {
			return
		}
		if err := c.inbox.put(message{from: from, tag: tag, data: data}); err != nil {
			return
		}
	}
}

func writeHello(conn net.Conn, rank int) error {
	var b [8]byte
	binary.LittleEndian.PutUint32(b[0:], helloMagic)
	binary.LittleEndian.PutUint32(b[4:], uint32(rank))
	_, err := conn.Write(b[:])
	return err
}

func readHello(conn net.Conn) (int, error) {
	var b [8]byte
	if _, err := io.ReadFull(conn, b[:]); err != nil {
		return -1, err
	}
	if binary.LittleEndian.Uint32(b[0:]) != helloMagic {
		return -1, fmt.Errorf("mpi: bad hello magic")
	}
	return int(binary.LittleEndian.Uint32(b[4:])), nil
}

// meshConnect completes the full mesh for a rank that already knows the
// address table: dial lower ranks, accept higher ranks.
func (c *tcpComm) meshConnect(addrs []string) error {
	c.conns = make([]net.Conn, c.size)
	for peer := 0; peer < c.rank; peer++ {
		conn, err := dialRetry(addrs[peer], 5*time.Second)
		if err != nil {
			return fmt.Errorf("mpi: rank %d dialing rank %d: %w", c.rank, peer, err)
		}
		if err := writeHello(conn, c.rank); err != nil {
			return err
		}
		c.conns[peer] = conn
	}
	for accepted := c.rank + 1; accepted < c.size; accepted++ {
		conn, err := c.listener.Accept()
		if err != nil {
			return fmt.Errorf("mpi: rank %d accepting: %w", c.rank, err)
		}
		peer, err := readHello(conn)
		if err != nil {
			return err
		}
		if peer <= c.rank || peer >= c.size || c.conns[peer] != nil {
			conn.Close()
			return fmt.Errorf("mpi: unexpected hello from rank %d", peer)
		}
		c.conns[peer] = conn
	}
	for peer, conn := range c.conns {
		if conn != nil {
			c.wg.Add(1)
			go c.readLoop(peer, conn)
		}
	}
	return nil
}

func dialRetry(addr string, timeout time.Duration) (net.Conn, error) {
	deadline := time.Now().Add(timeout)
	for {
		conn, err := net.DialTimeout("tcp", addr, time.Second)
		if err == nil {
			return conn, nil
		}
		if time.Now().After(deadline) {
			return nil, err
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// NewTCPCluster starts a size-rank communicator entirely within this
// process, with every rank listening on a loopback TCP port and a full
// mesh of real TCP connections between them. It returns the endpoints
// indexed by rank.
//
//lbe:ignore ctxflow MPI_Init-style bootstrap; abandoning setup means Close on the returned endpoints, not a context
func NewTCPCluster(size int) ([]Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: cluster size %d must be >= 1", size)
	}
	comms := make([]*tcpComm, size)
	addrs := make([]string, size)
	for r := 0; r < size; r++ {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return nil, err
		}
		comms[r] = &tcpComm{rank: r, size: size, inbox: newInbox(), listener: ln}
		addrs[r] = ln.Addr().String()
	}
	var wg sync.WaitGroup
	errs := make([]error, size)
	for r := 0; r < size; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			errs[r] = comms[r].meshConnect(addrs)
		}(r)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			for _, c := range comms {
				c.Close()
			}
			return nil, err
		}
	}
	out := make([]Comm, size)
	for r := range comms {
		out[r] = comms[r]
	}
	return out, nil
}

// HostTCP runs the coordinator side of the multi-process bootstrap: it
// listens on addr, waits for size-1 workers to register, assigns ranks,
// distributes the address table, and returns the rank-0 endpoint.
//
//lbe:ignore ctxflow MPI_Init-style bootstrap; abandoning setup means Close on the returned endpoint, not a context
func HostTCP(addr string, size int) (Comm, error) {
	if size < 1 {
		return nil, fmt.Errorf("mpi: cluster size %d must be >= 1", size)
	}
	coord, err := net.Listen("tcp", addr)
	if err != nil {
		return nil, err
	}
	defer coord.Close()

	// Rank 0's own peer listener.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	c := &tcpComm{rank: 0, size: size, inbox: newInbox(), listener: ln}
	addrs := make([]string, size)
	addrs[0] = ln.Addr().String()

	regs := make([]net.Conn, 0, size-1)
	for len(regs) < size-1 {
		conn, err := coord.Accept()
		if err != nil {
			return nil, err
		}
		peerAddr, err := readString(conn)
		if err != nil {
			conn.Close()
			return nil, err
		}
		addrs[len(regs)+1] = peerAddr
		regs = append(regs, conn)
	}
	// Assign ranks and distribute the table.
	for i, conn := range regs {
		rank := i + 1
		if err := writeUint32(conn, uint32(rank)); err != nil {
			return nil, err
		}
		if err := writeUint32(conn, uint32(size)); err != nil {
			return nil, err
		}
		for _, a := range addrs {
			if err := writeString(conn, a); err != nil {
				return nil, err
			}
		}
		conn.Close()
	}
	if err := c.meshConnect(addrs); err != nil {
		return nil, err
	}
	return c, nil
}

// JoinTCP runs the worker side of the multi-process bootstrap: it starts a
// peer listener, registers with the coordinator at addr, receives its rank
// and the address table, completes the mesh, and returns its endpoint.
//
//lbe:ignore ctxflow MPI_Init-style bootstrap; dialRetry's deadline bounds the wait, and abandoning setup means Close
func JoinTCP(addr string) (Comm, error) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	conn, err := dialRetry(addr, 10*time.Second)
	if err != nil {
		ln.Close()
		return nil, err
	}
	defer conn.Close()
	if err := writeString(conn, ln.Addr().String()); err != nil {
		ln.Close()
		return nil, err
	}
	rank, err := readUint32(conn)
	if err != nil {
		ln.Close()
		return nil, err
	}
	size, err := readUint32(conn)
	if err != nil {
		ln.Close()
		return nil, err
	}
	addrs := make([]string, size)
	for i := range addrs {
		addrs[i], err = readString(conn)
		if err != nil {
			ln.Close()
			return nil, err
		}
	}
	c := &tcpComm{rank: int(rank), size: int(size), inbox: newInbox(), listener: ln}
	if err := c.meshConnect(addrs); err != nil {
		return nil, err
	}
	return c, nil
}

func writeUint32(w io.Writer, v uint32) error {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	_, err := w.Write(b[:])
	return err
}

func readUint32(r io.Reader) (uint32, error) {
	var b [4]byte
	if _, err := io.ReadFull(r, b[:]); err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b[:]), nil
}

func writeString(w io.Writer, s string) error {
	if err := writeUint32(w, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	n, err := readUint32(r)
	if err != nil {
		return "", err
	}
	if n > 1<<16 {
		return "", fmt.Errorf("mpi: string too long (%d)", n)
	}
	b := make([]byte, n)
	if _, err := io.ReadFull(r, b); err != nil {
		return "", err
	}
	return string(b), nil
}
