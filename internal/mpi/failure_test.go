package mpi

import (
	"testing"
	"time"
)

// TestTCPPeerCloseUnblocksRecv: when a peer tears down, a blocked Recv on
// the closed endpoint must return rather than hang.
func TestTCPPeerCloseUnblocksRecv(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := comms[1].Recv(0, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block
	comms[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Recv after close returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
	comms[0].Close()
}

// TestTCPSendAfterPeerClosedErrors: sends into a torn-down mesh must
// surface an error (possibly after the kernel buffer drains) instead of
// blocking forever.
func TestTCPSendAfterPeerClosedErrors(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	comms[1].Close()

	payload := make([]byte, 1<<20)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := comms[0].Send(1, 1, payload); err != nil {
			return // expected failure surfaced
		}
	}
	t.Fatal("sends to a closed peer never failed")
}

// TestInprocCloseDuringBarrier: closing the world while ranks sit in a
// barrier must error out all of them.
func TestInprocCloseDuringBarrier(t *testing.T) {
	w := NewWorld(3)
	errs := make(chan error, 2)
	for r := 1; r < 3; r++ {
		go func(r int) {
			errs <- Barrier(w.Comm(r))
		}(r)
	}
	time.Sleep(20 * time.Millisecond)
	w.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("barrier survived a closed world")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("barrier did not unblock after Close")
		}
	}
}

// TestCollectiveErrorPropagation: collectives on invalid roots fail fast.
func TestCollectiveErrorPropagation(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	if _, err := Bcast(w.Comm(0), 5, nil); err == nil {
		t.Error("Bcast with bad root must fail")
	}
	if _, err := Gather(w.Comm(0), -1, nil); err == nil {
		t.Error("Gather with bad root must fail")
	}
	if _, err := Scatter(w.Comm(0), 7, nil); err == nil {
		t.Error("Scatter with bad root must fail")
	}
	// Scatter with wrong part count at the root.
	if _, err := Scatter(w.Comm(0), 0, [][]byte{{1}}); err == nil {
		t.Error("Scatter with wrong part count must fail")
	}
}

// TestDoubleCloseIsSafe: Close must be idempotent on both transports.
func TestDoubleCloseIsSafe(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close()

	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comms {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}
