package mpi

import (
	"encoding/binary"
	"errors"
	"testing"
	"time"
)

// TestTCPPeerCloseUnblocksRecv: when a peer tears down, a blocked Recv on
// the closed endpoint must return rather than hang.
func TestTCPPeerCloseUnblocksRecv(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := comms[1].Recv(0, 1)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block
	comms[1].Close()
	select {
	case err := <-done:
		if err == nil {
			t.Error("Recv after close returned nil error")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("Recv did not unblock after Close")
	}
	comms[0].Close()
}

// TestTCPSendAfterPeerClosedErrors: sends into a torn-down mesh must
// surface an error (possibly after the kernel buffer drains) instead of
// blocking forever.
func TestTCPSendAfterPeerClosedErrors(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	comms[1].Close()

	payload := make([]byte, 1<<20)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if err := comms[0].Send(1, 1, payload); err != nil {
			return // expected failure surfaced
		}
	}
	t.Fatal("sends to a closed peer never failed")
}

// TestInprocCloseDuringBarrier: closing the world while ranks sit in a
// barrier must error out all of them.
func TestInprocCloseDuringBarrier(t *testing.T) {
	w := NewWorld(3)
	errs := make(chan error, 2)
	for r := 1; r < 3; r++ {
		go func(r int) {
			errs <- Barrier(w.Comm(r))
		}(r)
	}
	time.Sleep(20 * time.Millisecond)
	w.Close()
	for i := 0; i < 2; i++ {
		select {
		case err := <-errs:
			if err == nil {
				t.Error("barrier survived a closed world")
			}
		case <-time.After(2 * time.Second):
			t.Fatal("barrier did not unblock after Close")
		}
	}
}

// TestCollectiveErrorPropagation: collectives on invalid roots fail fast.
func TestCollectiveErrorPropagation(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()
	if _, err := Bcast(w.Comm(0), 5, nil); err == nil {
		t.Error("Bcast with bad root must fail")
	}
	if _, err := Gather(w.Comm(0), -1, nil); err == nil {
		t.Error("Gather with bad root must fail")
	}
	if _, err := Scatter(w.Comm(0), 7, nil); err == nil {
		t.Error("Scatter with bad root must fail")
	}
	// Scatter with wrong part count at the root.
	if _, err := Scatter(w.Comm(0), 0, [][]byte{{1}}); err == nil {
		t.Error("Scatter with wrong part count must fail")
	}
}

// TestDoubleCloseIsSafe: Close must be idempotent on both transports.
func TestDoubleCloseIsSafe(t *testing.T) {
	w := NewWorld(2)
	c := w.Comm(0)
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	w.Close()
	w.Close()

	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range comms {
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
		if err := c.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestTCPRecvUnblocksWhenPeerClosesMidSend is the transport-level
// failover edge under the router's replica-kill scenario: rank 1 dies
// mid-frame (header promising more payload than ever arrives — exactly
// what interrupting a large SendGob leaves on the wire), and rank 0's
// blocked Recv from it must surface ErrPeerClosed instead of hanging on
// a message that can never complete.
func TestTCPRecvUnblocksWhenPeerClosesMidSend(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	done := make(chan error, 1)
	go func() {
		_, _, err := comms[0].Recv(1, 7)
		done <- err
	}()
	time.Sleep(20 * time.Millisecond) // let the Recv block

	// Write a truncated frame by hand: a header promising 1<<20 payload
	// bytes, a few real ones, then the close that a peer crash delivers.
	c1 := comms[1].(*tcpComm)
	conn := c1.conns[0]
	hdr := make([]byte, 6)
	binary.LittleEndian.PutUint32(hdr[0:], 1<<20)
	binary.LittleEndian.PutUint16(hdr[4:], 7)
	if _, err := conn.Write(hdr); err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte("partial")); err != nil {
		t.Fatal(err)
	}
	comms[1].Close()

	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerClosed) {
			t.Errorf("Recv after mid-send peer close returned %v, want ErrPeerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv did not unblock after the peer closed mid-send")
	}
}

// TestTCPRecvDrainsBeforePeerClosedError: messages delivered before the
// peer went away are still received in order; only the receive that
// would block forever fails.
func TestTCPRecvDrainsBeforePeerClosedError(t *testing.T) {
	comms, err := NewTCPCluster(2)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()

	if err := SendGob(comms[1], 0, 9, "farewell"); err != nil {
		t.Fatal(err)
	}
	comms[1].Close()

	// The delivered message must surface even though the peer is gone by
	// the time we ask (poll: delivery and close race benignly).
	deadline := time.Now().Add(5 * time.Second)
	var got string
	for {
		_, err := RecvGob(comms[0], 1, 9, &got)
		if err == nil {
			break
		}
		if !errors.Is(err, ErrPeerClosed) {
			t.Fatalf("unexpected error before drain: %v", err)
		}
		if time.Now().After(deadline) {
			t.Fatal("pending message never delivered after peer close")
		}
		time.Sleep(time.Millisecond)
	}
	if got != "farewell" {
		t.Fatalf("got %q", got)
	}

	// With the inbox drained, the next receive must fail, not hang.
	errCh := make(chan error, 1)
	go func() {
		_, _, err := comms[0].Recv(1, 9)
		errCh <- err
	}()
	select {
	case err := <-errCh:
		if !errors.Is(err, ErrPeerClosed) {
			t.Errorf("post-drain Recv returned %v, want ErrPeerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("post-drain Recv did not unblock")
	}
}

// TestTCPAnySourceRecvStillWaitsAfterOnePeerCloses: AnySource receives
// must not fail just because one of several peers went away — the
// others may still deliver.
func TestTCPAnySourceRecvStillWaitsAfterOnePeerCloses(t *testing.T) {
	comms, err := NewTCPCluster(3)
	if err != nil {
		t.Fatal(err)
	}
	defer comms[0].Close()
	defer comms[2].Close()

	comms[1].Close()
	time.Sleep(20 * time.Millisecond) // let rank 0 notice the dead link

	got := make(chan error, 1)
	go func() {
		src, data, err := comms[0].Recv(AnySource, 4)
		if err == nil && (src != 2 || string(data) != "alive") {
			err = errors.New("wrong message")
		}
		got <- err
	}()
	time.Sleep(20 * time.Millisecond)
	if err := comms[2].Send(0, 4, []byte("alive")); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-got:
		if err != nil {
			t.Fatalf("AnySource receive failed: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("AnySource receive never completed")
	}
}

// TestInprocPeerCloseUnblocksRecv: the in-process transport honors the
// same peer-down contract as TCP — a Recv naming a closed peer drains
// delivered messages, then fails with ErrPeerClosed instead of hanging.
func TestInprocPeerCloseUnblocksRecv(t *testing.T) {
	w := NewWorld(2)
	defer w.Close()

	if err := w.Comm(1).Send(0, 3, []byte("bye")); err != nil {
		t.Fatal(err)
	}
	w.Comm(1).Close()

	if _, data, err := w.Comm(0).Recv(1, 3); err != nil || string(data) != "bye" {
		t.Fatalf("pending message not drained after peer close: %q, %v", data, err)
	}
	done := make(chan error, 1)
	go func() {
		_, _, err := w.Comm(0).Recv(1, 3)
		done <- err
	}()
	select {
	case err := <-done:
		if !errors.Is(err, ErrPeerClosed) {
			t.Errorf("Recv from closed in-process peer returned %v, want ErrPeerClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Recv from closed in-process peer did not unblock")
	}
}
