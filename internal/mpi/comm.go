// Package mpi is a small message-passing runtime that stands in for the
// MPI library used by the original LBDSLIM implementation. It provides
// ranked communicators with blocking tagged point-to-point messaging and
// the collective operations the engine needs (barrier, broadcast, gather,
// scatter, reduce), over two interchangeable transports:
//
//   - an in-process transport (goroutines + shared inboxes), used for
//     virtual clusters, tests and benchmarks;
//   - a TCP transport (length-prefixed frames over a full mesh with a
//     coordinator bootstrap), demonstrating wire-level operation.
//
// Message matching follows MPI semantics: a receive names a source rank
// and a tag, and messages between a pair of ranks are delivered in send
// order per tag.
package mpi

import (
	"errors"
	"fmt"
	"sync"
)

// Tag labels a message class. Tags >= ReservedTagBase are reserved for the
// package's collectives.
type Tag uint16

// ReservedTagBase is the first tag value reserved for internal use.
const ReservedTagBase Tag = 0xFF00

// AnySource may be passed to Recv to accept a message from any rank.
const AnySource = -1

// ErrClosed is returned by operations on a closed communicator.
var ErrClosed = errors.New("mpi: communicator closed")

// ErrPeerClosed is returned by Recv when the named source's connection
// has gone away and no matching message remains: the transport can prove
// nothing more will arrive from that rank, so blocking forever would
// turn a peer failure into a hang. Messages delivered before the close
// are still received first — the error only surfaces once the inbox has
// nothing left from that peer. A failover layer distinguishes it from
// ErrClosed (the local endpoint is gone) to decide who failed.
var ErrPeerClosed = errors.New("mpi: peer connection closed")

// Comm is one rank's endpoint into a communicator of Size() ranks.
// A Comm is intended to be driven by a single goroutine (like an MPI
// process); Send is safe to call concurrently with Recv, but two
// concurrent Recvs on one Comm are not supported.
type Comm interface {
	// Rank returns this endpoint's rank in [0, Size).
	Rank() int
	// Size returns the number of ranks in the communicator.
	Size() int
	// Send delivers data to rank `to` under the given tag. The data slice
	// is copied or fully serialized before Send returns; the caller may
	// reuse it.
	Send(to int, tag Tag, data []byte) error
	// Recv blocks until a message with the given tag arrives from rank
	// `from` (or any rank if from == AnySource) and returns its source and
	// payload.
	Recv(from int, tag Tag) (src int, data []byte, err error)
	// Close tears down the endpoint. Blocked receives return ErrClosed.
	Close() error
}

// message is one queued delivery.
type message struct {
	from int
	tag  Tag
	data []byte
}

// inbox holds undelivered messages for one rank, with (source, tag)
// matching under a condition variable. Both transports deliver into it.
// down marks sources whose links are gone: their queued messages stay
// receivable, but a receive that would otherwise block on one fails with
// ErrPeerClosed.
type inbox struct {
	mu      sync.Mutex
	cond    *sync.Cond
	pending []message
	closed  bool
	down    map[int]bool
}

func newInbox() *inbox {
	ib := &inbox{}
	ib.cond = sync.NewCond(&ib.mu)
	return ib
}

func (ib *inbox) put(m message) error {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	if ib.closed {
		return ErrClosed
	}
	ib.pending = append(ib.pending, m)
	ib.cond.Broadcast()
	return nil
}

func (ib *inbox) get(from int, tag Tag) (message, error) {
	ib.mu.Lock()
	defer ib.mu.Unlock()
	for {
		for i, m := range ib.pending {
			if m.tag != tag {
				continue
			}
			if from != AnySource && m.from != from {
				continue
			}
			ib.pending = append(ib.pending[:i], ib.pending[i+1:]...)
			return m, nil
		}
		if ib.closed {
			return message{}, ErrClosed
		}
		// Nothing pending from the named source and its link is gone:
		// nothing can arrive anymore, so fail instead of blocking forever.
		// AnySource receives keep waiting — other links may still deliver.
		if from != AnySource && ib.down[from] {
			return message{}, fmt.Errorf("mpi: recv from rank %d: %w", from, ErrPeerClosed)
		}
		ib.cond.Wait()
	}
}

// markDown records that a source's link is gone and wakes blocked
// receivers so receives naming it can fail fast (see get).
func (ib *inbox) markDown(from int) {
	ib.mu.Lock()
	if ib.down == nil {
		ib.down = make(map[int]bool)
	}
	ib.down[from] = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

func (ib *inbox) close() {
	ib.mu.Lock()
	ib.closed = true
	ib.cond.Broadcast()
	ib.mu.Unlock()
}

// checkPeer validates a destination rank.
func checkPeer(to, size int) error {
	if to < 0 || to >= size {
		return fmt.Errorf("mpi: rank %d out of range [0,%d)", to, size)
	}
	return nil
}
