package mpi

import "sync"

// World is an in-process communicator: size ranks sharing one address
// space, each backed by an inbox. It simulates the paper's MPI cluster
// with one goroutine per rank.
type World struct {
	comms []*memComm
	once  sync.Once
}

// NewWorld creates an in-process communicator with size ranks and returns
// the per-rank endpoints.
func NewWorld(size int) *World {
	if size < 1 {
		panic("mpi: world size must be >= 1")
	}
	w := &World{comms: make([]*memComm, size)}
	for r := range w.comms {
		w.comms[r] = &memComm{world: w, rank: r, inbox: newInbox()}
	}
	return w
}

// Comm returns the endpoint for the given rank.
func (w *World) Comm(rank int) Comm { return w.comms[rank] }

// Comms returns all endpoints, indexed by rank.
func (w *World) Comms() []Comm {
	out := make([]Comm, len(w.comms))
	for i, c := range w.comms {
		out[i] = c
	}
	return out
}

// Close shuts down every endpoint.
func (w *World) Close() {
	w.once.Do(func() {
		for _, c := range w.comms {
			c.inbox.close()
		}
	})
}

type memComm struct {
	world *World
	rank  int
	inbox *inbox
}

func (c *memComm) Rank() int { return c.rank }
func (c *memComm) Size() int { return len(c.world.comms) }

func (c *memComm) Send(to int, tag Tag, data []byte) error {
	if err := checkPeer(to, c.Size()); err != nil {
		return err
	}
	// Copy: the sender may reuse its buffer after Send returns, exactly
	// like a blocking MPI_Send.
	buf := make([]byte, len(data))
	copy(buf, data)
	return c.world.comms[to].inbox.put(message{from: c.rank, tag: tag, data: buf})
}

func (c *memComm) Recv(from int, tag Tag) (int, []byte, error) {
	if from != AnySource {
		if err := checkPeer(from, c.Size()); err != nil {
			return -1, nil, err
		}
	}
	m, err := c.inbox.get(from, tag)
	if err != nil {
		return -1, nil, err
	}
	return m.from, m.data, nil
}

func (c *memComm) Close() error {
	c.inbox.close()
	// Mirror the TCP transport's peer-down contract: once this rank is
	// gone, a sibling's Recv naming it must drain what was delivered and
	// then fail with ErrPeerClosed instead of blocking forever.
	for _, peer := range c.world.comms {
		if peer != c {
			peer.inbox.markDown(c.rank)
		}
	}
	return nil
}
