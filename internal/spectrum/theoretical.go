// Package spectrum generates theoretical MS/MS spectra from peptide
// sequences and models experimental spectra, including the preprocessing
// (top-N peak extraction, normalization) applied before querying.
//
// Theoretical spectra follow the standard CID fragmentation model used by
// SLM-Transform and MSFragger: the singly protonated b- and y-ion series.
// A peptide of length L yields 2*(L-1) fragment ions.
package spectrum

import (
	"fmt"
	"sort"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

// Theoretical holds the fragment-ion m/z values of one peptide (or peptide
// variant), sorted ascending, together with the precursor neutral mass.
type Theoretical struct {
	Precursor float64   // neutral peptide mass (Da), including mod deltas
	Ions      []float64 // sorted fragment ion m/z (charge 1)
}

// NumIons returns the number of fragment ions.
func (t Theoretical) NumIons() int { return len(t.Ions) }

// Predict computes the theoretical spectrum of the unmodified peptide seq:
// all b- and y-ions at charge 1, sorted ascending. It returns an error if
// seq is shorter than 2 residues or contains non-standard letters.
func Predict(seq string) (Theoretical, error) {
	return PredictVariant(seq, mods.Variant{}, nil)
}

// PredictVariant computes the theoretical spectrum of a modified peptide
// variant. Site deltas shift every fragment ion containing the modified
// residue: b-ions with index > pos and y-ions covering the C-terminal side.
// modList supplies the mass deltas referenced by v.Sites.
func PredictVariant(seq string, v mods.Variant, modList []mods.Mod) (Theoretical, error) {
	n := len(seq)
	if n < 2 {
		return Theoretical{}, fmt.Errorf("spectrum: peptide %q too short to fragment", seq)
	}
	if !mass.ValidSequence(seq) {
		return Theoretical{}, fmt.Errorf("spectrum: peptide %q has non-standard residues", seq)
	}

	// Per-residue mass including any applied modification.
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		res[i] = mass.MustResidue(seq[i])
	}
	for _, s := range v.Sites {
		if s.Pos < 0 || s.Pos >= n {
			return Theoretical{}, fmt.Errorf("spectrum: mod site %d out of range for %q", s.Pos, seq)
		}
		if s.Mod < 0 || s.Mod >= len(modList) {
			return Theoretical{}, fmt.Errorf("spectrum: mod index %d out of range", s.Mod)
		}
		res[s.Pos] += modList[s.Mod].Delta
	}

	total := mass.Water
	for _, r := range res {
		total += r
	}

	ions := make([]float64, 0, 2*(n-1))
	// b-ions: prefix sums; b_i = sum(res[0..i-1]) + proton.
	prefix := 0.0
	for i := 0; i < n-1; i++ {
		prefix += res[i]
		ions = append(ions, prefix+mass.Proton)
	}
	// y-ions: suffix sums; y_i = sum(res[n-i..n-1]) + water + proton.
	suffix := 0.0
	for i := n - 1; i >= 1; i-- {
		suffix += res[i]
		ions = append(ions, suffix+mass.Water+mass.Proton)
	}
	sort.Float64s(ions)
	return Theoretical{Precursor: total, Ions: ions}, nil
}

// BIon returns the m/z of the singly charged b_k ion (k residues from the
// N-terminus) of the unmodified peptide seq. k must be in [1, len(seq)-1].
func BIon(seq string, k int) float64 {
	sum := 0.0
	for i := 0; i < k; i++ {
		sum += mass.MustResidue(seq[i])
	}
	return sum + mass.Proton
}

// YIon returns the m/z of the singly charged y_k ion (k residues from the
// C-terminus) of the unmodified peptide seq. k must be in [1, len(seq)-1].
func YIon(seq string, k int) float64 {
	sum := 0.0
	for i := len(seq) - k; i < len(seq); i++ {
		sum += mass.MustResidue(seq[i])
	}
	return sum + mass.Water + mass.Proton
}
