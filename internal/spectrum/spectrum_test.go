package spectrum

import (
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

func TestPredictIonCount(t *testing.T) {
	th, err := Predict("PEPTIDE")
	if err != nil {
		t.Fatal(err)
	}
	if th.NumIons() != 2*(7-1) {
		t.Errorf("got %d ions, want 12", th.NumIons())
	}
	if math.Abs(th.Precursor-mass.MustPeptide("PEPTIDE")) > 1e-9 {
		t.Errorf("precursor = %v", th.Precursor)
	}
	if !sort.Float64sAreSorted(th.Ions) {
		t.Error("ions not sorted")
	}
}

func TestPredictKnownIons(t *testing.T) {
	// b1 of PEPTIDE is P + proton; y1 is E + water + proton.
	th, _ := Predict("PEPTIDE")
	b1 := mass.MustResidue('P') + mass.Proton
	y1 := mass.MustResidue('E') + mass.Water + mass.Proton
	if !containsApprox(th.Ions, b1) {
		t.Errorf("b1 %.5f missing", b1)
	}
	if !containsApprox(th.Ions, y1) {
		t.Errorf("y1 %.5f missing", y1)
	}
	if math.Abs(BIon("PEPTIDE", 1)-b1) > 1e-9 {
		t.Errorf("BIon = %v", BIon("PEPTIDE", 1))
	}
	if math.Abs(YIon("PEPTIDE", 1)-y1) > 1e-9 {
		t.Errorf("YIon = %v", YIon("PEPTIDE", 1))
	}
}

func containsApprox(xs []float64, v float64) bool {
	for _, x := range xs {
		if math.Abs(x-v) < 1e-6 {
			return true
		}
	}
	return false
}

func TestPredictErrors(t *testing.T) {
	if _, err := Predict("A"); err == nil {
		t.Error("length-1 peptide must fail")
	}
	if _, err := Predict("AXA"); err == nil {
		t.Error("invalid residue must fail")
	}
}

func TestBYComplementarity(t *testing.T) {
	// b_k + y_{n-k} = precursor + 2*proton for every split point k.
	rng := rand.New(rand.NewSource(31))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	f := func(n uint8) bool {
		L := int(n%30) + 2
		var sb strings.Builder
		for i := 0; i < L; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		seq := sb.String()
		th, err := Predict(seq)
		if err != nil {
			return false
		}
		for k := 1; k < L; k++ {
			sum := BIon(seq, k) + YIon(seq, L-k)
			if math.Abs(sum-(th.Precursor+2*mass.Proton)) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPredictVariantShiftsIons(t *testing.T) {
	modList := []mods.Mod{mods.OxidationM}
	base, _ := Predict("AMAK")
	v := mods.Variant{Sites: []mods.Site{{Pos: 1, Mod: 0}}, Delta: mods.OxidationM.Delta}
	modded, err := PredictVariant("AMAK", v, modList)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(modded.Precursor-(base.Precursor+mods.OxidationM.Delta)) > 1e-9 {
		t.Errorf("precursor delta wrong: %v vs %v", modded.Precursor, base.Precursor)
	}
	// b1 = A only: unshifted. b2 = A+M(ox): shifted.
	if !containsApprox(modded.Ions, BIon("AMAK", 1)) {
		t.Error("b1 must be unshifted")
	}
	if !containsApprox(modded.Ions, BIon("AMAK", 2)+mods.OxidationM.Delta) {
		t.Error("b2 must be shifted by the mod delta")
	}
	// y1 = K: unshifted. y3 = MAK: shifted.
	if !containsApprox(modded.Ions, YIon("AMAK", 1)) {
		t.Error("y1 must be unshifted")
	}
	if !containsApprox(modded.Ions, YIon("AMAK", 3)+mods.OxidationM.Delta) {
		t.Error("y3 must be shifted by the mod delta")
	}
}

func TestPredictVariantBadSites(t *testing.T) {
	modList := []mods.Mod{mods.OxidationM}
	if _, err := PredictVariant("AMA", mods.Variant{Sites: []mods.Site{{Pos: 9, Mod: 0}}}, modList); err == nil {
		t.Error("out-of-range position must fail")
	}
	if _, err := PredictVariant("AMA", mods.Variant{Sites: []mods.Site{{Pos: 0, Mod: 3}}}, modList); err == nil {
		t.Error("out-of-range mod index must fail")
	}
}

func TestExperimentalPrecursorMass(t *testing.T) {
	e := Experimental{PrecursorMZ: 500.0, Charge: 2}
	want := 500.0*2 - 2*mass.Proton
	if math.Abs(e.PrecursorMass()-want) > 1e-9 {
		t.Errorf("PrecursorMass = %v, want %v", e.PrecursorMass(), want)
	}
	// Unknown charge treated as 1.
	e = Experimental{PrecursorMZ: 500.0}
	if math.Abs(e.PrecursorMass()-(500.0-mass.Proton)) > 1e-9 {
		t.Errorf("charge-0 PrecursorMass = %v", e.PrecursorMass())
	}
}

func TestExperimentalValidate(t *testing.T) {
	good := Experimental{Peaks: []Peak{{100, 1}, {200, 2}}}
	if err := good.Validate(); err != nil {
		t.Error(err)
	}
	bad := Experimental{Peaks: []Peak{{200, 1}, {100, 2}}}
	if err := bad.Validate(); err == nil {
		t.Error("unsorted peaks must fail")
	}
	bad = Experimental{Peaks: []Peak{{-1, 1}}}
	if err := bad.Validate(); err == nil {
		t.Error("negative m/z must fail")
	}
	bad = Experimental{PrecursorMZ: -5}
	if err := bad.Validate(); err == nil {
		t.Error("negative precursor must fail")
	}
}

func TestSortPeaks(t *testing.T) {
	e := Experimental{Peaks: []Peak{{300, 1}, {100, 2}, {200, 3}}}
	e.SortPeaks()
	if err := e.Validate(); err != nil {
		t.Error(err)
	}
}

func TestPreprocessTopN(t *testing.T) {
	e := Experimental{Peaks: []Peak{
		{100, 5}, {110, 50}, {120, 1}, {130, 100}, {140, 20},
	}}
	out := Preprocess(e, 3)
	if len(out.Peaks) != 3 {
		t.Fatalf("got %d peaks, want 3", len(out.Peaks))
	}
	// Survivors: intensities 100, 50, 20 -> m/z 110, 130, 140 sorted.
	wantMZ := []float64{110, 130, 140}
	for i, p := range out.Peaks {
		if p.MZ != wantMZ[i] {
			t.Errorf("peak %d mz = %v, want %v", i, p.MZ, wantMZ[i])
		}
	}
	// Normalized: base peak becomes 1.
	if out.Peaks[1].Intensity != 1.0 {
		t.Errorf("base peak intensity = %v", out.Peaks[1].Intensity)
	}
	if math.Abs(out.Peaks[0].Intensity-0.5) > 1e-12 {
		t.Errorf("peak intensity = %v, want 0.5", out.Peaks[0].Intensity)
	}
	// Input untouched.
	if e.Peaks[0].Intensity != 5 || len(e.Peaks) != 5 {
		t.Error("Preprocess must not mutate its input")
	}
}

func TestPreprocessFewerThanN(t *testing.T) {
	e := Experimental{Peaks: []Peak{{100, 2}, {200, 4}}}
	out := Preprocess(e, 100)
	if len(out.Peaks) != 2 {
		t.Errorf("got %d peaks", len(out.Peaks))
	}
	if out.Peaks[1].Intensity != 1 || out.Peaks[0].Intensity != 0.5 {
		t.Errorf("normalization wrong: %+v", out.Peaks)
	}
}

func TestPreprocessEmptyAndZeroIntensity(t *testing.T) {
	out := Preprocess(Experimental{}, 10)
	if len(out.Peaks) != 0 {
		t.Error("empty spectrum should stay empty")
	}
	out = Preprocess(Experimental{Peaks: []Peak{{100, 0}}}, 10)
	if out.Peaks[0].Intensity != 0 {
		t.Error("all-zero intensities must not be divided")
	}
}

func TestPreprocessAll(t *testing.T) {
	es := []Experimental{
		{Peaks: []Peak{{1, 1}, {2, 2}, {3, 3}}},
		{Peaks: []Peak{{1, 9}}},
	}
	out := PreprocessAll(es, 2)
	if len(out) != 2 || len(out[0].Peaks) != 2 || len(out[1].Peaks) != 1 {
		t.Errorf("PreprocessAll = %+v", out)
	}
}

func TestPreprocessProperty(t *testing.T) {
	// Output is sorted, at most topN peaks, intensities within [0,1].
	rng := rand.New(rand.NewSource(37))
	f := func(n, topRaw uint8) bool {
		e := Experimental{}
		for i := 0; i < int(n); i++ {
			e.Peaks = append(e.Peaks, Peak{
				MZ:        rng.Float64() * 2000,
				Intensity: rng.Float64() * 1e6,
			})
		}
		topN := int(topRaw%50) + 1
		out := Preprocess(e, topN)
		if len(out.Peaks) > topN {
			return false
		}
		for i, p := range out.Peaks {
			if p.Intensity < 0 || p.Intensity > 1 {
				return false
			}
			if i > 0 && p.MZ < out.Peaks[i-1].MZ {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
