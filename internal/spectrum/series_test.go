package spectrum

import (
	"math"
	"testing"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

func TestIonKindString(t *testing.T) {
	cases := map[IonKind]string{IonB: "b", IonY: "y", IonA: "a", IonB2: "b2+", IonY2: "y2+"}
	for k, want := range cases {
		if k.String() != want {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), want)
		}
	}
	if IonKind(99).String() == "" {
		t.Error("unknown kind must stringify")
	}
}

func TestPredictIonsDefaultMatchesPredictVariant(t *testing.T) {
	modList := []mods.Mod{mods.OxidationM}
	v := mods.Variant{Sites: []mods.Site{{Pos: 1, Mod: 0}}, Delta: mods.OxidationM.Delta}
	a, err := PredictVariant("AMAK", v, modList)
	if err != nil {
		t.Fatal(err)
	}
	b, err := PredictIons("AMAK", v, modList, DefaultSeries())
	if err != nil {
		t.Fatal(err)
	}
	if a.Precursor != b.Precursor || len(a.Ions) != len(b.Ions) {
		t.Fatalf("shape mismatch: %v vs %v", a, b)
	}
	for i := range a.Ions {
		if a.Ions[i] != b.Ions[i] {
			t.Fatalf("ion %d: %v vs %v", i, a.Ions[i], b.Ions[i])
		}
	}
}

func TestAIonOffset(t *testing.T) {
	th, err := PredictIons("PEPTIDE", mods.Variant{}, nil, []IonKind{IonA})
	if err != nil {
		t.Fatal(err)
	}
	// a1 = b1 - CO.
	want := BIon("PEPTIDE", 1) - (mass.Carbon + mass.Oxygen)
	found := false
	for _, ion := range th.Ions {
		if math.Abs(ion-want) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("a1 = %v missing from %v", want, th.Ions)
	}
	if len(th.Ions) != 6 {
		t.Errorf("a series of 7-mer has %d ions, want 6", len(th.Ions))
	}
}

func TestDoublyChargedSeries(t *testing.T) {
	th, err := PredictIons("PEPTIDE", mods.Variant{}, nil, []IonKind{IonB2, IonY2})
	if err != nil {
		t.Fatal(err)
	}
	// b2(k) = (neutral prefix + 2 protons)/2; check b1 2+ against b1 1+.
	b1 := BIon("PEPTIDE", 1) // prefix + proton
	neutral := b1 - mass.Proton
	want := (neutral + 2*mass.Proton) / 2
	found := false
	for _, ion := range th.Ions {
		if math.Abs(ion-want) < 1e-9 {
			found = true
		}
	}
	if !found {
		t.Errorf("b1(2+) = %v missing", want)
	}
	// Doubly charged ions sit below their singly charged counterparts.
	for _, ion := range th.Ions {
		if ion >= th.Precursor {
			t.Errorf("2+ ion %v above precursor %v", ion, th.Precursor)
		}
	}
}

func TestPredictIonsAllSeriesCount(t *testing.T) {
	all := []IonKind{IonB, IonY, IonA, IonB2, IonY2}
	th, err := PredictIons("PEPTIDEK", mods.Variant{}, nil, all)
	if err != nil {
		t.Fatal(err)
	}
	if want := 5 * (8 - 1); th.NumIons() != want {
		t.Errorf("got %d ions, want %d", th.NumIons(), want)
	}
}

func TestPredictIonsErrors(t *testing.T) {
	if _, err := PredictIons("PEPTIDE", mods.Variant{}, nil, nil); err == nil {
		t.Error("empty series must fail")
	}
	if _, err := PredictIons("PEPTIDE", mods.Variant{}, nil, []IonKind{IonB, IonB}); err == nil {
		t.Error("duplicate series must fail")
	}
	if _, err := PredictIons("PEPTIDE", mods.Variant{}, nil, []IonKind{IonKind(42)}); err == nil {
		t.Error("unknown series must fail")
	}
	if _, err := PredictIons("A", mods.Variant{}, nil, DefaultSeries()); err == nil {
		t.Error("short peptide must fail")
	}
}

func TestPredictIonsModShiftAppliesToAllSeries(t *testing.T) {
	modList := []mods.Mod{mods.OxidationM}
	v := mods.Variant{Sites: []mods.Site{{Pos: 0, Mod: 0}}, Delta: mods.OxidationM.Delta}
	base, _ := PredictIons("MAAK", mods.Variant{}, nil, []IonKind{IonA})
	modded, err := PredictIons("MAAK", v, modList, []IonKind{IonA})
	if err != nil {
		t.Fatal(err)
	}
	// Every a ion contains position 0, so every ion shifts.
	for i := range base.Ions {
		if math.Abs(modded.Ions[i]-base.Ions[i]-mods.OxidationM.Delta) > 1e-9 {
			t.Fatalf("a%d not shifted: %v vs %v", i+1, modded.Ions[i], base.Ions[i])
		}
	}
}
