package spectrum

import (
	"fmt"
	"sort"
)

// Peak is one (m/z, intensity) pair of an experimental spectrum.
type Peak struct {
	MZ        float64
	Intensity float64
}

// Experimental is one query MS/MS spectrum as read from an MS2/mzML file:
// scan metadata plus the peak list.
type Experimental struct {
	Scan          int     // scan number
	PrecursorMZ   float64 // observed precursor m/z
	Charge        int     // assumed precursor charge (0 if unknown)
	RetentionTime float64 // seconds, 0 if unknown
	Peaks         []Peak
}

// PrecursorMass returns the neutral precursor mass implied by the observed
// m/z and charge. With unknown charge it assumes 1.
func (e Experimental) PrecursorMass() float64 {
	z := e.Charge
	if z <= 0 {
		z = 1
	}
	return neutral(e.PrecursorMZ, z)
}

func neutral(mz float64, z int) float64 {
	const proton = 1.00727646688
	return mz*float64(z) - float64(z)*proton
}

// Validate reports structural problems: unsorted peaks, negative values.
func (e Experimental) Validate() error {
	if e.PrecursorMZ < 0 {
		return fmt.Errorf("spectrum: scan %d has negative precursor m/z", e.Scan)
	}
	for i, p := range e.Peaks {
		if p.MZ < 0 || p.Intensity < 0 {
			return fmt.Errorf("spectrum: scan %d peak %d has negative value", e.Scan, i)
		}
		if i > 0 && p.MZ < e.Peaks[i-1].MZ {
			return fmt.Errorf("spectrum: scan %d peaks not sorted at %d", e.Scan, i)
		}
	}
	return nil
}

// SortPeaks orders the peak list by ascending m/z in place.
func (e *Experimental) SortPeaks() {
	sort.Slice(e.Peaks, func(i, j int) bool { return e.Peaks[i].MZ < e.Peaks[j].MZ })
}
