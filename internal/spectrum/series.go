package spectrum

import (
	"fmt"
	"sort"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

// IonKind identifies a fragment-ion series. The CID model of the paper's
// pipeline indexes singly charged b and y ions; a ions (b minus CO) and
// doubly charged series are common instrument realities offered as
// configuration.
type IonKind uint8

const (
	// IonB is the singly protonated b series (N-terminal prefixes).
	IonB IonKind = iota
	// IonY is the singly protonated y series (C-terminal suffixes).
	IonY
	// IonA is the a series: b minus carbon monoxide.
	IonA
	// IonB2 is the doubly charged b series.
	IonB2
	// IonY2 is the doubly charged y series.
	IonY2
)

// String implements fmt.Stringer.
func (k IonKind) String() string {
	switch k {
	case IonB:
		return "b"
	case IonY:
		return "y"
	case IonA:
		return "a"
	case IonB2:
		return "b2+"
	case IonY2:
		return "y2+"
	default:
		return fmt.Sprintf("IonKind(%d)", uint8(k))
	}
}

// DefaultSeries is the paper's model: singly charged b and y ions.
func DefaultSeries() []IonKind { return []IonKind{IonB, IonY} }

// carbonMonoxide is the a-ion offset below the b ion.
const carbonMonoxide = mass.Carbon + mass.Oxygen

// PredictIons computes the theoretical spectrum of a (possibly modified)
// peptide over the requested ion series, sorted ascending. kinds must be
// non-empty; duplicate kinds are an error.
func PredictIons(seq string, v mods.Variant, modList []mods.Mod, kinds []IonKind) (Theoretical, error) {
	if len(kinds) == 0 {
		return Theoretical{}, fmt.Errorf("spectrum: no ion series requested")
	}
	seen := map[IonKind]bool{}
	for _, k := range kinds {
		if k > IonY2 {
			return Theoretical{}, fmt.Errorf("spectrum: unknown ion kind %d", k)
		}
		if seen[k] {
			return Theoretical{}, fmt.Errorf("spectrum: duplicate ion kind %v", k)
		}
		seen[k] = true
	}

	n := len(seq)
	if n < 2 {
		return Theoretical{}, fmt.Errorf("spectrum: peptide %q too short to fragment", seq)
	}
	if !mass.ValidSequence(seq) {
		return Theoretical{}, fmt.Errorf("spectrum: peptide %q has non-standard residues", seq)
	}
	res := make([]float64, n)
	for i := 0; i < n; i++ {
		res[i] = mass.MustResidue(seq[i])
	}
	for _, s := range v.Sites {
		if s.Pos < 0 || s.Pos >= n {
			return Theoretical{}, fmt.Errorf("spectrum: mod site %d out of range for %q", s.Pos, seq)
		}
		if s.Mod < 0 || s.Mod >= len(modList) {
			return Theoretical{}, fmt.Errorf("spectrum: mod index %d out of range", s.Mod)
		}
		res[s.Pos] += modList[s.Mod].Delta
	}
	total := mass.Water
	for _, r := range res {
		total += r
	}

	ions := make([]float64, 0, len(kinds)*(n-1))
	prefix := 0.0
	suffix := 0.0
	prefixes := make([]float64, n-1) // neutral prefix masses
	suffixes := make([]float64, n-1) // neutral suffix masses + water
	for i := 0; i < n-1; i++ {
		prefix += res[i]
		prefixes[i] = prefix
	}
	for i := n - 1; i >= 1; i-- {
		suffix += res[i]
		suffixes[n-1-i] = suffix + mass.Water
	}
	for _, k := range kinds {
		switch k {
		case IonB:
			for _, p := range prefixes {
				ions = append(ions, p+mass.Proton)
			}
		case IonY:
			for _, s := range suffixes {
				ions = append(ions, s+mass.Proton)
			}
		case IonA:
			for _, p := range prefixes {
				if a := p - carbonMonoxide + mass.Proton; a > 0 {
					ions = append(ions, a)
				}
			}
		case IonB2:
			for _, p := range prefixes {
				ions = append(ions, (p+2*mass.Proton)/2)
			}
		case IonY2:
			for _, s := range suffixes {
				ions = append(ions, (s+2*mass.Proton)/2)
			}
		}
	}
	sort.Float64s(ions)
	return Theoretical{Precursor: total, Ions: ions}, nil
}
