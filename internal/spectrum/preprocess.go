package spectrum

import "sort"

// Preprocess mirrors the paper's query preprocessing (§V-A3): keep the
// topN most intense peaks (the paper uses 100), then re-sort by m/z and
// normalize intensities to [0, 1] relative to the base peak.
//
// It returns a new Experimental; the input is not modified.
func Preprocess(e Experimental, topN int) Experimental {
	out := e
	out.Peaks = append([]Peak(nil), e.Peaks...)

	if topN > 0 && len(out.Peaks) > topN {
		// Select the topN by intensity.
		sort.Slice(out.Peaks, func(i, j int) bool {
			return out.Peaks[i].Intensity > out.Peaks[j].Intensity
		})
		out.Peaks = out.Peaks[:topN]
	}
	sort.Slice(out.Peaks, func(i, j int) bool { return out.Peaks[i].MZ < out.Peaks[j].MZ })

	// Base-peak normalization.
	maxI := 0.0
	for _, p := range out.Peaks {
		if p.Intensity > maxI {
			maxI = p.Intensity
		}
	}
	if maxI > 0 {
		for i := range out.Peaks {
			out.Peaks[i].Intensity /= maxI
		}
	}
	return out
}

// PreprocessAll applies Preprocess to every spectrum.
func PreprocessAll(es []Experimental, topN int) []Experimental {
	out := make([]Experimental, len(es))
	for i, e := range es {
		out[i] = Preprocess(e, topN)
	}
	return out
}
