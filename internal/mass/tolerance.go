package mass

import (
	"fmt"
	"math"
)

// Tolerance expresses a symmetric mass tolerance window, either absolute
// (Daltons) or relative (parts per million). The zero value is an exact
// match (zero-width window).
type Tolerance struct {
	Value float64
	Unit  ToleranceUnit
}

// ToleranceUnit selects the interpretation of Tolerance.Value.
type ToleranceUnit uint8

const (
	// Dalton tolerances are absolute: window = Value Da on each side.
	Dalton ToleranceUnit = iota
	// PPM tolerances are relative: window = mass * Value / 1e6 on each side.
	PPM
)

// Da returns an absolute tolerance of v Daltons.
func Da(v float64) Tolerance { return Tolerance{Value: v, Unit: Dalton} }

// Ppm returns a relative tolerance of v parts per million.
func Ppm(v float64) Tolerance { return Tolerance{Value: v, Unit: PPM} }

// Open returns the open-search tolerance (infinite window), used by the
// paper for ∆M = ∞.
func Open() Tolerance { return Tolerance{Value: math.Inf(1), Unit: Dalton} }

// IsOpen reports whether t admits any mass (infinite window).
func (t Tolerance) IsOpen() bool { return math.IsInf(t.Value, 1) }

// Width returns the half-width of the window around the reference mass m.
func (t Tolerance) Width(m float64) float64 {
	if t.Unit == PPM {
		return m * t.Value / 1e6
	}
	return t.Value
}

// Window returns the inclusive [lo, hi] acceptance interval around m.
func (t Tolerance) Window(m float64) (lo, hi float64) {
	w := t.Width(m)
	return m - w, m + w
}

// Contains reports whether candidate x lies within the window around m.
func (t Tolerance) Contains(m, x float64) bool {
	if t.IsOpen() {
		return true
	}
	w := t.Width(m)
	return x >= m-w && x <= m+w
}

// String implements fmt.Stringer.
func (t Tolerance) String() string {
	if t.IsOpen() {
		return "open"
	}
	switch t.Unit {
	case PPM:
		return fmt.Sprintf("%gppm", t.Value)
	default:
		return fmt.Sprintf("%gDa", t.Value)
	}
}

// Bucketer maps fragment masses to integer bucket indices at a fixed
// resolution, the discretization used by the SLM index. Resolution is the
// bucket width in Daltons (paper default r = 0.01).
type Bucketer struct {
	Resolution float64
}

// NewBucketer returns a Bucketer with the given resolution. It panics if
// resolution is not positive, as a zero resolution would make every mass its
// own bucket boundary.
func NewBucketer(resolution float64) Bucketer {
	if resolution <= 0 {
		panic("mass: bucket resolution must be positive")
	}
	return Bucketer{Resolution: resolution}
}

// Bucket returns the bucket index for mass m (m must be >= 0).
func (b Bucketer) Bucket(m float64) int {
	return int(math.Round(m / b.Resolution))
}

// Range returns the inclusive bucket range [lo, hi] covering the window
// tol around mass m.
func (b Bucketer) Range(m float64, tol Tolerance) (lo, hi int) {
	wlo, whi := tol.Window(m)
	if wlo < 0 {
		wlo = 0
	}
	return b.Bucket(wlo), b.Bucket(whi)
}

// Center returns the representative mass at the center of bucket i.
func (b Bucketer) Center(i int) float64 {
	return float64(i) * b.Resolution
}
