package mass

import (
	"encoding/json"
	"fmt"
	"math"
	"strconv"
	"strings"
)

// Tolerance expresses a symmetric mass tolerance window, either absolute
// (Daltons) or relative (parts per million). The zero value is an exact
// match (zero-width window).
type Tolerance struct {
	Value float64
	Unit  ToleranceUnit
}

// ToleranceUnit selects the interpretation of Tolerance.Value.
type ToleranceUnit uint8

const (
	// Dalton tolerances are absolute: window = Value Da on each side.
	Dalton ToleranceUnit = iota
	// PPM tolerances are relative: window = mass * Value / 1e6 on each side.
	PPM
)

// Da returns an absolute tolerance of v Daltons.
func Da(v float64) Tolerance { return Tolerance{Value: v, Unit: Dalton} }

// Ppm returns a relative tolerance of v parts per million.
func Ppm(v float64) Tolerance { return Tolerance{Value: v, Unit: PPM} }

// Open returns the open-search tolerance (infinite window), used by the
// paper for ∆M = ∞.
func Open() Tolerance { return Tolerance{Value: math.Inf(1), Unit: Dalton} }

// IsOpen reports whether t admits any mass (infinite window).
func (t Tolerance) IsOpen() bool { return math.IsInf(t.Value, 1) }

// Width returns the half-width of the window around the reference mass m.
func (t Tolerance) Width(m float64) float64 {
	if t.Unit == PPM {
		return m * t.Value / 1e6
	}
	return t.Value
}

// Window returns the inclusive [lo, hi] acceptance interval around m.
func (t Tolerance) Window(m float64) (lo, hi float64) {
	w := t.Width(m)
	return m - w, m + w
}

// Contains reports whether candidate x lies within the window around m.
func (t Tolerance) Contains(m, x float64) bool {
	if t.IsOpen() {
		return true
	}
	w := t.Width(m)
	return x >= m-w && x <= m+w
}

// String implements fmt.Stringer.
func (t Tolerance) String() string {
	if t.IsOpen() {
		return "open"
	}
	switch t.Unit {
	case PPM:
		return fmt.Sprintf("%gppm", t.Value)
	default:
		return fmt.Sprintf("%gDa", t.Value)
	}
}

// ParseTolerance converts a tolerance as printed by String back to a
// Tolerance: "0.05Da", "20ppm", or "open".
func ParseTolerance(s string) (Tolerance, error) {
	if s == "open" {
		return Open(), nil
	}
	if v, ok := strings.CutSuffix(s, "ppm"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Tolerance{}, fmt.Errorf("mass: bad tolerance %q: %w", s, err)
		}
		return Ppm(f), nil
	}
	if v, ok := strings.CutSuffix(s, "Da"); ok {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return Tolerance{}, fmt.Errorf("mass: bad tolerance %q: %w", s, err)
		}
		return Da(f), nil
	}
	return Tolerance{}, fmt.Errorf("mass: bad tolerance %q (want e.g. \"0.05Da\", \"20ppm\" or \"open\")", s)
}

// MarshalJSON encodes the tolerance as its String form. JSON has no
// representation for the +Inf open-search window, and %g prints the
// shortest digit string that round-trips, so the encoding is both exact
// and human-readable in persisted session manifests.
func (t Tolerance) MarshalJSON() ([]byte, error) {
	return json.Marshal(t.String())
}

// UnmarshalJSON decodes a tolerance written by MarshalJSON.
func (t *Tolerance) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err != nil {
		return err
	}
	v, err := ParseTolerance(s)
	if err != nil {
		return err
	}
	*t = v
	return nil
}

// Bucketer maps fragment masses to integer bucket indices at a fixed
// resolution, the discretization used by the SLM index. Resolution is the
// bucket width in Daltons (paper default r = 0.01).
type Bucketer struct {
	Resolution float64
}

// NewBucketer returns a Bucketer with the given resolution. It panics if
// resolution is not positive, as a zero resolution would make every mass its
// own bucket boundary.
func NewBucketer(resolution float64) Bucketer {
	if resolution <= 0 {
		panic("mass: bucket resolution must be positive")
	}
	return Bucketer{Resolution: resolution}
}

// Bucket returns the bucket index for mass m (m must be >= 0).
func (b Bucketer) Bucket(m float64) int {
	return int(math.Round(m / b.Resolution))
}

// Range returns the inclusive bucket range [lo, hi] covering the window
// tol around mass m.
func (b Bucketer) Range(m float64, tol Tolerance) (lo, hi int) {
	wlo, whi := tol.Window(m)
	if wlo < 0 {
		wlo = 0
	}
	return b.Bucket(wlo), b.Bucket(whi)
}

// Center returns the representative mass at the center of bucket i.
func (b Bucketer) Center(i int) float64 {
	return float64(i) * b.Resolution
}
