// Package mass provides monoisotopic mass arithmetic for peptides and
// their fragment ions.
//
// All masses are in Daltons (Da, unified atomic mass units). The package
// follows standard proteomics conventions: a peptide's neutral mass is the
// sum of its residue masses plus one water; singly protonated ions add one
// proton mass.
package mass

import (
	"errors"
	"fmt"
)

// Fundamental monoisotopic constants (Da), CODATA/IUPAC values as used by
// mainstream search engines.
const (
	Proton   = 1.00727646688 // mass of H+
	Hydrogen = 1.0078250319  // mass of H atom
	Oxygen   = 15.9949146221 // mass of O atom
	Nitrogen = 14.0030740052
	Carbon   = 12.0
	Water    = 2*Hydrogen + Oxygen // ~18.0105646
	Ammonia  = Nitrogen + 3*Hydrogen
)

// residueMass holds the monoisotopic mass of each of the 20 standard amino
// acid residues (i.e. the amino acid minus water), indexed by letter 'A'-'Z'.
// Non-standard letters hold zero and are reported as invalid.
var residueMass = [26]float64{
	'A' - 'A': 71.03711381,
	'C' - 'A': 103.00918496, // cysteine, unmodified
	'D' - 'A': 115.02694302,
	'E' - 'A': 129.04259309,
	'F' - 'A': 147.06841391,
	'G' - 'A': 57.02146374,
	'H' - 'A': 137.05891186,
	'I' - 'A': 113.08406398,
	'K' - 'A': 128.09496302,
	'L' - 'A': 113.08406398,
	'M' - 'A': 131.04048509,
	'N' - 'A': 114.04292744,
	'P' - 'A': 97.05276388,
	'Q' - 'A': 128.05857751,
	'R' - 'A': 156.10111102,
	'S' - 'A': 87.03202841,
	'T' - 'A': 101.04767847,
	'V' - 'A': 99.06841391,
	'W' - 'A': 186.07931295,
	'Y' - 'A': 163.06332853,
}

// validResidue marks the 20 standard amino-acid letters.
var validResidue = func() (v [26]bool) {
	for _, r := range "ACDEFGHIKLMNPQRSTVWY" {
		v[r-'A'] = true
	}
	return
}()

// ErrInvalidResidue reports a non-standard amino-acid letter in a sequence.
var ErrInvalidResidue = errors.New("mass: invalid amino acid residue")

// ValidResidue reports whether b is one of the 20 standard amino-acid letters
// (upper case).
func ValidResidue(b byte) bool {
	return b >= 'A' && b <= 'Z' && validResidue[b-'A']
}

// Residue returns the monoisotopic residue mass of the amino-acid letter b.
// It returns ErrInvalidResidue for non-standard letters.
func Residue(b byte) (float64, error) {
	if !ValidResidue(b) {
		return 0, fmt.Errorf("%w: %q", ErrInvalidResidue, string(rune(b)))
	}
	return residueMass[b-'A'], nil
}

// MustResidue is like Residue but panics on invalid input. It is intended
// for callers that have already validated the sequence.
func MustResidue(b byte) float64 {
	m, err := Residue(b)
	if err != nil {
		panic(err)
	}
	return m
}

// ValidSequence reports whether every letter of seq is a standard residue.
// The empty sequence is valid.
func ValidSequence(seq string) bool {
	for i := 0; i < len(seq); i++ {
		if !ValidResidue(seq[i]) {
			return false
		}
	}
	return true
}

// Peptide returns the neutral monoisotopic mass of the peptide sequence:
// the sum of residue masses plus one water. It returns an error if seq
// contains a non-standard letter or is empty.
func Peptide(seq string) (float64, error) {
	if len(seq) == 0 {
		return 0, errors.New("mass: empty peptide sequence")
	}
	sum := Water
	for i := 0; i < len(seq); i++ {
		r, err := Residue(seq[i])
		if err != nil {
			return 0, fmt.Errorf("position %d: %w", i, err)
		}
		sum += r
	}
	return sum, nil
}

// MustPeptide is like Peptide but panics on invalid input.
func MustPeptide(seq string) float64 {
	m, err := Peptide(seq)
	if err != nil {
		panic(err)
	}
	return m
}

// MZ converts a neutral mass to the mass-to-charge ratio of the ion carrying
// `charge` protons. charge must be >= 1.
func MZ(neutral float64, charge int) float64 {
	z := float64(charge)
	return (neutral + z*Proton) / z
}

// Neutral converts an observed m/z at the given charge back to neutral mass.
func Neutral(mz float64, charge int) float64 {
	z := float64(charge)
	return mz*z - z*Proton
}
