package mass

import (
	"encoding/json"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestResidueKnownValues(t *testing.T) {
	cases := []struct {
		aa   byte
		want float64
	}{
		{'G', 57.02146374},
		{'A', 71.03711381},
		{'W', 186.07931295},
		{'K', 128.09496302},
		{'R', 156.10111102},
	}
	for _, c := range cases {
		got, err := Residue(c.aa)
		if err != nil {
			t.Fatalf("Residue(%c): %v", c.aa, err)
		}
		if !almostEqual(got, c.want, 1e-9) {
			t.Errorf("Residue(%c) = %.8f, want %.8f", c.aa, got, c.want)
		}
	}
}

func TestResidueInvalid(t *testing.T) {
	for _, aa := range []byte{'B', 'J', 'O', 'U', 'X', 'Z', 'a', '1', ' '} {
		if _, err := Residue(aa); err == nil {
			t.Errorf("Residue(%q) should fail", string(rune(aa)))
		}
		if ValidResidue(aa) {
			t.Errorf("ValidResidue(%q) should be false", string(rune(aa)))
		}
	}
}

func TestPeptideKnownMass(t *testing.T) {
	// PEPTIDE has a well-known monoisotopic neutral mass of ~799.35997 Da.
	m, err := Peptide("PEPTIDE")
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(m, 799.35997, 5e-4) {
		t.Errorf("Peptide(PEPTIDE) = %.5f, want ~799.35997", m)
	}
	// Glycine alone: residue + water.
	g, _ := Peptide("G")
	if !almostEqual(g, 57.02146374+Water, 1e-9) {
		t.Errorf("Peptide(G) = %v", g)
	}
}

func TestPeptideErrors(t *testing.T) {
	if _, err := Peptide(""); err == nil {
		t.Error("empty peptide should fail")
	}
	if _, err := Peptide("PEPTIDEX"); err == nil {
		t.Error("peptide with X should fail")
	}
	if !ValidSequence("") {
		t.Error("empty sequence is valid by convention")
	}
	if ValidSequence("PEPTIDEZ") {
		t.Error("Z is not a standard residue")
	}
}

func TestMustPeptidePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustPeptide should panic on invalid input")
		}
	}()
	MustPeptide("B")
}

func TestWaterConstant(t *testing.T) {
	if !almostEqual(Water, 18.0105646, 1e-7) {
		t.Errorf("Water = %v", Water)
	}
}

func TestMZRoundTrip(t *testing.T) {
	for charge := 1; charge <= 4; charge++ {
		for _, m := range []float64{100, 799.35997, 4999.9} {
			mz := MZ(m, charge)
			back := Neutral(mz, charge)
			if !almostEqual(back, m, 1e-9) {
				t.Errorf("Neutral(MZ(%v,%d)) = %v", m, charge, back)
			}
			if mz <= 0 {
				t.Errorf("MZ must be positive, got %v", mz)
			}
		}
	}
}

func TestPeptideAdditivity(t *testing.T) {
	// mass(A+B) = mass(A) + mass(B) - Water, since concatenation shares
	// one water.
	f := func(a, b uint8) bool {
		sa := randPeptide(int(a%20) + 1)
		sb := randPeptide(int(b%20) + 1)
		ma := MustPeptide(sa)
		mb := MustPeptide(sb)
		mc := MustPeptide(sa + sb)
		return almostEqual(mc, ma+mb-Water, 1e-6)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

const alphabet = "ACDEFGHIKLMNPQRSTVWY"

var rng = rand.New(rand.NewSource(42))

func randPeptide(n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

func TestPeptideMonotonicity(t *testing.T) {
	// Adding any residue strictly increases mass.
	f := func(n uint8, r uint8) bool {
		seq := randPeptide(int(n%30) + 1)
		aa := alphabet[int(r)%len(alphabet)]
		return MustPeptide(seq+string(aa)) > MustPeptide(seq)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLeucineIsoleucineIsobaric(t *testing.T) {
	if MustResidue('L') != MustResidue('I') {
		t.Error("L and I must be isobaric")
	}
}

func TestToleranceDa(t *testing.T) {
	tol := Da(0.05)
	lo, hi := tol.Window(500)
	if lo != 499.95 || hi != 500.05 {
		t.Errorf("window = [%v,%v]", lo, hi)
	}
	if !tol.Contains(500, 500.05) || tol.Contains(500, 500.0501) {
		t.Error("Contains boundary check failed")
	}
	if tol.String() != "0.05Da" {
		t.Errorf("String() = %q", tol.String())
	}
}

func TestTolerancePPM(t *testing.T) {
	tol := Ppm(10)
	w := tol.Width(1000)
	if !almostEqual(w, 0.01, 1e-12) {
		t.Errorf("10ppm of 1000 = %v, want 0.01", w)
	}
	if !tol.Contains(1000, 1000.0099) || tol.Contains(1000, 1000.02) {
		t.Error("ppm Contains failed")
	}
	if tol.String() != "10ppm" {
		t.Errorf("String() = %q", tol.String())
	}
}

func TestToleranceOpen(t *testing.T) {
	tol := Open()
	if !tol.IsOpen() {
		t.Fatal("Open() must be open")
	}
	if !tol.Contains(500, 1e9) || !tol.Contains(500, 0) {
		t.Error("open tolerance must contain everything")
	}
	if tol.String() != "open" {
		t.Errorf("String() = %q", tol.String())
	}
	if Da(1).IsOpen() {
		t.Error("1Da is not open")
	}
}

func TestBucketer(t *testing.T) {
	b := NewBucketer(0.01)
	if b.Bucket(0) != 0 {
		t.Error("Bucket(0) != 0")
	}
	if got := b.Bucket(500.004); got != 50000 {
		t.Errorf("Bucket(500.004) = %d, want 50000", got)
	}
	if got := b.Bucket(500.006); got != 50001 {
		t.Errorf("Bucket(500.006) = %d, want 50001", got)
	}
	lo, hi := b.Range(500, Da(0.05))
	if lo != 49995 || hi != 50005 {
		t.Errorf("Range = [%d,%d]", lo, hi)
	}
	if !almostEqual(b.Center(50000), 500, 1e-9) {
		t.Errorf("Center(50000) = %v", b.Center(50000))
	}
}

func TestBucketerNegativeClamp(t *testing.T) {
	b := NewBucketer(0.01)
	lo, _ := b.Range(0.001, Da(0.05))
	if lo < 0 {
		t.Errorf("Range low end must clamp at 0, got %d", lo)
	}
}

func TestBucketerPanicsOnZeroResolution(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewBucketer(0) should panic")
		}
	}()
	NewBucketer(0)
}

func TestBucketerMonotone(t *testing.T) {
	b := NewBucketer(0.01)
	f := func(x, y uint16) bool {
		mx, my := float64(x)/10, float64(y)/10
		if mx > my {
			mx, my = my, mx
		}
		return b.Bucket(mx) <= b.Bucket(my)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestToleranceJSONRoundTrip(t *testing.T) {
	cases := []Tolerance{Da(0.05), Ppm(20), Open(), Da(0), Da(0.1234567890123)}
	for _, tol := range cases {
		b, err := json.Marshal(tol)
		if err != nil {
			t.Fatalf("%v: %v", tol, err)
		}
		var got Tolerance
		if err := json.Unmarshal(b, &got); err != nil {
			t.Fatalf("%v: %v", tol, err)
		}
		if got != tol {
			t.Errorf("round trip changed %v to %v (wire %s)", tol, got, b)
		}
	}
	var bad Tolerance
	if err := json.Unmarshal([]byte(`"12parsecs"`), &bad); err == nil {
		t.Error("bad tolerance unit must fail to parse")
	}
}
