package editdist

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestNaiveKnown(t *testing.T) {
	cases := []struct {
		a, b string
		want int
	}{
		{"", "", 0},
		{"", "ABC", 3},
		{"ABC", "", 3},
		{"ABC", "ABC", 0},
		{"KITTEN", "SITTING", 3},
		{"FLAW", "LAWN", 2},
		{"PEPTIDE", "PEPTIDE", 0},
		{"PEPTIDE", "PEPTIDA", 1},
		{"PEPTIDE", "PETIDE", 1},
		{"PEPTIDE", "PPEPTIDE", 1},
		{"AAAA", "TTTT", 4},
	}
	for _, c := range cases {
		if got := Naive(c.a, c.b); got != c.want {
			t.Errorf("Naive(%q,%q) = %d, want %d", c.a, c.b, got, c.want)
		}
	}
}

const alpha = "ACDEFGHIKLMNPQRSTVWY"

func randSeq(rng *rand.Rand, n int) string {
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alpha[rng.Intn(len(alpha))])
	}
	return sb.String()
}

func TestDistanceMatchesNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 2000; trial++ {
		a := randSeq(rng, rng.Intn(25))
		b := randSeq(rng, rng.Intn(25))
		maxDist := rng.Intn(8)
		exact := Naive(a, b)
		got := Distance(a, b, maxDist)
		if exact <= maxDist {
			if got != exact {
				t.Fatalf("Distance(%q,%q,%d) = %d, want exact %d", a, b, maxDist, got, exact)
			}
		} else if got != maxDist+1 {
			t.Fatalf("Distance(%q,%q,%d) = %d, want cutoff %d", a, b, maxDist, got, maxDist+1)
		}
	}
}

func TestDistanceNegativeThreshold(t *testing.T) {
	if got := Distance("KITTEN", "SITTING", -1); got != 3 {
		t.Errorf("Distance with -1 = %d, want 3", got)
	}
}

func TestWithin(t *testing.T) {
	if !Within("PEPTIDE", "PEPTIDA", 1) {
		t.Error("distance-1 pair must be within 1")
	}
	if Within("PEPTIDE", "GGGGGGG", 2) {
		t.Error("distant pair must not be within 2")
	}
	if !Within("", "", 0) {
		t.Error("empty pair is within 0")
	}
}

func TestSymmetryProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	f := func(x, y uint8) bool {
		a := randSeq(rng, int(x%30))
		b := randSeq(rng, int(y%30))
		return Naive(a, b) == Naive(b, a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestTriangleInequalityProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	f := func(x, y, z uint8) bool {
		a := randSeq(rng, int(x%20))
		b := randSeq(rng, int(y%20))
		c := randSeq(rng, int(z%20))
		return Naive(a, c) <= Naive(a, b)+Naive(b, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBoundsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	f := func(x, y uint8) bool {
		a := randSeq(rng, int(x%30))
		b := randSeq(rng, int(y%30))
		d := Naive(a, b)
		lo := len(a) - len(b)
		if lo < 0 {
			lo = -lo
		}
		hi := len(a)
		if len(b) > hi {
			hi = len(b)
		}
		return d >= lo && d <= hi && (d != 0) == (a != b)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestNormalized(t *testing.T) {
	if got := Normalized("", ""); got != 0 {
		t.Errorf("Normalized empty = %v", got)
	}
	if got := Normalized("AAAA", "TTTT"); got != 1.0 {
		t.Errorf("Normalized disjoint = %v, want 1", got)
	}
	if got := Normalized("PEPTIDE", "PEPTIDA"); got != 1.0/7.0 {
		t.Errorf("Normalized = %v, want 1/7", got)
	}
	if got := Normalized("AB", "ABCD"); got != 0.5 {
		t.Errorf("Normalized length diff = %v, want 0.5", got)
	}
}

func TestDistanceLengthGapShortCircuit(t *testing.T) {
	// A length difference beyond maxDist must exit without touching the DP.
	if got := Distance("A", strings.Repeat("A", 100), 3); got != 4 {
		t.Errorf("got %d, want 4", got)
	}
}

func BenchmarkDistanceBanded(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]string, 256)
	for i := range pairs {
		pairs[i] = [2]string{randSeq(rng, 20), randSeq(rng, 20)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		Distance(p[0], p[1], 2)
	}
}

func BenchmarkDistanceNaive(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	pairs := make([][2]string, 256)
	for i := range pairs {
		pairs[i] = [2]string{randSeq(rng, 20), randSeq(rng, 20)}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p := pairs[i%len(pairs)]
		Naive(p[0], p[1])
	}
}
