// Package editdist implements the Levenshtein edit distance kernel used by
// LBE's peptide grouping (Algorithm 1 of the paper).
//
// The grouping loop evaluates millions of distances between short peptide
// sequences, so the package provides, besides the textbook dynamic program,
// a banded variant with early exit (Distance with a threshold) that is the
// one the hot path uses: grouping only needs to know whether the distance
// exceeds the cutoff, not its exact value beyond it.
package editdist

// Naive computes the exact Levenshtein distance with the full O(len(a)*len(b))
// dynamic program. It is the reference implementation used by tests and by
// callers that need exact distances with no threshold.
func Naive(a, b string) int {
	la, lb := len(a), len(b)
	if la == 0 {
		return lb
	}
	if lb == 0 {
		return la
	}
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		prev[j] = j
	}
	for i := 1; i <= la; i++ {
		curr[0] = i
		ai := a[i-1]
		for j := 1; j <= lb; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost        // substitute
			if d := prev[j] + 1; d < m { // delete
				m = d
			}
			if d := curr[j-1] + 1; d < m { // insert
				m = d
			}
			curr[j] = m
		}
		prev, curr = curr, prev
	}
	return prev[lb]
}

// Distance computes the Levenshtein distance between a and b, but gives up
// as soon as the distance provably exceeds maxDist: in that case it returns
// maxDist+1. This banded formulation (Ukkonen's cutoff) restricts the DP to
// a diagonal band of width 2*maxDist+1 and costs O(maxDist * min(len(a),
// len(b))).
//
// A negative maxDist means "no threshold" and falls back to the exact
// computation.
func Distance(a, b string, maxDist int) int {
	if maxDist < 0 {
		return Naive(a, b)
	}
	la, lb := len(a), len(b)
	// Ensure a is the shorter string so the band walks the smaller side.
	if la > lb {
		a, b = b, a
		la, lb = lb, la
	}
	if lb-la > maxDist {
		return maxDist + 1
	}
	if la == 0 {
		return lb // <= maxDist by the check above
	}

	const inf = int(^uint(0) >> 2)
	prev := make([]int, lb+1)
	curr := make([]int, lb+1)
	for j := 0; j <= lb; j++ {
		if j <= maxDist {
			prev[j] = j
		} else {
			prev[j] = inf
		}
	}
	for i := 1; i <= la; i++ {
		// Band for row i: |i - j| <= maxDist.
		jlo := i - maxDist
		if jlo < 1 {
			jlo = 1
		}
		jhi := i + maxDist
		if jhi > lb {
			jhi = lb
		}
		if jlo > 1 {
			curr[jlo-1] = inf
		} else {
			curr[0] = i
		}
		rowMin := inf
		ai := a[i-1]
		for j := jlo; j <= jhi; j++ {
			cost := 1
			if ai == b[j-1] {
				cost = 0
			}
			m := prev[j-1] + cost
			if j-1 >= jlo-1 {
				if d := curr[j-1] + 1; d < m {
					m = d
				}
			}
			if d := prev[j] + 1; d < m {
				m = d
			}
			curr[j] = m
			if m < rowMin {
				rowMin = m
			}
		}
		if jhi < lb {
			curr[jhi+1] = inf
		}
		if rowMin > maxDist {
			return maxDist + 1
		}
		prev, curr = curr, prev
	}
	if prev[lb] > maxDist {
		return maxDist + 1
	}
	return prev[lb]
}

// Within reports whether the edit distance between a and b is at most
// maxDist. It is the primitive the grouping loop uses.
func Within(a, b string, maxDist int) bool {
	return Distance(a, b, maxDist) <= maxDist
}

// Normalized returns the edit distance divided by the length of the longer
// string, the quantity used by LBE grouping criterion 2. It returns 0 for
// two empty strings.
func Normalized(a, b string) float64 {
	n := len(a)
	if len(b) > n {
		n = len(b)
	}
	if n == 0 {
		return 0
	}
	return float64(Naive(a, b)) / float64(n)
}
