// Package stats computes the performance metrics of the paper's
// evaluation: the normalized load imbalance of Eq. 1, the wasted-CPU-time
// model of §VI, and speedup/efficiency series for the scalability figures.
package stats

import (
	"fmt"
	"math"
)

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Max returns the maximum of xs, or 0 for an empty slice.
func Max(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// Min returns the minimum of xs, or 0 for an empty slice.
func Min(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// LoadImbalance computes Eq. 1 of the paper: LI = ∆Tmax / Tavg, where
// ∆Tmax is the maximum positive deviation of a machine's compute time from
// the average. It returns 0 for empty input or zero average (an idle
// system is balanced).
func LoadImbalance(times []float64) float64 {
	avg := Mean(times)
	if avg == 0 {
		return 0
	}
	dmax := 0.0
	for _, t := range times {
		if d := t - avg; d > dmax {
			dmax = d
		}
	}
	return dmax / avg
}

// WastedCPUTime computes the §VI model: Twst = N * ∆Tmax, the total CPU
// time the system spends idle waiting for the slowest machine.
func WastedCPUTime(times []float64) float64 {
	n := float64(len(times))
	avg := Mean(times)
	dmax := 0.0
	for _, t := range times {
		if d := t - avg; d > dmax {
			dmax = d
		}
	}
	return n * dmax
}

// Speedup returns base/t for each t in times; base is the measured time at
// the reference configuration. Zero times map to NaN.
func Speedup(base float64, times []float64) []float64 {
	out := make([]float64, len(times))
	for i, t := range times {
		if t == 0 {
			out[i] = math.NaN()
		} else {
			out[i] = base / t
		}
	}
	return out
}

// Efficiency converts a speedup series into parallel efficiency given the
// CPU counts used per point: eff = speedup/(cpus/baseCPUs).
func Efficiency(speedups []float64, cpus []int, baseCPUs int) ([]float64, error) {
	if len(speedups) != len(cpus) {
		return nil, fmt.Errorf("stats: %d speedups vs %d cpu counts", len(speedups), len(cpus))
	}
	if baseCPUs <= 0 {
		return nil, fmt.Errorf("stats: base CPU count %d must be positive", baseCPUs)
	}
	out := make([]float64, len(speedups))
	for i := range speedups {
		scale := float64(cpus[i]) / float64(baseCPUs)
		if scale == 0 {
			out[i] = math.NaN()
			continue
		}
		out[i] = speedups[i] / scale
	}
	return out, nil
}

// AmdahlSpeedup returns the ideal speedup of a workload with serial
// fraction s on n processors: 1 / (s + (1-s)/n). Used by the Fig. 10
// analysis to fit the observed saturation.
func AmdahlSpeedup(serialFraction float64, n int) float64 {
	return 1 / (serialFraction + (1-serialFraction)/float64(n))
}

// FitSerialFraction estimates the serial fraction from a measured speedup
// at n processors by inverting Amdahl's law.
func FitSerialFraction(speedup float64, n int) float64 {
	if n <= 1 || speedup <= 0 {
		return 1
	}
	fn := float64(n)
	return (fn/speedup - 1) / (fn - 1)
}
