package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func approx(a, b float64) bool { return math.Abs(a-b) < 1e-9 }

func TestMeanMaxMin(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if !approx(Mean(xs), 2.8) {
		t.Errorf("Mean = %v", Mean(xs))
	}
	if Max(xs) != 5 || Min(xs) != 1 {
		t.Errorf("Max/Min = %v/%v", Max(xs), Min(xs))
	}
	if Mean(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-slice conventions broken")
	}
}

func TestLoadImbalancePaperExample(t *testing.T) {
	// §VI example: ∆Tmax = 80s over Tavg = 100s means LI = 0.8 and, with
	// 16 CPUs, Twst = 1280s.
	// Construct 16 machine times with mean 100 and max 180.
	times := make([]float64, 16)
	for i := range times {
		times[i] = 100 - 80.0/15 // 15 machines slightly below average
	}
	times[0] = 180
	if !approx(Mean(times), 100) {
		t.Fatalf("constructed mean = %v", Mean(times))
	}
	li := LoadImbalance(times)
	if !approx(li, 0.8) {
		t.Errorf("LI = %v, want 0.8", li)
	}
	if got := WastedCPUTime(times); !approx(got, 1280) {
		t.Errorf("Twst = %v, want 1280", got)
	}
}

func TestLoadImbalanceBalanced(t *testing.T) {
	if got := LoadImbalance([]float64{50, 50, 50, 50}); got != 0 {
		t.Errorf("balanced LI = %v", got)
	}
	if got := LoadImbalance(nil); got != 0 {
		t.Errorf("empty LI = %v", got)
	}
	if got := LoadImbalance([]float64{0, 0}); got != 0 {
		t.Errorf("zero LI = %v", got)
	}
}

func TestLoadImbalanceNonNegativeProperty(t *testing.T) {
	f := func(raw []uint16) bool {
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r)
		}
		li := LoadImbalance(times)
		return li >= 0 && !math.IsNaN(li)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestWastedCPUTimeEquivalence(t *testing.T) {
	// Twst = N*∆Tmax = LI * N * Tavg (the two §VI forms agree).
	f := func(raw []uint16) bool {
		if len(raw) == 0 {
			return true
		}
		times := make([]float64, len(raw))
		for i, r := range raw {
			times[i] = float64(r) + 1
		}
		direct := WastedCPUTime(times)
		viaLI := LoadImbalance(times) * float64(len(times)) * Mean(times)
		return math.Abs(direct-viaLI) < 1e-6*(1+direct)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpeedup(t *testing.T) {
	s := Speedup(100, []float64{100, 50, 25, 0})
	if !approx(s[0], 1) || !approx(s[1], 2) || !approx(s[2], 4) {
		t.Errorf("speedups = %v", s)
	}
	if !math.IsNaN(s[3]) {
		t.Error("zero time must map to NaN")
	}
}

func TestEfficiency(t *testing.T) {
	eff, err := Efficiency([]float64{1, 1.9, 3.6}, []int{4, 8, 16}, 4)
	if err != nil {
		t.Fatal(err)
	}
	if !approx(eff[0], 1) || !approx(eff[1], 0.95) || !approx(eff[2], 0.9) {
		t.Errorf("efficiency = %v", eff)
	}
	if _, err := Efficiency([]float64{1}, []int{1, 2}, 1); err == nil {
		t.Error("length mismatch must fail")
	}
	if _, err := Efficiency([]float64{1}, []int{1}, 0); err == nil {
		t.Error("zero base CPUs must fail")
	}
}

func TestAmdahl(t *testing.T) {
	// No serial part: perfect scaling.
	if !approx(AmdahlSpeedup(0, 16), 16) {
		t.Errorf("Amdahl(0,16) = %v", AmdahlSpeedup(0, 16))
	}
	// Fully serial: no scaling.
	if !approx(AmdahlSpeedup(1, 16), 1) {
		t.Errorf("Amdahl(1,16) = %v", AmdahlSpeedup(1, 16))
	}
	// 10% serial at 16 CPUs: 1/(0.1 + 0.9/16) ≈ 6.4.
	if got := AmdahlSpeedup(0.1, 16); math.Abs(got-6.4) > 0.01 {
		t.Errorf("Amdahl(0.1,16) = %v", got)
	}
}

func TestFitSerialFractionRoundTrip(t *testing.T) {
	f := func(sRaw, nRaw uint8) bool {
		s := float64(sRaw%100) / 100
		n := int(nRaw%30) + 2
		sp := AmdahlSpeedup(s, n)
		got := FitSerialFraction(sp, n)
		return math.Abs(got-s) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if FitSerialFraction(5, 1) != 1 {
		t.Error("n=1 convention broken")
	}
	if FitSerialFraction(0, 4) != 1 {
		t.Error("zero speedup convention broken")
	}
}
