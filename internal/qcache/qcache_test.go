package qcache

import (
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbe/internal/spectrum"
)

func bytesSize(v []byte) int { return len(v) }

func newTest(maxBytes int64, ttl time.Duration) *Cache[[]byte] {
	return New[[]byte](Config{MaxBytes: maxBytes, TTL: ttl}, bytesSize)
}

func TestAcquireHitMissFlow(t *testing.T) {
	c := newTest(1<<20, 0)

	_, f, o := c.Acquire("k")
	if o != Lead {
		t.Fatalf("first Acquire outcome %v, want Lead", o)
	}
	f.Complete([]byte("answer"))

	v, _, o := c.Acquire("k")
	if o != Hit || string(v) != "answer" {
		t.Fatalf("second Acquire = %q, %v; want answer, Hit", v, o)
	}

	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 {
		t.Fatalf("stats %+v; want 1 hit, 1 miss, 1 entry", st)
	}
	if st.Bytes <= 0 || st.MaxBytes != 1<<20 {
		t.Fatalf("stats bytes %d / max %d", st.Bytes, st.MaxBytes)
	}
}

func TestSingleflightCollapses(t *testing.T) {
	c := newTest(1<<20, 0)

	_, lead, o := c.Acquire("k")
	if o != Lead {
		t.Fatalf("outcome %v, want Lead", o)
	}

	const waiters = 8
	var wg sync.WaitGroup
	var got atomic.Int64
	for i := 0; i < waiters; i++ {
		_, f, o := c.Acquire("k")
		if o != Wait {
			t.Fatalf("waiter %d outcome %v, want Wait", i, o)
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			<-f.Done()
			if v, ok := f.Result(); ok && string(v) == "once" {
				got.Add(1)
			}
		}()
	}
	lead.Complete([]byte("once"))
	wg.Wait()
	if got.Load() != waiters {
		t.Fatalf("%d waiters got the value, want %d", got.Load(), waiters)
	}
	if st := c.Stats(); st.Collapsed != waiters {
		t.Fatalf("collapsed %d, want %d", st.Collapsed, waiters)
	}
}

// TestAbortDoesNotPoison: an aborting leader (cancelled caller) caches
// nothing, and a waiter can retry, lead, and complete normally.
func TestAbortDoesNotPoison(t *testing.T) {
	c := newTest(1<<20, 0)

	_, lead, _ := c.Acquire("k")
	_, wait, o := c.Acquire("k")
	if o != Wait {
		t.Fatalf("outcome %v, want Wait", o)
	}
	lead.Abort()
	<-wait.Done()
	if _, ok := wait.Result(); ok {
		t.Fatal("aborted flight delivered a value")
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("abort left %d entries", st.Entries)
	}

	// The retry leads and completes; the entry is clean.
	_, f, o := c.Acquire("k")
	if o != Lead {
		t.Fatalf("retry outcome %v, want Lead", o)
	}
	f.Complete([]byte("good"))
	v, _, o := c.Acquire("k")
	if o != Hit || string(v) != "good" {
		t.Fatalf("after retry: %q, %v", v, o)
	}
}

func TestByteBudgetEvictsLRU(t *testing.T) {
	// Budget fits two entries (value 100 + key 2 + overhead 128 = 230).
	c := newTest(2*230, 0)
	val := make([]byte, 100)
	c.Put("k0", val)
	c.Put("k1", val)
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("k0 evicted before budget pressure")
	}
	// k0 was just touched, so inserting k2 must evict k1.
	c.Put("k2", val)
	if _, ok := c.Get("k1"); ok {
		t.Fatal("LRU kept k1 over the more recently used k0")
	}
	if _, ok := c.Get("k0"); !ok {
		t.Fatal("recently used k0 was evicted")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 {
		t.Fatalf("stats %+v; want 1 eviction, 2 entries", st)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("resident %d exceeds budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestOversizedValueNotStored(t *testing.T) {
	c := newTest(64, 0)
	c.Put("k", make([]byte, 1024))
	if _, ok := c.Get("k"); ok {
		t.Fatal("value larger than the whole budget was stored")
	}
}

func TestZeroBudgetStoresNothingButCollapses(t *testing.T) {
	c := newTest(0, 0)
	_, lead, o := c.Acquire("k")
	if o != Lead {
		t.Fatalf("outcome %v, want Lead", o)
	}
	_, f, o := c.Acquire("k")
	if o != Wait {
		t.Fatalf("outcome %v, want Wait (singleflight must survive a zero budget)", o)
	}
	lead.Complete([]byte("v"))
	<-f.Done()
	if v, ok := f.Result(); !ok || string(v) != "v" {
		t.Fatalf("waiter got %q, %v", v, ok)
	}
	if _, _, o := c.Acquire("k"); o != Lead {
		t.Fatalf("zero-budget cache answered %v, want Lead (nothing stored)", o)
	}
}

func TestTTLExpires(t *testing.T) {
	c := newTest(1<<20, 10*time.Millisecond)
	c.Put("k", []byte("v"))
	if _, ok := c.Get("k"); !ok {
		t.Fatal("entry missing before TTL")
	}
	time.Sleep(25 * time.Millisecond)
	if _, ok := c.Get("k"); ok {
		t.Fatal("entry survived its TTL")
	}
	if st := c.Stats(); st.Evictions != 1 || st.Entries != 0 || st.Bytes != 0 {
		t.Fatalf("expiry accounting off: %+v", st)
	}
}

func TestPurgeInvalidatesEverything(t *testing.T) {
	c := newTest(1<<20, 0)
	for i := 0; i < 5; i++ {
		c.Put(fmt.Sprintf("k%d", i), []byte("v"))
	}
	if n := c.Purge(); n != 5 {
		t.Fatalf("Purge dropped %d, want 5", n)
	}
	st := c.Stats()
	if st.Entries != 0 || st.Bytes != 0 || st.Invalidated != 5 {
		t.Fatalf("post-purge stats %+v", st)
	}
	if _, ok := c.Get("k0"); ok {
		t.Fatal("purged entry still served")
	}
}

// TestConcurrentAcquire hammers one hot key and a spread of cold keys
// from many goroutines; run under -race in CI.
func TestConcurrentAcquire(t *testing.T) {
	c := newTest(1<<20, 0)
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				key := fmt.Sprintf("k%d", i%7)
				// At most one abort per iteration: every goroutine starts at
				// i=0, so an unconditional abort-on-lead would livelock with
				// no goroutine ever completing the first key.
				aborted := false
				for {
					v, f, o := c.Acquire(key)
					if o == Hit {
						if string(v) != key {
							t.Errorf("hit %q under key %q", v, key)
						}
						break
					}
					if o == Lead {
						if i%31 == 0 && !aborted {
							aborted = true
							f.Abort() // exercise the retry path
							continue
						}
						f.Complete([]byte(key))
						break
					}
					<-f.Done()
					if v, ok := f.Result(); ok {
						if string(v) != key {
							t.Errorf("waited %q under key %q", v, key)
						}
						break
					}
				}
			}
		}(g)
	}
	wg.Wait()
}

func TestKeyerSpectrumCanonicalization(t *testing.T) {
	k := NewKeyer("digest-a", "topk=5")
	base := spectrum.Experimental{
		Scan:        3,
		PrecursorMZ: 500.25,
		Charge:      2,
		Peaks:       []spectrum.Peak{{MZ: 147.11, Intensity: 1}, {MZ: 262.14, Intensity: 0.5}},
	}

	// Scan and retention time do not shape PSMs: same Spectrum key.
	other := base
	other.Scan = 99
	other.RetentionTime = 12.5
	if k.Spectrum(base) != k.Spectrum(other) {
		t.Fatal("Spectrum key depends on scan/retention time")
	}
	// ...but a response cache echoes scans: different Request key.
	if k.Request([]spectrum.Experimental{base}) == k.Request([]spectrum.Experimental{other}) {
		t.Fatal("Request key ignores the scan it must echo")
	}

	// Content changes change the key.
	for name, mut := range map[string]func(*spectrum.Experimental){
		"precursor": func(e *spectrum.Experimental) { e.PrecursorMZ += 0.01 },
		"charge":    func(e *spectrum.Experimental) { e.Charge = 3 },
		"peak mz":   func(e *spectrum.Experimental) { e.Peaks[0].MZ += 0.01 },
		"intensity": func(e *spectrum.Experimental) { e.Peaks[1].Intensity *= 2 },
	} {
		m := base
		m.Peaks = append([]spectrum.Peak(nil), base.Peaks...)
		mut(&m)
		if k.Spectrum(base) == k.Spectrum(m) {
			t.Fatalf("Spectrum key blind to %s change", name)
		}
	}

	// A different serving context (digest or knobs) changes every key.
	if NewKeyer("digest-b", "topk=5").Spectrum(base) == k.Spectrum(base) {
		t.Fatal("key survives a digest change")
	}
	if NewKeyer("digest-a", "topk=10").Spectrum(base) == k.Spectrum(base) {
		t.Fatal("key survives a knob change")
	}
	// Delimiting must keep part concatenations apart.
	if NewKeyer("ab", "c").Spectrum(base) == NewKeyer("a", "bc").Spectrum(base) {
		t.Fatal("keyer parts are not delimited")
	}
}
