// Package qcache is the serving tier's content-addressed answer cache:
// a byte-budgeted LRU of search results keyed on (canonical spectrum
// hash × store digest × search knobs), with singleflight collapsing of
// identical in-flight queries.
//
// At the traffic scale the ROADMAP targets, query streams are heavily
// repeated and zipf-skewed, yet the engine happily re-runs the full
// shared-peak counting + hyperscore pipeline for a spectrum it answered
// milliseconds ago. HiCOPS-style overlap arguments say redundant compute
// is the first thing to eliminate, and the communication-lower-bounds
// line of work says to ship top-K answers rather than recompute raw
// results — a result cache keyed on the store digest is exactly that
// principle applied to the serving tier.
//
// Correctness contract: the cache itself never invents or transforms
// values, so a cached answer is byte-identical to an uncached one by
// construction, and a key that embeds the store digest is valid exactly
// as long as that digest — entries computed under a retired digest
// become unreachable (and are evicted by the LRU) the moment the keys
// change. Purge exists for the observably-eager version of that
// invalidation.
//
// Singleflight contract: Acquire hands exactly one caller per key the
// Lead outcome; everyone else Waits on the same Flight. The leader must
// resolve the flight with Complete (delivering the value to every
// waiter and filling the cache) or Abort (waking waiters empty-handed so
// one of them can lead a retry). A waiter abandoning its wait — client
// disconnect, deadline — has no effect on the flight or the entry, and
// an aborting leader caches nothing: errors and cancellations cannot
// poison an entry.
package qcache

import (
	"container/list"
	"sync"
	"sync/atomic"
	"time"
)

// Config tunes a Cache.
type Config struct {
	// MaxBytes bounds the resident cache size (keys + values + per-entry
	// overhead). 0 or negative stores nothing — singleflight collapsing
	// still works, the LRU is just permanently empty.
	MaxBytes int64
	// TTL expires entries this long after they are stored; 0 or negative
	// means entries live until evicted or purged. The store digest in
	// the key is the correctness clock; TTL is for bounding staleness of
	// operational concerns a digest cannot see (e.g. a cache sized far
	// above the working set).
	TTL time.Duration
}

// Outcome is Acquire's three-way result.
type Outcome int

const (
	// Hit: the value was cached; no flight involved.
	Hit Outcome = iota
	// Lead: the caller owns the computation and must Complete or Abort
	// the returned flight on every path.
	Lead
	// Wait: another caller is computing the key; wait on Flight.Done and
	// read Flight.Result, re-Acquiring if the flight aborted.
	Wait
)

// Flight is one in-flight computation of a key's value, shared by the
// leader that computes it and every collapsed waiter.
type Flight[V any] struct {
	cache *Cache[V]
	key   string
	done  chan struct{}
	val   V
	ok    bool
}

// Done is closed once the flight is resolved either way.
func (f *Flight[V]) Done() <-chan struct{} { return f.done }

// Result returns the flight's value and whether it completed; it must
// only be read after Done is closed. ok == false means the leader
// aborted and the caller should re-Acquire.
func (f *Flight[V]) Result() (V, bool) { return f.val, f.ok }

// Complete resolves the flight with a value: the cache entry is filled
// (best effort, within the byte budget) and every waiter receives v.
// Only the leader may call it, exactly once.
func (f *Flight[V]) Complete(v V) { f.cache.resolve(f, v, true) }

// Abort resolves the flight without a value: nothing is cached and
// waiters wake to retry. Only the leader may call it, exactly once.
// Abort is how a cancelled or failed computation stays non-poisonous.
func (f *Flight[V]) Abort() { var zero V; f.cache.resolve(f, zero, false) }

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	Hits        int64 // Acquire found a cached value
	Misses      int64 // Acquire made the caller a leader
	Evictions   int64 // entries dropped by the byte budget or TTL
	Collapsed   int64 // Acquire joined an existing flight
	Invalidated int64 // entries dropped by Purge
	Entries     int   // resident entries
	Bytes       int64 // resident bytes (keys + values + overhead)
	MaxBytes    int64 // configured budget
}

// entry is one resident cache line.
type entry[V any] struct {
	key     string
	val     V
	size    int64
	expires time.Time // zero = never
}

// entryOverhead approximates the per-entry bookkeeping (list element,
// map bucket share, entry struct) charged against the byte budget.
const entryOverhead = 128

// Cache is a content-addressed answer cache: byte-budgeted LRU with
// optional TTL and singleflight. Safe for concurrent use.
type Cache[V any] struct {
	maxBytes int64
	ttl      time.Duration
	sizeOf   func(V) int

	mu      sync.Mutex
	ll      *list.List // front = most recently used; values are *entry[V]
	byKey   map[string]*list.Element
	flights map[string]*Flight[V]
	bytes   int64

	hits        atomic.Int64
	misses      atomic.Int64
	evictions   atomic.Int64
	collapsed   atomic.Int64
	invalidated atomic.Int64
}

// New builds a cache. sizeOf reports a value's resident bytes (the key
// and a fixed per-entry overhead are charged on top).
func New[V any](cfg Config, sizeOf func(V) int) *Cache[V] {
	return &Cache[V]{
		maxBytes: cfg.MaxBytes,
		ttl:      cfg.TTL,
		sizeOf:   sizeOf,
		ll:       list.New(),
		byKey:    make(map[string]*list.Element),
		flights:  make(map[string]*Flight[V]),
	}
}

// Acquire is the one lookup entry point. It returns (value, nil, Hit)
// on a cache hit, (zero, flight, Wait) when the key is already being
// computed, and (zero, flight, Lead) when the caller must compute the
// value and resolve the flight.
func (c *Cache[V]) Acquire(key string) (V, *Flight[V], Outcome) {
	c.mu.Lock()
	if v, ok := c.lookupLocked(key, time.Now()); ok {
		c.mu.Unlock()
		c.hits.Add(1)
		return v, nil, Hit
	}
	if f, ok := c.flights[key]; ok {
		c.mu.Unlock()
		c.collapsed.Add(1)
		var zero V
		return zero, f, Wait
	}
	f := &Flight[V]{cache: c, key: key, done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	c.misses.Add(1)
	var zero V
	return zero, f, Lead
}

// Get looks the key up without joining or creating a flight. It counts
// a hit but not a miss — Acquire owns the miss accounting.
func (c *Cache[V]) Get(key string) (V, bool) {
	c.mu.Lock()
	v, ok := c.lookupLocked(key, time.Now())
	c.mu.Unlock()
	if ok {
		c.hits.Add(1)
	}
	return v, ok
}

// Put stores a value directly, bypassing the singleflight machinery.
func (c *Cache[V]) Put(key string, v V) {
	c.mu.Lock()
	c.putLocked(key, v, time.Now())
	c.mu.Unlock()
}

// resolve finishes a flight: the flight is unregistered, the value is
// cached when ok, and waiters wake.
func (c *Cache[V]) resolve(f *Flight[V], v V, ok bool) {
	c.mu.Lock()
	if c.flights[f.key] == f {
		delete(c.flights, f.key)
	}
	if ok {
		c.putLocked(f.key, v, time.Now())
	}
	c.mu.Unlock()
	f.val, f.ok = v, ok
	close(f.done)
}

// lookupLocked finds a fresh entry, expiring it instead when its TTL has
// passed. The caller holds c.mu.
func (c *Cache[V]) lookupLocked(key string, now time.Time) (V, bool) {
	var zero V
	el, ok := c.byKey[key]
	if !ok {
		return zero, false
	}
	en := el.Value.(*entry[V])
	if !en.expires.IsZero() && now.After(en.expires) {
		c.removeLocked(el)
		c.evictions.Add(1)
		return zero, false
	}
	c.ll.MoveToFront(el)
	return en.val, true
}

// putLocked inserts or replaces an entry and evicts from the LRU tail
// until the budget holds. Values larger than the whole budget are not
// stored. The caller holds c.mu.
func (c *Cache[V]) putLocked(key string, v V, now time.Time) {
	if c.maxBytes <= 0 {
		return
	}
	size := int64(c.sizeOf(v)) + int64(len(key)) + entryOverhead
	if size > c.maxBytes {
		return
	}
	if el, ok := c.byKey[key]; ok {
		c.removeLocked(el)
	}
	en := &entry[V]{key: key, val: v, size: size}
	if c.ttl > 0 {
		en.expires = now.Add(c.ttl)
	}
	c.byKey[key] = c.ll.PushFront(en)
	c.bytes += size
	for c.bytes > c.maxBytes {
		tail := c.ll.Back()
		if tail == nil {
			break
		}
		c.removeLocked(tail)
		c.evictions.Add(1)
	}
}

// removeLocked drops one entry. The caller holds c.mu.
func (c *Cache[V]) removeLocked(el *list.Element) {
	en := el.Value.(*entry[V])
	c.ll.Remove(el)
	delete(c.byKey, en.key)
	c.bytes -= en.size
}

// Purge drops every resident entry (in-flight computations are left to
// resolve; their late fills land under keys no current reader asks for
// when the purge was digest-driven) and returns the number dropped.
func (c *Cache[V]) Purge() int {
	c.mu.Lock()
	n := c.ll.Len()
	c.ll.Init()
	c.byKey = make(map[string]*list.Element)
	c.bytes = 0
	c.mu.Unlock()
	c.invalidated.Add(int64(n))
	return n
}

// Stats snapshots the counters and residency gauges.
func (c *Cache[V]) Stats() Stats {
	c.mu.Lock()
	entries := c.ll.Len()
	bytes := c.bytes
	c.mu.Unlock()
	return Stats{
		Hits:        c.hits.Load(),
		Misses:      c.misses.Load(),
		Evictions:   c.evictions.Load(),
		Collapsed:   c.collapsed.Load(),
		Invalidated: c.invalidated.Load(),
		Entries:     entries,
		Bytes:       bytes,
		MaxBytes:    c.maxBytes,
	}
}
