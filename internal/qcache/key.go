package qcache

import (
	"crypto/sha256"
	"encoding/binary"
	"io"
	"math"

	"lbe/internal/spectrum"
)

// Keyer derives content-addressed cache keys. The prefix binds every key
// to the serving context — the store digest plus the result-shaping
// search knobs (topK, tolerances, policy) — so an entry is valid exactly
// as long as the digest and knobs it was computed under: change either
// and every old key becomes unreachable.
type Keyer struct {
	prefix [sha256.Size]byte
}

// NewKeyer builds a Keyer over the serving context parts (store digest,
// rendered knobs). Part boundaries are delimited so concatenations
// cannot collide.
func NewKeyer(parts ...string) Keyer {
	h := sha256.New()
	for _, p := range parts {
		var n [4]byte
		binary.LittleEndian.PutUint32(n[:], uint32(len(p)))
		h.Write(n[:])
		h.Write([]byte(p))
	}
	var k Keyer
	h.Sum(k.prefix[:0])
	return k
}

// hashSpectrum feeds one spectrum's search-relevant content into buf/h.
// withScan additionally binds the scan number, for callers caching
// rendered responses (which echo scans); retention time never shapes a
// result and is always excluded.
func hashSpectrum(h io.Writer, e spectrum.Experimental, withScan bool) {
	var buf [16]byte
	if withScan {
		binary.LittleEndian.PutUint64(buf[:8], uint64(int64(e.Scan)))
		h.Write(buf[:8])
	}
	binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(e.PrecursorMZ))
	binary.LittleEndian.PutUint64(buf[8:], uint64(int64(e.Charge)))
	h.Write(buf[:])
	for _, p := range e.Peaks {
		binary.LittleEndian.PutUint64(buf[:8], math.Float64bits(p.MZ))
		binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(p.Intensity))
		h.Write(buf[:])
	}
}

// Spectrum keys one query spectrum by the content that shapes its PSMs:
// precursor m/z, charge, and the (sorted) peak list. Scan number and
// retention time are echoed in responses but never change a PSM, so two
// acquisitions of the same spectrum share one entry. Intended for
// caching per-spectrum PSM lists.
func (k Keyer) Spectrum(e spectrum.Experimental) string {
	h := sha256.New()
	h.Write(k.prefix[:])
	hashSpectrum(h, e, false)
	return string(h.Sum(nil))
}

// Request keys a whole canonicalized request, scan numbers included —
// the form a front-end needs when it caches rendered response bytes,
// which embed each query's scan.
func (k Keyer) Request(qs []spectrum.Experimental) string {
	h := sha256.New()
	h.Write(k.prefix[:])
	for _, e := range qs {
		hashSpectrum(h, e, true)
	}
	return string(h.Sum(nil))
}
