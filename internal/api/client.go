package api

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strings"
	"time"
)

// StatusError is a non-2xx HTTP reply, carrying the status code and the
// server's ErrorResponse message (or a body excerpt when the body is not
// an ErrorResponse).
// The fields opt out of JSON explicitly: StatusError is a client-side
// error value, decoded from ErrorResponse but never itself on the wire.
type StatusError struct {
	Code    int    `json:"-"`
	Message string `json:"-"`
}

// Error renders the status and message in one line.
func (e *StatusError) Error() string {
	return fmt.Sprintf("api: server answered %d: %s", e.Code, e.Message)
}

// Client is a typed HTTP client for the serving tier's wire contract. It
// talks to anything exposing the /search, /healthz and /stats surface —
// one lbe-serve replica or an lbe-router front-end — with per-request
// deadlines and bounded, jitter-backed retries on transport errors and
// overload statuses.
//
// The zero value of every tunable falls back to its DefaultClient value;
// construct with New for a ready-to-use client.
type Client struct {
	// BaseURL is the service root, e.g. "http://127.0.0.1:8417". A
	// trailing slash is trimmed. Client configuration is never
	// JSON-encoded, so every field opts out of the wire explicitly.
	BaseURL string `json:"-"`
	// HTTPClient performs the requests; nil uses http.DefaultClient.
	// Deadlines come from the per-attempt Timeout, not the http.Client.
	HTTPClient *http.Client `json:"-"`
	// Timeout is the per-attempt deadline layered onto the caller's
	// context; 0 or negative applies no deadline beyond the context's.
	Timeout time.Duration `json:"-"`
	// Retries is the number of additional attempts after the first, spent
	// only on transport errors and retryable statuses (429, 500, 502,
	// 503, 504). Negative means no retries.
	Retries int `json:"-"`
	// RetryBackoff is the base delay before the first retry; subsequent
	// retries double it, and every wait is jittered to ±50% so synchronized
	// clients do not retry in lockstep. 0 uses 100ms.
	RetryBackoff time.Duration `json:"-"`
}

// New returns a Client for the service root with the package defaults:
// 30s per-attempt deadline, 2 retries, 100ms base backoff.
func New(baseURL string) *Client {
	return &Client{
		BaseURL:      baseURL,
		Timeout:      30 * time.Second,
		Retries:      2,
		RetryBackoff: 100 * time.Millisecond,
	}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTPClient != nil {
		return c.HTTPClient
	}
	return http.DefaultClient
}

// retryableStatus reports whether a status signals transient overload
// worth retrying: searches are pure reads, so re-sending is safe.
func retryableStatus(status int) bool {
	switch status {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// backoff returns the jittered wait before retry attempt n (0-based):
// base<<n scaled by a uniform factor in [0.5, 1.5).
func (c *Client) backoff(n int) time.Duration {
	base := c.RetryBackoff
	if base <= 0 {
		base = 100 * time.Millisecond
	}
	d := base << n
	if max := 5 * time.Second; d > max {
		d = max
	}
	return time.Duration(float64(d) * (0.5 + rand.Float64()))
}

// Do sends one request to path (joined to BaseURL) with bounded retries
// and returns the final status and raw response body. body may be nil
// for GETs. Do returns an error only when no attempt produced an HTTP
// response (transport failure or expired context); any received status,
// including errors, is returned to the caller verbatim — the router
// relies on this to pass replica responses through byte for byte.
func (c *Client) Do(ctx context.Context, method, path string, body []byte) (int, []byte, error) {
	return c.do(ctx, method, path, body, nil)
}

// do is Do with a pluggable acceptance test: a reply for which accept
// reports true is final and returned without burning retries. nil
// accepts every non-retryable status.
func (c *Client) do(ctx context.Context, method, path string, body []byte, accept func(status int, data []byte) bool) (int, []byte, error) {
	if accept == nil {
		accept = func(status int, _ []byte) bool { return !retryableStatus(status) }
	}
	url := strings.TrimRight(c.BaseURL, "/") + path
	retries := c.Retries
	if retries < 0 {
		retries = 0
	}
	var lastErr error
	for attempt := 0; ; attempt++ {
		status, data, err := c.attempt(ctx, method, url, body)
		if err == nil && accept(status, data) {
			return status, data, nil
		}
		if err != nil {
			lastErr = err
		} else {
			lastErr = &StatusError{Code: status, Message: errorMessage(data)}
		}
		if attempt >= retries {
			if err == nil {
				// The last attempt got a real (retryable) reply; hand it
				// to the caller rather than swallowing it.
				return status, data, nil
			}
			return 0, nil, fmt.Errorf("api: %s %s: %w", method, url, lastErr)
		}
		select {
		case <-time.After(c.backoff(attempt)):
		case <-ctx.Done():
			return 0, nil, fmt.Errorf("api: %s %s: %w", method, url, ctx.Err())
		}
	}
}

// attempt performs a single HTTP exchange under the per-attempt deadline.
func (c *Client) attempt(ctx context.Context, method, url string, body []byte) (int, []byte, error) {
	if c.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, c.Timeout)
		defer cancel()
	}
	var rd io.Reader
	if body != nil {
		rd = bytes.NewReader(body)
	}
	req, err := http.NewRequestWithContext(ctx, method, url, rd)
	if err != nil {
		return 0, nil, err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return 0, nil, err
	}
	return resp.StatusCode, data, nil
}

// errorMessage extracts the server's error string from a non-200 body.
func errorMessage(data []byte) string {
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return er.Error
	}
	msg := strings.TrimSpace(string(data))
	if len(msg) > 200 {
		msg = msg[:200] + "..."
	}
	return msg
}

// exchangeJSON runs one retried request and decodes a 200 reply into
// out. Non-200 replies that survive the retry budget surface as
// *StatusError.
func (c *Client) exchangeJSON(ctx context.Context, method, path string, body []byte, out any) error {
	status, data, err := c.Do(ctx, method, path, body)
	if err != nil {
		return err
	}
	if status != http.StatusOK {
		return &StatusError{Code: status, Message: errorMessage(data)}
	}
	if err := json.Unmarshal(data, out); err != nil {
		return fmt.Errorf("api: decoding %s response: %w", path, err)
	}
	return nil
}

// Search posts the request to /search and decodes the response. The
// error is a *StatusError for non-200 replies that made it through the
// retry budget.
func (c *Client) Search(ctx context.Context, req SearchRequest) (*SearchResponse, error) {
	body, err := json.Marshal(req)
	if err != nil {
		return nil, fmt.Errorf("api: encoding search request: %w", err)
	}
	var sr SearchResponse
	if err := c.exchangeJSON(ctx, http.MethodPost, "/search", body, &sr); err != nil {
		return nil, err
	}
	return &sr, nil
}

// SearchSpectra is Search over engine query spectra: it wraps them in
// wire form and posts them as one request.
func (c *Client) SearchSpectra(ctx context.Context, qs ...SpectrumJSON) (*SearchResponse, error) {
	return c.Search(ctx, SearchRequest{Spectra: qs})
}

// Health fetches /healthz. A draining server answers 503 with a valid
// HealthResponse body; Health accepts that reply on the first attempt —
// it is a final answer, not a transient failure worth retrying — and
// returns the body with a nil error, leaving Status to the caller, so a
// prober can distinguish "draining" from "gone". Statuses whose bodies
// are not HealthResponses surface as *StatusError.
func (c *Client) Health(ctx context.Context) (*HealthResponse, error) {
	decode := func(data []byte) *HealthResponse {
		var h HealthResponse
		if json.Unmarshal(data, &h) == nil && h.Status != "" {
			return &h
		}
		return nil
	}
	status, data, err := c.do(ctx, http.MethodGet, "/healthz", nil,
		func(status int, data []byte) bool {
			return decode(data) != nil || !retryableStatus(status)
		})
	if err != nil {
		return nil, err
	}
	if h := decode(data); h != nil {
		return h, nil
	}
	return nil, &StatusError{Code: status, Message: errorMessage(data)}
}

// Stats fetches and decodes /stats from an lbe-serve replica.
func (c *Client) Stats(ctx context.Context) (*StatsResponse, error) {
	var st StatsResponse
	if err := c.exchangeJSON(ctx, http.MethodGet, "/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}

// RouterStats fetches and decodes /stats from an lbe-router front-end.
func (c *Client) RouterStats(ctx context.Context) (*RouterStatsResponse, error) {
	var st RouterStatsResponse
	if err := c.exchangeJSON(ctx, http.MethodGet, "/stats", nil, &st); err != nil {
		return nil, err
	}
	return &st, nil
}
