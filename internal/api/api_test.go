package api

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"lbe/internal/spectrum"
)

func testClient(ts *httptest.Server, retries int) *Client {
	c := New(ts.URL)
	c.HTTPClient = ts.Client()
	c.Retries = retries
	c.RetryBackoff = time.Millisecond
	return c
}

// TestSpectrumRoundTrip: engine query -> wire -> engine query is the
// identity on the searched fields.
func TestSpectrumRoundTrip(t *testing.T) {
	e := spectrum.Experimental{
		Scan:        7,
		PrecursorMZ: 512.77,
		Charge:      2,
		Peaks:       []spectrum.Peak{{MZ: 147.11, Intensity: 1}, {MZ: 262.14, Intensity: 0.5}},
	}
	back, err := FromExperimental(e).Experimental()
	if err != nil {
		t.Fatal(err)
	}
	if back.Scan != e.Scan || back.PrecursorMZ != e.PrecursorMZ || back.Charge != e.Charge ||
		len(back.Peaks) != len(e.Peaks) || back.Peaks[0] != e.Peaks[0] || back.Peaks[1] != e.Peaks[1] {
		t.Fatalf("round trip changed the spectrum: %+v -> %+v", e, back)
	}

	// Unsorted peaks arrive sorted; invalid spectra are rejected.
	sj := SpectrumJSON{PrecursorMZ: 500, Peaks: [][2]float64{{300, 1}, {100, 2}}}
	exp, err := sj.Experimental()
	if err != nil {
		t.Fatal(err)
	}
	if exp.Peaks[0].MZ != 100 {
		t.Fatalf("peaks not sorted: %+v", exp.Peaks)
	}
	if _, err := (SpectrumJSON{PrecursorMZ: -5, Peaks: [][2]float64{{100, 1}}}).Experimental(); err == nil {
		t.Fatal("invalid spectrum passed validation")
	}
}

// TestClientRetriesTransientFailures: 503s burn retry attempts, then a
// 200 goes through; the attempt count is bounded.
func TestClientRetriesTransientFailures(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if calls.Add(1) <= 2 {
			WriteError(w, http.StatusServiceUnavailable, "warming up")
			return
		}
		WriteJSON(w, http.StatusOK, SearchResponse{Results: []QueryResult{{Scan: 1}}})
	}))
	defer ts.Close()

	c := testClient(ts, 2)
	sr, err := c.SearchSpectra(context.Background(), SpectrumJSON{PrecursorMZ: 500, Peaks: [][2]float64{{100, 1}}})
	if err != nil {
		t.Fatal(err)
	}
	if len(sr.Results) != 1 || sr.Results[0].Scan != 1 {
		t.Fatalf("unexpected response: %+v", sr)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3", got)
	}
}

// TestClientRetryBudgetBounded: a persistent 503 surfaces as a
// StatusError after exactly 1+Retries attempts; a 400 is never retried.
func TestClientRetryBudgetBounded(t *testing.T) {
	var calls atomic.Int64
	status := int32(http.StatusServiceUnavailable)
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, int(atomic.LoadInt32(&status)), "nope")
	}))
	defer ts.Close()

	c := testClient(ts, 2)
	_, err := c.Stats(context.Background())
	var se *StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want StatusError 503, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("server saw %d attempts, want 3 (1 + 2 retries)", got)
	}

	calls.Store(0)
	atomic.StoreInt32(&status, http.StatusBadRequest)
	_, err = c.SearchSpectra(context.Background(), SpectrumJSON{PrecursorMZ: 500, Peaks: [][2]float64{{100, 1}}})
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want StatusError 400, got %v", err)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("client retried a 400: %d attempts", got)
	}
}

// TestHealthDecodesDraining: a 503 carrying a HealthResponse body (the
// draining server) decodes instead of erroring, so probers can tell
// draining from dead — and it is accepted as final on the first attempt
// instead of burning the retry budget on a correct answer.
func TestHealthDecodesDraining(t *testing.T) {
	var calls atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteJSON(w, http.StatusServiceUnavailable, HealthResponse{Status: "draining", Shards: 2, Digest: "abc"})
	}))
	defer ts.Close()

	c := testClient(ts, 2)
	h, err := c.Health(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if h.Status != "draining" || h.Digest != "abc" {
		t.Fatalf("unexpected health: %+v", h)
	}
	if got := calls.Load(); got != 1 {
		t.Fatalf("draining health burned %d attempts, want 1", got)
	}

	// A 503 that is not a health body still retries, then errors.
	calls.Store(0)
	bare := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		calls.Add(1)
		WriteError(w, http.StatusServiceUnavailable, "not health")
	}))
	defer bare.Close()
	cb := testClient(bare, 2)
	var se *StatusError
	if _, err := cb.Health(context.Background()); !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("want StatusError 503, got %v", err)
	}
	if got := calls.Load(); got != 3 {
		t.Fatalf("non-health 503 saw %d attempts, want 3", got)
	}
}

// TestClientHonorsContext: an expired caller context cuts the retry loop
// short.
func TestClientHonorsContext(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		WriteError(w, http.StatusServiceUnavailable, "busy")
	}))
	defer ts.Close()

	c := testClient(ts, 1000)
	c.RetryBackoff = 50 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := c.Stats(ctx)
	if err == nil {
		t.Fatal("expected an error")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("retry loop outlived its context: %v", elapsed)
	}
}

// TestFormatMetrics spot-checks the Prometheus exposition rendering.
func TestFormatMetrics(t *testing.T) {
	st := StatsResponse{
		Status:   "ok",
		Shards:   2,
		Searched: 42,
		QueueLen: 3,
		PerShard: []ShardStatsJSON{{Rank: 0, WorkUnits: 10}, {Rank: 1, WorkUnits: 20}},
		Scheduler: SchedulerStatsJSON{
			Stealing:  true,
			PerWorker: []WorkerStatsJSON{{Worker: 0, WorkUnits: 30}},
		},
	}
	text := string(FormatMetrics(&st))
	for _, want := range []string{
		"# HELP lbe_queries_searched_total",
		"# TYPE lbe_queries_searched_total counter",
		"lbe_queries_searched_total 42",
		"lbe_draining 0",
		"lbe_queue_len 3",
		`lbe_shard_work_units_total{shard="1"} 20`,
		`lbe_worker_work_units_total{worker="0"} 30`,
		"lbe_sched_stealing 1",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("metrics missing %q:\n%s", want, text)
		}
	}

	rt := RouterStatsResponse{
		Status:    "ok",
		Routed:    7,
		Failovers: 1,
		Replicas: []RouterReplicaJSON{
			{URL: "http://a", Healthy: true, Routed: 5},
			{URL: "http://b", Healthy: false, DigestMismatch: true},
		},
		Aggregate: st,
	}
	text = string(FormatRouterMetrics(&rt))
	for _, want := range []string{
		"lbe_router_requests_routed_total 7",
		"lbe_router_failovers_total 1",
		`lbe_router_replica_up{replica="http://a"} 1`,
		`lbe_router_replica_up{replica="http://b"} 0`,
		`lbe_router_replica_consistent{replica="http://b"} 0`,
		"lbe_queries_searched_total 42",
	} {
		if !strings.Contains(text, want) {
			t.Errorf("router metrics missing %q:\n%s", want, text)
		}
	}
}
