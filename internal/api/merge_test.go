package api

import (
	"encoding/json"
	"reflect"
	"testing"
)

func psm(peptide uint32, score float64, shard int) PSMJSON {
	return PSMJSON{Peptide: peptide, Score: score, Shared: 3, Precursor: 500.25, Shard: shard}
}

// TestMergeSearchResponses is the table-driven contract of the
// scatter/gather merge: ordering, truncation, empty sets, duplicate
// rows, and the refuse-to-guess error paths.
func TestMergeSearchResponses(t *testing.T) {
	cases := []struct {
		name    string
		parts   []SearchResponse
		topK    int
		want    SearchResponse
		wantErr bool
	}{
		{
			name: "interleaves by score and truncates to topK",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 1, PSMs: []PSMJSON{psm(0, 9, 0), psm(2, 5, 0)}}}},
				{Results: []QueryResult{{Scan: 1, PSMs: []PSMJSON{psm(5, 7, 2), psm(6, 4, 2)}}}},
			},
			topK: 3,
			want: SearchResponse{Results: []QueryResult{
				{Scan: 1, PSMs: []PSMJSON{psm(0, 9, 0), psm(5, 7, 2), psm(2, 5, 0)}},
			}},
		},
		{
			name: "equal scores order by peptide index",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 4, PSMs: []PSMJSON{psm(9, 6, 1)}}}},
				{Results: []QueryResult{{Scan: 4, PSMs: []PSMJSON{psm(3, 6, 2)}}}},
			},
			want: SearchResponse{Results: []QueryResult{
				{Scan: 4, PSMs: []PSMJSON{psm(3, 6, 2), psm(9, 6, 1)}},
			}},
		},
		{
			name: "empty shard-set results merge cleanly",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 2, PSMs: []PSMJSON{}}, {Scan: 3, PSMs: []PSMJSON{psm(1, 2, 0)}}}},
				{Results: []QueryResult{{Scan: 2, PSMs: []PSMJSON{}}, {Scan: 3, PSMs: []PSMJSON{}}}},
			},
			want: SearchResponse{Results: []QueryResult{
				{Scan: 2, PSMs: []PSMJSON{}},
				{Scan: 3, PSMs: []PSMJSON{psm(1, 2, 0)}},
			}},
		},
		{
			name: "duplicate rows from a misbehaving set stay deterministic",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 1, PSMs: []PSMJSON{psm(4, 8, 1)}}}},
				{Results: []QueryResult{{Scan: 1, PSMs: []PSMJSON{psm(4, 8, 1)}}}},
			},
			topK: 1,
			want: SearchResponse{Results: []QueryResult{
				{Scan: 1, PSMs: []PSMJSON{psm(4, 8, 1)}},
			}},
		},
		{
			name:    "no responses",
			parts:   nil,
			wantErr: true,
		},
		{
			name: "result count mismatch",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 1}, {Scan: 2}}},
				{Results: []QueryResult{{Scan: 1}}},
			},
			wantErr: true,
		},
		{
			name: "scan mismatch",
			parts: []SearchResponse{
				{Results: []QueryResult{{Scan: 1}}},
				{Results: []QueryResult{{Scan: 2}}},
			},
			wantErr: true,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, err := MergeSearchResponses(tc.parts, tc.topK)
			if tc.wantErr {
				if err == nil {
					t.Fatal("expected an error")
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(got, tc.want) {
				t.Fatalf("merged:\n got %+v\nwant %+v", got, tc.want)
			}
		})
	}
}

// TestMergeRendersEmptyPSMsAsArray pins the byte-level detail the
// scatter path depends on: a query with no matches must render
// "psms":[] exactly as BuildSearchResponse does, never "psms":null.
func TestMergeRendersEmptyPSMsAsArray(t *testing.T) {
	merged, err := MergeSearchResponses([]SearchResponse{
		{Results: []QueryResult{{Scan: 7, PSMs: []PSMJSON{}}}},
	}, 5)
	if err != nil {
		t.Fatal(err)
	}
	doc, err := json.Marshal(merged)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"results":[{"scan":7,"psms":[]}]}`
	if string(doc) != want {
		t.Fatalf("rendered %s, want %s", doc, want)
	}
}
