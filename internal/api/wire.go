// Package api is the single home of the LBE serving tier's JSON wire
// contract — the request/response types spoken on /search, /healthz and
// /stats by lbe-serve, routed unchanged by lbe-router, and consumed by
// lbe-client — plus a typed HTTP client over that contract. Before this
// package the types lived in internal/server and were re-declared inline
// by every consumer; now server, router, client, bench and tests all
// import one definition, so the wire format cannot drift between them.
package api

import (
	"encoding/json"
	"fmt"
	"net/http"

	"lbe/internal/engine"
	"lbe/internal/spectrum"
)

// SearchRequest is the JSON body of POST /search: one or more query
// spectra searched as a unit. Single-spectrum requests are the expected
// serving shape; the server's coalescer merges concurrent ones into
// larger engine batches.
type SearchRequest struct {
	Spectra []SpectrumJSON `json:"spectra"`
}

// SpectrumJSON is one query spectrum on the wire. Peaks are [m/z,
// intensity] pairs and need not be sorted; the server sorts them.
type SpectrumJSON struct {
	Scan          int          `json:"scan,omitempty"`
	PrecursorMZ   float64      `json:"precursor_mz"`
	Charge        int          `json:"charge,omitempty"`
	RetentionTime float64      `json:"retention_time,omitempty"`
	Peaks         [][2]float64 `json:"peaks"`
}

// FromExperimental converts an engine query spectrum to its wire form.
func FromExperimental(e spectrum.Experimental) SpectrumJSON {
	sj := SpectrumJSON{
		Scan:          e.Scan,
		PrecursorMZ:   e.PrecursorMZ,
		Charge:        e.Charge,
		RetentionTime: e.RetentionTime,
		Peaks:         make([][2]float64, len(e.Peaks)),
	}
	for i, p := range e.Peaks {
		sj.Peaks[i] = [2]float64{p.MZ, p.Intensity}
	}
	return sj
}

// Experimental converts the wire spectrum to the engine's query type,
// sorting the peaks and validating the result.
func (sj SpectrumJSON) Experimental() (spectrum.Experimental, error) {
	e := spectrum.Experimental{
		Scan:          sj.Scan,
		PrecursorMZ:   sj.PrecursorMZ,
		Charge:        sj.Charge,
		RetentionTime: sj.RetentionTime,
		Peaks:         make([]spectrum.Peak, len(sj.Peaks)),
	}
	for i, p := range sj.Peaks {
		e.Peaks[i] = spectrum.Peak{MZ: p[0], Intensity: p[1]}
	}
	e.SortPeaks()
	if err := e.Validate(); err != nil {
		return e, err
	}
	return e, nil
}

// SearchResponse is the JSON body of a successful /search: one entry per
// request spectrum, in request order.
type SearchResponse struct {
	Results []QueryResult `json:"results"`
}

// QueryResult holds one query's matches, best-first, TopK applied.
type QueryResult struct {
	Scan int       `json:"scan"`
	PSMs []PSMJSON `json:"psms"`
}

// PSMJSON is one peptide-to-spectrum match on the wire.
type PSMJSON struct {
	Peptide   uint32  `json:"peptide"`
	Sequence  string  `json:"sequence,omitempty"`
	Score     float64 `json:"score"`
	Shared    uint16  `json:"shared"`
	Precursor float64 `json:"precursor"`
	Shard     int     `json:"shard"`
}

// BuildSearchResponse assembles the wire response for one slice of
// engine results: qs[i] answered by psms[i]. peptides may be nil, in
// which case matched sequences are omitted. The server renders every
// /search reply through this function, so a test that needs the exact
// bytes a server would send for a direct Session.Search result can
// marshal this instead of re-deriving the mapping.
func BuildSearchResponse(qs []spectrum.Experimental, psms [][]engine.PSM, peptides []string) SearchResponse {
	out := SearchResponse{Results: make([]QueryResult, len(qs))}
	for q := range qs {
		qr := QueryResult{Scan: qs[q].Scan, PSMs: make([]PSMJSON, len(psms[q]))}
		for i, p := range psms[q] {
			pj := PSMJSON{
				Peptide:   p.Peptide,
				Score:     p.Score,
				Shared:    p.Shared,
				Precursor: p.Precursor,
				Shard:     p.Origin,
			}
			if int(p.Peptide) < len(peptides) {
				pj.Sequence = peptides[p.Peptide]
			}
			qr.PSMs[i] = pj
		}
		out.Results[q] = qr
	}
	return out
}

// ShardSetJSON announces on /healthz and /stats which slice of a
// partitioned store a replica holds (engine.Session.ShardSet). A
// scatter/gather router discovers the cluster topology entirely from
// these announcements: no static topology file exists. TopK rides along
// because the front-end merge must truncate the per-set union to the
// same depth a whole-store session would.
type ShardSetJSON struct {
	Set         int `json:"set"`
	Sets        int `json:"sets"`
	TotalShards int `json:"total_shards"`
	TopK        int `json:"topk"`
}

// HealthResponse is the JSON body of /healthz. Digest is the serving
// session's store-consistency digest (engine.Session.Digest): replicas
// answering with different digests are serving different databases, and
// the router's consistency gate refuses to mix them. ShardSet is present
// when the replica serves one shard-set of a partitioned store.
type HealthResponse struct {
	Status   string        `json:"status"`
	Shards   int           `json:"shards"`
	Groups   int           `json:"groups"`
	Digest   string        `json:"digest,omitempty"`
	ShardSet *ShardSetJSON `json:"shard_set,omitempty"`
}

// ShardStatsJSON is one shard's lifetime load in /stats.
// PrunedPostings counts postings the precursor-windowed kernel skipped —
// work the full scan would have paid; it is not part of work_units, which
// stay the deterministic balance figure.
type ShardStatsJSON struct {
	Rank           int     `json:"rank"`
	Peptides       int     `json:"peptides"`
	Rows           int     `json:"rows"`
	IndexBytes     int     `json:"index_bytes"`
	WorkUnits      int64   `json:"work_units"`
	PrunedPostings int64   `json:"pruned_postings"`
	QueryMillis    float64 `json:"query_ms"`
}

// WorkerStatsJSON is one scheduler worker's lifetime share in /stats.
// The spread of work_units across workers is the intra-node balance the
// work-stealing execution layer exists to flatten.
type WorkerStatsJSON struct {
	Worker         int     `json:"worker"`
	Chunks         int     `json:"chunks"`
	Stolen         int     `json:"chunks_stolen"`
	Steals         int     `json:"steals"`
	WorkUnits      int64   `json:"work_units"`
	PrunedPostings int64   `json:"pruned_postings"`
	BusyMillis     float64 `json:"busy_ms"`
}

// SchedulerStatsJSON summarizes a session's work-stealing execution
// layer in /stats.
type SchedulerStatsJSON struct {
	Stealing  bool              `json:"stealing"`
	ChunkSize int               `json:"chunk_size"`
	Batches   int64             `json:"batches"`
	Chunks    int64             `json:"chunks"`
	Steals    int64             `json:"steals"`
	Stolen    int64             `json:"chunks_stolen"`
	PerWorker []WorkerStatsJSON `json:"per_worker"`
}

// CacheStatsJSON is the answer cache's counter block in /stats, present
// on both tiers when caching is enabled. ResidentBytes/CapacityBytes are
// gauges; the rest are lifetime counters.
type CacheStatsJSON struct {
	Hits          int64 `json:"hits"`
	Misses        int64 `json:"misses"`
	Evictions     int64 `json:"evictions"`
	Collapsed     int64 `json:"singleflight_collapsed"`
	Invalidated   int64 `json:"invalidated"`
	Entries       int   `json:"entries"`
	ResidentBytes int64 `json:"resident_bytes"`
	CapacityBytes int64 `json:"capacity_bytes"`
}

// Add accumulates o into c, for aggregating replica caches at the router.
// Gauges sum too: the aggregate reports cluster-wide residency/capacity.
func (c *CacheStatsJSON) Add(o CacheStatsJSON) {
	c.Hits += o.Hits
	c.Misses += o.Misses
	c.Evictions += o.Evictions
	c.Collapsed += o.Collapsed
	c.Invalidated += o.Invalidated
	c.Entries += o.Entries
	c.ResidentBytes += o.ResidentBytes
	c.CapacityBytes += o.CapacityBytes
}

// StatsResponse is the JSON body of /stats on lbe-serve: session-lifetime
// engine figures plus the server's admission and coalescing counters.
// QueueLen and InFlight are the live load figures a router's least-loaded
// dispatch reads.
type StatsResponse struct {
	Status         string             `json:"status"`
	Digest         string             `json:"digest,omitempty"`
	ShardSet       *ShardSetJSON      `json:"shard_set,omitempty"`
	Shards         int                `json:"shards"`
	Groups         int                `json:"groups"`
	IndexBytes     int                `json:"index_bytes"`
	MappingBytes   int                `json:"mapping_bytes"`
	Searched       int64              `json:"searched"`
	PrunedPostings int64              `json:"pruned_postings"`
	SessionBatches int64              `json:"session_batches"`
	Accepted       int64              `json:"requests_accepted"`
	RejectedQueue  int64              `json:"requests_rejected_queue_full"`
	RejectedDrain  int64              `json:"requests_rejected_draining"`
	Batches        int64              `json:"coalesced_batches"`
	BatchedQueries int64              `json:"coalesced_queries"`
	QueueLen       int                `json:"queue_len"`
	QueueDepth     int                `json:"queue_depth"`
	InFlight       int                `json:"in_flight"`
	BatchSize      int                `json:"batch_size"`
	FlushMicros    int64              `json:"flush_interval_us"`
	MaxInFlight    int                `json:"max_in_flight"`
	PerShard       []ShardStatsJSON   `json:"per_shard"`
	Scheduler      SchedulerStatsJSON `json:"scheduler"`
	Cache          *CacheStatsJSON    `json:"cache,omitempty"`
}

// RouterReplicaJSON is one replica's view in the router's /stats.
type RouterReplicaJSON struct {
	URL            string        `json:"url"`
	Healthy        bool          `json:"healthy"`
	DigestMismatch bool          `json:"digest_mismatch,omitempty"`
	Digest         string        `json:"digest,omitempty"`
	ShardSet       *ShardSetJSON `json:"shard_set,omitempty"`
	QueueLen       int           `json:"queue_len"`
	InFlight       int           `json:"in_flight"`
	RouterInFlight int64         `json:"router_in_flight"`
	Routed         int64         `json:"routed"`
	Failed         int64         `json:"failed"`
	ProbeAgeMillis int64         `json:"probe_age_ms"` // -1 before the first successful probe
	StatsAgeMillis int64         `json:"stats_age_ms"` // -1 before the first stats snapshot
}

// RouterScatterJSON is the scatter/gather block of the router's /stats:
// the discovered cluster shape, how many shard-sets currently have a
// consistent healthy holder, the per-set digests the cluster digest
// composes from, and the requests rejected because a shard-set had no
// holder (the explicit partial-failure path — never silent truncation).
type RouterScatterJSON struct {
	Sets            int      `json:"sets"`
	TotalShards     int      `json:"total_shards"`
	Covered         int      `json:"sets_covered"`
	SetDigests      []string `json:"set_digests,omitempty"`
	RejectedSetDown int64    `json:"requests_rejected_shard_set_down"`
}

// RouterStatsResponse is the JSON body of /stats on lbe-router: the
// routing counters, the per-replica registry, and an aggregate of the
// replicas' own StatsResponses (scalar counters summed over the replicas
// with a stats snapshot; per-shard and per-worker detail stays on the
// replicas).
type RouterStatsResponse struct {
	Status            string              `json:"status"`
	Digest            string              `json:"digest,omitempty"`
	Routed            int64               `json:"requests_routed"`
	Failovers         int64               `json:"failovers"`
	RejectedDrain     int64               `json:"requests_rejected_draining"`
	RejectedNoReplica int64               `json:"requests_rejected_no_replica"`
	Scatter           *RouterScatterJSON  `json:"scatter,omitempty"`
	Replicas          []RouterReplicaJSON `json:"replicas"`
	Cache             *CacheStatsJSON     `json:"cache,omitempty"`
	Aggregate         StatsResponse       `json:"aggregate"`
}

// ErrorResponse is the JSON body of every non-200 reply.
type ErrorResponse struct {
	Error string `json:"error"`
}

// WriteJSON renders v as the response body with the given status.
func WriteJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The response was fully assembled from plain data, so encoding can
	// only fail on a dead connection; nothing useful to do then.
	_ = enc.Encode(v)
}

// WriteError renders an ErrorResponse with the given status.
func WriteError(w http.ResponseWriter, status int, format string, args ...any) {
	WriteJSON(w, status, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}
