package api

import (
	"fmt"
	"sort"
)

// Scatter/gather merge: a scatter router fans one /search body to one
// holder per shard-set and gathers one SearchResponse per set. Because a
// peptide lives in exactly one shard of exactly one set, the per-set
// responses are disjoint candidate lists; re-sorting their union with
// the engine's deterministic comparator and truncating to the session's
// TopK reproduces — byte for byte — the response a single whole-store
// session would have rendered:
//
//   - the per-set top-K union contains the global top-K (a globally
//     top-K PSM is top-K within its own set a fortiori);
//   - the comparator (Score desc, Peptide asc, Precursor asc, Shared
//     desc) mirrors the engine's sortPSMs, and PSMs tying on all four
//     keys render identical rows (Sequence and Shard are functions of
//     Peptide), so any tie order yields the same bytes;
//   - float64 JSON round-trips exactly (shortest-representation
//     marshaling), so decode → merge → re-encode preserves every score.

// SortPSMs orders wire PSMs with the engine's deterministic comparator
// (engine sortPSMs on the rendered fields): Score descending, then
// Peptide, then Precursor ascending, then Shared descending. It is the
// ordering every /search response already arrives in; the scatter merge
// re-applies it to the per-set union.
func SortPSMs(psms []PSMJSON) {
	sort.Slice(psms, func(i, j int) bool {
		a, b := psms[i], psms[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		if a.Peptide != b.Peptide {
			return a.Peptide < b.Peptide
		}
		if a.Precursor != b.Precursor {
			return a.Precursor < b.Precursor
		}
		return a.Shared > b.Shared
	})
}

// MergeSearchResponses gathers one per-shard-set /search response into
// the response a whole-store session would produce: per query, the
// per-set PSM lists are concatenated, re-sorted with SortPSMs, and
// truncated to topK (topK <= 0 keeps everything). Every part must carry
// the same number of results with the same scans in the same order —
// anything else means the sets answered different requests, and the
// merge refuses rather than guess.
func MergeSearchResponses(parts []SearchResponse, topK int) (SearchResponse, error) {
	if len(parts) == 0 {
		return SearchResponse{}, fmt.Errorf("api: merge: no responses")
	}
	n := len(parts[0].Results)
	for i, p := range parts[1:] {
		if len(p.Results) != n {
			return SearchResponse{}, fmt.Errorf("api: merge: response %d has %d results, response 0 has %d",
				i+1, len(p.Results), n)
		}
	}
	out := SearchResponse{Results: make([]QueryResult, n)}
	for q := 0; q < n; q++ {
		scan := parts[0].Results[q].Scan
		total := 0
		for i, p := range parts {
			if p.Results[q].Scan != scan {
				return SearchResponse{}, fmt.Errorf("api: merge: result %d scan %d in response %d, response 0 says %d",
					q, p.Results[q].Scan, i, scan)
			}
			total += len(p.Results[q].PSMs)
		}
		// Non-nil even when empty, so the merged body renders "psms":[]
		// exactly as BuildSearchResponse does.
		merged := make([]PSMJSON, 0, total)
		for _, p := range parts {
			merged = append(merged, p.Results[q].PSMs...)
		}
		SortPSMs(merged)
		if topK > 0 && len(merged) > topK {
			merged = merged[:topK]
		}
		out.Results[q] = QueryResult{Scan: scan, PSMs: merged}
	}
	return out, nil
}
