package api

import (
	"bytes"
	"fmt"
)

// Prometheus text exposition (version 0.0.4), hand-rolled so the serving
// tier's telemetry — the ROADMAP's "Prometheus-format /metrics from the
// existing SchedulerStats + shard stats" item — costs no dependency. The
// gauges and counters below are a direct rendering of StatsResponse:
// lbe-serve exposes its own, and lbe-router exposes the aggregate it
// already keeps for /stats plus its routing counters.

// metricsWriter accumulates one exposition document, emitting each
// metric's HELP/TYPE header once.
type metricsWriter struct {
	buf bytes.Buffer
}

func (m *metricsWriter) header(name, help, typ string) {
	fmt.Fprintf(&m.buf, "# HELP %s %s\n# TYPE %s %s\n", name, help, name, typ)
}

func (m *metricsWriter) value(name, labels string, v float64) {
	if labels != "" {
		labels = "{" + labels + "}"
	}
	fmt.Fprintf(&m.buf, "%s%s %g\n", name, labels, v)
}

func (m *metricsWriter) simple(name, help, typ string, v float64) {
	m.header(name, help, typ)
	m.value(name, "", v)
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}

// appendStats renders one StatsResponse under the lbe_ metric names.
func (m *metricsWriter) appendStats(st *StatsResponse) {
	m.simple("lbe_draining", "Whether the service is draining (1) or serving (0).", "gauge", b2f(st.Status != "ok"))
	if st.Digest != "" {
		m.header("lbe_index_info", "Store identity: the consistency digest replicas must agree on (always 1).", "gauge")
		m.value("lbe_index_info", fmt.Sprintf(`digest=%q`, st.Digest), 1)
	}
	if ss := st.ShardSet; ss != nil {
		m.simple("lbe_shard_set", "Shard-set ordinal this replica holds (partitioned stores).", "gauge", float64(ss.Set))
		m.simple("lbe_shard_sets", "Shard-set count in the replica's partition topology.", "gauge", float64(ss.Sets))
		m.simple("lbe_shard_set_total_shards", "Total shards across the replica's partition topology.", "gauge", float64(ss.TotalShards))
		m.simple("lbe_shard_set_topk", "Per-set result depth the scatter merge truncates to.", "gauge", float64(ss.TopK))
	}
	m.simple("lbe_shards", "Index shards held by the session(s).", "gauge", float64(st.Shards))
	m.simple("lbe_groups", "LBE peptide groups formed over the database.", "gauge", float64(st.Groups))
	m.simple("lbe_index_bytes", "Resident shard-index bytes.", "gauge", float64(st.IndexBytes))
	m.simple("lbe_mapping_bytes", "Master mapping table bytes.", "gauge", float64(st.MappingBytes))
	m.simple("lbe_queries_searched_total", "Queries served over the session lifetime.", "counter", float64(st.Searched))
	m.simple("lbe_pruned_postings_total", "Postings skipped by the precursor-windowed scan (full-scan work avoided).", "counter", float64(st.PrunedPostings))
	m.simple("lbe_session_batches_total", "Merged pipeline batches the engine executed.", "counter", float64(st.SessionBatches))
	m.simple("lbe_requests_accepted_total", "Requests admitted through the bounded queue.", "counter", float64(st.Accepted))

	m.header("lbe_requests_rejected_total", "Requests rejected, by reason.", "counter")
	m.value("lbe_requests_rejected_total", `reason="queue_full"`, float64(st.RejectedQueue))
	m.value("lbe_requests_rejected_total", `reason="draining"`, float64(st.RejectedDrain))

	m.simple("lbe_coalesced_batches_total", "Merged batches dispatched by the coalescer.", "counter", float64(st.Batches))
	m.simple("lbe_coalesced_queries_total", "Queries carried by coalesced batches.", "counter", float64(st.BatchedQueries))
	m.simple("lbe_queue_len", "Requests waiting on the admission queue.", "gauge", float64(st.QueueLen))
	m.simple("lbe_queue_depth", "Admission queue capacity.", "gauge", float64(st.QueueDepth))
	m.simple("lbe_inflight_batches", "Coalesced batches currently searching.", "gauge", float64(st.InFlight))
	m.simple("lbe_max_inflight_batches", "In-flight batch slot capacity.", "gauge", float64(st.MaxInFlight))
	m.simple("lbe_coalesce_batch_size", "Coalescer flush threshold (queries per batch).", "gauge", float64(st.BatchSize))
	m.simple("lbe_coalesce_flush_interval_us", "Coalescer flush interval in microseconds.", "gauge", float64(st.FlushMicros))

	if len(st.PerShard) > 0 {
		m.header("lbe_shard_peptides", "Database peptides indexed by the shard.", "gauge")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_peptides", fmt.Sprintf(`shard="%d"`, sh.Rank), float64(sh.Peptides))
		}
		m.header("lbe_shard_rows", "Index rows (peptide variants) held by the shard.", "gauge")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_rows", fmt.Sprintf(`shard="%d"`, sh.Rank), float64(sh.Rows))
		}
		m.header("lbe_shard_index_bytes", "Resident index bytes held by the shard.", "gauge")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_index_bytes", fmt.Sprintf(`shard="%d"`, sh.Rank), float64(sh.IndexBytes))
		}
		m.header("lbe_shard_work_units_total", "Deterministic work units per shard.", "counter")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_work_units_total", fmt.Sprintf(`shard="%d"`, sh.Rank), float64(sh.WorkUnits))
		}
		m.header("lbe_shard_pruned_postings_total", "Postings skipped by the precursor-windowed scan, per shard.", "counter")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_pruned_postings_total", fmt.Sprintf(`shard="%d"`, sh.Rank), float64(sh.PrunedPostings))
		}
		m.header("lbe_shard_query_seconds_total", "Query wall time per shard.", "counter")
		for _, sh := range st.PerShard {
			m.value("lbe_shard_query_seconds_total", fmt.Sprintf(`shard="%d"`, sh.Rank), sh.QueryMillis/1e3)
		}
	}

	sc := st.Scheduler
	if st.Cache != nil {
		m.appendCache("lbe_cache", st.Cache)
	}

	m.simple("lbe_sched_stealing", "Whether work stealing is enabled.", "gauge", b2f(sc.Stealing))
	m.simple("lbe_sched_chunk_size", "Effective scheduler chunk granularity (queries).", "gauge", float64(sc.ChunkSize))
	m.simple("lbe_sched_batches_total", "Query batches the scheduler executed.", "counter", float64(sc.Batches))
	m.simple("lbe_sched_chunks_total", "Scheduler chunks executed.", "counter", float64(sc.Chunks))
	m.simple("lbe_sched_steals_total", "Steal-half operations performed.", "counter", float64(sc.Steals))
	m.simple("lbe_sched_chunks_stolen_total", "Chunks acquired by stealing.", "counter", float64(sc.Stolen))
	if len(sc.PerWorker) > 0 {
		m.header("lbe_worker_chunks_total", "Chunks executed per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_chunks_total", fmt.Sprintf(`worker="%d"`, w.Worker), float64(w.Chunks))
		}
		m.header("lbe_worker_chunks_stolen_total", "Chunks acquired by stealing, per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_chunks_stolen_total", fmt.Sprintf(`worker="%d"`, w.Worker), float64(w.Stolen))
		}
		m.header("lbe_worker_work_units_total", "Deterministic work units per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_work_units_total", fmt.Sprintf(`worker="%d"`, w.Worker), float64(w.WorkUnits))
		}
		m.header("lbe_worker_pruned_postings_total", "Postings skipped by the precursor-windowed scan, per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_pruned_postings_total", fmt.Sprintf(`worker="%d"`, w.Worker), float64(w.PrunedPostings))
		}
		m.header("lbe_worker_busy_seconds_total", "Busy wall time per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_busy_seconds_total", fmt.Sprintf(`worker="%d"`, w.Worker), w.BusyMillis/1e3)
		}
		m.header("lbe_worker_steals_total", "Steal operations per scheduler worker.", "counter")
		for _, w := range sc.PerWorker {
			m.value("lbe_worker_steals_total", fmt.Sprintf(`worker="%d"`, w.Worker), float64(w.Steals))
		}
	}
}

// appendCache renders one CacheStatsJSON block under the given metric
// name prefix ("lbe_cache" on replicas, "lbe_router_cache" on the
// router, where the aggregate already claims the plain lbe_cache names).
func (m *metricsWriter) appendCache(prefix string, cs *CacheStatsJSON) {
	m.simple(prefix+"_hits_total", "Answer cache hits.", "counter", float64(cs.Hits))
	m.simple(prefix+"_misses_total", "Answer cache misses (caller computed the value).", "counter", float64(cs.Misses))
	m.simple(prefix+"_evictions_total", "Entries evicted by the byte budget or TTL.", "counter", float64(cs.Evictions))
	m.simple(prefix+"_singleflight_collapsed_total", "Duplicate in-flight queries collapsed onto one computation.", "counter", float64(cs.Collapsed))
	m.simple(prefix+"_invalidated_total", "Entries dropped by digest-driven invalidation.", "counter", float64(cs.Invalidated))
	m.simple(prefix+"_entries", "Resident answer cache entries.", "gauge", float64(cs.Entries))
	m.simple(prefix+"_resident_bytes", "Resident answer cache bytes (keys + values + overhead).", "gauge", float64(cs.ResidentBytes))
	m.simple(prefix+"_capacity_bytes", "Configured answer cache byte budget.", "gauge", float64(cs.CapacityBytes))
}

// FormatMetrics renders one replica's StatsResponse as a Prometheus text
// exposition document.
func FormatMetrics(st *StatsResponse) []byte {
	var m metricsWriter
	m.appendStats(st)
	return m.buf.Bytes()
}

// FormatRouterMetrics renders the router's /stats as an exposition
// document: the aggregate StatsResponse (scalar sums over replicas with
// stats snapshots) under the lbe_ names, plus lbe_router_ metrics for
// routing and the per-replica registry.
func FormatRouterMetrics(st *RouterStatsResponse) []byte {
	var m metricsWriter
	m.appendStats(&st.Aggregate)

	m.simple("lbe_router_draining", "Whether the router is draining (1) or serving (0).", "gauge", b2f(st.Status != "ok"))
	if st.Digest != "" {
		m.header("lbe_router_index_info", "Cluster store identity: the digest the router requires replicas to match (always 1).", "gauge")
		m.value("lbe_router_index_info", fmt.Sprintf(`digest=%q`, st.Digest), 1)
	}
	m.simple("lbe_router_requests_routed_total", "Requests routed to a replica successfully.", "counter", float64(st.Routed))
	m.simple("lbe_router_failovers_total", "Attempts retried on another replica after a failure.", "counter", float64(st.Failovers))
	m.header("lbe_router_requests_rejected_total", "Requests the router rejected, by reason.", "counter")
	m.value("lbe_router_requests_rejected_total", `reason="draining"`, float64(st.RejectedDrain))
	m.value("lbe_router_requests_rejected_total", `reason="no_replica"`, float64(st.RejectedNoReplica))
	if st.Scatter != nil {
		m.value("lbe_router_requests_rejected_total", `reason="shard_set_down"`, float64(st.Scatter.RejectedSetDown))
		m.simple("lbe_router_shard_sets", "Shard-sets in the discovered partition topology.", "gauge", float64(st.Scatter.Sets))
		m.simple("lbe_router_shard_sets_covered", "Shard-sets with at least one consistent healthy holder.", "gauge", float64(st.Scatter.Covered))
		m.simple("lbe_router_total_shards", "Total shards across the discovered partition topology.", "gauge", float64(st.Scatter.TotalShards))
		if len(st.Scatter.SetDigests) > 0 {
			m.header("lbe_router_shard_set_info", "Per-set store digest of the discovered topology (always 1).", "gauge")
			for i, d := range st.Scatter.SetDigests {
				m.value("lbe_router_shard_set_info", fmt.Sprintf(`set="%d",digest=%q`, i, d), 1)
			}
		}
	}
	if st.Cache != nil {
		m.appendCache("lbe_router_cache", st.Cache)
	}

	if len(st.Replicas) > 0 {
		m.header("lbe_router_replica_up", "Replica health from the last probe (1 healthy, 0 down).", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_up", fmt.Sprintf(`replica=%q`, r.URL), b2f(r.Healthy))
		}
		m.header("lbe_router_replica_consistent", "Whether the replica's digest matches the cluster digest.", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_consistent", fmt.Sprintf(`replica=%q`, r.URL), b2f(!r.DigestMismatch))
		}
		m.header("lbe_router_replica_routed_total", "Requests answered by the replica.", "counter")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_routed_total", fmt.Sprintf(`replica=%q`, r.URL), float64(r.Routed))
		}
		m.header("lbe_router_replica_failed_total", "Attempts that failed on the replica.", "counter")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_failed_total", fmt.Sprintf(`replica=%q`, r.URL), float64(r.Failed))
		}
		m.header("lbe_router_replica_queue_len", "Admission queue length last reported by the replica.", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_queue_len", fmt.Sprintf(`replica=%q`, r.URL), float64(r.QueueLen))
		}
		m.header("lbe_router_replica_in_flight", "In-flight batches last reported by the replica.", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_in_flight", fmt.Sprintf(`replica=%q`, r.URL), float64(r.InFlight))
		}
		m.header("lbe_router_replica_router_in_flight", "Requests the router currently has outstanding on the replica.", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_router_in_flight", fmt.Sprintf(`replica=%q`, r.URL), float64(r.RouterInFlight))
		}
		m.header("lbe_router_replica_probe_age_ms", "Milliseconds since the replica's last successful probe (-1 before the first).", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_probe_age_ms", fmt.Sprintf(`replica=%q`, r.URL), float64(r.ProbeAgeMillis))
		}
		m.header("lbe_router_replica_stats_age_ms", "Milliseconds since the replica's last stats snapshot (-1 before the first).", "gauge")
		for _, r := range st.Replicas {
			m.value("lbe_router_replica_stats_age_ms", fmt.Sprintf(`replica=%q`, r.URL), float64(r.StatsAgeMillis))
		}
		m.header("lbe_router_replica_info", "Replica identity: store digest and shard-set ordinal (-1 for whole-store replicas; always 1).", "gauge")
		for _, r := range st.Replicas {
			set := -1
			if r.ShardSet != nil {
				set = r.ShardSet.Set
			}
			m.value("lbe_router_replica_info", fmt.Sprintf(`replica=%q,digest=%q,set="%d"`, r.URL, r.Digest, set), 1)
		}
	}
	return m.buf.Bytes()
}
