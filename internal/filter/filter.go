// Package filter implements the two competing database-filtration methods
// the paper surveys (§II-A) alongside the shared-peak method of the SLM
// index: peptide precursor-mass filtration and sequence-tag filtration.
// They serve as in-repo baselines for candidate-reduction comparisons —
// each answers "which reference peptides could match this query?" with a
// different trade-off between selectivity and robustness to
// modifications.
package filter

import (
	"fmt"
	"sort"

	"lbe/internal/mass"
	"lbe/internal/spectrum"
)

// Filter narrows a peptide database to the candidates for one query
// spectrum, returning candidate peptide indices in ascending order.
type Filter interface {
	// Candidates returns the indices of peptides that pass the filter for
	// the query spectrum.
	Candidates(q spectrum.Experimental) []int
	// Name identifies the filtration method.
	Name() string
}

// --- precursor-mass filtration (§II-A1) ---

// Precursor filters by peptide precursor mass: candidates are the
// peptides whose neutral mass lies within the query's precursor window.
// Fast and very selective, but blind to unknown modifications (the "dark
// matter" problem): a modified spectrum's precursor is shifted out of the
// window of its true peptide.
type Precursor struct {
	tol mass.Tolerance
	// sorted (mass, index) pairs
	masses []float64
	order  []int
}

// NewPrecursor builds the filter over the peptide sequences with the
// given precursor tolerance.
func NewPrecursor(peptides []string, tol mass.Tolerance) (*Precursor, error) {
	f := &Precursor{tol: tol, masses: make([]float64, len(peptides)), order: make([]int, len(peptides))}
	for i, seq := range peptides {
		m, err := mass.Peptide(seq)
		if err != nil {
			return nil, fmt.Errorf("filter: peptide %d: %w", i, err)
		}
		f.masses[i] = m
		f.order[i] = i
	}
	sort.Slice(f.order, func(a, b int) bool {
		if f.masses[f.order[a]] != f.masses[f.order[b]] {
			return f.masses[f.order[a]] < f.masses[f.order[b]]
		}
		return f.order[a] < f.order[b]
	})
	return f, nil
}

// Name implements Filter.
func (f *Precursor) Name() string { return "precursor-mass" }

// Candidates implements Filter.
func (f *Precursor) Candidates(q spectrum.Experimental) []int {
	qm := q.PrecursorMass()
	if f.tol.IsOpen() {
		out := make([]int, len(f.order))
		for i := range out {
			out[i] = i
		}
		return out
	}
	lo, hi := f.tol.Window(qm)
	// Binary search the sorted order for the window.
	start := sort.Search(len(f.order), func(i int) bool {
		return f.masses[f.order[i]] >= lo
	})
	var out []int
	for i := start; i < len(f.order) && f.masses[f.order[i]] <= hi; i++ {
		out = append(out, f.order[i])
	}
	sort.Ints(out)
	return out
}

// --- sequence-tag filtration (§II-A2) ---

// Tag filters by partial-sequence tags inferred from the spectrum: gaps
// between fragment peaks that match amino-acid residue masses spell out
// short subsequences; a peptide is a candidate if it contains one of the
// extracted tags (in b-ion reading order or reversed, as y-ion ladders
// read C-to-N). Robust to modifications outside the tag region.
type Tag struct {
	k       int
	gapTol  float64
	minTags int
	// kmer -> sorted peptide indices containing it
	postings map[string][]int
	total    int
}

// TagConfig parameterizes tag filtration.
type TagConfig struct {
	K      int     // tag length in residues (typical 3)
	GapTol float64 // absolute tolerance when matching a peak gap to a residue mass (Da)
}

// DefaultTagConfig returns k=3 tags with 0.02 Da gap tolerance.
func DefaultTagConfig() TagConfig { return TagConfig{K: 3, GapTol: 0.02} }

// NewTag builds the k-mer index over the peptides.
func NewTag(peptides []string, cfg TagConfig) (*Tag, error) {
	if cfg.K < 1 {
		return nil, fmt.Errorf("filter: tag length %d must be >= 1", cfg.K)
	}
	if cfg.GapTol <= 0 {
		return nil, fmt.Errorf("filter: gap tolerance %g must be positive", cfg.GapTol)
	}
	f := &Tag{k: cfg.K, gapTol: cfg.GapTol, postings: map[string][]int{}, total: len(peptides)}
	for i, seq := range peptides {
		if !mass.ValidSequence(seq) {
			return nil, fmt.Errorf("filter: peptide %d has non-standard residues", i)
		}
		seen := map[string]bool{}
		for j := 0; j+cfg.K <= len(seq); j++ {
			kmer := seq[j : j+cfg.K]
			if !seen[kmer] {
				seen[kmer] = true
				f.postings[kmer] = append(f.postings[kmer], i)
			}
		}
	}
	return f, nil
}

// Name implements Filter.
func (f *Tag) Name() string { return "sequence-tag" }

// residueByMass returns the amino acids whose residue mass lies within
// tol of gap. Isobaric residues (L/I) both match.
func residueByMass(gap, tol float64) []byte {
	var out []byte
	for _, aa := range []byte("ACDEFGHIKLMNPQRSTVWY") {
		if m := mass.MustResidue(aa); gap >= m-tol && gap <= m+tol {
			out = append(out, aa)
		}
	}
	return out
}

// ExtractTags infers length-k residue strings from the spectrum graph
// (the GutenTag/DirecTag construction): nodes are peaks, and a directed
// edge labeled with amino acid a connects peaks whose m/z difference
// matches a's residue mass within gapTol. Every k-edge path spells a tag;
// each tag is emitted forward and reversed (a y-ion ladder reads C-to-N).
// Mixed b/y peak lists therefore still yield tags: each ion series forms
// its own ladder inside the graph.
func ExtractTags(q spectrum.Experimental, k int, gapTol float64) []string {
	peaks := q.Peaks
	if len(peaks) < k+1 {
		return nil
	}
	const minRes, maxRes = 57.0, 187.0 // G..W residue mass range

	// Build edges: edges[i] lists (next peak, residue letter).
	type edge struct {
		to int
		aa byte
	}
	edges := make([][]edge, len(peaks))
	for i := range peaks {
		for j := i + 1; j < len(peaks); j++ {
			gap := peaks[j].MZ - peaks[i].MZ
			if gap < minRes-gapTol {
				continue
			}
			if gap > maxRes+gapTol {
				break // peaks sorted by m/z
			}
			for _, aa := range residueByMass(gap, gapTol) {
				edges[i] = append(edges[i], edge{to: j, aa: aa})
			}
		}
	}

	seen := map[string]bool{}
	var tags []string
	emit := func(s []byte) {
		if !seen[string(s)] {
			tag := string(s)
			seen[tag] = true
			tags = append(tags, tag)
		}
		rev := make([]byte, len(s))
		for i := range rev {
			rev[i] = s[len(s)-1-i]
		}
		if !seen[string(rev)] {
			tag := string(rev)
			seen[tag] = true
			tags = append(tags, tag)
		}
	}
	var walk func(node, depth int, cur []byte)
	walk = func(node, depth int, cur []byte) {
		if depth == k {
			emit(cur)
			return
		}
		for _, e := range edges[node] {
			walk(e.to, depth+1, append(cur, e.aa))
		}
	}
	for start := range peaks {
		walk(start, 0, nil)
	}
	return tags
}

// Candidates implements Filter.
func (f *Tag) Candidates(q spectrum.Experimental) []int {
	tags := ExtractTags(q, f.k, f.gapTol)
	set := map[int]bool{}
	for _, tag := range tags {
		for _, pi := range f.postings[tag] {
			set[pi] = true
		}
	}
	out := make([]int, 0, len(set))
	for pi := range set {
		out = append(out, pi)
	}
	sort.Ints(out)
	return out
}

// Reduction reports the candidate-reduction factor of a filter over a
// query batch: total database size divided by mean candidates per query.
// Infinite when no query yields candidates.
func Reduction(f Filter, dbSize int, qs []spectrum.Experimental) float64 {
	total := 0
	for _, q := range qs {
		total += len(f.Candidates(q))
	}
	if total == 0 {
		return 0
	}
	mean := float64(total) / float64(len(qs))
	return float64(dbSize) / mean
}
