package filter

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/mass"
	"lbe/internal/spectrum"
)

func queryFromPeptide(t testing.TB, seq string) spectrum.Experimental {
	t.Helper()
	th, err := spectrum.Predict(seq)
	if err != nil {
		t.Fatal(err)
	}
	q := spectrum.Experimental{PrecursorMZ: mass.MZ(th.Precursor, 1), Charge: 1}
	for _, ion := range th.Ions {
		q.Peaks = append(q.Peaks, spectrum.Peak{MZ: ion, Intensity: 1})
	}
	q.SortPeaks()
	return q
}

func TestPrecursorFilterWindow(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDEKK", "AAAAGGGGK", "PEPTIDER"}
	f, err := NewPrecursor(peps, mass.Da(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "precursor-mass" {
		t.Errorf("name = %q", f.Name())
	}
	q := queryFromPeptide(t, "PEPTIDEK")
	got := f.Candidates(q)
	// Only PEPTIDEK itself is within 0.5 Da (K vs R differ by ~28 Da).
	if len(got) != 1 || got[0] != 0 {
		t.Errorf("candidates = %v, want [0]", got)
	}
}

func TestPrecursorFilterOpen(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK"}
	f, err := NewPrecursor(peps, mass.Open())
	if err != nil {
		t.Fatal(err)
	}
	got := f.Candidates(queryFromPeptide(t, "PEPTIDEK"))
	if len(got) != 2 {
		t.Errorf("open filter must return everything, got %v", got)
	}
}

func TestPrecursorFilterMissesModified(t *testing.T) {
	// The §II-A1 failure mode: a +114 Da (GlyGly) shifted precursor falls
	// outside the window of its true peptide.
	peps := []string{"PEPTIDEK"}
	f, _ := NewPrecursor(peps, mass.Da(0.5))
	q := queryFromPeptide(t, "PEPTIDEK")
	q.PrecursorMZ += 114.04293
	if got := f.Candidates(q); len(got) != 0 {
		t.Errorf("modified query should find no candidates, got %v", got)
	}
}

func TestPrecursorFilterMatchesBruteForceProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(109))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	randPep := func() string {
		var sb strings.Builder
		for i := 0; i < rng.Intn(12)+6; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		return sb.String()
	}
	f := func(nRaw uint8, tolRaw uint8) bool {
		n := int(nRaw%40) + 1
		peps := make([]string, n)
		for i := range peps {
			peps[i] = randPep()
		}
		tol := mass.Da(float64(tolRaw) + 1)
		fl, err := NewPrecursor(peps, tol)
		if err != nil {
			return false
		}
		q := queryFromPeptide(t, peps[rng.Intn(n)])
		got := fl.Candidates(q)
		var want []int
		qm := q.PrecursorMass()
		for i, seq := range peps {
			if tol.Contains(qm, mass.MustPeptide(seq)) {
				want = append(want, i)
			}
		}
		if len(got) != len(want) {
			return false
		}
		for i := range got {
			if got[i] != want[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestExtractTagsPerfectLadder(t *testing.T) {
	// A pure b-ion ladder of PEPTIDE (b1..b6): the five gaps spell
	// E,P,T,I,D, so the length-3 tags are EPT, PTI, TID.
	seq := "PEPTIDE"
	var peaks []spectrum.Peak
	for k := 1; k < len(seq); k++ {
		peaks = append(peaks, spectrum.Peak{MZ: spectrum.BIon(seq, k), Intensity: 1})
	}
	q := spectrum.Experimental{Peaks: peaks}
	q.SortPeaks()
	tags := ExtractTags(q, 3, 0.02)
	want := map[string]bool{}
	for _, tag := range tags {
		want[tag] = true
	}
	for _, sub := range []string{"EPT", "PTI", "TID"} {
		if !want[sub] {
			t.Errorf("tag %q not extracted (got %v)", sub, tags)
		}
	}
	// Reversed forms are also emitted (y-ladder reading).
	for _, rev := range []string{"TPE", "ITP", "DIT"} {
		if !want[rev] {
			t.Errorf("reversed tag %q missing (got %v)", rev, tags)
		}
	}
}

func TestExtractTagsMixedSeries(t *testing.T) {
	// A realistic query with interleaved b- and y-ions must still yield
	// tags: each series forms a ladder inside the spectrum graph.
	q := queryFromPeptide(t, "PEPTIDEK")
	tags := ExtractTags(q, 3, 0.02)
	if len(tags) == 0 {
		t.Fatal("no tags from a mixed b/y spectrum")
	}
	// At least one tag must be a substring of the peptide or its reverse.
	found := false
	rev := "KEDITPEP"
	for _, tag := range tags {
		if strings.Contains("PEPTIDEK", tag) || strings.Contains(rev, tag) {
			found = true
			break
		}
	}
	if !found {
		t.Errorf("no extracted tag matches the source peptide: %v", tags)
	}
}

func TestExtractTagsIsobaricLeucine(t *testing.T) {
	// A gap equal to the L/I residue mass must produce tags with both.
	base := 500.0
	m := mass.MustResidue('L')
	q := spectrum.Experimental{Peaks: []spectrum.Peak{
		{MZ: base, Intensity: 1},
		{MZ: base + m, Intensity: 1},
		{MZ: base + 2*m, Intensity: 1},
		{MZ: base + 3*m, Intensity: 1},
	}}
	tags := ExtractTags(q, 3, 0.02)
	seen := map[string]bool{}
	for _, tag := range tags {
		seen[tag] = true
	}
	if !seen["LLL"] || !seen["III"] || !seen["LIL"] {
		t.Errorf("isobaric expansion incomplete: %v", tags)
	}
}

func TestExtractTagsTooFewPeaks(t *testing.T) {
	q := spectrum.Experimental{Peaks: []spectrum.Peak{{MZ: 100, Intensity: 1}}}
	if tags := ExtractTags(q, 3, 0.02); tags != nil {
		t.Errorf("tags from 1 peak: %v", tags)
	}
}

func TestTagFilterFindsPeptide(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK", "WWYYFFLLK"}
	f, err := NewTag(peps, DefaultTagConfig())
	if err != nil {
		t.Fatal(err)
	}
	if f.Name() != "sequence-tag" {
		t.Errorf("name = %q", f.Name())
	}
	got := f.Candidates(queryFromPeptide(t, "PEPTIDEK"))
	found := false
	for _, pi := range got {
		if pi == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("true peptide not among tag candidates %v", got)
	}
}

func TestTagFilterSurvivesModification(t *testing.T) {
	// Shift the precursor (unknown mod): tag filtration still finds the
	// peptide because local gap structure away from the mod is intact.
	peps := []string{"PEPTIDEK", "AAAAGGGGK"}
	f, _ := NewTag(peps, DefaultTagConfig())
	q := queryFromPeptide(t, "PEPTIDEK")
	q.PrecursorMZ += 114.04293
	got := f.Candidates(q)
	found := false
	for _, pi := range got {
		if pi == 0 {
			found = true
		}
	}
	if !found {
		t.Errorf("tag filter lost the modified peptide: %v", got)
	}
}

func TestTagFilterErrors(t *testing.T) {
	if _, err := NewTag([]string{"AXB"}, DefaultTagConfig()); err == nil {
		t.Error("invalid residues must fail")
	}
	if _, err := NewTag([]string{"AAA"}, TagConfig{K: 0, GapTol: 0.02}); err == nil {
		t.Error("k=0 must fail")
	}
	if _, err := NewTag([]string{"AAA"}, TagConfig{K: 3, GapTol: 0}); err == nil {
		t.Error("zero gap tolerance must fail")
	}
}

func TestTagCandidatesSortedUniqueProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	peps := make([]string, 30)
	for i := range peps {
		var sb strings.Builder
		for j := 0; j < rng.Intn(10)+6; j++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		peps[i] = sb.String()
	}
	f, err := NewTag(peps, DefaultTagConfig())
	if err != nil {
		t.Fatal(err)
	}
	prop := func(pick uint8) bool {
		q := queryFromPeptide(t, peps[int(pick)%len(peps)])
		got := f.Candidates(q)
		if !sort.IntsAreSorted(got) {
			return false
		}
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				return false
			}
		}
		for _, pi := range got {
			if pi < 0 || pi >= len(peps) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestReduction(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDEKK", "AAAAGGGGK", "WWYYFFLLK"}
	f, _ := NewPrecursor(peps, mass.Da(0.5))
	qs := []spectrum.Experimental{
		queryFromPeptide(t, "PEPTIDEK"),
		queryFromPeptide(t, "AAAAGGGGK"),
	}
	// Each query has exactly 1 candidate -> reduction = 4/1 = 4.
	if got := Reduction(f, len(peps), qs); got != 4 {
		t.Errorf("reduction = %v, want 4", got)
	}
	// No candidates at all -> 0 by convention.
	empty, _ := NewPrecursor(peps, mass.Da(1e-9))
	q := queryFromPeptide(t, "PEPTIDEK")
	q.PrecursorMZ += 500
	if got := Reduction(empty, len(peps), []spectrum.Experimental{q}); got != 0 {
		t.Errorf("empty reduction = %v", got)
	}
}
