package fdr

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/mass"
)

func TestDecoyBasics(t *testing.T) {
	if got := Decoy("PEPTIDEK"); got != "EDITPEPK" {
		t.Errorf("Decoy(PEPTIDEK) = %q, want EDITPEPK", got)
	}
	// Short peptides unchanged.
	if Decoy("AK") != "AK" || Decoy("A") != "A" || Decoy("") != "" {
		t.Error("short-peptide convention broken")
	}
}

func TestDecoyPreservesMassLengthTerminus(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	f := func(n uint8) bool {
		L := int(n%30) + 3
		var sb strings.Builder
		for i := 0; i < L-1; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		sb.WriteByte('K') // tryptic terminus
		seq := sb.String()
		d := Decoy(seq)
		if len(d) != len(seq) {
			return false
		}
		if d[len(d)-1] != 'K' {
			return false
		}
		// Summation order changes, so compare within float tolerance.
		diff := mass.MustPeptide(d) - mass.MustPeptide(seq)
		return diff < 1e-9 && diff > -1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoyIsInvolution(t *testing.T) {
	f := func(n uint8) bool {
		rng := rand.New(rand.NewSource(int64(n)))
		const alpha = "ACDEFGHIKLMNPQRSTVWY"
		var sb strings.Builder
		for i := 0; i < int(n%20)+3; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		seq := sb.String()
		return Decoy(Decoy(seq)) == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecoyDB(t *testing.T) {
	targets := []string{"PEPTIDEK", "AAAAGGGGK", "AAAK"}
	combined, first := DecoyDB(targets)
	if first != 3 {
		t.Fatalf("firstDecoy = %d", first)
	}
	// AAAK reverses to itself (palindrome-ish: AAA reversed = AAA) and
	// must be skipped.
	if len(combined) != 5 {
		t.Fatalf("combined = %v", combined)
	}
	for _, d := range combined[first:] {
		for _, tg := range targets {
			if d == tg {
				t.Errorf("decoy %q collides with target", d)
			}
		}
	}
}

func TestQValuesPerfectSeparation(t *testing.T) {
	// All targets above all decoys: q-values 0 for targets.
	var psms []PSM
	for i := 0; i < 10; i++ {
		psms = append(psms, PSM{Score: 100 - float64(i), IsDecoy: false})
	}
	for i := 0; i < 10; i++ {
		psms = append(psms, PSM{Score: 10 - float64(i), IsDecoy: true})
	}
	q := QValues(psms)
	for i := 0; i < 10; i++ {
		if q[i] != 0 {
			t.Errorf("target %d q = %v, want 0", i, q[i])
		}
	}
	n, err := AcceptedAt(psms, q, 0.01)
	if err != nil || n != 10 {
		t.Errorf("accepted = %d (%v), want 10", n, err)
	}
}

func TestQValuesInterleaved(t *testing.T) {
	// T T D T: after 3rd PSM (decoy) FDR = 1/2; after 4th, 1/3.
	psms := []PSM{
		{Score: 4}, {Score: 3}, {Score: 2, IsDecoy: true}, {Score: 1},
	}
	q := QValues(psms)
	if q[0] != 0 || q[1] != 0 {
		t.Errorf("top targets q = %v %v, want 0", q[0], q[1])
	}
	// The decoy position has FDR 1/2, but the running minimum from below
	// is 1/3 (at the last target).
	if q[2] != 1.0/3 || q[3] != 1.0/3 {
		t.Errorf("q = %v, want [0 0 1/3 1/3]", q)
	}
}

func TestQValuesAllDecoys(t *testing.T) {
	psms := []PSM{{Score: 2, IsDecoy: true}, {Score: 1, IsDecoy: true}}
	q := QValues(psms)
	for i, v := range q {
		if v != 1 {
			t.Errorf("q[%d] = %v, want 1", i, v)
		}
	}
	if got := QValues(nil); len(got) != 0 {
		t.Error("empty input convention broken")
	}
}

func TestQValuesMonotoneInScoreProperty(t *testing.T) {
	// Sorted by descending score, q-values must be non-decreasing.
	rng := rand.New(rand.NewSource(131))
	f := func(n uint8) bool {
		count := int(n%50) + 1
		psms := make([]PSM, count)
		for i := range psms {
			psms[i] = PSM{Score: rng.Float64() * 100, IsDecoy: rng.Intn(3) == 0}
		}
		q := QValues(psms)
		order := make([]int, count)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return psms[order[a]].Score > psms[order[b]].Score
		})
		for r := 1; r < count; r++ {
			if q[order[r]] < q[order[r-1]]-1e-12 {
				return false
			}
		}
		for _, v := range q {
			if v < 0 || v > 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestAcceptedAtErrors(t *testing.T) {
	if _, err := AcceptedAt([]PSM{{}}, nil, 0.01); err == nil {
		t.Error("length mismatch must fail")
	}
}
