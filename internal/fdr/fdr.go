// Package fdr implements target-decoy false-discovery-rate estimation,
// the standard statistical validation layer of shotgun-proteomics search
// engines. The paper's pipeline reports raw candidate PSMs; a credible
// open-source release of the system needs decoy competition so users can
// threshold identifications at a chosen FDR.
package fdr

import (
	"fmt"
	"sort"
)

// Decoy returns the standard tryptic decoy of a peptide: the sequence
// reversed with the C-terminal residue fixed, preserving mass, length,
// amino-acid composition and the tryptic terminus (K/R), so decoys are
// drawn from the same score distribution as false targets.
func Decoy(seq string) string {
	n := len(seq)
	if n <= 2 {
		return seq
	}
	b := []byte(seq)
	for i, j := 0, n-2; i < j; i, j = i+1, j-1 {
		b[i], b[j] = b[j], b[i]
	}
	return string(b)
}

// DecoyDB appends one decoy per target peptide, skipping decoys that
// collide with a target sequence (palindromic peptides). It returns the
// combined database and the index of the first decoy.
func DecoyDB(targets []string) (combined []string, firstDecoy int) {
	targetSet := make(map[string]struct{}, len(targets))
	for _, t := range targets {
		targetSet[t] = struct{}{}
	}
	combined = append([]string(nil), targets...)
	firstDecoy = len(targets)
	for _, t := range targets {
		d := Decoy(t)
		if _, clash := targetSet[d]; clash {
			continue
		}
		combined = append(combined, d)
	}
	return combined, firstDecoy
}

// PSM is a scored identification entering FDR estimation.
type PSM struct {
	Query   int
	Peptide uint32
	Score   float64
	IsDecoy bool
}

// QValues computes the q-value of each PSM (minimum FDR at which it is
// accepted) by target-decoy competition: sort by descending score,
// estimate FDR at each threshold as (#decoys)/(#targets), then take the
// running minimum from the bottom to enforce monotonicity. The returned
// slice is indexed like the input.
func QValues(psms []PSM) []float64 {
	n := len(psms)
	q := make([]float64, n)
	if n == 0 {
		return q
	}
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool {
		return psms[order[a]].Score > psms[order[b]].Score
	})

	fdrs := make([]float64, n)
	targets, decoys := 0, 0
	for rank, idx := range order {
		if psms[idx].IsDecoy {
			decoys++
		} else {
			targets++
		}
		if targets == 0 {
			fdrs[rank] = 1
		} else {
			f := float64(decoys) / float64(targets)
			if f > 1 {
				f = 1
			}
			fdrs[rank] = f
		}
	}
	// Running minimum from the worst score upward.
	minSoFar := 1.0
	for rank := n - 1; rank >= 0; rank-- {
		if fdrs[rank] < minSoFar {
			minSoFar = fdrs[rank]
		}
		q[order[rank]] = minSoFar
	}
	return q
}

// AcceptedAt counts the target PSMs with q-value <= threshold.
func AcceptedAt(psms []PSM, qvals []float64, threshold float64) (int, error) {
	if len(psms) != len(qvals) {
		return 0, fmt.Errorf("fdr: %d PSMs vs %d q-values", len(psms), len(qvals))
	}
	n := 0
	for i, p := range psms {
		if !p.IsDecoy && qvals[i] <= threshold {
			n++
		}
	}
	return n, nil
}
