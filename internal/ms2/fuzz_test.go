package ms2

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzReader asserts the MS2 parser never panics on arbitrary input, and
// that anything it successfully parses round-trips through the writer.
func FuzzReader(f *testing.F) {
	f.Add(sample)
	f.Add("")
	f.Add("H\tonly\n")
	f.Add("S\t1\t1\t100.5\n187.4 12.5\n")
	f.Add("S\t1\t1\t100.5\nZ\t2\t200.99\nI\tRTime\t5.5\n1 2\n")
	f.Add("S 1 1 1e309\n") // precursor overflow
	f.Add("S\t1\t1\t100\nNaN NaN\n")
	f.Fuzz(func(t *testing.T, input string) {
		scans, err := ReadAll(strings.NewReader(input))
		if err != nil {
			return // rejecting malformed input is fine; panicking is not
		}
		var buf bytes.Buffer
		if err := WriteAll(&buf, scans); err != nil {
			t.Fatalf("writer failed on parser output: %v", err)
		}
		if _, err := ReadAll(&buf); err != nil {
			t.Fatalf("reparse of written output failed: %v", err)
		}
	})
}
