package ms2

import (
	"bytes"
	"io"
	"math"
	"math/rand"
	"path/filepath"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/spectrum"
)

const sample = `H	CreationDate	2019-03-01
H	Extractor	msconvert
S	000011	000011	885.32000
Z	2	1769.63273
I	RTime	12.3400
187.40000 12.5000
193.10000 19.5000
S	000012	000012	400.00000
100.00000 1.0000
`

func TestReadBasic(t *testing.T) {
	scans, err := ReadAll(strings.NewReader(sample))
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != 2 {
		t.Fatalf("got %d scans, want 2", len(scans))
	}
	s := scans[0]
	if s.Scan != 11 || s.PrecursorMZ != 885.32 || s.Charge != 2 {
		t.Errorf("scan metadata = %+v", s)
	}
	if math.Abs(s.RetentionTime-12.34) > 1e-9 {
		t.Errorf("rtime = %v", s.RetentionTime)
	}
	if len(s.Peaks) != 2 || s.Peaks[0].MZ != 187.4 || s.Peaks[1].Intensity != 19.5 {
		t.Errorf("peaks = %+v", s.Peaks)
	}
	if scans[1].Charge != 0 || len(scans[1].Peaks) != 1 {
		t.Errorf("second scan = %+v", scans[1])
	}
}

func TestReadHeaders(t *testing.T) {
	r := NewReader(strings.NewReader(sample))
	if _, err := r.Read(); err != nil {
		t.Fatal(err)
	}
	if len(r.Headers) != 2 {
		t.Errorf("headers = %v", r.Headers)
	}
}

func TestReadErrors(t *testing.T) {
	cases := []string{
		"X unknown line\n",
		"S 1 1\n",                   // too few S fields
		"S a b c d\n",               // bad scan number
		"S 1 1 croak\n",             // bad precursor
		"S 1 1 100.0\nnot a peak\n", // malformed peak (single field)
		"S 1 1 100.0\nfoo bar\n",    // malformed peak (non-numeric)
		"S 1 1 100.0\nH bad\n",      // header inside scan
	}
	for _, in := range cases {
		if _, err := ReadAll(strings.NewReader(in)); err == nil {
			t.Errorf("input %q should fail", in)
		}
	}
}

func TestReadEmpty(t *testing.T) {
	scans, err := ReadAll(strings.NewReader(""))
	if err != nil {
		t.Fatal(err)
	}
	if len(scans) != 0 {
		t.Errorf("got %d scans", len(scans))
	}
	r := NewReader(strings.NewReader("H\tonly\theaders\n"))
	if _, err := r.Read(); err != io.EOF {
		t.Errorf("headers-only input: err = %v, want EOF", err)
	}
}

func TestWriterHeaderAfterScan(t *testing.T) {
	w := NewWriter(&bytes.Buffer{})
	if err := w.Write(spectrum.Experimental{Scan: 1, PrecursorMZ: 5}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteHeader("k", "v"); err == nil {
		t.Error("header after scan must fail")
	}
}

func randScans(rng *rand.Rand, n int) []spectrum.Experimental {
	scans := make([]spectrum.Experimental, n)
	for i := range scans {
		e := spectrum.Experimental{
			Scan:        i + 1,
			PrecursorMZ: 100 + rng.Float64()*1900,
			Charge:      rng.Intn(4), // may be 0 = unknown
		}
		if rng.Intn(2) == 0 {
			e.RetentionTime = rng.Float64() * 100
		}
		for j := 0; j < rng.Intn(20)+1; j++ {
			e.Peaks = append(e.Peaks, spectrum.Peak{
				MZ:        float64(int(rng.Float64()*2e7)) / 1e4, // quantized to 1e-4
				Intensity: float64(int(rng.Float64()*1e8)) / 1e4,
			})
		}
		e.SortPeaks()
		scans[i] = e
	}
	return scans
}

func TestRoundTripProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	f := func(nRaw uint8) bool {
		scans := randScans(rng, int(nRaw%8)+1)
		var buf bytes.Buffer
		if err := WriteAll(&buf, scans); err != nil {
			return false
		}
		got, err := ReadAll(&buf)
		if err != nil {
			return false
		}
		if len(got) != len(scans) {
			return false
		}
		for i := range scans {
			a, b := scans[i], got[i]
			if a.Scan != b.Scan || a.Charge != b.Charge {
				return false
			}
			if math.Abs(a.PrecursorMZ-b.PrecursorMZ) > 1e-4 {
				return false
			}
			if len(a.Peaks) != len(b.Peaks) {
				return false
			}
			for j := range a.Peaks {
				if math.Abs(a.Peaks[j].MZ-b.Peaks[j].MZ) > 1e-4 ||
					math.Abs(a.Peaks[j].Intensity-b.Peaks[j].Intensity) > 1e-3 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func TestFileRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	scans := randScans(rng, 3)
	path := filepath.Join(t.TempDir(), "q.ms2")
	if err := WriteFile(path, scans); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 3 {
		t.Errorf("got %d scans", len(got))
	}
}

func TestReadFileMissing(t *testing.T) {
	if _, err := ReadFile(filepath.Join(t.TempDir(), "nope.ms2")); err == nil {
		t.Error("missing file should fail")
	}
}
