// Package ms2 reads and writes the MS2 text format for tandem mass spectra
// (McDonald et al., Rapid Commun. Mass Spectrom. 2004), the query-side input
// format used by the paper after msconvert conversion.
//
// An MS2 file contains header lines (H), scan blocks opened by an S line
// with scan numbers and precursor m/z, optional charge lines (Z) and
// per-scan info lines (I), followed by "m/z intensity" peak pairs:
//
//	H       CreationDate    ...
//	S       000011  000011  885.32
//	Z       2       1769.63
//	187.4   12.5
//	193.1   19.5
package ms2

import (
	"bufio"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"lbe/internal/spectrum"
)

// Reader parses MS2 scan blocks from an input stream.
type Reader struct {
	s       *bufio.Scanner
	line    int
	pending string // buffered S line
	Headers []string
}

// NewReader returns a Reader consuming from r.
func NewReader(r io.Reader) *Reader {
	s := bufio.NewScanner(r)
	s.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	return &Reader{s: s}
}

// Read returns the next scan, or io.EOF when the stream is exhausted.
func (r *Reader) Read() (spectrum.Experimental, error) {
	var e spectrum.Experimental

	sline := r.pending
	r.pending = ""
	for sline == "" {
		if !r.s.Scan() {
			if err := r.s.Err(); err != nil {
				return e, fmt.Errorf("ms2: %w", err)
			}
			return e, io.EOF
		}
		r.line++
		line := strings.TrimSpace(r.s.Text())
		switch {
		case line == "":
			continue
		case strings.HasPrefix(line, "H"):
			r.Headers = append(r.Headers, line)
		case strings.HasPrefix(line, "S"):
			sline = line
		default:
			return e, fmt.Errorf("ms2: line %d: expected H or S line, got %q", r.line, line)
		}
	}

	fields := strings.Fields(sline)
	if len(fields) < 4 {
		return e, fmt.Errorf("ms2: line %d: malformed S line %q", r.line, sline)
	}
	scan, err := strconv.Atoi(fields[1])
	if err != nil {
		return e, fmt.Errorf("ms2: line %d: bad scan number: %w", r.line, err)
	}
	prec, err := strconv.ParseFloat(fields[3], 64)
	if err != nil {
		return e, fmt.Errorf("ms2: line %d: bad precursor m/z: %w", r.line, err)
	}
	e.Scan = scan
	e.PrecursorMZ = prec

	for r.s.Scan() {
		r.line++
		line := strings.TrimSpace(r.s.Text())
		if line == "" {
			continue
		}
		switch line[0] {
		case 'S':
			r.pending = line
			return e, nil
		case 'Z':
			f := strings.Fields(line)
			if len(f) >= 2 {
				if z, err := strconv.Atoi(f[1]); err == nil {
					e.Charge = z
				}
			}
		case 'I':
			f := strings.Fields(line)
			if len(f) >= 3 && f[1] == "RTime" {
				if rt, err := strconv.ParseFloat(f[2], 64); err == nil {
					e.RetentionTime = rt
				}
			}
		case 'H':
			return e, fmt.Errorf("ms2: line %d: H line inside scan block", r.line)
		default:
			f := strings.Fields(line)
			if len(f) < 2 {
				return e, fmt.Errorf("ms2: line %d: malformed peak %q", r.line, line)
			}
			mz, err1 := strconv.ParseFloat(f[0], 64)
			in, err2 := strconv.ParseFloat(f[1], 64)
			if err1 != nil || err2 != nil {
				return e, fmt.Errorf("ms2: line %d: malformed peak %q", r.line, line)
			}
			e.Peaks = append(e.Peaks, spectrum.Peak{MZ: mz, Intensity: in})
		}
	}
	if err := r.s.Err(); err != nil {
		return e, fmt.Errorf("ms2: %w", err)
	}
	return e, nil
}

// ReadAll parses every scan from r.
func ReadAll(r io.Reader) ([]spectrum.Experimental, error) {
	mr := NewReader(r)
	var out []spectrum.Experimental
	for {
		e, err := mr.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, e)
	}
}

// ReadFile parses every scan from the named file.
func ReadFile(path string) ([]spectrum.Experimental, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadAll(f)
}

// Writer emits MS2 scan blocks.
type Writer struct {
	w       *bufio.Writer
	started bool
}

// NewWriter returns a Writer emitting to w.
func NewWriter(w io.Writer) *Writer { return &Writer{w: bufio.NewWriter(w)} }

// WriteHeader emits one H line; headers must precede all scans.
func (w *Writer) WriteHeader(key, value string) error {
	if w.started {
		return fmt.Errorf("ms2: header after first scan")
	}
	_, err := fmt.Fprintf(w.w, "H\t%s\t%s\n", key, value)
	return err
}

// Write emits one scan block.
func (w *Writer) Write(e spectrum.Experimental) error {
	w.started = true
	if _, err := fmt.Fprintf(w.w, "S\t%06d\t%06d\t%.5f\n", e.Scan, e.Scan, e.PrecursorMZ); err != nil {
		return err
	}
	if e.Charge > 0 {
		// Z line carries the singly-protonated mass (M+H).
		mh := e.PrecursorMass() + 1.00727646688
		if _, err := fmt.Fprintf(w.w, "Z\t%d\t%.5f\n", e.Charge, mh); err != nil {
			return err
		}
	}
	if e.RetentionTime > 0 {
		if _, err := fmt.Fprintf(w.w, "I\tRTime\t%.4f\n", e.RetentionTime); err != nil {
			return err
		}
	}
	for _, p := range e.Peaks {
		if _, err := fmt.Fprintf(w.w, "%.5f %.4f\n", p.MZ, p.Intensity); err != nil {
			return err
		}
	}
	return nil
}

// Flush writes buffered output to the underlying writer.
func (w *Writer) Flush() error { return w.w.Flush() }

// WriteAll writes headers and scans to w and flushes.
func WriteAll(w io.Writer, scans []spectrum.Experimental) error {
	mw := NewWriter(w)
	if err := mw.WriteHeader("Extractor", "lbe"); err != nil {
		return err
	}
	for _, e := range scans {
		if err := mw.Write(e); err != nil {
			return err
		}
	}
	return mw.Flush()
}

// WriteFile writes every scan to the named file.
func WriteFile(path string, scans []spectrum.Experimental) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteAll(f, scans); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}
