// Package mods models post-translational modifications (PTMs) and
// enumerates the modified variants of a peptide, the mechanism by which the
// paper grows its index from 18M to 49.45M spectra.
//
// A Mod is a mass delta attached to a set of target residues. Variant
// enumeration applies every combination of variable mods over a peptide's
// eligible sites, subject to a cap on modified residues per peptide (the
// paper uses 5).
package mods

import (
	"fmt"
	"sort"
	"strings"
)

// Mod is one variable modification: a name, the residues it can attach to,
// and its monoisotopic mass delta in Daltons.
type Mod struct {
	Name     string
	Residues string  // target residue letters, e.g. "NQ"
	Delta    float64 // mass shift (Da)
}

// Standard modifications used in the paper's experimental setup (§V-A3).
var (
	// DeamidationNQ: deamidation of asparagine and glutamine (+0.984 Da).
	DeamidationNQ = Mod{Name: "Deamidation", Residues: "NQ", Delta: 0.98402}
	// GlyGlyKC: Gly-Gly adduct (ubiquitylation remnant) on lysine or
	// cysteine (+114.043 Da).
	GlyGlyKC = Mod{Name: "GlyGly", Residues: "KC", Delta: 114.04293}
	// OxidationM: oxidation of methionine (+15.995 Da).
	OxidationM = Mod{Name: "Oxidation", Residues: "M", Delta: 15.99491}
)

// PaperSet returns the three variable modifications from the paper's setup.
func PaperSet() []Mod { return []Mod{DeamidationNQ, GlyGlyKC, OxidationM} }

// targets reports whether the mod can attach to residue b.
func (m Mod) targets(b byte) bool { return strings.IndexByte(m.Residues, b) >= 0 }

// Site is one applied modification within a variant: the peptide position
// (0-based) and the index of the mod in the mod list.
type Site struct {
	Pos int
	Mod int
}

// Variant is one modified form of a peptide: the (sorted by position) list
// of applied sites and the total mass delta. The unmodified peptide is the
// variant with no sites.
type Variant struct {
	Sites []Site
	Delta float64
}

// IsModified reports whether the variant carries at least one modification.
func (v Variant) IsModified() bool { return len(v.Sites) > 0 }

// Annotate renders the variant applied to seq in the conventional
// bracketed notation, e.g. "PEPTM[Oxidation]IDE".
func (v Variant) Annotate(seq string, mods []Mod) string {
	if len(v.Sites) == 0 {
		return seq
	}
	var sb strings.Builder
	next := 0
	for i := 0; i < len(seq); i++ {
		sb.WriteByte(seq[i])
		if next < len(v.Sites) && v.Sites[next].Pos == i {
			fmt.Fprintf(&sb, "[%s]", mods[v.Sites[next].Mod].Name)
			next++
		}
	}
	return sb.String()
}

// Config controls variant enumeration.
type Config struct {
	Mods       []Mod
	MaxPerPep  int // maximum modified residues per peptide (paper: 5)
	MaxVariant int // safety cap on variants per peptide; <=0 means unlimited
}

// DefaultConfig mirrors the paper's settings: the three paper mods with at
// most 5 modified residues per peptide.
func DefaultConfig() Config {
	return Config{Mods: PaperSet(), MaxPerPep: 5}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.MaxPerPep < 0 {
		return fmt.Errorf("mods: negative MaxPerPep %d", c.MaxPerPep)
	}
	for _, m := range c.Mods {
		if m.Residues == "" {
			return fmt.Errorf("mods: mod %q has no target residues", m.Name)
		}
	}
	return nil
}

// siteOption is an eligible (position, mod) pair in a peptide.
type siteOption struct {
	pos int
	mod int
}

// Variants enumerates every modification variant of seq: the unmodified
// form first, then all combinations of applied sites with at most MaxPerPep
// sites (at most one mod per position). Variants are emitted in a
// deterministic order (increasing site count, then lexicographic by site).
func (c Config) Variants(seq string) ([]Variant, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	options := c.siteOptions(seq)
	out := []Variant{{}} // unmodified

	limit := c.MaxVariant
	if limit <= 0 {
		limit = int(^uint(0) >> 1)
	}

	// Depth-first enumeration over site options; positions are strictly
	// increasing along a combination so no position is modified twice.
	var cur []Site
	var curDelta float64
	var rec func(start, budget int) bool
	rec = func(start, budget int) bool {
		if budget == 0 {
			return true
		}
		for i := start; i < len(options); i++ {
			opt := options[i]
			if len(cur) > 0 && cur[len(cur)-1].Pos == opt.pos {
				continue // one mod per position
			}
			cur = append(cur, Site{Pos: opt.pos, Mod: opt.mod})
			curDelta += c.Mods[opt.mod].Delta
			if len(out) >= limit {
				return false
			}
			out = append(out, Variant{Sites: append([]Site(nil), cur...), Delta: curDelta})
			ok := rec(i+1, budget-1)
			curDelta -= c.Mods[opt.mod].Delta
			cur = cur[:len(cur)-1]
			if !ok {
				return false
			}
		}
		return true
	}
	rec(0, c.MaxPerPep)

	// The DFS above emits combinations ordered by first site; normalize to
	// (site count, positions) order for a stable, documented layout.
	sort.SliceStable(out, func(i, j int) bool {
		a, b := out[i].Sites, out[j].Sites
		if len(a) != len(b) {
			return len(a) < len(b)
		}
		for k := range a {
			if a[k].Pos != b[k].Pos {
				return a[k].Pos < b[k].Pos
			}
			if a[k].Mod != b[k].Mod {
				return a[k].Mod < b[k].Mod
			}
		}
		return false
	})
	return out, nil
}

// siteOptions lists eligible (position, mod) pairs in position order.
func (c Config) siteOptions(seq string) []siteOption {
	var opts []siteOption
	for i := 0; i < len(seq); i++ {
		for mi, m := range c.Mods {
			if m.targets(seq[i]) {
				opts = append(opts, siteOption{pos: i, mod: mi})
			}
		}
	}
	return opts
}

// Count returns the number of variants Variants would produce for seq
// without materializing them (ignoring MaxVariant). It is used by sizing
// and memory-footprint experiments.
func (c Config) Count(seq string) int {
	options := c.siteOptions(seq)
	// Group options by position: positions with k eligible mods contribute
	// a choice of (1 + k) when selected... but selection is bounded by
	// MaxPerPep distinct positions. Count combinations with DP over
	// positions: ways[b] = number of combinations using b modified sites.
	type posGroup struct{ mods int }
	var groups []posGroup
	for i := 0; i < len(options); {
		j := i
		for j < len(options) && options[j].pos == options[i].pos {
			j++
		}
		groups = append(groups, posGroup{mods: j - i})
		i = j
	}
	ways := make([]int, c.MaxPerPep+1)
	ways[0] = 1
	for _, g := range groups {
		for b := c.MaxPerPep; b >= 1; b-- {
			ways[b] += ways[b-1] * g.mods
		}
	}
	total := 0
	for _, w := range ways {
		total += w
	}
	return total
}
