package mods

import (
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"
)

func TestVariantsUnmodifiedOnly(t *testing.T) {
	cfg := DefaultConfig()
	vs, err := cfg.Variants("GGAVLL") // no N,Q,K,C,M residues
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 || vs[0].IsModified() {
		t.Fatalf("expected only the unmodified variant, got %v", vs)
	}
}

func TestVariantsSingleSite(t *testing.T) {
	cfg := Config{Mods: []Mod{OxidationM}, MaxPerPep: 5}
	vs, err := cfg.Variants("AMA")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 2 {
		t.Fatalf("got %d variants, want 2", len(vs))
	}
	if vs[0].IsModified() {
		t.Error("first variant must be unmodified")
	}
	v := vs[1]
	if len(v.Sites) != 1 || v.Sites[0].Pos != 1 || v.Sites[0].Mod != 0 {
		t.Errorf("site = %+v", v.Sites)
	}
	if math.Abs(v.Delta-15.99491) > 1e-9 {
		t.Errorf("delta = %v", v.Delta)
	}
}

func TestVariantsCombinatorics(t *testing.T) {
	// Peptide with 3 oxidizable sites, cap 2: 1 + C(3,1) + C(3,2) = 7.
	cfg := Config{Mods: []Mod{OxidationM}, MaxPerPep: 2}
	vs, err := cfg.Variants("MMM")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 7 {
		t.Fatalf("got %d variants, want 7", len(vs))
	}
	counts := map[int]int{}
	for _, v := range vs {
		counts[len(v.Sites)]++
	}
	if counts[0] != 1 || counts[1] != 3 || counts[2] != 3 {
		t.Errorf("site-count histogram = %v", counts)
	}
}

func TestVariantsMultiModPerResidue(t *testing.T) {
	// K is targeted by GlyGly; N by Deamidation. A residue targeted by two
	// mods contributes one site option per mod but at most one applied.
	twoOnK := []Mod{
		{Name: "A", Residues: "K", Delta: 1},
		{Name: "B", Residues: "K", Delta: 2},
	}
	cfg := Config{Mods: twoOnK, MaxPerPep: 3}
	vs, err := cfg.Variants("KK")
	if err != nil {
		t.Fatal(err)
	}
	// Each K independently: unmodified, A, or B -> 3*3 = 9 variants.
	if len(vs) != 9 {
		t.Fatalf("got %d variants, want 9", len(vs))
	}
	// No variant may modify one position twice.
	for _, v := range vs {
		seen := map[int]bool{}
		for _, s := range v.Sites {
			if seen[s.Pos] {
				t.Fatalf("position %d modified twice in %+v", s.Pos, v)
			}
			seen[s.Pos] = true
		}
	}
}

func TestVariantsCapEnforced(t *testing.T) {
	cfg := Config{Mods: []Mod{OxidationM}, MaxPerPep: 2}
	vs, err := cfg.Variants("MMMMMM")
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range vs {
		if len(v.Sites) > 2 {
			t.Fatalf("variant exceeds cap: %+v", v)
		}
	}
	// 1 + C(6,1) + C(6,2) = 22
	if len(vs) != 22 {
		t.Errorf("got %d variants, want 22", len(vs))
	}
}

func TestVariantsMaxVariantCap(t *testing.T) {
	cfg := Config{Mods: []Mod{OxidationM}, MaxPerPep: 5, MaxVariant: 10}
	vs, err := cfg.Variants("MMMMMMMMMM")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 10 {
		t.Errorf("got %d variants, want capped 10", len(vs))
	}
}

func TestCountMatchesVariants(t *testing.T) {
	rng := rand.New(rand.NewSource(23))
	const alpha = "ACDEFGHIKLMNPQRSTVWY"
	cfg := DefaultConfig()
	for trial := 0; trial < 200; trial++ {
		var sb strings.Builder
		for i := 0; i < rng.Intn(12)+1; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		seq := sb.String()
		vs, err := cfg.Variants(seq)
		if err != nil {
			t.Fatal(err)
		}
		if got := cfg.Count(seq); got != len(vs) {
			t.Fatalf("Count(%q) = %d, Variants produced %d", seq, got, len(vs))
		}
	}
}

func TestVariantDeltaProperty(t *testing.T) {
	// Each variant's delta equals the sum of its site deltas.
	cfg := DefaultConfig()
	rng := rand.New(rand.NewSource(29))
	const alpha = "NQKCMAG"
	f := func(n uint8) bool {
		var sb strings.Builder
		for i := 0; i < int(n%8)+1; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		vs, err := cfg.Variants(sb.String())
		if err != nil {
			return false
		}
		for _, v := range vs {
			sum := 0.0
			for _, s := range v.Sites {
				sum += cfg.Mods[s.Mod].Delta
			}
			if math.Abs(sum-v.Delta) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestVariantsDeterministicOrder(t *testing.T) {
	cfg := DefaultConfig()
	a, _ := cfg.Variants("NQKCM")
	b, _ := cfg.Variants("NQKCM")
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i].Delta != b[i].Delta || len(a[i].Sites) != len(b[i].Sites) {
			t.Fatalf("nondeterministic order at %d", i)
		}
	}
	// Sorted by site count first.
	for i := 1; i < len(a); i++ {
		if len(a[i].Sites) < len(a[i-1].Sites) {
			t.Fatalf("variants not ordered by site count at %d", i)
		}
	}
}

func TestAnnotate(t *testing.T) {
	cfg := Config{Mods: []Mod{OxidationM}, MaxPerPep: 2}
	vs, _ := cfg.Variants("AMA")
	if got := vs[0].Annotate("AMA", cfg.Mods); got != "AMA" {
		t.Errorf("unmodified annotate = %q", got)
	}
	if got := vs[1].Annotate("AMA", cfg.Mods); got != "AM[Oxidation]A" {
		t.Errorf("annotate = %q", got)
	}
}

func TestValidate(t *testing.T) {
	bad := Config{Mods: []Mod{{Name: "x"}}, MaxPerPep: 1}
	if err := bad.Validate(); err == nil {
		t.Error("mod without residues should fail validation")
	}
	bad = Config{MaxPerPep: -1}
	if err := bad.Validate(); err == nil {
		t.Error("negative cap should fail validation")
	}
	if _, err := bad.Variants("AAA"); err == nil {
		t.Error("Variants must propagate validation errors")
	}
}

func TestZeroMaxPerPep(t *testing.T) {
	cfg := Config{Mods: PaperSet(), MaxPerPep: 0}
	vs, err := cfg.Variants("NQKCM")
	if err != nil {
		t.Fatal(err)
	}
	if len(vs) != 1 {
		t.Errorf("MaxPerPep=0 must yield only the unmodified variant, got %d", len(vs))
	}
}
