package router

import (
	"encoding/json"
	"net/http"

	"lbe/internal/api"
	"lbe/internal/qcache"
	"lbe/internal/spectrum"
)

// The router's answer cache stores whole rendered response bodies under
// the cluster digest: replicas already guarantee byte-identical answers
// for a given digest (the consistency gate refuses to mix digests), so a
// 200 body replayed from the cache is exactly what a replica would send.
// In scatter mode the digest is the composed cluster digest
// (engine.ComposeClusterDigest over the per-set digests) and goes empty
// whenever a shard-set is dark, so partial topologies bypass the cache
// entirely — a merged body is only ever cached under full coverage.
// Keys embed the digest, making entries from a retired store unreachable
// the moment a probe observes the flip; probeAll additionally purges the
// cache then, returning the memory and making the invalidation
// observable in the counters.

// cacheKey canonicalizes one raw /search body into a cache key: the
// request is decoded and each spectrum normalized exactly as a replica
// would (sorted peaks, validation), so textually different encodings of
// the same request share an entry. ok is false when the body does not
// decode, a spectrum is invalid, or no cluster digest is known — those
// requests are proxied uncached (the replica owns the error reply).
func (rt *Router) cacheKey(body []byte) (string, bool) {
	var req api.SearchRequest
	if err := json.Unmarshal(body, &req); err != nil || len(req.Spectra) == 0 {
		return "", false
	}
	qs := make([]spectrum.Experimental, len(req.Spectra))
	for i, sj := range req.Spectra {
		e, err := sj.Experimental()
		if err != nil {
			return "", false
		}
		qs[i] = e
	}
	rt.mu.RLock()
	digest := rt.clusterDigest
	rt.mu.RUnlock()
	if digest == "" {
		return "", false
	}
	return qcache.NewKeyer(digest).Request(qs), true
}

// writeCached replays one cached 200 body.
func writeCached(w http.ResponseWriter, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(body)
}

// searchCached serves one /search through the cache: hits replay the
// stored body, duplicates of an in-flight request wait for its reply,
// and only the singleflight leader dispatches (a whole-store proxy or a
// scatter/gather round — the merged body is byte-identical either way,
// so both modes cache alike). Only a 200 is cached; any other outcome
// aborts the flight so waiters retry (or lead their own attempt) — a
// failed or cancelled dispatch can never poison an entry.
func (rt *Router) searchCached(w http.ResponseWriter, r *http.Request, body []byte) {
	key, ok := rt.cacheKey(body)
	if !ok {
		rt.dispatchSearch(w, r, body)
		return
	}
	for {
		v, f, o := rt.cache.Acquire(key)
		switch o {
		case qcache.Hit:
			writeCached(w, v)
			return
		case qcache.Lead:
			status, data := rt.dispatchSearch(w, r, body)
			if status == http.StatusOK {
				f.Complete(data)
			} else {
				f.Abort()
			}
			return
		default: // qcache.Wait
			select {
			case <-f.Done():
				if v, ok := f.Result(); ok {
					writeCached(w, v)
					return
				}
				// Leader aborted (replica error or caller hangup);
				// re-acquire — this caller may lead the retry.
			case <-r.Context().Done():
				api.WriteError(w, http.StatusGatewayTimeout, "request cancelled: %v", r.Context().Err())
				return
			}
		}
	}
}

// cacheStats snapshots the router's own cache block, or nil when caching
// is disabled.
func (rt *Router) cacheStats() *api.CacheStatsJSON {
	if rt.cache == nil {
		return nil
	}
	cs := rt.cache.Stats()
	return &api.CacheStatsJSON{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Evictions:     cs.Evictions,
		Collapsed:     cs.Collapsed,
		Invalidated:   cs.Invalidated,
		Entries:       cs.Entries,
		ResidentBytes: cs.Bytes,
		CapacityBytes: cs.MaxBytes,
	}
}
