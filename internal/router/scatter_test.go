package router

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/mods"
)

// scatterFixtures is the shared partitioned-store fixture: one 4-shard
// session over the corpus peptides, saved whole (the byte-identity
// reference) and partitioned into 2 and 4 shard-sets.
type scatterFixtures struct {
	wholeDir string
	dirs     map[int]string                  // sets -> cluster dir
	clusters map[int]*engine.ClusterManifest // sets -> manifest
}

var (
	scatterOnce sync.Once
	scatterVal  scatterFixtures
	scatterErr  error
)

func testScatterFixtures(t *testing.T) scatterFixtures {
	t.Helper()
	c := testCorpus(t)
	scatterOnce.Do(func() {
		cfg := engine.DefaultSessionConfig()
		cfg.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
		cfg.TopK = 5
		cfg.Shards = 4
		sess, err := engine.NewSession(c.peptides, cfg)
		if err != nil {
			scatterErr = err
			return
		}
		defer sess.Close()
		whole := filepath.Join(corpusTmp, "scatter-whole")
		if err := sess.Save(whole, c.peptides); err != nil {
			scatterErr = err
			return
		}
		dirs := make(map[int]string)
		cms := make(map[int]*engine.ClusterManifest)
		for _, sets := range []int{2, 4} {
			dir := filepath.Join(corpusTmp, fmt.Sprintf("scatter-cluster-%d", sets))
			cm, err := sess.SavePartitioned(dir, c.peptides, sets)
			if err != nil {
				scatterErr = err
				return
			}
			dirs[sets] = dir
			cms[sets] = cm
		}
		scatterVal = scatterFixtures{wholeDir: whole, dirs: dirs, clusters: cms}
	})
	if scatterErr != nil {
		t.Fatal(scatterErr)
	}
	return scatterVal
}

// scatterCorpus is the corpus re-anchored on the 4-shard whole store, so
// referencePSMs and requireMatchesReference compare against the store
// the partitions were cut from (shard ids differ from the 2-shard corpus
// store).
func scatterCorpus(t *testing.T) (corpus, scatterFixtures) {
	c := testCorpus(t)
	f := testScatterFixtures(t)
	return corpus{peptides: c.peptides, queries: c.queries, storeDir: f.wholeDir}, f
}

func scatterProbes() Config {
	cfg := fastProbes()
	cfg.Scatter = true
	return cfg
}

// startSetReplicas boots count replicas per shard-set of the given
// cluster and returns them with their URLs in set-major order.
func startSetReplicas(t *testing.T, dir string, sets, count int) ([]*testReplica, []string) {
	t.Helper()
	var reps []*testReplica
	var urls []string
	for s := 0; s < sets; s++ {
		for i := 0; i < count; i++ {
			rep := startReplicaDir(t, filepath.Join(dir, fmt.Sprintf("set-%02d", s)))
			reps = append(reps, rep)
			urls = append(urls, rep.ts.URL)
		}
	}
	return reps, urls
}

// TestScatterMatchesSessionSearch is the tentpole acceptance test: a
// scatter router over one holder per shard-set, at two different
// partition counts, answers every query with bytes identical to a direct
// whole-store Session.Search — and adopts the composed cluster digest
// the indexer recorded.
func TestScatterMatchesSessionSearch(t *testing.T) {
	cw, f := scatterCorpus(t)
	ref := referencePSMs(t, cw)
	for _, sets := range []int{2, 4} {
		t.Run(fmt.Sprintf("sets=%d", sets), func(t *testing.T) {
			_, urls := startSetReplicas(t, f.dirs[sets], sets, 1)
			rt, ts := testRouter(t, scatterProbes(), urls...)

			got := driveConcurrent(t, ts, cw, nil)
			requireMatchesReference(t, cw, ref, got)

			st := rt.Stats()
			if st.Routed != int64(len(cw.queries)) {
				t.Fatalf("routed %d merged requests, want %d", st.Routed, len(cw.queries))
			}
			if st.Scatter == nil || st.Scatter.Sets != sets || st.Scatter.Covered != sets {
				t.Fatalf("scatter stats do not show full coverage: %+v", st.Scatter)
			}
			if st.Digest != f.clusters[sets].ClusterDigest {
				t.Fatalf("router digest %q, want composed cluster digest %q",
					st.Digest, f.clusters[sets].ClusterDigest)
			}
			for _, rep := range st.Replicas {
				if !rep.Healthy || rep.DigestMismatch || rep.ShardSet == nil {
					t.Fatalf("holder %s not routable in a healthy partition: %+v", rep.URL, rep)
				}
				if rep.Routed == 0 {
					t.Fatalf("holder %s (set %d) carried no traffic", rep.URL, rep.ShardSet.Set)
				}
			}

			// The health view describes the whole logical store.
			resp, err := ts.Client().Get(ts.URL + "/healthz")
			if err != nil {
				t.Fatal(err)
			}
			var h api.HealthResponse
			if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
				t.Fatal(err)
			}
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK || h.Shards != 4 {
				t.Fatalf("scatter healthz: %d %+v, want 200 with 4 total shards", resp.StatusCode, h)
			}
		})
	}
}

// TestScatterSurvivesHolderKill re-runs the equivalence check with two
// holders per shard-set while one set-0 holder is torn down abruptly
// mid-run: every response must still be a 200 byte-identical to the
// whole-store Session.Search, via failover to the set's other replica.
func TestScatterSurvivesHolderKill(t *testing.T) {
	cw, f := scatterCorpus(t)
	ref := referencePSMs(t, cw)
	reps, urls := startSetReplicas(t, f.dirs[2], 2, 2)
	rt, ts := testRouter(t, scatterProbes(), urls...)

	got := driveConcurrent(t, ts, cw, reps[0].kill)
	requireMatchesReference(t, cw, ref, got)

	waitFor(t, func() bool {
		st := rt.Stats()
		return !st.Replicas[0].Healthy
	}, "killed holder never marked down")

	// The partition still has every set covered and keeps serving.
	if status, _ := postRaw(t, ts.Client(), ts.URL, cw.queries[0]); status != http.StatusOK {
		t.Fatalf("post-kill request answered %d", status)
	}
	st := rt.Stats()
	if st.Scatter == nil || st.Scatter.Covered != 2 {
		t.Fatalf("coverage lost after replica failover: %+v", st.Scatter)
	}
	if st.Digest == "" {
		t.Fatal("cluster digest dropped while every set stayed covered")
	}
}

// scatterFake is a scripted shard-set holder exposing the probe surface
// without an engine behind it.
type scatterFake struct {
	searches atomic.Int64
	ts       *httptest.Server
}

func startScatterFake(t *testing.T, set, sets int, dig string, queueLen int, search http.HandlerFunc) *scatterFake {
	t.Helper()
	f := &scatterFake{}
	ss := &api.ShardSetJSON{Set: set, Sets: sets, TotalShards: sets, TopK: 5}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Shards: 1, Digest: dig, ShardSet: ss})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.StatsResponse{Status: "ok", Digest: dig, QueueLen: queueLen, ShardSet: ss})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		f.searches.Add(1)
		search(w, r)
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

// okSet scripts a holder answering every query with the given PSMs.
func okSet(psms ...api.PSMJSON) http.HandlerFunc {
	if psms == nil {
		psms = []api.PSMJSON{}
	}
	return func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.SearchResponse{
			Results: []api.QueryResult{{Scan: 0, PSMs: psms}},
		})
	}
}

// failSet scripts a holder answering every query with an error status.
func failSet(status int, msg string) http.HandlerFunc {
	return func(w http.ResponseWriter, r *http.Request) {
		api.WriteError(w, status, "%s", msg)
	}
}

// TestScatterPartialFailureTable drives the gather aggregation through
// its partial-failure paths with scripted holders: an uncovered set, a
// holder failing over within its set, a final retryable reply, a
// definitive client error, duplicate and empty per-set results, and an
// undecodable body.
func TestScatterPartialFailureTable(t *testing.T) {
	psmHi := api.PSMJSON{Peptide: 2, Sequence: "HIK", Score: 9, Shared: 3, Precursor: 500.25, Shard: 0}
	psmLo := api.PSMJSON{Peptide: 7, Sequence: "LOK", Score: 4, Shared: 2, Precursor: 501.5, Shard: 1}

	type holder struct {
		set      int
		queueLen int
		search   http.HandlerFunc
	}
	cases := []struct {
		name           string
		holders        []holder
		wantStatus     int
		wantBody       string // exact body (trimmed) when non-empty
		wantContains   string // substring expectation otherwise
		wantSetDown    int64
		wantFailovers  bool
		wantRetryAfter bool
	}{
		{
			name:         "uncovered shard-set fails explicitly",
			holders:      []holder{{set: 0, search: okSet(psmHi)}},
			wantStatus:   http.StatusServiceUnavailable,
			wantContains: "shard-set 1",
			wantSetDown:  1,
		},
		{
			name: "holder timeout mid-gather fails over within the set",
			holders: []holder{
				{set: 0, queueLen: 0, search: failSet(http.StatusServiceUnavailable, "draining")},
				{set: 0, queueLen: 5, search: okSet(psmHi)},
				{set: 1, search: okSet(psmLo)},
			},
			wantStatus: http.StatusOK,
			wantBody: `{"results":[{"scan":0,"psms":[` +
				`{"peptide":2,"sequence":"HIK","score":9,"shared":3,"precursor":500.25,"shard":0},` +
				`{"peptide":7,"sequence":"LOK","score":4,"shared":2,"precursor":501.5,"shard":1}]}]}`,
			wantFailovers: true,
		},
		{
			name: "final retryable reply relayed verbatim",
			holders: []holder{
				{set: 0, search: okSet(psmHi)},
				{set: 1, search: failSet(http.StatusTooManyRequests, "admission queue full")},
			},
			wantStatus:     http.StatusTooManyRequests,
			wantContains:   "admission queue full",
			wantRetryAfter: true,
		},
		{
			name: "definitive client error relayed verbatim",
			holders: []holder{
				{set: 0, search: okSet(psmHi)},
				{set: 1, search: failSet(http.StatusBadRequest, "spectrum 0: no peaks")},
			},
			wantStatus:   http.StatusBadRequest,
			wantContains: "spectrum 0: no peaks",
		},
		{
			name: "duplicate rows from two sets merge deterministically",
			holders: []holder{
				{set: 0, search: okSet(psmHi)},
				{set: 1, search: okSet(psmHi)},
			},
			wantStatus: http.StatusOK,
			wantBody: `{"results":[{"scan":0,"psms":[` +
				`{"peptide":2,"sequence":"HIK","score":9,"shared":3,"precursor":500.25,"shard":0},` +
				`{"peptide":2,"sequence":"HIK","score":9,"shared":3,"precursor":500.25,"shard":0}]}]}`,
		},
		{
			name: "empty shard-set results merge to an empty array",
			holders: []holder{
				{set: 0, search: okSet()},
				{set: 1, search: okSet()},
			},
			wantStatus: http.StatusOK,
			wantBody:   `{"results":[{"scan":0,"psms":[]}]}`,
		},
		{
			name: "undecodable holder body is a gateway error",
			holders: []holder{
				{set: 0, search: okSet(psmHi)},
				{set: 1, search: func(w http.ResponseWriter, r *http.Request) {
					w.WriteHeader(http.StatusOK)
					io.WriteString(w, "not json")
				}},
			},
			wantStatus:   http.StatusBadGateway,
			wantContains: "undecodable",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			var urls []string
			for _, h := range tc.holders {
				f := startScatterFake(t, h.set, 2, fmt.Sprintf("set-digest-%d", h.set), h.queueLen, h.search)
				urls = append(urls, f.ts.URL)
			}
			rt, ts := testRouter(t, scatterProbes(), urls...)

			resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody))
			if err != nil {
				t.Fatal(err)
			}
			data, err := io.ReadAll(resp.Body)
			resp.Body.Close()
			if err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != tc.wantStatus {
				t.Fatalf("status %d, want %d; body %s", resp.StatusCode, tc.wantStatus, data)
			}
			body := string(bytes.TrimSpace(data))
			if tc.wantBody != "" && body != tc.wantBody {
				t.Fatalf("body:\n got %s\nwant %s", body, tc.wantBody)
			}
			if tc.wantContains != "" && !bytes.Contains(data, []byte(tc.wantContains)) {
				t.Fatalf("body %s does not mention %q", data, tc.wantContains)
			}
			if tc.wantRetryAfter && resp.Header.Get("Retry-After") == "" {
				t.Error("relayed 429 lost its Retry-After header")
			}
			st := rt.Stats()
			if st.Scatter == nil {
				t.Fatal("scatter stats block missing")
			}
			if st.Scatter.RejectedSetDown != tc.wantSetDown {
				t.Fatalf("rejected_shard_set_down %d, want %d", st.Scatter.RejectedSetDown, tc.wantSetDown)
			}
			if tc.wantFailovers && st.Failovers == 0 {
				t.Fatal("expected an in-set failover to be counted")
			}
		})
	}
}

// TestScatterGateExcludesNonconforming: within a set, holders
// disagreeing with the set's digest are gated; replicas announcing a
// different partition shape are gated; the composed digest reflects the
// adopted per-set digests.
func TestScatterGateExcludesNonconforming(t *testing.T) {
	good0 := startScatterFake(t, 0, 2, "dig-a", 0, okSet())
	stale0 := startScatterFake(t, 0, 2, "dig-old", 0, okSet())
	shape3 := startScatterFake(t, 1, 3, "dig-x", 0, okSet())
	good1 := startScatterFake(t, 1, 2, "dig-b", 0, okSet())
	rt, ts := testRouter(t, scatterProbes(), good0.ts.URL, stale0.ts.URL, shape3.ts.URL, good1.ts.URL)

	for i := 0; i < 4; i++ {
		if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := stale0.searches.Load(); got != 0 {
		t.Fatalf("stale-digest holder served %d requests; the gate must exclude it", got)
	}
	if got := shape3.searches.Load(); got != 0 {
		t.Fatalf("wrong-shape holder served %d requests; the gate must exclude it", got)
	}

	st := rt.Stats()
	if !st.Replicas[1].DigestMismatch || !st.Replicas[2].DigestMismatch {
		t.Fatalf("gated holders not flagged: %+v", st.Replicas)
	}
	want := engine.ComposeClusterDigest([]string{"dig-a", "dig-b"})
	if st.Digest != want {
		t.Fatalf("cluster digest %q, want composition of the adopted set digests %q", st.Digest, want)
	}
	if st.Scatter == nil || st.Scatter.Covered != 2 ||
		st.Scatter.SetDigests[0] != "dig-a" || st.Scatter.SetDigests[1] != "dig-b" {
		t.Fatalf("scatter stats wrong: %+v", st.Scatter)
	}
}

// TestUniformGateExcludesPartialHolder: a non-scatter router must never
// route whole-database traffic to a holder announcing a multi-set slice
// — that would silently truncate results.
func TestUniformGateExcludesPartialHolder(t *testing.T) {
	partial := startScatterFake(t, 0, 2, "dig-a", 0, okSet())
	whole := startFake(t, "dig-w", 0, true)
	rt, ts := testRouter(t, fastProbes(), partial.ts.URL, whole.ts.URL)

	for i := 0; i < 4; i++ {
		if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := partial.searches.Load(); got != 0 {
		t.Fatalf("partial holder served %d whole-database requests", got)
	}
	st := rt.Stats()
	if st.Digest != "dig-w" {
		t.Fatalf("cluster digest %q, want the whole store's", st.Digest)
	}
	if !st.Replicas[0].DigestMismatch {
		t.Fatalf("partial holder not flagged: %+v", st.Replicas[0])
	}
}
