package router

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"sync"

	"lbe/internal/api"
	"lbe/internal/engine"
)

// Scatter/gather mode: the replicas hold shard-sets of one partitioned
// store (lbe-index -shard-sets) and announce their slice on /healthz.
// The router discovers the topology from those announcements — no static
// configuration — fans each /search to one healthy holder per set, and
// merges the per-set top-K with api.MergeSearchResponses into the bytes
// a whole-store session would have produced. Partial coverage is an
// explicit failure: a set with no consistent healthy holder fails the
// query with a 503 naming the set, never a silently truncated answer.

// scatterState is the topology the probe loop discovered: the partition
// shape, the per-set store digests, and how many sets currently have a
// routable holder. It is rebuilt wholesale by every probe round and read
// under Router.mu.
type scatterState struct {
	sets        int      // shard-sets in the partition
	totalShards int      // shards across the whole store
	topK        int      // per-spectrum PSM cap the holders enforce
	covered     int      // sets with at least one routable holder
	setDigests  []string // per-set digest; "" while a set has no healthy holder
}

// conforms reports whether a replica's announced slice belongs to the
// partition shape the router locked onto.
func conforms(ss, shape *api.ShardSetJSON) bool {
	return ss != nil && ss.Sets == shape.Sets && ss.TotalShards == shape.TotalShards &&
		ss.TopK == shape.TopK && ss.Set >= 0 && ss.Set < shape.Sets
}

// gateScatter derives the partitioned-store consistency view. The
// partition shape comes from the lowest-indexed healthy replica that
// announces one; each set's digest is its lowest-indexed conforming
// healthy holder's, and holders disagreeing with their set's digest (or
// with the shape, or announcing no slice at all) are gated out of
// routing. The cluster digest composes the per-set digests — but only
// once every set is covered; with a set dark there is no whole-store
// contract to cache under, so the digest goes empty and the answer cache
// is bypassed rather than fed partial answers.
func (rt *Router) gateScatter() {
	var shape *api.ShardSetJSON
	for _, r := range rt.replicas {
		r.mu.Lock()
		if r.healthy && shape == nil && r.shardSet != nil {
			ss := *r.shardSet
			shape = &ss
		}
		r.mu.Unlock()
	}
	if shape == nil {
		// Nothing announces a topology: keep any previously discovered
		// shape out of play and route nowhere until a holder returns.
		rt.setClusterDigest("", nil)
		for _, r := range rt.replicas {
			r.mu.Lock()
			r.mismatch = r.healthy
			r.mu.Unlock()
		}
		return
	}
	sc := &scatterState{
		sets:        shape.Sets,
		totalShards: shape.TotalShards,
		topK:        shape.TopK,
		setDigests:  make([]string, shape.Sets),
	}
	for _, r := range rt.replicas {
		r.mu.Lock()
		if r.healthy && conforms(r.shardSet, shape) && sc.setDigests[r.shardSet.Set] == "" {
			sc.setDigests[r.shardSet.Set] = r.digest
		}
		r.mu.Unlock()
	}
	for _, r := range rt.replicas {
		r.mu.Lock()
		r.mismatch = r.healthy &&
			(!conforms(r.shardSet, shape) || r.digest != sc.setDigests[r.shardSet.Set])
		r.mu.Unlock()
	}
	for _, d := range sc.setDigests {
		if d != "" {
			sc.covered++
		}
	}
	digest := ""
	if sc.covered == sc.sets {
		digest = engine.ComposeClusterDigest(sc.setDigests)
	}
	rt.setClusterDigest(digest, sc)
}

// scatterView snapshots the discovered topology, nil before any probe
// found one.
func (rt *Router) scatterView() *scatterState {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.scatter
}

// holderOf is the pick filter selecting routable holders of one set.
func holderOf(set int) func(*replica) bool {
	return func(r *replica) bool {
		r.mu.Lock()
		ss := r.shardSet
		r.mu.Unlock()
		return ss != nil && ss.Set == set
	}
}

// setReply is one shard-set's outcome of a scatter round.
type setReply struct {
	status   int    // HTTP status of the reply that stands; 0 if none
	data     []byte // body of that reply
	err      error  // transport failure with no HTTP reply
	noHolder bool   // no routable holder was available for the set
}

// fetchSet runs the per-set failover loop: each attempt goes to a
// routable holder of the set not yet tried, within the same
// FailoverRetries budget the uniform path uses. Transport failures mark
// the holder down (the next probe revives it); retryable statuses (429,
// 5xx) leave health to the prober and try the next holder.
func (rt *Router) fetchSet(ctx context.Context, set int, body []byte) setReply {
	tried := make(map[*replica]bool)
	attempts := 1 + rt.cfg.FailoverRetries
	triedAny := false
	var last setReply
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			return setReply{err: err}
		}
		rep := rt.pick(tried, holderOf(set))
		if rep == nil {
			break
		}
		triedAny = true
		tried[rep] = true
		if attempt > 0 {
			rt.failovers.Add(1)
		}

		rep.inflight.Add(1)
		status, data, err := rep.client.Do(ctx, http.MethodPost, "/search", body)
		rep.inflight.Add(-1)

		if err != nil {
			if ctx.Err() != nil {
				return setReply{err: ctx.Err()}
			}
			rep.failed.Add(1)
			rep.markDown()
			last = setReply{err: err}
			continue
		}
		if status >= http.StatusInternalServerError || status == http.StatusTooManyRequests {
			rep.failed.Add(1)
			last = setReply{status: status, data: data}
			continue
		}
		rep.routed.Add(1)
		return setReply{status: status, data: data}
	}
	if !triedAny {
		return setReply{noHolder: true}
	}
	return last
}

// relay writes one replica reply verbatim, preserving Retry-After
// semantics on backpressure.
func relay(w http.ResponseWriter, status int, data []byte) {
	if status == http.StatusTooManyRequests {
		w.Header().Set("Retry-After", "1")
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_, _ = w.Write(data)
}

// scatterSearch fans one raw /search body to every shard-set
// concurrently, gathers the per-set responses, and writes the merged
// outcome. Like proxySearch it returns the (status, data) it wrote when
// that reply is cacheable-shaped, and (0, nil) for synthesized errors.
//
// Aggregation order, strictest first: a cancelled caller wins (504);
// then an uncovered set (503 naming the set — explicit partial-failure,
// never truncation); then a definitive non-retryable replica reply such
// as a 400, relayed verbatim (every set saw the same request, so one
// set's verdict is the request's); then a final retryable reply (429,
// 503, 5xx) relayed verbatim; then a transport failure (502). Only when
// every set answered 200 do the parts merge.
func (rt *Router) scatterSearch(w http.ResponseWriter, r *http.Request, body []byte) (int, []byte) {
	sc := rt.scatterView()
	if sc == nil {
		rt.rejectedNoReplica.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, "no shard-set topology discovered")
		return 0, nil
	}
	replies := make([]setReply, sc.sets)
	var wg sync.WaitGroup
	for s := 0; s < sc.sets; s++ {
		wg.Add(1)
		go func(s int) {
			defer wg.Done()
			replies[s] = rt.fetchSet(r.Context(), s, body)
		}(s)
	}
	wg.Wait()

	if err := r.Context().Err(); err != nil {
		api.WriteError(w, http.StatusGatewayTimeout, "request cancelled: %v", err)
		return 0, nil
	}
	for s, rep := range replies {
		if rep.noHolder {
			rt.rejectedSetDown.Add(1)
			api.WriteError(w, http.StatusServiceUnavailable,
				"shard-set %d of %d has no consistent healthy holder", s, sc.sets)
			return 0, nil
		}
	}
	for _, rep := range replies {
		if rep.status != 0 && rep.status != http.StatusOK &&
			rep.status < http.StatusInternalServerError && rep.status != http.StatusTooManyRequests {
			relay(w, rep.status, rep.data)
			return rep.status, rep.data
		}
	}
	for _, rep := range replies {
		if rep.status != 0 && rep.status != http.StatusOK {
			relay(w, rep.status, rep.data)
			return rep.status, rep.data
		}
	}
	for s, rep := range replies {
		if rep.err != nil {
			api.WriteError(w, http.StatusBadGateway, "shard-set %d: every attempted holder failed: %v", s, rep.err)
			return 0, nil
		}
	}

	parts := make([]api.SearchResponse, sc.sets)
	for s, rep := range replies {
		if err := json.Unmarshal(rep.data, &parts[s]); err != nil {
			api.WriteError(w, http.StatusBadGateway, "shard-set %d returned an undecodable body: %v", s, err)
			return 0, nil
		}
	}
	merged, err := api.MergeSearchResponses(parts, sc.topK)
	if err != nil {
		api.WriteError(w, http.StatusBadGateway, "gather: %v", err)
		return 0, nil
	}
	// Encode exactly as api.WriteJSON does (json.Encoder, so the body is
	// newline-terminated): the merged bytes must be indistinguishable
	// from a whole-store replica's, cached or not.
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(merged); err != nil {
		api.WriteError(w, http.StatusInternalServerError, "encoding merged response: %v", err)
		return 0, nil
	}
	data := buf.Bytes()
	rt.routed.Add(1)
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(data)
	return http.StatusOK, data
}

// dispatchSearch routes one raw /search body through the mode the router
// was configured for: scatter/gather over shard-sets, or whole-store
// replica proxying.
func (rt *Router) dispatchSearch(w http.ResponseWriter, r *http.Request, body []byte) (int, []byte) {
	if rt.cfg.Scatter {
		return rt.scatterSearch(w, r, body)
	}
	return rt.proxySearch(w, r, body)
}
