package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/mods"
	"lbe/internal/server"
)

// startCachedReplica boots a replica with the replica-tier answer cache
// enabled, warm-started from the corpus store like startReplica.
func startCachedReplica(t *testing.T, c corpus) *testReplica {
	t.Helper()
	sess, peptides, err := engine.OpenSession(c.storeDir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess, peptides, server.Config{
		BatchSize:     8,
		FlushInterval: 2 * time.Millisecond,
		CacheBytes:    8 << 20,
	})
	ts := httptest.NewServer(srv.Handler())
	r := &testReplica{sess: sess, srv: srv, ts: ts}
	t.Cleanup(func() { r.kill() })
	return r
}

// zipfReplayOrder builds a duplicate-heavy request order: every query
// appears at least once (so responses can be checked exhaustively), plus
// extra zipf-skewed draws concentrating repeats on the head of the pool.
func zipfReplayOrder(rng *rand.Rand, pool, extra int, s float64) []int {
	cdf := make([]float64, pool)
	sum := 0.0
	for i := 0; i < pool; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	var order []int
	for i := 0; i < pool; i++ {
		order = append(order, i)
	}
	for j := 0; j < extra; j++ {
		k := sort.SearchFloat64s(cdf, rng.Float64()*sum)
		if k >= pool {
			k = pool - 1
		}
		order = append(order, k)
	}
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })
	return order
}

// replayThrough posts the order through the router from concurrent
// clients and returns one body per query index, failing on any non-200
// or on duplicates of the same query receiving different bytes.
func replayThrough(t *testing.T, ts *httptest.Server, c corpus, order []int) [][]byte {
	t.Helper()
	got := make([][]byte, len(c.queries))
	errs := make([]error, len(order))
	var mu sync.Mutex
	var wg sync.WaitGroup
	for j, qi := range order {
		wg.Add(1)
		go func(j, qi int) {
			defer wg.Done()
			status, data := postRaw(t, ts.Client(), ts.URL, c.queries[qi])
			if status != http.StatusOK {
				errs[j] = fmt.Errorf("replay %d (query %d): status %d: %s", j, qi, status, data)
				return
			}
			mu.Lock()
			defer mu.Unlock()
			if got[qi] != nil && !bytes.Equal(got[qi], data) {
				errs[j] = fmt.Errorf("query %d: concurrent duplicates received different bodies", qi)
				return
			}
			got[qi] = data
		}(j, qi)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

// TestCachedRouterMatchesSessionSearch is the two-tier equivalence
// check: a zipf-skewed duplicate-heavy workload from concurrent clients
// through a cache-enabled router over cache-enabled replicas must
// produce responses byte-identical to direct Session.Search, while the
// router cache demonstrably absorbs the repeats.
func TestCachedRouterMatchesSessionSearch(t *testing.T) {
	c := testCorpus(t)
	r1 := startCachedReplica(t, c)
	r2 := startCachedReplica(t, c)
	cfg := fastProbes()
	cfg.CacheBytes = 8 << 20
	rt, ts := testRouter(t, cfg, r1.ts.URL, r2.ts.URL)

	ref := referencePSMs(t, c)
	rng := rand.New(rand.NewSource(43))
	order := zipfReplayOrder(rng, len(c.queries), 2*len(c.queries), 1.2)
	got := replayThrough(t, ts, c, order)
	requireMatchesReference(t, c, ref, got)

	st := rt.Stats()
	if st.Cache == nil {
		t.Fatal("cache-enabled router reports no cache stats")
	}
	if st.Cache.Hits+st.Cache.Collapsed == 0 {
		t.Fatalf("duplicate-heavy replay produced no router cache hits or collapses: %+v", st.Cache)
	}
	if st.Cache.Misses > int64(len(c.queries)) {
		t.Errorf("%d router cache misses for a %d-query pool; duplicates were re-proxied",
			st.Cache.Misses, len(c.queries))
	}
	// The replica tier surfaces its own cache blocks through the
	// aggregate (the router's singleflight may absorb all duplicates, so
	// only misses are guaranteed there).
	if st.Aggregate.Cache == nil || st.Aggregate.Cache.Misses == 0 {
		t.Fatalf("replica cache blocks missing from aggregate: %+v", st.Aggregate.Cache)
	}

	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	for _, want := range []string{
		"lbe_router_cache_hits_total", "lbe_router_cache_misses_total",
		"lbe_router_cache_invalidated_total", "lbe_router_cache_resident_bytes",
	} {
		if !strings.Contains(string(metrics), want) {
			t.Errorf("router /metrics missing %q", want)
		}
	}
}

// TestRouterCacheDigestFlipInvalidates swaps the store behind the
// router's lone replica URL mid-test: once the digest gate observes the
// change, the cached answers for the old store must be invalidated and
// subsequent responses must match a direct Session.Search over the NEW
// store, byte for byte.
func TestRouterCacheDigestFlipInvalidates(t *testing.T) {
	c := testCorpus(t)

	sessA, peptidesA, err := engine.OpenSession(c.storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer sessA.Close()
	srvA := server.New(sessA, peptidesA, server.Config{BatchSize: 8, FlushInterval: 2 * time.Millisecond})
	defer srvA.Close()

	// Store B is a genuinely different database — half the peptides —
	// built with the same engine knobs, so only the store differs.
	pepsB := c.peptides[:len(c.peptides)/2]
	cfgB := engine.DefaultSessionConfig()
	cfgB.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	cfgB.TopK = 5
	cfgB.Shards = 2
	sessB, err := engine.NewSession(pepsB, cfgB)
	if err != nil {
		t.Fatal(err)
	}
	defer sessB.Close()
	srvB := server.New(sessB, pepsB, server.Config{BatchSize: 8, FlushInterval: 2 * time.Millisecond})
	defer srvB.Close()

	digestA, digestB := sessA.Digest(), sessB.Digest()
	if digestA == digestB || digestA == "" || digestB == "" {
		t.Fatalf("store digests must be distinct and non-empty: %q vs %q", digestA, digestB)
	}

	// One replica URL whose backing store can be swapped atomically —
	// the router sees the same endpoint change databases under it.
	var backend atomic.Value
	backend.Store(srvA.Handler())
	front := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		backend.Load().(http.Handler).ServeHTTP(w, r)
	}))
	defer front.Close()

	cfg := fastProbes()
	cfg.CacheBytes = 4 << 20
	rt, ts := testRouter(t, cfg, front.URL)

	render := func(sess *engine.Session, peps []string) [][]byte {
		ref, err := sess.Search(context.Background(), c.queries)
		if err != nil {
			t.Fatal(err)
		}
		out := make([][]byte, len(c.queries))
		for i := range c.queries {
			w, err := json.Marshal(api.BuildSearchResponse(c.queries[i:i+1], ref.PSMs[i:i+1], peps))
			if err != nil {
				t.Fatal(err)
			}
			out[i] = bytes.TrimSpace(w)
		}
		return out
	}
	wantA, wantB := render(sessA, peptidesA), render(sessB, pepsB)
	differs := 0
	for i := range wantA {
		if !bytes.Equal(wantA[i], wantB[i]) {
			differs++
		}
	}
	if differs == 0 {
		t.Fatal("both stores answer every query identically; the flip would be unobservable")
	}

	rng := rand.New(rand.NewSource(44))
	order := zipfReplayOrder(rng, len(c.queries), len(c.queries), 1.2)

	// Phase 1: populate and serve from the cache against store A.
	got := replayThrough(t, ts, c, order)
	for i := range got {
		if !bytes.Equal(bytes.TrimSpace(got[i]), wantA[i]) {
			t.Fatalf("pre-flip query %d differs from store A Session.Search", i)
		}
	}
	if st := rt.Stats(); st.Cache.Hits+st.Cache.Collapsed == 0 {
		t.Fatalf("pre-flip replay never exercised the cache: %+v", st.Cache)
	}

	// Flip the store. The probe loop must observe the digest change and
	// purge every entry cached under store A.
	backend.Store(srvB.Handler())
	waitFor(t, func() bool {
		st := rt.Stats()
		return st.Digest == digestB && st.Cache.Invalidated > 0
	}, "digest flip never invalidated the router cache")

	// Phase 2: every response now matches store B — a single stale body
	// served from the old store's entries would fail the comparison.
	got = replayThrough(t, ts, c, order)
	for i := range got {
		if !bytes.Equal(bytes.TrimSpace(got[i]), wantB[i]) {
			t.Fatalf("post-flip query %d differs from store B Session.Search\nrouted: %s\ndirect: %s",
				i, got[i], wantB[i])
		}
	}
}
