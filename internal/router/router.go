// Package router is the multi-node serving tier: an HTTP front-end that
// fans /search requests over a set of lbe-serve replicas, extending the
// least-loaded dispatch of internal/sched from workers within one node to
// replicas across nodes — the cluster-level analogue of HiCOPS-style
// overlapped scheduling the ROADMAP points at.
//
// The router keeps a replica registry that it probes periodically:
// /healthz for liveness and the store-consistency digest, /stats for the
// live load figures (admission queue length and in-flight batches).
// Dispatch picks the least-loaded healthy replica when its load snapshot
// is fresh, and falls back to round-robin when every snapshot has gone
// stale. A replica that fails an attempt is marked down until the next
// probe revives it, and the failed request fails over to a different
// replica within a bounded retry budget — searches are pure reads, so
// re-sending is safe.
//
// Consistency gate: replicas are only mixed when their digests
// (engine.Session.Digest, surfaced on /healthz) agree. The cluster's
// contract is the digest of the lowest-indexed healthy replica; healthy
// replicas answering with a different digest are excluded from routing
// and flagged in /stats — serving a blend of two databases would return
// answers no single Session could produce.
//
// Scatter/gather: with Config.Scatter the replicas are holders of a
// partitioned store's shard-sets (lbe-index -shard-sets) announcing
// their slice on /healthz. The router discovers the partition shape from
// those announcements, gates consistency per shard-set, fans each
// /search to one healthy holder per set with the same failover budget,
// and merges the per-set top-K into the bytes a whole-store session
// would render (see scatter.go and api.MergeSearchResponses). A set with
// no healthy holder fails the query explicitly — partial coverage never
// truncates silently.
//
// The router serves the same /search, /healthz, /stats and /metrics
// surface as a replica, so lbe-client (and anything else speaking
// internal/api) works unchanged through it. /search bodies and replica
// responses are passed through byte for byte.
package router

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"lbe/internal/api"
	"lbe/internal/qcache"
)

// Config tunes the routing tier. The zero value of any field falls back
// to its DefaultConfig value.
type Config struct {
	// ProbeInterval is how often every replica's /healthz and /stats are
	// refreshed.
	ProbeInterval time.Duration
	// ProbeTimeout bounds one probe exchange.
	ProbeTimeout time.Duration
	// RequestTimeout is the per-attempt deadline for a proxied /search.
	RequestTimeout time.Duration
	// FailoverRetries is how many additional replicas a failed /search
	// attempt may try (each attempt goes to a replica not yet tried).
	// Negative means no failover.
	FailoverRetries int
	// StatsStaleAfter bounds how old a replica's load snapshot may be and
	// still drive least-loaded dispatch; with no fresh snapshot among the
	// candidates, dispatch falls back to round-robin.
	StatsStaleAfter time.Duration
	// MaxBodyBytes caps the /search request body.
	MaxBodyBytes int64
	// CacheBytes sizes the merged-response answer cache (in resident
	// bytes). 0 disables caching — the zero value opts out, it is not
	// defaulted.
	CacheBytes int64
	// CacheTTL expires cache entries after this duration; 0 means
	// entries live until evicted or invalidated by a digest change.
	CacheTTL time.Duration
	// Scatter enables shard-set scatter/gather mode: the replicas are
	// holders of a partitioned store's shard-sets (announced on their
	// /healthz), and every /search fans out to one healthy holder per
	// set, with the per-set top-K merged at the router into the response
	// a whole-store session would produce. In this mode the consistency
	// gate works per shard-set and the cluster digest composes the
	// per-set digests (engine.ComposeClusterDigest).
	Scatter bool
}

// DefaultConfig returns routing defaults: 2s probes with a 1s timeout,
// 30s per-attempt deadline, one failover retry, snapshots stale after
// three probe intervals.
func DefaultConfig() Config {
	return Config{
		ProbeInterval:   2 * time.Second,
		ProbeTimeout:    time.Second,
		RequestTimeout:  30 * time.Second,
		FailoverRetries: 1,
		StatsStaleAfter: 6 * time.Second,
		MaxBodyBytes:    32 << 20,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = d.ProbeInterval
	}
	if c.ProbeTimeout <= 0 {
		c.ProbeTimeout = d.ProbeTimeout
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = d.RequestTimeout
	}
	if c.FailoverRetries < 0 {
		c.FailoverRetries = 0
	}
	if c.StatsStaleAfter <= 0 {
		c.StatsStaleAfter = 3 * c.ProbeInterval
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	return c
}

// replica is one registry entry: a typed client plus the probed state.
type replica struct {
	url    string
	client *api.Client // Retries: 0 — failover picks a different replica instead

	mu       sync.Mutex
	healthy  bool
	mismatch bool              // digest differs from the cluster digest
	digest   string            // last probed digest
	shardSet *api.ShardSetJSON // announced shard-set slice; nil for a whole store
	shards   int
	groups   int
	probedAt time.Time // last successful health probe
	statsAt  time.Time // last successful stats snapshot
	queueLen int       // replica's admission queue length at statsAt
	busy     int       // replica's in-flight batch count at statsAt
	stats    api.StatsResponse

	inflight atomic.Int64 // requests this router currently has on the replica
	routed   atomic.Int64 // requests the replica answered (any pass-through status)
	failed   atomic.Int64 // attempts that errored or answered retryably
}

// markDown records a failed probe or proxied attempt; the next
// successful probe revives the replica.
func (r *replica) markDown() {
	r.mu.Lock()
	r.healthy = false
	r.mu.Unlock()
}

// Router fans /search requests over the replica registry. Create with
// New, mount Handler, call Shutdown to drain.
type Router struct {
	cfg      Config
	replicas []*replica

	rr atomic.Uint64 // round-robin cursor and least-loaded tie-breaker

	routed            atomic.Int64
	failovers         atomic.Int64
	rejectedDrain     atomic.Int64
	rejectedNoReplica atomic.Int64
	rejectedSetDown   atomic.Int64 // scatter requests refused for an uncovered shard-set

	quit      chan struct{}
	probeDone chan struct{}
	reqWG     sync.WaitGroup

	// probeCtx is the probe loop's lifecycle root; stopProbes cancels it
	// on Shutdown so a probe blocked in a slow Health call aborts
	// immediately instead of running out its timeout.
	probeCtx   context.Context
	stopProbes context.CancelFunc

	mu            sync.RWMutex
	draining      bool
	clusterDigest string
	scatter       *scatterState // discovered shard-set topology; nil until a probe finds one

	// cache holds merged 200 response bodies keyed under the cluster
	// digest; nil when Config.CacheBytes is 0.
	cache *qcache.Cache[[]byte]
}

// New builds a router over the replica base URLs and starts its probe
// loop. The first probe round runs synchronously so a freshly
// constructed router can route immediately when its replicas are up.
func New(replicaURLs []string, cfg Config) (*Router, error) {
	cfg = cfg.withDefaults()
	if len(replicaURLs) == 0 {
		return nil, fmt.Errorf("router: no replicas configured")
	}
	seen := make(map[string]bool, len(replicaURLs))
	rt := &Router{
		cfg:       cfg,
		quit:      make(chan struct{}),
		probeDone: make(chan struct{}),
	}
	//lbe:ignore ctxflow the router owns its probe lifecycle; this root is cancelled by Shutdown, and callers bound requests via their own contexts
	rt.probeCtx, rt.stopProbes = context.WithCancel(context.Background())
	if cfg.CacheBytes > 0 {
		rt.cache = qcache.New[[]byte](
			qcache.Config{MaxBytes: cfg.CacheBytes, TTL: cfg.CacheTTL},
			func(b []byte) int { return len(b) })
	}
	for _, raw := range replicaURLs {
		u, err := url.Parse(strings.TrimRight(strings.TrimSpace(raw), "/"))
		if err != nil || u.Scheme == "" || u.Host == "" {
			return nil, fmt.Errorf("router: replica %q is not an absolute URL", raw)
		}
		base := u.String()
		if seen[base] {
			return nil, fmt.Errorf("router: replica %s listed twice", base)
		}
		seen[base] = true
		client := api.New(base)
		client.Retries = 0 // the router fails over across replicas instead
		client.Timeout = cfg.RequestTimeout
		rt.replicas = append(rt.replicas, &replica{url: base, client: client})
	}
	rt.probeAll()
	go rt.probeLoop()
	return rt, nil
}

// probeLoop refreshes the registry until Shutdown.
func (rt *Router) probeLoop() {
	defer close(rt.probeDone)
	ticker := time.NewTicker(rt.cfg.ProbeInterval)
	defer ticker.Stop()
	for {
		select {
		case <-ticker.C:
			rt.probeAll()
		case <-rt.quit:
			return
		}
	}
}

// probeAll refreshes every replica concurrently, then re-derives the
// cluster digest and each replica's consistency flag — per shard-set in
// scatter mode, cluster-wide otherwise.
func (rt *Router) probeAll() {
	var wg sync.WaitGroup
	for _, r := range rt.replicas {
		wg.Add(1)
		go func(r *replica) {
			defer wg.Done()
			rt.probeOne(r)
		}(r)
	}
	wg.Wait()
	if rt.cfg.Scatter {
		rt.gateScatter()
		return
	}
	rt.gateUniform()
}

// setClusterDigest publishes the freshly derived cluster digest. A store
// change observed by the digest gate eagerly invalidates the answer
// cache. Keys embed the digest, so correctness never depends on this
// purge — it reclaims the retired entries' memory and makes the
// invalidation visible in the counters. A full outage (digest gone) is
// not a store change: entries stay for the replicas' return.
func (rt *Router) setClusterDigest(digest string, sc *scatterState) {
	rt.mu.Lock()
	prev := rt.clusterDigest
	rt.clusterDigest = digest
	rt.scatter = sc
	rt.mu.Unlock()
	if rt.cache != nil && prev != "" && digest != "" && digest != prev {
		rt.cache.Purge()
	}
}

// gateUniform derives the replicated-store consistency view: the cluster
// digest is the lowest-indexed healthy replica's — a deterministic
// choice that follows a coordinated store upgrade by itself. Replicas
// disagreeing with it are gated out of routing, as are holders of a
// multi-set store slice: routing a whole-database request to a partial
// holder would silently truncate results.
func (rt *Router) gateUniform() {
	digest := ""
	for _, r := range rt.replicas {
		r.mu.Lock()
		if r.healthy && digest == "" && !isPartialHolder(r.shardSet) {
			digest = r.digest
		}
		r.mu.Unlock()
	}
	rt.setClusterDigest(digest, nil)
	for _, r := range rt.replicas {
		r.mu.Lock()
		r.mismatch = r.healthy && (r.digest != digest || isPartialHolder(r.shardSet))
		r.mu.Unlock()
	}
}

// isPartialHolder reports whether the announced shard-set slice covers
// less than the whole database (a single-set "partition" is complete and
// may serve whole-database traffic).
func isPartialHolder(ss *api.ShardSetJSON) bool {
	return ss != nil && ss.Sets > 1
}

// probeOne refreshes one replica's health and load snapshot.
func (rt *Router) probeOne(r *replica) {
	ctx, cancel := context.WithTimeout(rt.probeCtx, rt.cfg.ProbeTimeout)
	defer cancel()
	h, err := r.client.Health(ctx)
	if err != nil || h.Status != "ok" {
		r.markDown()
		return
	}
	now := time.Now()
	r.mu.Lock()
	r.healthy = true
	r.digest = h.Digest
	r.shards = h.Shards
	r.groups = h.Groups
	r.shardSet = h.ShardSet
	r.probedAt = now
	r.mu.Unlock()

	st, err := r.client.Stats(ctx)
	if err != nil {
		return // health stands; dispatch just loses the load signal
	}
	r.mu.Lock()
	r.statsAt = time.Now()
	r.queueLen = st.QueueLen
	r.busy = st.InFlight
	r.stats = *st
	r.mu.Unlock()
}

// routable reports whether the replica may receive traffic.
func (r *replica) routable() bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.healthy && !r.mismatch
}

// load returns the replica's dispatch score and whether its snapshot is
// fresh enough to trust. The score blends the replica's own admission
// queue and busy batches (probed) with the router's live count of
// requests it has outstanding there.
func (r *replica) load(staleAfter time.Duration) (score int64, fresh bool) {
	r.mu.Lock()
	queue, busy, at := r.queueLen, r.busy, r.statsAt
	r.mu.Unlock()
	score = int64(queue+busy) + r.inflight.Load()
	return score, !at.IsZero() && time.Since(at) <= staleAfter
}

// pick selects the dispatch target among routable replicas not in
// tried and accepted by want (nil accepts all): the least-loaded replica
// with a fresh load snapshot, or plain round-robin when no candidate's
// snapshot is fresh.
func (rt *Router) pick(tried map[*replica]bool, want func(*replica) bool) *replica {
	var candidates []*replica
	for _, r := range rt.replicas {
		if !tried[r] && r.routable() && (want == nil || want(r)) {
			candidates = append(candidates, r)
		}
	}
	if len(candidates) == 0 {
		return nil
	}
	cursor := int(rt.rr.Add(1)-1) % len(candidates)

	// Scan from the round-robin cursor so equal scores rotate instead of
	// pinning an idle cluster's whole trickle onto the first replica.
	best, bestScore := -1, int64(0)
	for i := range candidates {
		j := (cursor + i) % len(candidates)
		score, fresh := candidates[j].load(rt.cfg.StatsStaleAfter)
		if !fresh {
			continue
		}
		if best == -1 || score < bestScore {
			best, bestScore = j, score
		}
	}
	if best >= 0 {
		return candidates[best]
	}
	return candidates[cursor]
}

// Handler returns the router's HTTP routes — the same surface a replica
// serves.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", rt.handleSearch)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/stats", rt.handleStats)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// isDraining reports whether Shutdown has begun.
func (rt *Router) isDraining() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	return rt.draining
}

// admit registers one proxied request with the drain accounting; it
// fails when the router is draining.
func (rt *Router) admit() bool {
	rt.mu.RLock()
	defer rt.mu.RUnlock()
	if rt.draining {
		return false
	}
	rt.reqWG.Add(1)
	return true
}

// handleSearch answers one /search request: from the answer cache when
// enabled and hit, otherwise by proxying — the raw body is forwarded to
// the picked replica and the replica's response is returned byte for
// byte. On a transport error, timeout or overload status the replica is
// marked down (transport errors only) and the request fails over to a
// replica not yet tried, within the FailoverRetries budget.
func (rt *Router) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		api.WriteError(w, http.StatusMethodNotAllowed, "POST a SearchRequest JSON body")
		return
	}
	if !rt.admit() {
		rt.rejectedDrain.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, "router is draining")
		return
	}
	defer rt.reqWG.Done()

	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		api.WriteError(w, http.StatusBadRequest, "reading request body: %v", err)
		return
	}

	if rt.cache != nil {
		rt.searchCached(w, r, body)
		return
	}
	rt.dispatchSearch(w, r, body)
}

// proxySearch runs the failover attempt loop for one raw /search body
// and writes the outcome. It returns the pass-through reply's (status,
// data) so a caching caller can store a successful body; a synthesized
// reply (no replica, every attempt failed, caller cancelled) returns
// (0, nil).
func (rt *Router) proxySearch(w http.ResponseWriter, r *http.Request, body []byte) (int, []byte) {
	tried := make(map[*replica]bool)
	attempts := 1 + rt.cfg.FailoverRetries
	var lastErr error
	lastStatus, lastData := 0, []byte(nil) // last failed attempt's HTTP reply, if it had one
	for attempt := 0; attempt < attempts; attempt++ {
		if err := r.Context().Err(); err != nil {
			api.WriteError(w, http.StatusGatewayTimeout, "request cancelled: %v", err)
			return 0, nil
		}
		rep := rt.pick(tried, nil)
		if rep == nil {
			break
		}
		tried[rep] = true
		if attempt > 0 {
			rt.failovers.Add(1)
		}

		rep.inflight.Add(1)
		status, data, err := rep.client.Do(r.Context(), http.MethodPost, "/search", body)
		rep.inflight.Add(-1)

		if err != nil {
			if r.Context().Err() != nil {
				// The caller hung up or timed out mid-proxy; that is not
				// the replica's failure, so its health stands.
				api.WriteError(w, http.StatusGatewayTimeout, "request cancelled: %v", r.Context().Err())
				return 0, nil
			}
			// Transport failure: the replica is likely gone; stop routing
			// to it until a probe says otherwise.
			rep.failed.Add(1)
			rep.markDown()
			lastErr = err
			lastStatus, lastData = 0, nil
			continue
		}
		if status >= http.StatusInternalServerError || status == http.StatusTooManyRequests {
			// The replica answered but cannot serve this request (drain,
			// overload, engine failure). It is alive — leave its health to
			// the prober — but give the request to someone else.
			rep.failed.Add(1)
			lastErr = &api.StatusError{Code: status, Message: fmt.Sprintf("replica %s", rep.url)}
			lastStatus, lastData = status, data
			continue
		}
		rep.routed.Add(1)
		rt.routed.Add(1)
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(status)
		_, _ = w.Write(data)
		return status, data
	}

	switch {
	case lastErr == nil:
		rt.rejectedNoReplica.Add(1)
		api.WriteError(w, http.StatusServiceUnavailable, "no consistent healthy replica available")
	case lastStatus != 0:
		// Every failover attempt was spent and the final one got a real
		// reply (429 backpressure, 503 drain, engine 5xx): relay it
		// verbatim, preserving the replica's error body and the
		// Retry-After semantics a backoff-aware client depends on,
		// instead of masking it behind a synthesized 502.
		if lastStatus == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "1")
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(lastStatus)
		_, _ = w.Write(lastData)
	case errors.Is(lastErr, context.Canceled) || errors.Is(lastErr, context.DeadlineExceeded):
		api.WriteError(w, http.StatusGatewayTimeout, "request cancelled or deadline exceeded: %v", lastErr)
	default:
		api.WriteError(w, http.StatusBadGateway, "every attempted replica failed: %v", lastErr)
	}
	return 0, nil
}

// handleHealthz answers with the cluster view: ok while at least one
// consistent healthy replica is routable — in scatter mode, while every
// shard-set has one, since a partially covered partition cannot answer
// any query. Shards and Groups describe the whole logical store either
// way.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	rt.mu.RLock()
	digest := rt.clusterDigest
	sc := rt.scatter
	rt.mu.RUnlock()
	h := api.HealthResponse{Status: "ok", Digest: digest}
	routable := 0
	seenSet := make(map[int]bool)
	for _, rep := range rt.replicas {
		if !rep.routable() {
			continue
		}
		routable++
		rep.mu.Lock()
		if sc != nil {
			// Per-set holders each carry a slice of the store; the groups
			// of one holder per set sum to the whole store's.
			if ss := rep.shardSet; ss != nil && !seenSet[ss.Set] {
				seenSet[ss.Set] = true
				h.Groups += rep.groups
			}
		} else {
			h.Shards, h.Groups = rep.shards, rep.groups
		}
		rep.mu.Unlock()
	}
	if sc != nil {
		h.Shards = sc.totalShards
	}
	switch {
	case rt.isDraining():
		h.Status = "draining"
	case routable == 0:
		h.Status = "unavailable"
	case sc != nil && sc.covered < sc.sets:
		h.Status = "unavailable"
	case rt.cfg.Scatter && sc == nil:
		h.Status = "unavailable"
	}
	if h.Status != "ok" {
		api.WriteJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	api.WriteJSON(w, http.StatusOK, h)
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, rt.Stats())
}

// handleMetrics renders the aggregate and routing figures in Prometheus
// text form.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := rt.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(api.FormatRouterMetrics(&st))
}

// ageMillis renders a probe timestamp as an age, -1 before the first
// success.
func ageMillis(at time.Time, now time.Time) int64 {
	if at.IsZero() {
		return -1
	}
	return now.Sub(at).Milliseconds()
}

// Stats snapshots the routing counters, the replica registry, and the
// aggregate of the replicas' own stats (scalar sums over replicas with a
// snapshot; per-shard and per-worker detail stays on the replicas).
func (rt *Router) Stats() api.RouterStatsResponse {
	rt.mu.RLock()
	digest := rt.clusterDigest
	draining := rt.draining
	sc := rt.scatter
	rt.mu.RUnlock()
	out := api.RouterStatsResponse{
		Status:            "ok",
		Digest:            digest,
		Routed:            rt.routed.Load(),
		Failovers:         rt.failovers.Load(),
		RejectedDrain:     rt.rejectedDrain.Load(),
		RejectedNoReplica: rt.rejectedNoReplica.Load(),
		Cache:             rt.cacheStats(),
	}
	if sc != nil {
		out.Scatter = &api.RouterScatterJSON{
			Sets:            sc.sets,
			TotalShards:     sc.totalShards,
			Covered:         sc.covered,
			SetDigests:      append([]string(nil), sc.setDigests...),
			RejectedSetDown: rt.rejectedSetDown.Load(),
		}
	}
	if draining {
		out.Status = "draining"
	}
	now := time.Now()
	agg := &out.Aggregate
	agg.Status = out.Status
	agg.Digest = digest
	for _, rep := range rt.replicas {
		rep.mu.Lock()
		rj := api.RouterReplicaJSON{
			URL:            rep.url,
			Healthy:        rep.healthy,
			DigestMismatch: rep.mismatch,
			Digest:         rep.digest,
			ShardSet:       rep.shardSet,
			QueueLen:       rep.queueLen,
			InFlight:       rep.busy,
			RouterInFlight: rep.inflight.Load(),
			Routed:         rep.routed.Load(),
			Failed:         rep.failed.Load(),
			ProbeAgeMillis: ageMillis(rep.probedAt, now),
			StatsAgeMillis: ageMillis(rep.statsAt, now),
		}
		st, hasStats := rep.stats, !rep.statsAt.IsZero()
		rep.mu.Unlock()
		if hasStats {
			agg.Shards = st.Shards // same store everywhere; not summed
			agg.Groups = st.Groups
			agg.IndexBytes += st.IndexBytes
			agg.MappingBytes += st.MappingBytes
			agg.Searched += st.Searched
			agg.PrunedPostings += st.PrunedPostings
			agg.SessionBatches += st.SessionBatches
			agg.Accepted += st.Accepted
			agg.RejectedQueue += st.RejectedQueue
			agg.RejectedDrain += st.RejectedDrain
			agg.Batches += st.Batches
			agg.BatchedQueries += st.BatchedQueries
			agg.QueueLen += st.QueueLen
			agg.QueueDepth += st.QueueDepth
			agg.InFlight += st.InFlight
			agg.MaxInFlight += st.MaxInFlight
			agg.Scheduler.Stealing = st.Scheduler.Stealing
			agg.Scheduler.ChunkSize = st.Scheduler.ChunkSize
			agg.Scheduler.Batches += st.Scheduler.Batches
			agg.Scheduler.Chunks += st.Scheduler.Chunks
			agg.Scheduler.Steals += st.Scheduler.Steals
			agg.Scheduler.Stolen += st.Scheduler.Stolen
			if st.Cache != nil {
				if agg.Cache == nil {
					agg.Cache = &api.CacheStatsJSON{}
				}
				agg.Cache.Add(*st.Cache)
			}
		}
		out.Replicas = append(out.Replicas, rj)
	}
	if sc != nil {
		// Replica snapshots describe shard-set slices; the aggregate
		// describes the whole logical store.
		agg.Shards = sc.totalShards
		agg.Groups = 0
		seenSet := make(map[int]bool)
		for i, rep := range rt.replicas {
			ss := out.Replicas[i].ShardSet
			if ss == nil || seenSet[ss.Set] || !rep.routable() {
				continue
			}
			seenSet[ss.Set] = true
			rep.mu.Lock()
			agg.Groups += rep.stats.Groups
			rep.mu.Unlock()
		}
	}
	return out
}

// Shutdown drains the router: admission stops (503), the probe loop
// exits, and Shutdown returns once every proxied request in flight has
// been answered, or ctx expires.
func (rt *Router) Shutdown(ctx context.Context) error {
	rt.mu.Lock()
	already := rt.draining
	rt.draining = true
	rt.mu.Unlock()
	if !already {
		close(rt.quit)
		rt.stopProbes()
	}
	<-rt.probeDone

	done := make(chan struct{})
	go func() {
		rt.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Close force-drains the router, for tests and defer-style cleanup.
// In-flight proxied requests are abandoned to their own deadlines.
func (rt *Router) Close() {
	// Deriving from the probe root keeps Close context-free; it works
	// even after the root is cancelled because expired is cancelled
	// immediately anyway.
	expired, cancel := context.WithCancel(rt.probeCtx)
	cancel()
	_ = rt.Shutdown(expired)
}
