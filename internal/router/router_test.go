package router

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbe/internal/api"
	"lbe/internal/digest"
	"lbe/internal/engine"
	"lbe/internal/gen"
	"lbe/internal/mods"
	"lbe/internal/server"
	"lbe/internal/spectrum"
)

// corpus is the shared test dataset plus the store directory every
// replica session warm-starts from (same store => same digest, the
// gate's requirement for a mixable cluster).
type corpus struct {
	peptides []string
	queries  []spectrum.Experimental
	storeDir string
}

var (
	corpusOnce sync.Once
	corpusVal  corpus
	corpusErr  error
	corpusTmp  string
)

func testCorpus(t *testing.T) corpus {
	t.Helper()
	corpusOnce.Do(func() {
		recs, err := gen.Proteome(gen.ProteomeConfig{
			Seed: 21, NumFamilies: 10, Homologs: 3, MeanLen: 300, MutationRate: 0.03,
		})
		if err != nil {
			corpusErr = err
			return
		}
		seqs := make([]string, len(recs))
		for i, r := range recs {
			seqs[i] = r.Sequence
		}
		peps, err := digest.DefaultConfig().Proteome(seqs)
		if err != nil {
			corpusErr = err
			return
		}
		peptides := digest.Sequences(digest.Dedup(peps))

		scfg := gen.DefaultSpectraConfig()
		scfg.Seed = 22
		scfg.NumSpectra = 40
		scfg.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
		queries, _, err := gen.Spectra(peptides, scfg)
		if err != nil {
			corpusErr = err
			return
		}

		cfg := engine.DefaultSessionConfig()
		cfg.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
		cfg.TopK = 5
		cfg.Shards = 2
		sess, err := engine.NewSession(peptides, cfg)
		if err != nil {
			corpusErr = err
			return
		}
		defer sess.Close()
		dir := filepath.Join(corpusTmp, "store")
		if err := sess.Save(dir, peptides); err != nil {
			corpusErr = err
			return
		}
		corpusVal = corpus{peptides: peptides, queries: queries, storeDir: dir}
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusVal
}

func TestMain(m *testing.M) {
	// The corpus store must outlive every test that shares it, so it
	// cannot live in one test's t.TempDir.
	var err error
	corpusTmp, err = os.MkdirTemp("", "lbe-router-test-*")
	if err != nil {
		panic(err)
	}
	code := m.Run()
	os.RemoveAll(corpusTmp)
	os.Exit(code)
}

// testReplica boots one serving replica warm-started from the corpus
// store and returns its HTTP server.
type testReplica struct {
	sess *engine.Session
	srv  *server.Server
	ts   *httptest.Server
}

func startReplica(t *testing.T, c corpus) *testReplica {
	t.Helper()
	return startReplicaDir(t, c.storeDir)
}

// startReplicaDir boots one serving replica warm-started from an
// arbitrary store directory — a whole store or one shard-set of a
// partitioned cluster.
func startReplicaDir(t *testing.T, dir string) *testReplica {
	t.Helper()
	sess, peptides, err := engine.OpenSession(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv := server.New(sess, peptides, server.Config{
		BatchSize:     8,
		FlushInterval: 2 * time.Millisecond,
	})
	ts := httptest.NewServer(srv.Handler())
	r := &testReplica{sess: sess, srv: srv, ts: ts}
	t.Cleanup(func() { r.kill() })
	return r
}

// kill tears the replica down abruptly: in-flight searches are
// cancelled, then the listener closes. Idempotent.
func (r *testReplica) kill() {
	if r.srv != nil {
		r.srv.Close()
		r.ts.Close()
		r.sess.Close()
		r.srv = nil
	}
}

func testRouter(t *testing.T, cfg Config, urls ...string) (*Router, *httptest.Server) {
	t.Helper()
	rt, err := New(urls, cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(rt.Handler())
	t.Cleanup(func() { rt.Close(); ts.Close() })
	return rt, ts
}

// fastProbes returns a Config tuned for tests: quick probes, generous
// staleness.
func fastProbes() Config {
	return Config{
		ProbeInterval:   25 * time.Millisecond,
		ProbeTimeout:    2 * time.Second,
		RequestTimeout:  30 * time.Second,
		FailoverRetries: 1,
		StatsStaleAfter: time.Hour,
	}
}

// referencePSMs runs the direct Session.Search the router's responses
// must match byte for byte.
func referencePSMs(t *testing.T, c corpus) *engine.Result {
	t.Helper()
	sess, peptides, err := engine.OpenSession(c.storeDir)
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	if len(peptides) == 0 {
		t.Fatal("corpus store has no peptide list")
	}
	ref, err := sess.Search(context.Background(), c.queries)
	if err != nil {
		t.Fatal(err)
	}
	return ref
}

// postRaw posts one single-query /search body and returns status + body.
func postRaw(t *testing.T, client *http.Client, base string, q spectrum.Experimental) (int, []byte) {
	t.Helper()
	body, err := json.Marshal(api.SearchRequest{Spectra: []api.SpectrumJSON{api.FromExperimental(q)}})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, data
}

// driveConcurrent sends every corpus query through the router from its
// own goroutine and returns the response bodies. kill, when non-nil, is
// invoked once after about a third of the queries have been answered.
func driveConcurrent(t *testing.T, ts *httptest.Server, c corpus, kill func()) [][]byte {
	t.Helper()
	got := make([][]byte, len(c.queries))
	errs := make([]error, len(c.queries))
	var done atomic.Int64
	var killOnce sync.Once
	var wg sync.WaitGroup
	for i := range c.queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			status, data := postRaw(t, ts.Client(), ts.URL, c.queries[i])
			if status != http.StatusOK {
				errs[i] = fmt.Errorf("query %d: status %d: %s", i, status, data)
				return
			}
			got[i] = data
			if kill != nil && done.Add(1) == int64(len(c.queries)/3) {
				killOnce.Do(kill)
			}
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
	return got
}

// requireMatchesReference asserts every routed response is byte-identical
// to the direct Session.Search rendering.
func requireMatchesReference(t *testing.T, c corpus, ref *engine.Result, got [][]byte) {
	t.Helper()
	found := 0
	for i := range c.queries {
		want, err := json.Marshal(api.BuildSearchResponse(
			c.queries[i:i+1], ref.PSMs[i:i+1], c.peptides))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got[i]), bytes.TrimSpace(want)) {
			t.Fatalf("query %d: routed response differs from Session.Search\nrouted: %s\ndirect: %s",
				i, got[i], want)
		}
		found += len(ref.PSMs[i])
	}
	if found == 0 {
		t.Fatal("reference search matched nothing; corpus is not exercising the comparison")
	}
}

// TestRouterMatchesSessionSearch is the acceptance-criterion test: N
// concurrent clients through the router over two replicas receive
// responses byte-identical to a direct Session.Search over the same
// store, and both replicas actually carry traffic.
func TestRouterMatchesSessionSearch(t *testing.T) {
	c := testCorpus(t)
	r1 := startReplica(t, c)
	r2 := startReplica(t, c)
	rt, ts := testRouter(t, fastProbes(), r1.ts.URL, r2.ts.URL)

	ref := referencePSMs(t, c)
	got := driveConcurrent(t, ts, c, nil)
	requireMatchesReference(t, c, ref, got)

	st := rt.Stats()
	if st.Routed != int64(len(c.queries)) {
		t.Fatalf("routed %d requests, want %d", st.Routed, len(c.queries))
	}
	if st.Digest == "" {
		t.Fatal("router never adopted a cluster digest")
	}
	for _, rep := range st.Replicas {
		if !rep.Healthy || rep.DigestMismatch {
			t.Fatalf("replica %s not routable in a healthy cluster: %+v", rep.URL, rep)
		}
	}
	if st.Replicas[0].Routed == 0 || st.Replicas[1].Routed == 0 {
		t.Fatalf("traffic did not spread over the replicas: %d / %d",
			st.Replicas[0].Routed, st.Replicas[1].Routed)
	}
}

// TestRouterSurvivesReplicaKill re-runs the equivalence check while one
// of three replicas is torn down abruptly mid-run: every response must
// still be a 200 byte-identical to direct Session.Search, via failover.
func TestRouterSurvivesReplicaKill(t *testing.T) {
	c := testCorpus(t)
	r1 := startReplica(t, c)
	r2 := startReplica(t, c)
	r3 := startReplica(t, c)
	rt, ts := testRouter(t, fastProbes(), r1.ts.URL, r2.ts.URL, r3.ts.URL)

	ref := referencePSMs(t, c)
	got := driveConcurrent(t, ts, c, r3.kill)
	requireMatchesReference(t, c, ref, got)

	// The dead replica must be marked down by a probe shortly after.
	waitFor(t, func() bool {
		st := rt.Stats()
		return !st.Replicas[2].Healthy
	}, "killed replica never marked down")
	st := rt.Stats()
	if st.Replicas[0].Routed+st.Replicas[1].Routed+st.Replicas[2].Routed < int64(len(c.queries)) {
		t.Fatalf("replica routed counts do not cover the run: %+v", st.Replicas)
	}

	// The cluster still serves with one replica gone.
	if status, _ := postRaw(t, ts.Client(), ts.URL, c.queries[0]); status != http.StatusOK {
		t.Fatalf("post-kill request answered %d", status)
	}
}

// fakeReplica is a scripted stand-in exposing the probe surface without
// an engine behind it.
type fakeReplica struct {
	digest    string
	queueLen  int64
	withStats bool
	searches  atomic.Int64
	ts        *httptest.Server
}

func startFake(t *testing.T, digest string, queueLen int, withStats bool) *fakeReplica {
	t.Helper()
	f := &fakeReplica{digest: digest, queueLen: int64(queueLen), withStats: withStats}
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Shards: 1, Digest: f.digest})
	})
	if withStats {
		mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
			api.WriteJSON(w, http.StatusOK, api.StatsResponse{
				Status: "ok", Digest: f.digest, QueueLen: int(atomic.LoadInt64(&f.queueLen)),
			})
		})
	}
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		f.searches.Add(1)
		api.WriteJSON(w, http.StatusOK, api.SearchResponse{})
	})
	f.ts = httptest.NewServer(mux)
	t.Cleanup(f.ts.Close)
	return f
}

var searchBody = []byte(`{"spectra":[{"precursor_mz":500.3,"peaks":[[147.11,1.0]]}]}`)

func postBody(t *testing.T, client *http.Client, base string) int {
	t.Helper()
	resp, err := client.Post(base+"/search", "application/json", bytes.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode
}

// TestConsistencyGateExcludesMismatchedDigest: a healthy replica serving
// a different store must not receive traffic, and must be flagged.
func TestConsistencyGateExcludesMismatchedDigest(t *testing.T) {
	a := startFake(t, "digest-a", 0, true)
	b := startFake(t, "digest-b", 0, true)
	rt, ts := testRouter(t, fastProbes(), a.ts.URL, b.ts.URL)

	for i := 0; i < 6; i++ {
		if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := b.searches.Load(); got != 0 {
		t.Fatalf("mismatched replica served %d requests; the gate must exclude it", got)
	}
	if got := a.searches.Load(); got != 6 {
		t.Fatalf("consistent replica served %d of 6 requests", got)
	}

	st := rt.Stats()
	if st.Digest != "digest-a" {
		t.Fatalf("cluster digest %q, want the lowest-indexed healthy replica's", st.Digest)
	}
	if !st.Replicas[1].DigestMismatch || st.Replicas[1].Routed != 0 {
		t.Fatalf("mismatch not surfaced in stats: %+v", st.Replicas[1])
	}

	// The healthz view stays ok (one consistent replica remains).
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz with one consistent replica: %d", resp.StatusCode)
	}
}

// TestLeastLoadedDispatch: with fresh stats, traffic goes to the replica
// reporting the smaller load.
func TestLeastLoadedDispatch(t *testing.T) {
	busy := startFake(t, "d", 50, true)
	idle := startFake(t, "d", 0, true)
	_, ts := testRouter(t, fastProbes(), busy.ts.URL, idle.ts.URL)

	for i := 0; i < 8; i++ {
		if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if got := idle.searches.Load(); got != 8 {
		t.Fatalf("idle replica served %d of 8; busy served %d — dispatch is not least-loaded",
			got, busy.searches.Load())
	}
}

// TestRoundRobinWhenStatsStale: replicas that never produce a load
// snapshot are dispatched round-robin instead of starving.
func TestRoundRobinWhenStatsStale(t *testing.T) {
	a := startFake(t, "d", 0, false)
	b := startFake(t, "d", 0, false)
	_, ts := testRouter(t, fastProbes(), a.ts.URL, b.ts.URL)

	for i := 0; i < 8; i++ {
		if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
			t.Fatalf("request %d: status %d", i, status)
		}
	}
	if a.searches.Load() != 4 || b.searches.Load() != 4 {
		t.Fatalf("stale-stats dispatch is not round-robin: %d / %d",
			a.searches.Load(), b.searches.Load())
	}
}

// TestRouterRejectsWithoutReplicas: with every replica down, /search
// answers 503 and /healthz flips.
func TestRouterRejectsWithoutReplicas(t *testing.T) {
	dead := startFake(t, "d", 0, true)
	dead.ts.Close()
	rt, ts := testRouter(t, fastProbes(), dead.ts.URL)

	if status := postBody(t, ts.Client(), ts.URL); status != http.StatusServiceUnavailable {
		t.Fatalf("search with no replica: status %d, want 503", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || h.Status != "unavailable" {
		t.Fatalf("healthz with no replica: %d %+v", resp.StatusCode, h)
	}
	if st := rt.Stats(); st.RejectedNoReplica != 1 {
		t.Fatalf("no-replica rejection not counted: %+v", st)
	}
}

// TestRouterDrain: Shutdown answers requests already in flight, rejects
// new ones with 503, and returns once the last one is done.
func TestRouterDrain(t *testing.T) {
	release := make(chan struct{})
	started := make(chan struct{}, 8)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Digest: "d"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.StatsResponse{Status: "ok"})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		started <- struct{}{}
		<-release
		api.WriteJSON(w, http.StatusOK, api.SearchResponse{})
	})
	slow := httptest.NewServer(mux)
	defer slow.Close()
	rt, ts := testRouter(t, fastProbes(), slow.URL)

	codes := make(chan int, 1)
	go func() { codes <- postBody(t, ts.Client(), ts.URL) }()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("in-flight request never reached the replica")
	}

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- rt.Shutdown(ctx)
	}()
	waitFor(t, rt.isDraining, "router never started draining")

	if status := postBody(t, ts.Client(), ts.URL); status != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503", status)
	}

	close(release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful drain failed: %v", err)
	}
	if code := <-codes; code != http.StatusOK {
		t.Fatalf("in-flight request finished with %d, want 200", code)
	}
	if st := rt.Stats(); st.Status != "draining" || st.RejectedDrain == 0 {
		t.Fatalf("drain not reflected in stats: %+v", st)
	}
}

// TestRouterMetricsAggregate: /metrics on the router renders the
// aggregate and per-replica figures.
func TestRouterMetricsAggregate(t *testing.T) {
	a := startFake(t, "d", 3, true)
	b := startFake(t, "d", 4, true)
	_, ts := testRouter(t, fastProbes(), a.ts.URL, b.ts.URL)

	if status := postBody(t, ts.Client(), ts.URL); status != http.StatusOK {
		t.Fatalf("search: %d", status)
	}
	resp, err := ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics: %d %v", resp.StatusCode, err)
	}
	text := string(data)
	for _, want := range []string{
		"lbe_queue_len 7", // 3 + 4, aggregated
		"lbe_router_requests_routed_total 1",
		fmt.Sprintf("lbe_router_replica_up{replica=%q} 1", a.ts.URL),
	} {
		if !bytes.Contains(data, []byte(want)) {
			t.Fatalf("router metrics missing %q:\n%s", want, text)
		}
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}

// TestClientCancelDoesNotMarkReplicaDown: a caller hanging up mid-proxy
// is the caller's failure, not the replica's — one impatient client
// must not take a healthy replica (or a whole single-replica cluster)
// out of rotation until the next probe.
func TestClientCancelDoesNotMarkReplicaDown(t *testing.T) {
	var park atomic.Bool
	park.Store(true)
	started := make(chan struct{}, 8)
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Digest: "d"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.StatsResponse{Status: "ok"})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		// Drain the body so the server's background read can detect the
		// peer abandoning the request and cancel r.Context().
		io.Copy(io.Discard, r.Body)
		started <- struct{}{}
		if park.Load() {
			<-r.Context().Done() // hold until the caller gives up
			return
		}
		api.WriteJSON(w, http.StatusOK, api.SearchResponse{})
	})
	slow := httptest.NewServer(mux)
	defer slow.Close()

	cfg := fastProbes()
	cfg.ProbeInterval = time.Hour // no probe gets a chance to repair state
	rt, ts := testRouter(t, cfg, slow.URL)

	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", bytes.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()
	select {
	case <-started:
	case <-time.After(5 * time.Second):
		t.Fatal("request never reached the replica")
	}
	cancel()
	<-done

	if st := rt.Stats(); !st.Replicas[0].Healthy || st.Replicas[0].Failed != 0 {
		t.Fatalf("caller cancellation was blamed on the replica: %+v", st.Replicas[0])
	}
	// And the replica still serves the next request.
	park.Store(false)
	if code := postBody(t, ts.Client(), ts.URL); code != http.StatusOK {
		t.Fatalf("follow-up request after cancel answered %d", code)
	}
}

// TestRouterRelaysFinalRetryableReply: when every failover attempt is
// spent and the last attempt got a real reply (a replica's 429
// backpressure here), the router relays that status and body instead of
// masking it behind a synthesized 502 — backoff-aware clients keep their
// Retry-After semantics.
func TestRouterRelaysFinalRetryableReply(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.HealthResponse{Status: "ok", Digest: "d"})
	})
	mux.HandleFunc("/stats", func(w http.ResponseWriter, r *http.Request) {
		api.WriteJSON(w, http.StatusOK, api.StatsResponse{Status: "ok"})
	})
	mux.HandleFunc("/search", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusTooManyRequests, "admission queue full, retry later")
	})
	full := httptest.NewServer(mux)
	defer full.Close()
	rt, ts := testRouter(t, fastProbes(), full.URL)

	resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(searchBody))
	if err != nil {
		t.Fatal(err)
	}
	data, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("router answered %d, want the replica's 429 relayed; body %s", resp.StatusCode, data)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("relayed 429 lost its Retry-After header")
	}
	var er api.ErrorResponse
	if err := json.Unmarshal(data, &er); err != nil || er.Error != "admission queue full, retry later" {
		t.Fatalf("relayed body is not the replica's: %s", data)
	}
	if st := rt.Stats(); !st.Replicas[0].Healthy {
		t.Fatal("a 429 must not mark the replica down")
	}
}
