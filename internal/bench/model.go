package bench

import (
	"lbe/internal/engine"
	"lbe/internal/stats"
)

// CostModel converts deterministic work accounting into modeled times.
//
// The paper measured wall-clock on 4 dedicated machines / 16 cores; this
// reproduction runs on whatever container it is given (often 2 cores), so
// wall-clock cannot express 16-way parallelism. Instead the scalability
// figures use per-rank work units (ion postings visited + candidates
// scored — the quantity a rank actually spends its query time on) divided
// by a throughput calibrated from a real measured run on this machine.
// Load-balance effects are preserved exactly: a rank's modeled time is its
// own work over a common rate, and the distributed query completes when
// the slowest rank does.
type CostModel struct {
	// QueryRate is work units per second, calibrated.
	QueryRate float64
	// BuildRate is index rows per second, calibrated.
	BuildRate float64
}

// Calibrate derives machine rates from a measured serial run.
func Calibrate(res *engine.Result) CostModel {
	s := res.Stats[0]
	m := CostModel{QueryRate: 1e9, BuildRate: 1e6} // fallbacks
	if s.QueryNanos > 0 {
		w := float64(s.Work.IonHits + s.Work.Scored)
		m.QueryRate = w / (float64(s.QueryNanos) / 1e9)
	}
	if s.BuildNanos > 0 {
		m.BuildRate = float64(s.Rows) / (float64(s.BuildNanos) / 1e9)
	}
	return m
}

// QueryTime models the distributed query phase: the slowest rank's work
// over the calibrated rate.
func (m CostModel) QueryTime(res *engine.Result) float64 {
	return stats.Max(engine.WorkUnits(res.Stats)) / m.QueryRate
}

// ExecutionTime models the total run: the replicated serial preprocessing
// (grouping + partitioning; serialSeconds must be measured uncontended,
// once per corpus), the slowest rank's index build (modeled from its row
// count), and the modeled query phase. This is the quantity whose speedup
// saturates by Amdahl's law in Fig. 10.
//
// The in-run GroupingNanos/PartitionNanos are not used here because on an
// oversubscribed machine they are inflated by the other ranks' goroutines.
func (m CostModel) ExecutionTime(res *engine.Result, serialSeconds float64) float64 {
	maxRows := 0.0
	for _, s := range res.Stats {
		if r := float64(s.Rows); r > maxRows {
			maxRows = r
		}
	}
	return serialSeconds + maxRows/m.BuildRate + m.QueryTime(res)
}

// PerRankQueryTimes models each rank's query time; the LI figures may use
// either these or raw work units (the ratio is identical).
func (m CostModel) PerRankQueryTimes(res *engine.Result) []float64 {
	wu := engine.WorkUnits(res.Stats)
	out := make([]float64, len(wu))
	for i, w := range wu {
		out[i] = w / m.QueryRate
	}
	return out
}
