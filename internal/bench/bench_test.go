package bench

import (
	"strings"
	"testing"

	"lbe/internal/engine"
	"lbe/internal/mods"
)

// tinyOptions shrinks everything so each experiment runs in well under a
// second; the full-scale runs happen in cmd/lbe-bench and the top-level
// benchmarks.
func tinyOptions() Options {
	return Options{
		Scale:     1.0 / 20000,
		Ranks:     4,
		RankSweep: []int{2, 4},
		Queries:   60,
		Seed:      3,
	}
}

func TestSizedCorpus(t *testing.T) {
	mc := mods.Config{Mods: mods.PaperSet(), MaxPerPep: 2}
	c, err := SizedCorpus(1500, 40, 7, mc)
	if err != nil {
		t.Fatal(err)
	}
	if len(c.Peptides) == 0 || len(c.Queries) != 40 || len(c.Truth) != 40 {
		t.Fatalf("corpus shape: %d peptides, %d queries", len(c.Peptides), len(c.Queries))
	}
	// Row target respected within one peptide's variant count.
	if c.Rows < 1500 {
		t.Errorf("rows %d below target", c.Rows)
	}
	total := 0
	for _, seq := range c.Peptides {
		total += mc.Count(seq)
	}
	if total != c.Rows {
		t.Errorf("rows %d != recount %d", c.Rows, total)
	}
}

func TestSizedCorpusDeterminism(t *testing.T) {
	mc := mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	a, _ := SizedCorpus(800, 10, 9, mc)
	b, _ := SizedCorpus(800, 10, 9, mc)
	if len(a.Peptides) != len(b.Peptides) || a.Rows != b.Rows {
		t.Fatal("corpus not deterministic")
	}
	for i := range a.Peptides {
		if a.Peptides[i] != b.Peptides[i] {
			t.Fatal("peptides differ")
		}
	}
}

func TestSizedCorpusErrors(t *testing.T) {
	if _, err := SizedCorpus(0, 10, 1, mods.DefaultConfig()); err == nil {
		t.Error("zero target must fail")
	}
}

func TestCalibrateAndModel(t *testing.T) {
	mc := mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	c, err := SizedCorpus(600, 30, 5, mc)
	if err != nil {
		t.Fatal(err)
	}
	cfg := engineConfig()
	serial, err := engine.RunSerial(c.Peptides, c.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	model := Calibrate(serial)
	if model.QueryRate <= 0 || model.BuildRate <= 0 {
		t.Fatalf("model = %+v", model)
	}
	res, err := engine.RunInProcess(3, c.Peptides, c.Queries, cfg)
	if err != nil {
		t.Fatal(err)
	}
	qt := model.QueryTime(res)
	et := model.ExecutionTime(res, 0.01)
	if qt <= 0 || et <= qt {
		t.Errorf("modeled times: query %v, exec %v", qt, et)
	}
	prt := model.PerRankQueryTimes(res)
	if len(prt) != 3 {
		t.Errorf("per-rank times: %v", prt)
	}
	maxT := 0.0
	for _, v := range prt {
		if v > maxT {
			maxT = v
		}
	}
	if maxT != qt {
		t.Errorf("QueryTime %v must equal max per-rank %v", qt, maxT)
	}
}

func TestFigureMarkdown(t *testing.T) {
	f := Figure{
		ID:     "figX",
		Title:  "demo",
		XLabel: "x",
		YLabel: "y",
		Series: []Series{
			{Label: "a", X: []float64{1, 2}, Y: []float64{0.5, 1.25}},
			{Label: "b", X: []float64{1, 2}, Y: []float64{3, 4}},
		},
		Notes: []string{"note1"},
	}
	md := f.Markdown()
	for _, want := range []string{"### FigX — demo", "| x |", "a (y)", "b (y)", "| 1 |", "0.5", "1.25", "> note1"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestTrimFloat(t *testing.T) {
	cases := map[float64]string{
		1.5:    "1.5",
		2.0:    "2",
		0:      "0",
		0.1234: "0.1234",
	}
	for in, want := range cases {
		if got := trimFloat(in); got != want {
			t.Errorf("trimFloat(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestFig6Shape(t *testing.T) {
	fig, err := Fig6(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	// Chunk (series 0) must dominate cyclic (series 1) at every notch.
	for i := range fig.Series[0].Y {
		if fig.Series[1].Y[i] >= fig.Series[0].Y[i] {
			t.Errorf("notch %d: cyclic LI %.1f%% !< chunk %.1f%%",
				i, fig.Series[1].Y[i], fig.Series[0].Y[i])
		}
	}
}

func TestFig5Shape(t *testing.T) {
	o := tinyOptions()
	fig, err := Fig5(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	shared, dist := fig.Series[0], fig.Series[1]
	for i := range shared.Y {
		if dist.Y[i] <= shared.Y[i] {
			t.Errorf("notch %d: distributed %0.3fMB not above shared %0.3fMB", i, dist.Y[i], shared.Y[i])
		}
	}
	// The paper's claim: the distributed overhead varies inversely with
	// partition size, so the overhead ratio must shrink as the index grows.
	first := dist.Y[0] / shared.Y[0]
	last := dist.Y[len(dist.Y)-1] / shared.Y[len(shared.Y)-1]
	if last >= first {
		t.Errorf("overhead ratio did not shrink with index size: %0.3f -> %0.3f", first, last)
	}
	// Memory grows with index size.
	if shared.Y[len(shared.Y)-1] <= shared.Y[0] {
		t.Errorf("shared memory not growing: %v", shared.Y)
	}
}

func TestScalabilityFigures(t *testing.T) {
	o := tinyOptions()
	f7, err := Fig7(o)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Fig8(o)
	if err != nil {
		t.Fatal(err)
	}
	f10, err := Fig10(o)
	if err != nil {
		t.Fatal(err)
	}
	// Query time decreases with more ranks for every size.
	for _, s := range f7.Series {
		for i := 1; i < len(s.Y); i++ {
			if s.Y[i] >= s.Y[i-1] {
				t.Errorf("fig7 %s: time did not drop from p=%v to p=%v (%v >= %v)",
					s.Label, s.X[i-1], s.X[i], s.Y[i], s.Y[i-1])
			}
		}
	}
	// Query speedup is near-linear: at the largest p it reaches at least
	// 60% of ideal.
	for _, s := range f8.Series[1:] { // skip ideal
		last := len(s.Y) - 1
		if s.Y[last] < 0.6*s.X[last] {
			t.Errorf("fig8 %s: speedup %v at p=%v too sub-linear", s.Label, s.Y[last], s.X[last])
		}
	}
	// Execution speedup carries the serial grouping/partitioning term, so
	// at the largest CPU count it should not meaningfully exceed the
	// query speedup (build scales perfectly, so a small excess is
	// possible) and must stay below ideal.
	for i := 1; i < len(f8.Series); i++ {
		q := f8.Series[i]
		e := f10.Series[i]
		last := len(q.Y) - 1
		if e.Y[last] > 1.15*q.Y[last] {
			t.Errorf("fig10 %s: exec speedup %v far exceeds query speedup %v",
				e.Label, e.Y[last], q.Y[last])
		}
		if e.Y[last] > e.X[last]+1e-9 {
			t.Errorf("fig10 %s: exec speedup %v exceeds ideal %v", e.Label, e.Y[last], e.X[last])
		}
	}
}

func TestFig11Shape(t *testing.T) {
	fig, err := Fig11(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	// Chunk over itself is exactly 1; cyclic/random must beat it.
	for i, v := range fig.Series[0].Y {
		if v != 1 {
			t.Errorf("chunk self-speedup[%d] = %v", i, v)
		}
	}
	for _, s := range fig.Series[1:] {
		for i, v := range s.Y {
			if v <= 1 {
				t.Errorf("%s speedup[%d] = %v, want > 1", s.Label, i, v)
			}
		}
	}
}

func TestSetupStats(t *testing.T) {
	fig, err := SetupStats(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Notes) < 6 {
		t.Fatalf("notes = %v", fig.Notes)
	}
	md := fig.Markdown()
	if !strings.Contains(md, "cPSMs") {
		t.Error("setup stats missing cPSM counts")
	}
}

func TestAblationGrouping(t *testing.T) {
	fig, err := AblationGrouping(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 || len(fig.Series[0].Y) != 6 {
		t.Fatalf("ablation shape: %d series x %d", len(fig.Series), len(fig.Series[0].Y))
	}
}

func TestFiltrationComparison(t *testing.T) {
	fig, err := FiltrationComparison(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 4 || len(fig.Series[0].Y) != 3 {
		t.Fatalf("filtration shape: %d series x %d", len(fig.Series), len(fig.Series[0].Y))
	}
	recallUnmod := fig.Series[1].Y // per method
	recallMod := fig.Series[3].Y
	// Precursor filter (method 0): high unmodified recall, collapses on
	// modified spectra. Shared-peak (method 2): high recall on both.
	if recallUnmod[0] < 90 {
		t.Errorf("precursor unmodified recall %.1f%% too low", recallUnmod[0])
	}
	if recallMod[0] > 30 {
		t.Errorf("precursor modified recall %.1f%% suspiciously high", recallMod[0])
	}
	if recallMod[2] < 60 {
		t.Errorf("shared-peak modified recall %.1f%% too low", recallMod[2])
	}
	if recallUnmod[2] < 90 {
		t.Errorf("shared-peak unmodified recall %.1f%% too low", recallUnmod[2])
	}
}

func TestAblationHeterogeneous(t *testing.T) {
	fig, err := AblationHeterogeneous(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Y) != 2 {
		t.Fatalf("hetero shape: %+v", fig)
	}
	// Weighted partitioning must beat uniform on the simulated
	// heterogeneous cluster at every notch.
	for i := range fig.Series[0].Y {
		if fig.Series[1].Y[i] >= fig.Series[0].Y[i] {
			t.Errorf("notch %d: weighted LI %.1f%% !< uniform %.1f%%",
				i, fig.Series[1].Y[i], fig.Series[0].Y[i])
		}
	}
}

func TestAblationTransport(t *testing.T) {
	fig, err := AblationTransport(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 || len(fig.Series[0].Y) != 2 {
		t.Fatalf("transport ablation shape wrong: %+v", fig)
	}
	for _, s := range fig.Series {
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("non-positive wall time in %s: %v", s.Label, s.Y)
			}
		}
	}
}

func TestServeThroughputTiny(t *testing.T) {
	o := tinyOptions()
	o.Ranks = 2
	fig, err := ServeThroughput(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("serve figure should have p50/p95/p99 series: %+v", fig.Series)
	}
	for _, s := range fig.Series {
		if len(s.Y) != 5 {
			t.Fatalf("series %s has %d points, want 5", s.Label, len(s.Y))
		}
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("non-positive latency in %s: %v", s.Label, s.Y)
			}
		}
	}
	if len(fig.Notes) < 2 {
		t.Fatalf("serve figure missing rate/coalescing notes: %v", fig.Notes)
	}
}

func TestStealShape(t *testing.T) {
	fig, err := Steal(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 2 {
		t.Fatalf("series = %d, want static + stealing", len(fig.Series))
	}
	static, stealing := fig.Series[0], fig.Series[1]
	if len(static.Y) != 4 || len(stealing.Y) != 4 {
		t.Fatalf("worker sweep points: static %d, stealing %d, want 4", len(static.Y), len(stealing.Y))
	}
	for i := range static.Y {
		if static.Y[i] <= 0 || stealing.Y[i] <= 0 {
			t.Fatalf("non-positive throughput at point %d: %v / %v", i, static.Y[i], stealing.Y[i])
		}
	}
	// No pointwise stealing >= static assertion: greedy stealing is
	// subject to list-scheduling anomalies, so an individual sweep point
	// may legitimately model (slightly) below the static deal. The claim
	// under test is the skewed-workload win at the widest point.
	// At the widest sweep point the skewed shards must make stealing win
	// decisively; this is the figure's acceptance criterion, checked on
	// the deterministic model so it cannot flake with machine load.
	last := len(static.Y) - 1
	if ratio := stealing.Y[last] / static.Y[last]; ratio < 1.2 {
		t.Errorf("stealing/static throughput at 8 workers = %.2fx, want >= 1.2x", ratio)
	}
	if len(fig.Notes) < 3 {
		t.Fatalf("steal figure missing skew/ratio/measured notes: %v", fig.Notes)
	}
}

func TestColdStartShape(t *testing.T) {
	fig, err := ColdStart(tinyOptions())
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 5 {
		t.Fatalf("series = %d", len(fig.Series))
	}
	rebuild, heapOpen, mmapOpen := fig.Series[0], fig.Series[1], fig.Series[2]
	heapQ, mmapQ := fig.Series[3], fig.Series[4]
	for _, s := range fig.Series {
		if len(s.Y) != len(paperSizesM) {
			t.Fatalf("%s: %d notches, want %d", s.Label, len(s.Y), len(paperSizesM))
		}
	}
	for i := range rebuild.Y {
		for _, s := range []Series{rebuild, heapOpen, mmapOpen, heapQ, mmapQ} {
			if s.Y[i] <= 0 {
				t.Errorf("notch %d: non-positive wall time in %s (%.3f)", i, s.Label, s.Y[i])
			}
		}
	}
	// The figure's reason to exist is that opening beats rebuilding, but
	// at tinyOptions scale everything is single-digit milliseconds, so a
	// strict inequality would flake on a loaded CI runner. Allow a wide
	// margin; the real comparison is the reported figure itself.
	last := len(rebuild.Y) - 1
	if heapOpen.Y[last] >= 3*rebuild.Y[last] {
		t.Errorf("heap open (%.2fms) wildly slower than rebuild (%.2fms) at the largest notch",
			heapOpen.Y[last], rebuild.Y[last])
	}
	if mmapOpen.Y[last] >= 3*heapOpen.Y[last] {
		t.Errorf("mmap open (%.2fms) wildly slower than heap open (%.2fms) at the largest notch",
			mmapOpen.Y[last], heapOpen.Y[last])
	}
	for _, key := range []string{
		"rebuild_ms_largest", "heap_open_ms_largest", "mmap_open_ms_largest",
		"mmap_open_speedup_largest", "heap_first_query_ms_largest",
		"mmap_first_query_ms_largest", "heap_open_alloc_mb_largest",
		"mmap_open_alloc_mb_largest", "store_mb_largest",
	} {
		if _, ok := fig.Metrics[key]; !ok {
			t.Errorf("metrics missing %q", key)
		}
	}
}

func TestRouteTiny(t *testing.T) {
	o := tinyOptions()
	o.Ranks = 2
	fig, err := Route(o)
	if err != nil {
		t.Fatal(err)
	}
	if len(fig.Series) != 3 {
		t.Fatalf("route figure should have p50/p95/p99 series: %+v", fig.Series)
	}
	for _, s := range fig.Series {
		if len(s.Y) != 3 {
			t.Fatalf("series %s has %d points (replica levels), want 3", s.Label, len(s.Y))
		}
		for _, v := range s.Y {
			if v <= 0 {
				t.Errorf("non-positive latency in %s: %v", s.Label, s.Y)
			}
		}
	}
	if len(fig.Notes) < 3 {
		t.Fatalf("route figure missing rate/overhead/failover notes: %v", fig.Notes)
	}
}
