package bench

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"time"

	"lbe/internal/engine"
	"lbe/internal/router"
	"lbe/internal/server"
)

// Route measures the multi-node serving tier: a fixed closed-loop client
// population drives /search through an lbe-router front-end over a
// growing set of in-process replicas, and the figure reports latency
// percentiles per replica count — the single-replica level is the
// baseline the 2- and 4-replica levels are compared against. Every
// replica serves the same database (fresh builds of one corpus share a
// canonical digest, so the router's consistency gate admits them all),
// and the notes record achieved request rates, the router-overhead
// comparison against driving one replica directly, and the routing
// counters.
func Route(o Options) (Figure, error) {
	fig := Figure{
		ID:     "route",
		Title:  "Routed latency vs replica count (closed loop, 16 clients)",
		XLabel: "replicas",
		YLabel: "latency ms",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()

	const maxReplicas = 4
	const concurrency = 16

	// Build every replica up front: one session each over the same
	// peptides, so levels reuse them instead of rebuilding per level.
	type replicaProc struct {
		sess *engine.Session
		srv  *server.Server
		ts   *httptest.Server
	}
	replicas := make([]replicaProc, 0, maxReplicas)
	defer func() {
		for _, r := range replicas {
			r.srv.Close()
			r.ts.Close()
			r.sess.Close()
		}
	}()
	shards := o.Ranks
	if shards > 4 {
		// Per-replica shard counts stay modest: the figure scales
		// replicas, not intra-replica partitions.
		shards = 4
	}
	for i := 0; i < maxReplicas; i++ {
		sess, err := engine.NewSession(c.Peptides, engine.SessionConfig{Config: cfg, Shards: shards})
		if err != nil {
			return fig, err
		}
		srv := server.New(sess, c.Peptides, server.Config{
			BatchSize:     64,
			FlushInterval: time.Millisecond,
			QueueDepth:    1024,
			MaxInFlight:   4,
		})
		replicas = append(replicas, replicaProc{sess: sess, srv: srv, ts: httptest.NewServer(srv.Handler())})
	}

	bodies := make([][]byte, len(c.Queries))
	for i, q := range c.Queries {
		b, err := marshalQuery(q)
		if err != nil {
			return fig, err
		}
		bodies[i] = b
	}

	// Direct baseline: the same load on one replica without the router,
	// quantifying the front-end's own overhead.
	directLat, directWall, err := closedLoop(replicas[0].ts.Client(), replicas[0].ts.URL, bodies, concurrency)
	if err != nil {
		return fig, err
	}
	sort.Float64s(directLat)

	p50 := Series{Label: "p50"}
	p95 := Series{Label: "p95"}
	p99 := Series{Label: "p99"}
	var rates []float64
	var failovers int64
	for _, n := range []int{1, 2, 4} {
		urls := make([]string, n)
		for i := range urls {
			urls[i] = replicas[i].ts.URL
		}
		rt, err := router.New(urls, router.Config{
			ProbeInterval:   50 * time.Millisecond,
			StatsStaleAfter: time.Hour,
		})
		if err != nil {
			return fig, err
		}
		rts := httptest.NewServer(rt.Handler())
		lat, wall, err := closedLoop(rts.Client(), rts.URL, bodies, concurrency)
		st := rt.Stats()
		rt.Close()
		rts.Close()
		if err != nil {
			return fig, err
		}
		if st.Digest == "" || st.Routed != int64(len(bodies)) {
			return fig, fmt.Errorf("bench: route: level %d routed %d of %d requests (digest %q)",
				n, st.Routed, len(bodies), st.Digest)
		}
		failovers += st.Failovers
		sort.Float64s(lat)
		x := float64(n)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, percentile(lat, 0.50))
		p95.X, p95.Y = append(p95.X, x), append(p95.Y, percentile(lat, 0.95))
		p99.X, p99.Y = append(p99.X, x), append(p99.Y, percentile(lat, 0.99))
		rates = append(rates, float64(len(bodies))/wall.Seconds())
	}
	fig.Series = []Series{p50, p95, p99}

	speedup := 0.0
	if rates[0] > 0 {
		speedup = rates[len(rates)-1] / rates[0]
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("achieved request rates per level: %s rps (%.2fx at 4 replicas over 1)",
			trimFloats(rates), speedup),
		fmt.Sprintf("direct single-replica baseline (no router): %.0f rps, p50 %.2f ms — router overhead p50 %+.2f ms",
			float64(len(bodies))/directWall.Seconds(), percentile(directLat, 0.50),
			p50.Y[0]-percentile(directLat, 0.50)),
		fmt.Sprintf("%d failovers across all levels; every replica shares one store digest (consistency gate satisfied); %d shards per replica",
			failovers, shards))
	return fig, nil
}
