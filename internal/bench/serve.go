package bench

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/server"
	"lbe/internal/spectrum"
)

// ServeThroughput measures the HTTP serving path with a closed-loop load
// generator: C concurrent clients each POST single-spectrum /search
// requests back to back until the query set is exhausted, for growing C.
// It reports latency percentiles per concurrency level, plus achieved
// request rates and the coalescing ratio in the notes — the serving-side
// companion of SessionThroughput's single-driver pipeline figure.
func ServeThroughput(o Options) (Figure, error) {
	fig := Figure{
		ID:     "serve",
		Title:  "Serve latency vs closed-loop concurrency",
		XLabel: "concurrent clients",
		YLabel: "latency ms",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()
	sess, err := engine.NewSession(c.Peptides, engine.SessionConfig{Config: cfg, Shards: o.Ranks})
	if err != nil {
		return fig, err
	}
	defer sess.Close()

	srv := server.New(sess, c.Peptides, server.Config{
		BatchSize:     64,
		FlushInterval: time.Millisecond,
		QueueDepth:    1024,
		MaxInFlight:   4,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	bodies := make([][]byte, len(c.Queries))
	for i, q := range c.Queries {
		b, err := marshalQuery(q)
		if err != nil {
			return fig, err
		}
		bodies[i] = b
	}

	levels := []int{1, 2, 4, 8, 16}
	p50 := Series{Label: "p50"}
	p95 := Series{Label: "p95"}
	p99 := Series{Label: "p99"}
	var rates []float64
	for _, concurrency := range levels {
		lat, wall, err := closedLoop(ts.Client(), ts.URL, bodies, concurrency)
		if err != nil {
			return fig, err
		}
		sort.Float64s(lat)
		x := float64(concurrency)
		p50.X, p50.Y = append(p50.X, x), append(p50.Y, percentile(lat, 0.50))
		p95.X, p95.Y = append(p95.X, x), append(p95.Y, percentile(lat, 0.95))
		p99.X, p99.Y = append(p99.X, x), append(p99.Y, percentile(lat, 0.99))
		rates = append(rates, float64(len(bodies))/wall.Seconds())
	}
	fig.Series = []Series{p50, p95, p99}

	st := srv.Stats()
	ratio := 0.0
	if st.Batches > 0 {
		ratio = float64(st.BatchedQueries) / float64(st.Batches)
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("achieved request rates per level: %s rps", trimFloats(rates)),
		fmt.Sprintf("%d requests coalesced into %d engine batches (%.1f queries/batch); %d shards",
			st.Accepted, st.Batches, ratio, sess.NumShards()))
	return fig, nil
}

// closedLoop runs one load level: concurrency workers race through the
// request bodies, each measuring per-request latency. Returns the
// latencies in milliseconds and the wall time of the whole level.
func closedLoop(client *http.Client, baseURL string, bodies [][]byte, concurrency int) ([]float64, time.Duration, error) {
	lat := make([]float64, len(bodies))
	var next atomic.Int64
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(bodies) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/search", "application/json", bytes.NewReader(bodies[i]))
				if err != nil {
					fail(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("bench: serve request %d: status %d", i, resp.StatusCode))
					return
				}
				lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
			}
		}()
	}
	wg.Wait()
	wall := time.Since(start)
	return lat, wall, firstErr
}

// marshalQuery renders one spectrum as a single-query /search body.
func marshalQuery(q spectrum.Experimental) ([]byte, error) {
	return json.Marshal(api.SearchRequest{Spectra: []api.SpectrumJSON{api.FromExperimental(q)}})
}

// percentile reads the nearest-rank p-quantile from ascending-sorted
// values.
func percentile(sorted []float64, p float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(math.Ceil(p*float64(len(sorted)))) - 1
	if i < 0 {
		i = 0
	}
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
