package bench

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"lbe/internal/core"
	"lbe/internal/engine"
	"lbe/internal/sched"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// Steal compares the work-stealing execution layer against the legacy
// static per-shard/strided schedule on a deliberately skewed workload:
// the peptide database is sorted by ascending length and chunk-partitioned
// in raw order, so the last shards hold the longest peptides — the most
// modification variants and ion postings — and a static worker-to-shard
// pinning leaves the short-shard workers idle while the long-shard workers
// grind (the intra-node re-run of the paper's Fig. 6 chunk-policy skew).
//
// Both schedules are replayed deterministically in virtual time over
// measured per-chunk work units (sched.Estimate), converted to batch
// throughput through a rate calibrated from a real serial pass — the same
// CostModel methodology as the scalability figures, since wall clock on a
// small container cannot express 8-way parallelism. A real measured run
// of each schedule at the machine's own core count is reported in the
// notes alongside the model.
func Steal(o Options) (Figure, error) {
	const shards = 8
	workerSweep := []int{1, 2, 4, 8}

	fig := Figure{
		ID:     "steal",
		Title:  fmt.Sprintf("Work-stealing vs static scheduling, %d skewed shards", shards),
		XLabel: "scheduler workers",
		YLabel: "batch throughput (queries/s, modeled)",
	}
	c, err := o.corpusAt(paperSizesM[1])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()

	// Skew: ascending length + raw-order chunk partition concentrates the
	// expensive peptides on the last shards.
	peptides := append([]string(nil), c.Peptides...)
	sort.Slice(peptides, func(i, j int) bool {
		if len(peptides[i]) != len(peptides[j]) {
			return len(peptides[i]) < len(peptides[j])
		}
		return peptides[i] < peptides[j]
	})
	grouping := core.IdentityGrouping(len(peptides))
	partition, err := core.PartitionClustered(grouping, shards, core.Chunk, 0)
	if err != nil {
		return fig, err
	}

	// Build the shard indexes and measure the deterministic work of every
	// (shard, query) cell with one serial pass, which doubles as the rate
	// calibration (work units per second on this machine).
	qs := spectrum.PreprocessAll(c.Queries, cfg.Params.MaxQueryPeaks)
	perQuery := make([][]int64, shards)
	var totalWork int64
	serialStart := time.Now()
	for m := 0; m < shards; m++ {
		mine := partition.GlobalIndices(grouping, m)
		local := make([]string, len(mine))
		for i, g := range mine {
			local[i] = peptides[g]
		}
		ix, err := slm.BuildWorkers(local, cfg.Params, 0)
		if err != nil {
			return fig, err
		}
		perQuery[m] = make([]int64, len(qs))
		var scratch slm.Scratch
		for q := range qs {
			_, w := ix.Search(qs[q], 0, &scratch)
			perQuery[m][q] = w.IonHits + w.Scored
			totalWork += perQuery[m][q]
		}
	}
	serialSeconds := time.Since(serialStart).Seconds()
	rate := float64(totalWork) / serialSeconds // work units per second
	if rate <= 0 {
		return fig, fmt.Errorf("bench: steal: degenerate calibration rate")
	}

	// Shard skew in the figure's own currency.
	shardWork := make([]float64, shards)
	maxShard, avgShard := 0.0, 0.0
	for m := range perQuery {
		for _, w := range perQuery[m] {
			shardWork[m] += float64(w)
		}
		avgShard += shardWork[m] / float64(shards)
		if shardWork[m] > maxShard {
			maxShard = shardWork[m]
		}
	}

	static := Series{Label: "static per-shard/strided"}
	stealing := Series{Label: "work-stealing"}
	var ratioAtMax float64
	for _, w := range workerSweep {
		chunk := (&sched.Tuner{}).ChunkSize(len(qs), shards, w)
		costs := sched.ChunkCosts(perQuery, chunk)
		ms := sched.Estimate(costs, w, false)
		mw := sched.Estimate(costs, w, true)
		if ms <= 0 || mw <= 0 {
			return fig, fmt.Errorf("bench: steal: empty makespan at %d workers", w)
		}
		static.X = append(static.X, float64(w))
		static.Y = append(static.Y, float64(len(qs))*rate/float64(ms))
		stealing.X = append(stealing.X, float64(w))
		stealing.Y = append(stealing.Y, float64(len(qs))*rate/float64(mw))
		ratioAtMax = float64(ms) / float64(mw)
	}
	fig.Series = []Series{static, stealing}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"shard work skew: max/avg = %.2f (chunk partition over length-sorted peptides); "+
			"modeled via sched.Estimate over measured per-chunk work units at %.0f units/s",
		maxShard/avgShard, rate))
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"stealing vs static batch throughput at %d workers: %.2fx (acceptance floor 1.2x)",
		workerSweep[len(workerSweep)-1], ratioAtMax))

	// One real measured pair at the machine's own width, so the model is
	// anchored to an actual run (on few-core containers the two coincide).
	measured, err := measuredStealPair(o.ctx(), peptides, c.Queries, cfg, shards)
	if err != nil {
		return fig, err
	}
	fig.Notes = append(fig.Notes, measured)
	return fig, nil
}

// measuredStealPair runs the real engine once per schedule at
// GOMAXPROCS workers and reports wall time and steal counts.
func measuredStealPair(ctx context.Context, peptides []string, queries []spectrum.Experimental, cfg engine.Config, shards int) (string, error) {
	workers := runtime.GOMAXPROCS(0)
	var walls [2]float64
	var steals int64
	for i, stealingMode := range []bool{false, true} {
		scfg := engine.SessionConfig{Config: cfg, Shards: shards}
		scfg.Policy = core.Chunk
		scfg.RawOrder = true
		scfg.ThreadsPerRank = workers
		scfg.Stealing = stealingMode
		sess, err := engine.NewSession(peptides, scfg)
		if err != nil {
			return "", err
		}
		start := time.Now()
		if _, err := sess.Search(ctx, queries); err != nil {
			sess.Close()
			return "", err
		}
		walls[i] = time.Since(start).Seconds() * 1e3
		if stealingMode {
			steals = sess.SchedulerStats().Steals
		}
		sess.Close()
	}
	return fmt.Sprintf(
		"measured on this machine (%d cores): static %.1fms, stealing %.1fms, %d steals — "+
			"wall comparison needs as many cores as workers; the modeled series is the portable figure",
		workers, walls[0], walls[1], steals), nil
}
