package bench

import (
	"fmt"
	"reflect"
	"time"

	"lbe/internal/mass"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// kernelSweepPoint is one precursor-tolerance notch of the kernel sweep,
// from very narrow to fully open.
type kernelSweepPoint struct {
	label string
	tol   mass.Tolerance
}

// Kernel measures the precursor-windowed phase-1 kernel against the
// flattened full scan it replaces, on the same index, across a
// narrow-to-open tolerance sweep. For each notch it reports postings
// visited per query (IonHits), the pruning ratio (postings skipped /
// postings a full scan would visit), P50/P95 query latency for both scan
// strategies, and the windowed-over-full speedup. Every query's matches
// are compared across the two strategies in-run: the figure fails if they
// are not byte-identical, so the reported speedup can never come from a
// scan that changed results. At mass.Open the window degenerates and both
// strategies are the same code path — the expected speedup is 1x and the
// pruning ratio 0, which anchors the sweep.
func Kernel(o Options) (Figure, error) {
	fig := Figure{
		ID:     "kernel",
		Title:  "Precursor-windowed postings scan vs full scan",
		XLabel: "tolerance notch (narrow → open)",
		YLabel: "value",
	}
	c, err := o.corpusAt(paperSizesM[1])
	if err != nil {
		return fig, err
	}
	params := engineConfig().Params
	params.PrecursorTol = mass.Open()
	ix, err := slm.Build(c.Peptides, params)
	if err != nil {
		return fig, err
	}
	qs := spectrum.PreprocessAll(c.Queries, params.MaxQueryPeaks)

	sweep := []kernelSweepPoint{
		{"0.01Da", mass.Da(0.01)},
		{"0.5Da", mass.Da(0.5)},
		{"3Da", mass.Da(3)},
		{"100ppm", mass.Ppm(100)},
		{"open", mass.Open()},
	}

	ionsWin := Series{Label: "IonHits/query (windowed)"}
	ionsFull := Series{Label: "IonHits/query (full scan)"}
	pruneRatio := Series{Label: "pruning ratio"}
	p50Win := Series{Label: "p50 us (windowed)"}
	p95Win := Series{Label: "p95 us (windowed)"}
	p50Full := Series{Label: "p50 us (full scan)"}
	p95Full := Series{Label: "p95 us (full scan)"}
	speedup := Series{Label: "speedup (full/windowed wall)"}

	identical := 1.0
	var labels []string
	for pi, pt := range sweep {
		if err := o.ctx().Err(); err != nil {
			return fig, err
		}
		windowed, err := ix.WithPrecursorTol(pt.tol)
		if err != nil {
			return fig, err
		}
		full, err := ix.WithPrecursorTol(pt.tol)
		if err != nil {
			return fig, err
		}
		full.SetFullScan(true)

		run := func(view *slm.Index) (work slm.Work, total time.Duration, lat []float64, results [][]slm.Match) {
			var scratch slm.Scratch
			lat = make([]float64, len(qs))
			results = make([][]slm.Match, len(qs))
			for i, q := range qs {
				start := time.Now()
				ms, w := view.Search(q, 0, &scratch)
				d := time.Since(start)
				total += d
				lat[i] = float64(d.Nanoseconds()) / 1e3
				work.Add(w)
				results[i] = ms
			}
			return work, total, lat, results
		}
		winWork, winWall, winLat, winRes := run(windowed)
		fullWork, fullWall, fullLat, fullRes := run(full)

		for i := range winRes {
			if !reflect.DeepEqual(winRes[i], fullRes[i]) {
				identical = 0
				return fig, fmt.Errorf("bench: kernel: %s query %d: windowed and full-scan matches differ", pt.label, i)
			}
		}
		if winWork.IonHits+winWork.Pruned != fullWork.IonHits {
			return fig, fmt.Errorf("bench: kernel: %s: windowed IonHits %d + Pruned %d != full IonHits %d",
				pt.label, winWork.IonHits, winWork.Pruned, fullWork.IonHits)
		}

		nq := float64(len(qs))
		x := float64(pi)
		ratio := 0.0
		if fullWork.IonHits > 0 {
			ratio = float64(winWork.Pruned) / float64(fullWork.IonHits)
		}
		ionsWin.X, ionsWin.Y = append(ionsWin.X, x), append(ionsWin.Y, float64(winWork.IonHits)/nq)
		ionsFull.X, ionsFull.Y = append(ionsFull.X, x), append(ionsFull.Y, float64(fullWork.IonHits)/nq)
		pruneRatio.X, pruneRatio.Y = append(pruneRatio.X, x), append(pruneRatio.Y, ratio)
		p50Win.X, p50Win.Y = append(p50Win.X, x), append(p50Win.Y, percentile(winLat, 0.50))
		p95Win.X, p95Win.Y = append(p95Win.X, x), append(p95Win.Y, percentile(winLat, 0.95))
		p50Full.X, p50Full.Y = append(p50Full.X, x), append(p50Full.Y, percentile(fullLat, 0.50))
		p95Full.X, p95Full.Y = append(p95Full.X, x), append(p95Full.Y, percentile(fullLat, 0.95))
		sp := 1.0
		if winWall > 0 {
			sp = float64(fullWall) / float64(winWall)
		}
		speedup.X, speedup.Y = append(speedup.X, x), append(speedup.Y, sp)
		labels = append(labels, pt.label)

		fig.Notes = append(fig.Notes, fmt.Sprintf(
			"%s: %.0f vs %.0f IonHits/query, pruning ratio %.3f, p50 %.1f vs %.1f us, p95 %.1f vs %.1f us, %.2fx",
			pt.label, float64(winWork.IonHits)/nq, float64(fullWork.IonHits)/nq, ratio,
			percentile(winLat, 0.50), percentile(fullLat, 0.50),
			percentile(winLat, 0.95), percentile(fullLat, 0.95), sp))
	}

	fig.Series = []Series{ionsWin, ionsFull, pruneRatio, p50Win, p95Win, p50Full, p95Full, speedup}
	fig.Metrics = map[string]float64{
		"identical":                 identical,
		"pruning_ratio_narrow":      pruneRatio.Y[0],
		"pruning_ratio_open":        pruneRatio.Y[len(pruneRatio.Y)-1],
		"ion_hits_per_query_narrow": ionsWin.Y[0],
		"ion_hits_per_query_full":   ionsFull.Y[0],
		"speedup_narrow":            speedup.Y[0],
		"p50_us_windowed_narrow":    p50Win.Y[0],
		"p95_us_windowed_narrow":    p95Win.Y[0],
		"p50_us_full_narrow":        p50Full.Y[0],
		"p95_us_full_narrow":        p95Full.Y[0],
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("sweep notches: %v; every query verified byte-identical between windowed and full scans", labels))
	return fig, nil
}
