package bench

import (
	"fmt"
	"strings"
)

// Series is one labeled curve of an experiment figure.
type Series struct {
	Label string
	X     []float64
	Y     []float64
}

// Figure is a reproduced paper figure: axis metadata plus its curves.
type Figure struct {
	ID     string // e.g. "fig6"
	Title  string
	XLabel string
	YLabel string
	Series []Series
	Notes  []string
}

// Markdown renders the figure as a markdown table with one column per
// series, suitable for EXPERIMENTS.md.
func (f Figure) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	fmt.Fprintf(&sb, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %s (%s) |", s.Label, f.YLabel)
	}
	sb.WriteString("\n|")
	for i := 0; i < len(f.Series)+1; i++ {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		fmt.Fprintf(&sb, "| %s |", trimFloat(x))
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			fmt.Fprintf(&sb, " %s |", cell)
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	return sb.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
