package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one labeled curve of an experiment figure.
type Series struct {
	Label string    `json:"label"`
	X     []float64 `json:"x"`
	Y     []float64 `json:"y"`
}

// Figure is a reproduced paper figure: axis metadata plus its curves.
// The JSON encoding is the machine-readable BENCH_<id>.json artifact
// lbe-bench writes next to the markdown, so perf trajectories can be
// tracked across commits without parsing tables.
type Figure struct {
	ID     string   `json:"id"` // e.g. "fig6"
	Title  string   `json:"title"`
	XLabel string   `json:"x_label"`
	YLabel string   `json:"y_label"`
	Series []Series `json:"series"`
	Notes  []string `json:"notes,omitempty"`

	// Metrics are the figure's headline scalars (speedups, deltas) keyed
	// by a stable snake_case name, for dashboards and CI assertions that
	// should not scrape Notes prose.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Markdown renders the figure as a markdown table with one column per
// series, suitable for EXPERIMENTS.md.
func (f Figure) Markdown() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "### %s — %s\n\n", strings.ToUpper(f.ID[:1])+f.ID[1:], f.Title)
	fmt.Fprintf(&sb, "| %s |", f.XLabel)
	for _, s := range f.Series {
		fmt.Fprintf(&sb, " %s (%s) |", s.Label, f.YLabel)
	}
	sb.WriteString("\n|")
	for i := 0; i < len(f.Series)+1; i++ {
		sb.WriteString("---|")
	}
	sb.WriteString("\n")

	// Collect the union of X values in first-seen order.
	var xs []float64
	seen := map[float64]bool{}
	for _, s := range f.Series {
		for _, x := range s.X {
			if !seen[x] {
				seen[x] = true
				xs = append(xs, x)
			}
		}
	}
	for _, x := range xs {
		fmt.Fprintf(&sb, "| %s |", trimFloat(x))
		for _, s := range f.Series {
			cell := ""
			for i, sx := range s.X {
				if sx == x {
					cell = trimFloat(s.Y[i])
					break
				}
			}
			fmt.Fprintf(&sb, " %s |", cell)
		}
		sb.WriteString("\n")
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&sb, "\n> %s\n", n)
	}
	if len(f.Metrics) > 0 {
		keys := make([]string, 0, len(f.Metrics))
		for k := range f.Metrics {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			fmt.Fprintf(&sb, "\n> %s = %s\n", k, trimFloat(f.Metrics[k]))
		}
	}
	return sb.String()
}

func trimFloat(v float64) string {
	s := fmt.Sprintf("%.4f", v)
	s = strings.TrimRight(s, "0")
	s = strings.TrimRight(s, ".")
	if s == "" || s == "-" {
		return "0"
	}
	return s
}
