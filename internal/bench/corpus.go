// Package bench contains the experiment runners that regenerate every
// figure of the paper's evaluation (Figs. 5-11), the in-text setup
// statistics, and the design-choice ablations, at a configurable fraction
// of the paper's scale. Runners return structured Series/Table values that
// cmd/lbe-bench renders and bench_test.go exercises.
package bench

import (
	"fmt"

	"lbe/internal/digest"
	"lbe/internal/gen"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Corpus is a generated dataset: the deduplicated peptide database and a
// query run sampled from it.
type Corpus struct {
	Peptides []string
	Queries  []spectrum.Experimental
	Truth    []gen.GroundTruth
	// Rows is the number of index rows (peptide variants) the peptide set
	// produces under the mod config the corpus was sized for.
	Rows int
}

// SizedCorpus generates a synthetic proteome, digests it, and trims the
// deduplicated peptide list so that the index built with modCfg holds
// approximately targetRows rows ("index size" in the paper's million-
// spectra terms). nqueries spectra are sampled Zipf-skewed from the kept
// peptides.
func SizedCorpus(targetRows, nqueries int, seed uint64, modCfg mods.Config) (Corpus, error) {
	if targetRows < 1 {
		return Corpus{}, fmt.Errorf("bench: targetRows %d must be >= 1", targetRows)
	}

	// Grow the proteome until the digest covers the target, then trim.
	families := 8
	var peptides []string
	for {
		pcfg := gen.ProteomeConfig{
			Seed:         seed,
			NumFamilies:  families,
			Homologs:     4,
			MeanLen:      450,
			MutationRate: 0.03,
		}
		recs, err := gen.Proteome(pcfg)
		if err != nil {
			return Corpus{}, err
		}
		seqs := make([]string, len(recs))
		for i, r := range recs {
			seqs[i] = r.Sequence
		}
		peps, err := digest.DefaultConfig().Proteome(seqs)
		if err != nil {
			return Corpus{}, err
		}
		peps = digest.Dedup(peps)
		peptides = digest.Sequences(peps)

		total := 0
		for _, seq := range peptides {
			total += modCfg.Count(seq)
		}
		if total >= targetRows || families > 1<<16 {
			break
		}
		families *= 2
	}

	// Trim to the row target.
	rows := 0
	kept := peptides[:0]
	for _, seq := range peptides {
		if rows >= targetRows {
			break
		}
		rows += modCfg.Count(seq)
		kept = append(kept, seq)
	}
	peptides = kept

	scfg := gen.DefaultSpectraConfig()
	scfg.Seed = seed + 1
	scfg.NumSpectra = nqueries
	scfg.Mods = modCfg
	queries, truth, err := gen.Spectra(peptides, scfg)
	if err != nil {
		return Corpus{}, err
	}
	return Corpus{Peptides: peptides, Queries: queries, Truth: truth, Rows: rows}, nil
}
