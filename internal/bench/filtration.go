package bench

import (
	"fmt"

	"lbe/internal/filter"
	"lbe/internal/gen"
	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/slm"
	"lbe/internal/spectrum"
)

// FiltrationComparison reproduces the related-work landscape of §II-A as a
// measured table: for the three database-filtration families (precursor
// mass, sequence tag, shared peak), the mean candidate count per query,
// the database reduction factor, and the recall of the true peptide —
// for both unmodified and modified query spectra. It quantifies the
// motivation for shared-peak open search: precursor filtration is the
// most selective but collapses on modified ("dark matter") spectra.
func FiltrationComparison(o Options) (Figure, error) {
	fig := Figure{
		ID:     "filtration",
		Title:  "Filtration methods (§II-A): candidates per query and recall",
		XLabel: "method#",
		YLabel: "value",
	}
	c, err := SizedCorpus(o.sizeRows(paperSizesM[0]), 0, o.Seed, modConfig())
	if err != nil {
		return fig, err
	}
	peptides := c.Peptides

	// Two query sets: pristine unmodified and all-modified.
	mkQueries := func(modProb float64, seed uint64) ([]spectrum.Experimental, []gen.GroundTruth, error) {
		scfg := gen.DefaultSpectraConfig()
		scfg.Seed = seed
		scfg.NumSpectra = o.Queries / 2
		scfg.ModProb = modProb
		scfg.Mods = modConfig()
		return gen.Spectra(peptides, scfg)
	}
	plainQ, plainT, err := mkQueries(0, o.Seed+10)
	if err != nil {
		return fig, err
	}
	modQ, modT, err := mkQueries(1, o.Seed+11)
	if err != nil {
		return fig, err
	}

	// The three filters. Shared-peak uses an unmodified index with the
	// paper's Shpeak >= 4 and open precursor window.
	prec, err := filter.NewPrecursor(peptides, mass.Da(0.05))
	if err != nil {
		return fig, err
	}
	tag, err := filter.NewTag(peptides, filter.DefaultTagConfig())
	if err != nil {
		return fig, err
	}
	params := slm.DefaultParams()
	params.Mods = mods.Config{MaxPerPep: 0}
	ix, err := slm.Build(peptides, params)
	if err != nil {
		return fig, err
	}

	type method struct {
		name       string
		candidates func(q spectrum.Experimental) map[int]bool
	}
	asSet := func(ids []int) map[int]bool {
		s := make(map[int]bool, len(ids))
		for _, id := range ids {
			s[id] = true
		}
		return s
	}
	var scratch slm.Scratch
	methods := []method{
		{"precursor-mass (0.05Da)", func(q spectrum.Experimental) map[int]bool {
			return asSet(prec.Candidates(q))
		}},
		{"sequence-tag (k=3)", func(q spectrum.Experimental) map[int]bool {
			return asSet(tag.Candidates(q))
		}},
		{"shared-peak (Shpeak>=4, open)", func(q spectrum.Experimental) map[int]bool {
			ms, _ := ix.Search(spectrum.Preprocess(q, params.MaxQueryPeaks), 0, &scratch)
			s := make(map[int]bool, len(ms))
			for _, m := range ms {
				s[int(m.Peptide)] = true
			}
			return s
		}},
	}

	evaluate := func(m method, qs []spectrum.Experimental, truth []gen.GroundTruth) (meanCand, recall float64) {
		totalCand, hits := 0, 0
		for i, q := range qs {
			set := m.candidates(q)
			totalCand += len(set)
			if set[truth[i].Peptide] {
				hits++
			}
		}
		n := float64(len(qs))
		return float64(totalCand) / n, 100 * float64(hits) / n
	}

	candS := Series{Label: "mean candidates/query (unmod)"}
	recallS := Series{Label: "recall % (unmod)"}
	candModS := Series{Label: "mean candidates/query (modified)"}
	recallModS := Series{Label: "recall % (modified)"}
	for i, m := range methods {
		mc, rc := evaluate(m, plainQ, plainT)
		mcM, rcM := evaluate(m, modQ, modT)
		x := float64(i)
		candS.X, candS.Y = append(candS.X, x), append(candS.Y, mc)
		recallS.X, recallS.Y = append(recallS.X, x), append(recallS.Y, rc)
		candModS.X, candModS.Y = append(candModS.X, x), append(candModS.Y, mcM)
		recallModS.X, recallModS.Y = append(recallModS.X, x), append(recallModS.Y, rcM)
		fig.Notes = append(fig.Notes, fmt.Sprintf("method %d: %s (db %d peptides)", i, m.name, len(peptides)))
	}
	fig.Series = []Series{candS, recallS, candModS, recallModS}
	fig.Notes = append(fig.Notes,
		"expected: precursor filter has highest reduction but near-zero modified recall (§II-A1); "+
			"shared-peak keeps high recall on modified spectra at moderate candidate load")
	return fig, nil
}
