package bench

import (
	"bytes"
	"fmt"
	"io"
	"math"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"lbe/internal/engine"
	"lbe/internal/server"
)

// CacheHit measures the content-addressed answer cache under closed-loop
// zipf-skewed replay: C concurrent clients draw single-spectrum requests
// from a fixed query pool with zipf exponent s ∈ {0, 0.9, 1.2} (0 =
// uniform) and drive a cached and an uncached server with the identical
// request order. It reports throughput per skew for both configurations,
// with P50/P95 latency, the hit-rate trajectory, and a byte-identity
// check of cached vs uncached responses in the notes.
func CacheHit(o Options) (Figure, error) {
	fig := Figure{
		ID:     "cache",
		Title:  "Answer cache under zipf-skewed closed-loop replay",
		XLabel: "zipf exponent s",
		YLabel: "throughput req/s",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()
	sess, err := engine.NewSession(c.Peptides, engine.SessionConfig{Config: cfg, Shards: o.Ranks})
	if err != nil {
		return fig, err
	}
	defer sess.Close()

	pool := len(c.Queries)
	if pool > 400 {
		pool = 400
	}
	bodies := make([][]byte, pool)
	for i := 0; i < pool; i++ {
		b, err := marshalQuery(c.Queries[i])
		if err != nil {
			return fig, err
		}
		bodies[i] = b
	}
	requests := 4 * pool
	const concurrency = 8
	serveCfg := server.Config{
		BatchSize:     64,
		FlushInterval: time.Millisecond,
		QueueDepth:    1024,
		MaxInFlight:   4,
	}

	// The uncached server is stateless across levels and shared; the
	// cached server is rebuilt per skew so one level's warm cache cannot
	// flatter the next.
	cold := server.New(sess, c.Peptides, serveCfg)
	defer cold.Close()
	coldTS := httptest.NewServer(cold.Handler())
	defer coldTS.Close()

	skews := []float64{0, 0.9, 1.2}
	cached := Series{Label: "cached (64 MiB)"}
	uncached := Series{Label: "cache disabled"}
	rng := rand.New(rand.NewSource(int64(o.Seed)))
	var lastSpeedup float64
	for _, s := range skews {
		order := zipfOrder(rng, pool, requests, s)

		warmCfg := serveCfg
		warmCfg.CacheBytes = 64 << 20
		warm := server.New(sess, c.Peptides, warmCfg)
		warmTS := httptest.NewServer(warm.Handler())

		// Uncached first so the cached run's numbers cannot be helped by
		// OS/page warmup the uncached run paid for.
		coldLat, coldWall, err := replayOrder(coldTS.Client(), coldTS.URL, bodies, order, concurrency, nil)
		if err == nil {
			var marks []hitMark
			marks, err = trajectoryMarks(warm, requests)
			var warmLat []float64
			var warmWall time.Duration
			if err == nil {
				warmLat, warmWall, err = replayOrder(warmTS.Client(), warmTS.URL, bodies, order, concurrency, marks)
			}
			if err == nil {
				sort.Float64s(coldLat)
				sort.Float64s(warmLat)
				coldQPS := float64(requests) / coldWall.Seconds()
				warmQPS := float64(requests) / warmWall.Seconds()
				uncached.X, uncached.Y = append(uncached.X, s), append(uncached.Y, coldQPS)
				cached.X, cached.Y = append(cached.X, s), append(cached.Y, warmQPS)
				lastSpeedup = warmQPS / coldQPS
				st := warm.Stats().Cache
				fig.Notes = append(fig.Notes, fmt.Sprintf(
					"s=%.1f: %.0f vs %.0f req/s (%.1fx); p50 %.2f vs %.2f ms, p95 %.2f vs %.2f ms; %d hits / %d misses / %d collapsed",
					s, warmQPS, coldQPS, warmQPS/coldQPS,
					percentile(warmLat, 0.50), percentile(coldLat, 0.50),
					percentile(warmLat, 0.95), percentile(coldLat, 0.95),
					st.Hits, st.Misses, st.Collapsed))
				fig.Notes = append(fig.Notes, trajectoryNote(s, marks, requests))
			}
		}
		if err == nil && s == skews[len(skews)-1] {
			err = verifyByteIdentity(warmTS, coldTS, bodies)
			if err == nil {
				fig.Notes = append(fig.Notes, fmt.Sprintf(
					"byte-identity verified: all %d pool responses identical cached vs uncached", pool))
			}
		}
		warmTS.Close()
		warm.Close()
		if err != nil {
			return fig, err
		}
	}
	fig.Series = []Series{cached, uncached}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"pool %d spectra, %d requests per level, %d closed-loop clients; cached/uncached speedup at s=%.1f: %.1fx",
		pool, requests, concurrency, skews[len(skews)-1], lastSpeedup))
	return fig, nil
}

// zipfOrder draws n pool indexes with weight (rank+1)^-s via an inverted
// CDF — rand.Zipf requires s > 1, and the workload needs s ∈ {0, 0.9}
// too. s = 0 is the uniform baseline.
func zipfOrder(rng *rand.Rand, pool, n int, s float64) []int {
	cdf := make([]float64, pool)
	sum := 0.0
	for i := 0; i < pool; i++ {
		sum += math.Pow(float64(i+1), -s)
		cdf[i] = sum
	}
	order := make([]int, n)
	for j := range order {
		u := rng.Float64() * sum
		k := sort.SearchFloat64s(cdf, u)
		if k >= pool {
			k = pool - 1
		}
		order[j] = k
	}
	return order
}

// hitMark snapshots the cache hit counter when the closed loop passes a
// request milestone, for the hit-rate trajectory.
type hitMark struct {
	after int // requests completed
	fn    func() (hits, total int64)
	hits  int64
	total int64
}

// trajectoryMarks prepares quarter-point snapshots of srv's cache.
func trajectoryMarks(srv *server.Server, requests int) ([]hitMark, error) {
	if srv.Stats().Cache == nil {
		return nil, fmt.Errorf("bench: cache figure needs a cache-enabled server")
	}
	snap := func() (int64, int64) {
		cs := srv.Stats().Cache
		return cs.Hits, cs.Hits + cs.Misses
	}
	marks := make([]hitMark, 4)
	for q := range marks {
		marks[q] = hitMark{after: (q + 1) * requests / 4, fn: snap}
	}
	return marks, nil
}

// trajectoryNote renders the quarter-by-quarter hit rate.
func trajectoryNote(s float64, marks []hitMark, requests int) string {
	var b bytes.Buffer
	fmt.Fprintf(&b, "s=%.1f hit-rate trajectory:", s)
	var prevHits, prevTotal int64
	for _, m := range marks {
		dh, dt := m.hits-prevHits, m.total-prevTotal
		rate := 0.0
		if dt > 0 {
			rate = float64(dh) / float64(dt)
		}
		fmt.Fprintf(&b, " %d%%@%d", int(rate*100+0.5), m.after)
		prevHits, prevTotal = m.hits, m.total
	}
	b.WriteString(" (cumulative hit%@requests)")
	return b.String()
}

// replayOrder is the closed loop: concurrency workers consume the shared
// request order, each POSTing its draws back to back. marks, when
// non-nil, are filled with cache snapshots as the loop passes each
// milestone. Returns per-request latencies in ms and the wall time.
func replayOrder(client *http.Client, baseURL string, bodies [][]byte, order []int, concurrency int, marks []hitMark) ([]float64, time.Duration, error) {
	lat := make([]float64, len(order))
	var next, done atomic.Int64
	var markMu sync.Mutex
	nextMark := 0
	var errMu sync.Mutex
	var firstErr error
	fail := func(err error) {
		errMu.Lock()
		if firstErr == nil {
			firstErr = err
		}
		errMu.Unlock()
	}
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= len(order) {
					return
				}
				t0 := time.Now()
				resp, err := client.Post(baseURL+"/search", "application/json", bytes.NewReader(bodies[order[i]]))
				if err != nil {
					fail(err)
					return
				}
				_, _ = io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					fail(fmt.Errorf("bench: cache replay request %d: status %d", i, resp.StatusCode))
					return
				}
				lat[i] = float64(time.Since(t0).Nanoseconds()) / 1e6
				d := int(done.Add(1))
				if marks != nil {
					markMu.Lock()
					for nextMark < len(marks) && d >= marks[nextMark].after {
						marks[nextMark].hits, marks[nextMark].total = marks[nextMark].fn()
						nextMark++
					}
					markMu.Unlock()
				}
			}
		}()
	}
	wg.Wait()
	return lat, time.Since(start), firstErr
}

// verifyByteIdentity replays every pool body once against both servers
// and demands byte-identical responses — the cached server is warm at
// this point, so each comparison pits a cache read against a fresh
// engine search.
func verifyByteIdentity(warm, cold *httptest.Server, bodies [][]byte) error {
	fetch := func(ts *httptest.Server, body []byte) ([]byte, error) {
		resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
		if err != nil {
			return nil, err
		}
		defer resp.Body.Close()
		data, err := io.ReadAll(resp.Body)
		if err != nil {
			return nil, err
		}
		if resp.StatusCode != http.StatusOK {
			return nil, fmt.Errorf("status %d: %s", resp.StatusCode, data)
		}
		return data, nil
	}
	for i, body := range bodies {
		a, err := fetch(warm, body)
		if err != nil {
			return fmt.Errorf("bench: identity check %d (cached): %w", i, err)
		}
		b, err := fetch(cold, body)
		if err != nil {
			return fmt.Errorf("bench: identity check %d (uncached): %w", i, err)
		}
		if !bytes.Equal(a, b) {
			return fmt.Errorf("bench: cached response %d differs from uncached", i)
		}
	}
	return nil
}
