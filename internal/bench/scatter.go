package bench

import (
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sort"
	"time"

	"lbe/internal/engine"
	"lbe/internal/router"
	"lbe/internal/server"
)

// Scatter measures the partitioned serving tier: one database is cut
// into 1, 2 and 4 shard-sets (lbe-index -shard-sets), each set served by
// its own warm-started replica, and a scatter/gather router merges the
// per-set top-K at the front-end. A fixed closed-loop client population
// drives every level; the whole-store replica driven directly (no
// router, no partitioning) is the baseline the levels are compared
// against. The figure reports latency percentiles per shard-set count;
// the notes record achieved request rates, the gather overhead against
// the direct baseline, and the per-level routing counters.
func Scatter(o Options) (Figure, error) {
	fig := Figure{
		ID:     "scatter",
		Title:  "Scatter/gather latency vs shard-set count (closed loop, 16 clients)",
		XLabel: "shard-sets",
		YLabel: "latency ms",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()

	const concurrency = 16
	shards := o.Ranks
	if shards > 4 {
		// The figure scales shard-sets over a fixed 4-shard store; the
		// set counts {1,2,4} must divide into the shard count.
		shards = 4
	}
	if shards < 4 {
		shards = 4
	}

	cfg.TopK = 5
	sess, err := engine.NewSession(c.Peptides, engine.SessionConfig{Config: cfg, Shards: shards})
	if err != nil {
		return fig, err
	}
	defer sess.Close()

	dir, err := os.MkdirTemp("", "lbe-scatter-*")
	if err != nil {
		return fig, err
	}
	defer os.RemoveAll(dir)

	bodies := make([][]byte, len(c.Queries))
	for i, q := range c.Queries {
		b, err := marshalQuery(q)
		if err != nil {
			return fig, err
		}
		bodies[i] = b
	}

	serverCfg := server.Config{
		BatchSize:     64,
		FlushInterval: time.Millisecond,
		QueueDepth:    1024,
		MaxInFlight:   4,
	}

	// Direct whole-store baseline: the same load on one un-partitioned
	// replica without a router, quantifying the scatter tier's overhead.
	baseSrv := server.New(sess, c.Peptides, serverCfg)
	baseTS := httptest.NewServer(baseSrv.Handler())
	directLat, directWall, err := closedLoop(baseTS.Client(), baseTS.URL, bodies, concurrency)
	baseSrv.Close()
	baseTS.Close()
	if err != nil {
		return fig, err
	}
	sort.Float64s(directLat)

	p50 := Series{Label: "p50"}
	p95 := Series{Label: "p95"}
	p99 := Series{Label: "p99"}
	var rates []float64
	for _, sets := range []int{1, 2, 4} {
		clusterDir := filepath.Join(dir, fmt.Sprintf("cluster-%d", sets))
		cm, err := sess.SavePartitioned(clusterDir, c.Peptides, sets)
		if err != nil {
			return fig, err
		}

		type holderProc struct {
			sess *engine.Session
			srv  *server.Server
			ts   *httptest.Server
		}
		holders := make([]holderProc, 0, sets)
		urls := make([]string, 0, sets)
		for s := 0; s < sets; s++ {
			hs, peps, err := engine.OpenSession(filepath.Join(clusterDir, cm.SetDirs[s]))
			if err != nil {
				return fig, err
			}
			srv := server.New(hs, peps, serverCfg)
			ts := httptest.NewServer(srv.Handler())
			holders = append(holders, holderProc{sess: hs, srv: srv, ts: ts})
			urls = append(urls, ts.URL)
		}
		rt, err := router.New(urls, router.Config{
			ProbeInterval:   50 * time.Millisecond,
			StatsStaleAfter: time.Hour,
			Scatter:         true,
		})
		if err == nil {
			rts := httptest.NewServer(rt.Handler())
			var lat []float64
			var wall time.Duration
			lat, wall, err = closedLoop(rts.Client(), rts.URL, bodies, concurrency)
			st := rt.Stats()
			rt.Close()
			rts.Close()
			if err == nil {
				if st.Scatter == nil || st.Scatter.Covered != sets || st.Routed != int64(len(bodies)) {
					err = fmt.Errorf("bench: scatter: level %d covered %+v, routed %d of %d",
						sets, st.Scatter, st.Routed, len(bodies))
				}
			}
			if err == nil {
				sort.Float64s(lat)
				x := float64(sets)
				p50.X, p50.Y = append(p50.X, x), append(p50.Y, percentile(lat, 0.50))
				p95.X, p95.Y = append(p95.X, x), append(p95.Y, percentile(lat, 0.95))
				p99.X, p99.Y = append(p99.X, x), append(p99.Y, percentile(lat, 0.99))
				rates = append(rates, float64(len(bodies))/wall.Seconds())
			}
		}
		for _, h := range holders {
			h.srv.Close()
			h.ts.Close()
			h.sess.Close()
		}
		if err != nil {
			return fig, err
		}
	}
	fig.Series = []Series{p50, p95, p99}

	fig.Notes = append(fig.Notes,
		fmt.Sprintf("achieved request rates per level: %s rps", trimFloats(rates)),
		fmt.Sprintf("direct whole-store baseline (no router): %.0f rps, p50 %.2f ms — gather overhead at 1 set p50 %+.2f ms",
			float64(len(bodies))/directWall.Seconds(), percentile(directLat, 0.50),
			p50.Y[0]-percentile(directLat, 0.50)),
		fmt.Sprintf("every level serves the same %d-shard store cut into shard-sets; merged responses are byte-identical to the whole-store session's", shards))
	return fig, nil
}
