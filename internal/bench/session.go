package bench

import (
	"fmt"
	"time"

	"lbe/internal/engine"
)

// SessionThroughput measures the streaming Session pipeline: the engine is
// built once and the query run is then streamed through it at several
// pipeline batch sizes, against the serial shared-memory baseline's query
// phase. Small batches overlap preprocess, per-shard search and merge;
// one huge batch degenerates to the unpipelined gather.
func SessionThroughput(o Options) (Figure, error) {
	fig := Figure{
		ID:     "session",
		Title:  "Streaming session throughput vs pipeline batch size",
		XLabel: "batch size (queries)",
		YLabel: "query wall ms",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()

	serial, err := engine.RunSerial(c.Peptides, c.Queries, cfg)
	if err != nil {
		return fig, err
	}
	serialMs := float64(serial.Stats[0].QueryNanos) / 1e6
	serialPSMs := 0
	for _, qs := range serial.PSMs {
		serialPSMs += len(qs)
	}

	sess, err := engine.NewSession(c.Peptides, engine.SessionConfig{Config: cfg, Shards: o.Ranks})
	if err != nil {
		return fig, err
	}
	defer sess.Close()

	batches := []int{1, 16, 64, 256, len(c.Queries)}
	session := Series{Label: "session pipeline"}
	baseline := Series{Label: "serial baseline"}
	for _, b := range batches {
		st, err := sess.Stream(o.ctx())
		if err != nil {
			return fig, err
		}
		start := time.Now()
		go func() {
			defer st.Close()
			st.PushAll(c.Queries, b)
		}()
		got := 0
		for br := range st.Results() {
			for _, qs := range br.PSMs {
				got += len(qs)
			}
		}
		if err := st.Err(); err != nil {
			return fig, err
		}
		wallMs := float64(time.Since(start).Nanoseconds()) / 1e6
		if got != serialPSMs {
			return fig, fmt.Errorf("bench: session batch %d returned %d PSMs, serial %d", b, got, serialPSMs)
		}
		session.X = append(session.X, float64(b))
		session.Y = append(session.Y, wallMs)
		baseline.X = append(baseline.X, float64(b))
		baseline.Y = append(baseline.Y, serialMs)
	}
	fig.Series = []Series{session, baseline}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("%d shards, engine built once and reused across %d streamed runs; PSM counts equal the serial baseline's (%d)",
			sess.NumShards(), len(batches), serialPSMs))
	return fig, nil
}
