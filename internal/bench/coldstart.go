package bench

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"time"

	"lbe/internal/engine"
)

// ColdStart measures the serving cold start the persistent session store
// removes: for growing index sizes, the wall time of a full rebuild
// (grouping, policy partition, parallel per-shard index construction)
// versus engine.OpenSession over a store saved beforehand. The rebuild is
// O(database); the open is O(index bytes), loaded in parallel — the
// store's reason to exist.
func ColdStart(o Options) (Figure, error) {
	fig := Figure{
		ID:     "coldstart",
		Title:  fmt.Sprintf("Serving cold start: rebuild vs open from store, %d shards", o.Ranks),
		XLabel: "index size (rows)",
		YLabel: "wall ms",
	}
	rebuild := Series{Label: "rebuild (NewSession)"}
	warm := Series{Label: "open from store (OpenSession)"}
	var speedups, storeMB []float64
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		cfg := engineConfig()
		scfg := engine.SessionConfig{Config: cfg, Shards: o.Ranks}

		buildStart := time.Now()
		sess, err := engine.NewSession(c.Peptides, scfg)
		if err != nil {
			return fig, err
		}
		buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6

		dir, err := os.MkdirTemp("", "lbe-coldstart-*")
		if err != nil {
			sess.Close()
			return fig, err
		}
		openMs, rows, bytes, err := openFromStore(o.ctx(), sess, c, dir)
		os.RemoveAll(dir)
		sess.Close()
		if err != nil {
			return fig, err
		}

		x := float64(rows)
		rebuild.X, rebuild.Y = append(rebuild.X, x), append(rebuild.Y, buildMs)
		warm.X, warm.Y = append(warm.X, x), append(warm.Y, openMs)
		speedups = append(speedups, buildMs/openMs)
		storeMB = append(storeMB, float64(bytes)/(1<<20))
	}
	fig.Series = []Series{rebuild, warm}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("open-from-store speedup per notch: %sx", trimFloats(speedups)),
		fmt.Sprintf("store size on disk per notch: %s MB; reloaded sessions verified PSM-identical on a query sample",
			trimFloats(storeMB)))
	return fig, nil
}

// openFromStore saves the session to dir, times OpenSession, verifies the
// reloaded session answers a query sample identically, and reports the
// open wall time, total indexed rows, and store bytes on disk.
func openFromStore(ctx context.Context, sess *engine.Session, c Corpus, dir string) (openMs float64, rows int, storeBytes int64, err error) {
	if err := sess.Save(dir, c.Peptides); err != nil {
		return 0, 0, 0, err
	}
	err = filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		storeBytes += fi.Size()
		return nil
	})
	if err != nil {
		return 0, 0, 0, err
	}

	openStart := time.Now()
	loaded, _, err := engine.OpenSession(dir)
	if err != nil {
		return 0, 0, 0, err
	}
	openMs = float64(time.Since(openStart).Nanoseconds()) / 1e6
	defer loaded.Close()

	for _, rs := range loaded.Stats() {
		rows += rs.Rows
	}

	// Keep the figure honest: the warm session must answer exactly like
	// the one that saved it.
	sample := c.Queries
	if len(sample) > 32 {
		sample = sample[:32]
	}
	want, err := sess.Search(ctx, sample)
	if err != nil {
		return 0, 0, 0, err
	}
	got, err := loaded.Search(ctx, sample)
	if err != nil {
		return 0, 0, 0, err
	}
	if !reflect.DeepEqual(got.PSMs, want.PSMs) {
		return 0, 0, 0, fmt.Errorf("bench: coldstart: reloaded session PSMs differ from the saved session's")
	}
	return openMs, rows, storeBytes, nil
}
