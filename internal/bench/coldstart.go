package bench

import (
	"context"
	"fmt"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"runtime"
	"time"

	"lbe/internal/engine"
	"lbe/internal/spectrum"
)

// ColdStart measures the serving cold start the persistent session store
// removes, three ways per index size: the wall time of a full rebuild
// (grouping, policy partition, parallel per-shard index construction),
// engine.OpenSession decoding every shard into the heap, and the mmap
// open that reads only each shard's CRC-protected header and backs the
// arrays with zero-copy views. The rebuild is O(database), the heap open
// O(index bytes), the mapped open O(header) — with the deferred content
// verification and page faults moving into the first query, which the
// figure reports separately, alongside the heap-allocation delta each
// open mode leaves resident.
func ColdStart(o Options) (Figure, error) {
	fig := Figure{
		ID:     "coldstart",
		Title:  fmt.Sprintf("Serving cold start: rebuild vs heap open vs mmap open, %d shards", o.Ranks),
		XLabel: "index size (rows)",
		YLabel: "wall ms",
	}
	rebuild := Series{Label: "rebuild (NewSession)"}
	heapOpen := Series{Label: "heap open (OpenSession, MapStore off)"}
	mmapOpen := Series{Label: "mmap open (OpenSession, MapStore on)"}
	heapFirstQ := Series{Label: "first query batch after heap open"}
	mmapFirstQ := Series{Label: "first query batch after mmap open"}
	var speedups, heapMBs, mmapMBs, storeMB []float64
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		cfg := engineConfig()
		scfg := engine.SessionConfig{Config: cfg, Shards: o.Ranks}

		buildStart := time.Now()
		sess, err := engine.NewSession(c.Peptides, scfg)
		if err != nil {
			return fig, err
		}
		buildMs := float64(time.Since(buildStart).Nanoseconds()) / 1e6

		dir, err := os.MkdirTemp("", "lbe-coldstart-*")
		if err != nil {
			sess.Close()
			return fig, err
		}
		res, err := coldstartStore(o.ctx(), sess, c, dir)
		os.RemoveAll(dir)
		sess.Close()
		if err != nil {
			return fig, err
		}

		x := float64(res.rows)
		rebuild.X, rebuild.Y = append(rebuild.X, x), append(rebuild.Y, buildMs)
		heapOpen.X, heapOpen.Y = append(heapOpen.X, x), append(heapOpen.Y, res.heap.openMs)
		mmapOpen.X, mmapOpen.Y = append(mmapOpen.X, x), append(mmapOpen.Y, res.mmap.openMs)
		heapFirstQ.X, heapFirstQ.Y = append(heapFirstQ.X, x), append(heapFirstQ.Y, res.heap.firstQueryMs)
		mmapFirstQ.X, mmapFirstQ.Y = append(mmapFirstQ.X, x), append(mmapFirstQ.Y, res.mmap.firstQueryMs)
		speedups = append(speedups, res.heap.openMs/res.mmap.openMs)
		heapMBs = append(heapMBs, res.heap.allocMB)
		mmapMBs = append(mmapMBs, res.mmap.allocMB)
		storeMB = append(storeMB, float64(res.storeBytes)/(1<<20))
	}
	fig.Series = []Series{rebuild, heapOpen, mmapOpen, heapFirstQ, mmapFirstQ}
	last := len(speedups) - 1
	fig.Metrics = map[string]float64{
		"rebuild_ms_largest":          rebuild.Y[last],
		"heap_open_ms_largest":        heapOpen.Y[last],
		"mmap_open_ms_largest":        mmapOpen.Y[last],
		"mmap_open_speedup_largest":   speedups[last],
		"heap_first_query_ms_largest": heapFirstQ.Y[last],
		"mmap_first_query_ms_largest": mmapFirstQ.Y[last],
		"heap_open_alloc_mb_largest":  heapMBs[last],
		"mmap_open_alloc_mb_largest":  mmapMBs[last],
		"store_mb_largest":            storeMB[last],
	}
	fig.Notes = append(fig.Notes,
		fmt.Sprintf("mmap-over-heap open speedup per notch: %sx (mmap reads headers only; section CRCs + page faults move into the first query batch, charted separately)",
			trimFloats(speedups)),
		fmt.Sprintf("heap-allocation delta left resident by the open, per notch: heap %s MB vs mmap %s MB — mapped shards live in kernel page cache, shared across co-located processes and reclaimable under pressure",
			trimFloats(heapMBs), trimFloats(mmapMBs)),
		fmt.Sprintf("store size on disk per notch: %s MB; heap-opened, mmap-opened and freshly built sessions verified PSM-identical on a query sample",
			trimFloats(storeMB)))
	return fig, nil
}

// openStats is one open mode's cold-start measurement.
type openStats struct {
	openMs       float64 // OpenSessionOptions wall time
	firstQueryMs float64 // first query batch, including any deferred verification
	allocMB      float64 // Go heap delta left resident by the open
}

// coldstartResult aggregates one size notch of the coldstart figure.
type coldstartResult struct {
	rows       int
	storeBytes int64
	heap       openStats
	mmap       openStats
}

// coldstartStore saves the session to dir, measures a heap and a mapped
// open of it (wall time, resident heap delta, first-query latency), and
// verifies both reloaded sessions answer a query sample exactly like the
// session that saved them.
func coldstartStore(ctx context.Context, sess *engine.Session, c Corpus, dir string) (coldstartResult, error) {
	var res coldstartResult
	if err := sess.Save(dir, c.Peptides); err != nil {
		return res, err
	}
	err := filepath.WalkDir(dir, func(_ string, d fs.DirEntry, err error) error {
		if err != nil || d.IsDir() {
			return err
		}
		fi, err := d.Info()
		if err != nil {
			return err
		}
		res.storeBytes += fi.Size()
		return nil
	})
	if err != nil {
		return res, err
	}
	for _, rs := range sess.Stats() {
		res.rows += rs.Rows
	}

	sample := c.Queries
	if len(sample) > 32 {
		sample = sample[:32]
	}
	// Keep the figure honest: the warm sessions must answer exactly like
	// the one that saved them.
	want, err := sess.Search(ctx, sample)
	if err != nil {
		return res, err
	}
	if res.heap, err = openTimed(ctx, dir, false, sample, want.PSMs); err != nil {
		return res, err
	}
	if res.mmap, err = openTimed(ctx, dir, true, sample, want.PSMs); err != nil {
		return res, err
	}
	return res, nil
}

// openTimed measures one OpenSessionOptions mode against the store in
// dir: open wall time, the Go heap delta the open leaves resident, and
// the latency of the first query batch (for a mapped open this includes
// the deferred store verification and the page faults of first touch).
func openTimed(ctx context.Context, dir string, mapped bool, sample []spectrum.Experimental, want [][]engine.PSM) (openStats, error) {
	var st openStats
	var before, after runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&before)

	openStart := time.Now()
	loaded, _, err := engine.OpenSessionOptions(dir, engine.OpenOptions{MapStore: mapped})
	if err != nil {
		return st, err
	}
	st.openMs = float64(time.Since(openStart).Nanoseconds()) / 1e6
	defer loaded.Close()

	runtime.ReadMemStats(&after)
	if after.HeapAlloc > before.HeapAlloc {
		st.allocMB = float64(after.HeapAlloc-before.HeapAlloc) / (1 << 20)
	}
	if mapped && loaded.MappedShards() == 0 {
		// The mmap series must not silently chart the fallback path.
		return st, fmt.Errorf("bench: coldstart: mapped open fell back to heap on every shard")
	}

	qStart := time.Now()
	got, err := loaded.Search(ctx, sample)
	if err != nil {
		return st, err
	}
	st.firstQueryMs = float64(time.Since(qStart).Nanoseconds()) / 1e6
	if !reflect.DeepEqual(got.PSMs, want) {
		return st, fmt.Errorf("bench: coldstart: reloaded session PSMs differ from the saved session's (mapped=%v)", mapped)
	}
	return st, nil
}
