package bench

import (
	"context"
	"fmt"
	"time"

	"lbe/internal/core"
	"lbe/internal/engine"
	"lbe/internal/mods"
	"lbe/internal/stats"
)

// Options scales the experiments. The paper's index sizes (18M, 30M, 41M,
// 49.45M spectra) are multiplied by Scale; on a laptop-class machine the
// default 1/1000 keeps every figure under a few minutes total.
type Options struct {
	Scale     float64 // fraction of the paper's index sizes
	Ranks     int     // partitions for the load-imbalance figures (paper: 16)
	RankSweep []int   // CPU counts for the scalability figures (paper: 2..16)
	Queries   int     // query spectra per run
	Seed      uint64
	// Ctx cancels long figure runs mid-flight (lbe-bench threads a
	// signal-cancelled root); nil falls back to an uncancellable run.
	Ctx context.Context
}

// ctx returns the run's cancellation context.
func (o Options) ctx() context.Context {
	if o.Ctx != nil {
		return o.Ctx
	}
	//lbe:ignore ctxflow nil-Ctx fallback keeps zero-value Options usable in tests; lbe-bench threads a real root
	return context.Background()
}

// DefaultOptions returns the laptop-scale defaults.
func DefaultOptions() Options {
	return Options{
		Scale:     1.0 / 1000,
		Ranks:     16,
		RankSweep: []int{2, 4, 8, 16},
		Queries:   800,
		Seed:      1,
	}
}

// paperSizesM are the index sizes of the paper's evaluation, in million
// spectra.
var paperSizesM = []float64{18, 30, 41, 49.45}

// sizeRows converts a paper size notch to a row target under opts.Scale.
func (o Options) sizeRows(sizeM float64) int {
	rows := int(sizeM * 1e6 * o.Scale)
	if rows < 200 {
		rows = 200
	}
	return rows
}

// engineConfig is the shared run configuration: paper search settings with
// a reduced mod fan-out so laptop-scale corpora have realistic
// variant-per-peptide ratios.
func engineConfig() engine.Config {
	cfg := engine.DefaultConfig()
	cfg.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 2}
	cfg.TopK = 10
	return cfg
}

func modConfig() mods.Config { return engineConfig().Params.Mods }

// corpusAt builds (and caches per call site) the corpus for a size notch.
func (o Options) corpusAt(sizeM float64) (Corpus, error) {
	return SizedCorpus(o.sizeRows(sizeM), o.Queries, o.Seed, modConfig())
}

// Fig5 reproduces the memory-footprint comparison: resident index bytes of
// the shared-memory SLM index versus the distributed index (sum of partial
// indexes plus the master mapping table) for growing index size.
func Fig5(o Options) (Figure, error) {
	fig := Figure{
		ID:     "fig5",
		Title:  "Memory footprint: shared-memory vs distributed SLM index",
		XLabel: "index size (rows)",
		YLabel: "MB",
	}
	shared := Series{Label: "SLM-Transform (shared)"}
	dist := Series{Label: fmt.Sprintf("Distributed SLM (%d ranks)", o.Ranks)}
	var notes []float64
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		cfg := engineConfig()
		serial, err := engine.RunSerial(c.Peptides, nil, cfg)
		if err != nil {
			return fig, err
		}
		res, err := engine.RunInProcess(o.Ranks, c.Peptides, nil, cfg)
		if err != nil {
			return fig, err
		}
		sharedBytes := serial.Stats[0].IndexBytes
		distBytes := res.MappingBytes
		for _, s := range res.Stats {
			distBytes += s.IndexBytes
		}
		rows := float64(serial.Stats[0].Rows)
		shared.X = append(shared.X, rows)
		shared.Y = append(shared.Y, float64(sharedBytes)/(1<<20))
		dist.X = append(dist.X, rows)
		dist.Y = append(dist.Y, float64(distBytes)/(1<<20))
		notes = append(notes, 100*(float64(distBytes)/float64(sharedBytes)-1))
	}
	fig.Series = []Series{shared, dist}
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"distributed overhead per notch: %s %% (paper: ~6.4%% average at 10.5M-spectra partitions; "+
			"overhead varies inversely with partition size, so scaled-down runs sit higher — "+
			"the reproduced property is the shrinking trend)", trimFloats(notes)))
	return fig, nil
}

// Fig6 reproduces the normalized load-imbalance comparison across the
// three distribution policies for growing index size at o.Ranks
// partitions. LI is computed from deterministic per-rank work units.
func Fig6(o Options) (Figure, error) {
	fig := Figure{
		ID:     "fig6",
		Title:  fmt.Sprintf("Normalized load imbalance, %d partitions", o.Ranks),
		XLabel: "index size (rows)",
		YLabel: "LI %",
	}
	policies := []core.Policy{core.Chunk, core.Cyclic, core.Random}
	series := make([]Series, len(policies))
	for i, p := range policies {
		series[i] = Series{Label: p.String()}
	}
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		for i, policy := range policies {
			cfg := engineConfig()
			cfg.Policy = policy
			cfg.Seed = int64(o.Seed)
			res, err := engine.RunInProcess(o.Ranks, c.Peptides, c.Queries, cfg)
			if err != nil {
				return fig, err
			}
			li := stats.LoadImbalance(engine.WorkUnits(res.Stats))
			series[i].X = append(series[i].X, float64(c.Rows))
			series[i].Y = append(series[i].Y, 100*li)
		}
	}
	fig.Series = series
	fig.Notes = append(fig.Notes,
		"paper: chunk ~120%, cyclic and random <= 20%; shape criterion is chunk >> cyclic/random")
	return fig, nil
}

// scalabilityRuns performs the shared sweep behind Figs. 7-10: for each
// index size and each rank count, one cyclic-policy distributed run, plus
// one serial run per size for model calibration.
type scalabilityRun struct {
	sizeM     float64
	rows      int
	queryTime []float64 // per RankSweep entry, seconds (modeled)
	execTime  []float64
}

func (o Options) scalability() ([]scalabilityRun, error) {
	var out []scalabilityRun
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return nil, err
		}
		cfg := engineConfig()
		serial, err := engine.RunSerial(c.Peptides, c.Queries, cfg)
		if err != nil {
			return nil, err
		}
		model := Calibrate(serial)

		// The replicated serial LBE preprocessing, timed once without any
		// competing rank goroutines; this is the Amdahl serial fraction.
		serialStart := time.Now()
		grouping, err := core.Group(c.Peptides, cfg.Group)
		if err != nil {
			return nil, err
		}
		if _, err := core.PartitionClustered(grouping, o.Ranks, cfg.Policy, cfg.Seed); err != nil {
			return nil, err
		}
		serialSeconds := time.Since(serialStart).Seconds()

		run := scalabilityRun{sizeM: sizeM, rows: c.Rows}
		for _, p := range o.RankSweep {
			res, err := engine.RunInProcess(p, c.Peptides, c.Queries, cfg)
			if err != nil {
				return nil, err
			}
			run.queryTime = append(run.queryTime, model.QueryTime(res))
			run.execTime = append(run.execTime, model.ExecutionTime(res, serialSeconds))
		}
		out = append(out, run)
	}
	return out, nil
}

func (o Options) sizeLabel(sizeM float64) string {
	return fmt.Sprintf("%gM-scaled", sizeM)
}

// Fig7 reproduces query time vs number of ranks for each index size
// (cyclic policy).
func Fig7(o Options) (Figure, error) {
	runs, err := o.scalability()
	if err != nil {
		return Figure{}, err
	}
	return o.timeFigure("fig7", "Query time vs CPUs (cyclic policy)", "query time (s)", runs, false), nil
}

// Fig9 reproduces total execution time vs number of ranks.
func Fig9(o Options) (Figure, error) {
	runs, err := o.scalability()
	if err != nil {
		return Figure{}, err
	}
	return o.timeFigure("fig9", "Execution time vs CPUs (cyclic policy)", "execution time (s)", runs, true), nil
}

func (o Options) timeFigure(id, title, ylabel string, runs []scalabilityRun, exec bool) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "ranks (CPUs)", YLabel: ylabel}
	for _, run := range runs {
		s := Series{Label: o.sizeLabel(run.sizeM)}
		times := run.queryTime
		if exec {
			times = run.execTime
		}
		for i, p := range o.RankSweep {
			s.X = append(s.X, float64(p))
			s.Y = append(s.Y, times[i])
		}
		fig.Series = append(fig.Series, s)
	}
	return fig
}

// Fig8 reproduces the query-time speedup (near-linear in the paper). The
// base case follows the paper: the smallest rank count is assumed to run
// at ideal efficiency.
func Fig8(o Options) (Figure, error) {
	runs, err := o.scalability()
	if err != nil {
		return Figure{}, err
	}
	return o.speedupFigure("fig8", "Query speedup vs CPUs (cyclic policy)", runs, false), nil
}

// Fig10 reproduces the total-execution speedup, which saturates per
// Amdahl's law because grouping/partitioning are replicated serial work.
func Fig10(o Options) (Figure, error) {
	runs, err := o.scalability()
	if err != nil {
		return Figure{}, err
	}
	return o.speedupFigure("fig10", "Execution speedup vs CPUs (cyclic policy)", runs, true), nil
}

func (o Options) speedupFigure(id, title string, runs []scalabilityRun, exec bool) Figure {
	fig := Figure{ID: id, Title: title, XLabel: "ranks (CPUs)", YLabel: "speedup"}
	ideal := Series{Label: "ideal"}
	for _, p := range o.RankSweep {
		ideal.X = append(ideal.X, float64(p))
		ideal.Y = append(ideal.Y, float64(p))
	}
	fig.Series = append(fig.Series, ideal)
	for _, run := range runs {
		s := Series{Label: o.sizeLabel(run.sizeM)}
		times := run.queryTime
		if exec {
			times = run.execTime
		}
		base := times[0] * float64(o.RankSweep[0])
		for i, p := range o.RankSweep {
			s.X = append(s.X, float64(p))
			if times[i] > 0 {
				s.Y = append(s.Y, base/times[i])
			} else {
				s.Y = append(s.Y, 0)
			}
		}
		fig.Series = append(fig.Series, s)
	}
	if exec {
		fig.Notes = append(fig.Notes,
			"paper: saturating (Amdahl); serial fraction = replicated grouping/partitioning")
	} else {
		fig.Notes = append(fig.Notes, "paper: near-linear")
	}
	return fig
}

// Fig11 reproduces the CPU-time speedup of LBE partitioning over the
// conventional chunk baseline: the ratio of wasted CPU time
// Twst = N*∆Tmax (Eq. 1 and §VI) of chunk to each policy.
func Fig11(o Options) (Figure, error) {
	fig := Figure{
		ID:     "fig11",
		Title:  fmt.Sprintf("Speedup by load balance over chunk, %d partitions", o.Ranks),
		XLabel: "index size (rows)",
		YLabel: "speedup",
	}
	policies := []core.Policy{core.Chunk, core.Cyclic, core.Random}
	series := make([]Series, len(policies))
	for i, p := range policies {
		series[i] = Series{Label: p.String()}
	}
	var avg [3]float64
	for _, sizeM := range paperSizesM {
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		var wasted [3]float64
		for i, policy := range policies {
			cfg := engineConfig()
			cfg.Policy = policy
			cfg.Seed = int64(o.Seed)
			res, err := engine.RunInProcess(o.Ranks, c.Peptides, c.Queries, cfg)
			if err != nil {
				return fig, err
			}
			wasted[i] = stats.WastedCPUTime(engine.WorkUnits(res.Stats))
		}
		for i := range policies {
			sp := 0.0
			if wasted[i] > 0 {
				sp = wasted[0] / wasted[i]
			}
			series[i].X = append(series[i].X, float64(c.Rows))
			series[i].Y = append(series[i].Y, sp)
			avg[i] += sp / float64(len(paperSizesM))
		}
	}
	fig.Series = series
	fig.Notes = append(fig.Notes, fmt.Sprintf(
		"average speedup over chunk: cyclic %.1fx, random %.1fx (paper: ~8.6x and ~7.5x)",
		avg[1], avg[2]))
	return fig, nil
}

// SetupStats reproduces the in-text dataset/search statistics of §V-A
// (total cPSMs, cPSMs per query, etc.) on the largest scaled notch.
func SetupStats(o Options) (Figure, error) {
	fig := Figure{
		ID:     "setup",
		Title:  "Search statistics (paper §V-A)",
		XLabel: "metric",
		YLabel: "value",
	}
	c, err := o.corpusAt(paperSizesM[len(paperSizesM)-1])
	if err != nil {
		return fig, err
	}
	cfg := engineConfig()
	cfg.TopK = 10
	start := time.Now()
	res, err := engine.RunInProcess(o.Ranks, c.Peptides, c.Queries, cfg)
	if err != nil {
		return fig, err
	}
	wall := time.Since(start).Seconds()

	hit := 0
	for q := range c.Queries {
		for _, p := range res.PSMs[q] {
			if int(p.Peptide) == c.Truth[q].Peptide {
				hit++
				break
			}
		}
	}
	cpsms := res.CandidatePSMs()
	s := Series{Label: "measured"}
	add := func(x string, v float64) {
		s.X = append(s.X, float64(len(s.X)))
		s.Y = append(s.Y, v)
		fig.Notes = append(fig.Notes, fmt.Sprintf("%s = %s", x, trimFloat(v)))
	}
	add("peptides", float64(len(c.Peptides)))
	add("index rows (spectra)", float64(c.Rows))
	add("LBE groups", float64(res.Groups))
	add("query spectra", float64(len(c.Queries)))
	add("total cPSMs", float64(cpsms))
	add("cPSMs per query", float64(cpsms)/float64(len(c.Queries)))
	add("top-10 identification rate %", 100*float64(hit)/float64(len(c.Queries)))
	add("wall time (s)", wall)
	fig.Series = []Series{s}
	return fig, nil
}

func trimFloats(vs []float64) string {
	out := ""
	for i, v := range vs {
		if i > 0 {
			out += ", "
		}
		out += trimFloat(v)
	}
	return out
}
