package bench

import (
	"fmt"
	"time"

	"lbe/internal/core"
	"lbe/internal/engine"
	"lbe/internal/stats"
)

// AblationGrouping sweeps the Algorithm 1 design choices the paper calls
// out in §III-C — grouping criterion, d/d', group-size cap, and a
// no-grouping baseline — and reports the resulting load imbalance for the
// chunk and cyclic policies. It demonstrates which part of LBE does the
// balancing work.
func AblationGrouping(o Options) (Figure, error) {
	fig := Figure{
		ID:     "ablation-grouping",
		Title:  fmt.Sprintf("Grouping ablation: LI%% by configuration, %d partitions", o.Ranks),
		XLabel: "config #",
		YLabel: "LI %",
	}
	c, err := o.corpusAt(paperSizesM[1])
	if err != nil {
		return fig, err
	}

	type variant struct {
		name string
		raw  bool
		gcfg core.GroupConfig
	}
	variants := []variant{
		{name: "no grouping (raw order)", raw: true},
		{name: "criterion1 d=2 gsize=20", gcfg: core.GroupConfig{Criterion: core.AbsoluteEdit, D: 2, GroupSize: 20}},
		{name: "criterion2 d'=0.86 gsize=20 (paper)", gcfg: core.DefaultGroupConfig()},
		{name: "criterion2 d'=0.86 gsize=5", gcfg: core.GroupConfig{Criterion: core.NormalizedEdit, DPrime: 0.86, GroupSize: 5}},
		{name: "criterion2 d'=0.86 gsize=100", gcfg: core.GroupConfig{Criterion: core.NormalizedEdit, DPrime: 0.86, GroupSize: 100}},
		{name: "criterion2 d'=0.30 gsize=20", gcfg: core.GroupConfig{Criterion: core.NormalizedEdit, DPrime: 0.30, GroupSize: 20}},
	}
	policies := []core.Policy{core.Chunk, core.Cyclic, core.RandomWithinGroups}
	series := make([]Series, len(policies))
	for i, p := range policies {
		series[i] = Series{Label: p.String()}
	}
	for i, v := range variants {
		for pi, policy := range policies {
			cfg := engineConfig()
			cfg.Policy = policy
			cfg.RawOrder = v.raw
			if !v.raw {
				cfg.Group = v.gcfg
			}
			res, err := engine.RunInProcess(o.Ranks, c.Peptides, c.Queries, cfg)
			if err != nil {
				return fig, err
			}
			li := 100 * stats.LoadImbalance(engine.WorkUnits(res.Stats))
			series[pi].X = append(series[pi].X, float64(i))
			series[pi].Y = append(series[pi].Y, li)
		}
		fig.Notes = append(fig.Notes, fmt.Sprintf("config %d: %s", i, v.name))
	}
	fig.Notes = append(fig.Notes,
		"chunk/cyclic depend on the clustered ORDER only; group boundaries matter for the within-group policy")
	fig.Series = series
	return fig, nil
}

// AblationTransport compares the in-process transport against real TCP
// loopback links for the same distributed search, isolating the messaging
// overhead of the runtime (§IV discusses the MPI port).
func AblationTransport(o Options) (Figure, error) {
	fig := Figure{
		ID:     "ablation-transport",
		Title:  "Transport ablation: in-process vs TCP loopback",
		XLabel: "ranks",
		YLabel: "wall time (s)",
	}
	c, err := o.corpusAt(paperSizesM[0])
	if err != nil {
		return fig, err
	}
	inproc := Series{Label: "in-process"}
	tcp := Series{Label: "tcp"}
	for _, p := range []int{2, 4} {
		cfg := engineConfig()
		start := time.Now()
		if _, err := engine.RunInProcess(p, c.Peptides, c.Queries, cfg); err != nil {
			return fig, err
		}
		inproc.X = append(inproc.X, float64(p))
		inproc.Y = append(inproc.Y, time.Since(start).Seconds())

		start = time.Now()
		if _, err := engine.RunOverTCP(p, c.Peptides, c.Queries, cfg); err != nil {
			return fig, err
		}
		tcp.X = append(tcp.X, float64(p))
		tcp.Y = append(tcp.Y, time.Since(start).Seconds())
	}
	fig.Series = []Series{inproc, tcp}
	fig.Notes = append(fig.Notes,
		"result correctness across transports is asserted by the engine test suite")
	return fig, nil
}

// AblationHeterogeneous evaluates the §VIII load-predicting model on a
// simulated heterogeneous cluster: the first machine is 4x and the second
// 2x the speed of the rest. Modeled per-rank time is work/speed; the
// weighted partitioner should restore balance that uniform partitioning
// cannot provide.
func AblationHeterogeneous(o Options) (Figure, error) {
	fig := Figure{
		ID:     "ablation-heterogeneous",
		Title:  fmt.Sprintf("Heterogeneous cluster (speeds 4,2,1,...): modeled LI%%, %d partitions", o.Ranks),
		XLabel: "index size (rows)",
		YLabel: "LI %",
	}
	speeds := make([]float64, o.Ranks)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[0] = 4
	if o.Ranks > 1 {
		speeds[1] = 2
	}

	uniform := Series{Label: "uniform partition"}
	weighted := Series{Label: "speed-weighted partition"}
	for _, sizeM := range paperSizesM[:2] { // two notches keep it quick
		c, err := o.corpusAt(sizeM)
		if err != nil {
			return fig, err
		}
		for _, useWeights := range []bool{false, true} {
			cfg := engineConfig()
			cfg.Policy = core.Cyclic
			if useWeights {
				cfg.Weights = speeds
			}
			res, err := engine.RunInProcess(o.Ranks, c.Peptides, c.Queries, cfg)
			if err != nil {
				return fig, err
			}
			wu := engine.WorkUnits(res.Stats)
			times := make([]float64, len(wu))
			for i := range wu {
				times[i] = wu[i] / speeds[i]
			}
			li := 100 * stats.LoadImbalance(times)
			if useWeights {
				weighted.X = append(weighted.X, float64(c.Rows))
				weighted.Y = append(weighted.Y, li)
			} else {
				uniform.X = append(uniform.X, float64(c.Rows))
				uniform.Y = append(uniform.Y, li)
			}
		}
	}
	fig.Series = []Series{uniform, weighted}
	fig.Notes = append(fig.Notes,
		"future-work feature (§VIII): peptide shares proportional to machine speed")
	return fig, nil
}

// All runs every experiment and returns the figures in paper order.
func All(o Options) ([]Figure, error) {
	type runner struct {
		name string
		fn   func(Options) (Figure, error)
	}
	runners := []runner{
		{"setup", SetupStats},
		{"fig5", Fig5},
		{"fig6", Fig6},
		{"fig7", Fig7},
		{"fig8", Fig8},
		{"fig9", Fig9},
		{"fig10", Fig10},
		{"fig11", Fig11},
		{"ablation-grouping", AblationGrouping},
		{"ablation-transport", AblationTransport},
		{"ablation-heterogeneous", AblationHeterogeneous},
		{"filtration", FiltrationComparison},
		{"kernel", Kernel},
		{"session", SessionThroughput},
		{"serve", ServeThroughput},
		{"coldstart", ColdStart},
		{"steal", Steal},
		{"route", Route},
		{"cache", CacheHit},
		{"scatter", Scatter},
	}
	var figs []Figure
	for _, r := range runners {
		f, err := r.fn(o)
		if err != nil {
			return figs, fmt.Errorf("bench: %s: %w", r.name, err)
		}
		figs = append(figs, f)
	}
	return figs, nil
}
