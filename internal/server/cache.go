package server

import (
	"context"
	"encoding/json"
	"fmt"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/qcache"
	"lbe/internal/spectrum"
)

// The answer cache sits in front of the coalescer: per-spectrum PSM
// lists keyed on (canonical spectrum content × store digest × search
// knobs). Caching engine results rather than rendered responses lets a
// multi-spectrum request hit entry-by-entry — and since every /search
// reply is rendered through api.BuildSearchResponse from those PSMs, a
// cached answer is byte-identical to an uncached one by construction
// (scan numbers are echoed from the request, never from the cache).

// psmsSize approximates one cached PSM list's resident bytes: slice
// header + backing array of ~40-byte engine.PSM values.
func psmsSize(ps []engine.PSM) int { return 64 + 40*len(ps) }

// cacheKeyer binds every cache key to the session's serving context.
// The store digest covers the database; the knobs are rendered
// explicitly because a warm-started session's digest is its store
// manifest hash, which does not re-state the serve-time search shape.
func cacheKeyer(sess *engine.Session) qcache.Keyer {
	cfg := sess.Config()
	params, err := json.Marshal(cfg.Params)
	if err != nil {
		// slm.Params is plain data; Marshal cannot fail on it.
		params = []byte(fmt.Sprintf("%+v", cfg.Params))
	}
	return qcache.NewKeyer(
		sess.Digest(),
		fmt.Sprintf("topk=%d", cfg.TopK),
		fmt.Sprintf("policy=%v", cfg.Policy),
		"params="+string(params),
	)
}

// searchViaQueue submits one query slice through the bounded queue and
// coalescer and waits for its slice of a merged batch. The error is
// ErrDraining, ErrQueueFull, a context error, or the engine's.
func (s *Server) searchViaQueue(ctx context.Context, qs []spectrum.Experimental) ([][]engine.PSM, error) {
	rq := &request{ctx: ctx, queries: qs, resp: make(chan response, 1)}
	if err := s.submit(rq); err != nil {
		return nil, err
	}
	select {
	case resp := <-rq.resp:
		return resp.psms, resp.err
	case <-ctx.Done():
		// The dispatcher still answers rq.resp (buffered) and settles
		// the accounting; nobody blocks on this abandonment.
		return nil, ctx.Err()
	}
}

// search answers one request's queries, through the cache when enabled.
func (s *Server) search(ctx context.Context, qs []spectrum.Experimental) ([][]engine.PSM, error) {
	if s.cache == nil {
		return s.searchViaQueue(ctx, qs)
	}
	return s.searchCached(ctx, qs)
}

// searchCached resolves each query against the cache, collapses
// duplicates onto in-flight computations, and sends only the residual
// misses through the coalescer.
//
// Cancellation safety: a leader whose engine search fails (including by
// cancellation) aborts its flights, so nothing poisons an entry and
// waiters wake to retry; a waiter abandoning its wait touches nothing.
func (s *Server) searchCached(ctx context.Context, qs []spectrum.Experimental) ([][]engine.PSM, error) {
	out := make([][]engine.PSM, len(qs))
	keys := make([]string, len(qs))
	pending := make([]int, len(qs))
	for i, q := range qs {
		keys[i] = s.keyer.Spectrum(q)
		pending[i] = i
	}

	for len(pending) > 0 {
		var leaders, waiters []int
		var leadF, waitF []*qcache.Flight[[]engine.PSM]
		for _, i := range pending {
			v, f, o := s.cache.Acquire(keys[i])
			switch o {
			case qcache.Hit:
				out[i] = v
			case qcache.Lead:
				leaders = append(leaders, i)
				leadF = append(leadF, f)
			default: // qcache.Wait — possibly on this request's own leader
				waiters = append(waiters, i)
				waitF = append(waitF, f)
			}
		}

		if len(leaders) > 0 {
			sub := make([]spectrum.Experimental, len(leaders))
			for j, i := range leaders {
				sub[j] = qs[i]
			}
			res, err := s.searchViaQueue(ctx, sub)
			if err != nil {
				for _, f := range leadF {
					f.Abort()
				}
				return nil, err
			}
			for j, i := range leaders {
				out[i] = res[j]
				leadF[j].Complete(res[j])
			}
		}

		pending = pending[:0]
		for j, i := range waiters {
			select {
			case <-waitF[j].Done():
				if v, ok := waitF[j].Result(); ok {
					out[i] = v
				} else {
					pending = append(pending, i) // leader aborted; retry
				}
			case <-ctx.Done():
				return nil, ctx.Err()
			}
		}
	}
	return out, nil
}

// cacheStats snapshots the cache block for /stats, or nil when caching
// is disabled.
func (s *Server) cacheStats() *api.CacheStatsJSON {
	if s.cache == nil {
		return nil
	}
	cs := s.cache.Stats()
	return &api.CacheStatsJSON{
		Hits:          cs.Hits,
		Misses:        cs.Misses,
		Evictions:     cs.Evictions,
		Collapsed:     cs.Collapsed,
		Invalidated:   cs.Invalidated,
		Entries:       cs.Entries,
		ResidentBytes: cs.Bytes,
		CapacityBytes: cs.MaxBytes,
	}
}
