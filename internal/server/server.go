// Package server exposes a built engine.Session as a long-running HTTP
// search service: the always-on serving shape the ROADMAP's north star
// asks for, on top of the streaming engine from PR 1.
//
// The service admits POST /search requests (JSON spectra) through a
// bounded queue, coalesces concurrent small requests into merged engine
// batches — many tiny messages become few large ones, the
// communication-lower-bound guidance of the HiCOPS line of work — and
// scatters each merged result back to its callers. Results are exactly
// what Session.Search would return for the same queries, because the
// engine's output is invariant to batch composition.
//
// Operational endpoints: /healthz (liveness, flips to 503 while
// draining, and carries the session's store digest for the router's
// consistency gate), /stats (session-lifetime engine figures plus
// admission and coalescing counters) and /metrics (the same figures in
// Prometheus text form). Shutdown stops admission, flushes the queue,
// finishes in-flight batches, and answers every accepted request before
// returning.
//
// The JSON wire contract is defined once in internal/api and shared with
// lbe-router, cmd/lbe-client and the bench load generators.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/qcache"
	"lbe/internal/spectrum"
)

// Config tunes the serving layer. The zero value of any field falls back
// to its DefaultConfig value.
type Config struct {
	// BatchSize caps the queries merged into one coalesced engine batch.
	// The one exception is a single request that alone carries more than
	// BatchSize queries (bounded by MaxQueriesPerRequest): requests are
	// atomic, so it dispatches as one oversized batch of its own.
	BatchSize int
	// FlushInterval bounds how long a partial batch waits for company
	// before it is searched anyway; it is the latency the slowest request
	// in a quiet period pays for batching.
	FlushInterval time.Duration
	// QueueDepth bounds the admission queue (in requests). A full queue
	// rejects with HTTP 429 — backpressure instead of unbounded memory.
	QueueDepth int
	// MaxInFlight bounds concurrently searching merged batches. When all
	// slots are busy the coalescer stalls and the queue fills.
	MaxInFlight int
	// RequestTimeout is the per-request deadline, applied on top of the
	// client's own context; 0 or negative disables it.
	RequestTimeout time.Duration
	// MaxQueriesPerRequest caps spectra in one request (HTTP 413 over).
	MaxQueriesPerRequest int
	// MaxBodyBytes caps the /search request body.
	MaxBodyBytes int64
	// CacheBytes sizes the content-addressed answer cache (in resident
	// bytes). 0 disables caching — the zero value opts out, it is not
	// defaulted.
	CacheBytes int64
	// CacheTTL expires cache entries after this duration; 0 means
	// entries live until evicted. Meaningful only with CacheBytes > 0.
	CacheTTL time.Duration
}

// DefaultConfig returns serving defaults: 64-query merges flushed every
// 2ms, a 256-request queue, 4 concurrent batches, 30s request deadline.
func DefaultConfig() Config {
	return Config{
		BatchSize:            64,
		FlushInterval:        2 * time.Millisecond,
		QueueDepth:           256,
		MaxInFlight:          4,
		RequestTimeout:       30 * time.Second,
		MaxQueriesPerRequest: 1024,
		MaxBodyBytes:         32 << 20,
	}
}

// withDefaults fills zero fields from DefaultConfig.
func (c Config) withDefaults() Config {
	d := DefaultConfig()
	if c.BatchSize <= 0 {
		c.BatchSize = d.BatchSize
	}
	if c.FlushInterval <= 0 {
		c.FlushInterval = d.FlushInterval
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = d.QueueDepth
	}
	if c.MaxInFlight <= 0 {
		c.MaxInFlight = d.MaxInFlight
	}
	if c.MaxQueriesPerRequest <= 0 {
		c.MaxQueriesPerRequest = d.MaxQueriesPerRequest
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = d.MaxBodyBytes
	}
	return c
}

// Server is the HTTP serving layer over one engine.Session. Create with
// New, mount Handler on an http.Server, and call Shutdown to drain.
type Server struct {
	cfg      Config
	sess     *engine.Session
	peptides []string // global peptide list for sequence reporting; may be nil

	queue chan *request
	sem   chan struct{} // in-flight batch slots
	quit  chan struct{} // closed once when draining starts

	baseCtx    context.Context // parent of every batch search
	cancelBase context.CancelFunc

	coalesceDone chan struct{}
	reqWG        sync.WaitGroup // accepted requests not yet answered
	batchWG      sync.WaitGroup // batch workers in flight

	mu       sync.RWMutex
	draining bool

	// searchFn runs one merged batch; it is sess.Search except in tests,
	// which substitute a controllable stand-in.
	searchFn func(context.Context, []spectrum.Experimental) (*engine.Result, error)

	// cache is the content-addressed answer cache consulted before the
	// coalescer; nil when Config.CacheBytes is 0. keyer binds its keys
	// to the session's digest and search knobs.
	cache *qcache.Cache[[]engine.PSM]
	keyer qcache.Keyer

	accepted       atomic.Int64
	rejectedQueue  atomic.Int64
	rejectedDrain  atomic.Int64
	batches        atomic.Int64
	batchedQueries atomic.Int64
}

// New wraps a built session in a serving layer and starts its collector.
// peptides is the global peptide list the session was built over, used to
// report matched sequences; pass nil to omit sequences from responses.
// The caller keeps ownership of the session but must not Close it before
// Shutdown returns.
func New(sess *engine.Session, peptides []string, cfg Config) *Server {
	cfg = cfg.withDefaults()
	//lbe:ignore ctxflow the server owns its drain lifecycle; Shutdown cancels this root, and handlers bound work via each request's context
	ctx, cancel := context.WithCancel(context.Background())
	s := &Server{
		cfg:          cfg,
		sess:         sess,
		peptides:     peptides,
		queue:        make(chan *request, cfg.QueueDepth),
		sem:          make(chan struct{}, cfg.MaxInFlight),
		quit:         make(chan struct{}),
		baseCtx:      ctx,
		cancelBase:   cancel,
		coalesceDone: make(chan struct{}),
		searchFn:     sess.Search,
	}
	if cfg.CacheBytes > 0 {
		s.cache = qcache.New[[]engine.PSM](
			qcache.Config{MaxBytes: cfg.CacheBytes, TTL: cfg.CacheTTL}, psmsSize)
		s.keyer = cacheKeyer(sess)
	}
	go s.coalesceLoop()
	return s
}

// Handler returns the service's HTTP routes: POST /search, GET /healthz,
// GET /stats, GET /metrics.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/search", s.handleSearch)
	mux.HandleFunc("/healthz", s.handleHealthz)
	mux.HandleFunc("/stats", s.handleStats)
	mux.HandleFunc("/metrics", s.handleMetrics)
	return mux
}

// Shutdown drains the server gracefully: admission stops (new requests
// get 503), queued requests are flushed into batches, in-flight batches
// finish, and every accepted request receives its answer. If ctx expires
// first, in-flight searches are cancelled and Shutdown returns ctx's
// error after they unwind. Shutdown is idempotent.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	already := s.draining
	s.draining = true
	s.mu.Unlock()
	if !already {
		close(s.quit)
	}

	done := make(chan struct{})
	go func() {
		<-s.coalesceDone
		s.batchWG.Wait()
		s.reqWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		s.cancelBase()
		<-done // searches watch baseCtx, so this unwinds promptly
		return ctx.Err()
	}
}

// Close force-drains the server: like Shutdown with an already-expired
// context, for tests and defer-style cleanup.
func (s *Server) Close() {
	s.cancelBase()
	// Deriving from the (just-cancelled) base keeps Close context-free;
	// expired is cancelled immediately anyway.
	expired, cancel := context.WithCancel(s.baseCtx)
	cancel()
	_ = s.Shutdown(expired)
}

// isDraining reports whether Shutdown has begun.
func (s *Server) isDraining() bool {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return s.draining
}

// handleSearch decodes one search request, admits it through the bounded
// queue, and waits for its slice of a merged batch.
func (s *Server) handleSearch(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		api.WriteError(w, http.StatusMethodNotAllowed, "POST a SearchRequest JSON body")
		return
	}
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req api.SearchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		api.WriteError(w, http.StatusBadRequest, "bad request body: %v", err)
		return
	}
	if len(req.Spectra) == 0 {
		api.WriteError(w, http.StatusBadRequest, "request has no spectra")
		return
	}
	if len(req.Spectra) > s.cfg.MaxQueriesPerRequest {
		api.WriteError(w, http.StatusRequestEntityTooLarge,
			"%d spectra exceeds the per-request limit of %d", len(req.Spectra), s.cfg.MaxQueriesPerRequest)
		return
	}
	qs := make([]spectrum.Experimental, len(req.Spectra))
	for i, sj := range req.Spectra {
		e, err := sj.Experimental()
		if err != nil {
			api.WriteError(w, http.StatusBadRequest, "spectrum %d: %v", i, err)
			return
		}
		qs[i] = e
	}

	ctx := r.Context()
	if s.cfg.RequestTimeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, s.cfg.RequestTimeout)
		defer cancel()
	}
	psms, err := s.search(ctx, qs)
	switch {
	case err == nil:
		api.WriteJSON(w, http.StatusOK, api.BuildSearchResponse(qs, psms, s.peptides))
	case errors.Is(err, ErrDraining):
		api.WriteError(w, http.StatusServiceUnavailable, "server is draining")
	case errors.Is(err, ErrQueueFull):
		w.Header().Set("Retry-After", "1")
		api.WriteError(w, http.StatusTooManyRequests, "admission queue full, retry later")
	case errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded):
		// Client gone or per-request deadline hit while queued/searching.
		api.WriteError(w, http.StatusGatewayTimeout, "request cancelled or deadline exceeded")
	default:
		api.WriteError(w, http.StatusInternalServerError, "search failed: %v", err)
	}
}

// shardSetJSON announces the session's shard-set slice on the wire, nil
// for a whole-store session. TopK rides along so a scatter router can
// truncate its merged union to the session's reporting depth.
func (s *Server) shardSetJSON() *api.ShardSetJSON {
	info := s.sess.ShardSet()
	if info == nil {
		return nil
	}
	return &api.ShardSetJSON{
		Set:         info.Set,
		Sets:        info.Sets,
		TotalShards: info.TotalShards,
		TopK:        s.sess.Config().TopK,
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	h := api.HealthResponse{
		Status:   "ok",
		Shards:   s.sess.NumShards(),
		Groups:   s.sess.Groups(),
		Digest:   s.sess.Digest(),
		ShardSet: s.shardSetJSON(),
	}
	if s.isDraining() {
		h.Status = "draining"
		api.WriteJSON(w, http.StatusServiceUnavailable, h)
		return
	}
	api.WriteJSON(w, http.StatusOK, h)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	api.WriteJSON(w, http.StatusOK, s.Stats())
}

// handleMetrics renders the /stats figures in the Prometheus text
// exposition format — same numbers, scrapable surface.
func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	st := s.Stats()
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	_, _ = w.Write(api.FormatMetrics(&st))
}

// Stats snapshots the serving counters and session-lifetime load.
func (s *Server) Stats() api.StatsResponse {
	st := api.StatsResponse{
		Status:         "ok",
		Digest:         s.sess.Digest(),
		ShardSet:       s.shardSetJSON(),
		Shards:         s.sess.NumShards(),
		Groups:         s.sess.Groups(),
		IndexBytes:     s.sess.IndexBytes(),
		MappingBytes:   s.sess.MappingBytes(),
		Searched:       s.sess.Searched(),
		SessionBatches: s.sess.Batches(),
		Accepted:       s.accepted.Load(),
		RejectedQueue:  s.rejectedQueue.Load(),
		RejectedDrain:  s.rejectedDrain.Load(),
		Batches:        s.batches.Load(),
		BatchedQueries: s.batchedQueries.Load(),
		QueueLen:       len(s.queue),
		QueueDepth:     s.cfg.QueueDepth,
		InFlight:       len(s.sem),
		BatchSize:      s.cfg.BatchSize,
		FlushMicros:    s.cfg.FlushInterval.Microseconds(),
		MaxInFlight:    s.cfg.MaxInFlight,
	}
	if s.isDraining() {
		st.Status = "draining"
	}
	st.Cache = s.cacheStats()
	for _, rs := range s.sess.Stats() {
		st.PrunedPostings += rs.Work.Pruned
		st.PerShard = append(st.PerShard, api.ShardStatsJSON{
			Rank:           rs.Rank,
			Peptides:       rs.Peptides,
			Rows:           rs.Rows,
			IndexBytes:     rs.IndexBytes,
			WorkUnits:      rs.Work.IonHits + rs.Work.Scored,
			PrunedPostings: rs.Work.Pruned,
			QueryMillis:    float64(rs.QueryNanos) / 1e6,
		})
	}
	ss := s.sess.SchedulerStats()
	st.Scheduler = api.SchedulerStatsJSON{
		Stealing:  ss.Stealing,
		ChunkSize: ss.ChunkSize,
		Batches:   ss.Batches,
		Chunks:    ss.Chunks,
		Steals:    ss.Steals,
		Stolen:    ss.Stolen,
	}
	for _, w := range ss.Workers {
		st.Scheduler.PerWorker = append(st.Scheduler.PerWorker, api.WorkerStatsJSON{
			Worker:         w.Worker,
			Chunks:         w.Chunks,
			Stolen:         w.Stolen,
			Steals:         w.Steals,
			WorkUnits:      w.Work.IonHits + w.Work.Scored,
			PrunedPostings: w.Work.Pruned,
			BusyMillis:     float64(w.Nanos) / 1e6,
		})
	}
	return st
}
