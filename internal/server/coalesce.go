package server

import (
	"context"
	"errors"
	"sync/atomic"
	"time"

	"lbe/internal/engine"
	"lbe/internal/spectrum"
)

// Admission errors mapped to HTTP statuses by the /search handler.
var (
	// ErrQueueFull means the bounded admission queue is at capacity and
	// the request was rejected with backpressure (HTTP 429).
	ErrQueueFull = errors.New("server: admission queue full")
	// ErrDraining means the server is shutting down and no longer admits
	// new requests (HTTP 503).
	ErrDraining = errors.New("server: draining")
)

// request is one admitted /search call waiting for its slice of a merged
// batch.
type request struct {
	ctx     context.Context
	queries []spectrum.Experimental
	// resp is buffered (capacity 1) and receives exactly one response, so
	// the dispatcher never blocks on an abandoned request.
	resp chan response
}

type response struct {
	psms [][]engine.PSM
	err  error
}

// submit places a request on the admission queue, failing fast when the
// server is draining or the queue is full. The read lock is held across
// the send so Shutdown can establish "no more enqueues" by taking the
// write lock after flipping draining.
func (s *Server) submit(r *request) error {
	s.mu.RLock()
	defer s.mu.RUnlock()
	if s.draining {
		s.rejectedDrain.Add(1)
		return ErrDraining
	}
	// The WaitGroup must be incremented before the request is visible on
	// the queue: the coalescer may dequeue and answer it (Done) at any
	// moment after the send.
	s.reqWG.Add(1)
	select {
	case s.queue <- r:
		s.accepted.Add(1)
		return nil
	default:
		s.reqWG.Done()
		s.rejectedQueue.Add(1)
		return ErrQueueFull
	}
}

// coalesceLoop is the server's single collector goroutine: it gathers
// admitted requests until their query total reaches BatchSize or a
// partial collection ages past FlushInterval, then hands the collection
// to dispatch, which packs it into merged batches of at most BatchSize
// queries each (a single request bigger than BatchSize is the one
// documented exception — see packRequests) and runs every batch on a
// bounded pool of search workers. Acquiring an in-flight slot happens
// there, synchronously — when every worker is busy the collector stalls,
// the admission queue fills, and new requests get 429s. That is the
// backpressure path.
func (s *Server) coalesceLoop() {
	defer close(s.coalesceDone)
	for {
		var first *request
		select {
		case first = <-s.queue:
		case <-s.quit:
			s.drainRemaining()
			return
		}
		pending := []*request{first}
		total := len(first.queries)
		timer := time.NewTimer(s.cfg.FlushInterval)
	collect:
		for total < s.cfg.BatchSize {
			select {
			case r := <-s.queue:
				pending = append(pending, r)
				total += len(r.queries)
			case <-timer.C:
				break collect
			case <-s.quit:
				break collect
			}
		}
		timer.Stop()
		s.dispatch(pending)
	}
}

// drainRemaining flushes everything left on the queue after Shutdown
// closed admission. The queue's contents are fixed at this point (submit
// cannot run once draining is set), so non-blocking receives see it all.
func (s *Server) drainRemaining() {
	var pending []*request
	total := 0
	for {
		select {
		case r := <-s.queue:
			pending = append(pending, r)
			total += len(r.queries)
			if total >= s.cfg.BatchSize {
				s.dispatch(pending)
				pending, total = nil, 0
			}
		default:
			if len(pending) > 0 {
				s.dispatch(pending)
			}
			return
		}
	}
}

// dispatch answers already-dead requests without searching, packs the
// live ones into merged batches of at most BatchSize queries, and runs
// each batch on a search worker. Called only from the coalescer
// goroutine.
func (s *Server) dispatch(reqs []*request) {
	live := reqs[:0]
	for _, r := range reqs {
		if err := r.ctx.Err(); err != nil {
			r.resp <- response{err: err}
			s.reqWG.Done()
			continue
		}
		live = append(live, r)
	}
	for _, group := range packRequests(live, s.cfg.BatchSize) {
		s.dispatchBatch(group)
	}
}

// packRequests splits requests, in arrival order, into dispatch groups
// whose query totals stay within max. A request is atomic — its PSMs
// come back as one contiguous slice of one engine batch — so a single
// request carrying more than max queries forms its own oversized group;
// MaxQueriesPerRequest is the admission-time cap on that case.
func packRequests(reqs []*request, max int) [][]*request {
	var groups [][]*request
	var cur []*request
	total := 0
	for _, r := range reqs {
		if len(cur) > 0 && total+len(r.queries) > max {
			groups = append(groups, cur)
			cur, total = nil, 0
		}
		cur = append(cur, r)
		total += len(r.queries)
	}
	if len(cur) > 0 {
		groups = append(groups, cur)
	}
	return groups
}

// dispatchBatch merges one packed group and runs it on a search worker.
func (s *Server) dispatchBatch(live []*request) {
	if len(live) == 0 {
		return
	}
	// Blocking slot acquisition: see coalesceLoop.
	select {
	case s.sem <- struct{}{}:
	case <-s.baseCtx.Done():
		for _, r := range live {
			r.resp <- response{err: s.baseCtx.Err()}
			s.reqWG.Done()
		}
		return
	}

	total := 0
	for _, r := range live {
		total += len(r.queries)
	}
	merged := make([]spectrum.Experimental, 0, total)
	for _, r := range live {
		merged = append(merged, r.queries...)
	}
	s.batches.Add(1)
	s.batchedQueries.Add(int64(total))

	s.batchWG.Add(1)
	go func() {
		defer s.batchWG.Done()
		defer func() { <-s.sem }()

		// The batch runs under the server's base context but is cancelled
		// early if every member request's context ends first (all clients
		// disconnected or timed out), so abandoned work stops promptly.
		bctx, bcancel := context.WithCancel(s.baseCtx)
		defer bcancel()
		remaining := new(atomic.Int64)
		remaining.Store(int64(len(live)))
		for _, r := range live {
			go func(rc context.Context) {
				select {
				case <-rc.Done():
					if remaining.Add(-1) == 0 {
						bcancel()
					}
				case <-bctx.Done():
				}
			}(r.ctx)
		}

		res, err := s.searchFn(bctx, merged)
		bcancel()

		off := 0
		for _, r := range live {
			n := len(r.queries)
			if err != nil {
				r.resp <- response{err: err}
			} else {
				r.resp <- response{psms: res.PSMs[off : off+n]}
			}
			off += n
			s.reqWG.Done()
		}
	}()
}
