package server

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"math/rand"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"lbe/internal/api"
	"lbe/internal/engine"
	"lbe/internal/spectrum"
)

// waitUntil polls cond for up to 5s.
func waitUntil(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// TestCachedServeMatchesSessionSearch replays a duplicate-heavy workload
// through a cache-enabled server with concurrent clients: every response
// — first computation, singleflight wait, or cache hit — must be
// byte-identical to the rendered Session.Search answer.
func TestCachedServeMatchesSessionSearch(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 3)
	srv := New(sess, c.peptides, Config{
		BatchSize: 8, FlushInterval: 2 * time.Millisecond, CacheBytes: 8 << 20,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	pool := c.queries[:16]
	ref, err := sess.Search(context.Background(), pool)
	if err != nil {
		t.Fatal(err)
	}
	want := make([][]byte, len(pool))
	for i := range pool {
		w, err := json.Marshal(api.BuildSearchResponse(pool[i:i+1], ref.PSMs[i:i+1], c.peptides))
		if err != nil {
			t.Fatal(err)
		}
		want[i] = bytes.TrimSpace(w)
	}

	// Each pool query replayed several times, shuffled, all in flight at
	// once — plenty of duplicates to hit both the collapse and hit paths.
	rng := rand.New(rand.NewSource(41))
	var order []int
	for rep := 0; rep < 3; rep++ {
		for i := range pool {
			order = append(order, i)
		}
	}
	rng.Shuffle(len(order), func(a, b int) { order[a], order[b] = order[b], order[a] })

	errs := make([]error, len(order))
	var wg sync.WaitGroup
	for j, i := range order {
		wg.Add(1)
		go func(j, i int) {
			defer wg.Done()
			resp, body := postSearch(t, ts.Client(), ts.URL, toWire(pool[i]))
			if resp.StatusCode != 200 {
				errs[j] = fmt.Errorf("replay %d (query %d): status %d: %s", j, i, resp.StatusCode, body)
				return
			}
			if !bytes.Equal(bytes.TrimSpace(body), want[i]) {
				errs[j] = fmt.Errorf("replay %d (query %d): cached serve differs from Session.Search\nserved: %s\ndirect: %s",
					j, i, body, want[i])
			}
		}(j, i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	cs := srv.Stats().Cache
	if cs == nil {
		t.Fatal("cache-enabled server reports no cache stats")
	}
	if cs.Hits+cs.Collapsed == 0 {
		t.Fatalf("duplicate-heavy replay produced no hits or collapses: %+v", cs)
	}
	if cs.Misses > int64(len(pool)) {
		t.Errorf("%d misses for a %d-query pool; duplicates recomputed", cs.Misses, len(pool))
	}
}

// TestCacheCollapsesConcurrentDuplicates parks the engine under the
// first request for a spectrum and releases it only after N duplicates
// are waiting: the engine must see the query exactly once.
func TestCacheCollapsesConcurrentDuplicates(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 2)
	srv := New(sess, c.peptides, Config{
		BatchSize: 8, FlushInterval: time.Millisecond, CacheBytes: 8 << 20,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	entered := make(chan struct{}, 16)
	var engineQueries atomic.Int64
	srv.searchFn = func(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
		engineQueries.Add(int64(len(qs)))
		entered <- struct{}{}
		<-gate
		return sess.Search(ctx, qs)
	}

	const dup = 6
	results := make(chan []byte, dup)
	errs := make(chan error, dup)
	post := func() {
		resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
		if resp.StatusCode != 200 {
			errs <- fmt.Errorf("status %d: %s", resp.StatusCode, body)
			return
		}
		results <- body
	}
	go post()
	<-entered // the leader's batch is parked in the engine
	for i := 1; i < dup; i++ {
		go post()
	}
	waitUntil(t, "duplicates to collapse", func() bool {
		return srv.Stats().Cache.Collapsed == dup-1
	})
	close(gate)

	var first []byte
	for i := 0; i < dup; i++ {
		select {
		case err := <-errs:
			t.Fatal(err)
		case body := <-results:
			if first == nil {
				first = body
			} else if !bytes.Equal(first, body) {
				t.Fatal("collapsed duplicates received different responses")
			}
		case <-time.After(5 * time.Second):
			t.Fatal("timed out waiting for responses")
		}
	}
	if n := engineQueries.Load(); n != 1 {
		t.Fatalf("engine saw %d queries for %d duplicate requests, want 1", n, dup)
	}
}

// TestCacheAbortedLeaderDoesNotPoison fails the first computation of a
// key while a duplicate waits: the waiter must retry and succeed, the
// failure must not be cached, and a later request must hit the good
// entry.
func TestCacheAbortedLeaderDoesNotPoison(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 2)
	srv := New(sess, c.peptides, Config{
		BatchSize: 8, FlushInterval: time.Millisecond, CacheBytes: 8 << 20,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	gate := make(chan struct{})
	var calls atomic.Int64
	srv.searchFn = func(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
		if calls.Add(1) == 1 {
			<-gate
			return nil, errors.New("injected engine failure")
		}
		return sess.Search(ctx, qs)
	}

	leaderDone := make(chan string, 1)
	go func() {
		resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
		leaderDone <- fmt.Sprintf("%d %s", resp.StatusCode, body)
	}()
	waitUntil(t, "leader to reach the engine", func() bool { return calls.Load() == 1 })

	waiterDone := make(chan error, 1)
	var waiterBody []byte
	go func() {
		resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
		if resp.StatusCode != 200 {
			waiterDone <- fmt.Errorf("waiter after aborted leader: status %d: %s", resp.StatusCode, body)
			return
		}
		waiterBody = body
		waiterDone <- nil
	}()
	waitUntil(t, "waiter to collapse onto the flight", func() bool {
		return srv.Stats().Cache.Collapsed == 1
	})
	close(gate)

	if got := <-leaderDone; !strings.Contains(got, "500") || !strings.Contains(got, "injected engine failure") {
		t.Fatalf("leader reply = %s, want the injected 500", got)
	}
	if err := <-waiterDone; err != nil {
		t.Fatal(err)
	}

	// The retry's answer — not the failure — is what got cached.
	resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
	if resp.StatusCode != 200 {
		t.Fatalf("post-retry request: status %d: %s", resp.StatusCode, body)
	}
	if !bytes.Equal(body, waiterBody) {
		t.Fatal("cached entry differs from the successful retry's response")
	}
	cs := srv.Stats().Cache
	if cs.Hits == 0 || cs.Entries != 1 {
		t.Fatalf("expected one clean cached entry serving hits, got %+v", cs)
	}
	if n := calls.Load(); n != 2 {
		t.Fatalf("engine called %d times, want 2 (failed leader + waiter retry)", n)
	}
}

// TestCacheStatsAndMetricsSurface checks the counter block on /stats and
// /metrics, and its absence when caching is disabled.
func TestCacheStatsAndMetricsSurface(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 2)
	srv := New(sess, c.peptides, Config{
		BatchSize: 8, FlushInterval: time.Millisecond, CacheBytes: 4 << 20,
	})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	for i := 0; i < 2; i++ { // miss then hit
		if resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0])); resp.StatusCode != 200 {
			t.Fatalf("request %d: status %d: %s", i, resp.StatusCode, body)
		}
	}

	httpGet := func(path string) []byte {
		res, err := ts.Client().Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		defer res.Body.Close()
		var buf bytes.Buffer
		if _, err := buf.ReadFrom(res.Body); err != nil {
			t.Fatal(err)
		}
		return buf.Bytes()
	}

	var st api.StatsResponse
	if err := json.Unmarshal(httpGet("/stats"), &st); err != nil {
		t.Fatal(err)
	}
	if st.Cache == nil {
		t.Fatal("/stats has no cache block on a cache-enabled server")
	}
	if st.Cache.Hits != 1 || st.Cache.Misses != 1 || st.Cache.Entries != 1 {
		t.Fatalf("cache block %+v, want 1 hit / 1 miss / 1 entry", st.Cache)
	}
	if st.Cache.ResidentBytes <= 0 || st.Cache.CapacityBytes != 4<<20 {
		t.Fatalf("cache gauges %+v", st.Cache)
	}

	metrics := string(httpGet("/metrics"))
	for _, want := range []string{
		"lbe_cache_hits_total 1", "lbe_cache_misses_total 1",
		"lbe_cache_evictions_total", "lbe_cache_singleflight_collapsed_total",
		"lbe_cache_invalidated_total", "lbe_cache_entries 1",
		"lbe_cache_resident_bytes", "lbe_cache_capacity_bytes",
	} {
		if !strings.Contains(metrics, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	// Disabled cache: no block, no metric names.
	off := New(sess, c.peptides, Config{BatchSize: 8, FlushInterval: time.Millisecond})
	defer off.Close()
	if off.Stats().Cache != nil {
		t.Fatal("cache-disabled server reports cache stats")
	}
	if strings.Contains(string(api.FormatMetrics(&api.StatsResponse{})), "lbe_cache_") {
		t.Fatal("cache metrics rendered without a cache block")
	}
}
