package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"lbe/internal/api"
	"lbe/internal/digest"
	"lbe/internal/engine"
	"lbe/internal/gen"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// testCorpus generates a small peptide database and query run, shared by
// every test through sync.Once (construction is the expensive part).
type corpus struct {
	peptides []string
	queries  []spectrum.Experimental
}

var (
	corpusOnce sync.Once
	corpusVal  corpus
	corpusErr  error
)

func testCorpus(t *testing.T) corpus {
	t.Helper()
	corpusOnce.Do(func() {
		recs, err := gen.Proteome(gen.ProteomeConfig{
			Seed: 11, NumFamilies: 10, Homologs: 3, MeanLen: 300, MutationRate: 0.03,
		})
		if err != nil {
			corpusErr = err
			return
		}
		seqs := make([]string, len(recs))
		for i, r := range recs {
			seqs[i] = r.Sequence
		}
		peps, err := digest.DefaultConfig().Proteome(seqs)
		if err != nil {
			corpusErr = err
			return
		}
		peptides := digest.Sequences(digest.Dedup(peps))

		scfg := gen.DefaultSpectraConfig()
		scfg.Seed = 12
		scfg.NumSpectra = 48
		scfg.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
		queries, _, err := gen.Spectra(peptides, scfg)
		if err != nil {
			corpusErr = err
			return
		}
		corpusVal = corpus{peptides: peptides, queries: queries}
	})
	if corpusErr != nil {
		t.Fatal(corpusErr)
	}
	return corpusVal
}

func testSession(t *testing.T, c corpus, shards int) *engine.Session {
	t.Helper()
	cfg := engine.DefaultSessionConfig()
	cfg.Params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	cfg.TopK = 5
	cfg.Shards = shards
	sess, err := engine.NewSession(c.peptides, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(sess.Close)
	return sess
}

// toWire converts an engine query to its JSON request form.
func toWire(e spectrum.Experimental) api.SpectrumJSON {
	return api.FromExperimental(e)
}

func postSearch(t *testing.T, client *http.Client, url string, spectra ...api.SpectrumJSON) (*http.Response, []byte) {
	t.Helper()
	body, err := json.Marshal(api.SearchRequest{Spectra: spectra})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url+"/search", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp, b
}

// TestConcurrentServeMatchesSessionSearch is the acceptance-criterion
// test: N concurrent single-query clients receive, query for query, PSMs
// byte-equivalent (as rendered JSON) to one Session.Search over the same
// queries.
func TestConcurrentServeMatchesSessionSearch(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 3)
	srv := New(sess, c.peptides, Config{BatchSize: 8, FlushInterval: 20 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ref, err := sess.Search(context.Background(), c.queries)
	if err != nil {
		t.Fatal(err)
	}

	got := make([][]byte, len(c.queries))
	var wg sync.WaitGroup
	errs := make([]error, len(c.queries))
	for i := range c.queries {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			body, err := json.Marshal(api.SearchRequest{Spectra: []api.SpectrumJSON{toWire(c.queries[i])}})
			if err != nil {
				errs[i] = err
				return
			}
			resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
			if err != nil {
				errs[i] = err
				return
			}
			defer resp.Body.Close()
			b, err := io.ReadAll(resp.Body)
			if err != nil {
				errs[i] = err
				return
			}
			if resp.StatusCode != http.StatusOK {
				errs[i] = fmt.Errorf("query %d: status %d: %s", i, resp.StatusCode, b)
				return
			}
			got[i] = b
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}

	found := 0
	for i := range c.queries {
		want, err := json.Marshal(api.BuildSearchResponse(
			c.queries[i:i+1], ref.PSMs[i:i+1], c.peptides))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(bytes.TrimSpace(got[i]), bytes.TrimSpace(want)) {
			t.Fatalf("query %d: served response differs from Session.Search\nserved: %s\ndirect: %s",
				i, got[i], want)
		}
		found += len(ref.PSMs[i])
	}
	if found == 0 {
		t.Fatal("reference search matched nothing; corpus is not exercising the comparison")
	}
}

// TestCoalesceMergesConcurrentRequests asserts that concurrent small
// requests share engine batches: with a flush window much longer than
// request skew, K single-query requests must arrive in far fewer than K
// coalesced batches.
func TestCoalesceMergesConcurrentRequests(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 2)
	const k = 16
	srv := New(sess, c.peptides, Config{BatchSize: k, FlushInterval: 300 * time.Millisecond})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	var wg sync.WaitGroup
	for i := 0; i < k; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[i%len(c.queries)]))
			if resp.StatusCode != http.StatusOK {
				t.Errorf("request %d: status %d: %s", i, resp.StatusCode, body)
			}
		}(i)
	}
	wg.Wait()

	st := srv.Stats()
	if st.Accepted != k {
		t.Fatalf("accepted %d requests, want %d", st.Accepted, k)
	}
	if st.BatchedQueries != k {
		t.Fatalf("batched %d queries, want %d", st.BatchedQueries, k)
	}
	// All k requests land within the 300ms window, so they should pack
	// into very few batches; allow slack for slow-starting goroutines
	// under the race detector, but far fewer than one batch per request.
	if st.Batches >= k/2 {
		t.Fatalf("%d requests produced %d batches; coalescing is not merging", k, st.Batches)
	}
	// The engine-side hook agrees: each coalesced batch of <= BatchSize
	// queries is one session pipeline batch.
	if sb := sess.Batches(); sb != st.Batches {
		t.Fatalf("session saw %d batches, server dispatched %d", sb, st.Batches)
	}
}

// TestDispatchedBatchesRespectCap is the regression test for the
// coalescer overshoot bug: requests used to be appended whole after a
// "total < BatchSize" check, so one request near MaxQueriesPerRequest
// blew far past the cap. Every dispatched batch must now hold at most
// BatchSize queries — except a single request that alone exceeds the
// cap, which must dispatch as exactly one batch of its own.
func TestDispatchedBatchesRespectCap(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	const maxBatch = 8
	srv := New(sess, c.peptides, Config{
		BatchSize:     maxBatch,
		FlushInterval: 200 * time.Millisecond,
		MaxInFlight:   2,
	})
	defer srv.Close()

	var mu sync.Mutex
	var sizes []int
	inner := sess.Search
	srv.searchFn = func(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
		mu.Lock()
		sizes = append(sizes, len(qs))
		mu.Unlock()
		return inner(ctx, qs)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	wire := func(n int) []api.SpectrumJSON {
		out := make([]api.SpectrumJSON, n)
		for i := range out {
			out[i] = toWire(c.queries[i%len(c.queries)])
		}
		return out
	}

	// Concurrent small requests: 3+3+3+5+2+7+1 = 24 queries. However they
	// interleave within the flush window, no dispatched batch may exceed
	// the cap.
	var wg sync.WaitGroup
	for _, n := range []int{3, 3, 3, 5, 2, 7, 1} {
		wg.Add(1)
		go func(n int) {
			defer wg.Done()
			resp, body := postSearch(t, ts.Client(), ts.URL, wire(n)...)
			if resp.StatusCode != http.StatusOK {
				t.Errorf("%d-query request: status %d: %s", n, resp.StatusCode, body)
			}
		}(n)
	}
	wg.Wait()

	mu.Lock()
	small := append([]int(nil), sizes...)
	sizes = sizes[:0]
	mu.Unlock()
	if len(small) == 0 {
		t.Fatal("no batches dispatched")
	}
	for _, n := range small {
		if n > maxBatch {
			t.Errorf("dispatched a %d-query batch; cap is %d (all: %v)", n, maxBatch, small)
		}
	}

	// One oversized request must dispatch alone as a single batch.
	resp, body := postSearch(t, ts.Client(), ts.URL, wire(maxBatch+13)...)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("oversized request: status %d: %s", resp.StatusCode, body)
	}
	mu.Lock()
	over := append([]int(nil), sizes...)
	mu.Unlock()
	if len(over) != 1 || over[0] != maxBatch+13 {
		t.Errorf("oversized request dispatched as %v, want one batch of %d", over, maxBatch+13)
	}
}

// blockingSearch substitutes the engine search with one that parks until
// released (or its context ends), so tests can hold batches in flight.
type blockingSearch struct {
	started chan struct{} // receives one value per search invocation
	release chan struct{} // close to let searches complete
	inner   func(context.Context, []spectrum.Experimental) (*engine.Result, error)
}

func newBlockingSearch(sess *engine.Session) *blockingSearch {
	return &blockingSearch{
		started: make(chan struct{}, 64),
		release: make(chan struct{}),
		inner:   sess.Search,
	}
}

func (b *blockingSearch) search(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
	b.started <- struct{}{}
	select {
	case <-b.release:
	case <-ctx.Done():
		return nil, ctx.Err()
	}
	return b.inner(ctx, qs)
}

// TestQueueFullReturns429 fills the admission path — one batch parked in
// flight, one stuck in the coalescer waiting for a slot, QueueDepth
// requests queued — and asserts the next request is rejected with 429
// and a Retry-After header.
func TestQueueFullReturns429(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	srv := New(sess, c.peptides, Config{
		BatchSize:     1,
		FlushInterval: time.Millisecond,
		QueueDepth:    2,
		MaxInFlight:   1,
	})
	defer srv.Close()
	bs := newBlockingSearch(sess)
	srv.searchFn = bs.search
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	q := toWire(c.queries[0])
	send := func() {
		go func() {
			body, _ := json.Marshal(api.SearchRequest{Spectra: []api.SpectrumJSON{q}})
			resp, err := ts.Client().Post(ts.URL+"/search", "application/json", bytes.NewReader(body))
			if err == nil {
				resp.Body.Close()
			}
		}()
	}

	// Request A reaches the worker and parks in searchFn.
	send()
	select {
	case <-bs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("first request never reached the search worker")
	}
	// Request B: collected by the coalescer, which now blocks acquiring
	// the single in-flight slot. Requests C, D: fill the depth-2 queue.
	for i := 0; i < 3; i++ {
		send()
	}
	waitFor(t, func() bool { return srv.Stats().QueueLen == 2 }, "queue never filled")

	// The next request must bounce with 429.
	resp, body := postSearch(t, ts.Client(), ts.URL, q)
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429; body %s", resp.StatusCode, body)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After header")
	}
	if st := srv.Stats(); st.RejectedQueue == 0 {
		t.Error("stats do not count the queue-full rejection")
	}

	close(bs.release) // let the parked batches finish
	waitFor(t, func() bool { return srv.Stats().QueueLen == 0 }, "queue never drained")
}

// TestShutdownDrainsInFlight asserts graceful shutdown: requests already
// accepted complete with 200s, requests arriving after Shutdown begins
// get 503, and Shutdown returns only once everything is answered.
func TestShutdownDrainsInFlight(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	srv := New(sess, c.peptides, Config{BatchSize: 4, FlushInterval: time.Millisecond})
	bs := newBlockingSearch(sess)
	srv.searchFn = bs.search
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const k = 4
	codes := make(chan int, k)
	for i := 0; i < k; i++ {
		go func(i int) {
			resp, _ := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[i]))
			codes <- resp.StatusCode
		}(i)
	}
	// Wait until at least one batch is parked in the worker and every
	// request has been admitted — a request still in its HTTP handler
	// when drain starts is correctly refused with 503, which is not what
	// this test is about.
	select {
	case <-bs.started:
	case <-time.After(5 * time.Second):
		t.Fatal("no batch reached the search worker")
	}
	waitFor(t, func() bool { return srv.Stats().Accepted == k }, "requests never all admitted")

	shutdownErr := make(chan error, 1)
	go func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		shutdownErr <- srv.Shutdown(ctx)
	}()
	waitFor(t, srv.isDraining, "server never started draining")

	// New work is refused while draining.
	resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("request during drain: status %d, want 503; body %s", resp.StatusCode, body)
	}

	close(bs.release)
	if err := <-shutdownErr; err != nil {
		t.Fatalf("graceful shutdown failed: %v", err)
	}
	for i := 0; i < k; i++ {
		if code := <-codes; code != http.StatusOK {
			t.Fatalf("in-flight request finished with %d, want 200", code)
		}
	}
}

// TestClientDisconnectCancelsBatch asserts the context plumbing: when
// every client in a merged batch disconnects, the batch's search context
// is cancelled instead of burning shard time for nobody.
func TestClientDisconnectCancelsBatch(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	srv := New(sess, c.peptides, Config{BatchSize: 1, FlushInterval: time.Millisecond})
	defer srv.Close()

	cancelled := make(chan struct{})
	srv.searchFn = func(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
		<-ctx.Done() // park until the disconnect propagates
		close(cancelled)
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(api.SearchRequest{Spectra: []api.SpectrumJSON{toWire(c.queries[0])}})
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, ts.URL+"/search", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		resp, err := ts.Client().Do(req)
		if err == nil {
			resp.Body.Close()
		}
	}()

	// Give the request time to reach the parked searchFn, then hang up.
	time.Sleep(50 * time.Millisecond)
	cancel()
	select {
	case <-cancelled:
	case <-time.After(5 * time.Second):
		t.Fatal("batch context not cancelled after client disconnect")
	}
	<-done
}

// TestRequestValidation covers the handler's rejection paths.
func TestRequestValidation(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	srv := New(sess, c.peptides, Config{MaxQueriesPerRequest: 2})
	defer srv.Close()
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get, err := ts.Client().Get(ts.URL + "/search")
	if err != nil {
		t.Fatal(err)
	}
	get.Body.Close()
	if get.StatusCode != http.StatusMethodNotAllowed {
		t.Errorf("GET /search: status %d, want 405", get.StatusCode)
	}

	resp, err := ts.Client().Post(ts.URL+"/search", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed JSON: status %d, want 400", resp.StatusCode)
	}

	resp, body := postSearch(t, ts.Client(), ts.URL)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("empty spectra: status %d, want 400; body %s", resp.StatusCode, body)
	}

	q := toWire(c.queries[0])
	resp, body = postSearch(t, ts.Client(), ts.URL, q, q, q)
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Errorf("oversized request: status %d, want 413; body %s", resp.StatusCode, body)
	}

	bad := api.SpectrumJSON{PrecursorMZ: -5, Peaks: [][2]float64{{100, 1}}}
	resp, body = postSearch(t, ts.Client(), ts.URL, bad)
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("invalid spectrum: status %d, want 400; body %s", resp.StatusCode, body)
	}
}

// TestHealthAndStatsEndpoints exercises the operational endpoints before
// and during drain.
func TestHealthAndStatsEndpoints(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 2)
	srv := New(sess, c.peptides, Config{})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, err := ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var h api.HealthResponse
	if err := json.NewDecoder(resp.Body).Decode(&h); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || h.Status != "ok" || h.Shards != 2 {
		t.Fatalf("healthz: status %d body %+v", resp.StatusCode, h)
	}
	if h.Digest == "" || h.Digest != sess.Digest() {
		t.Fatalf("healthz digest %q does not expose the session digest %q", h.Digest, sess.Digest())
	}

	q := toWire(c.queries[0])
	if r, body := postSearch(t, ts.Client(), ts.URL, q); r.StatusCode != http.StatusOK {
		t.Fatalf("search: status %d: %s", r.StatusCode, body)
	}

	resp, err = ts.Client().Get(ts.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st api.StatsResponse
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if st.Accepted != 1 || st.Searched != 1 || st.Batches != 1 {
		t.Fatalf("stats after one search: %+v", st)
	}
	if st.IndexBytes <= 0 || len(st.PerShard) != 2 {
		t.Fatalf("stats missing session figures: %+v", st)
	}
	if st.Scheduler.Batches == 0 || st.Scheduler.Chunks == 0 || len(st.Scheduler.PerWorker) == 0 {
		t.Fatalf("stats missing scheduler telemetry: %+v", st.Scheduler)
	}
	var workerUnits, shardUnits int64
	for _, w := range st.Scheduler.PerWorker {
		workerUnits += w.WorkUnits
	}
	for _, sh := range st.PerShard {
		shardUnits += sh.WorkUnits
	}
	if workerUnits != shardUnits {
		t.Fatalf("scheduler worker units %d != shard units %d", workerUnits, shardUnits)
	}
	if st.Digest != sess.Digest() || st.InFlight != 0 {
		t.Fatalf("stats digest/inflight: %q / %d", st.Digest, st.InFlight)
	}

	// /metrics renders the same figures in Prometheus text form.
	resp, err = ts.Client().Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK ||
		!strings.Contains(string(metrics), "lbe_queries_searched_total 1") ||
		!strings.Contains(string(metrics), `lbe_shard_work_units_total{shard="1"}`) {
		t.Fatalf("metrics endpoint: status %d\n%s", resp.StatusCode, metrics)
	}

	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz while drained: status %d, want 503", resp.StatusCode)
	}
}

// TestRequestTimeout asserts the per-request deadline turns a stuck
// search into a 504 for the caller.
func TestRequestTimeout(t *testing.T) {
	c := testCorpus(t)
	sess := testSession(t, c, 1)
	srv := New(sess, c.peptides, Config{
		BatchSize:      1,
		FlushInterval:  time.Millisecond,
		RequestTimeout: 50 * time.Millisecond,
	})
	defer srv.Close()
	srv.searchFn = func(ctx context.Context, qs []spectrum.Experimental) (*engine.Result, error) {
		<-ctx.Done()
		return nil, ctx.Err()
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp, body := postSearch(t, ts.Client(), ts.URL, toWire(c.queries[0]))
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("status %d, want 504; body %s", resp.StatusCode, body)
	}
}

// waitFor polls cond for up to 5s.
func waitFor(t *testing.T, cond func() bool, msg string) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatal(msg)
}
