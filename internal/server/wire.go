package server

import (
	"encoding/json"
	"fmt"
	"net/http"

	"lbe/internal/engine"
	"lbe/internal/spectrum"
)

// SearchRequest is the JSON body of POST /search: one or more query
// spectra searched as a unit. Single-spectrum requests are the expected
// serving shape; the coalescer merges concurrent ones into larger engine
// batches.
type SearchRequest struct {
	Spectra []SpectrumJSON `json:"spectra"`
}

// SpectrumJSON is one query spectrum on the wire. Peaks are [m/z,
// intensity] pairs and need not be sorted; the server sorts them.
type SpectrumJSON struct {
	Scan          int          `json:"scan,omitempty"`
	PrecursorMZ   float64      `json:"precursor_mz"`
	Charge        int          `json:"charge,omitempty"`
	RetentionTime float64      `json:"retention_time,omitempty"`
	Peaks         [][2]float64 `json:"peaks"`
}

// experimental converts the wire spectrum to the engine's query type.
func (sj SpectrumJSON) experimental() (spectrum.Experimental, error) {
	e := spectrum.Experimental{
		Scan:          sj.Scan,
		PrecursorMZ:   sj.PrecursorMZ,
		Charge:        sj.Charge,
		RetentionTime: sj.RetentionTime,
		Peaks:         make([]spectrum.Peak, len(sj.Peaks)),
	}
	for i, p := range sj.Peaks {
		e.Peaks[i] = spectrum.Peak{MZ: p[0], Intensity: p[1]}
	}
	e.SortPeaks()
	if err := e.Validate(); err != nil {
		return e, err
	}
	return e, nil
}

// SearchResponse is the JSON body of a successful /search: one entry per
// request spectrum, in request order.
type SearchResponse struct {
	Results []QueryResult `json:"results"`
}

// QueryResult holds one query's matches, best-first, TopK applied.
type QueryResult struct {
	Scan int       `json:"scan"`
	PSMs []PSMJSON `json:"psms"`
}

// PSMJSON is one peptide-to-spectrum match on the wire.
type PSMJSON struct {
	Peptide   uint32  `json:"peptide"`
	Sequence  string  `json:"sequence,omitempty"`
	Score     float64 `json:"score"`
	Shared    uint16  `json:"shared"`
	Precursor float64 `json:"precursor"`
	Shard     int     `json:"shard"`
}

// HealthResponse is the JSON body of /healthz.
type HealthResponse struct {
	Status string `json:"status"`
	Shards int    `json:"shards"`
	Groups int    `json:"groups"`
}

// ShardStatsJSON is one shard's lifetime load in /stats.
type ShardStatsJSON struct {
	Rank        int     `json:"rank"`
	Peptides    int     `json:"peptides"`
	Rows        int     `json:"rows"`
	IndexBytes  int     `json:"index_bytes"`
	WorkUnits   int64   `json:"work_units"`
	QueryMillis float64 `json:"query_ms"`
}

// WorkerStatsJSON is one scheduler worker's lifetime share in /stats.
// The spread of work_units across workers is the intra-node balance the
// work-stealing execution layer exists to flatten.
type WorkerStatsJSON struct {
	Worker     int     `json:"worker"`
	Chunks     int     `json:"chunks"`
	Stolen     int     `json:"chunks_stolen"`
	Steals     int     `json:"steals"`
	WorkUnits  int64   `json:"work_units"`
	BusyMillis float64 `json:"busy_ms"`
}

// SchedulerStatsJSON summarizes the session's work-stealing execution
// layer in /stats.
type SchedulerStatsJSON struct {
	Stealing  bool              `json:"stealing"`
	ChunkSize int               `json:"chunk_size"`
	Batches   int64             `json:"batches"`
	Chunks    int64             `json:"chunks"`
	Steals    int64             `json:"steals"`
	Stolen    int64             `json:"chunks_stolen"`
	PerWorker []WorkerStatsJSON `json:"per_worker"`
}

// StatsResponse is the JSON body of /stats: session-lifetime engine
// figures plus the server's admission and coalescing counters.
type StatsResponse struct {
	Status         string             `json:"status"`
	Shards         int                `json:"shards"`
	Groups         int                `json:"groups"`
	IndexBytes     int                `json:"index_bytes"`
	MappingBytes   int                `json:"mapping_bytes"`
	Searched       int64              `json:"searched"`
	SessionBatches int64              `json:"session_batches"`
	Accepted       int64              `json:"requests_accepted"`
	RejectedQueue  int64              `json:"requests_rejected_queue_full"`
	RejectedDrain  int64              `json:"requests_rejected_draining"`
	Batches        int64              `json:"coalesced_batches"`
	BatchedQueries int64              `json:"coalesced_queries"`
	QueueLen       int                `json:"queue_len"`
	QueueDepth     int                `json:"queue_depth"`
	BatchSize      int                `json:"batch_size"`
	FlushMicros    int64              `json:"flush_interval_us"`
	MaxInFlight    int                `json:"max_in_flight"`
	PerShard       []ShardStatsJSON   `json:"per_shard"`
	Scheduler      SchedulerStatsJSON `json:"scheduler"`
}

// errorResponse is the JSON body of every non-200 reply.
type errorResponse struct {
	Error string `json:"error"`
}

// buildResponse assembles the wire response for one request's slice of
// the merged batch. peptides may be nil, in which case sequences are
// omitted.
func buildResponse(qs []spectrum.Experimental, psms [][]engine.PSM, peptides []string) SearchResponse {
	out := SearchResponse{Results: make([]QueryResult, len(qs))}
	for q := range qs {
		qr := QueryResult{Scan: qs[q].Scan, PSMs: make([]PSMJSON, len(psms[q]))}
		for i, p := range psms[q] {
			pj := PSMJSON{
				Peptide:   p.Peptide,
				Score:     p.Score,
				Shared:    p.Shared,
				Precursor: p.Precursor,
				Shard:     p.Origin,
			}
			if int(p.Peptide) < len(peptides) {
				pj.Sequence = peptides[p.Peptide]
			}
			qr.PSMs[i] = pj
		}
		out.Results[q] = qr
	}
	return out
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	// The response was fully assembled from plain data, so encoding can
	// only fail on a dead connection; nothing useful to do then.
	_ = enc.Encode(v)
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorResponse{Error: fmt.Sprintf(format, args...)})
}
