package gen

import (
	"fmt"
	"math"

	"lbe/internal/fasta"
)

// Average amino-acid frequencies of the reviewed human proteome
// (UniProt statistics, rounded); used so synthetic tryptic digests have
// realistic K/R site densities and peptide length distributions.
var humanAAFreq = []struct {
	aa   byte
	freq float64
}{
	{'L', 0.0997}, {'S', 0.0832}, {'E', 0.0710}, {'A', 0.0702},
	{'G', 0.0657}, {'P', 0.0631}, {'V', 0.0596}, {'K', 0.0572},
	{'R', 0.0564}, {'T', 0.0535}, {'Q', 0.0477}, {'D', 0.0473},
	{'I', 0.0433}, {'F', 0.0365}, {'N', 0.0359}, {'Y', 0.0267},
	{'H', 0.0263}, {'C', 0.0230}, {'M', 0.0213}, {'W', 0.0122},
}

// ProteomeConfig controls synthetic proteome generation.
type ProteomeConfig struct {
	Seed uint64
	// NumFamilies is the number of protein families; each family is a base
	// protein plus Homologs mutated copies. Families model the homologous
	// protein groups (isoforms, paralogs) whose tryptic peptides are
	// near-duplicates — the structure LBE's clustering exploits.
	NumFamilies int
	// Homologs is the number of mutated copies per family (in addition to
	// the base protein).
	Homologs int
	// MeanLen is the mean protein length in residues (lengths are drawn
	// log-normally around it, floored at 50).
	MeanLen int
	// MutationRate is the per-residue probability that a homolog differs
	// from its family's base protein.
	MutationRate float64
}

// DefaultProteomeConfig returns a laptop-scale human-like proteome:
// 400 families with 4 homologs each (2000 proteins) of mean length 450.
func DefaultProteomeConfig() ProteomeConfig {
	return ProteomeConfig{
		Seed:         1,
		NumFamilies:  400,
		Homologs:     4,
		MeanLen:      450,
		MutationRate: 0.03,
	}
}

// Validate reports configuration errors.
func (c ProteomeConfig) Validate() error {
	if c.NumFamilies < 1 {
		return fmt.Errorf("gen: NumFamilies %d must be >= 1", c.NumFamilies)
	}
	if c.Homologs < 0 {
		return fmt.Errorf("gen: Homologs %d must be >= 0", c.Homologs)
	}
	if c.MeanLen < 50 {
		return fmt.Errorf("gen: MeanLen %d must be >= 50", c.MeanLen)
	}
	if c.MutationRate < 0 || c.MutationRate > 1 {
		return fmt.Errorf("gen: MutationRate %g must be in [0,1]", c.MutationRate)
	}
	return nil
}

// aaSampler draws residues from the human frequency table.
type aaSampler struct {
	cdf []float64
	aas []byte
}

func newAASampler() *aaSampler {
	s := &aaSampler{}
	acc := 0.0
	for _, e := range humanAAFreq {
		acc += e.freq
		s.cdf = append(s.cdf, acc)
		s.aas = append(s.aas, e.aa)
	}
	// Normalize the tail to exactly 1.
	for i := range s.cdf {
		s.cdf[i] /= acc
	}
	return s
}

func (s *aaSampler) draw(rng *RNG) byte {
	u := rng.Float64()
	lo, hi := 0, len(s.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if s.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return s.aas[lo]
}

// Proteome generates the synthetic protein database. Record headers carry
// the family and copy number ("syn|F0001.2| family 1 homolog 2").
func Proteome(cfg ProteomeConfig) ([]fasta.Record, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := NewRNG(cfg.Seed)
	sampler := newAASampler()

	var recs []fasta.Record
	for fam := 0; fam < cfg.NumFamilies; fam++ {
		// Log-normal-ish length: MeanLen * exp(0.35 * N(0,1)), floor 50.
		L := int(float64(cfg.MeanLen) * math.Exp(0.35*rng.Norm()))
		if L < 50 {
			L = 50
		}
		base := make([]byte, L)
		for i := range base {
			base[i] = sampler.draw(rng)
		}
		recs = append(recs, fasta.Record{
			Header:   fmt.Sprintf("syn|F%04d.0| family %d base", fam, fam),
			Sequence: string(base),
		})
		for h := 1; h <= cfg.Homologs; h++ {
			mut := make([]byte, L)
			copy(mut, base)
			for i := range mut {
				if rng.Float64() < cfg.MutationRate {
					mut[i] = sampler.draw(rng)
				}
			}
			recs = append(recs, fasta.Record{
				Header:   fmt.Sprintf("syn|F%04d.%d| family %d homolog %d", fam, h, fam, h),
				Sequence: string(mut),
			})
		}
	}
	return recs, nil
}
