// Package gen generates synthetic proteomics data: protein databases with
// homologous families (standing in for the UniProt human proteome) and
// MS/MS query runs with abundance skew, peak jitter, dropout and noise
// (standing in for the PRIDE PXD009072 dataset). Every generator is
// deterministic given its seed.
package gen

import "math"

// RNG is a splitmix64 pseudo-random generator: tiny, fast, and stable
// across platforms and Go releases, so synthetic datasets are reproducible
// byte-for-byte.
type RNG struct {
	state uint64
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed uint64) *RNG { return &RNG{state: seed} }

// Uint64 returns the next 64 random bits.
func (r *RNG) Uint64() uint64 {
	r.state += 0x9E3779B97F4A7C15
	z := r.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("gen: Intn with non-positive bound")
	}
	return int(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Norm returns a standard normal variate (Box-Muller, one value per call).
func (r *RNG) Norm() float64 {
	// Marsaglia polar method without caching the second value.
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s > 0 && s < 1 {
			return u * math.Sqrt(-2*math.Log(s)/s)
		}
	}
}

// Shuffle permutes xs in place (Fisher-Yates).
func Shuffle[T any](r *RNG, xs []T) {
	for i := len(xs) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		xs[i], xs[j] = xs[j], xs[i]
	}
}

// Zipf draws from a Zipf-like distribution over [0, n) with exponent s
// using inverse-CDF sampling over precomputed weights. Use NewZipf to
// amortize the table.
type Zipf struct {
	cdf []float64
	rng *RNG
}

// NewZipf builds a sampler over ranks [0, n) with P(k) ∝ 1/(k+1)^s.
func NewZipf(rng *RNG, n int, s float64) *Zipf {
	if n <= 0 {
		panic("gen: Zipf over empty domain")
	}
	cdf := make([]float64, n)
	acc := 0.0
	for k := 0; k < n; k++ {
		acc += 1 / math.Pow(float64(k+1), s)
		cdf[k] = acc
	}
	for k := range cdf {
		cdf[k] /= acc
	}
	return &Zipf{cdf: cdf, rng: rng}
}

// Next draws one rank.
func (z *Zipf) Next() int {
	u := z.rng.Float64()
	// Binary search for the first cdf >= u.
	lo, hi := 0, len(z.cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if z.cdf[mid] < u {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}
