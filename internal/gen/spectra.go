package gen

import (
	"fmt"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// SpectraConfig controls the synthetic MS/MS run sampler. It models the
// properties of a real LC-MS/MS dataset that matter to load balancing:
//
//   - abundance skew: spectra are drawn Zipf-weighted over peptides, so a
//     few peptides (from abundant proteins) produce most of the queries;
//   - imperfect fragmentation: each theoretical peak survives with
//     probability 1-Dropout and is jittered within the instrument error;
//   - chemical noise: NoisePeaks uniform random peaks are added;
//   - modifications: with ModProb a variable mod variant is sampled
//     instead of the unmodified form.
type SpectraConfig struct {
	Seed uint64
	// NumSpectra is the number of query spectra to generate.
	NumSpectra int
	// ZipfExponent shapes the abundance skew (0 = uniform; the default
	// 1.1 approximates shotgun-proteomics dynamic range).
	ZipfExponent float64
	// Dropout is the probability a theoretical peak is missing.
	Dropout float64
	// MZJitter is the standard deviation of the peak mass error (Da); it
	// should be below the search fragment tolerance.
	MZJitter float64
	// NoisePeaks is the number of uniform noise peaks added per spectrum.
	NoisePeaks int
	// ModProb is the probability the sampled spectrum comes from a
	// modified variant of the peptide.
	ModProb float64
	// Mods configures the variants available to ModProb sampling.
	Mods mods.Config
	// MaxMZ bounds noise peak m/z.
	MaxMZ float64
}

// DefaultSpectraConfig mirrors a PXD009072-like run at laptop scale.
func DefaultSpectraConfig() SpectraConfig {
	return SpectraConfig{
		Seed:         2,
		NumSpectra:   2000,
		ZipfExponent: 1.1,
		Dropout:      0.2,
		MZJitter:     0.01,
		NoisePeaks:   10,
		ModProb:      0.3,
		Mods:         mods.DefaultConfig(),
		MaxMZ:        2000,
	}
}

// Validate reports configuration errors.
func (c SpectraConfig) Validate() error {
	if c.NumSpectra < 0 {
		return fmt.Errorf("gen: NumSpectra %d must be >= 0", c.NumSpectra)
	}
	if c.Dropout < 0 || c.Dropout >= 1 {
		return fmt.Errorf("gen: Dropout %g must be in [0,1)", c.Dropout)
	}
	if c.ModProb < 0 || c.ModProb > 1 {
		return fmt.Errorf("gen: ModProb %g must be in [0,1]", c.ModProb)
	}
	if c.MZJitter < 0 {
		return fmt.Errorf("gen: MZJitter %g must be >= 0", c.MZJitter)
	}
	if c.NoisePeaks < 0 {
		return fmt.Errorf("gen: NoisePeaks %d must be >= 0", c.NoisePeaks)
	}
	return c.Mods.Validate()
}

// GroundTruth records which peptide generated each spectrum, for
// identification-rate checks in tests and examples.
type GroundTruth struct {
	Peptide  int  // index into the peptide list
	Modified bool // whether a modified variant was sampled
}

// Spectra samples a synthetic MS/MS run from the peptide database.
// Peptides must be non-empty unless cfg.NumSpectra is 0. It returns the
// spectra (scan numbers 1..N) and the per-spectrum ground truth.
func Spectra(peptides []string, cfg SpectraConfig) ([]spectrum.Experimental, []GroundTruth, error) {
	if err := cfg.Validate(); err != nil {
		return nil, nil, err
	}
	if cfg.NumSpectra == 0 {
		return nil, nil, nil
	}
	if len(peptides) == 0 {
		return nil, nil, fmt.Errorf("gen: no peptides to sample spectra from")
	}
	rng := NewRNG(cfg.Seed)
	zipf := NewZipf(rng, len(peptides), cfg.ZipfExponent)

	// A fixed random permutation decouples Zipf rank from database order:
	// without it the "abundant" peptides would all be the first ones.
	perm := make([]int, len(peptides))
	for i := range perm {
		perm[i] = i
	}
	Shuffle(rng, perm)

	out := make([]spectrum.Experimental, 0, cfg.NumSpectra)
	truth := make([]GroundTruth, 0, cfg.NumSpectra)
	for scan := 1; len(out) < cfg.NumSpectra; scan++ {
		pi := perm[zipf.Next()]
		seq := peptides[pi]

		variant := mods.Variant{}
		if cfg.ModProb > 0 && rng.Float64() < cfg.ModProb {
			vs, err := cfg.Mods.Variants(seq)
			if err != nil {
				return nil, nil, err
			}
			if len(vs) > 1 {
				variant = vs[1+rng.Intn(len(vs)-1)]
			}
		}
		th, err := spectrum.PredictVariant(seq, variant, cfg.Mods.Mods)
		if err != nil {
			return nil, nil, err
		}

		e := spectrum.Experimental{
			Scan:        scan,
			PrecursorMZ: mass.MZ(th.Precursor, 1),
			Charge:      1,
		}
		for _, ion := range th.Ions {
			if rng.Float64() < cfg.Dropout {
				continue
			}
			e.Peaks = append(e.Peaks, spectrum.Peak{
				MZ:        ion + cfg.MZJitter*rng.Norm(),
				Intensity: 10 + rng.Float64()*990,
			})
		}
		for n := 0; n < cfg.NoisePeaks; n++ {
			e.Peaks = append(e.Peaks, spectrum.Peak{
				MZ:        rng.Float64() * cfg.MaxMZ,
				Intensity: rng.Float64() * 100,
			})
		}
		if len(e.Peaks) == 0 {
			continue // all peaks dropped; resample
		}
		e.SortPeaks()
		out = append(out, e)
		truth = append(truth, GroundTruth{Peptide: pi, Modified: variant.IsModified()})
	}
	return out, truth, nil
}
