package gen

import (
	"math"
	"testing"
	"testing/quick"

	"lbe/internal/digest"
	"lbe/internal/mass"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(99), NewRNG(99)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must give same stream")
		}
	}
	c := NewRNG(100)
	same := true
	a = NewRNG(99)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should differ")
	}
}

func TestRNGUniformity(t *testing.T) {
	rng := NewRNG(7)
	buckets := make([]int, 10)
	const n = 100000
	for i := 0; i < n; i++ {
		buckets[rng.Intn(10)]++
	}
	for b, c := range buckets {
		if c < n/10-n/100 || c > n/10+n/100 {
			t.Errorf("bucket %d count %d deviates >1%%", b, c)
		}
	}
}

func TestRNGFloat64Range(t *testing.T) {
	rng := NewRNG(8)
	for i := 0; i < 10000; i++ {
		f := rng.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRNGNormMoments(t *testing.T) {
	rng := NewRNG(9)
	const n = 200000
	sum, sumsq := 0.0, 0.0
	for i := 0; i < n; i++ {
		x := rng.Norm()
		sum += x
		sumsq += x * x
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Errorf("mean = %v", mean)
	}
	if math.Abs(variance-1) > 0.03 {
		t.Errorf("variance = %v", variance)
	}
}

func TestIntnPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("Intn(0) should panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestShuffleIsPermutation(t *testing.T) {
	f := func(seed uint64, nRaw uint8) bool {
		n := int(nRaw)
		xs := make([]int, n)
		for i := range xs {
			xs[i] = i
		}
		Shuffle(NewRNG(seed), xs)
		seen := make([]bool, n)
		for _, x := range xs {
			if x < 0 || x >= n || seen[x] {
				return false
			}
			seen[x] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestZipfSkew(t *testing.T) {
	rng := NewRNG(10)
	z := NewZipf(rng, 1000, 1.1)
	counts := make([]int, 1000)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[z.Next()]++
	}
	// Rank 0 must dominate rank 500 heavily.
	if counts[0] < 20*counts[500]+1 {
		t.Errorf("insufficient skew: rank0=%d rank500=%d", counts[0], counts[500])
	}
	// Uniform (s=0) must not be skewed.
	z0 := NewZipf(rng, 100, 0)
	c0 := make([]int, 100)
	for i := 0; i < n; i++ {
		c0[z0.Next()]++
	}
	if float64(c0[0]) > 1.2*float64(c0[99])+50 {
		t.Errorf("s=0 should be near-uniform: %d vs %d", c0[0], c0[99])
	}
}

func TestZipfPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewZipf(_,0,_) should panic")
		}
	}()
	NewZipf(NewRNG(1), 0, 1)
}

func TestProteomeShape(t *testing.T) {
	cfg := ProteomeConfig{Seed: 5, NumFamilies: 10, Homologs: 3, MeanLen: 200, MutationRate: 0.05}
	recs, err := Proteome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(recs) != 10*4 {
		t.Fatalf("got %d proteins, want 40", len(recs))
	}
	for _, r := range recs {
		if len(r.Sequence) < 50 {
			t.Errorf("protein %q too short: %d", r.ID(), len(r.Sequence))
		}
		if !mass.ValidSequence(r.Sequence) {
			t.Errorf("protein %q has invalid residues", r.ID())
		}
	}
}

func TestProteomeDeterminism(t *testing.T) {
	cfg := DefaultProteomeConfig()
	cfg.NumFamilies = 5
	a, _ := Proteome(cfg)
	b, _ := Proteome(cfg)
	if len(a) != len(b) {
		t.Fatal("nondeterministic count")
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("record %d differs between runs", i)
		}
	}
}

func TestProteomeHomologySimilarity(t *testing.T) {
	cfg := ProteomeConfig{Seed: 6, NumFamilies: 3, Homologs: 2, MeanLen: 300, MutationRate: 0.02}
	recs, _ := Proteome(cfg)
	// Homologs differ from base by ~2% of residues.
	for fam := 0; fam < 3; fam++ {
		base := recs[fam*3].Sequence
		for h := 1; h <= 2; h++ {
			hom := recs[fam*3+h].Sequence
			if len(hom) != len(base) {
				t.Fatalf("family %d homolog %d length differs", fam, h)
			}
			diff := 0
			for i := range base {
				if base[i] != hom[i] {
					diff++
				}
			}
			rate := float64(diff) / float64(len(base))
			if rate > 0.06 {
				t.Errorf("family %d homolog %d mutation rate %v too high", fam, h, rate)
			}
		}
	}
}

func TestProteomeValidate(t *testing.T) {
	bad := []ProteomeConfig{
		{NumFamilies: 0, Homologs: 1, MeanLen: 100},
		{NumFamilies: 1, Homologs: -1, MeanLen: 100},
		{NumFamilies: 1, Homologs: 1, MeanLen: 10},
		{NumFamilies: 1, Homologs: 1, MeanLen: 100, MutationRate: 2},
	}
	for i, cfg := range bad {
		if _, err := Proteome(cfg); err == nil {
			t.Errorf("config %d should fail", i)
		}
	}
}

func testPeptides(t *testing.T) []string {
	t.Helper()
	cfg := ProteomeConfig{Seed: 11, NumFamilies: 20, Homologs: 2, MeanLen: 300, MutationRate: 0.03}
	recs, err := Proteome(cfg)
	if err != nil {
		t.Fatal(err)
	}
	seqs := make([]string, len(recs))
	for i, r := range recs {
		seqs[i] = r.Sequence
	}
	peps, err := digest.DefaultConfig().Proteome(seqs)
	if err != nil {
		t.Fatal(err)
	}
	peps = digest.Dedup(peps)
	if len(peps) < 100 {
		t.Fatalf("too few peptides: %d", len(peps))
	}
	return digest.Sequences(peps)
}

func TestSpectraShapeAndTruth(t *testing.T) {
	peps := testPeptides(t)
	cfg := DefaultSpectraConfig()
	cfg.NumSpectra = 200
	spectra, truth, err := Spectra(peps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(spectra) != 200 || len(truth) != 200 {
		t.Fatalf("got %d spectra, %d truths", len(spectra), len(truth))
	}
	for i, e := range spectra {
		if err := e.Validate(); err != nil {
			t.Fatalf("spectrum %d invalid: %v", i, err)
		}
		if e.Scan <= 0 || len(e.Peaks) == 0 {
			t.Fatalf("spectrum %d malformed: %+v", i, e)
		}
		if truth[i].Peptide < 0 || truth[i].Peptide >= len(peps) {
			t.Fatalf("truth %d out of range: %+v", i, truth[i])
		}
	}
}

func TestSpectraDeterminism(t *testing.T) {
	peps := testPeptides(t)
	cfg := DefaultSpectraConfig()
	cfg.NumSpectra = 50
	a, ta, _ := Spectra(peps, cfg)
	b, tb, _ := Spectra(peps, cfg)
	for i := range a {
		if a[i].PrecursorMZ != b[i].PrecursorMZ || len(a[i].Peaks) != len(b[i].Peaks) {
			t.Fatalf("spectrum %d differs", i)
		}
		if ta[i] != tb[i] {
			t.Fatalf("truth %d differs", i)
		}
	}
}

func TestSpectraAbundanceSkew(t *testing.T) {
	peps := testPeptides(t)
	cfg := DefaultSpectraConfig()
	cfg.NumSpectra = 2000
	cfg.ZipfExponent = 1.2
	_, truth, err := Spectra(peps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[int]int{}
	for _, g := range truth {
		counts[g.Peptide]++
	}
	maxCount := 0
	for _, c := range counts {
		if c > maxCount {
			maxCount = c
		}
	}
	// With strong skew, the most-sampled peptide appears far more often
	// than the mean.
	mean := float64(cfg.NumSpectra) / float64(len(counts))
	if float64(maxCount) < 5*mean {
		t.Errorf("insufficient skew: max %d vs mean %.1f", maxCount, mean)
	}
}

func TestSpectraModProb(t *testing.T) {
	peps := testPeptides(t)
	cfg := DefaultSpectraConfig()
	cfg.NumSpectra = 500
	cfg.ModProb = 1.0
	_, truth, err := Spectra(peps, cfg)
	if err != nil {
		t.Fatal(err)
	}
	modded := 0
	for _, g := range truth {
		if g.Modified {
			modded++
		}
	}
	// Not every peptide has modifiable residues, but most do.
	if modded < len(truth)/2 {
		t.Errorf("only %d/%d spectra modified with ModProb=1", modded, len(truth))
	}

	cfg.ModProb = 0
	_, truth0, _ := Spectra(peps, cfg)
	for _, g := range truth0 {
		if g.Modified {
			t.Fatal("ModProb=0 must never modify")
		}
	}
}

func TestSpectraErrors(t *testing.T) {
	if _, _, err := Spectra(nil, DefaultSpectraConfig()); err == nil {
		t.Error("empty peptide list must fail")
	}
	cfg := DefaultSpectraConfig()
	cfg.Dropout = 1.0
	if _, _, err := Spectra([]string{"PEPTIDEK"}, cfg); err == nil {
		t.Error("dropout=1 must fail validation")
	}
	cfg = DefaultSpectraConfig()
	cfg.NumSpectra = 0
	spectra, truth, err := Spectra(nil, cfg)
	if err != nil || spectra != nil || truth != nil {
		t.Error("NumSpectra=0 should return empty without error")
	}
}
