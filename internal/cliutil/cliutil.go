// Package cliutil holds small helpers shared by the cmd/ binaries, so
// flag-contract and data-prep behavior cannot drift between them.
package cliutil

import (
	"flag"

	"lbe/internal/digest"
	"lbe/internal/engine"
)

// ExplicitlySet reports which of the named flags were set on the command
// line, in flag.Visit (lexical) order. The binaries use it to reject
// flags that a session store or report mode fixes, instead of silently
// ignoring them — one shared rejection mechanism, per-binary name lists.
func ExplicitlySet(names ...string) []string {
	want := make(map[string]bool, len(names))
	for _, n := range names {
		want[n] = true
	}
	var out []string
	flag.Visit(func(f *flag.Flag) {
		if want[f.Name] {
			out = append(out, f.Name)
		}
	})
	return out
}

// TuneSchedulerFromFlags applies the -chunk/-steal flags to a
// warm-started session, honoring the values the store manifest restored
// when a flag was left at its default: TuneScheduler treats chunk 0 as
// "re-enable auto-tuning" and takes stealing unconditionally, so passing
// the defaults through verbatim would silently clobber the stored knobs
// on every warm start.
func TuneSchedulerFromFlags(sess *engine.Session, chunk int, steal bool) {
	chunkArg := -1 // keep the stored granularity
	if len(ExplicitlySet("chunk")) > 0 {
		chunkArg = chunk
	}
	stealing := sess.Config().Stealing
	if len(ExplicitlySet("steal")) > 0 {
		stealing = steal
	}
	sess.TuneScheduler(chunkArg, stealing)
}

// DigestPeptides runs the default in-silico tryptic digestion over
// protein sequences and returns the deduplicated peptide list — the one
// -digest pipeline every binary must share so their databases match.
func DigestPeptides(proteins []string) ([]string, error) {
	peps, err := digest.DefaultConfig().Proteome(proteins)
	if err != nil {
		return nil, err
	}
	return digest.Sequences(digest.Dedup(peps)), nil
}
