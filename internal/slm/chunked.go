package slm

import (
	"cmp"
	"fmt"
	"slices"
	"sort"

	"lbe/internal/spectrum"
)

// ChunkedIndex is the shared-memory "internal data partitioning" of the
// paper's Fig. 1: peptides are sorted by precursor mass and split into
// independent chunks, so that for a given query all precursor-compatible
// reference spectra lie in few chunks. Benefits reproduced from the paper:
//
//   - a closed-search query touches only the chunks overlapping its
//     precursor window (§II-B: fewer chunks "need to be loaded into
//     memory or processed");
//   - chunks are built one at a time, eliminating the 2x transient
//     construction footprint of the monolithic index (§V-B discusses this
//     temporary overhead; §VI notes chunking removes it).
//
// Under open search (∆M = ∞) every chunk is consulted, matching the
// monolithic index result exactly.
type ChunkedIndex struct {
	params Params
	chunks []*Index
	// pepMap[c][local] is the caller-level peptide index of chunk c's
	// local peptide `local`.
	pepMap [][]uint32
	// lows[c] is the smallest unmodified-peptide precursor in chunk c;
	// chunk precursor ranges are [lows[c], lows[c+1]) except mod deltas.
	lows      []float64
	highs     []float64
	buildPeak int
}

// BuildChunked constructs a ChunkedIndex over the peptides with the given
// number of chunks. Peptides are ordered by unmodified precursor mass and
// split into contiguous, near-equal chunks (Fig. 1's layout).
func BuildChunked(peptides []string, params Params, numChunks int) (*ChunkedIndex, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if numChunks < 1 {
		return nil, fmt.Errorf("slm: chunk count %d must be >= 1", numChunks)
	}
	if numChunks > len(peptides) && len(peptides) > 0 {
		numChunks = len(peptides)
	}

	ci := &ChunkedIndex{params: params}
	if len(peptides) == 0 {
		ix, err := Build(nil, params)
		if err != nil {
			return nil, err
		}
		ci.chunks = []*Index{ix}
		ci.pepMap = [][]uint32{nil}
		ci.lows = []float64{0}
		ci.highs = []float64{0}
		return ci, nil
	}

	// Sort peptide order by unmodified precursor mass, then sequence for
	// determinism.
	type pepMass struct {
		idx  int
		mass float64
	}
	order := make([]pepMass, len(peptides))
	for i, seq := range peptides {
		th, err := spectrum.Predict(seq)
		if err != nil {
			return nil, fmt.Errorf("slm: peptide %d: %w", i, err)
		}
		order[i] = pepMass{idx: i, mass: th.Precursor}
	}
	sort.Slice(order, func(a, b int) bool {
		if order[a].mass != order[b].mass {
			return order[a].mass < order[b].mass
		}
		return peptides[order[a].idx] < peptides[order[b].idx]
	})

	base, rem := len(order)/numChunks, len(order)%numChunks
	pos := 0
	maxTransient := 0
	for c := 0; c < numChunks; c++ {
		sz := base
		if c < rem {
			sz++
		}
		if sz == 0 {
			continue
		}
		members := order[pos : pos+sz]
		pos += sz

		seqs := make([]string, sz)
		pmap := make([]uint32, sz)
		for i, pm := range members {
			seqs[i] = peptides[pm.idx]
			pmap[i] = uint32(pm.idx)
		}
		ix, err := Build(seqs, params)
		if err != nil {
			return nil, err
		}
		// Transient peak while building chunk c: all finished chunks plus
		// this chunk's build peak.
		transient := ix.BuildPeakBytes()
		for _, prev := range ci.chunks {
			transient += prev.MemoryBytes()
		}
		if transient > maxTransient {
			maxTransient = transient
		}
		ci.chunks = append(ci.chunks, ix)
		ci.pepMap = append(ci.pepMap, pmap)
		ci.lows = append(ci.lows, members[0].mass)
		ci.highs = append(ci.highs, members[len(members)-1].mass)
	}
	ci.buildPeak = maxTransient
	return ci, nil
}

// NumChunks returns the number of chunks.
func (ci *ChunkedIndex) NumChunks() int { return len(ci.chunks) }

// NumRows returns the total indexed spectra across chunks.
func (ci *ChunkedIndex) NumRows() int {
	n := 0
	for _, ix := range ci.chunks {
		n += ix.NumRows()
	}
	return n
}

// MemoryBytes returns the total resident size of all chunks plus maps.
func (ci *ChunkedIndex) MemoryBytes() int {
	n := 0
	for _, ix := range ci.chunks {
		n += ix.MemoryBytes()
	}
	for _, m := range ci.pepMap {
		n += 4 * len(m)
	}
	return n
}

// BuildPeakBytes returns the largest transient footprint observed while
// constructing the chunks sequentially. For numChunks > 1 this is below
// the monolithic index's 2x staging requirement.
func (ci *ChunkedIndex) BuildPeakBytes() int { return ci.buildPeak }

// maxModDelta bounds how much heavier a modified variant can be than its
// unmodified peptide, for chunk-range widening under closed search.
func (p Params) maxModDelta() float64 {
	maxSingle := 0.0
	for _, m := range p.Mods.Mods {
		if m.Delta > maxSingle {
			maxSingle = m.Delta
		}
	}
	return maxSingle * float64(p.Mods.MaxPerPep)
}

// Search queries one spectrum. Under a closed precursor window only the
// chunks whose precursor range can reach the window are consulted; under
// open search all chunks are. Results are identical to the monolithic
// index (with Peptide resolved through the chunk's map); ChunksTouched in
// the returned Work statistics... chunk accounting is returned separately.
//
//lbe:hotpath
func (ci *ChunkedIndex) Search(q spectrum.Experimental, topK int, scratch *Scratch) ([]Match, Work, int) {
	if scratch == nil {
		scratch = &Scratch{}
	}
	all := scratch.merged[:0]
	var work Work
	touched := 0
	qmass := q.PrecursorMass()
	maxDelta := ci.params.maxModDelta()
	for c, ix := range ci.chunks {
		if !ci.params.PrecursorTol.IsOpen() {
			wlo, whi := ci.params.PrecursorTol.Window(qmass)
			// Chunk c holds unmodified masses in [lows[c], highs[c]];
			// modified variants reach up to highs[c]+maxDelta.
			if ci.highs[c]+maxDelta < wlo || ci.lows[c] > whi {
				continue
			}
		}
		touched++
		ms, w := ix.searchScratch(q, scratch)
		for _, m := range ms {
			m.Peptide = ci.pepMap[c][m.Peptide]
			m.Row = 0 // rows are chunk-local; not meaningful across chunks
			all = append(all, m)
		}
		work.Add(w)
	}
	scratch.merged = all[:0] // retain grown capacity for reuse
	if topK > 0 && len(all) > 0 {
		// (Peptide, Precursor) pairs are unique per chunk layout, so this
		// is a total order and the unstable sort stays deterministic.
		slices.SortFunc(all, func(a, b Match) int {
			if a.Score != b.Score {
				if a.Score > b.Score {
					return -1
				}
				return 1
			}
			if a.Peptide != b.Peptide {
				return cmp.Compare(a.Peptide, b.Peptide)
			}
			return cmp.Compare(a.Precursor, b.Precursor)
		})
		if len(all) > topK {
			all = all[:topK]
		}
	}
	return copyMatches(all), work, touched
}
