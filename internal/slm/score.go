package slm

import "math"

// hyperscore computes a simplified hyperscore in the spirit of X!Tandem /
// MSFragger: log of the factorial of the matched ion count times the
// matched intensity sum, normalized by the theoretical ion count so longer
// peptides are not unduly favored. Shared-peak count dominates; intensity
// breaks ties. Deterministic and monotone in both arguments.
//
// The score is intentionally not normalized by the query's peak count:
// every candidate of one query shares that count, so it cannot reorder
// matches, and queries are never ranked against each other. (An earlier
// signature accepted it and silently ignored it.)
//
//lbe:hotpath
func hyperscore(shared uint16, intensitySum float64, rowIons int) float64 {
	if shared == 0 {
		return 0
	}
	s := float64(shared)
	score := logFactorial(int(shared)) + math.Log1p(intensitySum)
	// Normalize by the fraction of theoretical ions available to match.
	if rowIons > 0 {
		score += s * math.Log(s/float64(rowIons)+1)
	}
	return score
}

// logFactorial returns ln(n!) using the precomputed table for small n and
// Stirling's series beyond it. Matching ion counts are tiny (<= 65535) but
// almost always < 64.
func logFactorial(n int) float64 {
	if n < len(lnFactTable) {
		return lnFactTable[n]
	}
	x := float64(n)
	// Stirling with the 1/(12n) correction.
	return x*math.Log(x) - x + 0.5*math.Log(2*math.Pi*x) + 1/(12*x)
}

var lnFactTable = func() [128]float64 {
	var t [128]float64
	acc := 0.0
	for i := 2; i < len(t); i++ {
		acc += math.Log(float64(i))
		t[i] = acc
	}
	return t
}()
