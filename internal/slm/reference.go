package slm

import (
	"lbe/internal/mass"
	"lbe/internal/spectrum"
)

// BruteForce searches q against the same peptide set and parameters with
// no index: every row's theoretical ions are compared against every query
// peak through the same bucket discretization. It exists as a correctness
// oracle for tests and for the filtration-efficiency ablation; results
// must equal Index.Search exactly (modulo match order).
func BruteForce(peptides []string, params Params, q spectrum.Experimental) ([]Match, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	bucketer := mass.NewBucketer(params.Resolution)
	qmass := q.PrecursorMass()
	capB := params.capBucket()

	// Mirror the index kernel's intensity quantization exactly — same
	// u16 levels, same integer accumulation, same single dequantization —
	// so the oracle and Index.Search produce bit-identical scores.
	maxI := 0.0
	for _, p := range q.Peaks {
		if p.Intensity > maxI {
			maxI = p.Intensity
		}
	}
	scale, invScale := quantScales(maxI)
	qint := make([]uint16, len(q.Peaks))
	for i, p := range q.Peaks {
		qint[i] = quantizeIntensity(p.Intensity, scale)
	}

	var matches []Match
	rid := uint32(0)
	for pi, seq := range peptides {
		variants, err := params.Mods.Variants(seq)
		if err != nil {
			return nil, err
		}
		for _, v := range variants {
			th, err := spectrum.PredictIons(seq, v, params.Mods.Mods, params.series())
			if err != nil {
				return nil, err
			}
			// Mirror the index: only ions within the scan range exist.
			var ions []float64
			for _, ion := range th.Ions {
				if bucketer.Bucket(ion) <= capB {
					ions = append(ions, ion)
				}
			}
			shared := 0
			var intenAcc uint32
			for qi, p := range q.Peaks {
				blo, bhi := bucketer.Range(p.MZ, params.FragmentTol)
				if bhi > capB {
					bhi = capB
				}
				hits := 0
				for _, ion := range ions {
					b := bucketer.Bucket(ion)
					if b >= blo && b <= bhi {
						hits++
					}
				}
				shared += hits
				intenAcc += uint32(qint[qi]) * uint32(hits)
			}
			if shared >= params.MinSharedPeaks &&
				params.PrecursorTol.Contains(qmass, th.Precursor) {
				matches = append(matches, Match{
					Row:       rid,
					Peptide:   uint32(pi),
					Shared:    uint16(shared),
					Score:     hyperscore(uint16(shared), float64(intenAcc)*invScale, len(ions)),
					Precursor: th.Precursor,
				})
			}
			rid++
		}
	}
	return matches, nil
}
