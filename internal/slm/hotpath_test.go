package slm

import (
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strings"
	"testing"
)

// hotpathFuncs parses the package's non-test sources and returns the
// receiver-qualified names of every function annotated //lbe:hotpath.
func hotpathFuncs(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	fset := token.NewFileSet()
	var names []string
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, dir+"/"+name, nil, parser.ParseComments)
		if err != nil {
			t.Fatal(err)
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Doc == nil {
				continue
			}
			annotated := false
			for _, c := range fd.Doc.List {
				text := strings.TrimPrefix(c.Text, "//")
				if text == "lbe:hotpath" || strings.HasPrefix(text, "lbe:hotpath ") {
					annotated = true
				}
			}
			if !annotated {
				continue
			}
			names = append(names, recvQualified(fd))
		}
	}
	sort.Strings(names)
	return names
}

// recvQualified renders Recv.Name for methods and Name for functions.
func recvQualified(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return fd.Name.Name
	}
	typ := fd.Recv.List[0].Type
	if star, ok := typ.(*ast.StarExpr); ok {
		typ = star.X
	}
	if id, ok := typ.(*ast.Ident); ok {
		return id.Name + "." + fd.Name.Name
	}
	return fd.Name.Name
}

// TestHotpathAnnotationsMatchAllocGuards pins the //lbe:hotpath set to
// the functions whose zero-alloc behavior the AllocsPerRun guards in
// alloc_test.go actually exercise (Search and ChunkedIndex.Search drive
// the full annotated call tree: searchScratch, ensure, bucketRange,
// bucketSpan, precursorWindow, postingsLowerBound, hyperscore,
// sortMatches, copyMatches). Annotating a new function here without
// extending the runtime guards — or vice versa — fails this test,
// keeping the static gate and the dynamic gate in lockstep.
func TestHotpathAnnotationsMatchAllocGuards(t *testing.T) {
	got := hotpathFuncs(t, ".")
	want := []string{
		"ChunkedIndex.Search",
		"Index.Search",
		"Index.bucketRange",
		"Index.bucketSpan",
		"Index.precursorWindow",
		"Index.searchScratch",
		"Scratch.ensure",
		"Scratch.quantize",
		"copyMatches",
		"hyperscore",
		"postingsLowerBound",
		"sortMatches",
	}
	sort.Strings(want)
	if strings.Join(got, ",") != strings.Join(want, ",") {
		t.Errorf("//lbe:hotpath annotations = %v, want %v (keep annotations and AllocsPerRun guards in lockstep)", got, want)
	}
}
