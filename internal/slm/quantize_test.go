package slm

import (
	"math"
	"testing"

	"lbe/internal/spectrum"
)

func TestQuantizeIntensityEdgeCases(t *testing.T) {
	// Zero or empty queries quantize everything to zero with zero scales.
	if s, inv := quantScales(0); s != 0 || inv != 0 {
		t.Errorf("quantScales(0) = %v, %v; want 0, 0", s, inv)
	}
	scale, invScale := quantScales(2.0)
	if got := quantizeIntensity(2.0, scale); got != intensityQuantLevels {
		t.Errorf("max intensity quantizes to %d, want %d", got, intensityQuantLevels)
	}
	if got := quantizeIntensity(0, scale); got != 0 {
		t.Errorf("zero intensity quantizes to %d, want 0", got)
	}
	// Round half up at the level boundary: 1.5 levels rounds to 2.
	if got := quantizeIntensity(1.5*invScale, scale); got != 2 {
		t.Errorf("1.5 levels quantizes to %d, want 2", got)
	}
	// A value epsilon above the maximum (float noise) clamps, not wraps.
	if got := quantizeIntensity(2.0*(1+1e-12), scale); got != intensityQuantLevels {
		t.Errorf("slightly-over-max intensity quantizes to %d, want clamp", got)
	}
}

// TestQuantizedScoreBounded pins the quantization error budget: each
// posting hit contributes at most half a quantization level of intensity
// error, and Log1p is 1-Lipschitz, so a match's score may deviate from
// the exact float-accumulated score by at most shared/2 levels.
func TestQuantizedScoreBounded(t *testing.T) {
	ix := buildTestIndex(t)
	for _, pep := range []string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"} {
		q := queryFor(t, pep)

		maxI := 0.0
		for _, p := range q.Peaks {
			if p.Intensity > maxI {
				maxI = p.Intensity
			}
		}
		_, invScale := quantScales(maxI)

		matches, _ := ix.Search(q, 0, nil)
		if len(matches) == 0 {
			t.Fatalf("%s: no matches", pep)
		}
		for _, m := range matches {
			// Recompute the exact float intensity sum for this row.
			exact := 0.0
			for _, p := range q.Peaks {
				lo, hi := ix.bucketRange(p.MZ)
				for i := lo; i < hi; i++ {
					// Postings hold mass-sorted positions; perm maps
					// them back to the row id a Match reports.
					if ix.perm[ix.ids[i]] == m.Row {
						exact += p.Intensity
					}
				}
			}
			want := hyperscore(m.Shared, exact, int(ix.Row(m.Row).NumIons))
			bound := 0.5*invScale*float64(m.Shared) + 1e-9
			if diff := math.Abs(m.Score - want); diff > bound {
				t.Errorf("%s row %d: quantized score %v vs exact %v, |diff| %v > bound %v",
					pep, m.Row, m.Score, want, diff, bound)
			}
		}
	}
}

// TestQuantizeScratchReuse: growing and reusing the qint buffer across
// differently-sized queries must keep results independent of history.
func TestQuantizeScratchReuse(t *testing.T) {
	var s Scratch
	big := make([]spectrum.Peak, 300)
	for i := range big {
		big[i] = spectrum.Peak{MZ: float64(i + 100), Intensity: float64(i%7) / 7}
	}
	s.quantize(big)
	small := []spectrum.Peak{{MZ: 100, Intensity: 0.25}, {MZ: 200, Intensity: 0.5}}
	inv := s.quantize(small)
	if len(s.qint) != len(small) {
		t.Fatalf("qint len %d, want %d", len(s.qint), len(small))
	}
	if s.qint[1] != intensityQuantLevels {
		t.Errorf("strongest peak = %d levels, want %d", s.qint[1], intensityQuantLevels)
	}
	if got := float64(s.qint[0]) * inv; math.Abs(got-0.25) > 0.5*inv {
		t.Errorf("dequantized %v, want ~0.25", got)
	}
}
