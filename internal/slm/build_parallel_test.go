package slm

import (
	"bytes"
	"fmt"
	"reflect"
	"testing"

	"lbe/internal/digest"
	"lbe/internal/gen"
	"lbe/internal/mods"
)

// buildCorpus digests a synthetic proteome into a deduplicated peptide list.
func buildCorpus(tb testing.TB, families, homologs int) []string {
	tb.Helper()
	recs, err := gen.Proteome(gen.ProteomeConfig{
		Seed: 31, NumFamilies: families, Homologs: homologs, MeanLen: 280, MutationRate: 0.03,
	})
	if err != nil {
		tb.Fatal(err)
	}
	seqs := make([]string, len(recs))
	for i, r := range recs {
		seqs[i] = r.Sequence
	}
	peps, err := digest.DefaultConfig().Proteome(seqs)
	if err != nil {
		tb.Fatal(err)
	}
	return digest.Sequences(digest.Dedup(peps))
}

// indexBytes serializes an index to its canonical SLMX byte form.
func indexBytes(tb testing.TB, ix *Index) []byte {
	tb.Helper()
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		tb.Fatal(err)
	}
	return buf.Bytes()
}

// TestParallelBuildIdenticalToSerial: the sharded parallel build must
// produce an index byte-identical to the serial reference for any worker
// count, including degenerate ones.
func TestParallelBuildIdenticalToSerial(t *testing.T) {
	peptides := buildCorpus(t, 12, 2)
	params := DefaultParams()
	params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}

	ref, err := BuildSerial(peptides, params)
	if err != nil {
		t.Fatal(err)
	}
	if ref.NumRows() == 0 {
		t.Fatal("reference index is empty; corpus too small")
	}
	want := indexBytes(t, ref)

	for _, workers := range []int{0, 2, 3, 5, 8, 64, len(peptides) + 7} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			ix, err := BuildWorkers(peptides, params, workers)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(ix.rows, ref.rows) {
				t.Fatal("rows differ from serial build")
			}
			if !reflect.DeepEqual(ix.offsets, ref.offsets) {
				t.Fatal("CSR offsets differ from serial build")
			}
			if !reflect.DeepEqual(ix.ids, ref.ids) {
				t.Fatal("CSR postings differ from serial build")
			}
			if ix.BuildPeakBytes() != ref.BuildPeakBytes() {
				t.Fatalf("build peak %d != serial %d", ix.BuildPeakBytes(), ref.BuildPeakBytes())
			}
			if got := indexBytes(t, ix); !bytes.Equal(got, want) {
				t.Fatal("serialized index differs from serial build")
			}
		})
	}
}

// TestParallelBuildEdgeCases: empty and tiny databases must behave exactly
// like the serial build, including construction errors.
func TestParallelBuildEdgeCases(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0

	ser, err := BuildSerial(nil, params)
	if err != nil {
		t.Fatal(err)
	}
	par, err := BuildWorkers(nil, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if par.NumRows() != ser.NumRows() || !bytes.Equal(indexBytes(t, par), indexBytes(t, ser)) {
		t.Fatal("empty parallel build differs from serial")
	}

	// The first failing peptide's error must be reported regardless of
	// which shard holds it.
	bad := []string{"PEPTIDEK", "AX!BAD", "ANOTHERK", "ZZ!WORSE"}
	serErr := func() string {
		_, err := BuildSerial(bad, params)
		if err == nil {
			t.Fatal("serial build accepted invalid residues")
		}
		return err.Error()
	}()
	for _, workers := range []int{2, 4} {
		_, err := BuildWorkers(bad, params, workers)
		if err == nil {
			t.Fatalf("workers=%d accepted invalid residues", workers)
		}
		if err.Error() != serErr {
			t.Fatalf("workers=%d error %q, serial %q", workers, err, serErr)
		}
	}
}

// BenchmarkIndexBuild compares serial and parallel construction at two
// database scales; the perf trajectory is tracked from PR 1 onward.
func BenchmarkIndexBuild(b *testing.B) {
	params := DefaultParams()
	params.Mods = mods.Config{Mods: mods.PaperSet(), MaxPerPep: 1}
	for _, size := range []struct {
		name               string
		families, homologs int
	}{
		{"1k", 10, 2},
		{"10k", 60, 3},
	} {
		peptides := buildCorpus(b, size.families, size.homologs)
		b.Run(fmt.Sprintf("peptides=%s/serial", size.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := BuildSerial(peptides, params); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run(fmt.Sprintf("peptides=%s/parallel", size.name), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := Build(peptides, params); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
