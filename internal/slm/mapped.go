package slm

import (
	"bytes"
	"errors"
	"fmt"
	"hash/crc32"
	"unsafe"

	"lbe/internal/mmapio"
)

// errNotZeroCopy routes OpenIndexMapped to the heap fallback when the
// mapped bytes cannot legally back typed views (big-endian host, or an
// unaligned heap-fallback buffer).
var errNotZeroCopy = errors.New("slm: mapping cannot back zero-copy views")

// OpenIndexMapped opens a v3 SLMX file with its rows/offsets/ids and
// precursor-order (perm/precs) arrays backed by zero-copy views of a
// read-only memory mapping: no array is allocated or decoded, no section
// byte is read at open, and the index's resident bytes are kernel page
// cache shared with every co-located process serving the same store.
//
// Validation is split so warm-start stays O(header) instead of O(file):
// the header CRC, the canonical aligned section layout, every count cap
// and the size budget are verified eagerly — a corrupt section table is
// rejected at open — while the per-section content CRCs, the zero
// padding between sections and the CSR shape invariants are deferred to
// Verify, which runs at most once. Search triggers Verify implicitly, so
// corrupt content is still detected before any match is produced; the
// engine calls Verify on its error path before the first query instead.
//
// The returned index owns the mapping: it stays valid until the index is
// garbage-collected or Close is called, and must not be used after
// Close. Pre-v3 files (whose postings must be rewritten into the sorted
// layout), big-endian hosts, and platforms without usable mmap fall back
// to a heap-loaded index (identical results; Mapped reports false,
// Verify is a no-op because the decode already checked everything).
func OpenIndexMapped(path string) (*Index, error) {
	m, err := mmapio.Open(path)
	if err != nil {
		return nil, err
	}
	ix, err := indexFromMappedBytes(m)
	if errors.Is(err, errNotZeroCopy) {
		m.Close()
		return LoadFile(path)
	}
	if err != nil {
		m.Close()
		return nil, fmt.Errorf("slm: mapped open %s: %w", path, err)
	}
	// Deferred-verification failures surface far from the open call, so
	// anchor them to the file they indict.
	fn := ix.verifyFn
	ix.verifyFn = func() error {
		if err := fn(); err != nil {
			return fmt.Errorf("slm: mapped index %s: %w", path, err)
		}
		return nil
	}
	return ix, nil
}

// indexFromMappedBytes validates the v3 header in m and builds an Index
// whose arrays alias the mapped bytes, leaving section content checks to
// the deferred verifyFn. It returns errNotZeroCopy when the bytes are
// valid but cannot be aliased on this host.
func indexFromMappedBytes(m *mmapio.Mapping) (*Index, error) {
	data := m.Bytes()
	if len(data) < len(indexMagic)+4 {
		return nil, fmt.Errorf("input of %d bytes is too short for an index", len(data))
	}
	if string(data[:len(indexMagic)]) != indexMagic {
		return nil, fmt.Errorf("bad magic %q", data[:len(indexMagic)])
	}

	// Reuse the streaming header parser over the in-memory image: it
	// verifies the header CRC and pins the section table to the canonical
	// aligned layout (rejecting overlapping, misordered or misaligned
	// sections) with every count capped and bounded by the input size.
	d := &indexDecoder{
		cr:      &crcReader{r: bytes.NewReader(data[len(indexMagic):])},
		payload: int64(len(data) - len(indexMagic)),
	}
	version, err := d.u32()
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		// v1 has no section table to map; v2 postings hold raw row ids
		// and must be rewritten into the sorted layout, which a read-only
		// mapping cannot back. Both re-load on the heap.
		return nil, fmt.Errorf("version %d cannot be memory-mapped%w", version, errNotZeroCopy)
	}
	h, err := readHeader(d, version)
	if err != nil {
		return nil, err
	}

	section := func(i int) []byte {
		e := h.secs[i]
		// Bounds proven by readHeader against len(data).
		return data[e.off : int64(e.off)+sectionElemBytes[i]*int64(e.count)]
	}
	rowsSec := section(0)
	offsSec := section(1)
	idsSec := section(2)
	permSec := section(3)
	precsSec := section(4)

	if !isLittleEndian {
		return nil, errNotZeroCopy
	}
	aligned := func(b []byte) bool {
		return len(b) == 0 || uintptr(unsafe.Pointer(&b[0]))%8 == 0
	}
	if !aligned(rowsSec) || !aligned(offsSec) || !aligned(idsSec) || !aligned(permSec) || !aligned(precsSec) {
		// mmap is page-aligned, so this only happens on the heap-read
		// fallback with an unaligned buffer.
		return nil, errNotZeroCopy
	}

	ix := &Index{params: h.params, numBuckets: int(h.numBuckets)}
	if n := int(h.secs[0].count); n > 0 {
		ix.rows = unsafe.Slice((*Row)(unsafe.Pointer(&rowsSec[0])), n)
		ix.perm = unsafe.Slice((*uint32)(unsafe.Pointer(&permSec[0])), n)
		ix.precs = unsafe.Slice((*float64)(unsafe.Pointer(&precsSec[0])), n)
	}
	if n := int(h.secs[1].count); n > 0 {
		ix.offsets = unsafe.Slice((*uint32)(unsafe.Pointer(&offsSec[0])), n)
	}
	if n := int(h.secs[2].count); n > 0 {
		ix.ids = unsafe.Slice((*uint32)(unsafe.Pointer(&idsSec[0])), n)
	}
	ix.buildPeak = ix.MemoryBytes()
	ix.mapping = m
	shape := Index{
		rows: ix.rows, offsets: ix.offsets, ids: ix.ids,
		perm: ix.perm, precs: ix.precs, numBuckets: ix.numBuckets,
	}
	ix.verifyFn = func() error {
		if err := verifyMappedSections(m, h, data); err != nil {
			return err
		}
		return shape.validateShape()
	}
	return ix, nil
}

// verifyMappedSections is the deferred half of a mapped open: one
// sequential pass computing every per-section CRC and requiring the
// alignment padding between sections (the one region no section CRC
// covers) to be zero. The pass faults in the whole file, so the first
// Search after it runs against a warm mapping.
func verifyMappedSections(m *mmapio.Mapping, h *fileHeader, data []byte) error {
	m.Advise(mmapio.AdviceSequential)
	defer m.Advise(mmapio.AdviceRandom)
	end := h.headerLen // end of the previously verified region
	for i, e := range h.secs {
		lo := int64(e.off)
		for _, v := range data[end:lo] {
			if v != 0 {
				return errors.New("nonzero section padding")
			}
		}
		end = lo + sectionElemBytes[i]*int64(e.count)
		sec := data[lo:end]
		if crc := crc32.ChecksumIEEE(sec); crc != e.crc {
			return fmt.Errorf("section %d checksum mismatch: file %08x, computed %08x", i, e.crc, crc)
		}
	}
	return nil
}

// Verify runs the deferred content validation of a mapped open — section
// CRCs, inter-section padding, CSR shape — exactly once, returning the
// same result on every later call. It is a no-op for indexes validated
// at build or decode time (heap loads, fallbacks). Safe for concurrent
// use; Search calls it implicitly, so the warm path below must stay
// free of allocation-inducing constructs (no closures — hotpathalloc
// walks through here).
func (ix *Index) Verify() error {
	if ix.verifyFn == nil {
		return nil
	}
	if ix.verifyDone.Load() {
		return ix.verifyErr
	}
	return ix.verifySlow()
}

// verifySlow is Verify's one-time cold path: classic double-checked
// locking, with the atomic Store publishing verifyErr to lock-free
// fast-path readers.
func (ix *Index) verifySlow() error {
	ix.verifyMu.Lock()
	defer ix.verifyMu.Unlock()
	if !ix.verifyDone.Load() {
		ix.verifyErr = ix.verifyFn()
		ix.verifyDone.Store(true)
	}
	return ix.verifyErr
}

// Mapped reports whether the index's arrays are zero-copy views of a
// memory-mapped store file.
func (ix *Index) Mapped() bool {
	return ix.mapping != nil && ix.mapping.Mapped()
}

// Close releases the mapping backing a mapped index; it is a no-op for
// heap-loaded indexes. After Close the index must not be searched — its
// arrays alias the released mapping. Callers that share an index with
// concurrent searchers should drop their references instead and let the
// mapping's finalizer release it when the index becomes unreachable.
func (ix *Index) Close() error {
	m := ix.mapping
	if m == nil {
		return nil
	}
	// Latch verification closed so a later Verify (or Search) can never
	// touch the released mapping; if it already ran, this is a no-op.
	ix.verifyMu.Lock()
	if !ix.verifyDone.Load() {
		if ix.verifyFn != nil {
			ix.verifyErr = errors.New("slm: index closed before verification")
		}
		ix.verifyDone.Store(true)
	}
	ix.verifyMu.Unlock()
	ix.mapping = nil
	ix.rows, ix.offsets, ix.ids = nil, nil, nil
	ix.perm, ix.precs = nil, nil
	return m.Close()
}
