package slm

import (
	"cmp"
	"slices"

	"lbe/internal/spectrum"
)

// Match is one candidate peptide-to-spectrum match (cPSM) produced by a
// query against the index.
type Match struct {
	Row       uint32  // index row (peptide variant)
	Peptide   uint32  // local (virtual) peptide index
	Shared    uint16  // shared peak count
	Score     float64 // hyperscore-style match score; higher is better
	Precursor float64 // row's neutral precursor mass
}

// Work accounts for the computation a query performed; the engine
// aggregates it per rank to measure load (im)balance in deterministic
// units rather than noisy wall-clock.
type Work struct {
	IonHits    int64 // postings visited during shared-peak counting
	Candidates int64 // rows that reached the shared-peak threshold
	Scored     int64 // candidates surviving the precursor filter and scored
}

// Add accumulates w2 into w.
func (w *Work) Add(w2 Work) {
	w.IonHits += w2.IonHits
	w.Candidates += w2.Candidates
	w.Scored += w2.Scored
}

// Scratch holds reusable per-searcher buffers so concurrent searchers do
// not contend. A zero Scratch is ready for use; one Scratch must not be
// shared between goroutines.
type Scratch struct {
	counts  []uint16
	inten   []float64
	touched []uint32
	matches []Match // per-query accumulator, reused across searches
	merged  []Match // cross-chunk accumulator for ChunkedIndex.Search
}

// ensure sizes the scratch buffers for an index with rows rows; a warm
// scratch (already at capacity) does not allocate.
//
//lbe:hotpath
func (s *Scratch) ensure(rows int) {
	if len(s.counts) < rows {
		// Round capacity up to the next power of two: a work-stealing
		// pool hands one Scratch shards of alternating sizes, and
		// growing at exact rows would reallocate on every steal.
		n := 64
		for n < rows {
			n <<= 1
		}
		s.counts = make([]uint16, n)
		s.inten = make([]float64, n)
	}
	s.touched = s.touched[:0]
}

// Search queries one preprocessed experimental spectrum against the index
// and returns the candidate matches (unordered unless topK > 0, in which
// case the best topK by score are returned in descending score order).
// The returned slice is owned by the caller and survives later searches
// with the same Scratch.
//
// The query's peaks must be sorted by m/z (see spectrum.Preprocess).
//
//lbe:hotpath
func (ix *Index) Search(q spectrum.Experimental, topK int, scratch *Scratch) ([]Match, Work) {
	if scratch == nil {
		scratch = &Scratch{}
	}
	matches, work := ix.searchScratch(q, scratch)
	if topK > 0 && len(matches) > 0 {
		sortMatches(matches)
		if len(matches) > topK {
			matches = matches[:topK]
		}
	}
	return copyMatches(matches), work
}

// searchScratch runs the two search phases and returns matches backed by
// scratch.matches: valid only until the next search with this Scratch.
//
//lbe:hotpath
func (ix *Index) searchScratch(q spectrum.Experimental, scratch *Scratch) ([]Match, Work) {
	scratch.ensure(len(ix.rows))
	var work Work

	// Phase 1: shared-peak counting over the CSR postings.
	for _, p := range q.Peaks {
		lo, hi := ix.bucketRange(p.MZ)
		for i := lo; i < hi; i++ {
			rid := ix.ids[i]
			if scratch.counts[rid] == 0 {
				scratch.touched = append(scratch.touched, rid)
				scratch.inten[rid] = 0
			}
			scratch.counts[rid]++
			scratch.inten[rid] += p.Intensity
		}
		work.IonHits += int64(hi - lo)
	}

	// Phase 2: threshold + precursor filter + scoring.
	matches := scratch.matches[:0]
	qmass := q.PrecursorMass()
	minShared := uint16(ix.params.MinSharedPeaks)
	for _, rid := range scratch.touched {
		c := scratch.counts[rid]
		scratch.counts[rid] = 0 // reset as we go
		if c < minShared {
			continue
		}
		work.Candidates++
		row := ix.rows[rid]
		if !ix.params.PrecursorTol.Contains(qmass, row.Precursor) {
			continue
		}
		work.Scored++
		matches = append(matches, Match{
			Row:       rid,
			Peptide:   row.Peptide,
			Shared:    c,
			Score:     hyperscore(c, scratch.inten[rid], int(row.NumIons)),
			Precursor: row.Precursor,
		})
	}

	scratch.matches = matches[:0] // retain grown capacity for reuse
	return matches, work
}

// copyMatches returns a caller-owned copy of a scratch-backed slice so
// callers may retain results across searches. nil stays nil. The sized
// make here is the one allocation the warm search path is allowed.
//
//lbe:hotpath
func copyMatches(ms []Match) []Match {
	if len(ms) == 0 {
		return nil
	}
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}

// sortMatches orders by descending score, then ascending row id for
// determinism across runs and machines. Both fields together are a total
// order, so the unstable allocation-free sort is deterministic.
//
//lbe:hotpath
func sortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Row, b.Row)
	})
}

// SearchAll queries a batch of spectra sequentially, accumulating work.
// Results are indexed like the input batch.
func (ix *Index) SearchAll(qs []spectrum.Experimental, topK int) ([][]Match, Work) {
	var scratch Scratch
	var total Work
	out := make([][]Match, len(qs))
	for i, q := range qs {
		m, w := ix.Search(q, topK, &scratch)
		out[i] = m
		total.Add(w)
	}
	return out, total
}
