package slm

import (
	"cmp"
	"slices"

	"lbe/internal/spectrum"
)

// Match is one candidate peptide-to-spectrum match (cPSM) produced by a
// query against the index.
type Match struct {
	Row       uint32  // index row (peptide variant)
	Peptide   uint32  // local (virtual) peptide index
	Shared    uint16  // shared peak count
	Score     float64 // hyperscore-style match score; higher is better
	Precursor float64 // row's neutral precursor mass
}

// Work accounts for the computation a query performed; the engine
// aggregates it per rank to measure load (im)balance in deterministic
// units rather than noisy wall-clock.
type Work struct {
	IonHits    int64 // postings visited during shared-peak counting
	Pruned     int64 // postings skipped by the precursor-windowed scan
	Candidates int64 // rows that reached the shared-peak threshold
	Scored     int64 // candidates surviving the precursor filter and scored
}

// Add accumulates w2 into w.
func (w *Work) Add(w2 Work) {
	w.IonHits += w2.IonHits
	w.Pruned += w2.Pruned
	w.Candidates += w2.Candidates
	w.Scored += w2.Scored
}

// Scratch holds reusable per-searcher buffers so concurrent searchers do
// not contend. A zero Scratch is ready for use; one Scratch must not be
// shared between goroutines.
type Scratch struct {
	counts  []uint16
	inten   []uint32 // quantized intensity accumulator (phase 1)
	qint    []uint16 // per-peak quantized intensities for the current query
	touched []uint32
	matches []Match // per-query accumulator, reused across searches
	merged  []Match // cross-chunk accumulator for ChunkedIndex.Search
}

// ensure sizes the scratch buffers for an index with rows rows; a warm
// scratch (already at capacity) does not allocate.
//
//lbe:hotpath
func (s *Scratch) ensure(rows int) {
	if len(s.counts) < rows {
		// Round capacity up to the next power of two: a work-stealing
		// pool hands one Scratch shards of alternating sizes, and
		// growing at exact rows would reallocate on every steal.
		n := 64
		for n < rows {
			n <<= 1
		}
		s.counts = make([]uint16, n)
		s.inten = make([]uint32, n)
	}
	s.touched = s.touched[:0]
}

// intensityQuantLevels is the quantization range of peak intensities:
// each query's peaks are rescaled so its strongest peak is this value.
const intensityQuantLevels = 65535

// quantScales returns the quantize/dequantize factor pair for a query
// whose strongest peak has maxIntensity. A non-positive maximum (empty
// or all-zero query) yields zero scales, quantizing everything to 0.
func quantScales(maxIntensity float64) (scale, invScale float64) {
	if maxIntensity <= 0 {
		return 0, 0
	}
	return intensityQuantLevels / maxIntensity, maxIntensity / intensityQuantLevels
}

// quantizeIntensity maps one peak intensity to its u16 level: round half
// up, clamped so float rounding at the maximum cannot wrap.
func quantizeIntensity(v, scale float64) uint16 {
	q := v*scale + 0.5
	if q >= intensityQuantLevels {
		return intensityQuantLevels
	}
	if q < 0 {
		return 0
	}
	return uint16(q)
}

// quantize fills s.qint with the query's peak intensities quantized to
// u16 levels and returns the dequantization factor. Phase 1 then
// accumulates 4-byte integers instead of 8-byte floats — half the
// accumulator traffic on the random row-indexed writes — and the sum is
// converted back to intensity units once per scored candidate.
//
//lbe:hotpath
func (s *Scratch) quantize(peaks []spectrum.Peak) float64 {
	if cap(s.qint) < len(peaks) {
		n := 64
		for n < len(peaks) {
			n <<= 1
		}
		s.qint = make([]uint16, n)
	}
	s.qint = s.qint[:len(peaks)]
	maxI := 0.0
	for _, p := range peaks {
		if p.Intensity > maxI {
			maxI = p.Intensity
		}
	}
	scale, invScale := quantScales(maxI)
	for i, p := range peaks {
		s.qint[i] = quantizeIntensity(p.Intensity, scale)
	}
	return invScale
}

// Search queries one preprocessed experimental spectrum against the index
// and returns the candidate matches (unordered unless topK > 0, in which
// case the best topK by score are returned in descending score order).
// The returned slice is owned by the caller and survives later searches
// with the same Scratch.
//
// The query's peaks must be sorted by m/z (see spectrum.Preprocess).
//
// On a mapped index the first Search triggers the deferred content
// validation (see Verify) and panics if the file is corrupt; callers
// that need an error instead must call Verify themselves first.
//
//lbe:hotpath
func (ix *Index) Search(q spectrum.Experimental, topK int, scratch *Scratch) ([]Match, Work) {
	if err := ix.Verify(); err != nil {
		panic(err)
	}
	if scratch == nil {
		scratch = &Scratch{}
	}
	matches, work := ix.searchScratch(q, scratch)
	if topK > 0 && len(matches) > 0 {
		sortMatches(matches)
		if len(matches) > topK {
			matches = matches[:topK]
		}
	}
	return copyMatches(matches), work
}

// precursorWindow resolves the query's precursor tolerance to the
// contiguous range [rlo, rhi) of mass-sorted row positions it admits, via
// two binary searches over the ascending precursor column. windowed is
// false when the window does not narrow the scan — open search, an empty
// index, a window at least as wide as the indexed mass range, or a forced
// full scan — and the caller must fall back to the flattened full scan.
// The range is exactly the set PrecursorTol.Contains accepts (both are
// inclusive on both ends), so intersecting phase 1 with it never changes
// which rows can score.
//
//lbe:hotpath
func (ix *Index) precursorWindow(qmass float64) (windowed bool, rlo, rhi uint32) {
	if ix.fullScan || len(ix.precs) == 0 || ix.params.PrecursorTol.IsOpen() {
		return false, 0, 0
	}
	wlo, whi := ix.params.PrecursorTol.Window(qmass)
	precs := ix.precs
	// First sorted position with precs >= wlo.
	lo, hi := 0, len(precs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if precs[m] < wlo {
			lo = m + 1
		} else {
			hi = m
		}
	}
	first := lo
	// First sorted position with precs > whi.
	hi = len(precs)
	for lo < hi {
		m := int(uint(lo+hi) >> 1)
		if precs[m] <= whi {
			lo = m + 1
		} else {
			hi = m
		}
	}
	if first == 0 && lo == len(precs) {
		// The window admits every row: the flattened scan is cheaper.
		return false, 0, 0
	}
	return true, uint32(first), uint32(lo)
}

// postingsLowerBound returns the first position in ids[lo:hi) holding a
// value >= v. Posting counts are capped at 1<<30, so lo+hi cannot
// overflow.
//
//lbe:hotpath
func postingsLowerBound(ids []uint32, lo, hi, v uint32) uint32 {
	for lo < hi {
		m := (lo + hi) >> 1
		if ids[m] < v {
			lo = m + 1
		} else {
			hi = m
		}
	}
	return lo
}

// searchScratch runs the two search phases and returns matches backed by
// scratch.matches: valid only until the next search with this Scratch.
//
// Phase 1 has two strategies with byte-identical results: the flattened
// full scan walks every posting in the fragment window, while the
// windowed scan (narrow precursor tolerance) binary-searches each
// bucket's ascending posting list down to the precursor-eligible range of
// sorted row positions first, skipping postings that could never survive
// phase 2's precursor filter. Both visit the surviving postings in the
// same order, so phase 2 sees identical accumulators either way.
//
//lbe:hotpath
func (ix *Index) searchScratch(q spectrum.Experimental, scratch *Scratch) ([]Match, Work) {
	scratch.ensure(len(ix.rows))
	invScale := scratch.quantize(q.Peaks)
	var work Work
	qmass := q.PrecursorMass()

	// Phase 1: shared-peak counting over the CSR postings, accumulating
	// quantized intensities. Postings are mass-sorted row positions.
	if windowed, rlo, rhi := ix.precursorWindow(qmass); windowed {
		for pi, p := range q.Peaks {
			qi := uint32(scratch.qint[pi])
			blo, bhi := ix.bucketSpan(p.MZ)
			for b := blo; b <= bhi; b++ {
				s, e := ix.offsets[b], ix.offsets[b+1]
				lo := postingsLowerBound(ix.ids, s, e, rlo)
				hi := postingsLowerBound(ix.ids, lo, e, rhi)
				for i := lo; i < hi; i++ {
					srid := ix.ids[i]
					if scratch.counts[srid] == 0 {
						scratch.touched = append(scratch.touched, srid)
						scratch.inten[srid] = 0
					}
					scratch.counts[srid]++
					scratch.inten[srid] += qi
				}
				work.IonHits += int64(hi - lo)
				work.Pruned += int64(e-s) - int64(hi-lo)
			}
		}
	} else {
		for pi, p := range q.Peaks {
			qi := uint32(scratch.qint[pi])
			lo, hi := ix.bucketRange(p.MZ)
			for i := lo; i < hi; i++ {
				srid := ix.ids[i]
				if scratch.counts[srid] == 0 {
					scratch.touched = append(scratch.touched, srid)
					scratch.inten[srid] = 0
				}
				scratch.counts[srid]++
				scratch.inten[srid] += qi
			}
			work.IonHits += int64(hi - lo)
		}
	}

	// Phase 2: threshold + precursor filter + scoring. touched holds
	// sorted positions; perm maps them back to the stable row ids every
	// caller (and every PSM byte downstream) sees.
	matches := scratch.matches[:0]
	minShared := uint16(ix.params.MinSharedPeaks)
	for _, srid := range scratch.touched {
		c := scratch.counts[srid]
		scratch.counts[srid] = 0 // reset as we go
		if c < minShared {
			continue
		}
		work.Candidates++
		rid := ix.perm[srid]
		row := ix.rows[rid]
		if !ix.params.PrecursorTol.Contains(qmass, row.Precursor) {
			continue
		}
		work.Scored++
		matches = append(matches, Match{
			Row:       rid,
			Peptide:   row.Peptide,
			Shared:    c,
			Score:     hyperscore(c, float64(scratch.inten[srid])*invScale, int(row.NumIons)),
			Precursor: row.Precursor,
		})
	}

	scratch.matches = matches[:0] // retain grown capacity for reuse
	return matches, work
}

// copyMatches returns a caller-owned copy of a scratch-backed slice so
// callers may retain results across searches. nil stays nil. The sized
// make here is the one allocation the warm search path is allowed.
//
//lbe:hotpath
func copyMatches(ms []Match) []Match {
	if len(ms) == 0 {
		return nil
	}
	out := make([]Match, len(ms))
	copy(out, ms)
	return out
}

// sortMatches orders by descending score, then ascending row id for
// determinism across runs and machines. Both fields together are a total
// order, so the unstable allocation-free sort is deterministic.
//
//lbe:hotpath
func sortMatches(ms []Match) {
	slices.SortFunc(ms, func(a, b Match) int {
		if a.Score != b.Score {
			if a.Score > b.Score {
				return -1
			}
			return 1
		}
		return cmp.Compare(a.Row, b.Row)
	})
}

// SearchAll queries a batch of spectra sequentially, accumulating work.
// Results are indexed like the input batch.
func (ix *Index) SearchAll(qs []spectrum.Experimental, topK int) ([][]Match, Work) {
	var scratch Scratch
	var total Work
	out := make([][]Match, len(qs))
	for i, q := range qs {
		m, w := ix.Search(q, topK, &scratch)
		out[i] = m
		total.Add(w)
	}
	return out, total
}
