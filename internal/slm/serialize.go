package slm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Binary index format ("SLMX"): the paper's shared-memory design stores
// index chunks on disk when not in use (§II-B); this file gives the index
// a compact, checksummed serialization so partial indexes can be spilled
// and reloaded.
//
// Layout (little-endian):
//
//	magic "SLMX" | version u32 | params block | rows | offsets | ids | crc32
//
// The CRC covers everything between the magic and the checksum itself.

const (
	indexMagic   = "SLMX"
	indexVersion = 1
)

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	return n, err
}

// WriteTo serializes the index. It implements io.WriterTo.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return 0, err
	}
	cw := &crcWriter{w: bw}
	le := binary.LittleEndian

	put := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Write(cw, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	putString := func(s string) error {
		if err := put(uint32(len(s))); err != nil {
			return err
		}
		_, err := io.WriteString(cw, s)
		return err
	}

	p := ix.params
	if err := put(uint32(indexVersion),
		p.Resolution,
		p.FragmentTol.Value, uint8(p.FragmentTol.Unit),
		p.PrecursorTol.Value, uint8(p.PrecursorTol.Unit),
		uint32(p.MinSharedPeaks), uint32(p.MaxQueryPeaks), p.MaxFragmentMZ,
		uint32(p.Mods.MaxPerPep), uint32(p.Mods.MaxVariant), uint32(len(p.Mods.Mods)),
	); err != nil {
		return 0, err
	}
	if err := put(uint32(len(p.IonSeries))); err != nil {
		return 0, err
	}
	for _, k := range p.IonSeries {
		if err := put(uint8(k)); err != nil {
			return 0, err
		}
	}
	for _, m := range p.Mods.Mods {
		if err := putString(m.Name); err != nil {
			return 0, err
		}
		if err := putString(m.Residues); err != nil {
			return 0, err
		}
		if err := put(m.Delta); err != nil {
			return 0, err
		}
	}

	if err := put(uint32(len(ix.rows))); err != nil {
		return 0, err
	}
	for _, r := range ix.rows {
		mod := uint8(0)
		if r.Modified {
			mod = 1
		}
		if err := put(r.Peptide, r.Precursor, r.NumIons, mod); err != nil {
			return 0, err
		}
	}
	if err := put(uint32(ix.numBuckets), uint32(len(ix.offsets))); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, le, ix.offsets); err != nil {
		return 0, err
	}
	if err := put(uint32(len(ix.ids))); err != nil {
		return 0, err
	}
	if err := binary.Write(cw, le, ix.ids); err != nil {
		return 0, err
	}
	crc := cw.crc
	if err := binary.Write(bw, le, crc); err != nil {
		return 0, err
	}
	if err := bw.Flush(); err != nil {
		return 0, err
	}
	return int64(len(indexMagic)) + cw.n + 4, nil
}

// ReadIndex deserializes an index written by WriteTo, verifying the
// checksum and format version.
func ReadIndex(r io.Reader) (*Index, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slm: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("slm: bad magic %q", magic)
	}
	cr := &crcReader{r: br}
	le := binary.LittleEndian

	get := func(vs ...any) error {
		for _, v := range vs {
			if err := binary.Read(cr, le, v); err != nil {
				return err
			}
		}
		return nil
	}
	getString := func() (string, error) {
		var n uint32
		if err := get(&n); err != nil {
			return "", err
		}
		if n > 1<<20 {
			return "", fmt.Errorf("slm: string length %d implausible", n)
		}
		b := make([]byte, n)
		if _, err := io.ReadFull(cr, b); err != nil {
			return "", err
		}
		return string(b), nil
	}

	var version uint32
	if err := get(&version); err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("slm: unsupported index version %d (want %d)", version, indexVersion)
	}

	ix := &Index{}
	var fragUnit, precUnit uint8
	var minShared, maxQP, maxPer, maxVar, nmods uint32
	p := &ix.params
	if err := get(&p.Resolution,
		&p.FragmentTol.Value, &fragUnit,
		&p.PrecursorTol.Value, &precUnit,
		&minShared, &maxQP, &p.MaxFragmentMZ,
		&maxPer, &maxVar, &nmods,
	); err != nil {
		return nil, err
	}
	p.FragmentTol.Unit = mass.ToleranceUnit(fragUnit)
	p.PrecursorTol.Unit = mass.ToleranceUnit(precUnit)
	p.MinSharedPeaks = int(minShared)
	p.MaxQueryPeaks = int(maxQP)
	p.Mods.MaxPerPep = int(maxPer)
	p.Mods.MaxVariant = int(maxVar)
	if nmods > 1<<16 {
		return nil, fmt.Errorf("slm: mod count %d implausible", nmods)
	}
	var nseries uint32
	if err := get(&nseries); err != nil {
		return nil, err
	}
	if nseries > 16 {
		return nil, fmt.Errorf("slm: ion series count %d implausible", nseries)
	}
	for i := uint32(0); i < nseries; i++ {
		var k uint8
		if err := get(&k); err != nil {
			return nil, err
		}
		p.IonSeries = append(p.IonSeries, spectrum.IonKind(k))
	}
	for i := uint32(0); i < nmods; i++ {
		var m mods.Mod
		var err error
		if m.Name, err = getString(); err != nil {
			return nil, err
		}
		if m.Residues, err = getString(); err != nil {
			return nil, err
		}
		if err = get(&m.Delta); err != nil {
			return nil, err
		}
		p.Mods.Mods = append(p.Mods.Mods, m)
	}

	var nrows uint32
	if err := get(&nrows); err != nil {
		return nil, err
	}
	if nrows > 1<<30 {
		return nil, fmt.Errorf("slm: row count %d implausible", nrows)
	}
	ix.rows = make([]Row, nrows)
	for i := range ix.rows {
		var mod uint8
		if err := get(&ix.rows[i].Peptide, &ix.rows[i].Precursor, &ix.rows[i].NumIons, &mod); err != nil {
			return nil, err
		}
		ix.rows[i].Modified = mod != 0
	}

	var numBuckets, noffsets uint32
	if err := get(&numBuckets, &noffsets); err != nil {
		return nil, err
	}
	if noffsets != numBuckets+1 && !(numBuckets == 0 && noffsets <= 1) {
		return nil, fmt.Errorf("slm: offsets length %d does not match %d buckets", noffsets, numBuckets)
	}
	ix.numBuckets = int(numBuckets)
	ix.offsets = make([]uint32, noffsets)
	if err := binary.Read(cr, le, ix.offsets); err != nil {
		return nil, err
	}
	var nids uint32
	if err := get(&nids); err != nil {
		return nil, err
	}
	ix.ids = make([]uint32, nids)
	if err := binary.Read(cr, le, ix.ids); err != nil {
		return nil, err
	}

	want := cr.crc
	var got uint32
	if err := binary.Read(br, le, &got); err != nil {
		return nil, fmt.Errorf("slm: reading checksum: %w", err)
	}
	if got != want {
		return nil, fmt.Errorf("slm: checksum mismatch: file %08x, computed %08x", got, want)
	}
	// Sanity: offsets must be monotone and end at len(ids).
	for i := 1; i < len(ix.offsets); i++ {
		if ix.offsets[i] < ix.offsets[i-1] {
			return nil, fmt.Errorf("slm: corrupt offsets at %d", i)
		}
	}
	if len(ix.offsets) > 0 && ix.offsets[len(ix.offsets)-1] != uint32(len(ix.ids)) {
		return nil, fmt.Errorf("slm: offsets end %d != %d postings", ix.offsets[len(ix.offsets)-1], len(ix.ids))
	}
	for _, r := range ix.rows {
		if math.IsNaN(r.Precursor) || r.Precursor < 0 {
			return nil, fmt.Errorf("slm: corrupt row precursor")
		}
	}
	ix.buildPeak = ix.MemoryBytes()
	return ix, nil
}

// SaveFile writes the index to the named file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from the named file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}
