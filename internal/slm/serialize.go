package slm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"slices"
	"unsafe"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Binary index format ("SLMX"): the paper's shared-memory design stores
// index chunks on disk when not in use (§II-B); this file gives the index
// a compact, checksummed serialization so partial indexes can be spilled
// and reloaded.
//
// Version 3 layout (little-endian), written by WriteTo:
//
//	magic "SLMX" | version u32 | params block | numBuckets u32 |
//	section table (5 × {offset u64, count u64, crc32 u32}) | header crc32 |
//	padding | rows | padding | offsets | padding | ids |
//	padding | perm | padding | precs
//
// The header CRC covers everything between the magic and itself. Each
// data section starts at a 64-byte-aligned file offset recorded in the
// table, holds count fixed-size records (rows are the in-memory 16-byte
// Row layout; offsets, ids and perm are u32; precs is f64), and carries
// its own CRC. Section offsets are canonical — derivable from the header
// size alone — so a stream reader needs no seeking and a table naming
// overlapping, misordered or misaligned sections is rejected outright.
// The fixed aligned layout is what lets OpenIndexMapped back an index
// with zero-copy views of a memory mapping.
//
// v3 adds the precursor-mass order: ids postings hold mass-sorted row
// positions (each bucket ascending), perm maps sorted position → row id,
// and precs is the ascending precursor column the windowed scan binary
// searches. Version 2 (the same layout with three sections — rows,
// offsets, ids — and postings holding raw row ids) and version 1 (magic |
// version | params | rows | offsets | ids | crc32, with u32 count
// prefixes and a single trailing CRC) remain readable; both derive the
// precursor order at load time (see sortByPrecursor).
//
// Counts come from the (not yet checksum-verified) input, so the reader
// treats them as hostile: each is bounded by an absolute cap AND, when
// the input's size is knowable (regular files, in-memory readers), by the
// bytes actually present. On sized input the arrays are then allocated
// exactly and bulk-read; on an opaque stream payloads are read in
// fixed-size chunks so the decoder never allocates more than a small
// multiple of the bytes it has actually consumed.

const (
	indexMagic     = "SLMX"
	indexVersion   = 3
	indexVersionV2 = 2
	indexVersionV1 = 1

	// Wire sizes of the variable-length record types.
	rowWireBytesV1   = 4 + 8 + 2 + 1 // v1: Peptide u32, Precursor f64, NumIons u16, Modified u8
	rowWireBytes     = rowMemBytes   // v2+: the in-memory Row layout
	postingWireBytes = 4

	// sectionAlign is the file-offset alignment of every v2+ data section:
	// a cache line, and a divisor of the page size, so a page-aligned
	// mapping yields aligned (and cache-line-friendly) array views.
	sectionAlign = 64

	// sectionTableEntries and sectionEntryBytes fix the table shape: rows,
	// offsets, ids, perm, precs — each {offset u64, count u64, crc32 u32}.
	// v2 tables carry only the first three sections.
	sectionTableEntries   = 5
	sectionTableEntriesV2 = 3
	sectionEntryBytes     = 8 + 8 + 4

	// Absolute sanity caps on count fields, enforced before any
	// allocation. They bound a single shard file at sizes far beyond the
	// paper's full 49.45M-spectra run while keeping the worst-case
	// allocation from a corrupt count on an unsized stream in check.
	maxStringLen    = 1 << 20
	maxModCount     = 1 << 16
	maxSeriesCount  = 16
	maxRowCount     = 1 << 28
	maxBucketCount  = 1 << 30
	maxPostingCount = 1 << 30
)

// isLittleEndian reports whether the host lays out multi-byte integers
// the way the SLMX wire format does; when true, v2 section payloads are
// bulk-copied (and memory-mapped) without per-element decoding.
var isLittleEndian = func() bool {
	x := uint16(1)
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// rowsBytes returns the raw little-endian byte view of a Row slice. Only
// valid on little-endian hosts, where the in-memory layout is the v2
// wire layout.
func rowsBytes(rows []Row) []byte {
	if len(rows) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&rows[0])), rowMemBytes*len(rows))
}

// u32sBytes returns the raw little-endian byte view of a uint32 slice.
// Only valid on little-endian hosts.
func u32sBytes(vs []uint32) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 4*len(vs))
}

// f64sBytes returns the raw little-endian byte view of a float64 slice.
// Only valid on little-endian hosts.
func f64sBytes(vs []float64) []byte {
	if len(vs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&vs[0])), 8*len(vs))
}

// sectionElemBytes[i] is the wire size of one element of section i:
// rows, offsets, ids, perm, precs.
var sectionElemBytes = [sectionTableEntries]int64{rowWireBytes, 4, 4, 4, 8}

// countWriter counts the bytes the underlying writer actually accepted,
// so WriteTo can report a faithful running total on mid-stream errors.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	cr.n += int64(n)
	return n, err
}

// indexEncoder writes the fixed-layout wire fields with a sticky error,
// avoiding reflection-based binary.Write in the hot per-row loop. The
// byte layout is identical to encoding each field with binary.Write.
type indexEncoder struct {
	cw  *crcWriter
	err error
}

func (e *indexEncoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.cw.Write(b)
}

func (e *indexEncoder) u8(v uint8) { e.write([]byte{v}) }

func (e *indexEncoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

func (e *indexEncoder) u64(v uint64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], v)
	e.write(b[:])
}

func (e *indexEncoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

func (e *indexEncoder) str(s string) {
	e.u32(uint32(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.cw, s)
	}
}

// rows encodes the row records in the 16-byte v2 layout through a
// reusable fixed buffer; on little-endian hosts the records are the
// in-memory bytes and are written directly.
func (e *indexEncoder) rows(rows []Row) {
	if isLittleEndian {
		e.write(rowsBytes(rows))
		return
	}
	var b [rowWireBytes]byte
	le := binary.LittleEndian
	for i := range rows {
		if e.err != nil {
			return
		}
		r := &rows[i]
		le.PutUint64(b[0:8], math.Float64bits(r.Precursor))
		le.PutUint32(b[8:12], r.Peptide)
		le.PutUint16(b[12:14], r.NumIons)
		le.PutUint16(b[14:16], r.Flags)
		e.write(b[:])
	}
}

// u32s encodes a uint32 slice; bulk on little-endian hosts, otherwise in
// fixed-size chunks.
func (e *indexEncoder) u32s(vs []uint32) {
	if isLittleEndian {
		e.write(u32sBytes(vs))
		return
	}
	var b [4 << 10]byte
	le := binary.LittleEndian
	for len(vs) > 0 && e.err == nil {
		n := min(len(vs), len(b)/4)
		for i := 0; i < n; i++ {
			le.PutUint32(b[4*i:], vs[i])
		}
		e.write(b[:4*n])
		vs = vs[n:]
	}
}

// f64s encodes a float64 slice; bulk on little-endian hosts, otherwise in
// fixed-size chunks.
func (e *indexEncoder) f64s(vs []float64) {
	if isLittleEndian {
		e.write(f64sBytes(vs))
		return
	}
	var b [4 << 10]byte
	le := binary.LittleEndian
	for len(vs) > 0 && e.err == nil {
		n := min(len(vs), len(b)/8)
		for i := 0; i < n; i++ {
			le.PutUint64(b[8*i:], math.Float64bits(vs[i]))
		}
		e.write(b[:8*n])
		vs = vs[n:]
	}
}

// pad writes n zero bytes.
func (e *indexEncoder) pad(n int64) {
	var zeros [sectionAlign]byte
	for n > 0 && e.err == nil {
		take := min(n, int64(len(zeros)))
		e.write(zeros[:take])
		n -= take
	}
}

// params encodes the params block (identical field order in v1 and v2).
func (e *indexEncoder) params(p Params) {
	e.f64(p.Resolution)
	e.f64(p.FragmentTol.Value)
	e.u8(uint8(p.FragmentTol.Unit))
	e.f64(p.PrecursorTol.Value)
	e.u8(uint8(p.PrecursorTol.Unit))
	e.u32(uint32(p.MinSharedPeaks))
	e.u32(uint32(p.MaxQueryPeaks))
	e.f64(p.MaxFragmentMZ)
	e.u32(uint32(p.Mods.MaxPerPep))
	e.u32(uint32(p.Mods.MaxVariant))
	e.u32(uint32(len(p.Mods.Mods)))
	e.u32(uint32(len(p.IonSeries)))
	for _, k := range p.IonSeries {
		e.u8(uint8(k))
	}
	for _, m := range p.Mods.Mods {
		e.str(m.Name)
		e.str(m.Residues)
		e.f64(m.Delta)
	}
}

// checkEncodable rejects an index whose counts exceed the decoder caps,
// so WriteTo can never persist a stream ReadIndex refuses (or, past
// uint32, silently truncates).
func (ix *Index) checkEncodable() error {
	if len(ix.rows) > maxRowCount {
		return fmt.Errorf("slm: %d rows exceed the serializable cap %d", len(ix.rows), maxRowCount)
	}
	if ix.numBuckets > maxBucketCount || len(ix.offsets) > maxBucketCount+1 {
		return fmt.Errorf("slm: %d buckets exceed the serializable cap %d", ix.numBuckets, maxBucketCount)
	}
	if len(ix.ids) > maxPostingCount {
		return fmt.Errorf("slm: %d postings exceed the serializable cap %d", len(ix.ids), maxPostingCount)
	}
	p := ix.params
	if len(p.Mods.Mods) > maxModCount {
		return fmt.Errorf("slm: %d mods exceed the serializable cap %d", len(p.Mods.Mods), maxModCount)
	}
	if len(p.IonSeries) > maxSeriesCount {
		return fmt.Errorf("slm: %d ion series exceed the serializable cap %d", len(p.IonSeries), maxSeriesCount)
	}
	for _, m := range p.Mods.Mods {
		if len(m.Name) > maxStringLen || len(m.Residues) > maxStringLen {
			return fmt.Errorf("slm: mod %q has a string over the serializable cap %d", m.Name, maxStringLen)
		}
	}
	return nil
}

// sectionLayout is the computed file geometry: canonical aligned section
// offsets derived from the header size. Only the first nsecs entries of
// offs are meaningful for a v2 file.
type sectionLayout struct {
	offs [sectionTableEntries]int64
	end  int64 // total file size
}

// alignUp rounds n up to the next multiple of sectionAlign.
func alignUp(n int64) int64 {
	return (n + sectionAlign - 1) &^ (sectionAlign - 1)
}

// fileLayout derives the canonical section offsets for an index whose
// header (magic through header CRC) spans headerLen bytes and whose first
// nsecs sections hold counts[i] elements each.
func fileLayout(nsecs int, headerLen int64, counts []int64) sectionLayout {
	var l sectionLayout
	off := headerLen
	for i := 0; i < nsecs; i++ {
		off = alignUp(off)
		l.offs[i] = off
		off += sectionElemBytes[i] * counts[i]
	}
	l.end = off
	return l
}

// paramsBlockLen returns the encoded byte length of the params block.
func paramsBlockLen(p Params) int64 {
	n := int64(8 + 8 + 1 + 8 + 1 + 4 + 4 + 8 + 4 + 4 + 4 + 4)
	n += int64(len(p.IonSeries))
	for _, m := range p.Mods.Mods {
		n += 4 + int64(len(m.Name)) + 4 + int64(len(m.Residues)) + 8
	}
	return n
}

// sectionCRC computes the CRC an encoder pass produces for one section's
// payload without retaining it: the section is streamed into a discard
// writer through the same encoder used for the real write.
func sectionCRC(fill func(e *indexEncoder)) (uint32, error) {
	cw := &crcWriter{w: io.Discard}
	e := &indexEncoder{cw: cw}
	fill(e)
	return cw.crc, e.err
}

// legacyIDs reconstructs the v2 postings array: raw row ids, each
// bucket's list ascending — the exact bytes the v2 encoder produced for
// the same build, so a v2 round trip is lossless.
func (ix *Index) legacyIDs() []uint32 {
	ids := make([]uint32, len(ix.ids))
	for i, srid := range ix.ids {
		ids[i] = ix.perm[srid]
	}
	for b := 0; b < ix.numBuckets; b++ {
		slices.Sort(ids[ix.offsets[b]:ix.offsets[b+1]])
	}
	return ids
}

// WriteTo serializes the index in the v3 section-table format. It
// implements io.WriterTo: on error it returns the number of bytes the
// underlying writer actually accepted before the failure, not zero.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	return ix.writeTo(w, indexVersion)
}

// WriteToVersion serializes the index in an older SLMX format version so
// compatibility fixtures and downgrade tooling can produce stores older
// readers accept: version 2 emits the three-section layout with postings
// holding raw row ids (re-reading it derives the identical precursor
// order back); version 3 is WriteTo.
func (ix *Index) WriteToVersion(w io.Writer, version uint32) (int64, error) {
	if version != indexVersion && version != indexVersionV2 {
		return 0, fmt.Errorf("slm: cannot write index version %d (want %d or %d)",
			version, indexVersion, indexVersionV2)
	}
	return ix.writeTo(w, version)
}

func (ix *Index) writeTo(w io.Writer, version uint32) (int64, error) {
	// A mapped index defers content validation; run it before
	// re-encoding, or a corrupt mapping would be rewritten under fresh
	// CRCs that bless the corruption.
	if err := ix.Verify(); err != nil {
		return 0, err
	}
	if err := ix.checkEncodable(); err != nil {
		return 0, err
	}
	nsecs := sectionTableEntries
	ids := ix.ids
	if version == indexVersionV2 {
		nsecs = sectionTableEntriesV2
		ids = ix.legacyIDs()
	}
	fills := [sectionTableEntries]func(e *indexEncoder){
		func(e *indexEncoder) { e.rows(ix.rows) },
		func(e *indexEncoder) { e.u32s(ix.offsets) },
		func(e *indexEncoder) { e.u32s(ids) },
		func(e *indexEncoder) { e.u32s(ix.perm) },
		func(e *indexEncoder) { e.f64s(ix.precs) },
	}
	counts := [sectionTableEntries]int64{
		int64(len(ix.rows)), int64(len(ix.offsets)), int64(len(ids)),
		int64(len(ix.perm)), int64(len(ix.precs)),
	}
	headerLen := int64(len(indexMagic)) + 4 + paramsBlockLen(ix.params) + 4 +
		int64(nsecs)*sectionEntryBytes + 4
	layout := fileLayout(nsecs, headerLen, counts[:nsecs])

	// Pass 1: per-section CRCs (streamed, nothing buffered).
	var crcs [sectionTableEntries]uint32
	for i := 0; i < nsecs; i++ {
		crc, err := sectionCRC(fills[i])
		if err != nil {
			return 0, err
		}
		crcs[i] = crc
	}

	// Pass 2: the actual write.
	bot := &countWriter{w: w}
	bw := bufio.NewWriter(bot)
	if _, err := bw.WriteString(indexMagic); err != nil {
		bw.Flush()
		return bot.n, err
	}
	cw := &crcWriter{w: bw}
	e := &indexEncoder{cw: cw}

	e.u32(version)
	e.params(ix.params)
	e.u32(uint32(ix.numBuckets))
	for i := 0; i < nsecs; i++ {
		e.u64(uint64(layout.offs[i]))
		e.u64(uint64(counts[i]))
		e.u32(crcs[i])
	}
	e.u32(cw.crc) // header CRC: covers version..section table

	pos := func() int64 { return int64(len(indexMagic)) + cw.n }
	for i := 0; i < nsecs; i++ {
		e.pad(layout.offs[i] - pos())
		fills[i](e)
	}
	if e.err != nil {
		bw.Flush()
		return bot.n, e.err
	}
	if err := bw.Flush(); err != nil {
		return bot.n, err
	}
	if got := pos(); got != layout.end {
		return bot.n, fmt.Errorf("slm: internal: wrote %d bytes, layout says %d", got, layout.end)
	}
	return bot.n, nil
}

// inputSize reports how many unread bytes r holds when that is knowable —
// regular files and in-memory readers (bytes.Reader, bytes.Buffer,
// strings.Reader) — or -1 for opaque streams.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case *os.File:
		fi, err := v.Stat()
		if err != nil || !fi.Mode().IsRegular() {
			return -1
		}
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		if rem := fi.Size() - cur; rem >= 0 {
			return rem
		}
		return 0
	case interface{ Len() int }:
		return int64(v.Len())
	}
	return -1
}

// indexDecoder reads the wire fields, treating every length prefix as
// untrusted until a CRC verifies.
type indexDecoder struct {
	cr *crcReader
	// payload is the decoder's byte budget — the input size minus the
	// magic (and, for v1, the trailing checksum) — or -1 when the size is
	// unknown.
	payload int64
}

// remaining returns the unread payload budget, or -1 when unknown.
func (d *indexDecoder) remaining() int64 {
	if d.payload < 0 {
		return -1
	}
	if rem := d.payload - d.cr.n; rem > 0 {
		return rem
	}
	return 0
}

// sized reports whether the input size is known, enabling the bulk fast
// path: exact-size allocation and a single large read per array, instead
// of the chunked defensive copies the hostile-stream path uses.
func (d *indexDecoder) sized() bool { return d.payload >= 0 }

// checkCount validates a decoded length field before anything is
// allocated for it: n elements of elem wire bytes each must fit under the
// absolute cap and, when the input size is known, in the bytes present.
func (d *indexDecoder) checkCount(n uint64, elem int64, limit uint64, what string) error {
	if n > limit {
		return fmt.Errorf("slm: %s count %d implausible (cap %d)", what, n, limit)
	}
	if rem := d.remaining(); rem >= 0 && int64(n) > rem/elem {
		return fmt.Errorf("slm: %s count %d needs %d bytes but only %d remain (truncated or corrupt)",
			what, n, int64(n)*elem, rem)
	}
	return nil
}

func (d *indexDecoder) full(b []byte) error {
	_, err := io.ReadFull(d.cr, b)
	return err
}

func (d *indexDecoder) u8() (uint8, error) {
	var b [1]byte
	err := d.full(b[:])
	return b[0], err
}

func (d *indexDecoder) u32() (uint32, error) {
	var b [4]byte
	err := d.full(b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func (d *indexDecoder) u64() (uint64, error) {
	var b [8]byte
	err := d.full(b[:])
	return binary.LittleEndian.Uint64(b[:]), err
}

func (d *indexDecoder) f64() (float64, error) {
	var b [8]byte
	err := d.full(b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), err
}

func (d *indexDecoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if err := d.checkCount(uint64(n), 1, maxStringLen, "string byte"); err != nil {
		return "", err
	}
	// Same chunked discipline as u32s: on an unsized stream, a forged
	// length only grows the buffer as bytes actually arrive.
	const chunk = 4096
	var tmp [chunk]byte
	b := make([]byte, 0, min(int(n), chunk))
	for len(b) < int(n) {
		take := min(int(n)-len(b), chunk)
		if err := d.full(tmp[:take]); err != nil {
			return "", err
		}
		b = append(b, tmp[:take]...)
	}
	return string(b), nil
}

// discardZero consumes n bytes of v2 section padding, requiring every
// byte to be zero: padding is the one region no section CRC covers, so
// this check keeps "any flipped byte is detected" true for the whole
// file.
func (d *indexDecoder) discardZero(n int64) error {
	if n < 0 {
		return fmt.Errorf("slm: corrupt section layout")
	}
	var b [sectionAlign]byte
	for n > 0 {
		take := min(n, int64(len(b)))
		if err := d.full(b[:take]); err != nil {
			return err
		}
		for _, v := range b[:take] {
			if v != 0 {
				return fmt.Errorf("slm: nonzero section padding")
			}
		}
		n -= take
	}
	return nil
}

// u32s reads n little-endian uint32s. On sized input the output is
// allocated exactly and filled with one bulk read (zero per-element
// decoding on little-endian hosts); on an opaque stream it is read in
// fixed-size chunks, growing as bytes actually arrive, so a corrupt
// count stalls at the first short read instead of provoking one huge
// upfront allocation.
func (d *indexDecoder) u32s(n int) ([]uint32, error) {
	if isLittleEndian && d.sized() {
		out := make([]uint32, n)
		if err := d.full(u32sBytes(out)); err != nil {
			return nil, err
		}
		return out, nil
	}
	const chunkElems = (16 << 10) / 4
	var b [16 << 10]byte
	le := binary.LittleEndian
	out := make([]uint32, 0, min(n, chunkElems))
	for len(out) < n {
		take := min(n-len(out), chunkElems)
		if err := d.full(b[:4*take]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			out = append(out, le.Uint32(b[4*i:]))
		}
	}
	return out, nil
}

// f64s reads n little-endian float64s under the same allocation
// discipline as u32s: bulk on sized input, chunked on opaque streams.
func (d *indexDecoder) f64s(n int) ([]float64, error) {
	if isLittleEndian && d.sized() {
		out := make([]float64, n)
		if err := d.full(f64sBytes(out)); err != nil {
			return nil, err
		}
		return out, nil
	}
	const chunkElems = (16 << 10) / 8
	var b [16 << 10]byte
	le := binary.LittleEndian
	out := make([]float64, 0, min(n, chunkElems))
	for len(out) < n {
		take := min(n-len(out), chunkElems)
		if err := d.full(b[:8*take]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			out = append(out, math.Float64frombits(le.Uint64(b[8*i:])))
		}
	}
	return out, nil
}

// rowRecordsV1 reads n v1 15-byte row records. Sized input is decoded
// into an exactly-sized slice; opaque streams keep the chunked
// allocation discipline.
func (d *indexDecoder) rowRecordsV1(n int) ([]Row, error) {
	const chunkRows = 1024
	var b [chunkRows * rowWireBytesV1]byte
	le := binary.LittleEndian
	decode := func(rec []byte) Row {
		var flags uint16
		if rec[14] != 0 {
			flags |= rowFlagModified
		}
		return Row{
			Peptide:   le.Uint32(rec[0:4]),
			Precursor: math.Float64frombits(le.Uint64(rec[4:12])),
			NumIons:   le.Uint16(rec[12:14]),
			Flags:     flags,
		}
	}
	if d.sized() {
		out := make([]Row, n)
		for done := 0; done < n; {
			take := min(n-done, chunkRows)
			if err := d.full(b[:take*rowWireBytesV1]); err != nil {
				return nil, err
			}
			for i := 0; i < take; i++ {
				out[done+i] = decode(b[i*rowWireBytesV1:])
			}
			done += take
		}
		return out, nil
	}
	out := make([]Row, 0, min(n, chunkRows))
	for len(out) < n {
		take := min(n-len(out), chunkRows)
		if err := d.full(b[:take*rowWireBytesV1]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			out = append(out, decode(b[i*rowWireBytesV1:]))
		}
	}
	return out, nil
}

// rowRecords reads n v2 16-byte row records. On sized little-endian
// input the records are bulk-read straight into the Row array.
func (d *indexDecoder) rowRecords(n int) ([]Row, error) {
	if isLittleEndian && d.sized() {
		out := make([]Row, n)
		if err := d.full(rowsBytes(out)); err != nil {
			return nil, err
		}
		return out, nil
	}
	const chunkRows = 1024
	var b [chunkRows * rowWireBytes]byte
	le := binary.LittleEndian
	out := make([]Row, 0, min(n, chunkRows))
	for len(out) < n {
		take := min(n-len(out), chunkRows)
		if err := d.full(b[:take*rowWireBytes]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			rec := b[i*rowWireBytes:]
			out = append(out, Row{
				Precursor: math.Float64frombits(le.Uint64(rec[0:8])),
				Peptide:   le.Uint32(rec[8:12]),
				NumIons:   le.Uint16(rec[12:14]),
				Flags:     le.Uint16(rec[14:16]),
			})
		}
	}
	return out, nil
}

// readParams decodes the params block (shared by v1 and v2).
func (d *indexDecoder) readParams(p *Params) error {
	var fail error
	get := func(dst *float64) {
		if fail == nil {
			*dst, fail = d.f64()
		}
	}
	getU32 := func() uint32 {
		var v uint32
		if fail == nil {
			v, fail = d.u32()
		}
		return v
	}
	getU8 := func() uint8 {
		var v uint8
		if fail == nil {
			v, fail = d.u8()
		}
		return v
	}

	get(&p.Resolution)
	get(&p.FragmentTol.Value)
	p.FragmentTol.Unit = mass.ToleranceUnit(getU8())
	get(&p.PrecursorTol.Value)
	p.PrecursorTol.Unit = mass.ToleranceUnit(getU8())
	p.MinSharedPeaks = int(getU32())
	p.MaxQueryPeaks = int(getU32())
	get(&p.MaxFragmentMZ)
	p.Mods.MaxPerPep = int(getU32())
	p.Mods.MaxVariant = int(getU32())
	nmods := getU32()
	nseries := getU32()
	if fail != nil {
		return fail
	}
	if err := d.checkCount(uint64(nmods), 16, maxModCount, "mod"); err != nil {
		return err
	}
	if err := d.checkCount(uint64(nseries), 1, maxSeriesCount, "ion series"); err != nil {
		return err
	}
	for i := uint32(0); i < nseries; i++ {
		k, err := d.u8()
		if err != nil {
			return err
		}
		p.IonSeries = append(p.IonSeries, spectrum.IonKind(k))
	}
	for i := uint32(0); i < nmods; i++ {
		var m mods.Mod
		var err error
		if m.Name, err = d.str(); err != nil {
			return err
		}
		if m.Residues, err = d.str(); err != nil {
			return err
		}
		if m.Delta, err = d.f64(); err != nil {
			return err
		}
		p.Mods.Mods = append(p.Mods.Mods, m)
	}
	return nil
}

// validateShape runs the cross-array sanity checks shared by every
// decode path: monotone offsets ending at the posting count, in-range
// postings, sane row precursors — and, when the precursor-order columns
// are present (v3 files; derived columns are correct by construction),
// their own invariants: perm a true permutation, precs ascending and
// agreeing with the rows, every bucket's posting list sorted. The
// windowed scan trusts all of these, so a corrupt file claiming them
// must be rejected here rather than silently dropping matches.
func (ix *Index) validateShape() error {
	for i := 1; i < len(ix.offsets); i++ {
		if ix.offsets[i] < ix.offsets[i-1] {
			return fmt.Errorf("slm: corrupt offsets at %d", i)
		}
	}
	if len(ix.offsets) > 0 && ix.offsets[len(ix.offsets)-1] != uint32(len(ix.ids)) {
		return fmt.Errorf("slm: offsets end %d != %d postings", ix.offsets[len(ix.offsets)-1], len(ix.ids))
	}
	for i, v := range ix.ids {
		if v >= uint32(len(ix.rows)) {
			return fmt.Errorf("slm: posting %d references row %d of %d", i, v, len(ix.rows))
		}
	}
	for _, r := range ix.rows {
		if math.IsNaN(r.Precursor) || r.Precursor < 0 {
			return fmt.Errorf("slm: corrupt row precursor")
		}
	}
	if ix.perm == nil && ix.precs == nil {
		return nil // pre-v3 decode: the columns are derived after this check
	}
	if len(ix.perm) != len(ix.rows) || len(ix.precs) != len(ix.rows) {
		return fmt.Errorf("slm: precursor-order columns of %d/%d entries do not match %d rows",
			len(ix.perm), len(ix.precs), len(ix.rows))
	}
	seen := make([]bool, len(ix.perm))
	for s, o := range ix.perm {
		if int(o) >= len(seen) || seen[o] {
			return fmt.Errorf("slm: perm is not a permutation at %d", s)
		}
		seen[o] = true
		if ix.rows[o].Precursor != ix.precs[s] {
			return fmt.Errorf("slm: precursor column disagrees with row %d", o)
		}
	}
	for i := 1; i < len(ix.precs); i++ {
		if ix.precs[i] < ix.precs[i-1] {
			return fmt.Errorf("slm: precursor column not monotone at %d", i)
		}
	}
	for b := 0; b < ix.numBuckets; b++ {
		for i := ix.offsets[b] + 1; i < ix.offsets[b+1]; i++ {
			if ix.ids[i] < ix.ids[i-1] {
				return fmt.Errorf("slm: bucket %d posting list not sorted", b)
			}
		}
	}
	return nil
}

// sectionEntry is one decoded section-table record.
type sectionEntry struct {
	off   uint64
	count uint64
	crc   uint32
}

// fileHeader is the decoded v2/v3 header: everything before the first
// data section.
type fileHeader struct {
	version    uint32
	params     Params
	numBuckets uint32
	secs       []sectionEntry // rows, offsets, ids[, perm, precs]
	headerLen  int64          // magic through header CRC
}

// readHeader decodes and validates a v2 or v3 header from d, which must
// be positioned just after the version field. The header CRC is verified
// and the section table checked against the canonical layout: ordered,
// 64-byte aligned, non-overlapping offsets derived from the header size,
// with counts under the absolute caps (and the input size when known).
// For v3, the perm and precs sections must hold exactly one entry per
// row. All of this is O(header) — no section byte is touched — so a
// mapped open stays cheap.
func readHeader(d *indexDecoder, version uint32) (*fileHeader, error) {
	nsecs := sectionTableEntries
	if version == indexVersionV2 {
		nsecs = sectionTableEntriesV2
	}
	h := &fileHeader{version: version, secs: make([]sectionEntry, nsecs)}
	if err := d.readParams(&h.params); err != nil {
		return nil, err
	}
	var fail error
	if h.numBuckets, fail = d.u32(); fail != nil {
		return nil, fail
	}
	for i := range h.secs {
		s := &h.secs[i]
		if s.off, fail = d.u64(); fail != nil {
			return nil, fail
		}
		if s.count, fail = d.u64(); fail != nil {
			return nil, fail
		}
		if s.crc, fail = d.u32(); fail != nil {
			return nil, fail
		}
	}
	want := d.cr.crc
	got, err := d.u32()
	if err != nil {
		return nil, err
	}
	if got != want {
		return nil, fmt.Errorf("slm: header checksum mismatch: file %08x, computed %08x", got, want)
	}
	h.headerLen = int64(len(indexMagic)) + d.cr.n

	rows, offs, ids := h.secs[0], h.secs[1], h.secs[2]
	if err := d.checkCount(rows.count, rowWireBytes, maxRowCount, "row"); err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(h.numBuckets), 4, maxBucketCount, "bucket"); err != nil {
		return nil, err
	}
	if offs.count != uint64(h.numBuckets)+1 && !(h.numBuckets == 0 && offs.count <= 1) {
		return nil, fmt.Errorf("slm: offsets length %d does not match %d buckets", offs.count, h.numBuckets)
	}
	if err := d.checkCount(offs.count, 4, maxBucketCount+1, "offset"); err != nil {
		return nil, err
	}
	if err := d.checkCount(ids.count, postingWireBytes, maxPostingCount, "posting"); err != nil {
		return nil, err
	}
	if nsecs > sectionTableEntriesV2 {
		perm, precs := h.secs[3], h.secs[4]
		if perm.count != rows.count || precs.count != rows.count {
			return nil, fmt.Errorf("slm: precursor-order sections of %d/%d entries do not match %d rows",
				perm.count, precs.count, rows.count)
		}
		if err := d.checkCount(perm.count, 4, maxRowCount, "perm"); err != nil {
			return nil, err
		}
		if err := d.checkCount(precs.count, 8, maxRowCount, "precursor"); err != nil {
			return nil, err
		}
	}
	counts := make([]int64, nsecs)
	for i, s := range h.secs {
		counts[i] = int64(s.count)
	}
	layout := fileLayout(nsecs, h.headerLen, counts)
	for i, s := range h.secs {
		if int64(s.off) != layout.offs[i] {
			return nil, fmt.Errorf("slm: section %d at offset %d, canonical layout says %d (overlapping, misordered or misaligned sections)",
				i, s.off, layout.offs[i])
		}
	}
	if rem := d.remaining(); rem >= 0 && layout.end-h.headerLen > rem {
		return nil, fmt.Errorf("slm: sections need %d bytes but only %d remain (truncated or corrupt)",
			layout.end-h.headerLen, rem)
	}
	return h, nil
}

// readIndexBody decodes a v2 or v3 body from a stream already past the
// version field: header, then each aligned section in file order with its
// CRC verified as it streams by. A v2 body derives the precursor-order
// columns after validation, so the returned index always serves the
// windowed scan.
func readIndexBody(d *indexDecoder, version uint32) (*Index, error) {
	h, err := readHeader(d, version)
	if err != nil {
		return nil, err
	}
	ix := &Index{params: h.params, numBuckets: int(h.numBuckets)}

	pos := func() int64 { return int64(len(indexMagic)) + d.cr.n }

	// Sections stream in file order. Each one's CRC must cover exactly
	// its payload bytes, so the typed readers run through a dedicated
	// section-scoped checksum reader that is reset at each section start.
	sec := &crcReader{r: d.cr}
	sd := &indexDecoder{cr: sec, payload: -1}
	nextSection := func(entry sectionEntry) error {
		if err := d.discardZero(int64(entry.off) - pos()); err != nil {
			return err
		}
		sec.crc = 0
		if d.sized() {
			sd.payload = sec.n + d.remaining()
		}
		return nil
	}
	checkSection := func(entry sectionEntry, what string) error {
		if sec.crc != entry.crc {
			return fmt.Errorf("slm: %s section checksum mismatch: file %08x, computed %08x", what, entry.crc, sec.crc)
		}
		return nil
	}
	section := func(i int, what string, read func(count int) error) error {
		if err := nextSection(h.secs[i]); err != nil {
			return err
		}
		if err := read(int(h.secs[i].count)); err != nil {
			return err
		}
		return checkSection(h.secs[i], what)
	}

	if err := section(0, "rows", func(n int) (err error) {
		ix.rows, err = sd.rowRecords(n)
		return
	}); err != nil {
		return nil, err
	}
	if err := section(1, "offsets", func(n int) (err error) {
		ix.offsets, err = sd.u32s(n)
		return
	}); err != nil {
		return nil, err
	}
	if err := section(2, "ids", func(n int) (err error) {
		ix.ids, err = sd.u32s(n)
		return
	}); err != nil {
		return nil, err
	}
	if version >= indexVersion {
		if err := section(3, "perm", func(n int) (err error) {
			ix.perm, err = sd.u32s(n)
			return
		}); err != nil {
			return nil, err
		}
		if err := section(4, "precs", func(n int) (err error) {
			ix.precs, err = sd.f64s(n)
			return
		}); err != nil {
			return nil, err
		}
	}

	if err := ix.validateShape(); err != nil {
		return nil, err
	}
	if version < indexVersion {
		ix.sortByPrecursor()
	}
	ix.buildPeak = ix.MemoryBytes()
	return ix, nil
}

// readIndexV1 decodes the legacy v1 body (count-prefixed arrays, single
// trailing CRC) from a stream already past the version field.
func readIndexV1(d *indexDecoder, br io.Reader) (*Index, error) {
	ix := &Index{}
	if err := d.readParams(&ix.params); err != nil {
		return nil, err
	}

	nrows, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(nrows), rowWireBytesV1, maxRowCount, "row"); err != nil {
		return nil, err
	}
	if ix.rows, err = d.rowRecordsV1(int(nrows)); err != nil {
		return nil, err
	}

	numBuckets, err := d.u32()
	if err != nil {
		return nil, err
	}
	noffsets, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(numBuckets), 4, maxBucketCount, "bucket"); err != nil {
		return nil, err
	}
	if noffsets != numBuckets+1 && !(numBuckets == 0 && noffsets <= 1) {
		return nil, fmt.Errorf("slm: offsets length %d does not match %d buckets", noffsets, numBuckets)
	}
	if err := d.checkCount(uint64(noffsets), 4, maxBucketCount+1, "offset"); err != nil {
		return nil, err
	}
	ix.numBuckets = int(numBuckets)
	if ix.offsets, err = d.u32s(int(noffsets)); err != nil {
		return nil, err
	}
	nids, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(nids), postingWireBytes, maxPostingCount, "posting"); err != nil {
		return nil, err
	}
	if ix.ids, err = d.u32s(int(nids)); err != nil {
		return nil, err
	}

	want := d.cr.crc
	var gotb [4]byte
	if _, err := io.ReadFull(br, gotb[:]); err != nil {
		return nil, fmt.Errorf("slm: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(gotb[:]); got != want {
		return nil, fmt.Errorf("slm: checksum mismatch: file %08x, computed %08x", got, want)
	}
	if err := ix.validateShape(); err != nil {
		return nil, err
	}
	ix.sortByPrecursor()
	ix.buildPeak = ix.MemoryBytes()
	return ix, nil
}

// ReadIndex deserializes an index written by WriteTo (v3), by a v2
// writer, or by the v1 writer, verifying checksums and the format
// version. Pre-v3 inputs derive the precursor-mass order at load time,
// so every returned index serves the windowed scan. Length fields are
// bounded against both absolute caps and (when r's size is knowable) the
// input size, so a truncated or corrupted file can never force an
// allocation larger than a small multiple of the bytes actually present.
// Sized, trusted input (regular files, in-memory readers) additionally
// takes a bulk fast path: arrays are allocated exactly once and filled
// with single large reads instead of chunked defensive copies.
func ReadIndex(r io.Reader) (*Index, error) {
	size := inputSize(r) // before bufio wraps r and reads ahead
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slm: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("slm: bad magic %q", magic)
	}
	d := &indexDecoder{cr: &crcReader{r: br}, payload: -1}

	version, err := d.u32()
	if err != nil {
		return nil, err
	}
	switch version {
	case indexVersion, indexVersionV2:
		if size >= 0 {
			d.payload = size - int64(len(indexMagic))
		}
		return readIndexBody(d, version)
	case indexVersionV1:
		if size >= 0 {
			// Budget for the CRC-covered payload: total minus magic and
			// the trailing checksum.
			if size < int64(len(indexMagic))+4 {
				return nil, fmt.Errorf("slm: input of %d bytes is too short for an index", size)
			}
			d.payload = size - int64(len(indexMagic)) - 4
		}
		return readIndexV1(d, br)
	default:
		return nil, fmt.Errorf("slm: unsupported index version %d (want %d, %d or %d)",
			version, indexVersion, indexVersionV2, indexVersionV1)
	}
}

// SaveFile writes the index to the named file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from the named file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}
