package slm

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Binary index format ("SLMX"): the paper's shared-memory design stores
// index chunks on disk when not in use (§II-B); this file gives the index
// a compact, checksummed serialization so partial indexes can be spilled
// and reloaded.
//
// Layout (little-endian):
//
//	magic "SLMX" | version u32 | params block | rows | offsets | ids | crc32
//
// The CRC covers everything between the magic and the checksum itself.
//
// Every variable-length section is preceded by a u32 count. Counts come
// from the (not yet checksum-verified) input, so the reader treats them as
// hostile: each is bounded by an absolute cap AND, when the input's size
// is knowable (regular files, in-memory readers), by the bytes actually
// present; array payloads are then read in fixed-size chunks so the
// decoder never allocates more than a small multiple of the bytes it has
// actually consumed, even on a pure stream.

const (
	indexMagic   = "SLMX"
	indexVersion = 1

	// Wire sizes of the variable-length record types.
	rowWireBytes     = 4 + 8 + 2 + 1 // Peptide u32, Precursor f64, NumIons u16, Modified u8
	postingWireBytes = 4

	// Absolute sanity caps on count fields, enforced before any
	// allocation. They bound a single shard file at sizes far beyond the
	// paper's full 49.45M-spectra run while keeping the worst-case
	// allocation from a corrupt count on an unsized stream in check.
	maxStringLen    = 1 << 20
	maxModCount     = 1 << 16
	maxSeriesCount  = 16
	maxRowCount     = 1 << 28
	maxBucketCount  = 1 << 30
	maxPostingCount = 1 << 30
)

// countWriter counts the bytes the underlying writer actually accepted,
// so WriteTo can report a faithful running total on mid-stream errors.
type countWriter struct {
	w io.Writer
	n int64
}

func (cw *countWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.n += int64(n)
	return n, err
}

type crcWriter struct {
	w   io.Writer
	crc uint32
	n   int64
}

func (cw *crcWriter) Write(p []byte) (int, error) {
	n, err := cw.w.Write(p)
	cw.crc = crc32.Update(cw.crc, crc32.IEEETable, p[:n])
	cw.n += int64(n)
	return n, err
}

type crcReader struct {
	r   io.Reader
	crc uint32
	n   int64
}

func (cr *crcReader) Read(p []byte) (int, error) {
	n, err := cr.r.Read(p)
	cr.crc = crc32.Update(cr.crc, crc32.IEEETable, p[:n])
	cr.n += int64(n)
	return n, err
}

// indexEncoder writes the fixed-layout wire fields with a sticky error,
// avoiding reflection-based binary.Write in the hot per-row loop. The
// byte layout is identical to encoding each field with binary.Write.
type indexEncoder struct {
	cw  *crcWriter
	err error
}

func (e *indexEncoder) write(b []byte) {
	if e.err != nil {
		return
	}
	_, e.err = e.cw.Write(b)
}

func (e *indexEncoder) u8(v uint8) { e.write([]byte{v}) }

func (e *indexEncoder) u32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	e.write(b[:])
}

func (e *indexEncoder) f64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], math.Float64bits(v))
	e.write(b[:])
}

func (e *indexEncoder) str(s string) {
	e.u32(uint32(len(s)))
	if e.err == nil {
		_, e.err = io.WriteString(e.cw, s)
	}
}

// rows encodes the row records through a reusable fixed-layout buffer.
func (e *indexEncoder) rows(rows []Row) {
	var b [rowWireBytes]byte
	le := binary.LittleEndian
	for i := range rows {
		if e.err != nil {
			return
		}
		r := &rows[i]
		le.PutUint32(b[0:4], r.Peptide)
		le.PutUint64(b[4:12], math.Float64bits(r.Precursor))
		le.PutUint16(b[12:14], r.NumIons)
		b[14] = 0
		if r.Modified {
			b[14] = 1
		}
		e.write(b[:])
	}
}

// u32s encodes a uint32 slice in fixed-size chunks.
func (e *indexEncoder) u32s(vs []uint32) {
	var b [4 << 10]byte
	le := binary.LittleEndian
	for len(vs) > 0 && e.err == nil {
		n := min(len(vs), len(b)/4)
		for i := 0; i < n; i++ {
			le.PutUint32(b[4*i:], vs[i])
		}
		e.write(b[:4*n])
		vs = vs[n:]
	}
}

// checkEncodable rejects an index whose counts exceed the decoder caps,
// so WriteTo can never persist a stream ReadIndex refuses (or, past
// uint32, silently truncates).
func (ix *Index) checkEncodable() error {
	if len(ix.rows) > maxRowCount {
		return fmt.Errorf("slm: %d rows exceed the serializable cap %d", len(ix.rows), maxRowCount)
	}
	if ix.numBuckets > maxBucketCount || len(ix.offsets) > maxBucketCount+1 {
		return fmt.Errorf("slm: %d buckets exceed the serializable cap %d", ix.numBuckets, maxBucketCount)
	}
	if len(ix.ids) > maxPostingCount {
		return fmt.Errorf("slm: %d postings exceed the serializable cap %d", len(ix.ids), maxPostingCount)
	}
	p := ix.params
	if len(p.Mods.Mods) > maxModCount {
		return fmt.Errorf("slm: %d mods exceed the serializable cap %d", len(p.Mods.Mods), maxModCount)
	}
	if len(p.IonSeries) > maxSeriesCount {
		return fmt.Errorf("slm: %d ion series exceed the serializable cap %d", len(p.IonSeries), maxSeriesCount)
	}
	for _, m := range p.Mods.Mods {
		if len(m.Name) > maxStringLen || len(m.Residues) > maxStringLen {
			return fmt.Errorf("slm: mod %q has a string over the serializable cap %d", m.Name, maxStringLen)
		}
	}
	return nil
}

// WriteTo serializes the index. It implements io.WriterTo: on error it
// returns the number of bytes the underlying writer actually accepted
// before the failure, not zero.
func (ix *Index) WriteTo(w io.Writer) (int64, error) {
	if err := ix.checkEncodable(); err != nil {
		return 0, err
	}
	bot := &countWriter{w: w}
	bw := bufio.NewWriter(bot)
	if _, err := bw.WriteString(indexMagic); err != nil {
		return bot.n, err
	}
	cw := &crcWriter{w: bw}
	e := &indexEncoder{cw: cw}

	p := ix.params
	e.u32(indexVersion)
	e.f64(p.Resolution)
	e.f64(p.FragmentTol.Value)
	e.u8(uint8(p.FragmentTol.Unit))
	e.f64(p.PrecursorTol.Value)
	e.u8(uint8(p.PrecursorTol.Unit))
	e.u32(uint32(p.MinSharedPeaks))
	e.u32(uint32(p.MaxQueryPeaks))
	e.f64(p.MaxFragmentMZ)
	e.u32(uint32(p.Mods.MaxPerPep))
	e.u32(uint32(p.Mods.MaxVariant))
	e.u32(uint32(len(p.Mods.Mods)))
	e.u32(uint32(len(p.IonSeries)))
	for _, k := range p.IonSeries {
		e.u8(uint8(k))
	}
	for _, m := range p.Mods.Mods {
		e.str(m.Name)
		e.str(m.Residues)
		e.f64(m.Delta)
	}

	e.u32(uint32(len(ix.rows)))
	e.rows(ix.rows)
	e.u32(uint32(ix.numBuckets))
	e.u32(uint32(len(ix.offsets)))
	e.u32s(ix.offsets)
	e.u32(uint32(len(ix.ids)))
	e.u32s(ix.ids)
	if e.err != nil {
		return bot.n, e.err
	}

	var tail [4]byte
	binary.LittleEndian.PutUint32(tail[:], cw.crc)
	if _, err := bw.Write(tail[:]); err != nil {
		return bot.n, err
	}
	if err := bw.Flush(); err != nil {
		return bot.n, err
	}
	return bot.n, nil
}

// inputSize reports how many unread bytes r holds when that is knowable —
// regular files and in-memory readers (bytes.Reader, bytes.Buffer,
// strings.Reader) — or -1 for opaque streams.
func inputSize(r io.Reader) int64 {
	switch v := r.(type) {
	case *os.File:
		fi, err := v.Stat()
		if err != nil || !fi.Mode().IsRegular() {
			return -1
		}
		cur, err := v.Seek(0, io.SeekCurrent)
		if err != nil {
			return -1
		}
		if rem := fi.Size() - cur; rem >= 0 {
			return rem
		}
		return 0
	case interface{ Len() int }:
		return int64(v.Len())
	}
	return -1
}

// indexDecoder reads the wire fields, treating every length prefix as
// untrusted until the trailing CRC verifies.
type indexDecoder struct {
	cr *crcReader
	// payload is the decoder's byte budget — the input size minus the
	// magic and the trailing checksum — or -1 when the size is unknown.
	payload int64
}

// remaining returns the unread payload budget, or -1 when unknown.
func (d *indexDecoder) remaining() int64 {
	if d.payload < 0 {
		return -1
	}
	if rem := d.payload - d.cr.n; rem > 0 {
		return rem
	}
	return 0
}

// checkCount validates a decoded length field before anything is
// allocated for it: n elements of elem wire bytes each must fit under the
// absolute cap and, when the input size is known, in the bytes present.
func (d *indexDecoder) checkCount(n uint64, elem int64, limit uint64, what string) error {
	if n > limit {
		return fmt.Errorf("slm: %s count %d implausible (cap %d)", what, n, limit)
	}
	if rem := d.remaining(); rem >= 0 && int64(n) > rem/elem {
		return fmt.Errorf("slm: %s count %d needs %d bytes but only %d remain (truncated or corrupt)",
			what, n, int64(n)*elem, rem)
	}
	return nil
}

func (d *indexDecoder) full(b []byte) error {
	_, err := io.ReadFull(d.cr, b)
	return err
}

func (d *indexDecoder) u8() (uint8, error) {
	var b [1]byte
	err := d.full(b[:])
	return b[0], err
}

func (d *indexDecoder) u32() (uint32, error) {
	var b [4]byte
	err := d.full(b[:])
	return binary.LittleEndian.Uint32(b[:]), err
}

func (d *indexDecoder) f64() (float64, error) {
	var b [8]byte
	err := d.full(b[:])
	return math.Float64frombits(binary.LittleEndian.Uint64(b[:])), err
}

func (d *indexDecoder) str() (string, error) {
	n, err := d.u32()
	if err != nil {
		return "", err
	}
	if err := d.checkCount(uint64(n), 1, maxStringLen, "string byte"); err != nil {
		return "", err
	}
	// Same chunked discipline as u32s: on an unsized stream, a forged
	// length only grows the buffer as bytes actually arrive.
	const chunk = 4096
	var tmp [chunk]byte
	b := make([]byte, 0, min(int(n), chunk))
	for len(b) < int(n) {
		take := min(int(n)-len(b), chunk)
		if err := d.full(tmp[:take]); err != nil {
			return "", err
		}
		b = append(b, tmp[:take]...)
	}
	return string(b), nil
}

// u32s reads n little-endian uint32s in fixed-size chunks, growing the
// output as bytes actually arrive: a corrupt count on an unsized stream
// stalls at the first short read instead of provoking one huge upfront
// allocation.
func (d *indexDecoder) u32s(n int) ([]uint32, error) {
	const chunkElems = (16 << 10) / 4
	var b [16 << 10]byte
	le := binary.LittleEndian
	out := make([]uint32, 0, min(n, chunkElems))
	for len(out) < n {
		take := min(n-len(out), chunkElems)
		if err := d.full(b[:4*take]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			out = append(out, le.Uint32(b[4*i:]))
		}
	}
	return out, nil
}

// rowRecords reads n fixed-layout row records with the same chunked
// allocation discipline as u32s.
func (d *indexDecoder) rowRecords(n int) ([]Row, error) {
	const chunkRows = 1024
	var b [chunkRows * rowWireBytes]byte
	le := binary.LittleEndian
	out := make([]Row, 0, min(n, chunkRows))
	for len(out) < n {
		take := min(n-len(out), chunkRows)
		if err := d.full(b[:take*rowWireBytes]); err != nil {
			return nil, err
		}
		for i := 0; i < take; i++ {
			rec := b[i*rowWireBytes:]
			out = append(out, Row{
				Peptide:   le.Uint32(rec[0:4]),
				Precursor: math.Float64frombits(le.Uint64(rec[4:12])),
				NumIons:   le.Uint16(rec[12:14]),
				Modified:  rec[14] != 0,
			})
		}
	}
	return out, nil
}

// ReadIndex deserializes an index written by WriteTo, verifying the
// checksum and format version. Length fields are bounded against both
// absolute caps and (when r's size is knowable) the input size, so a
// truncated or corrupted file can never force an allocation larger than
// a small multiple of the bytes actually present.
func ReadIndex(r io.Reader) (*Index, error) {
	size := inputSize(r) // before bufio wraps r and reads ahead
	br := bufio.NewReader(r)
	magic := make([]byte, len(indexMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("slm: reading magic: %w", err)
	}
	if string(magic) != indexMagic {
		return nil, fmt.Errorf("slm: bad magic %q", magic)
	}
	d := &indexDecoder{cr: &crcReader{r: br}, payload: -1}
	if size >= 0 {
		// Budget for the CRC-covered payload: total minus magic and the
		// trailing checksum.
		if size < int64(len(indexMagic))+4 {
			return nil, fmt.Errorf("slm: input of %d bytes is too short for an index", size)
		}
		d.payload = size - int64(len(indexMagic)) - 4
	}

	version, err := d.u32()
	if err != nil {
		return nil, err
	}
	if version != indexVersion {
		return nil, fmt.Errorf("slm: unsupported index version %d (want %d)", version, indexVersion)
	}

	ix := &Index{}
	p := &ix.params
	var fail error
	get := func(dst *float64) {
		if fail == nil {
			*dst, fail = d.f64()
		}
	}
	getU32 := func() uint32 {
		var v uint32
		if fail == nil {
			v, fail = d.u32()
		}
		return v
	}
	getU8 := func() uint8 {
		var v uint8
		if fail == nil {
			v, fail = d.u8()
		}
		return v
	}

	get(&p.Resolution)
	get(&p.FragmentTol.Value)
	p.FragmentTol.Unit = mass.ToleranceUnit(getU8())
	get(&p.PrecursorTol.Value)
	p.PrecursorTol.Unit = mass.ToleranceUnit(getU8())
	p.MinSharedPeaks = int(getU32())
	p.MaxQueryPeaks = int(getU32())
	get(&p.MaxFragmentMZ)
	p.Mods.MaxPerPep = int(getU32())
	p.Mods.MaxVariant = int(getU32())
	nmods := getU32()
	nseries := getU32()
	if fail != nil {
		return nil, fail
	}
	if err := d.checkCount(uint64(nmods), 16, maxModCount, "mod"); err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(nseries), 1, maxSeriesCount, "ion series"); err != nil {
		return nil, err
	}
	for i := uint32(0); i < nseries; i++ {
		k, err := d.u8()
		if err != nil {
			return nil, err
		}
		p.IonSeries = append(p.IonSeries, spectrum.IonKind(k))
	}
	for i := uint32(0); i < nmods; i++ {
		var m mods.Mod
		var err error
		if m.Name, err = d.str(); err != nil {
			return nil, err
		}
		if m.Residues, err = d.str(); err != nil {
			return nil, err
		}
		if m.Delta, err = d.f64(); err != nil {
			return nil, err
		}
		p.Mods.Mods = append(p.Mods.Mods, m)
	}

	nrows, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(nrows), rowWireBytes, maxRowCount, "row"); err != nil {
		return nil, err
	}
	if ix.rows, err = d.rowRecords(int(nrows)); err != nil {
		return nil, err
	}

	numBuckets := getU32()
	noffsets := getU32()
	if fail != nil {
		return nil, fail
	}
	if err := d.checkCount(uint64(numBuckets), 4, maxBucketCount, "bucket"); err != nil {
		return nil, err
	}
	if noffsets != numBuckets+1 && !(numBuckets == 0 && noffsets <= 1) {
		return nil, fmt.Errorf("slm: offsets length %d does not match %d buckets", noffsets, numBuckets)
	}
	if err := d.checkCount(uint64(noffsets), 4, maxBucketCount+1, "offset"); err != nil {
		return nil, err
	}
	ix.numBuckets = int(numBuckets)
	if ix.offsets, err = d.u32s(int(noffsets)); err != nil {
		return nil, err
	}
	nids, err := d.u32()
	if err != nil {
		return nil, err
	}
	if err := d.checkCount(uint64(nids), postingWireBytes, maxPostingCount, "posting"); err != nil {
		return nil, err
	}
	if ix.ids, err = d.u32s(int(nids)); err != nil {
		return nil, err
	}

	want := d.cr.crc
	var gotb [4]byte
	if _, err := io.ReadFull(br, gotb[:]); err != nil {
		return nil, fmt.Errorf("slm: reading checksum: %w", err)
	}
	if got := binary.LittleEndian.Uint32(gotb[:]); got != want {
		return nil, fmt.Errorf("slm: checksum mismatch: file %08x, computed %08x", got, want)
	}
	// Sanity: offsets must be monotone and end at len(ids).
	for i := 1; i < len(ix.offsets); i++ {
		if ix.offsets[i] < ix.offsets[i-1] {
			return nil, fmt.Errorf("slm: corrupt offsets at %d", i)
		}
	}
	if len(ix.offsets) > 0 && ix.offsets[len(ix.offsets)-1] != uint32(len(ix.ids)) {
		return nil, fmt.Errorf("slm: offsets end %d != %d postings", ix.offsets[len(ix.offsets)-1], len(ix.ids))
	}
	for _, r := range ix.rows {
		if math.IsNaN(r.Precursor) || r.Precursor < 0 {
			return nil, fmt.Errorf("slm: corrupt row precursor")
		}
	}
	ix.buildPeak = ix.MemoryBytes()
	return ix, nil
}

// SaveFile writes the index to the named file.
func (ix *Index) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := ix.WriteTo(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads an index from the named file.
func LoadFile(path string) (*Index, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadIndex(f)
}
