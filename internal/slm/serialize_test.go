package slm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"path/filepath"
	"runtime"
	"testing"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSerializeRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ix.NumRows() || got.NumIons() != ix.NumIons() {
		t.Fatalf("shape: %d/%d rows, %d/%d ions",
			got.NumRows(), ix.NumRows(), got.NumIons(), ix.NumIons())
	}
	// Search results must be identical.
	q := queryFor(t, "PEPTIDEK")
	a, wa := ix.Search(q, 0, nil)
	b, wb := got.Search(q, 0, nil)
	if len(a) != len(b) || wa != wb {
		t.Fatalf("results differ after round trip: %d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Params preserved, including mods.
	if got.Params().Mods.MaxPerPep != 1 || len(got.Params().Mods.Mods) != 3 {
		t.Errorf("params not preserved: %+v", got.Params().Mods)
	}
	if !got.Params().PrecursorTol.IsOpen() {
		t.Error("open precursor tolerance not preserved")
	}
}

func TestSerializeFileRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "part.slm")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemoryBytes() != ix.MemoryBytes() {
		t.Errorf("memory accounting differs: %d vs %d", got.MemoryBytes(), ix.MemoryBytes())
	}
}

func TestSerializeEmptyIndex(t *testing.T) {
	ix, err := Build(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.NumIons() != 0 {
		t.Errorf("empty index round trip: %d rows %d ions", got.NumRows(), got.NumIons())
	}
}

func TestSerializeDetectsCorruption(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the payload.
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupted index must fail the checksum")
	}
}

func TestSerializeRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic must fail")
	}
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("future version must fail")
	}
}

func TestSerializeTruncated(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

// buildPlainIndex builds an index with no mods and no explicit ion
// series, giving the serialized stream a fixed header layout:
//
//	magic 4 | version 4 | params 54 | nseries 4 | nrows 4 | rows ... |
//	numBuckets 4 | noffsets 4 | offsets ... | nids 4 | ids ... | crc 4
func buildPlainIndex(t *testing.T) *Index {
	t.Helper()
	params := DefaultParams()
	params.Mods = mods.Config{}
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// opaqueReader hides Len/Seek so ReadIndex cannot learn the input size
// and must rely on chunked allocation alone.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// TestSerializeCorruptLengthFields patches individual untrusted count
// fields in a valid stream and asserts ReadIndex fails cleanly — both
// when the input size is knowable and when it is an opaque stream.
func TestSerializeCorruptLengthFields(t *testing.T) {
	ix := buildPlainIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()

	// Fixed offsets of the count fields in the mods-free layout.
	const nrowsOff = 66
	rowsStart := nrowsOff + 4
	numBucketsOff := rowsStart + rowWireBytes*len(ix.rows)
	noffsetsOff := numBucketsOff + 4
	offsetsStart := noffsetsOff + 4
	nidsOff := offsetsStart + 4*len(ix.offsets)

	// Sanity-check the computed layout against the real stream before
	// mutating it: the u32s at those offsets must hold the known counts.
	le := binary.LittleEndian
	if got := le.Uint32(valid[nrowsOff:]); got != uint32(len(ix.rows)) {
		t.Fatalf("layout drift: nrows field holds %d, want %d", got, len(ix.rows))
	}
	if got := le.Uint32(valid[nidsOff:]); got != uint32(len(ix.ids)) {
		t.Fatalf("layout drift: nids field holds %d, want %d", got, len(ix.ids))
	}

	patch := func(off int, v uint32) func([]byte) []byte {
		return func(data []byte) []byte {
			le.PutUint32(data[off:], v)
			return data
		}
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"nrows max u32", patch(nrowsOff, 0xFFFFFFFF)},
		{"nrows over input size", patch(nrowsOff, uint32(len(ix.rows)+10_000))},
		{"nrows truncated after count", func(d []byte) []byte {
			le.PutUint32(d[nrowsOff:], 1<<27)
			return d[:nrowsOff+4]
		}},
		{"row payload truncated", func(d []byte) []byte { return d[:rowsStart+rowWireBytes/2] }},
		{"bucket count max u32", patch(numBucketsOff, 0xFFFFFFFF)},
		{"offsets length mismatch", patch(noffsetsOff, uint32(len(ix.offsets)+1))},
		{"nids max u32", patch(nidsOff, 0xFFFFFFFF)},
		{"nids huge then truncated", func(d []byte) []byte {
			le.PutUint32(d[nidsOff:], 0xFFFFFFF0)
			return d[:nidsOff+4]
		}},
		{"nids undercount", patch(nidsOff, uint32(len(ix.ids)-1))},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), valid...))
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("%s (sized reader): ReadIndex accepted corrupt input", tc.name)
		}
		if _, err := ReadIndex(opaqueReader{bytes.NewReader(data)}); err == nil {
			t.Errorf("%s (opaque stream): ReadIndex accepted corrupt input", tc.name)
		}
	}
}

// TestSerializeCorruptStringLength targets the mod-name string length in
// an index that carries modifications.
func TestSerializeCorruptStringLength(t *testing.T) {
	ix := buildTestIndex(t) // default params: three mods, no explicit series
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// With nseries == 0 the first mod's name length sits right after the
	// params block: magic 4 + version 4 + params 54 + nseries 4.
	const nameLenOff = 66
	binary.LittleEndian.PutUint32(data[nameLenOff:], 0xFFFFFF)
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("huge string length must fail")
	}
}

// TestReadIndexAllocationBounded asserts the core promise of the
// hardened reader: a tiny input claiming a gigantic array provokes only
// a small allocation, not one proportional to the forged count.
func TestReadIndexAllocationBounded(t *testing.T) {
	ix := buildPlainIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	const nrowsOff = 66
	data := append([]byte(nil), buf.Bytes()[:nrowsOff+4]...)
	binary.LittleEndian.PutUint32(data[nrowsOff:], 1<<27) // claims ~3 GiB of rows

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 8; i++ {
		if _, err := ReadIndex(opaqueReader{bytes.NewReader(data)}); err == nil {
			t.Fatal("truncated huge-count input must fail")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Errorf("8 corrupt reads allocated %d bytes; the forged count leaked into allocation", grew)
	}
}

// failAfterWriter accepts exactly budget bytes, then fails.
type failAfterWriter struct {
	budget int
	n      int
}

var errWriterFull = errors.New("writer full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n >= w.budget {
		return 0, errWriterFull
	}
	take := min(len(p), w.budget-w.n)
	w.n += take
	if take < len(p) {
		return take, errWriterFull
	}
	return take, nil
}

// TestWriteToReportsPartialCount pins the io.WriterTo contract: on a
// mid-stream write error, WriteTo must return the number of bytes the
// destination actually accepted, not zero.
func TestWriteToReportsPartialCount(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	total, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, 3, 7, 64, 100, 4096, int(total) - 1} {
		w := &failAfterWriter{budget: budget}
		n, err := ix.WriteTo(w)
		if !errors.Is(err, errWriterFull) {
			t.Fatalf("budget %d: want errWriterFull, got %v", budget, err)
		}
		if n != int64(w.n) {
			t.Errorf("budget %d: WriteTo reported %d bytes, destination accepted %d", budget, n, w.n)
		}
		if n >= total {
			t.Errorf("budget %d: partial write reported %d >= full size %d", budget, n, total)
		}
	}
}

func TestSerializePreservesTolerances(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	params.PrecursorTol = mass.Ppm(20)
	ix, err := Build([]string{"PEPTIDEK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().PrecursorTol != mass.Ppm(20) {
		t.Errorf("ppm tolerance not preserved: %+v", got.Params().PrecursorTol)
	}
}
