package slm

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"testing"

	"lbe/internal/mass"
	"lbe/internal/mods"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSerializeRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ix.NumRows() || got.NumIons() != ix.NumIons() {
		t.Fatalf("shape: %d/%d rows, %d/%d ions",
			got.NumRows(), ix.NumRows(), got.NumIons(), ix.NumIons())
	}
	// Search results must be identical.
	q := queryFor(t, "PEPTIDEK")
	a, wa := ix.Search(q, 0, nil)
	b, wb := got.Search(q, 0, nil)
	if len(a) != len(b) || wa != wb {
		t.Fatalf("results differ after round trip: %d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Params preserved, including mods.
	if got.Params().Mods.MaxPerPep != 1 || len(got.Params().Mods.Mods) != 3 {
		t.Errorf("params not preserved: %+v", got.Params().Mods)
	}
	if !got.Params().PrecursorTol.IsOpen() {
		t.Error("open precursor tolerance not preserved")
	}
}

func TestSerializeFileRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "part.slm")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemoryBytes() != ix.MemoryBytes() {
		t.Errorf("memory accounting differs: %d vs %d", got.MemoryBytes(), ix.MemoryBytes())
	}
}

func TestSerializeEmptyIndex(t *testing.T) {
	ix, err := Build(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.NumIons() != 0 {
		t.Errorf("empty index round trip: %d rows %d ions", got.NumRows(), got.NumIons())
	}
}

func TestSerializeDetectsCorruption(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the payload.
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupted index must fail the checksum")
	}
}

func TestSerializeRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic must fail")
	}
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("future version must fail")
	}
}

func TestSerializeTruncated(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

// buildPlainIndex builds an index with no mods and no explicit ion
// series, giving the serialized stream a fixed header layout:
//
//	magic 4 | version 4 | params 54 | nseries 4 | nrows 4 | rows ... |
//	numBuckets 4 | noffsets 4 | offsets ... | nids 4 | ids ... | crc 4
func buildPlainIndex(t *testing.T) *Index {
	t.Helper()
	params := DefaultParams()
	params.Mods = mods.Config{}
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

// opaqueReader hides Len/Seek so ReadIndex cannot learn the input size
// and must rely on chunked allocation alone.
type opaqueReader struct{ r io.Reader }

func (o opaqueReader) Read(p []byte) (int, error) { return o.r.Read(p) }

// headerOffsets computes the fixed header geometry for ix's stream with
// nsecs section-table entries (sectionTableEntries for WriteTo's v3,
// sectionTableEntriesV2 for WriteToVersion's v2): the file offsets of the
// section table and the header CRC, and the total header length.
func headerOffsets(ix *Index, nsecs int) (tableOff, crcOff, headerLen int) {
	tableOff = len(indexMagic) + 4 + int(paramsBlockLen(ix.params)) + 4
	crcOff = tableOff + nsecs*sectionEntryBytes
	headerLen = crcOff + 4
	return
}

// refixHeaderCRC recomputes the header CRC after a test mutates header
// bytes, so the mutation under test — not the CRC — is what the reader
// trips on.
func refixHeaderCRC(data []byte, crcOff int) {
	crc := crc32.ChecksumIEEE(data[len(indexMagic):crcOff])
	binary.LittleEndian.PutUint32(data[crcOff:], crc)
}

// mustReject asserts every decode path — the sized reader, the opaque
// stream reader, and the mapped open — refuses the corrupt image. The
// mapped open validates the header eagerly and section content lazily,
// so its rejection surface is OpenIndexMapped + Verify.
func mustReject(t *testing.T, name string, data []byte) {
	t.Helper()
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Errorf("%s: ReadIndex (sized) accepted corrupt input", name)
	}
	if _, err := ReadIndex(opaqueReader{bytes.NewReader(data)}); err == nil {
		t.Errorf("%s: ReadIndex (opaque) accepted corrupt input", name)
	}
	path := filepath.Join(t.TempDir(), "bad.slm")
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexMapped(path)
	if err == nil {
		err = ix.Verify()
		ix.Close()
	}
	if err == nil {
		t.Errorf("%s: OpenIndexMapped+Verify accepted corrupt input", name)
	}
}

// TestSerializeCorruptSectionTable drives the section-table defenses: a
// corrupt section CRC, overlapping / misordered / misaligned section
// offsets, forged counts, a violated header CRC and nonzero padding must
// all be rejected by both the streaming reader and OpenIndexMapped.
func TestSerializeCorruptSectionTable(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	tableOff, crcOff, headerLen := headerOffsets(ix, sectionTableEntries)
	layout := fileLayout(sectionTableEntries, int64(headerLen), []int64{
		int64(len(ix.rows)), int64(len(ix.offsets)), int64(len(ix.ids)),
		int64(len(ix.perm)), int64(len(ix.precs)),
	})

	le := binary.LittleEndian
	// Layout sanity: entry 0's offset field must hold the canonical
	// rows offset before we start mutating.
	if got := le.Uint64(valid[tableOff:]); got != uint64(layout.offs[0]) {
		t.Fatalf("layout drift: rows offset field holds %d, want %d", got, layout.offs[0])
	}

	entry := func(data []byte, i int) []byte { return data[tableOff+i*sectionEntryBytes:] }
	cases := []struct {
		name   string
		mutate func(data []byte)
	}{
		{"rows section CRC flipped", func(d []byte) {
			le.PutUint32(entry(d, 0)[16:], le.Uint32(entry(d, 0)[16:])^0xDEADBEEF)
		}},
		{"ids section CRC flipped", func(d []byte) {
			le.PutUint32(entry(d, 2)[16:], le.Uint32(entry(d, 2)[16:])^1)
		}},
		{"perm section CRC flipped", func(d []byte) {
			le.PutUint32(entry(d, 3)[16:], le.Uint32(entry(d, 3)[16:])^1)
		}},
		{"precs section CRC flipped", func(d []byte) {
			le.PutUint32(entry(d, 4)[16:], le.Uint32(entry(d, 4)[16:])^1)
		}},
		{"sections overlap", func(d []byte) {
			le.PutUint64(entry(d, 1)[0:], uint64(layout.offs[0])) // offsets atop rows
		}},
		{"sections misordered", func(d []byte) {
			le.PutUint64(entry(d, 0)[0:], uint64(layout.offs[2]))
			le.PutUint64(entry(d, 2)[0:], uint64(layout.offs[0]))
		}},
		{"section misaligned", func(d []byte) {
			le.PutUint64(entry(d, 0)[0:], uint64(layout.offs[0])+8)
		}},
		{"section beyond input", func(d []byte) {
			le.PutUint64(entry(d, 4)[0:], 1<<40)
		}},
		{"rows count forged", func(d []byte) {
			le.PutUint64(entry(d, 0)[8:], uint64(len(ix.rows))+7)
		}},
		{"offsets count vs buckets", func(d []byte) {
			le.PutUint64(entry(d, 1)[8:], uint64(len(ix.offsets))+1)
		}},
		{"perm count vs rows", func(d []byte) {
			le.PutUint64(entry(d, 3)[8:], uint64(len(ix.perm))+1)
		}},
		{"precs count vs rows", func(d []byte) {
			le.PutUint64(entry(d, 4)[8:], uint64(len(ix.precs))-1)
		}},
	}
	for _, tc := range cases {
		data := append([]byte(nil), valid...)
		tc.mutate(data)
		refixHeaderCRC(data, crcOff)
		mustReject(t, tc.name, data)
	}

	// Header CRC itself violated (no re-fix).
	data := append([]byte(nil), valid...)
	data[tableOff] ^= 0xFF
	mustReject(t, "header CRC mismatch", data)

	// Nonzero padding: the byte right after the header is inside the
	// alignment gap (the params block guarantees headerLen < rows offset).
	if int64(headerLen) < layout.offs[0] {
		data = append([]byte(nil), valid...)
		data[headerLen] = 0xAA
		mustReject(t, "nonzero padding", data)
	}

	// Truncated map: every prefix must be rejected by the mapped open.
	for _, cut := range []int{7, headerLen - 1, headerLen, int(layout.offs[2]), int(layout.offs[4]), len(valid) - 1} {
		mustReject(t, fmt.Sprintf("truncated at %d", cut), append([]byte(nil), valid[:cut]...))
	}
}

// corruptSection applies mutate to section sec of a valid v3 image, then
// re-fixes that section's table CRC and the header CRC — so the bytes
// are internally consistent and only the semantic validation (eager for
// the streaming readers, deferred to Verify for the mapped open) can
// catch the corruption.
func corruptSection(t *testing.T, ix *Index, valid []byte, sec int, mutate func(data []byte, lo int64)) []byte {
	t.Helper()
	tableOff, crcOff, _ := headerOffsets(ix, sectionTableEntries)
	le := binary.LittleEndian
	data := append([]byte(nil), valid...)
	entry := data[tableOff+sec*sectionEntryBytes:]
	lo := int64(le.Uint64(entry[0:8]))
	count := int64(le.Uint64(entry[8:16]))
	mutate(data, lo)
	crc := crc32.ChecksumIEEE(data[lo : lo+sectionElemBytes[sec]*count])
	le.PutUint32(entry[16:20], crc)
	refixHeaderCRC(data, crcOff)
	return data
}

// TestSerializeCorruptPrecursorOrder crafts v3 images whose bytes pass
// every CRC but violate the invariants the windowed scan relies on: a
// non-monotone precursor column, a precursor column disagreeing with the
// rows, a perm that is not a permutation, out-of-range postings and an
// unsorted bucket posting list. All must fail at open (streaming) or
// Verify (mapped) — never serve.
func TestSerializeCorruptPrecursorOrder(t *testing.T) {
	ix := buildTestIndex(t)
	if len(ix.rows) < 3 || len(ix.ids) < 2 {
		t.Fatal("test index too small to corrupt meaningfully")
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	valid := buf.Bytes()
	le := binary.LittleEndian

	// Swap the first two precs entries (distinct by construction of the
	// test corpus): the column is no longer monotone.
	if ix.precs[0] == ix.precs[1] {
		t.Fatal("first two precursors equal; pick a corpus with distinct masses")
	}
	mustReject(t, "non-monotone precursor column",
		corruptSection(t, ix, valid, 4, func(d []byte, lo int64) {
			a := le.Uint64(d[lo : lo+8])
			b := le.Uint64(d[lo+8 : lo+16])
			le.PutUint64(d[lo:lo+8], b)
			le.PutUint64(d[lo+8:lo+16], a)
		}))

	// Nudge one precs entry without breaking monotonicity: it now
	// disagrees with the row it claims to mirror.
	mustReject(t, "precursor column disagrees with rows",
		corruptSection(t, ix, valid, 4, func(d []byte, lo int64) {
			v := math.Float64frombits(le.Uint64(d[lo : lo+8]))
			le.PutUint64(d[lo:lo+8], math.Float64bits(v-0.25))
		}))

	// Duplicate a perm entry: no longer a permutation.
	mustReject(t, "perm is not a permutation",
		corruptSection(t, ix, valid, 3, func(d []byte, lo int64) {
			le.PutUint32(d[lo:lo+4], le.Uint32(d[lo+4:lo+8]))
		}))

	// Out-of-range perm entry.
	mustReject(t, "perm entry out of range",
		corruptSection(t, ix, valid, 3, func(d []byte, lo int64) {
			le.PutUint32(d[lo:lo+4], uint32(len(ix.rows)))
		}))

	// Out-of-range posting.
	mustReject(t, "posting out of range",
		corruptSection(t, ix, valid, 2, func(d []byte, lo int64) {
			le.PutUint32(d[lo:lo+4], uint32(len(ix.rows)))
		}))

	// Reverse a bucket's posting list (the first bucket holding two
	// distinct sorted positions): the windowed binary search would skip
	// real matches, so the file must be rejected.
	swapped := false
	for b := 0; b < ix.numBuckets && !swapped; b++ {
		s, e := ix.offsets[b], ix.offsets[b+1]
		for i := s + 1; i < e; i++ {
			if ix.ids[i] != ix.ids[i-1] {
				mustReject(t, "unsorted bucket posting list",
					corruptSection(t, ix, valid, 2, func(d []byte, lo int64) {
						pa, pb := lo+4*int64(i-1), lo+4*int64(i)
						a := le.Uint32(d[pa : pa+4])
						bv := le.Uint32(d[pb : pb+4])
						le.PutUint32(d[pa:pa+4], bv)
						le.PutUint32(d[pb:pb+4], a)
					}))
				swapped = true
				break
			}
		}
	}
	if !swapped {
		t.Error("no bucket with two distinct postings; unsorted-bucket case not exercised")
	}
}

// failAfterWriter accepts exactly budget bytes, then fails.
type failAfterWriter struct {
	budget int
	n      int
}

var errWriterFull = errors.New("writer full")

func (w *failAfterWriter) Write(p []byte) (int, error) {
	if w.n >= w.budget {
		return 0, errWriterFull
	}
	take := min(len(p), w.budget-w.n)
	w.n += take
	if take < len(p) {
		return take, errWriterFull
	}
	return take, nil
}

// TestWriteToReportsPartialCount pins the io.WriterTo contract: on a
// mid-stream write error, WriteTo must return the number of bytes the
// destination actually accepted, not zero.
func TestWriteToReportsPartialCount(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	total, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, budget := range []int{0, 1, 3, 7, 64, 100, 4096, int(total) - 1} {
		w := &failAfterWriter{budget: budget}
		n, err := ix.WriteTo(w)
		if !errors.Is(err, errWriterFull) {
			t.Fatalf("budget %d: want errWriterFull, got %v", budget, err)
		}
		if n != int64(w.n) {
			t.Errorf("budget %d: WriteTo reported %d bytes, destination accepted %d", budget, n, w.n)
		}
		if n >= total {
			t.Errorf("budget %d: partial write reported %d >= full size %d", budget, n, total)
		}
	}
}

func TestSerializePreservesTolerances(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	params.PrecursorTol = mass.Ppm(20)
	ix, err := Build([]string{"PEPTIDEK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().PrecursorTol != mass.Ppm(20) {
		t.Errorf("ppm tolerance not preserved: %+v", got.Params().PrecursorTol)
	}
}
