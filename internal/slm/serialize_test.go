package slm

import (
	"bytes"
	"path/filepath"
	"testing"

	"lbe/internal/mass"
)

func buildTestIndex(t *testing.T) *Index {
	t.Helper()
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	return ix
}

func TestSerializeRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	n, err := ix.WriteTo(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if n != int64(buf.Len()) {
		t.Errorf("WriteTo reported %d bytes, wrote %d", n, buf.Len())
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ix.NumRows() || got.NumIons() != ix.NumIons() {
		t.Fatalf("shape: %d/%d rows, %d/%d ions",
			got.NumRows(), ix.NumRows(), got.NumIons(), ix.NumIons())
	}
	// Search results must be identical.
	q := queryFor(t, "PEPTIDEK")
	a, wa := ix.Search(q, 0, nil)
	b, wb := got.Search(q, 0, nil)
	if len(a) != len(b) || wa != wb {
		t.Fatalf("results differ after round trip: %d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	// Params preserved, including mods.
	if got.Params().Mods.MaxPerPep != 1 || len(got.Params().Mods.Mods) != 3 {
		t.Errorf("params not preserved: %+v", got.Params().Mods)
	}
	if !got.Params().PrecursorTol.IsOpen() {
		t.Error("open precursor tolerance not preserved")
	}
}

func TestSerializeFileRoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "part.slm")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	got, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.MemoryBytes() != ix.MemoryBytes() {
		t.Errorf("memory accounting differs: %d vs %d", got.MemoryBytes(), ix.MemoryBytes())
	}
}

func TestSerializeEmptyIndex(t *testing.T) {
	ix, err := Build(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != 0 || got.NumIons() != 0 {
		t.Errorf("empty index round trip: %d rows %d ions", got.NumRows(), got.NumIons())
	}
}

func TestSerializeDetectsCorruption(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	// Flip one byte in the middle of the payload.
	data := buf.Bytes()
	data[len(data)/2] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupted index must fail the checksum")
	}
}

func TestSerializeRejectsBadMagicAndVersion(t *testing.T) {
	if _, err := ReadIndex(bytes.NewReader([]byte("NOPE1234"))); err == nil {
		t.Error("bad magic must fail")
	}
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[4] = 99 // version field
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("future version must fail")
	}
}

func TestSerializeTruncated(t *testing.T) {
	ix := buildTestIndex(t)
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	for _, cut := range []int{3, 10, len(data) / 2, len(data) - 1} {
		if _, err := ReadIndex(bytes.NewReader(data[:cut])); err == nil {
			t.Errorf("truncation at %d must fail", cut)
		}
	}
}

func TestSerializePreservesTolerances(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	params.PrecursorTol = mass.Ppm(20)
	ix, err := Build([]string{"PEPTIDEK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Params().PrecursorTol != mass.Ppm(20) {
		t.Errorf("ppm tolerance not preserved: %+v", got.Params().PrecursorTol)
	}
}
