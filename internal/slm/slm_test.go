package slm

import (
	"bytes"
	"math"
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// noModParams returns params with modifications disabled and closed
// precursor window for precise unit tests.
func noModParams() Params {
	p := DefaultParams()
	p.Mods = mods.Config{MaxPerPep: 0}
	return p
}

// queryFor builds a query spectrum containing exactly the theoretical
// peaks of seq at unit intensity.
func queryFor(t *testing.T, seq string) spectrum.Experimental {
	t.Helper()
	th, err := spectrum.Predict(seq)
	if err != nil {
		t.Fatal(err)
	}
	q := spectrum.Experimental{
		Scan:        1,
		PrecursorMZ: mass.MZ(th.Precursor, 1),
		Charge:      1,
	}
	for _, ion := range th.Ions {
		q.Peaks = append(q.Peaks, spectrum.Peak{MZ: ion, Intensity: 1})
	}
	q.SortPeaks()
	return q
}

func TestBuildBasicShape(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK"}
	ix, err := Build(peps, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	if ix.NumRows() != 2 {
		t.Fatalf("rows = %d, want 2 (no mods)", ix.NumRows())
	}
	if ix.NumPeptides() != 2 {
		t.Errorf("peptides = %d", ix.NumPeptides())
	}
	wantIons := 2*(8-1) + 2*(9-1)
	if ix.NumIons() != wantIons {
		t.Errorf("ions = %d, want %d", ix.NumIons(), wantIons)
	}
	if ix.MemoryBytes() <= 0 || ix.BuildPeakBytes() < ix.MemoryBytes() {
		t.Errorf("memory accounting: resident %d, peak %d", ix.MemoryBytes(), ix.BuildPeakBytes())
	}
}

func TestBuildWithModsRowCount(t *testing.T) {
	params := DefaultParams()
	peps := []string{"NQKCMAAR", "GGGGGGGK"}
	ix, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	want := params.Mods.Count("NQKCMAAR") + params.Mods.Count("GGGGGGGK")
	if ix.NumRows() != want {
		t.Errorf("rows = %d, want %d", ix.NumRows(), want)
	}
	// Unmodified rows and modified rows both present.
	mod, unmod := 0, 0
	for rid := uint32(0); rid < uint32(ix.NumRows()); rid++ {
		if ix.Row(rid).Modified() {
			mod++
		} else {
			unmod++
		}
	}
	if unmod != 2 {
		t.Errorf("unmodified rows = %d, want 2", unmod)
	}
	if mod != want-2 {
		t.Errorf("modified rows = %d, want %d", mod, want-2)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]string{"A"}, noModParams()); err == nil {
		t.Error("length-1 peptide must fail")
	}
	bad := noModParams()
	bad.Resolution = 0
	if _, err := Build([]string{"PEPTIDEK"}, bad); err == nil {
		t.Error("zero resolution must fail")
	}
	bad = noModParams()
	bad.MinSharedPeaks = 0
	if _, err := Build([]string{"PEPTIDEK"}, bad); err == nil {
		t.Error("zero shared-peak threshold must fail")
	}
}

func TestSearchFindsExactMatch(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK", "WWYYFFLLK"}
	ix, err := Build(peps, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	q := queryFor(t, "PEPTIDEK")
	matches, work := ix.Search(q, 10, nil)
	if len(matches) == 0 {
		t.Fatal("no matches for exact query")
	}
	if matches[0].Peptide != 0 {
		t.Errorf("best match peptide = %d, want 0", matches[0].Peptide)
	}
	if int(matches[0].Shared) < 2*(8-1) {
		t.Errorf("shared = %d, want all %d ions", matches[0].Shared, 2*(8-1))
	}
	if work.IonHits <= 0 || work.Scored <= 0 {
		t.Errorf("work = %+v", work)
	}
}

func TestSearchThreshold(t *testing.T) {
	// A query with only 3 peaks cannot reach the Shpeak >= 4 threshold.
	peps := []string{"PEPTIDEK"}
	ix, _ := Build(peps, noModParams())
	q := queryFor(t, "PEPTIDEK")
	q.Peaks = q.Peaks[:3]
	matches, work := ix.Search(q, 0, nil)
	if len(matches) != 0 {
		t.Errorf("got %d matches below threshold", len(matches))
	}
	if work.Candidates != 0 {
		t.Errorf("candidates = %d, want 0", work.Candidates)
	}
}

func TestSearchPrecursorWindow(t *testing.T) {
	params := noModParams()
	params.PrecursorTol = mass.Da(0.1)
	peps := []string{"PEPTIDEK", "PEPTIDEKK"} // second is ~128 Da heavier
	ix, _ := Build(peps, params)
	q := queryFor(t, "PEPTIDEK")
	matches, _ := ix.Search(q, 0, nil)
	for _, m := range matches {
		if m.Peptide == 1 {
			t.Error("heavier peptide must be excluded by the precursor window")
		}
	}
	// Open search admits both (they share the b-ion series).
	params.PrecursorTol = mass.Open()
	ix2, _ := Build(peps, params)
	matches2, _ := ix2.Search(q, 0, nil)
	saw := map[uint32]bool{}
	for _, m := range matches2 {
		saw[m.Peptide] = true
	}
	if !saw[0] || !saw[1] {
		t.Errorf("open search matches = %v, want both peptides", saw)
	}
}

func TestSearchTopK(t *testing.T) {
	peps := []string{
		"PEPTIDEK", "PEPTIDER", "PEPTIDEH", "PEPTIDEW", "PEPTIDEY",
	}
	ix, _ := Build(peps, noModParams())
	q := queryFor(t, "PEPTIDEK")
	all, _ := ix.Search(q, 0, nil)
	top2, _ := ix.Search(q, 2, nil)
	if len(all) < 3 {
		t.Skipf("expected several matches, got %d", len(all))
	}
	if len(top2) != 2 {
		t.Fatalf("topK = %d results, want 2", len(top2))
	}
	if top2[0].Score < top2[1].Score {
		t.Error("topK results not in descending score order")
	}
	if top2[0].Peptide != 0 {
		t.Errorf("best = %d, want exact match 0", top2[0].Peptide)
	}
}

func TestScratchReuseResets(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK"}
	ix, _ := Build(peps, noModParams())
	var scratch Scratch
	q := queryFor(t, "PEPTIDEK")
	a, _ := ix.Search(q, 0, &scratch)
	b, _ := ix.Search(q, 0, &scratch)
	if len(a) != len(b) {
		t.Fatalf("reused scratch changed results: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d differs after scratch reuse: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestSearchAllAccumulatesWork(t *testing.T) {
	peps := []string{"PEPTIDEK", "AAAAGGGGK"}
	ix, _ := Build(peps, noModParams())
	qs := []spectrum.Experimental{queryFor(t, "PEPTIDEK"), queryFor(t, "AAAAGGGGK")}
	res, work := ix.SearchAll(qs, 5)
	if len(res) != 2 {
		t.Fatalf("results = %d", len(res))
	}
	_, w0 := ix.Search(qs[0], 5, nil)
	_, w1 := ix.Search(qs[1], 5, nil)
	if work.IonHits != w0.IonHits+w1.IonHits {
		t.Errorf("work not accumulated: %+v vs %+v + %+v", work, w0, w1)
	}
}

const alphabet = "ACDEFGHIKLMNPQRSTVWY"

func randPeptide(rng *rand.Rand, minLen, maxLen int) string {
	n := rng.Intn(maxLen-minLen+1) + minLen
	var sb strings.Builder
	for i := 0; i < n; i++ {
		sb.WriteByte(alphabet[rng.Intn(len(alphabet))])
	}
	return sb.String()
}

// TestIndexMatchesBruteForce is the central correctness property: the CSR
// index query must produce exactly the matches of the quadratic reference.
func TestIndexMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	params := DefaultParams()
	params.Mods.MaxPerPep = 2 // keep variant counts modest

	for trial := 0; trial < 30; trial++ {
		npep := rng.Intn(15) + 2
		peps := make([]string, npep)
		for i := range peps {
			peps[i] = randPeptide(rng, 6, 14)
		}
		ix, err := Build(peps, params)
		if err != nil {
			t.Fatal(err)
		}

		// Query: noisy version of a random peptide.
		target := peps[rng.Intn(npep)]
		th, _ := spectrum.Predict(target)
		q := spectrum.Experimental{
			Scan:        trial,
			PrecursorMZ: mass.MZ(th.Precursor, 1),
			Charge:      1,
		}
		for _, ion := range th.Ions {
			if rng.Float64() < 0.85 { // drop some peaks
				q.Peaks = append(q.Peaks, spectrum.Peak{
					MZ:        ion + (rng.Float64()-0.5)*0.04, // jitter within tol
					Intensity: rng.Float64()*99 + 1,
				})
			}
		}
		for j := 0; j < 5; j++ { // noise peaks
			q.Peaks = append(q.Peaks, spectrum.Peak{
				MZ:        rng.Float64() * 2000,
				Intensity: rng.Float64() * 10,
			})
		}
		q.SortPeaks()

		got, _ := ix.Search(q, 0, nil)
		want, err := BruteForce(peps, params, q)
		if err != nil {
			t.Fatal(err)
		}
		sortByRow := func(ms []Match) {
			sort.Slice(ms, func(i, j int) bool { return ms[i].Row < ms[j].Row })
		}
		sortByRow(got)
		sortByRow(want)
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d matches vs brute force %d", trial, len(got), len(want))
		}
		for i := range got {
			g, w := got[i], want[i]
			if g.Row != w.Row || g.Peptide != w.Peptide || g.Shared != w.Shared {
				t.Fatalf("trial %d match %d: got %+v, want %+v", trial, i, g, w)
			}
			if math.Abs(g.Score-w.Score) > 1e-9 {
				t.Fatalf("trial %d match %d: score %v vs %v", trial, i, g.Score, w.Score)
			}
		}
	}
}

func TestHyperscoreMonotonicity(t *testing.T) {
	f := func(sharedRaw uint8, intenRaw uint16) bool {
		shared := uint16(sharedRaw%60) + 1
		inten := float64(intenRaw) / 100
		base := hyperscore(shared, inten, 30)
		moreShared := hyperscore(shared+1, inten, 30)
		moreInten := hyperscore(shared, inten+1, 30)
		return moreShared > base && moreInten > base
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
	if hyperscore(0, 0, 10) != 0 {
		t.Error("zero shared must score 0")
	}
}

func TestLogFactorial(t *testing.T) {
	// Exact for small n.
	want := 0.0
	for n := 1; n < 128; n++ {
		want += math.Log(float64(n))
		if math.Abs(logFactorial(n)-want) > 1e-9 {
			t.Fatalf("logFactorial(%d) = %v, want %v", n, logFactorial(n), want)
		}
	}
	// Stirling branch accurate to <1e-6 relative at n=200.
	exact := 0.0
	for n := 1; n <= 200; n++ {
		exact += math.Log(float64(n))
	}
	if math.Abs(logFactorial(200)-exact)/exact > 1e-6 {
		t.Errorf("Stirling branch: %v vs %v", logFactorial(200), exact)
	}
}

func TestEmptyIndexSearch(t *testing.T) {
	ix, err := Build(nil, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	q := spectrum.Experimental{Peaks: []spectrum.Peak{{MZ: 500, Intensity: 1}}}
	matches, work := ix.Search(q, 10, nil)
	if len(matches) != 0 || work.IonHits != 0 {
		t.Errorf("empty index returned %v, %+v", matches, work)
	}
}

func TestQueryPeakOutOfRange(t *testing.T) {
	ix, _ := Build([]string{"PEPTIDEK"}, noModParams())
	q := spectrum.Experimental{Peaks: []spectrum.Peak{
		{MZ: 1e6, Intensity: 1}, // beyond any bucket
		{MZ: 0, Intensity: 1},
	}}
	matches, _ := ix.Search(q, 0, nil)
	if len(matches) != 0 {
		t.Errorf("out-of-range peaks matched: %v", matches)
	}
}

func TestExtendedIonSeriesMatchesBruteForce(t *testing.T) {
	// The index/oracle equivalence must hold for every ion-series config.
	rng := rand.New(rand.NewSource(137))
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	params.IonSeries = []spectrum.IonKind{
		spectrum.IonB, spectrum.IonY, spectrum.IonA, spectrum.IonB2, spectrum.IonY2,
	}
	peps := make([]string, 8)
	for i := range peps {
		peps[i] = randPeptide(rng, 6, 12)
	}
	ix, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 10; trial++ {
		q := queryFor(t, peps[rng.Intn(len(peps))])
		got, _ := ix.Search(q, 0, nil)
		want, err := BruteForce(peps, params, q)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(got), len(want))
		}
	}
}

func TestIonSeriesValidation(t *testing.T) {
	params := DefaultParams()
	params.IonSeries = []spectrum.IonKind{spectrum.IonB, spectrum.IonB}
	if _, err := Build([]string{"PEPTIDEK"}, params); err == nil {
		t.Error("duplicate ion series must fail validation")
	}
	params.IonSeries = []spectrum.IonKind{spectrum.IonKind(77)}
	if _, err := Build([]string{"PEPTIDEK"}, params); err == nil {
		t.Error("unknown ion series must fail validation")
	}
}

func TestSerializePreservesIonSeries(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	params.IonSeries = []spectrum.IonKind{spectrum.IonB, spectrum.IonY, spectrum.IonA}
	ix, err := Build([]string{"PEPTIDEK"}, params)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Params().IonSeries) != 3 || got.Params().IonSeries[2] != spectrum.IonA {
		t.Errorf("ion series not preserved: %v", got.Params().IonSeries)
	}
}
