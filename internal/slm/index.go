// Package slm implements a shared-peak fragment-ion index in the style of
// SLM-Transform (Haseeb et al., 2019), the substrate search engine the LBE
// layer distributes.
//
// The index discretizes every theoretical fragment ion of every indexed
// peptide variant into mass buckets of width Resolution and stores, per
// bucket, the list of spectrum rows containing such an ion (a CSR layout:
// one offsets array over buckets, one flat row-id array). Querying walks,
// for each experimental peak, the bucket window covering the fragment-mass
// tolerance, accumulates shared-peak counts on a scorecard, filters rows by
// the shared-peak threshold and the precursor window, and scores the
// survivors.
package slm

import (
	"fmt"

	"lbe/internal/mass"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Params configures index construction and querying. The defaults mirror
// the paper's §V-A3 settings.
type Params struct {
	Resolution     float64        // bucket width r (Da); paper 0.01
	FragmentTol    mass.Tolerance // ∆F; paper 0.05 Da
	PrecursorTol   mass.Tolerance // ∆M; paper ∞ (open search)
	MinSharedPeaks int            // Shpeak; paper 4
	Mods           mods.Config    // variable modification settings
	MaxQueryPeaks  int            // top-N peak preprocessing; paper 100
	// MaxFragmentMZ bounds the indexed fragment m/z range (the instrument
	// scan range); ions above it are neither indexed nor matched.
	MaxFragmentMZ float64
	// IonSeries selects the fragment series to predict and index; nil
	// means the paper's model (singly charged b and y ions).
	IonSeries []spectrum.IonKind
}

// series returns the effective ion series.
func (p Params) series() []spectrum.IonKind {
	if len(p.IonSeries) == 0 {
		return spectrum.DefaultSeries()
	}
	return p.IonSeries
}

// DefaultParams returns the paper's search settings: r = 0.01,
// ∆F = 0.05 Da, ∆M = ∞ (open search), Shpeak ≥ 4, the paper's three
// variable mods with at most 5 modified residues, 100 query peaks.
func DefaultParams() Params {
	return Params{
		Resolution:     0.01,
		FragmentTol:    mass.Da(0.05),
		PrecursorTol:   mass.Open(),
		MinSharedPeaks: 4,
		Mods:           mods.DefaultConfig(),
		MaxQueryPeaks:  100,
		MaxFragmentMZ:  2000,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Resolution <= 0 {
		return fmt.Errorf("slm: resolution %g must be positive", p.Resolution)
	}
	if p.MinSharedPeaks < 1 {
		return fmt.Errorf("slm: min shared peaks %d must be >= 1", p.MinSharedPeaks)
	}
	if p.FragmentTol.Value < 0 || p.PrecursorTol.Value < 0 {
		return fmt.Errorf("slm: negative tolerance")
	}
	if p.MaxFragmentMZ <= 0 {
		return fmt.Errorf("slm: MaxFragmentMZ %g must be positive", p.MaxFragmentMZ)
	}
	seen := map[spectrum.IonKind]bool{}
	for _, k := range p.series() {
		if k > spectrum.IonY2 {
			return fmt.Errorf("slm: unknown ion kind %d", k)
		}
		if seen[k] {
			return fmt.Errorf("slm: duplicate ion kind %v", k)
		}
		seen[k] = true
	}
	return p.Mods.Validate()
}

// capBucket returns the last indexable bucket under MaxFragmentMZ.
func (p Params) capBucket() int {
	return mass.NewBucketer(p.Resolution).Bucket(p.MaxFragmentMZ)
}

// Row is one indexed theoretical spectrum: a peptide variant.
type Row struct {
	Peptide   uint32  // local (virtual) peptide index within this partition
	Precursor float64 // neutral mass including mod deltas
	NumIons   uint16  // fragment ions indexed for this row
	Modified  bool    // whether the row carries any modification
}

// Index is an immutable fragment-ion index over a set of peptides
// (typically one LBE partition). Build with Build; query with Search.
type Index struct {
	params Params

	rows []Row

	// CSR ion index: for bucket b, rows with an ion in b are
	// ids[offsets[b]:offsets[b+1]].
	offsets []uint32
	ids     []uint32

	numBuckets int
	buildPeak  int // peak transient bytes observed during construction
}

// NumRows returns the number of indexed spectra (peptide variants).
func (ix *Index) NumRows() int { return len(ix.rows) }

// NumPeptides returns the number of distinct local peptides indexed.
func (ix *Index) NumPeptides() int {
	seen := uint32(0)
	for _, r := range ix.rows {
		if r.Peptide+1 > seen {
			seen = r.Peptide + 1
		}
	}
	return int(seen)
}

// NumIons returns the total number of indexed fragment-ion postings.
func (ix *Index) NumIons() int { return len(ix.ids) }

// Params returns the parameters the index was built with.
func (ix *Index) Params() Params { return ix.params }

// Row returns row metadata by row id.
func (ix *Index) Row(id uint32) Row { return ix.rows[id] }

// Build constructs the index over the given peptide sequences. Each
// peptide contributes one row per modification variant (the unmodified
// form included). Peptides shorter than 2 residues are rejected.
func Build(peptides []string, params Params) (*Index, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	ix := &Index{params: params}
	bucketer := mass.NewBucketer(params.Resolution)

	// Pass 1: enumerate rows and count ions per bucket.
	type rowIons struct {
		row  Row
		ions []float64
	}
	var pending []rowIons
	maxBucket := 0
	totalIons := 0
	capB := params.capBucket()
	for pi, seq := range peptides {
		variants, err := params.Mods.Variants(seq)
		if err != nil {
			return nil, fmt.Errorf("slm: peptide %d: %w", pi, err)
		}
		for _, v := range variants {
			th, err := spectrum.PredictIons(seq, v, params.Mods.Mods, params.series())
			if err != nil {
				return nil, fmt.Errorf("slm: peptide %d (%q): %w", pi, seq, err)
			}
			// Keep only ions inside the instrument scan range.
			ions := th.Ions[:0:0]
			for _, ion := range th.Ions {
				b := bucketer.Bucket(ion)
				if b > capB {
					continue
				}
				if b > maxBucket {
					maxBucket = b
				}
				ions = append(ions, ion)
			}
			r := Row{
				Peptide:   uint32(pi),
				Precursor: th.Precursor,
				NumIons:   uint16(len(ions)),
				Modified:  v.IsModified(),
			}
			totalIons += len(ions)
			pending = append(pending, rowIons{row: r, ions: ions})
		}
	}

	ix.numBuckets = maxBucket + 1
	ix.rows = make([]Row, len(pending))
	ix.offsets = make([]uint32, ix.numBuckets+1)
	ix.ids = make([]uint32, totalIons)

	// Counting sort of (bucket, row) postings into CSR.
	counts := make([]uint32, ix.numBuckets)
	for _, ri := range pending {
		for _, ion := range ri.ions {
			counts[bucketer.Bucket(ion)]++
		}
	}
	sum := uint32(0)
	for b := 0; b < ix.numBuckets; b++ {
		ix.offsets[b] = sum
		sum += counts[b]
	}
	ix.offsets[ix.numBuckets] = sum

	cursor := make([]uint32, ix.numBuckets)
	copy(cursor, ix.offsets[:ix.numBuckets])
	for rid, ri := range pending {
		ix.rows[rid] = ri.row
		for _, ion := range ri.ions {
			b := bucketer.Bucket(ion)
			ix.ids[cursor[b]] = uint32(rid)
			cursor[b]++
		}
	}

	// The transient footprint during construction is the pending ion
	// lists plus the final arrays — the "2x index memory" effect the
	// paper describes for distributed SLM construction.
	ix.buildPeak = ix.MemoryBytes() + 8*totalIons

	return ix, nil
}

// MemoryBytes returns the resident size of the index structures in bytes:
// rows (4+8+2+1 padded to 24), offsets (4 per bucket) and ion postings
// (4 each). This is the quantity reported by the Fig. 5 experiment.
func (ix *Index) MemoryBytes() int {
	const rowBytes = 24 // struct layout: uint32 + pad + float64 + uint16 + bool + pad
	return rowBytes*len(ix.rows) + 4*len(ix.offsets) + 4*len(ix.ids)
}

// BuildPeakBytes returns the peak transient memory observed while the
// index was constructed (index plus staging ion lists).
func (ix *Index) BuildPeakBytes() int { return ix.buildPeak }

// bucketRange returns the posting range for the fragment window around mz.
func (ix *Index) bucketRange(mz float64) (lo, hi uint32) {
	bucketer := mass.NewBucketer(ix.params.Resolution)
	blo, bhi := bucketer.Range(mz, ix.params.FragmentTol)
	if blo < 0 {
		blo = 0
	}
	if bhi >= ix.numBuckets {
		bhi = ix.numBuckets - 1
	}
	if blo > bhi {
		return 0, 0
	}
	return ix.offsets[blo], ix.offsets[bhi+1]
}
