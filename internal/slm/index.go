// Package slm implements a shared-peak fragment-ion index in the style of
// SLM-Transform (Haseeb et al., 2019), the substrate search engine the LBE
// layer distributes.
//
// The index discretizes every theoretical fragment ion of every indexed
// peptide variant into mass buckets of width Resolution and stores, per
// bucket, the list of spectrum rows containing such an ion (a CSR layout:
// one offsets array over buckets, one flat row-id array). Querying walks,
// for each experimental peak, the bucket window covering the fragment-mass
// tolerance, accumulates shared-peak counts on a scorecard, filters rows by
// the shared-peak threshold and the precursor window, and scores the
// survivors.
package slm

import (
	"cmp"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"unsafe"

	"lbe/internal/mass"
	"lbe/internal/mmapio"
	"lbe/internal/mods"
	"lbe/internal/spectrum"
)

// Params configures index construction and querying. The defaults mirror
// the paper's §V-A3 settings.
type Params struct {
	Resolution     float64        // bucket width r (Da); paper 0.01
	FragmentTol    mass.Tolerance // ∆F; paper 0.05 Da
	PrecursorTol   mass.Tolerance // ∆M; paper ∞ (open search)
	MinSharedPeaks int            // Shpeak; paper 4
	Mods           mods.Config    // variable modification settings
	MaxQueryPeaks  int            // top-N peak preprocessing; paper 100
	// MaxFragmentMZ bounds the indexed fragment m/z range (the instrument
	// scan range); ions above it are neither indexed nor matched.
	MaxFragmentMZ float64
	// IonSeries selects the fragment series to predict and index; nil
	// means the paper's model (singly charged b and y ions).
	IonSeries []spectrum.IonKind
}

// series returns the effective ion series.
func (p Params) series() []spectrum.IonKind {
	if len(p.IonSeries) == 0 {
		return spectrum.DefaultSeries()
	}
	return p.IonSeries
}

// DefaultParams returns the paper's search settings: r = 0.01,
// ∆F = 0.05 Da, ∆M = ∞ (open search), Shpeak ≥ 4, the paper's three
// variable mods with at most 5 modified residues, 100 query peaks.
func DefaultParams() Params {
	return Params{
		Resolution:     0.01,
		FragmentTol:    mass.Da(0.05),
		PrecursorTol:   mass.Open(),
		MinSharedPeaks: 4,
		Mods:           mods.DefaultConfig(),
		MaxQueryPeaks:  100,
		MaxFragmentMZ:  2000,
	}
}

// Validate reports parameter errors.
func (p Params) Validate() error {
	if p.Resolution <= 0 {
		return fmt.Errorf("slm: resolution %g must be positive", p.Resolution)
	}
	if p.MinSharedPeaks < 1 {
		return fmt.Errorf("slm: min shared peaks %d must be >= 1", p.MinSharedPeaks)
	}
	if p.FragmentTol.Value < 0 || p.PrecursorTol.Value < 0 {
		return fmt.Errorf("slm: negative tolerance")
	}
	if p.MaxFragmentMZ <= 0 {
		return fmt.Errorf("slm: MaxFragmentMZ %g must be positive", p.MaxFragmentMZ)
	}
	seen := map[spectrum.IonKind]bool{}
	for _, k := range p.series() {
		if k > spectrum.IonY2 {
			return fmt.Errorf("slm: unknown ion kind %d", k)
		}
		if seen[k] {
			return fmt.Errorf("slm: duplicate ion kind %v", k)
		}
		seen[k] = true
	}
	return p.Mods.Validate()
}

// capBucket returns the last indexable bucket under MaxFragmentMZ.
func (p Params) capBucket() int {
	return mass.NewBucketer(p.Resolution).Bucket(p.MaxFragmentMZ)
}

// Row is one indexed theoretical spectrum: a peptide variant. The field
// order packs it into exactly 16 bytes (one quarter cache line, no
// padding), which doubles as the on-disk v2 record layout so a
// memory-mapped store can serve rows zero-copy (see OpenIndexMapped).
type Row struct {
	Precursor float64 // neutral mass including mod deltas
	Peptide   uint32  // local (virtual) peptide index within this partition
	NumIons   uint16  // fragment ions indexed for this row
	Flags     uint16  // rowFlag* bits
}

// rowFlagModified marks a row carrying at least one modification. Flags
// is a bitfield (not a bool) so mapped bytes are valid for every value.
const rowFlagModified = 1 << 0

// rowMemBytes is the in-memory (and v2 on-disk) size of a Row. The array
// conversion is a compile-time assertion that the struct has no padding.
const rowMemBytes = 16

var _ [rowMemBytes]byte = [unsafe.Sizeof(Row{})]byte{}

// Modified reports whether the row carries any modification.
func (r Row) Modified() bool { return r.Flags&rowFlagModified != 0 }

// Index is an immutable fragment-ion index over a set of peptides
// (typically one LBE partition). Build with Build; query with Search.
type Index struct {
	params Params

	rows []Row

	// CSR ion index: for bucket b, rows with an ion in b are
	// ids[offsets[b]:offsets[b+1]]. Postings hold *mass-sorted row
	// positions* (indexes into perm/precs, not into rows), and each
	// bucket's list is ascending — so a narrow precursor window, which is
	// one contiguous range of sorted positions, can be intersected with a
	// bucket by binary search (see precursorWindow / searchScratch).
	offsets []uint32
	ids     []uint32

	// Precursor-mass order over the rows: perm[s] is the original row id
	// of the s-th lightest row (ties broken by row id), and precs[s] is
	// its neutral precursor mass, ascending. rows itself stays in build
	// order so row ids in Match.Row and Row() are stable across versions.
	perm  []uint32
	precs []float64

	numBuckets int
	buildPeak  int // peak transient bytes observed during construction

	// fullScan forces the flattened full-bucket phase-1 scan even under a
	// narrow precursor tolerance (see SetFullScan).
	fullScan bool

	// mapping is non-nil when rows/offsets/ids are zero-copy views into a
	// memory-mapped store file (see OpenIndexMapped); Close releases it.
	mapping *mmapio.Mapping

	// verifyFn holds the deferred content validation of a mapped open
	// (section CRCs, padding, shape); nil for indexes validated at build
	// or decode time. verifyDone/verifyMu latch its one execution into
	// verifyErr with closure-free double-checked locking, keeping the
	// warm Verify fast path (an atomic load) legal inside //lbe:hotpath
	// Search.
	verifyFn   func() error
	verifyMu   sync.Mutex
	verifyDone atomic.Bool
	verifyErr  error
}

// NumRows returns the number of indexed spectra (peptide variants).
func (ix *Index) NumRows() int { return len(ix.rows) }

// NumPeptides returns the number of distinct local peptides indexed.
func (ix *Index) NumPeptides() int {
	seen := uint32(0)
	for _, r := range ix.rows {
		if r.Peptide+1 > seen {
			seen = r.Peptide + 1
		}
	}
	return int(seen)
}

// NumIons returns the total number of indexed fragment-ion postings.
func (ix *Index) NumIons() int { return len(ix.ids) }

// Params returns the parameters the index was built with.
func (ix *Index) Params() Params { return ix.params }

// Row returns row metadata by row id.
func (ix *Index) Row(id uint32) Row { return ix.rows[id] }

// rowIons is one enumerated index row with its in-range fragment ions,
// staged until the CSR arrays are assembled.
type rowIons struct {
	row  Row
	ions []float64
}

// buildShard is one worker's contiguous slice of the peptide list during
// parallel construction. Shards are merged in peptide order, so the
// assembled index is byte-identical to the serial build.
type buildShard struct {
	lo, hi    int // peptide range [lo, hi)
	pending   []rowIons
	counts    []uint32 // ion count per bucket, len maxBucket+1
	maxBucket int
	totalIons int
	err       error
}

// enumerate runs pass 1 for one shard: per-peptide variant expansion, ion
// prediction, scan-range filtering and per-bucket ion counting.
func (sh *buildShard) enumerate(peptides []string, params Params) {
	bucketer := mass.NewBucketer(params.Resolution)
	capB := params.capBucket()
	sh.maxBucket = -1
	for pi := sh.lo; pi < sh.hi; pi++ {
		seq := peptides[pi]
		variants, err := params.Mods.Variants(seq)
		if err != nil {
			sh.err = fmt.Errorf("slm: peptide %d: %w", pi, err)
			return
		}
		for _, v := range variants {
			th, err := spectrum.PredictIons(seq, v, params.Mods.Mods, params.series())
			if err != nil {
				sh.err = fmt.Errorf("slm: peptide %d (%q): %w", pi, seq, err)
				return
			}
			// Keep only ions inside the instrument scan range.
			ions := th.Ions[:0:0]
			for _, ion := range th.Ions {
				b := bucketer.Bucket(ion)
				if b > capB {
					continue
				}
				if b > sh.maxBucket {
					sh.maxBucket = b
					for len(sh.counts) <= b {
						sh.counts = append(sh.counts, 0)
					}
				}
				sh.counts[b]++
				ions = append(ions, ion)
			}
			sh.totalIons += len(ions)
			var flags uint16
			if v.IsModified() {
				flags |= rowFlagModified
			}
			sh.pending = append(sh.pending, rowIons{
				row: Row{
					Peptide:   uint32(pi),
					Precursor: th.Precursor,
					NumIons:   uint16(len(ions)),
					Flags:     flags,
				},
				ions: ions,
			})
		}
	}
}

// Build constructs the index over the given peptide sequences. Each
// peptide contributes one row per modification variant (the unmodified
// form included). Peptides shorter than 2 residues are rejected.
//
// Construction is parallelized over all available cores; the resulting
// index is byte-identical to BuildSerial's for any worker count.
func Build(peptides []string, params Params) (*Index, error) {
	return BuildWorkers(peptides, params, 0)
}

// BuildSerial is the single-goroutine reference construction, kept as the
// correctness oracle for the parallel build.
func BuildSerial(peptides []string, params Params) (*Index, error) {
	return BuildWorkers(peptides, params, 1)
}

// BuildWorkers constructs the index with the given number of worker
// goroutines (0 or negative means one per available core). Peptides are
// sharded contiguously; each worker enumerates its shard's rows and
// per-bucket ion counts, and the shards are merged deterministically into
// the CSR layout, so the output does not depend on the worker count.
func BuildWorkers(peptides []string, params Params, workers int) (*Index, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(peptides) {
		workers = len(peptides)
	}
	if workers < 1 {
		workers = 1
	}
	ix := &Index{params: params}

	// Pass 1 (parallel): enumerate rows and count ions per bucket, one
	// contiguous peptide shard per worker.
	shards := make([]*buildShard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		lo := len(peptides) * w / workers
		hi := len(peptides) * (w + 1) / workers
		shards[w] = &buildShard{lo: lo, hi: hi}
		wg.Add(1)
		go func(sh *buildShard) {
			defer wg.Done()
			sh.enumerate(peptides, params)
		}(shards[w])
	}
	wg.Wait()
	// Shards cover ascending peptide ranges and each stops at its first
	// error, so the lowest failing shard holds the globally first error —
	// the same one the serial build would report.
	for _, sh := range shards {
		if sh.err != nil {
			return nil, sh.err
		}
	}

	maxBucket := 0
	totalIons := 0
	numRows := 0
	for _, sh := range shards {
		if sh.maxBucket > maxBucket {
			maxBucket = sh.maxBucket
		}
		totalIons += sh.totalIons
		numRows += len(sh.pending)
	}

	ix.numBuckets = maxBucket + 1
	ix.rows = make([]Row, numRows)
	ix.offsets = make([]uint32, ix.numBuckets+1)
	ix.ids = make([]uint32, totalIons)

	// CSR offsets from the summed per-shard bucket counts.
	sum := uint32(0)
	for b := 0; b < ix.numBuckets; b++ {
		ix.offsets[b] = sum
		for _, sh := range shards {
			if b < len(sh.counts) {
				sum += sh.counts[b]
			}
		}
	}
	ix.offsets[ix.numBuckets] = sum

	// Pass 2 (parallel): each shard fills its rows and postings. Row ids
	// are assigned in shard order, and a shard's write cursor for bucket b
	// starts after all earlier shards' postings in b, so every bucket's
	// posting list ends up in ascending row-id order — exactly the serial
	// fill order.
	base := make([]uint32, ix.numBuckets)
	copy(base, ix.offsets[:ix.numBuckets])
	ridBase := 0
	for _, sh := range shards {
		cursor := make([]uint32, len(sh.counts))
		copy(cursor, base[:len(sh.counts)])
		for b, c := range sh.counts {
			base[b] += c
		}
		wg.Add(1)
		go func(sh *buildShard, ridBase int, cursor []uint32) {
			defer wg.Done()
			bucketer := mass.NewBucketer(params.Resolution)
			for i, ri := range sh.pending {
				rid := uint32(ridBase + i)
				ix.rows[rid] = ri.row
				for _, ion := range ri.ions {
					b := bucketer.Bucket(ion)
					ix.ids[cursor[b]] = rid
					cursor[b]++
				}
			}
		}(sh, ridBase, cursor)
		ridBase += len(sh.pending)
	}
	wg.Wait()

	ix.sortByPrecursor()

	// The transient footprint during construction is the pending ion
	// lists plus the final arrays — the "2x index memory" effect the
	// paper describes for distributed SLM construction.
	ix.buildPeak = ix.MemoryBytes() + 8*totalIons

	return ix, nil
}

// sortByPrecursor derives the precursor-mass order over the rows and
// rewrites the postings in terms of it: perm/precs are built by sorting
// row ids on (precursor, id), every posting is remapped from row id to
// sorted position, and each bucket's posting list is re-sorted ascending.
// It runs once at the end of every build and when loading a pre-v3 file
// (v3 files persist the result). The input postings may be in any order;
// the output is deterministic — byte-identical for any build worker
// count, and for a v2 file identical to rebuilding from its peptides.
func (ix *Index) sortByPrecursor() {
	n := len(ix.rows)
	rows := ix.rows
	perm := make([]uint32, n)
	for i := range perm {
		perm[i] = uint32(i)
	}
	slices.SortFunc(perm, func(a, b uint32) int {
		if rows[a].Precursor != rows[b].Precursor {
			if rows[a].Precursor < rows[b].Precursor {
				return -1
			}
			return 1
		}
		return cmp.Compare(a, b)
	})
	inv := make([]uint32, n)
	precs := make([]float64, n)
	for s, o := range perm {
		inv[o] = uint32(s)
		precs[s] = rows[o].Precursor
	}
	for i, rid := range ix.ids {
		ix.ids[i] = inv[rid]
	}
	for b := 0; b < ix.numBuckets; b++ {
		slices.Sort(ix.ids[ix.offsets[b]:ix.offsets[b+1]])
	}
	ix.perm = perm
	ix.precs = precs
}

// MemoryBytes returns the resident size of the index structures in bytes:
// packed 16-byte rows, offsets (4 per bucket), ion postings (4 each) and
// the precursor-order columns (12 per row). This is the quantity reported
// by the Fig. 5 experiment. For a mapped index (OpenIndexMapped) it is
// the mapped footprint: the bytes are page-cache backed and shared across
// co-located processes.
func (ix *Index) MemoryBytes() int {
	return rowMemBytes*len(ix.rows) + 4*len(ix.offsets) + 4*len(ix.ids) +
		4*len(ix.perm) + 8*len(ix.precs)
}

// BuildPeakBytes returns the peak transient memory observed while the
// index was constructed (index plus staging ion lists).
func (ix *Index) BuildPeakBytes() int { return ix.buildPeak }

// bucketSpan returns the inclusive bucket index range for the fragment
// window around mz, clamped to the index; blo > bhi means no buckets.
//
//lbe:hotpath
func (ix *Index) bucketSpan(mz float64) (blo, bhi int) {
	bucketer := mass.NewBucketer(ix.params.Resolution)
	blo, bhi = bucketer.Range(mz, ix.params.FragmentTol)
	if blo < 0 {
		blo = 0
	}
	if bhi >= ix.numBuckets {
		bhi = ix.numBuckets - 1
	}
	return blo, bhi
}

// bucketRange returns the flattened posting range for the fragment window
// around mz, for the full scan that walks postings across buckets.
//
//lbe:hotpath
func (ix *Index) bucketRange(mz float64) (lo, hi uint32) {
	blo, bhi := ix.bucketSpan(mz)
	if blo > bhi {
		return 0, 0
	}
	return ix.offsets[blo], ix.offsets[bhi+1]
}

// SetFullScan forces every query on this index to run the flattened
// full-bucket phase-1 scan even when a narrow precursor tolerance would
// admit the windowed scan. Results are byte-identical either way — the
// windowed scan is a strict fast path — so the toggle exists only for
// benchmarks and equivalence tests that measure the two strategies
// against each other. It must not be flipped concurrently with Search.
func (ix *Index) SetFullScan(v bool) { ix.fullScan = v }

// WithPrecursorTol returns a read-only view of the index whose searches
// run under tol instead of the built-in precursor tolerance, sharing
// every array with the receiver (nothing is copied or rebuilt — the
// index's content does not depend on the query-time precursor window).
// The view does not own the receiver's mapping, so it must not outlive
// it; a mapped receiver is verified here so the view never needs to.
func (ix *Index) WithPrecursorTol(tol mass.Tolerance) (*Index, error) {
	if err := ix.Verify(); err != nil {
		return nil, err
	}
	p := ix.params
	p.PrecursorTol = tol
	return &Index{
		params:     p,
		rows:       ix.rows,
		offsets:    ix.offsets,
		ids:        ix.ids,
		perm:       ix.perm,
		precs:      ix.precs,
		numBuckets: ix.numBuckets,
		buildPeak:  ix.buildPeak,
	}, nil
}
