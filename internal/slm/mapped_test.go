package slm

import (
	"os"
	"path/filepath"
	"runtime"
	"testing"
)

func saveTestIndex(t *testing.T, ix *Index) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "part.slm")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	return path
}

// TestOpenIndexMappedMatchesHeap pins the tentpole equivalence: a mapped
// open must agree with the heap open byte for byte — same shape, same
// rows, and bit-identical search results.
func TestOpenIndexMappedMatchesHeap(t *testing.T) {
	built := buildTestIndex(t)
	path := saveTestIndex(t, built)

	heap, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndexMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if runtime.GOOS == "linux" && !mapped.Mapped() {
		t.Error("OpenIndexMapped fell back to heap on linux")
	}
	if heap.Mapped() {
		t.Error("heap-loaded index claims to be mapped")
	}
	if err := heap.Verify(); err != nil {
		t.Errorf("heap Verify must be a no-op: %v", err)
	}
	// Deferred content validation of a clean file succeeds, repeatedly.
	if err := mapped.Verify(); err != nil {
		t.Fatalf("mapped Verify: %v", err)
	}
	if err := mapped.Verify(); err != nil {
		t.Fatalf("second mapped Verify: %v", err)
	}

	if mapped.NumRows() != heap.NumRows() || mapped.NumIons() != heap.NumIons() ||
		mapped.numBuckets != heap.numBuckets {
		t.Fatalf("shape: mapped %d/%d/%d, heap %d/%d/%d",
			mapped.NumRows(), mapped.NumIons(), mapped.numBuckets,
			heap.NumRows(), heap.NumIons(), heap.numBuckets)
	}
	for rid := uint32(0); rid < uint32(heap.NumRows()); rid++ {
		if mapped.Row(rid) != heap.Row(rid) {
			t.Fatalf("row %d: mapped %+v, heap %+v", rid, mapped.Row(rid), heap.Row(rid))
		}
	}
	for _, pep := range []string{"PEPTIDEK", "NQKCMAAR", "AAAAGGGGK"} {
		q := queryFor(t, pep)
		a, wa := heap.Search(q, 0, nil)
		b, wb := mapped.Search(q, 0, nil)
		if len(a) != len(b) || wa != wb {
			t.Fatalf("%s: %d/%d matches, widened %v/%v", pep, len(a), len(b), wa, wb)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("%s match %d: heap %+v, mapped %+v", pep, i, a[i], b[i])
			}
		}
	}
	if mapped.MemoryBytes() != heap.MemoryBytes() {
		t.Errorf("memory accounting differs: mapped %d, heap %d",
			mapped.MemoryBytes(), heap.MemoryBytes())
	}
}

// TestOpenIndexMappedEmpty covers the zero-row, zero-posting corner.
func TestOpenIndexMappedEmpty(t *testing.T) {
	empty, err := Build(nil, DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndexMapped(saveTestIndex(t, empty))
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if mapped.NumRows() != 0 || mapped.NumIons() != 0 {
		t.Errorf("empty mapped index: %d rows %d ions", mapped.NumRows(), mapped.NumIons())
	}
}

// TestOpenIndexMappedV1FallsBack: v1 files predate the section table and
// cannot be mapped; the open must silently fall back to the heap loader.
func TestOpenIndexMappedV1FallsBack(t *testing.T) {
	ix := buildTestIndex(t)
	path := filepath.Join(t.TempDir(), "v1.slm")
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := writeToV1(ix, f); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := OpenIndexMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Mapped() {
		t.Error("v1 file must not report as mapped")
	}
	if got.NumRows() != ix.NumRows() {
		t.Errorf("v1 fallback rows = %d, want %d", got.NumRows(), ix.NumRows())
	}
}

// TestMappedIndexClose: Close releases the views and is idempotent;
// searching a heap index after (no-op) Close still works.
func TestMappedIndexClose(t *testing.T) {
	mapped, err := OpenIndexMapped(saveTestIndex(t, buildTestIndex(t)))
	if err != nil {
		t.Fatal(err)
	}
	if err := mapped.Close(); err != nil {
		t.Fatal(err)
	}
	if mapped.Mapped() {
		t.Error("closed index still claims to be mapped")
	}
	if err := mapped.Close(); err != nil {
		t.Errorf("second Close: %v", err)
	}
	if mapped.NumRows() != 0 {
		t.Errorf("closed index retains %d rows", mapped.NumRows())
	}

	heap := buildTestIndex(t)
	if err := heap.Close(); err != nil {
		t.Fatal(err)
	}
	if heap.NumRows() == 0 {
		t.Error("Close must be a no-op for heap indexes")
	}
}
