package slm

import (
	"fmt"
	"testing"
)

// TestSearchZeroAllocWarmScratch guards the zero-alloc search path: with a
// warm Scratch the only allocation Search may make is the single copy-out
// of the result slice (and none at all when nothing matches).
func TestSearchZeroAllocWarmScratch(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDER", "PEPTIDEH", "AAAAGGGGK"}
	ix, err := Build(peps, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	hit := queryFor(t, "PEPTIDEK")
	miss := queryFor(t, "WWWWWWWWK")

	var scratch Scratch
	ix.Search(hit, 5, &scratch) // warm buffers

	if n := testing.AllocsPerRun(100, func() {
		ix.Search(hit, 5, &scratch)
	}); n > 1 {
		t.Errorf("Search with matches allocates %.1f times per run, want <= 1 (result copy only)", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ix.Search(miss, 5, &scratch)
	}); n != 0 {
		t.Errorf("Search without matches allocates %.1f times per run, want 0", n)
	}
}

// TestMappedSearchZeroAllocWarmScratch extends the warm zero-alloc guard
// to the mapped search path: searching zero-copy views of a memory
// mapping must allocate exactly like searching heap arrays — one result
// copy with matches, nothing on a miss.
func TestMappedSearchZeroAllocWarmScratch(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDER", "PEPTIDEH", "AAAAGGGGK"}
	built, err := Build(peps, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	ix, err := OpenIndexMapped(saveTestIndex(t, built))
	if err != nil {
		t.Fatal(err)
	}
	defer ix.Close()
	hit := queryFor(t, "PEPTIDEK")
	miss := queryFor(t, "WWWWWWWWK")

	var scratch Scratch
	ix.Search(hit, 5, &scratch) // warm buffers

	if n := testing.AllocsPerRun(100, func() {
		ix.Search(hit, 5, &scratch)
	}); n > 1 {
		t.Errorf("mapped Search with matches allocates %.1f times per run, want <= 1 (result copy only)", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		ix.Search(miss, 5, &scratch)
	}); n != 0 {
		t.Errorf("mapped Search without matches allocates %.1f times per run, want 0", n)
	}
}

// TestChunkedSearchZeroAllocWarmScratch extends the guard across the
// chunked index's merge path.
func TestChunkedSearchZeroAllocWarmScratch(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDER", "PEPTIDEH", "AAAAGGGGK", "LLLLSSSSK", "MMMMTTTTK"}
	ci, err := BuildChunked(peps, noModParams(), 3)
	if err != nil {
		t.Fatal(err)
	}
	q := queryFor(t, "PEPTIDEK")

	var scratch Scratch
	ci.Search(q, 5, &scratch) // warm buffers

	if n := testing.AllocsPerRun(100, func() {
		ci.Search(q, 5, &scratch)
	}); n > 1 {
		t.Errorf("ChunkedIndex.Search allocates %.1f times per run, want <= 1 (result copy only)", n)
	}
}

// TestScratchGrowthAmortized reproduces the work-stealing pool's access
// pattern: one Scratch alternating between indexes of different row
// counts. Capacity must be rounded up so the alternation does not
// reallocate counts/inten on every switch.
func TestScratchGrowthAmortized(t *testing.T) {
	small := make([]string, 0, 3)
	big := make([]string, 0, 9)
	for i := 0; i < 9; i++ {
		seq := fmt.Sprintf("PEPT%cDEK", "ACDEFGHIK"[i])
		if i < 3 {
			small = append(small, seq)
		}
		big = append(big, seq)
	}
	ixSmall, err := Build(small, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	ixBig, err := Build(big, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	miss := queryFor(t, "WWWWWWWWK")

	var scratch Scratch
	ixBig.Search(miss, 0, &scratch) // warm to the larger size

	if n := testing.AllocsPerRun(50, func() {
		ixSmall.Search(miss, 0, &scratch)
		ixBig.Search(miss, 0, &scratch)
	}); n != 0 {
		t.Errorf("alternating shard sizes reallocates scratch (%.1f allocs per pair), want 0", n)
	}
}

// TestScratchEnsureRoundsCapacityUp pins the growth policy: capacity is
// rounded to the next power of two so a monotone-increasing run of shard
// sizes costs O(log n) reallocations, not one per size.
func TestScratchEnsureRoundsCapacityUp(t *testing.T) {
	var s Scratch
	s.ensure(65)
	if len(s.counts) < 128 || len(s.inten) < 128 {
		t.Fatalf("ensure(65) sized buffers to %d, want >= 128 (next power of two)", len(s.counts))
	}
	before := &s.counts[0]
	s.ensure(100)
	if &s.counts[0] != before {
		t.Fatal("ensure(100) reallocated a buffer that already had capacity for it")
	}
	s.ensure(3)
	if len(s.counts) < 128 {
		t.Fatal("ensure shrank the buffers")
	}
}

// TestSearchResultsSurviveScratchReuse pins the caller-ownership contract:
// results returned by Search must not be clobbered by a later search with
// the same Scratch.
func TestSearchResultsSurviveScratchReuse(t *testing.T) {
	peps := []string{"PEPTIDEK", "PEPTIDER", "AAAAGGGGK"}
	ix, err := Build(peps, noModParams())
	if err != nil {
		t.Fatal(err)
	}
	var scratch Scratch
	first, _ := ix.Search(queryFor(t, "PEPTIDEK"), 0, &scratch)
	snapshot := append([]Match(nil), first...)
	ix.Search(queryFor(t, "AAAAGGGGK"), 0, &scratch)
	for i := range first {
		if first[i] != snapshot[i] {
			t.Fatalf("match %d mutated by scratch reuse: %+v vs %+v", i, first[i], snapshot[i])
		}
	}
}

// TestSortMatchesDeterminism pins the ordering contract directly:
// descending score, ties broken by ascending row id.
func TestSortMatchesDeterminism(t *testing.T) {
	ms := []Match{
		{Row: 7, Score: 2.5},
		{Row: 3, Score: 9.0},
		{Row: 9, Score: 2.5},
		{Row: 1, Score: 2.5},
		{Row: 4, Score: 5.0},
	}
	sortMatches(ms)
	want := []uint32{3, 4, 1, 7, 9}
	for i, m := range ms {
		if m.Row != want[i] {
			t.Fatalf("order %v, want rows %v", ms, want)
		}
	}
}
