package slm

import (
	"math/rand"
	"sort"
	"testing"

	"lbe/internal/mass"
	"lbe/internal/spectrum"
)

func chunkTestPeptides(rng *rand.Rand, n int) []string {
	peps := make([]string, n)
	for i := range peps {
		peps[i] = randPeptide(rng, 6, 16)
	}
	return peps
}

// matchKey ignores Row (chunk-local) for cross-implementation comparison.
type matchKey struct {
	Peptide   uint32
	Shared    uint16
	Precursor float64
}

func keysOf(ms []Match) []matchKey {
	out := make([]matchKey, len(ms))
	for i, m := range ms {
		out[i] = matchKey{m.Peptide, m.Shared, m.Precursor}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].Peptide != out[b].Peptide {
			return out[a].Peptide < out[b].Peptide
		}
		if out[a].Shared != out[b].Shared {
			return out[a].Shared < out[b].Shared
		}
		return out[a].Precursor < out[b].Precursor
	})
	return out
}

func TestChunkedMatchesMonolithicOpenSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	peps := chunkTestPeptides(rng, 40)

	mono, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	for _, k := range []int{1, 3, 7} {
		chunked, err := BuildChunked(peps, params, k)
		if err != nil {
			t.Fatal(err)
		}
		if chunked.NumRows() != mono.NumRows() {
			t.Fatalf("k=%d: rows %d vs %d", k, chunked.NumRows(), mono.NumRows())
		}
		for trial := 0; trial < 10; trial++ {
			q := noisyQuery(rng, peps[rng.Intn(len(peps))])
			a, _ := mono.Search(q, 0, nil)
			b, _, touched := chunked.Search(q, 0, nil)
			if touched != k {
				t.Fatalf("open search must touch all %d chunks, touched %d", k, touched)
			}
			ka, kb := keysOf(a), keysOf(b)
			if len(ka) != len(kb) {
				t.Fatalf("k=%d trial %d: %d vs %d matches", k, trial, len(ka), len(kb))
			}
			for i := range ka {
				if ka[i] != kb[i] {
					t.Fatalf("k=%d trial %d match %d: %+v vs %+v", k, trial, i, ka[i], kb[i])
				}
			}
		}
	}
}

func noisyQuery(rng *rand.Rand, seq string) spectrum.Experimental {
	th, _ := spectrum.Predict(seq)
	q := spectrum.Experimental{PrecursorMZ: mass.MZ(th.Precursor, 1), Charge: 1}
	for _, ion := range th.Ions {
		if rng.Float64() < 0.85 {
			q.Peaks = append(q.Peaks, spectrum.Peak{
				MZ:        ion + (rng.Float64()-0.5)*0.04,
				Intensity: rng.Float64()*90 + 10,
			})
		}
	}
	q.SortPeaks()
	return q
}

func TestChunkedClosedSearchPrunesChunks(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	params.PrecursorTol = mass.Da(0.5)
	peps := chunkTestPeptides(rng, 60)

	const k = 6
	chunked, err := BuildChunked(peps, params, k)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}

	totalTouched := 0
	for trial := 0; trial < 20; trial++ {
		q := noisyQuery(rng, peps[rng.Intn(len(peps))])
		a, _ := mono.Search(q, 0, nil)
		b, _, touched := chunked.Search(q, 0, nil)
		totalTouched += touched
		ka, kb := keysOf(a), keysOf(b)
		if len(ka) != len(kb) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("trial %d: %+v vs %+v", trial, ka[i], kb[i])
			}
		}
	}
	// With a 0.5 Da window over a 60-peptide mass range, most chunks must
	// be skipped on average.
	if totalTouched >= 20*k/2 {
		t.Errorf("closed search touched %d/%d chunk-visits; pruning ineffective", totalTouched, 20*k)
	}
}

func TestChunkedClosedSearchWithModsStaysCorrect(t *testing.T) {
	// Modified variants are heavier than the unmodified mass that chunk
	// ranges are built from; pruning must widen ranges accordingly.
	rng := rand.New(rand.NewSource(97))
	params := DefaultParams()
	params.Mods.MaxPerPep = 2
	params.PrecursorTol = mass.Da(1.0)
	peps := chunkTestPeptides(rng, 30)

	chunked, err := BuildChunked(peps, params, 5)
	if err != nil {
		t.Fatal(err)
	}
	mono, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	// Query at a modified variant's mass: pick a peptide with a site.
	for trial := 0; trial < 30; trial++ {
		seq := peps[rng.Intn(len(peps))]
		vs, _ := params.Mods.Variants(seq)
		v := vs[rng.Intn(len(vs))]
		th, err := spectrum.PredictVariant(seq, v, params.Mods.Mods)
		if err != nil {
			t.Fatal(err)
		}
		q := spectrum.Experimental{PrecursorMZ: mass.MZ(th.Precursor, 1), Charge: 1}
		for _, ion := range th.Ions {
			q.Peaks = append(q.Peaks, spectrum.Peak{MZ: ion, Intensity: 50})
		}
		q.SortPeaks()

		a, _ := mono.Search(q, 0, nil)
		b, _, _ := chunked.Search(q, 0, nil)
		ka, kb := keysOf(a), keysOf(b)
		if len(ka) != len(kb) {
			t.Fatalf("trial %d (%s): %d vs %d matches", trial, seq, len(ka), len(kb))
		}
		for i := range ka {
			if ka[i] != kb[i] {
				t.Fatalf("trial %d: %+v vs %+v", trial, ka[i], kb[i])
			}
		}
	}
}

func TestChunkedReducesBuildPeak(t *testing.T) {
	rng := rand.New(rand.NewSource(101))
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	peps := chunkTestPeptides(rng, 80)

	mono, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	chunked, err := BuildChunked(peps, params, 8)
	if err != nil {
		t.Fatal(err)
	}
	// The whole point of internal partitioning (§VI): the transient
	// staging above the resident index (the "2x index memory" during
	// construction) shrinks to a single chunk's worth.
	monoStaging := mono.BuildPeakBytes() - mono.MemoryBytes()
	chunkedStaging := chunked.BuildPeakBytes() - chunked.MemoryBytes()
	if chunkedStaging >= monoStaging {
		t.Errorf("chunked staging %d not below monolithic %d", chunkedStaging, monoStaging)
	}
	if monoStaging <= 0 {
		t.Fatalf("monolithic staging %d; test premise broken", monoStaging)
	}
}

func TestChunkedTopK(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	peps := []string{"PEPTIDEK", "PEPTIDER", "PEPTIDEH", "PEPTIDEW", "PEPTIDEY"}
	chunked, err := BuildChunked(peps, params, 2)
	if err != nil {
		t.Fatal(err)
	}
	q := noisyQuery(rng, "PEPTIDEK")
	top, _, _ := chunked.Search(q, 2, nil)
	if len(top) > 2 {
		t.Fatalf("topK returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Score > top[i-1].Score {
			t.Error("topK not sorted")
		}
	}
}

func TestChunkedEdgeCases(t *testing.T) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 0
	// Empty peptide set.
	ci, err := BuildChunked(nil, params, 4)
	if err != nil {
		t.Fatal(err)
	}
	if ci.NumRows() != 0 {
		t.Error("empty chunked index has rows")
	}
	ms, _, _ := ci.Search(spectrum.Experimental{}, 5, nil)
	if len(ms) != 0 {
		t.Error("empty index matched")
	}
	// More chunks than peptides.
	ci, err = BuildChunked([]string{"PEPTIDEK", "AAAAGGGGK"}, params, 10)
	if err != nil {
		t.Fatal(err)
	}
	if ci.NumChunks() != 2 {
		t.Errorf("chunks = %d, want clamped 2", ci.NumChunks())
	}
	// Invalid chunk count.
	if _, err := BuildChunked([]string{"PEPTIDEK"}, params, 0); err == nil {
		t.Error("chunk count 0 must fail")
	}
	if ci.MemoryBytes() <= 0 {
		t.Error("memory accounting")
	}
}
