package slm

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"

	"lbe/internal/mods"
)

// FuzzReadIndex hammers the SLMX decoder with arbitrary bytes. The
// decoder must never panic, hang, or allocate proportionally to a forged
// count field; any input it does accept must re-serialize and re-read to
// an index of identical shape.
func FuzzReadIndex(f *testing.F) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR"}, params)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	empty, err := Build(nil, DefaultParams())
	if err != nil {
		f.Fatal(err)
	}
	var emptyBuf bytes.Buffer
	if _, err := empty.WriteTo(&emptyBuf); err != nil {
		f.Fatal(err)
	}

	// v1 streams keep their own decode path alive; a mods-free v1 index
	// puts the nrows field at the fixed offset 66 (magic 4 + version 4 +
	// params 54 + nseries 4), so a huge-row-count seed can be forged
	// deterministically.
	plainParams := DefaultParams()
	plainParams.Mods = mods.Config{}
	plain, err := Build([]string{"PEPTIDEK"}, plainParams)
	if err != nil {
		f.Fatal(err)
	}
	var plainV1 bytes.Buffer
	if err := writeToV1(plain, &plainV1); err != nil {
		f.Fatal(err)
	}
	var validV1 bytes.Buffer
	if err := writeToV1(ix, &validV1); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(emptyBuf.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(validV1.Bytes())
	f.Add([]byte("SLMX"))
	f.Add([]byte("NOPE"))
	// A truncated v1 header claiming a gigantic row count.
	hugeRows := append([]byte(nil), plainV1.Bytes()[:70]...)
	binary.LittleEndian.PutUint32(hugeRows[66:], 0xFFFFFFFF)
	f.Add(hugeRows)
	// The same offset in the mods-bearing v1 stream is the first mod-name
	// length: forge that too.
	hugeName := append([]byte(nil), validV1.Bytes()[:70]...)
	binary.LittleEndian.PutUint32(hugeName[66:], 0xFFFFFFFF)
	f.Add(hugeName)
	// v3 seeds: a forged section table — gigantic rows count at the
	// canonical offsets with a re-fixed header CRC — and a corrupt
	// section CRC in an otherwise intact file.
	tableOff, crcOff, headerLen := headerOffsets(plain, sectionTableEntries)
	var plainV3 bytes.Buffer
	if _, err := plain.WriteTo(&plainV3); err != nil {
		f.Fatal(err)
	}
	forged := append([]byte(nil), plainV3.Bytes()[:headerLen]...)
	binary.LittleEndian.PutUint64(forged[tableOff+8:], 1<<27)
	refixHeaderCRC(forged, crcOff)
	f.Add(forged)
	badSec := append([]byte(nil), plainV3.Bytes()...)
	badSec[len(badSec)-1] ^= 0xFF
	f.Add(badSec)

	// A v2 stream (raw row-id postings, three sections): keeps the
	// legacy decode-and-resort path under fuzz.
	var plainV2 bytes.Buffer
	if _, err := plain.WriteToVersion(&plainV2, indexVersionV2); err != nil {
		f.Fatal(err)
	}
	f.Add(plainV2.Bytes())
	f.Add(plainV2.Bytes()[:len(plainV2.Bytes())/2])

	// v3 semantic-corruption seeds: bytes whose CRCs all verify but whose
	// precursor-order invariants are broken. The decoder must reject, not
	// mis-serve, each of them.
	//   entry 4 (precs): first two entries swapped — non-monotone column,
	//   and one that also disagrees with the rows it mirrors.
	//   entry 3 (perm): first entry duplicated — not a permutation.
	//   entry 3 (perm): count forged to mismatch rows.
	v3 := plainV3.Bytes()
	secCorrupt := func(sec int, mutate func(d []byte, lo int64)) []byte {
		d := append([]byte(nil), v3...)
		entry := d[tableOff+sec*sectionEntryBytes:]
		lo := int64(binary.LittleEndian.Uint64(entry[0:8]))
		count := int64(binary.LittleEndian.Uint64(entry[8:16]))
		mutate(d, lo)
		binary.LittleEndian.PutUint32(entry[16:20],
			crc32.ChecksumIEEE(d[lo:lo+sectionElemBytes[sec]*count]))
		refixHeaderCRC(d, crcOff)
		return d
	}
	if plain.NumRows() >= 2 {
		f.Add(secCorrupt(4, func(d []byte, lo int64) {
			a := binary.LittleEndian.Uint64(d[lo : lo+8])
			b := binary.LittleEndian.Uint64(d[lo+8 : lo+16])
			binary.LittleEndian.PutUint64(d[lo:lo+8], b)
			binary.LittleEndian.PutUint64(d[lo+8:lo+16], a)
		}))
		f.Add(secCorrupt(3, func(d []byte, lo int64) {
			binary.LittleEndian.PutUint32(d[lo:lo+4], binary.LittleEndian.Uint32(d[lo+4:lo+8]))
		}))
	}
	permMismatch := append([]byte(nil), v3...)
	binary.LittleEndian.PutUint64(permMismatch[tableOff+3*sectionEntryBytes+8:], uint64(plain.NumRows())+1)
	refixHeaderCRC(permMismatch, crcOff)
	f.Add(permMismatch)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted inputs must survive a write/read round trip. The
		// opaque re-read also exercises the unknown-size decoding path.
		var buf bytes.Buffer
		if _, err := got.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing an accepted index failed: %v", err)
		}
		again, err := ReadIndex(opaqueReader{bytes.NewReader(buf.Bytes())})
		if err != nil {
			t.Fatalf("re-reading a re-serialized index failed: %v", err)
		}
		if again.NumRows() != got.NumRows() || again.NumIons() != got.NumIons() {
			t.Fatalf("round trip changed shape: %d/%d rows, %d/%d ions",
				again.NumRows(), got.NumRows(), again.NumIons(), got.NumIons())
		}
	})
}
