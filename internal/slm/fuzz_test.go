package slm

import (
	"bytes"
	"encoding/binary"
	"testing"

	"lbe/internal/mods"
)

// FuzzReadIndex hammers the SLMX decoder with arbitrary bytes. The
// decoder must never panic, hang, or allocate proportionally to a forged
// count field; any input it does accept must re-serialize and re-read to
// an index of identical shape.
func FuzzReadIndex(f *testing.F) {
	params := DefaultParams()
	params.Mods.MaxPerPep = 1
	ix, err := Build([]string{"PEPTIDEK", "NQKCMAAR"}, params)
	if err != nil {
		f.Fatal(err)
	}
	var valid bytes.Buffer
	if _, err := ix.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	empty, err := Build(nil, DefaultParams())
	if err != nil {
		f.Fatal(err)
	}
	var emptyBuf bytes.Buffer
	if _, err := empty.WriteTo(&emptyBuf); err != nil {
		f.Fatal(err)
	}

	// v1 streams keep their own decode path alive; a mods-free v1 index
	// puts the nrows field at the fixed offset 66 (magic 4 + version 4 +
	// params 54 + nseries 4), so a huge-row-count seed can be forged
	// deterministically.
	plainParams := DefaultParams()
	plainParams.Mods = mods.Config{}
	plain, err := Build([]string{"PEPTIDEK"}, plainParams)
	if err != nil {
		f.Fatal(err)
	}
	var plainV1 bytes.Buffer
	if err := writeToV1(plain, &plainV1); err != nil {
		f.Fatal(err)
	}
	var validV1 bytes.Buffer
	if err := writeToV1(ix, &validV1); err != nil {
		f.Fatal(err)
	}

	f.Add(valid.Bytes())
	f.Add(emptyBuf.Bytes())
	f.Add(valid.Bytes()[:len(valid.Bytes())/2])
	f.Add(validV1.Bytes())
	f.Add([]byte("SLMX"))
	f.Add([]byte("NOPE"))
	// A truncated v1 header claiming a gigantic row count.
	hugeRows := append([]byte(nil), plainV1.Bytes()[:70]...)
	binary.LittleEndian.PutUint32(hugeRows[66:], 0xFFFFFFFF)
	f.Add(hugeRows)
	// The same offset in the mods-bearing v1 stream is the first mod-name
	// length: forge that too.
	hugeName := append([]byte(nil), validV1.Bytes()[:70]...)
	binary.LittleEndian.PutUint32(hugeName[66:], 0xFFFFFFFF)
	f.Add(hugeName)
	// v2 seeds: a forged section table — gigantic rows count at the
	// canonical offsets with a re-fixed header CRC — and a corrupt
	// section CRC in an otherwise intact file.
	tableOff, crcOff, headerLen := v2HeaderOffsets(plain)
	var plainV2 bytes.Buffer
	if _, err := plain.WriteTo(&plainV2); err != nil {
		f.Fatal(err)
	}
	forged := append([]byte(nil), plainV2.Bytes()[:headerLen]...)
	binary.LittleEndian.PutUint64(forged[tableOff+8:], 1<<27)
	refixV2HeaderCRC(forged, crcOff)
	f.Add(forged)
	badSec := append([]byte(nil), plainV2.Bytes()...)
	badSec[len(badSec)-1] ^= 0xFF
	f.Add(badSec)

	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := ReadIndex(bytes.NewReader(data))
		if err != nil {
			return
		}
		// Accepted inputs must survive a write/read round trip. The
		// opaque re-read also exercises the unknown-size decoding path.
		var buf bytes.Buffer
		if _, err := got.WriteTo(&buf); err != nil {
			t.Fatalf("re-serializing an accepted index failed: %v", err)
		}
		again, err := ReadIndex(opaqueReader{bytes.NewReader(buf.Bytes())})
		if err != nil {
			t.Fatalf("re-reading a re-serialized index failed: %v", err)
		}
		if again.NumRows() != got.NumRows() || again.NumIons() != got.NumIons() {
			t.Fatalf("round trip changed shape: %d/%d rows, %d/%d ions",
				again.NumRows(), got.NumRows(), again.NumIons(), got.NumIons())
		}
	})
}
