package slm

import (
	"bytes"
	"encoding/binary"
	"io"
	"runtime"
	"testing"
)

// writeToV1 emits the legacy v1 stream (count-prefixed arrays, 15-byte
// row records, single trailing CRC) so the v1 read path — and its
// hostile-count defenses — stay covered now that WriteTo produces v3.
// v1 postings are raw row ids, so the in-memory sorted positions are
// mapped back through perm first (legacyIDs), exactly as the v2 writer
// does.
func writeToV1(ix *Index, w io.Writer) error {
	if _, err := io.WriteString(w, indexMagic); err != nil {
		return err
	}
	cw := &crcWriter{w: w}
	e := &indexEncoder{cw: cw}
	e.u32(indexVersionV1)
	e.params(ix.params)
	e.u32(uint32(len(ix.rows)))
	for _, r := range ix.rows {
		e.u32(r.Peptide)
		e.f64(r.Precursor)
		var b [3]byte
		binary.LittleEndian.PutUint16(b[0:2], r.NumIons)
		if r.Modified() {
			b[2] = 1
		}
		e.write(b[:])
	}
	e.u32(uint32(ix.numBuckets))
	e.u32(uint32(len(ix.offsets)))
	e.u32s(ix.offsets)
	ids := ix.ids
	if len(ix.perm) > 0 {
		ids = ix.legacyIDs()
	}
	e.u32(uint32(len(ids)))
	e.u32s(ids)
	if e.err != nil {
		return e.err
	}
	var crcb [4]byte
	binary.LittleEndian.PutUint32(crcb[:], cw.crc)
	_, err := w.Write(crcb[:])
	return err
}

func encodeV1(t *testing.T, ix *Index) []byte {
	t.Helper()
	var buf bytes.Buffer
	if err := writeToV1(ix, &buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func TestSerializeV1RoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	got, err := ReadIndex(bytes.NewReader(encodeV1(t, ix)))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ix.NumRows() || got.NumIons() != ix.NumIons() {
		t.Fatalf("shape: %d/%d rows, %d/%d ions",
			got.NumRows(), ix.NumRows(), got.NumIons(), ix.NumIons())
	}
	q := queryFor(t, "PEPTIDEK")
	a, wa := ix.Search(q, 0, nil)
	b, wb := got.Search(q, 0, nil)
	if len(a) != len(b) || wa != wb {
		t.Fatalf("results differ after v1 round trip: %d vs %d matches", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	if got.Params().Mods.MaxPerPep != 1 || len(got.Params().Mods.Mods) != 3 {
		t.Errorf("params not preserved: %+v", got.Params().Mods)
	}
}

func TestSerializeV1DetectsCorruption(t *testing.T) {
	data := encodeV1(t, buildTestIndex(t))
	data[len(data)/2] ^= 0xFF
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("corrupted v1 index must fail the checksum")
	}
}

// TestSerializeV1CorruptLengthFields patches individual untrusted count
// fields in a valid v1 stream and asserts ReadIndex fails cleanly — both
// when the input size is knowable and when it is an opaque stream.
//
// With no mods and no explicit ion series the v1 stream has a fixed
// header layout:
//
//	magic 4 | version 4 | params 54 | nseries 4 | nrows 4 | rows ... |
//	numBuckets 4 | noffsets 4 | offsets ... | nids 4 | ids ... | crc 4
func TestSerializeV1CorruptLengthFields(t *testing.T) {
	ix := buildPlainIndex(t)
	valid := encodeV1(t, ix)

	// Fixed offsets of the count fields in the mods-free layout.
	const nrowsOff = 66
	rowsStart := nrowsOff + 4
	numBucketsOff := rowsStart + rowWireBytesV1*len(ix.rows)
	noffsetsOff := numBucketsOff + 4
	offsetsStart := noffsetsOff + 4
	nidsOff := offsetsStart + 4*len(ix.offsets)

	// Sanity-check the computed layout against the real stream before
	// mutating it: the u32s at those offsets must hold the known counts.
	le := binary.LittleEndian
	if got := le.Uint32(valid[nrowsOff:]); got != uint32(len(ix.rows)) {
		t.Fatalf("layout drift: nrows field holds %d, want %d", got, len(ix.rows))
	}
	if got := le.Uint32(valid[nidsOff:]); got != uint32(len(ix.ids)) {
		t.Fatalf("layout drift: nids field holds %d, want %d", got, len(ix.ids))
	}

	patch := func(off int, v uint32) func([]byte) []byte {
		return func(data []byte) []byte {
			le.PutUint32(data[off:], v)
			return data
		}
	}
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"nrows max u32", patch(nrowsOff, 0xFFFFFFFF)},
		{"nrows over input size", patch(nrowsOff, uint32(len(ix.rows)+10_000))},
		{"nrows truncated after count", func(d []byte) []byte {
			le.PutUint32(d[nrowsOff:], 1<<27)
			return d[:nrowsOff+4]
		}},
		{"row payload truncated", func(d []byte) []byte { return d[:rowsStart+rowWireBytesV1/2] }},
		{"bucket count max u32", patch(numBucketsOff, 0xFFFFFFFF)},
		{"offsets length mismatch", patch(noffsetsOff, uint32(len(ix.offsets)+1))},
		{"nids max u32", patch(nidsOff, 0xFFFFFFFF)},
		{"nids huge then truncated", func(d []byte) []byte {
			le.PutUint32(d[nidsOff:], 0xFFFFFFF0)
			return d[:nidsOff+4]
		}},
		{"nids undercount", patch(nidsOff, uint32(len(ix.ids)-1))},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), valid...))
		if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
			t.Errorf("%s (sized reader): ReadIndex accepted corrupt input", tc.name)
		}
		if _, err := ReadIndex(opaqueReader{bytes.NewReader(data)}); err == nil {
			t.Errorf("%s (opaque stream): ReadIndex accepted corrupt input", tc.name)
		}
	}
}

// TestSerializeV1CorruptStringLength targets the mod-name string length
// in a v1 index that carries modifications.
func TestSerializeV1CorruptStringLength(t *testing.T) {
	data := encodeV1(t, buildTestIndex(t)) // three mods, no explicit series
	// With nseries == 0 the first mod's name length sits right after the
	// params block: magic 4 + version 4 + params 54 + nseries 4.
	const nameLenOff = 66
	binary.LittleEndian.PutUint32(data[nameLenOff:], 0xFFFFFF)
	if _, err := ReadIndex(bytes.NewReader(data)); err == nil {
		t.Error("huge string length must fail")
	}
}

// TestReadIndexAllocationBounded asserts the core promise of the
// hardened reader: a tiny input claiming a gigantic array provokes only
// a small allocation, not one proportional to the forged count. Both the
// v1 count-prefix and the v2 section-table variants are exercised.
func TestReadIndexAllocationBounded(t *testing.T) {
	ix := buildPlainIndex(t)

	// v1: forge the nrows count prefix and truncate right after it.
	const nrowsOff = 66
	v1 := append([]byte(nil), encodeV1(t, ix)[:nrowsOff+4]...)
	binary.LittleEndian.PutUint32(v1[nrowsOff:], 1<<27) // claims ~2 GiB of rows

	// v3: forge a gigantic rows count in the section table — the header
	// requires perm and precs counts to match rows, so forge all three,
	// with every entry moved to its matching canonical offset and the
	// header CRC re-fixed, so the decoder gets past the layout checks and
	// must survive the forged counts themselves — then truncate the
	// sections away.
	var buf bytes.Buffer
	if _, err := ix.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	tableOff, crcOff, headerLen := headerOffsets(ix, sectionTableEntries)
	v2 := append([]byte(nil), buf.Bytes()[:headerLen]...)
	counts := []int64{1 << 27, int64(len(ix.offsets)), int64(len(ix.ids)), 1 << 27, 1 << 27}
	forged := fileLayout(sectionTableEntries, int64(headerLen), counts)
	le2 := binary.LittleEndian
	for i := 0; i < sectionTableEntries; i++ {
		le2.PutUint64(v2[tableOff+i*sectionEntryBytes:], uint64(forged.offs[i]))
		le2.PutUint64(v2[tableOff+i*sectionEntryBytes+8:], uint64(counts[i])) // rows/perm/precs claim ~2 GiB
	}
	refixHeaderCRC(v2, crcOff)
	// Supply the padding and the first 64 KiB of (zero) row bytes so the
	// decoder genuinely enters the rows section before hitting EOF.
	v2 = append(v2, make([]byte, int(forged.offs[0])-headerLen+64<<10)...)

	runtime.GC()
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	for i := 0; i < 8; i++ {
		if _, err := ReadIndex(opaqueReader{bytes.NewReader(v1)}); err == nil {
			t.Fatal("truncated huge-count v1 input must fail")
		}
		if _, err := ReadIndex(opaqueReader{bytes.NewReader(v2)}); err == nil {
			t.Fatal("truncated huge-count v2 input must fail")
		}
	}
	runtime.ReadMemStats(&after)
	if grew := after.TotalAlloc - before.TotalAlloc; grew > 16<<20 {
		t.Errorf("16 corrupt reads allocated %d bytes; the forged count leaked into allocation", grew)
	}
}
