package slm

import (
	"bytes"
	"math/rand"
	"os"
	"path/filepath"
	"testing"

	"lbe/internal/mass"
)

// TestWindowedScanMatchesFullScan is the core equivalence property of the
// precursor-windowed kernel: for every tolerance — narrow, ppm-relative,
// wider than the indexed mass range, and fully open — the windowed scan
// and the forced full scan must return byte-identical matches in the same
// order, at topK=0 (raw emission order) and topK>0 (ranked). The work
// accounting must also tie out: windowed IonHits + Pruned equals the full
// scan's IonHits, and the scored-set size never changes.
func TestWindowedScanMatchesFullScan(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	peps := chunkTestPeptides(rng, 50)
	for _, tol := range []mass.Tolerance{
		mass.Da(0.01), mass.Da(0.5), mass.Da(3.0),
		mass.Ppm(10), mass.Ppm(500),
		mass.Da(1e7), // wider than any indexed mass range: must fall back
		mass.Open(),
	} {
		params := DefaultParams()
		params.Mods.MaxPerPep = 1
		params.PrecursorTol = tol
		ix, err := Build(peps, params)
		if err != nil {
			t.Fatal(err)
		}
		full, err := Build(peps, params)
		if err != nil {
			t.Fatal(err)
		}
		full.SetFullScan(true)
		for trial := 0; trial < 20; trial++ {
			q := noisyQuery(rng, peps[rng.Intn(len(peps))])
			for _, topK := range []int{0, 5} {
				a, wa := ix.Search(q, topK, nil)
				b, wb := full.Search(q, topK, nil)
				if len(a) != len(b) {
					t.Fatalf("tol %+v topK %d trial %d: %d vs %d matches", tol, topK, trial, len(a), len(b))
				}
				for i := range a {
					if a[i] != b[i] {
						t.Fatalf("tol %+v topK %d trial %d match %d: %+v vs %+v", tol, topK, trial, i, a[i], b[i])
					}
				}
				if wa.IonHits+wa.Pruned != wb.IonHits {
					t.Fatalf("tol %+v trial %d: windowed IonHits %d + Pruned %d != full IonHits %d",
						tol, trial, wa.IonHits, wa.Pruned, wb.IonHits)
				}
				if wa.Scored != wb.Scored {
					t.Fatalf("tol %+v trial %d: Scored %d vs %d", tol, trial, wa.Scored, wb.Scored)
				}
				if wb.Pruned != 0 {
					t.Fatalf("tol %+v trial %d: full scan reported Pruned = %d", tol, trial, wb.Pruned)
				}
				if tol.IsOpen() && wa.Pruned != 0 {
					t.Fatalf("open search must not prune, got %d", wa.Pruned)
				}
			}
		}
	}
}

// TestWindowedScanPrunes asserts the windowed scan actually skips work at
// a narrow tolerance on a corpus with spread-out precursor masses — the
// point of the layout, not just its safety.
func TestWindowedScanPrunes(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	peps := chunkTestPeptides(rng, 80)
	params := DefaultParams()
	params.PrecursorTol = mass.Da(0.5)
	ix, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	var total Work
	for trial := 0; trial < 20; trial++ {
		_, w := ix.Search(noisyQuery(rng, peps[rng.Intn(len(peps))]), 0, nil)
		total.Add(w)
	}
	if total.Pruned == 0 {
		t.Error("narrow tolerance on a spread corpus pruned nothing")
	}
	if total.Pruned < total.IonHits {
		t.Logf("pruned %d vs visited %d (corpus-dependent; informational)", total.Pruned, total.IonHits)
	}
}

// TestWindowedScanMapped runs the equivalence check against a mapped v3
// store: the zero-copy perm/precs views must drive the same windowed
// results as the heap index that produced the file.
func TestWindowedScanMapped(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	peps := chunkTestPeptides(rng, 40)
	params := DefaultParams()
	params.PrecursorTol = mass.Da(0.5)
	ix, err := Build(peps, params)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "win.slm")
	if err := ix.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	mapped, err := OpenIndexMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer mapped.Close()
	if err := mapped.Verify(); err != nil {
		t.Fatal(err)
	}
	full, err := OpenIndexMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer full.Close()
	full.SetFullScan(true)
	for trial := 0; trial < 10; trial++ {
		q := noisyQuery(rng, peps[rng.Intn(len(peps))])
		a, _ := mapped.Search(q, 0, nil)
		b, _ := full.Search(q, 0, nil)
		c, _ := ix.Search(q, 0, nil)
		if len(a) != len(b) || len(a) != len(c) {
			t.Fatalf("trial %d: mapped windowed %d, mapped full %d, heap %d matches", trial, len(a), len(b), len(c))
		}
		for i := range a {
			if a[i] != b[i] || a[i] != c[i] {
				t.Fatalf("trial %d match %d: %+v / %+v / %+v", trial, i, a[i], b[i], c[i])
			}
		}
	}
}

// TestWithPrecursorTol: a tolerance-overridden view must behave exactly
// like an index built with that tolerance, and leave its parent intact.
func TestWithPrecursorTol(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	peps := chunkTestPeptides(rng, 40)
	open := DefaultParams()
	open.Mods.MaxPerPep = 1
	open.PrecursorTol = mass.Open()
	parent, err := Build(peps, open)
	if err != nil {
		t.Fatal(err)
	}
	narrowParams := open
	narrowParams.PrecursorTol = mass.Da(0.5)
	want, err := Build(peps, narrowParams)
	if err != nil {
		t.Fatal(err)
	}
	view, err := parent.WithPrecursorTol(mass.Da(0.5))
	if err != nil {
		t.Fatal(err)
	}
	if view.Params().PrecursorTol != (mass.Da(0.5)) {
		t.Fatalf("view tolerance = %+v", view.Params().PrecursorTol)
	}
	if !parent.Params().PrecursorTol.IsOpen() {
		t.Fatal("WithPrecursorTol mutated its parent")
	}
	for trial := 0; trial < 10; trial++ {
		q := noisyQuery(rng, peps[rng.Intn(len(peps))])
		a, _ := view.Search(q, 0, nil)
		b, _ := want.Search(q, 0, nil)
		if len(a) != len(b) {
			t.Fatalf("trial %d: %d vs %d matches", trial, len(a), len(b))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("trial %d match %d: %+v vs %+v", trial, i, a[i], b[i])
			}
		}
	}
}

// TestWriteToVersionV2RoundTrip: a v3 index re-encoded as v2 must decode
// to an index with identical search behavior (the decode re-derives the
// precursor order), and the v2 bytes must be stable across an
// encode/decode/encode cycle — the property the store migration path
// relies on.
func TestWriteToVersionV2RoundTrip(t *testing.T) {
	ix := buildTestIndex(t)
	var v2 bytes.Buffer
	if _, err := ix.WriteToVersion(&v2, indexVersionV2); err != nil {
		t.Fatal(err)
	}
	got, err := ReadIndex(bytes.NewReader(v2.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if got.NumRows() != ix.NumRows() || got.NumIons() != ix.NumIons() {
		t.Fatalf("shape: %d/%d rows, %d/%d ions", got.NumRows(), ix.NumRows(), got.NumIons(), ix.NumIons())
	}
	q := queryFor(t, "PEPTIDEK")
	a, wa := ix.Search(q, 0, nil)
	b, wb := got.Search(q, 0, nil)
	if len(a) != len(b) || wa != wb {
		t.Fatalf("results differ after v2 round trip: %d vs %d matches, work %+v vs %+v", len(a), len(b), wa, wb)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("match %d: %+v vs %+v", i, a[i], b[i])
		}
	}
	var again bytes.Buffer
	if _, err := got.WriteToVersion(&again, indexVersionV2); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(v2.Bytes(), again.Bytes()) {
		t.Error("v2 encoding is not stable across a round trip")
	}
	// A v2 file cannot back a read-only mapping (its postings must be
	// rewritten): the mapped open must fall back to the heap, not fail.
	path := filepath.Join(t.TempDir(), "legacy.slm")
	if err := os.WriteFile(path, v2.Bytes(), 0o644); err != nil {
		t.Fatal(err)
	}
	legacy, err := OpenIndexMapped(path)
	if err != nil {
		t.Fatal(err)
	}
	defer legacy.Close()
	if legacy.Mapped() {
		t.Error("v2 store must not report a zero-copy mapping")
	}
	c, _ := legacy.Search(q, 0, nil)
	for i := range a {
		if a[i] != c[i] {
			t.Fatalf("heap-fallback match %d: %+v vs %+v", i, a[i], c[i])
		}
	}
	if _, err := ix.WriteToVersion(&bytes.Buffer{}, 7); err == nil {
		t.Error("WriteToVersion must reject unknown versions")
	}
}
