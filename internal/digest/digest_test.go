package digest

import (
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/mass"
)

func noFilter() Config {
	return Config{
		Enzyme:          Trypsin,
		MissedCleavages: 0,
		MinLen:          1,
		MaxLen:          1 << 20,
		MinMass:         0,
		MaxMass:         1e12,
	}
}

func TestTrypsinFragments(t *testing.T) {
	cases := []struct {
		seq  string
		want []string
	}{
		{"MKTAYIAKQR", []string{"MK", "TAYIAK", "QR"}},
		{"AAKPBB", []string{"AAKPBB"}},   // proline blocks cleavage
		{"KRK", []string{"K", "R", "K"}}, // consecutive sites
		{"AAA", []string{"AAA"}},         // no sites
		{"AAAK", []string{"AAAK"}},       // terminal K: no trailing cut
		{"KAAA", []string{"K", "AAA"}},   // leading K
		{"AKRPA", []string{"AK", "RPA"}}, // P blocks the second cut only
	}
	for _, c := range cases {
		got := Trypsin.Fragments(c.seq)
		if strings.Join(got, "|") != strings.Join(c.want, "|") {
			t.Errorf("Fragments(%q) = %v, want %v", c.seq, got, c.want)
		}
	}
}

func TestFragmentsReassembleProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	const alpha = "ACDEFGHIKLMNPQRSTVWYKR" // K/R enriched
	f := func(n uint8) bool {
		var sb strings.Builder
		for i := 0; i < int(n%120)+1; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		seq := sb.String()
		return strings.Join(Trypsin.Fragments(seq), "") == seq
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDigestNoMissedCleavages(t *testing.T) {
	peps, err := noFilter().Proteome([]string{"MKTAYIAKQR"})
	if err != nil {
		t.Fatal(err)
	}
	want := []string{"MK", "TAYIAK", "QR"}
	if len(peps) != len(want) {
		t.Fatalf("got %d peptides %v, want %v", len(peps), peps, want)
	}
	for i, p := range peps {
		if p.Sequence != want[i] {
			t.Errorf("pep[%d] = %q, want %q", i, p.Sequence, want[i])
		}
		if p.Missed != 0 || p.Protein != 0 {
			t.Errorf("pep[%d] metadata = %+v", i, p)
		}
		if p.Mass != mass.MustPeptide(p.Sequence) {
			t.Errorf("pep[%d] mass mismatch", i)
		}
	}
}

func TestDigestMissedCleavages(t *testing.T) {
	cfg := noFilter()
	cfg.MissedCleavages = 2
	peps, err := cfg.Proteome([]string{"MKTAYIAKQR"})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int{}
	for _, p := range peps {
		got[p.Sequence] = p.Missed
	}
	want := map[string]int{
		"MK": 0, "TAYIAK": 0, "QR": 0,
		"MKTAYIAK": 1, "TAYIAKQR": 1,
		"MKTAYIAKQR": 2,
	}
	if len(got) != len(want) {
		t.Fatalf("got %v, want %v", got, want)
	}
	for seq, m := range want {
		if got[seq] != m {
			t.Errorf("%q missed = %d, want %d", seq, got[seq], m)
		}
	}
}

func TestDigestFilters(t *testing.T) {
	cfg := noFilter()
	cfg.MinLen = 6
	cfg.MaxLen = 8
	peps, err := cfg.Proteome([]string{"MKTAYIAKQR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(peps) != 1 || peps[0].Sequence != "TAYIAK" {
		t.Errorf("length filter result: %v", peps)
	}

	cfg = noFilter()
	cfg.MinMass = 600
	peps, err = cfg.Proteome([]string{"MKTAYIAKQR"})
	if err != nil {
		t.Fatal(err)
	}
	if len(peps) != 1 || peps[0].Sequence != "TAYIAK" {
		t.Errorf("mass filter result: %v", peps)
	}
}

func TestDigestDefaultConfigBounds(t *testing.T) {
	cfg := DefaultConfig()
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	peps, err := cfg.Proteome([]string{"MKTAYIAKQRGGDDLLKAAAPPPRTTTVVVKMMMNNK"})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range peps {
		if len(p.Sequence) < 6 || len(p.Sequence) > 40 {
			t.Errorf("peptide %q violates length bounds", p.Sequence)
		}
		if p.Mass < 100 || p.Mass > 5000 {
			t.Errorf("peptide %q violates mass bounds (%f)", p.Sequence, p.Mass)
		}
		if p.Missed > 2 {
			t.Errorf("peptide %q has %d missed cleavages", p.Sequence, p.Missed)
		}
	}
}

func TestDigestInvalidInputs(t *testing.T) {
	if _, err := noFilter().Proteome([]string{"MKXAY"}); err == nil {
		t.Error("non-standard residue should fail")
	}
	bad := noFilter()
	bad.MinLen = 0
	if _, err := bad.Proteome([]string{"MK"}); err == nil {
		t.Error("invalid config should fail")
	}
	bad = noFilter()
	bad.MissedCleavages = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative missed cleavages should fail")
	}
	bad = noFilter()
	bad.Enzyme = Enzyme{Name: "none"}
	if err := bad.Validate(); err == nil {
		t.Error("enzyme without cleavage residues should fail")
	}
	bad = noFilter()
	bad.MaxMass = 1
	bad.MinMass = 10
	if err := bad.Validate(); err == nil {
		t.Error("inverted mass bounds should fail")
	}
}

func TestLysC(t *testing.T) {
	got := LysC.Fragments("AKRPAKPB")
	// Lys-C cuts after every K regardless of following residue.
	want := []string{"AK", "RPAK", "PB"}
	if strings.Join(got, "|") != strings.Join(want, "|") {
		t.Errorf("LysC fragments = %v, want %v", got, want)
	}
}

func TestMissedCleavageCountProperty(t *testing.T) {
	// With unlimited filters, digesting with m missed cleavages yields
	// exactly sum_{k=0..m} max(0, F-k) peptides, where F = #fragments.
	rng := rand.New(rand.NewSource(5))
	const alpha = "ACDEFGHIKLMNPQRSTVWYKRKR"
	f := func(n, mcRaw uint8) bool {
		var sb strings.Builder
		for i := 0; i < int(n%80)+1; i++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		seq := sb.String()
		mc := int(mcRaw % 4)
		cfg := noFilter()
		cfg.MissedCleavages = mc
		peps, err := cfg.Proteome([]string{seq})
		if err != nil {
			return false
		}
		frags := len(Trypsin.Fragments(seq))
		want := 0
		for k := 0; k <= mc; k++ {
			if frags-k > 0 {
				want += frags - k
			}
		}
		return len(peps) == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDedup(t *testing.T) {
	peps := []Peptide{
		{Sequence: "AAK", Protein: 0},
		{Sequence: "CCK", Protein: 0},
		{Sequence: "AAK", Protein: 1}, // dup, later protein
		{Sequence: "DDK", Protein: 2},
		{Sequence: "CCK", Protein: 2},
	}
	got := Dedup(peps)
	if len(got) != 3 {
		t.Fatalf("got %d peptides, want 3", len(got))
	}
	if got[0].Sequence != "AAK" || got[0].Protein != 0 {
		t.Errorf("first occurrence not kept: %+v", got[0])
	}
	if got[1].Sequence != "CCK" || got[2].Sequence != "DDK" {
		t.Errorf("order not preserved: %+v", got)
	}
}

func TestDedupEmpty(t *testing.T) {
	if got := Dedup(nil); len(got) != 0 {
		t.Errorf("Dedup(nil) = %v", got)
	}
}

func TestDedupProperty(t *testing.T) {
	f := func(raw []uint8) bool {
		peps := make([]Peptide, len(raw))
		for i, r := range raw {
			peps[i] = Peptide{Sequence: strings.Repeat("K", int(r%7)+1)}
		}
		out := Dedup(peps)
		seen := map[string]bool{}
		for _, p := range out {
			if seen[p.Sequence] {
				return false
			}
			seen[p.Sequence] = true
		}
		// Every input sequence must appear exactly once in the output.
		for _, p := range peps {
			if !seen[p.Sequence] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSequences(t *testing.T) {
	peps := []Peptide{{Sequence: "AAK"}, {Sequence: "CCK"}}
	got := Sequences(peps)
	if len(got) != 2 || got[0] != "AAK" || got[1] != "CCK" {
		t.Errorf("Sequences = %v", got)
	}
}
