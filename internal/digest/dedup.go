package digest

// Dedup removes peptides with duplicate sequences, keeping the first
// occurrence of each sequence (mirroring the paper's DBToolkit step, which
// collapses identical tryptic peptides arising from homologous proteins).
// The input order of survivors is preserved.
func Dedup(peps []Peptide) []Peptide {
	seen := make(map[string]struct{}, len(peps))
	out := peps[:0:0] // fresh backing array; callers may retain the input
	for _, p := range peps {
		if _, dup := seen[p.Sequence]; dup {
			continue
		}
		seen[p.Sequence] = struct{}{}
		out = append(out, p)
	}
	return out
}

// Sequences projects the peptide list to its sequences, in order.
func Sequences(peps []Peptide) []string {
	out := make([]string, len(peps))
	for i, p := range peps {
		out[i] = p.Sequence
	}
	return out
}
