// Package digest performs in-silico enzymatic digestion of protein
// sequences into peptides, reproducing the preprocessing the paper performed
// with OpenMS Digestor: fully tryptic cleavage, a bounded number of missed
// cleavages, and peptide length and mass filters.
package digest

import (
	"fmt"

	"lbe/internal/mass"
)

// Enzyme describes a cleavage rule: cut after any residue in CutAfter
// unless the next residue is in NoCutBefore.
type Enzyme struct {
	Name        string
	CutAfter    string // residues after which the enzyme cleaves
	NoCutBefore string // residues that block cleavage when immediately C-terminal
}

// Trypsin is the standard rule used by the paper: cleave C-terminal to
// lysine (K) or arginine (R), but not when the next residue is proline (P).
var Trypsin = Enzyme{Name: "Trypsin", CutAfter: "KR", NoCutBefore: "P"}

// LysC cleaves after lysine only; provided for configurability tests.
var LysC = Enzyme{Name: "Lys-C", CutAfter: "K", NoCutBefore: ""}

// cleavesAfter reports whether the enzyme cuts between seq[i] and seq[i+1].
func (e Enzyme) cleavesAfter(seq string, i int) bool {
	if i < 0 || i >= len(seq)-1 {
		return false
	}
	if !contains(e.CutAfter, seq[i]) {
		return false
	}
	return !contains(e.NoCutBefore, seq[i+1])
}

func contains(set string, b byte) bool {
	for i := 0; i < len(set); i++ {
		if set[i] == b {
			return true
		}
	}
	return false
}

// Config controls a digestion run. The zero value is not useful; use
// DefaultConfig for the paper's settings.
type Config struct {
	Enzyme          Enzyme
	MissedCleavages int     // maximum missed cleavages per peptide
	MinLen, MaxLen  int     // inclusive peptide length bounds
	MinMass         float64 // inclusive neutral mass bounds (Da)
	MaxMass         float64
}

// DefaultConfig mirrors the paper's Digestor settings: fully tryptic, up to
// 2 missed cleavages, lengths 6-40, masses 100-5000 amu.
func DefaultConfig() Config {
	return Config{
		Enzyme:          Trypsin,
		MissedCleavages: 2,
		MinLen:          6,
		MaxLen:          40,
		MinMass:         100,
		MaxMass:         5000,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.Enzyme.CutAfter == "" {
		return fmt.Errorf("digest: enzyme %q has no cleavage residues", c.Enzyme.Name)
	}
	if c.MissedCleavages < 0 {
		return fmt.Errorf("digest: negative missed cleavages %d", c.MissedCleavages)
	}
	if c.MinLen < 1 || c.MaxLen < c.MinLen {
		return fmt.Errorf("digest: invalid length bounds [%d,%d]", c.MinLen, c.MaxLen)
	}
	if c.MinMass < 0 || c.MaxMass < c.MinMass {
		return fmt.Errorf("digest: invalid mass bounds [%g,%g]", c.MinMass, c.MaxMass)
	}
	return nil
}

// Peptide is a digestion product: the sequence, its neutral monoisotopic
// mass, the index of its parent protein, and the number of missed cleavage
// sites it spans.
type Peptide struct {
	Sequence string
	Mass     float64
	Protein  int
	Missed   int
}

// Fragments returns the fully cleaved fragments of seq (zero missed
// cleavages), with no length or mass filtering. Concatenating the fragments
// reconstructs seq.
func (e Enzyme) Fragments(seq string) []string {
	var frags []string
	start := 0
	for i := 0; i < len(seq)-1; i++ {
		if e.cleavesAfter(seq, i) {
			frags = append(frags, seq[start:i+1])
			start = i + 1
		}
	}
	if start < len(seq) {
		frags = append(frags, seq[start:])
	}
	return frags
}

// Protein digests one protein (given by index and sequence) and appends the
// surviving peptides to dst, returning the extended slice. Sequences with
// non-standard residues yield an error identifying the protein.
func (c Config) Protein(dst []Peptide, proteinIdx int, seq string) ([]Peptide, error) {
	if err := c.Validate(); err != nil {
		return dst, err
	}
	if !mass.ValidSequence(seq) {
		return dst, fmt.Errorf("digest: protein %d contains non-standard residues", proteinIdx)
	}
	frags := c.Enzyme.Fragments(seq)
	// Combine runs of up to MissedCleavages+1 consecutive fragments.
	for i := 0; i < len(frags); i++ {
		pep := ""
		for j := i; j < len(frags) && j-i <= c.MissedCleavages; j++ {
			pep += frags[j]
			if len(pep) > c.MaxLen {
				break
			}
			if len(pep) < c.MinLen {
				continue
			}
			m := mass.MustPeptide(pep)
			if m < c.MinMass || m > c.MaxMass {
				continue
			}
			dst = append(dst, Peptide{
				Sequence: pep,
				Mass:     m,
				Protein:  proteinIdx,
				Missed:   j - i,
			})
		}
	}
	return dst, nil
}

// Proteome digests every protein sequence and returns all surviving
// peptides in protein order.
func (c Config) Proteome(seqs []string) ([]Peptide, error) {
	var peps []Peptide
	for i, seq := range seqs {
		var err error
		peps, err = c.Protein(peps, i, seq)
		if err != nil {
			return nil, err
		}
	}
	return peps, nil
}
