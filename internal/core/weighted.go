package core

import (
	"fmt"
	"math/rand"
)

// PartitionWeighted distributes the clustered peptide order over machines
// proportionally to their weights (relative compute speeds). It realizes
// the "load-predicting model for heterogeneous memory-distributed
// architectures" the paper lists as future work (§VIII): a machine that is
// twice as fast receives twice the peptides, so equal *time* per machine
// replaces equal *count*.
//
// Uniform weights reduce every policy to its PartitionClustered
// counterpart (cyclic dealing order, contiguous chunks, and so on).
func PartitionWeighted(g Grouping, weights []float64, policy Policy, seed int64) (Partition, error) {
	p := len(weights)
	if p < 1 {
		return Partition{}, fmt.Errorf("core: need at least one machine weight")
	}
	sum := 0.0
	for m, w := range weights {
		if w <= 0 {
			return Partition{}, fmt.Errorf("core: weight %g of machine %d must be positive", w, m)
		}
		sum += w
	}
	n := len(g.Order)
	part := Partition{Policy: policy, P: p, Assign: make([][]int, p)}

	switch policy {
	case Chunk:
		sizes := apportion(n, weights, sum)
		pos := 0
		for m := 0; m < p; m++ {
			part.Assign[m] = makeRange(pos, pos+sizes[m])
			pos += sizes[m]
		}

	case Cyclic:
		// Smooth weighted round-robin: deterministic, spreads every
		// group, and converges to the weight proportions.
		dealer := newSWRR(weights)
		for m := 0; m < p; m++ {
			part.Assign[m] = make([]int, 0, int(float64(n)*weights[m]/sum)+1)
		}
		for i := 0; i < n; i++ {
			m := dealer.next()
			part.Assign[m] = append(part.Assign[m], i)
		}

	case Random:
		perm := rand.New(rand.NewSource(seed)).Perm(n)
		sizes := apportion(n, weights, sum)
		pos := 0
		for m := 0; m < p; m++ {
			part.Assign[m] = append([]int(nil), perm[pos:pos+sizes[m]]...)
			pos += sizes[m]
		}

	case RandomWithinGroups:
		rng := rand.New(rand.NewSource(seed))
		dealer := newSWRR(weights)
		for m := 0; m < p; m++ {
			part.Assign[m] = make([]int, 0, int(float64(n)*weights[m]/sum)+1)
		}
		start := 0
		for _, sz := range g.Sizes {
			members := makeRange(start, start+sz)
			rng.Shuffle(len(members), func(i, j int) {
				members[i], members[j] = members[j], members[i]
			})
			for _, pos := range members {
				m := dealer.next()
				part.Assign[m] = append(part.Assign[m], pos)
			}
			start += sz
		}

	default:
		return Partition{}, fmt.Errorf("core: unknown policy %v", policy)
	}
	return part, nil
}

// apportion splits n items into len(weights) integer shares proportional
// to the weights using the largest-remainder method, ties broken by
// machine index for determinism.
func apportion(n int, weights []float64, sum float64) []int {
	p := len(weights)
	sizes := make([]int, p)
	rems := make([]float64, p)
	used := 0
	for m, w := range weights {
		exact := float64(n) * w / sum
		sizes[m] = int(exact)
		rems[m] = exact - float64(sizes[m])
		used += sizes[m]
	}
	for used < n {
		best := 0
		for m := 1; m < p; m++ {
			if rems[m] > rems[best] {
				best = m
			}
		}
		sizes[best]++
		rems[best] = -1
		used++
	}
	return sizes
}

// swrr is nginx-style smooth weighted round-robin: repeatedly add each
// weight to a running current, emit the machine with the largest current,
// then subtract the total. Deterministic; with equal weights it emits
// 0,1,...,p-1 cyclically.
type swrr struct {
	weights []float64
	current []float64
	total   float64
}

func newSWRR(weights []float64) *swrr {
	s := &swrr{weights: weights, current: make([]float64, len(weights))}
	for _, w := range weights {
		s.total += w
	}
	return s
}

func (s *swrr) next() int {
	best := 0
	for m := range s.current {
		s.current[m] += s.weights[m]
		if s.current[m] > s.current[best] {
			best = m
		}
	}
	s.current[best] -= s.total
	return best
}
