// Package core implements LBE, the paper's contribution: a load-balancing
// data-distribution layer for distributed peptide search. It provides
//
//   - peptide grouping (Algorithm 1): clustering similar peptide sequences
//     so that reference spectra likely to co-match a query are identified;
//   - partition policies (Chunk, Cyclic, Random) that spread those groups
//     across machines so every machine holds a similar data sketch;
//   - the master-side mapping table that translates each machine's virtual
//     peptide indices back to global index entries in O(1).
package core

import (
	"fmt"
	"sort"

	"lbe/internal/editdist"
)

// Criterion selects which of the two grouping cutoffs from Algorithm 1 is
// applied when deciding whether a peptide joins the current group.
type Criterion uint8

const (
	// AbsoluteEdit is criterion 1: join when
	// EditDistance(seed, s) <= max{D, len(s)/2}.
	AbsoluteEdit Criterion = iota
	// NormalizedEdit is criterion 2: join when
	// EditDistance(seed, s) / max{len(seed), len(s)} <= DPrime.
	NormalizedEdit
)

// String implements fmt.Stringer.
func (c Criterion) String() string {
	switch c {
	case AbsoluteEdit:
		return "absolute"
	case NormalizedEdit:
		return "normalized"
	default:
		return fmt.Sprintf("Criterion(%d)", uint8(c))
	}
}

// GroupConfig holds the Algorithm 1 parameters. The zero value is invalid;
// use DefaultGroupConfig for the paper's defaults.
type GroupConfig struct {
	Criterion Criterion
	D         int     // criterion 1 distance floor (paper default 2)
	DPrime    float64 // criterion 2 normalized cutoff (paper default 0.86)
	GroupSize int     // maximum peptides per group (paper default 20)
}

// DefaultGroupConfig returns the paper defaults: criterion 2 with
// d' = 0.86 and group size 20 (the setting used in §V-A1).
func DefaultGroupConfig() GroupConfig {
	return GroupConfig{Criterion: NormalizedEdit, D: 2, DPrime: 0.86, GroupSize: 20}
}

// Validate reports configuration errors.
func (c GroupConfig) Validate() error {
	if c.GroupSize < 1 {
		return fmt.Errorf("core: group size %d must be >= 1", c.GroupSize)
	}
	switch c.Criterion {
	case AbsoluteEdit:
		if c.D < 0 {
			return fmt.Errorf("core: criterion 1 distance floor %d must be >= 0", c.D)
		}
	case NormalizedEdit:
		if c.DPrime < 0 || c.DPrime > 1 {
			return fmt.Errorf("core: criterion 2 cutoff %g must be in [0,1]", c.DPrime)
		}
	default:
		return fmt.Errorf("core: unknown criterion %d", c.Criterion)
	}
	return nil
}

// Grouping is the result of Algorithm 1 applied to a peptide list: the
// permutation that sorts the input into clustered order and the sizes of
// the consecutive groups in that order.
type Grouping struct {
	// Order[i] is the index into the original peptide list of the i-th
	// peptide in clustered order.
	Order []int
	// Sizes[g] is the number of peptides in group g; groups are consecutive
	// runs of Order. Sum(Sizes) == len(Order).
	Sizes []int
}

// NumGroups returns the number of groups.
func (g Grouping) NumGroups() int { return len(g.Sizes) }

// Bounds returns the half-open [start, end) range of group gi within Order.
func (g Grouping) Bounds(gi int) (start, end int) {
	for i := 0; i < gi; i++ {
		start += g.Sizes[i]
	}
	return start, start + g.Sizes[gi]
}

// GroupOf returns, for each clustered position, the group it belongs to.
func (g Grouping) GroupOf() []int {
	out := make([]int, len(g.Order))
	pos := 0
	for gi, sz := range g.Sizes {
		for k := 0; k < sz; k++ {
			out[pos] = gi
			pos++
		}
	}
	return out
}

// joins reports whether candidate seq s may join the group seeded by seed
// under the configured criterion.
func (c GroupConfig) joins(seed, s string) bool {
	switch c.Criterion {
	case AbsoluteEdit:
		cutoff := c.D
		if half := len(s) / 2; half > cutoff {
			cutoff = half
		}
		return editdist.Within(seed, s, cutoff)
	default: // NormalizedEdit
		n := len(seed)
		if len(s) > n {
			n = len(s)
		}
		if n == 0 {
			return true
		}
		// dist/n <= DPrime  <=>  dist <= floor(DPrime * n)
		cutoff := int(c.DPrime * float64(n))
		return editdist.Within(seed, s, cutoff)
	}
}

// Group runs Algorithm 1 over the peptide sequences: sort by length then
// lexicographically, then greedily grow groups from the running seed until
// the criterion fails or the group size cap is hit. It returns the
// clustered ordering and group sizes.
//
// The input slice is not modified.
func Group(seqs []string, cfg GroupConfig) (Grouping, error) {
	if err := cfg.Validate(); err != nil {
		return Grouping{}, err
	}
	order := make([]int, len(seqs))
	for i := range order {
		order[i] = i
	}
	// SortByLength then LexSort (stable two-key sort).
	sort.SliceStable(order, func(a, b int) bool {
		sa, sb := seqs[order[a]], seqs[order[b]]
		if len(sa) != len(sb) {
			return len(sa) < len(sb)
		}
		return sa < sb
	})

	g := Grouping{Order: order}
	if len(order) == 0 {
		return g, nil
	}

	seed := seqs[order[0]]
	g.Sizes = append(g.Sizes, 1)
	for k := 1; k < len(order); k++ {
		s := seqs[order[k]]
		last := len(g.Sizes) - 1
		if g.Sizes[last] >= cfg.GroupSize || !cfg.joins(seed, s) {
			// Init new group seeded at s.
			seed = s
			g.Sizes = append(g.Sizes, 1)
			continue
		}
		g.Sizes[last]++
	}
	return g, nil
}

// IdentityGrouping returns the no-op grouping over n peptides: original
// database order, every peptide its own group. It is the "no LBE
// clustering" baseline used by the grouping ablation.
func IdentityGrouping(n int) Grouping {
	g := Grouping{Order: make([]int, n), Sizes: make([]int, n)}
	for i := range g.Order {
		g.Order[i] = i
		g.Sizes[i] = 1
	}
	return g
}

// Clustered returns the peptide sequences in clustered order, the layout
// written to the "clustered database" FASTA in the original pipeline.
func (g Grouping) Clustered(seqs []string) []string {
	out := make([]string, len(g.Order))
	for i, idx := range g.Order {
		out[i] = seqs[idx]
	}
	return out
}
