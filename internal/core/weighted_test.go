package core

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestWeightedUniformMatchesUnweighted(t *testing.T) {
	g := grouping(100, 10)
	uniform := []float64{1, 1, 1, 1}
	for _, pol := range []Policy{Chunk, Cyclic, Random, RandomWithinGroups} {
		a, err := PartitionClustered(g, 4, pol, 42)
		if err != nil {
			t.Fatal(err)
		}
		b, err := PartitionWeighted(g, uniform, pol, 42)
		if err != nil {
			t.Fatal(err)
		}
		for m := range a.Assign {
			if len(a.Assign[m]) != len(b.Assign[m]) {
				t.Fatalf("%v machine %d: %d vs %d", pol, m, len(a.Assign[m]), len(b.Assign[m]))
			}
			for i := range a.Assign[m] {
				if a.Assign[m][i] != b.Assign[m][i] {
					t.Fatalf("%v machine %d pos %d: %d vs %d",
						pol, m, i, a.Assign[m][i], b.Assign[m][i])
				}
			}
		}
	}
}

func TestWeightedProportionality(t *testing.T) {
	g := grouping(1000, 20)
	weights := []float64{4, 2, 1, 1}
	sum := 8.0
	for _, pol := range []Policy{Chunk, Cyclic, Random, RandomWithinGroups} {
		part, err := PartitionWeighted(g, weights, pol, 7)
		if err != nil {
			t.Fatal(err)
		}
		for m, w := range weights {
			want := 1000 * w / sum
			got := float64(len(part.Assign[m]))
			if math.Abs(got-want) > 4 { // SWRR drift is bounded by p
				t.Errorf("%v machine %d: %v peptides, want ~%v", pol, m, got, want)
			}
		}
	}
}

func TestWeightedCoverProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(107))
	policies := []Policy{Chunk, Cyclic, Random, RandomWithinGroups}
	f := func(nRaw uint8, pRaw, polRaw uint8, seed int64) bool {
		n := int(nRaw)
		p := int(pRaw%8) + 1
		weights := make([]float64, p)
		for i := range weights {
			weights[i] = rng.Float64()*9 + 1
		}
		g := grouping(n, rng.Intn(19)+1)
		part, err := PartitionWeighted(g, weights, policies[int(polRaw)%len(policies)], seed)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, a := range part.Assign {
			for _, pos := range a {
				if pos < 0 || pos >= n {
					return false
				}
				seen[pos]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestWeightedCyclicSpreadsGroups(t *testing.T) {
	// Every window of the clustered order must be spread across machines
	// roughly by weight; check the first group of 16 under weights 3:1.
	g := grouping(64, 16)
	part, err := PartitionWeighted(g, []float64{3, 1}, Cyclic, 0)
	if err != nil {
		t.Fatal(err)
	}
	machineOf := part.MachineOf()
	counts := [2]int{}
	for pos := 0; pos < 16; pos++ {
		counts[machineOf[pos]]++
	}
	if counts[0] != 12 || counts[1] != 4 {
		t.Errorf("first group split %v, want [12 4]", counts)
	}
}

func TestWeightedErrors(t *testing.T) {
	g := grouping(10, 5)
	if _, err := PartitionWeighted(g, nil, Chunk, 0); err == nil {
		t.Error("empty weights must fail")
	}
	if _, err := PartitionWeighted(g, []float64{1, 0}, Chunk, 0); err == nil {
		t.Error("zero weight must fail")
	}
	if _, err := PartitionWeighted(g, []float64{1, -2}, Cyclic, 0); err == nil {
		t.Error("negative weight must fail")
	}
	if _, err := PartitionWeighted(g, []float64{1, 1}, Policy(77), 0); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestApportion(t *testing.T) {
	sizes := apportion(10, []float64{1, 1, 1}, 3)
	if sizes[0]+sizes[1]+sizes[2] != 10 {
		t.Fatalf("apportion sum = %v", sizes)
	}
	// 10/3: largest remainder gives 4,3,3.
	if sizes[0] != 4 || sizes[1] != 3 || sizes[2] != 3 {
		t.Errorf("sizes = %v, want [4 3 3]", sizes)
	}
	sizes = apportion(7, []float64{5, 1}, 6)
	if sizes[0] != 6 || sizes[1] != 1 {
		t.Errorf("sizes = %v, want [6 1]", sizes)
	}
	sizes = apportion(0, []float64{2, 3}, 5)
	if sizes[0] != 0 || sizes[1] != 0 {
		t.Errorf("sizes = %v, want zeros", sizes)
	}
}

func TestSWRREqualWeightsIsRoundRobin(t *testing.T) {
	s := newSWRR([]float64{1, 1, 1})
	for i := 0; i < 30; i++ {
		if got := s.next(); got != i%3 {
			t.Fatalf("step %d: machine %d, want %d", i, got, i%3)
		}
	}
}

func TestSWRRProportionsProperty(t *testing.T) {
	f := func(aRaw, bRaw, cRaw uint8) bool {
		w := []float64{float64(aRaw%9) + 1, float64(bRaw%9) + 1, float64(cRaw%9) + 1}
		s := newSWRR(w)
		const steps = 9000
		counts := [3]int{}
		for i := 0; i < steps; i++ {
			counts[s.next()]++
		}
		sum := w[0] + w[1] + w[2]
		for m := range w {
			want := steps * w[m] / sum
			if math.Abs(float64(counts[m])-want) > 3 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}
