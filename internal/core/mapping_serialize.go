package core

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"math"
)

// Binary mapping-table format ("LBMT"), the master-side companion of the
// SLMX index format: a persistent session store saves the mapping table
// once so a reloaded cluster can resolve (machine, virtual index) pairs
// without re-running grouping and partitioning.
//
// Layout (little-endian):
//
//	magic "LBMT" | version u32 | machines u32 |
//	offsets u64 × (machines+1) | nentries u32 | entries u32 × n | crc32
//
// The CRC covers everything between the magic and the checksum itself.
// Length fields are untrusted until the CRC verifies, so the decoder
// bounds every one against the bytes actually present before allocating.

const (
	mappingMagic   = "LBMT"
	mappingVersion = 1

	// maxMappingMachines is an absolute sanity cap on the machine count;
	// real deployments are orders of magnitude smaller.
	maxMappingMachines = 1 << 20
)

// MarshalBinary implements encoding.BinaryMarshaler. It rejects tables
// the decoder's caps would refuse, so a saved blob always reloads.
func (t MappingTable) MarshalBinary() ([]byte, error) {
	p := t.Machines()
	if p < 0 {
		return nil, fmt.Errorf("core: mapping table has no offsets")
	}
	if p > maxMappingMachines {
		return nil, fmt.Errorf("core: %d machines exceed the serializable cap %d", p, maxMappingMachines)
	}
	if len(t.entries) > math.MaxInt32 {
		return nil, fmt.Errorf("core: %d entries exceed the serializable cap %d", len(t.entries), math.MaxInt32)
	}
	le := binary.LittleEndian
	out := make([]byte, 0, 4+4+4+8*(p+1)+4+4*len(t.entries)+4)
	out = append(out, mappingMagic...)
	out = le.AppendUint32(out, mappingVersion)
	out = le.AppendUint32(out, uint32(p))
	for _, off := range t.offsets {
		out = le.AppendUint64(out, uint64(off))
	}
	out = le.AppendUint32(out, uint32(len(t.entries)))
	for _, e := range t.entries {
		out = le.AppendUint32(out, e)
	}
	crc := crc32.ChecksumIEEE(out[len(mappingMagic):])
	out = le.AppendUint32(out, crc)
	return out, nil
}

// UnmarshalMappingTable parses a table written by MarshalBinary,
// verifying the checksum, the format version and the structural
// invariants (monotone offsets starting at zero and ending at the entry
// count). Allocation is bounded by len(data).
func UnmarshalMappingTable(data []byte) (MappingTable, error) {
	var t MappingTable
	le := binary.LittleEndian
	if len(data) < len(mappingMagic)+4+4+8+4+4 {
		return t, fmt.Errorf("core: mapping blob of %d bytes is too short", len(data))
	}
	if string(data[:len(mappingMagic)]) != mappingMagic {
		return t, fmt.Errorf("core: bad mapping magic %q", data[:len(mappingMagic)])
	}
	payload := data[len(mappingMagic) : len(data)-4]
	if got, want := le.Uint32(data[len(data)-4:]), crc32.ChecksumIEEE(payload); got != want {
		return t, fmt.Errorf("core: mapping checksum mismatch: blob %08x, computed %08x", got, want)
	}
	if v := le.Uint32(payload); v != mappingVersion {
		return t, fmt.Errorf("core: unsupported mapping version %d (want %d)", v, mappingVersion)
	}
	p := le.Uint32(payload[4:])
	if p > maxMappingMachines {
		return t, fmt.Errorf("core: mapping machine count %d implausible", p)
	}
	rest := payload[8:]
	need := 8*(int64(p)+1) + 4
	if int64(len(rest)) < need {
		return t, fmt.Errorf("core: mapping blob truncated: %d machines need %d bytes, %d remain",
			p, need, len(rest))
	}
	t.offsets = make([]int, p+1)
	for i := range t.offsets {
		off := le.Uint64(rest[8*i:])
		if off > math.MaxInt32 {
			return t, fmt.Errorf("core: mapping offset %d out of range", off)
		}
		t.offsets[i] = int(off)
		if i > 0 && t.offsets[i] < t.offsets[i-1] {
			return t, fmt.Errorf("core: mapping offsets not monotone at machine %d", i)
		}
	}
	if t.offsets[0] != 0 {
		return t, fmt.Errorf("core: mapping offsets start at %d, want 0", t.offsets[0])
	}
	rest = rest[8*(int(p)+1):]
	n := le.Uint32(rest)
	if int(n) != t.offsets[p] {
		return t, fmt.Errorf("core: mapping entry count %d != offsets end %d", n, t.offsets[p])
	}
	rest = rest[4:]
	if int64(len(rest)) != 4*int64(n) {
		return t, fmt.Errorf("core: mapping blob has %d entry bytes, want %d", len(rest), 4*int64(n))
	}
	t.entries = make([]uint32, n)
	for i := range t.entries {
		t.entries[i] = le.Uint32(rest[4*i:])
	}
	return t, nil
}
