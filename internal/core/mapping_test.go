package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestMappingTableBasic(t *testing.T) {
	g := Grouping{Order: []int{4, 2, 0, 3, 1}, Sizes: []int{5}}
	p, _ := PartitionClustered(g, 2, Cyclic, 0)
	// Cyclic: machine 0 gets positions 0,2,4 -> orig 4,0,1
	//         machine 1 gets positions 1,3   -> orig 2,3
	tbl := BuildMappingTable(g, p)
	if tbl.Machines() != 2 || tbl.Len() != 5 {
		t.Fatalf("table shape: machines=%d len=%d", tbl.Machines(), tbl.Len())
	}
	if tbl.MachineLen(0) != 3 || tbl.MachineLen(1) != 2 {
		t.Fatalf("machine lens = %d, %d", tbl.MachineLen(0), tbl.MachineLen(1))
	}
	cases := []struct {
		m    int
		v    uint32
		want uint32
	}{
		{0, 0, 4}, {0, 1, 0}, {0, 2, 1},
		{1, 0, 2}, {1, 1, 3},
	}
	for _, c := range cases {
		got, err := tbl.Lookup(c.m, c.v)
		if err != nil {
			t.Fatalf("Lookup(%d,%d): %v", c.m, c.v, err)
		}
		if got != c.want {
			t.Errorf("Lookup(%d,%d) = %d, want %d", c.m, c.v, got, c.want)
		}
		if tbl.MustLookup(c.m, c.v) != c.want {
			t.Errorf("MustLookup mismatch")
		}
	}
}

func TestMappingTableErrors(t *testing.T) {
	g := grouping(4, 2)
	p, _ := PartitionClustered(g, 2, Chunk, 0)
	tbl := BuildMappingTable(g, p)
	if _, err := tbl.Lookup(-1, 0); err == nil {
		t.Error("negative machine must fail")
	}
	if _, err := tbl.Lookup(2, 0); err == nil {
		t.Error("machine out of range must fail")
	}
	if _, err := tbl.Lookup(0, 99); err == nil {
		t.Error("virtual index out of range must fail")
	}
	defer func() {
		if recover() == nil {
			t.Error("MustLookup should panic on error")
		}
	}()
	tbl.MustLookup(0, 99)
}

func TestMappingTableBijectionProperty(t *testing.T) {
	// Looking up every (machine, virtual) pair enumerates each global
	// index exactly once — the table is a bijection.
	rng := rand.New(rand.NewSource(71))
	policies := []Policy{Chunk, Cyclic, Random, RandomWithinGroups}
	f := func(nRaw, pRaw, polRaw uint8, seed int64) bool {
		n := int(nRaw)
		p := int(pRaw%12) + 1
		g := grouping(n, rng.Intn(19)+1)
		// Scramble Order to a random permutation for generality.
		rng.Shuffle(n, func(i, j int) { g.Order[i], g.Order[j] = g.Order[j], g.Order[i] })
		part, err := PartitionClustered(g, p, policies[int(polRaw)%len(policies)], seed)
		if err != nil {
			return false
		}
		tbl := BuildMappingTable(g, part)
		seen := make([]int, n)
		for m := 0; m < tbl.Machines(); m++ {
			for v := 0; v < tbl.MachineLen(m); v++ {
				gidx, err := tbl.Lookup(m, uint32(v))
				if err != nil {
					return false
				}
				seen[gidx]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMappingTableMemoryBytes(t *testing.T) {
	g := grouping(100, 10)
	p, _ := PartitionClustered(g, 4, Cyclic, 0)
	tbl := BuildMappingTable(g, p)
	want := 4*100 + 8*5
	if got := tbl.MemoryBytes(); got != want {
		t.Errorf("MemoryBytes = %d, want %d", got, want)
	}
}

// TestMappingTableSubset verifies that a subset table renumbers machines
// locally while lookups keep returning the original global indices — the
// property shard-set stores rely on.
func TestMappingTableSubset(t *testing.T) {
	g := Grouping{Order: []int{4, 2, 0, 3, 1, 5}, Sizes: []int{6}}
	p, _ := PartitionClustered(g, 3, Cyclic, 0)
	tbl := BuildMappingTable(g, p)

	sub, err := tbl.Subset([]int{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if sub.Machines() != 2 {
		t.Fatalf("subset machines = %d, want 2", sub.Machines())
	}
	if sub.Len() != tbl.MachineLen(1)+tbl.MachineLen(2) {
		t.Fatalf("subset len = %d", sub.Len())
	}
	for local, global := range []int{1, 2} {
		if sub.MachineLen(local) != tbl.MachineLen(global) {
			t.Fatalf("machine %d len differs", local)
		}
		for v := 0; v < sub.MachineLen(local); v++ {
			got, err := sub.Lookup(local, uint32(v))
			if err != nil {
				t.Fatal(err)
			}
			if want := tbl.MustLookup(global, uint32(v)); got != want {
				t.Fatalf("subset Lookup(%d,%d) = %d, want %d", local, v, got, want)
			}
		}
	}

	// Subsets survive the binary round-trip the store uses.
	blob, err := sub.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	back, err := UnmarshalMappingTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != sub.Len() || back.Machines() != sub.Machines() {
		t.Fatalf("round-trip shape differs")
	}

	for _, bad := range [][]int{{-1}, {3}, {0, 7}} {
		if _, err := tbl.Subset(bad); err == nil {
			t.Fatalf("Subset(%v): expected an error", bad)
		}
	}
}
