package core

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func grouping(n, groupSize int) Grouping {
	g := Grouping{Order: make([]int, n)}
	for i := range g.Order {
		g.Order[i] = i
	}
	for n > 0 {
		sz := groupSize
		if sz > n {
			sz = n
		}
		g.Sizes = append(g.Sizes, sz)
		n -= sz
	}
	return g
}

func TestChunkPartition(t *testing.T) {
	g := grouping(10, 4)
	p, err := PartitionClustered(g, 3, Chunk, 0)
	if err != nil {
		t.Fatal(err)
	}
	// 10 over 3: sizes 4,3,3, contiguous.
	want := [][]int{{0, 1, 2, 3}, {4, 5, 6}, {7, 8, 9}}
	for m := range want {
		if len(p.Assign[m]) != len(want[m]) {
			t.Fatalf("machine %d = %v, want %v", m, p.Assign[m], want[m])
		}
		for i := range want[m] {
			if p.Assign[m][i] != want[m][i] {
				t.Fatalf("machine %d = %v, want %v", m, p.Assign[m], want[m])
			}
		}
	}
}

func TestCyclicPartition(t *testing.T) {
	g := grouping(7, 3)
	p, err := PartitionClustered(g, 3, Cyclic, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]int{{0, 3, 6}, {1, 4}, {2, 5}}
	for m := range want {
		got := p.Assign[m]
		if len(got) != len(want[m]) {
			t.Fatalf("machine %d = %v, want %v", m, got, want[m])
		}
		for i := range want[m] {
			if got[i] != want[m][i] {
				t.Fatalf("machine %d = %v, want %v", m, got, want[m])
			}
		}
	}
}

func TestCyclicBalancesEveryGroup(t *testing.T) {
	// With cyclic distribution, any window of p consecutive clustered
	// positions touches every machine exactly once, so each group of size
	// >= p is spread over all machines.
	g := grouping(64, 16)
	p, _ := PartitionClustered(g, 4, Cyclic, 0)
	machineOf := p.MachineOf()
	start := 0
	for _, sz := range g.Sizes {
		counts := make([]int, 4)
		for k := start; k < start+sz; k++ {
			counts[machineOf[k]]++
		}
		for m, c := range counts {
			if c != sz/4 {
				t.Fatalf("group at %d: machine %d holds %d of %d", start, m, c, sz)
			}
		}
		start += sz
	}
}

func TestRandomPartitionDeterministicBySeed(t *testing.T) {
	g := grouping(100, 10)
	a, _ := PartitionClustered(g, 4, Random, 42)
	b, _ := PartitionClustered(g, 4, Random, 42)
	c, _ := PartitionClustered(g, 4, Random, 43)
	same := func(x, y Partition) bool {
		for m := range x.Assign {
			if len(x.Assign[m]) != len(y.Assign[m]) {
				return false
			}
			for i := range x.Assign[m] {
				if x.Assign[m][i] != y.Assign[m][i] {
					return false
				}
			}
		}
		return true
	}
	if !same(a, b) {
		t.Error("same seed must give the same partition")
	}
	if same(a, c) {
		t.Error("different seeds should differ (unless astronomically unlucky)")
	}
}

func TestPartitionCoverProperty(t *testing.T) {
	// Every policy must assign each clustered position to exactly one
	// machine ("disjoint cover").
	rng := rand.New(rand.NewSource(67))
	policies := []Policy{Chunk, Cyclic, Random, RandomWithinGroups}
	f := func(nRaw, pRaw, polRaw uint8, seed int64) bool {
		n := int(nRaw)
		p := int(pRaw%16) + 1
		pol := policies[int(polRaw)%len(policies)]
		g := grouping(n, rng.Intn(19)+1)
		part, err := PartitionClustered(g, p, pol, seed)
		if err != nil {
			return false
		}
		seen := make([]int, n)
		for _, a := range part.Assign {
			for _, pos := range a {
				if pos < 0 || pos >= n {
					return false
				}
				seen[pos]++
			}
		}
		for _, c := range seen {
			if c != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPartitionSizeBalanceProperty(t *testing.T) {
	// Chunk, Cyclic and Random give machine sizes within 1 of each other.
	policies := []Policy{Chunk, Cyclic, Random}
	f := func(nRaw uint16, pRaw, polRaw uint8, seed int64) bool {
		n := int(nRaw % 2000)
		p := int(pRaw%16) + 1
		pol := policies[int(polRaw)%len(policies)]
		g := grouping(n, 20)
		part, err := PartitionClustered(g, p, pol, seed)
		if err != nil {
			return false
		}
		mn, mx := n, 0
		for _, sz := range part.Sizes() {
			if sz < mn {
				mn = sz
			}
			if sz > mx {
				mx = sz
			}
		}
		return mx-mn <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}

func TestPartitionErrors(t *testing.T) {
	g := grouping(5, 2)
	if _, err := PartitionClustered(g, 0, Chunk, 0); err == nil {
		t.Error("p=0 must fail")
	}
	if _, err := PartitionClustered(g, 2, Policy(99), 0); err == nil {
		t.Error("unknown policy must fail")
	}
}

func TestPolicyStringRoundTrip(t *testing.T) {
	for _, pol := range []Policy{Chunk, Cyclic, Random, RandomWithinGroups} {
		got, err := ParsePolicy(pol.String())
		if err != nil || got != pol {
			t.Errorf("round trip %v failed: %v %v", pol, got, err)
		}
	}
	if _, err := ParsePolicy("bogus"); err == nil {
		t.Error("bogus policy must fail to parse")
	}
}

func TestMoreMachinesThanPeptides(t *testing.T) {
	g := grouping(3, 2)
	for _, pol := range []Policy{Chunk, Cyclic, Random, RandomWithinGroups} {
		part, err := PartitionClustered(g, 8, pol, 1)
		if err != nil {
			t.Fatalf("%v: %v", pol, err)
		}
		total := 0
		for _, a := range part.Assign {
			total += len(a)
		}
		if total != 3 {
			t.Errorf("%v: assigned %d, want 3", pol, total)
		}
	}
}

func TestGlobalIndices(t *testing.T) {
	// Order maps clustered positions back to original indices.
	g := Grouping{Order: []int{2, 0, 1}, Sizes: []int{3}}
	p, _ := PartitionClustered(g, 2, Chunk, 0)
	m0 := p.GlobalIndices(g, 0) // positions 0,1 -> orig 2,0
	if len(m0) != 2 || m0[0] != 2 || m0[1] != 0 {
		t.Errorf("machine 0 global indices = %v", m0)
	}
	m1 := p.GlobalIndices(g, 1) // position 2 -> orig 1
	if len(m1) != 1 || m1[0] != 1 {
		t.Errorf("machine 1 global indices = %v", m1)
	}
}

// TestPartitionInvariants pins, for every policy, the contract Partition
// documents: Assign partitions 0..n-1 exactly (no duplicates, no gaps),
// MachineOf round-trips the assignment, and the deterministic policies
// (Chunk, Cyclic) list positions in ascending order.
func TestPartitionInvariants(t *testing.T) {
	policies := []Policy{Chunk, Cyclic, Random, RandomWithinGroups}
	for _, policy := range policies {
		for _, n := range []int{0, 1, 7, 64, 251} {
			for _, p := range []int{1, 3, 8} {
				g := grouping(n, 5)
				part, err := PartitionClustered(g, p, policy, 42)
				if err != nil {
					t.Fatalf("%v n=%d p=%d: %v", policy, n, p, err)
				}
				seen := make([]int, n) // occurrences per position
				for m, a := range part.Assign {
					for _, pos := range a {
						if pos < 0 || pos >= n {
							t.Fatalf("%v n=%d p=%d: machine %d owns out-of-range position %d", policy, n, p, m, pos)
						}
						seen[pos]++
					}
				}
				for pos, c := range seen {
					if c != 1 {
						t.Fatalf("%v n=%d p=%d: position %d assigned %d times", policy, n, p, pos, c)
					}
				}
				owner := part.MachineOf()
				if len(owner) != n {
					t.Fatalf("%v n=%d p=%d: MachineOf has %d positions, want %d", policy, n, p, len(owner), n)
				}
				for m, a := range part.Assign {
					for _, pos := range a {
						if owner[pos] != m {
							t.Fatalf("%v n=%d p=%d: MachineOf[%d]=%d, but machine %d owns it", policy, n, p, pos, owner[pos], m)
						}
					}
				}
				if policy == Chunk || policy == Cyclic {
					for m, a := range part.Assign {
						for i := 1; i < len(a); i++ {
							if a[i] <= a[i-1] {
								t.Fatalf("%v n=%d p=%d: machine %d positions not ascending: %v", policy, n, p, m, a)
							}
						}
					}
				}
			}
		}
	}
}
