package core

import (
	"math/rand"
	"sort"
	"strings"
	"testing"
	"testing/quick"

	"lbe/internal/editdist"
)

const alpha = "ACDEFGHIKLMNPQRSTVWY"

func randSeqs(rng *rand.Rand, n, maxLen int) []string {
	out := make([]string, n)
	for i := range out {
		var sb strings.Builder
		for j := 0; j < rng.Intn(maxLen)+1; j++ {
			sb.WriteByte(alpha[rng.Intn(len(alpha))])
		}
		out[i] = sb.String()
	}
	return out
}

func TestGroupEmpty(t *testing.T) {
	g, err := Group(nil, DefaultGroupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 0 || len(g.Order) != 0 {
		t.Errorf("empty grouping = %+v", g)
	}
}

func TestGroupSingleton(t *testing.T) {
	g, err := Group([]string{"PEPTIDEK"}, DefaultGroupConfig())
	if err != nil {
		t.Fatal(err)
	}
	if g.NumGroups() != 1 || g.Sizes[0] != 1 || g.Order[0] != 0 {
		t.Errorf("singleton grouping = %+v", g)
	}
}

func TestGroupSortsByLengthThenLex(t *testing.T) {
	seqs := []string{"CCCC", "AA", "BBB", "AB", "AAAA"}
	g, err := Group(seqs, DefaultGroupConfig())
	if err != nil {
		t.Fatal(err)
	}
	clustered := g.Clustered(seqs)
	want := []string{"AA", "AB", "BBB", "AAAA", "CCCC"}
	for i := range want {
		if clustered[i] != want[i] {
			t.Fatalf("clustered = %v, want %v", clustered, want)
		}
	}
}

func TestGroupSimilarSequencesCluster(t *testing.T) {
	// Ten close variants of one peptide plus one distant outlier, absolute
	// criterion: variants join one group, the outlier starts another.
	base := "AAAAGGGGKKKK"
	seqs := []string{base}
	for i := 0; i < 9; i++ {
		b := []byte(base)
		b[i] = 'C' // one substitution each
		seqs = append(seqs, string(b))
	}
	seqs = append(seqs, "WWWWYYYYFFFF")
	cfg := GroupConfig{Criterion: AbsoluteEdit, D: 2, GroupSize: 20}
	g, err := Group(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// All variants are within distance 2 of whichever seed sorts first;
	// max{d, len/2} = 6 here so they certainly join. The outlier is at
	// distance 12.
	if g.NumGroups() != 2 {
		t.Fatalf("groups = %v (sizes %v)", g.NumGroups(), g.Sizes)
	}
	if g.Sizes[0] != 10 || g.Sizes[1] != 1 {
		t.Errorf("sizes = %v, want [10 1]", g.Sizes)
	}
}

func TestGroupSizeCap(t *testing.T) {
	// 50 identical sequences with cap 20 must form groups of 20/20/10.
	seqs := make([]string, 50)
	for i := range seqs {
		seqs[i] = "AAAAKKKK"
	}
	cfg := DefaultGroupConfig()
	g, err := Group(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Sizes) != 3 || g.Sizes[0] != 20 || g.Sizes[1] != 20 || g.Sizes[2] != 10 {
		t.Errorf("sizes = %v, want [20 20 10]", g.Sizes)
	}
}

func TestGroupInvariantsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	cfgs := []GroupConfig{
		DefaultGroupConfig(),
		{Criterion: AbsoluteEdit, D: 2, GroupSize: 20},
		{Criterion: AbsoluteEdit, D: 0, GroupSize: 5},
		{Criterion: NormalizedEdit, DPrime: 0.3, GroupSize: 8},
	}
	f := func(nRaw uint8, cfgIdx uint8) bool {
		seqs := randSeqs(rng, int(nRaw%60), 25)
		cfg := cfgs[int(cfgIdx)%len(cfgs)]
		g, err := Group(seqs, cfg)
		if err != nil {
			return false
		}
		// Order is a permutation of [0,n).
		if len(g.Order) != len(seqs) {
			return false
		}
		seen := make([]bool, len(seqs))
		for _, idx := range g.Order {
			if idx < 0 || idx >= len(seqs) || seen[idx] {
				return false
			}
			seen[idx] = true
		}
		// Sizes sum to n, each in [1, GroupSize].
		sum := 0
		for _, sz := range g.Sizes {
			if sz < 1 || sz > cfg.GroupSize {
				return false
			}
			sum += sz
		}
		if sum != len(seqs) {
			return false
		}
		// Clustered order is length-then-lex sorted.
		clustered := g.Clustered(seqs)
		sorted := sort.SliceIsSorted(clustered, func(a, b int) bool {
			if len(clustered[a]) != len(clustered[b]) {
				return len(clustered[a]) < len(clustered[b])
			}
			return clustered[a] < clustered[b]
		})
		return sorted
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestGroupMembersSatisfyCriterion(t *testing.T) {
	// Every member of a group must satisfy the join criterion against the
	// group's seed (its first member in clustered order).
	rng := rand.New(rand.NewSource(61))
	seqs := randSeqs(rng, 120, 15)
	cfg := GroupConfig{Criterion: AbsoluteEdit, D: 2, GroupSize: 10}
	g, err := Group(seqs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	clustered := g.Clustered(seqs)
	start := 0
	for _, sz := range g.Sizes {
		seed := clustered[start]
		for k := start + 1; k < start+sz; k++ {
			s := clustered[k]
			cutoff := cfg.D
			if half := len(s) / 2; half > cutoff {
				cutoff = half
			}
			if d := editdist.Naive(seed, s); d > cutoff {
				t.Fatalf("member %q in group seeded %q has distance %d > cutoff %d", s, seed, d, cutoff)
			}
		}
		start += sz
	}
}

func TestGroupBoundsAndGroupOf(t *testing.T) {
	g := Grouping{Order: []int{3, 1, 0, 2, 4}, Sizes: []int{2, 3}}
	if s, e := g.Bounds(0); s != 0 || e != 2 {
		t.Errorf("Bounds(0) = [%d,%d)", s, e)
	}
	if s, e := g.Bounds(1); s != 2 || e != 5 {
		t.Errorf("Bounds(1) = [%d,%d)", s, e)
	}
	want := []int{0, 0, 1, 1, 1}
	for i, gi := range g.GroupOf() {
		if gi != want[i] {
			t.Errorf("GroupOf()[%d] = %d, want %d", i, gi, want[i])
		}
	}
}

func TestGroupConfigValidate(t *testing.T) {
	bad := []GroupConfig{
		{Criterion: AbsoluteEdit, D: 2, GroupSize: 0},
		{Criterion: AbsoluteEdit, D: -1, GroupSize: 5},
		{Criterion: NormalizedEdit, DPrime: -0.1, GroupSize: 5},
		{Criterion: NormalizedEdit, DPrime: 1.5, GroupSize: 5},
		{Criterion: Criterion(9), GroupSize: 5},
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Errorf("config %d should fail validation: %+v", i, cfg)
		}
		if _, err := Group([]string{"AA"}, cfg); err == nil {
			t.Errorf("Group must propagate validation error for config %d", i)
		}
	}
	if err := DefaultGroupConfig().Validate(); err != nil {
		t.Error(err)
	}
}

func TestCriterionString(t *testing.T) {
	if AbsoluteEdit.String() != "absolute" || NormalizedEdit.String() != "normalized" {
		t.Error("criterion names wrong")
	}
	if !strings.Contains(Criterion(7).String(), "7") {
		t.Error("unknown criterion should include its value")
	}
}

func TestNormalizedCriterionJoins(t *testing.T) {
	// d'=0.86 admits anything but a complete rewrite; a very small d'
	// admits only near-identical sequences.
	loose := GroupConfig{Criterion: NormalizedEdit, DPrime: 0.86, GroupSize: 100}
	tight := GroupConfig{Criterion: NormalizedEdit, DPrime: 0.05, GroupSize: 100}
	seqs := []string{"AAAAAAAAAA", "AAAAAAAAAC", "WWWWWWWWWW"}
	gl, _ := Group(seqs, loose)
	gt, _ := Group(seqs, tight)
	// Loose: the single-substitution pair joins (1/10 <= 0.86); the
	// all-W sequence is at normalized distance 1.0 and starts a new group.
	if gl.NumGroups() != 2 {
		t.Errorf("loose groups = %d, want 2 (sizes %v)", gl.NumGroups(), gl.Sizes)
	}
	// Tight: cutoff floor(0.05*10) = 0, so even one substitution splits.
	if gt.NumGroups() != 3 {
		t.Errorf("tight groups = %d, want 3 (sizes %v)", gt.NumGroups(), gt.Sizes)
	}
}
