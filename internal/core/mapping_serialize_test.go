package core

import (
	"bytes"
	"encoding/binary"
	"hash/crc32"
	"testing"
)

// recrc recomputes the trailing checksum after a deliberate field patch,
// so the test exercises the semantic validation rather than the CRC.
func recrc(d []byte) uint32 { return crc32.ChecksumIEEE(d[4 : len(d)-4]) }

func testTable(t *testing.T) MappingTable {
	t.Helper()
	g := grouping(23, 4)
	p, err := PartitionClustered(g, 5, Cyclic, 0)
	if err != nil {
		t.Fatal(err)
	}
	return BuildMappingTable(g, p)
}

func TestMappingBinaryRoundTrip(t *testing.T) {
	tab := testTable(t)
	blob, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMappingTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machines() != tab.Machines() || got.Len() != tab.Len() {
		t.Fatalf("shape: %d/%d machines, %d/%d entries",
			got.Machines(), tab.Machines(), got.Len(), tab.Len())
	}
	for m := 0; m < tab.Machines(); m++ {
		for v := 0; v < tab.MachineLen(m); v++ {
			a, err1 := tab.Lookup(m, uint32(v))
			b, err2 := got.Lookup(m, uint32(v))
			if err1 != nil || err2 != nil || a != b {
				t.Fatalf("lookup (%d,%d): %d/%v vs %d/%v", m, v, a, err1, b, err2)
			}
		}
	}
	// Re-marshal must be byte-identical.
	blob2, err := got.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(blob, blob2) {
		t.Error("re-marshaled mapping blob differs")
	}
}

func TestMappingEmptyTableRoundTrip(t *testing.T) {
	g := grouping(0, 4)
	p, err := PartitionClustered(g, 2, Chunk, 0)
	if err != nil {
		t.Fatal(err)
	}
	tab := BuildMappingTable(g, p)
	blob, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalMappingTable(blob)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machines() != 2 || got.Len() != 0 {
		t.Fatalf("empty table round trip: %d machines, %d entries", got.Machines(), got.Len())
	}
}

func TestMappingUnmarshalRejectsCorruption(t *testing.T) {
	tab := testTable(t)
	valid, err := tab.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	le := binary.LittleEndian
	cases := []struct {
		name   string
		mutate func([]byte) []byte
	}{
		{"empty", func(d []byte) []byte { return nil }},
		{"too short", func(d []byte) []byte { return d[:10] }},
		{"bad magic", func(d []byte) []byte { d[0] = 'X'; return d }},
		{"bit flip", func(d []byte) []byte { d[len(d)/2] ^= 0x40; return d }},
		{"truncated tail", func(d []byte) []byte { return d[:len(d)-5] }},
		{"trailing junk", func(d []byte) []byte { return append(d, 0xAA) }},
		{"future version", func(d []byte) []byte {
			le.PutUint32(d[4:], 99)
			le.PutUint32(d[len(d)-4:], recrc(d))
			return d
		}},
		{"huge machine count", func(d []byte) []byte {
			le.PutUint32(d[8:], 0xFFFFFFFF)
			le.PutUint32(d[len(d)-4:], recrc(d))
			return d
		}},
		{"non-monotone offsets", func(d []byte) []byte {
			le.PutUint64(d[12+8:], 1<<20)
			le.PutUint32(d[len(d)-4:], recrc(d))
			return d
		}},
	}
	for _, tc := range cases {
		data := tc.mutate(append([]byte(nil), valid...))
		if _, err := UnmarshalMappingTable(data); err == nil {
			t.Errorf("%s: UnmarshalMappingTable accepted corrupt blob", tc.name)
		}
	}
}
