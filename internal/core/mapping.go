package core

import "fmt"

// MappingTable is the master machine's translation from (machine, virtual
// index) pairs to original peptide index entries, as described in §III-D:
// a single array of size N whose m-th chunk holds the global indices owned
// by machine m; lookup is one memory access.
type MappingTable struct {
	entries []uint32 // concatenated per-machine global indices
	offsets []int    // offsets[m] is the start of machine m's chunk; len p+1
}

// BuildMappingTable constructs the table from a partition and grouping.
func BuildMappingTable(g Grouping, p Partition) MappingTable {
	var t MappingTable
	t.offsets = make([]int, p.P+1)
	total := 0
	for m := 0; m < p.P; m++ {
		t.offsets[m] = total
		total += len(p.Assign[m])
	}
	t.offsets[p.P] = total
	t.entries = make([]uint32, total)
	for m := 0; m < p.P; m++ {
		copy(t.entries[t.offsets[m]:], p.GlobalIndices(g, m))
	}
	return t
}

// Machines returns the number of machines the table covers.
func (t MappingTable) Machines() int { return len(t.offsets) - 1 }

// Len returns the total number of peptide entries.
func (t MappingTable) Len() int { return len(t.entries) }

// MachineLen returns the number of entries owned by machine m.
func (t MappingTable) MachineLen(m int) int {
	return t.offsets[m+1] - t.offsets[m]
}

// Lookup maps machine m's virtual index v to the global peptide index.
// This is the O(1) backtracking step of Fig. 4.
func (t MappingTable) Lookup(m int, v uint32) (uint32, error) {
	if m < 0 || m >= t.Machines() {
		return 0, fmt.Errorf("core: machine %d out of range [0,%d)", m, t.Machines())
	}
	i := t.offsets[m] + int(v)
	if i >= t.offsets[m+1] {
		return 0, fmt.Errorf("core: virtual index %d out of range for machine %d (has %d)", v, m, t.MachineLen(m))
	}
	return t.entries[i], nil
}

// MustLookup is like Lookup but panics on out-of-range input; for use on
// the master hot path after validation.
func (t MappingTable) MustLookup(m int, v uint32) uint32 {
	g, err := t.Lookup(m, v)
	if err != nil {
		panic(err)
	}
	return g
}

// MemoryBytes returns the table's memory footprint in bytes, counted for
// the memory-overhead experiment (Fig. 5): 4 bytes per entry plus offsets.
func (t MappingTable) MemoryBytes() int {
	return 4*len(t.entries) + 8*len(t.offsets)
}

// Subset returns the table restricted to the given machines, renumbered
// 0..len(machines)-1 in the given order. Lookups on the subset still
// return the original global peptide indices, so a shard-set slice of a
// partitioned store backtracks matches to exactly the identities the
// whole-store table reports — the property the scatter/gather merge's
// byte-identity rests on.
func (t MappingTable) Subset(machines []int) (MappingTable, error) {
	var out MappingTable
	out.offsets = make([]int, 1, len(machines)+1)
	for _, m := range machines {
		if m < 0 || m >= t.Machines() {
			return MappingTable{}, fmt.Errorf("core: subset machine %d out of range [0,%d)", m, t.Machines())
		}
		out.entries = append(out.entries, t.entries[t.offsets[m]:t.offsets[m+1]]...)
		out.offsets = append(out.offsets, len(out.entries))
	}
	return out, nil
}
